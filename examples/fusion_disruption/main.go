// fusion_disruption reproduces the DIII-D-style disruption-prediction
// data preparation — served. A draid server runs in-process; the
// pkg/client SDK submits the fusion archetype job, follows its
// readiness trajectory, and streams the prepared windows over the
// negotiated binary frame wire (zero per-float JSON cost) straight
// into a small kNN disruption classifier — the "ready-to-train" proof,
// consumed the way a remote trainer would consume it. The curation-
// time accounting the paper quotes ("70% of time on data curation")
// closes the loop.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/label"
	"repro/internal/server"
	"repro/pkg/client"
)

func main() {
	log.SetFlags(0)

	// A real draid service, in-process.
	srv, err := server.New(server.Options{Workers: 2, CacheBytes: 32 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cli := client.New(ts.URL)

	// Submit the fusion archetype job: a 24-shot synthetic campaign,
	// windowed, labeled, and sharded to TFRecords server-side.
	st, err := cli.SubmitJob(ctx, client.JobSpec{Domain: core.Fusion, Name: "campaign", Shots: 24, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	done, err := cli.WaitDone(ctx, st.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s: %d windows in %d shards, wire kind %q (formats %v)\n",
		done.ID, done.Records, done.Shards, done.Kind, done.Wires)
	fmt.Println("readiness trajectory:")
	for _, p := range done.Trajectory {
		fmt.Printf("  after %-18s (%-10s) -> %s\n", p.Stage, p.Kind, p.LevelName)
	}

	// Stream the windows. The SDK negotiates the binary frame wire and
	// falls back to NDJSON against servers that predate it.
	stream, err := cli.StreamBatches(ctx, done.ID, client.StreamOptions{BatchSize: 16})
	if err != nil {
		log.Fatal(err)
	}
	var features [][]float64
	var labels []int
	disrupted := 0
	for {
		b, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		for i, sig := range b.Signals {
			// Compact summary features per window.
			minV, maxV, sum := sig[0], sig[0], float64(0)
			for _, v := range sig {
				if v < minV {
					minV = v
				}
				if v > maxV {
					maxV = v
				}
				sum += float64(v)
			}
			features = append(features, []float64{float64(minV), float64(maxV), sum / float64(len(sig))})
			labels = append(labels, int(b.Labels[i]))
			disrupted += int(b.Labels[i])
		}
	}
	fmt.Printf("\nstreamed %d windows over the %q wire (%d bytes, %.1f%% disruption-positive)\n",
		len(features), stream.Wire(), stream.Bytes(), 100*float64(disrupted)/float64(len(features)))

	// Train a quick kNN disruption detector on the streamed windows —
	// the data arrives genuinely ready-to-train.
	knn := label.NewKNN(5)
	if err := knn.Fit(features, labels); err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i := range features {
		if c, _ := knn.Predict(features[i]); c == labels[i] {
			correct++
		}
	}
	fmt.Printf("kNN self-fit accuracy on streamed windows: %.1f%% (%d windows)\n",
		100*float64(correct)/float64(len(features)), len(features))

	// The curation-time experiment (paper §3.2).
	fmt.Println()
	cur, err := experiments.RunCuration(8, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cur.Render())
}
