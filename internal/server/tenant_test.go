// Multi-tenancy acceptance tests: the auth gate (401s, open paths,
// header spoofing), tenant scoping of jobs/listings/traces, quota
// enforcement, byte-quota eviction pressure, the audit trail with
// verifiable inclusion proofs, and the weighted-fair bandwidth split.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/tenant"
	"repro/pkg/client"
)

func testRegistry(t *testing.T, tenants ...*tenant.Tenant) *tenant.Registry {
	t.Helper()
	reg, err := tenant.NewRegistry(tenants)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// threeTenants is the standard cast: two plain tenants and an admin.
func threeTenants(t *testing.T) *tenant.Registry {
	t.Helper()
	return testRegistry(t,
		&tenant.Tenant{ID: "alice", Token: "alice-secret-token"},
		&tenant.Tenant{ID: "bob", Token: "bob-secret-token"},
		&tenant.Tenant{ID: "root", Token: "root-secret-token", Admin: true},
	)
}

// authedDo performs one request with a bearer token (empty sends none)
// and optional extra headers.
func authedDo(t *testing.T, method, url, token string, body string, hdr map[string]string) *http.Response {
	t.Helper()
	var rdr *strings.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	} else {
		rdr = strings.NewReader("")
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// authedJSON GETs a URL with a token and decodes the answer.
func authedJSON(t *testing.T, url, token string, out any) int {
	t.Helper()
	resp := authedDo(t, http.MethodGet, url, token, "", nil)
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// authedSubmit posts a job as the given tenant, returning the accepted
// status and HTTP code.
func authedSubmit(t *testing.T, baseURL, token string, spec JobSpec) (client.JobStatus, int) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp := authedDo(t, http.MethodPost, baseURL+"/v1/jobs", token, string(body),
		map[string]string{"Content-Type": "application/json"})
	defer resp.Body.Close()
	var st client.JobStatus
	_ = json.NewDecoder(resp.Body).Decode(&st)
	st.Trace = resp.Header.Get(client.TraceHeader)
	return st, resp.StatusCode
}

// waitDoneAuthed polls a job as its tenant until it reaches the done
// state.
func waitDoneAuthed(t *testing.T, baseURL, token, id string, timeout time.Duration) client.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var st client.JobStatus
		if code := authedJSON(t, baseURL+"/v1/jobs/"+id, token, &st); code != http.StatusOK {
			t.Fatalf("poll %s: status %d", id, code)
		}
		switch st.State {
		case client.JobDone:
			return st
		case client.JobFailed:
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s not done after %s", id, timeout)
	return client.JobStatus{}
}

var tinyClimate = JobSpec{Domain: core.Climate, Seed: 7, Months: 2, Lat: 4, Lon: 8}

func TestAuthGateAndOpenPaths(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Tenants: threeTenants(t)})

	// No credential and a wrong credential both die with 401 and a
	// WWW-Authenticate challenge.
	for _, token := range []string{"", "not-a-real-token"} {
		resp := authedDo(t, http.MethodGet, ts.URL+"/v1/jobs", token, "", nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("token %q: status %d, want 401", token, resp.StatusCode)
		}
		if !strings.Contains(resp.Header.Get("WWW-Authenticate"), "Bearer") {
			t.Fatalf("token %q: missing WWW-Authenticate challenge", token)
		}
	}
	// Submissions are gated too.
	if _, code := authedSubmit(t, ts.URL, "", tinyClimate); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated submit: status %d, want 401", code)
	}

	// The liveness probe and the metrics scrape stay open: orchestrators
	// and scrapers operate pre-credential.
	for _, path := range []string{"/healthz", "/metrics"} {
		if code := getJSON(t, ts.URL+path, nil); code != http.StatusOK {
			t.Fatalf("%s behind auth: status %d", path, code)
		}
	}

	// A registered token passes, via header or (for clients that cannot
	// set headers) the access_token query parameter.
	if code := authedJSON(t, ts.URL+"/v1/jobs", "alice-secret-token", nil); code != http.StatusOK {
		t.Fatalf("authenticated list: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs?access_token=alice-secret-token", nil); code != http.StatusOK {
		t.Fatalf("query-token list: status %d", code)
	}

	// The failures were counted.
	if n := metricValue(t, ts.URL, "draid_tenant_auth_failures_total"); n < 3 {
		t.Fatalf("draid_tenant_auth_failures_total = %d, want >= 3", n)
	}
}

func TestTenantIsolation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, Tenants: threeTenants(t)})

	st, code := authedSubmit(t, ts.URL, "alice-secret-token", tinyClimate)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	done := waitDoneAuthed(t, ts.URL, "alice-secret-token", st.ID, 60*time.Second)
	if done.Tenant != "alice" {
		t.Fatalf("job tenant %q, want alice", done.Tenant)
	}

	// Bob can locate nothing of alice's: status, events, provenance, and
	// batches are all 403 — not 404, the sequential ID namespace is no
	// secret, the contents are.
	for _, path := range []string{"", "/events", "/provenance", "/batches"} {
		if code := authedJSON(t, ts.URL+"/v1/jobs/"+st.ID+path, "bob-secret-token", nil); code != http.StatusForbidden {
			t.Fatalf("bob on %s: status %d, want 403", path, code)
		}
	}
	// Spoofing the fleet tenant header buys bob nothing: without the
	// peer secret the middleware overwrites it with his authenticated
	// identity.
	resp := authedDo(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID, "bob-secret-token", "",
		map[string]string{tenant.HeaderTenant: "alice"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("spoofed tenant header: status %d, want 403", resp.StatusCode)
	}

	// Listings are scoped: bob sees nothing, alice and the admin see the
	// job.
	var jobs []client.JobStatus
	if code := authedJSON(t, ts.URL+"/v1/jobs", "bob-secret-token", &jobs); code != http.StatusOK || len(jobs) != 0 {
		t.Fatalf("bob list: status %d, %d jobs, want 0", code, len(jobs))
	}
	for _, token := range []string{"alice-secret-token", "root-secret-token"} {
		jobs = nil
		if code := authedJSON(t, ts.URL+"/v1/jobs", token, &jobs); code != http.StatusOK || len(jobs) != 1 {
			t.Fatalf("%s list: status %d, %d jobs, want 1", token, code, len(jobs))
		}
	}
	// The admin streams any tenant's batches; the owner does too.
	for _, token := range []string{"alice-secret-token", "root-secret-token"} {
		resp := authedDo(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/batches?max_batches=1", token, "", nil)
		sc := bufio.NewScanner(resp.Body)
		if !sc.Scan() {
			t.Fatalf("%s: empty batch stream", token)
		}
		resp.Body.Close()
	}
}

func TestTraceTenantScoping(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Tenants: threeTenants(t)})

	st, code := authedSubmit(t, ts.URL, "alice-secret-token", tinyClimate)
	if code != http.StatusAccepted || st.Trace == "" {
		t.Fatalf("submit: status %d trace %q", code, st.Trace)
	}
	waitDoneAuthed(t, ts.URL, "alice-secret-token", st.ID, 60*time.Second)

	// The submission's trace belongs to alice: bob gets a 403 on the
	// span tree, alice and the admin read it.
	if code := authedJSON(t, ts.URL+"/v1/traces/"+st.Trace, "bob-secret-token", nil); code != http.StatusForbidden {
		t.Fatalf("bob on alice's trace: status %d, want 403", code)
	}
	for _, token := range []string{"alice-secret-token", "root-secret-token"} {
		var view client.TraceView
		if code := authedJSON(t, ts.URL+"/v1/traces/"+st.Trace, token, &view); code != http.StatusOK || len(view.Spans) == 0 {
			t.Fatalf("%s on alice's trace: status %d, %d spans", token, code, len(view.Spans))
		}
	}
	// The listing hides it from bob too.
	var sums []client.TraceSummary
	if code := authedJSON(t, ts.URL+"/v1/traces?limit=0", "bob-secret-token", &sums); code != http.StatusOK {
		t.Fatalf("bob trace list: status %d", code)
	}
	for _, sum := range sums {
		if sum.TraceID == st.Trace {
			t.Fatalf("bob's trace listing leaks alice's trace %s", st.Trace)
		}
	}
}

func TestTenantQuotaEnforcement(t *testing.T) {
	reg := testRegistry(t,
		&tenant.Tenant{ID: "alice", Token: "alice-secret-token", MaxJobs: 2, MaxShardBytes: 1 << 30},
	)
	s, ts := newTestServer(t, Options{Workers: 1, Tenants: reg})

	// Active-job quota: with both slots occupied the next submission is
	// refused. The slots are preloaded through the bookkeeping seam so
	// the test does not race job completion.
	s.quotaActivate("alice")
	s.quotaActivate("alice")
	if _, code := authedSubmit(t, ts.URL, "alice-secret-token", tinyClimate); code != http.StatusTooManyRequests {
		t.Fatalf("submit over MaxJobs: status %d, want 429", code)
	}
	s.quotaDeactivate("alice")
	s.quotaDeactivate("alice")

	// Retained-byte quota: a tenant at its cap cannot submit until bytes
	// are released (by eviction or expiry).
	s.quotaRetain("alice", 1<<30)
	if _, code := authedSubmit(t, ts.URL, "alice-secret-token", tinyClimate); code != http.StatusTooManyRequests {
		t.Fatalf("submit over MaxShardBytes: status %d, want 429", code)
	}
	s.quotaRelease("alice", 1<<30)
	if n := metricValue(t, ts.URL, "draid_tenant_quota_rejections_total"); n != 2 {
		t.Fatalf("draid_tenant_quota_rejections_total = %d, want 2", n)
	}

	// Under quota, submissions flow again and the job is charged and
	// discharged across its lifecycle.
	st, code := authedSubmit(t, ts.URL, "alice-secret-token", tinyClimate)
	if code != http.StatusAccepted {
		t.Fatalf("submit under quota: status %d", code)
	}
	waitDoneAuthed(t, ts.URL, "alice-secret-token", st.ID, 60*time.Second)
	if got := s.tenantRetained("alice"); got <= 0 {
		t.Fatalf("done job retained %d bytes for alice, want > 0", got)
	}
	s.tenantMu.Lock()
	active := s.tenantJobs["alice"]
	s.tenantMu.Unlock()
	if active != 0 {
		t.Fatalf("done job still counted active (%d)", active)
	}
}

func TestByteQuotaEvictionPressure(t *testing.T) {
	// A 1-byte cap means any completed job is instantly over quota: the
	// pressure pass must evict it (turning hoarding into LRU turnover)
	// even though neither TTL nor MaxJobs retention is configured.
	reg := testRegistry(t,
		&tenant.Tenant{ID: "alice", Token: "alice-secret-token", MaxShardBytes: 1},
		&tenant.Tenant{ID: "root", Token: "root-secret-token", Admin: true},
	)
	_, ts := newTestServer(t, Options{Workers: 1, Tenants: reg, DataDir: t.TempDir()})

	st, code := authedSubmit(t, ts.URL, "alice-secret-token", tinyClimate)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	deadline := time.Now().Add(60 * time.Second)
	evicted := false
	for time.Now().Before(deadline) {
		code := authedJSON(t, ts.URL+"/v1/jobs/"+st.ID, "alice-secret-token", nil)
		if code == http.StatusNotFound {
			evicted = true
			break
		}
		if code != http.StatusOK {
			t.Fatalf("poll: status %d", code)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !evicted {
		t.Fatalf("over-quota job %s never evicted", st.ID)
	}

	// The eviction is in the audit ledger with a verifiable proof. The
	// 404 above races the durable append by a moment, so poll briefly.
	var rec ledger.Record
	found := false
	for end := time.Now().Add(10 * time.Second); time.Now().Before(end); time.Sleep(20 * time.Millisecond) {
		if r, ok := lookupAuditRecord(t, ts.URL, "root-secret-token", ledger.TypeEvict, st.ID); ok {
			rec, found = r, true
			break
		}
	}
	if !found {
		t.Fatalf("no evict audit record for job %s", st.ID)
	}
	if rec.Tenant != "alice" {
		t.Fatalf("evict record tenant %q, want alice", rec.Tenant)
	}
}

// lookupAuditRecord scans the audit ledger over the HTTP API for the
// first record of the given type and job, verifying every record's
// inclusion proof against the published roots on the way. Reports
// whether the record was found; proof failures are fatal.
func lookupAuditRecord(t *testing.T, baseURL, token, typ, job string) (ledger.Record, bool) {
	t.Helper()
	var roots client.AuditRoots
	if code := authedJSON(t, baseURL+"/v1/audit/roots", token, &roots); code != http.StatusOK {
		t.Fatalf("audit roots: status %d", code)
	}
	byBatch := make(map[int]client.AuditBatchRoot, len(roots.Roots))
	for _, r := range roots.Roots {
		byBatch[r.Batch] = r
	}
	for seq := uint64(1); seq <= roots.Records; seq++ {
		var proof client.AuditProof
		if code := authedJSON(t, fmt.Sprintf("%s/v1/audit/proof?seq=%d", baseURL, seq), token, &proof); code != http.StatusOK {
			t.Fatalf("audit proof seq %d: status %d", seq, code)
		}
		if err := proof.Verify(); err != nil {
			t.Fatalf("audit proof seq %d: %v", seq, err)
		}
		root, ok := byBatch[proof.Batch]
		if !ok || root.Root != proof.Root {
			t.Fatalf("audit proof seq %d: root %s not among published roots", seq, proof.Root)
		}
		if proof.Record.Type == typ && proof.Record.Job == job {
			return proof.Record, true
		}
	}
	return ledger.Record{}, false
}

// findAuditRecord is lookupAuditRecord that fails the test when the
// record is absent.
func findAuditRecord(t *testing.T, baseURL, token, typ, job string) ledger.Record {
	t.Helper()
	rec, ok := lookupAuditRecord(t, baseURL, token, typ, job)
	if !ok {
		t.Fatalf("no %s audit record for job %q", typ, job)
	}
	return rec
}

func TestAuditTrailEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Tenants: threeTenants(t), DataDir: t.TempDir()})

	// One auth failure, one submission, one stream open — each must land
	// in the ledger.
	resp := authedDo(t, http.MethodGet, ts.URL+"/v1/jobs", "wrong-token", "", nil)
	resp.Body.Close()

	st, code := authedSubmit(t, ts.URL, "alice-secret-token", tinyClimate)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitDoneAuthed(t, ts.URL, "alice-secret-token", st.ID, 60*time.Second)
	stream := authedDo(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/batches?max_batches=1", "alice-secret-token", "", nil)
	sc := bufio.NewScanner(stream.Body)
	if !sc.Scan() {
		t.Fatal("empty batch stream")
	}
	stream.Body.Close()

	sub := findAuditRecord(t, ts.URL, "root-secret-token", ledger.TypeSubmit, st.ID)
	if sub.Tenant != "alice" {
		t.Fatalf("submit record tenant %q, want alice", sub.Tenant)
	}
	str := findAuditRecord(t, ts.URL, "root-secret-token", ledger.TypeStream, st.ID)
	if str.Tenant != "alice" {
		t.Fatalf("stream record tenant %q, want alice", str.Tenant)
	}
	fail := findAuditRecord(t, ts.URL, "root-secret-token", ledger.TypeAuthFailure, "")
	if !strings.Contains(fail.Detail, "/v1/jobs") {
		t.Fatalf("auth-failure record detail %q lacks the path", fail.Detail)
	}

	// Tenant scoping holds on the audit API too: alice reads her own
	// records' proofs, bob cannot prove alice's submission. Tenant-less
	// records (the auth failure) belong to no one, so any authenticated
	// tenant may prove them — they contain no other tenant's data.
	if code := authedJSON(t, fmt.Sprintf("%s/v1/audit/proof?seq=%d", ts.URL, sub.Seq), "alice-secret-token", nil); code != http.StatusOK {
		t.Fatalf("alice proving her own record: status %d", code)
	}
	if code := authedJSON(t, fmt.Sprintf("%s/v1/audit/proof?seq=%d", ts.URL, sub.Seq), "bob-secret-token", nil); code != http.StatusForbidden {
		t.Fatalf("bob proving alice's record: status %d, want 403", code)
	}
	if code := authedJSON(t, fmt.Sprintf("%s/v1/audit/proof?seq=%d", ts.URL, fail.Seq), "alice-secret-token", nil); code != http.StatusOK {
		t.Fatalf("alice proving the unowned auth-failure record: status %d", code)
	}
}

func TestWeightedFairSplit(t *testing.T) {
	// alice (weight 3) and bob (weight 1) stream concurrently under a
	// shared 64 KiB/s budget: alice must sustain roughly 3x bob's
	// throughput. Tolerance is generous — token-bucket bursts and
	// scheduler noise are real — but a broken split (equal shares, or a
	// starved tenant) lands far outside it.
	reg := testRegistry(t,
		&tenant.Tenant{ID: "alice", Token: "alice-secret-token", Weight: 3},
		&tenant.Tenant{ID: "bob", Token: "bob-secret-token", Weight: 1},
	)
	_, ts := newTestServer(t, Options{Workers: 2, Tenants: reg, ServeBudgetKBps: 64})

	spec := JobSpec{Domain: core.Climate, Seed: 2, Months: 120, Lat: 32, Lon: 64}
	ids := map[string]string{}
	for _, token := range []string{"alice-secret-token", "bob-secret-token"} {
		st, code := authedSubmit(t, ts.URL, token, spec)
		if code != http.StatusAccepted {
			t.Fatalf("%s submit: status %d", token, code)
		}
		ids[token] = st.ID
	}
	for token, id := range ids {
		waitDoneAuthed(t, ts.URL, token, id, 120*time.Second)
	}

	const window = 2 * time.Second
	measure := func(token, id string, bytes *int64, finished *bool) func() {
		return func() {
			ctx, cancel := context.WithTimeout(context.Background(), window)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet,
				ts.URL+"/v1/jobs/"+id+"/batches?batch_size=1", nil)
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Authorization", "Bearer "+token)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			buf := make([]byte, 4096)
			for {
				n, err := resp.Body.Read(buf)
				*bytes += int64(n)
				if err != nil {
					*finished = ctx.Err() == nil // EOF before the window closed
					return
				}
			}
		}
	}
	var aliceBytes, bobBytes int64
	var aliceDone, bobDone bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		measure("alice-secret-token", ids["alice-secret-token"], &aliceBytes, &aliceDone)()
	}()
	go func() { defer wg.Done(); measure("bob-secret-token", ids["bob-secret-token"], &bobBytes, &bobDone)() }()
	wg.Wait()

	if aliceDone || bobDone {
		t.Fatalf("stream drained before the measurement window (alice=%t bob=%t) — job too small for the budget", aliceDone, bobDone)
	}
	if bobBytes == 0 {
		t.Fatal("bob starved: zero bytes in the window")
	}
	ratio := float64(aliceBytes) / float64(bobBytes)
	if ratio < 1.8 || ratio > 5.0 {
		t.Fatalf("weighted-fair split off: alice %d bytes, bob %d bytes, ratio %.2f (want ~3)", aliceBytes, bobBytes, ratio)
	}
	// And the shared budget was respected overall (bursts allowed for).
	budgetBytes := int64(64<<10) * int64(window/time.Second)
	if total := aliceBytes + bobBytes; total > budgetBytes*2 {
		t.Fatalf("streams drew %d bytes in %s, far above the %d-byte budget", total, window, budgetBytes)
	}
}

func TestOpenServerIgnoresTenantMachinery(t *testing.T) {
	// Without a registry the server keeps its open behavior: no auth, no
	// ownership, and a spoofed tenant header neither sticks nor scopes.
	_, ts := newTestServer(t, Options{Workers: 1})
	resp := authedDo(t, http.MethodPost, ts.URL+"/v1/jobs", "", mustJSON(t, tinyClimate),
		map[string]string{"Content-Type": "application/json", tenant.HeaderTenant: "mallory"})
	defer resp.Body.Close()
	var st client.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("open submit: status %d", resp.StatusCode)
	}
	if st.Tenant != "" {
		t.Fatalf("open server stamped tenant %q from a spoofed header", st.Tenant)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID, nil); code != http.StatusOK {
		t.Fatalf("open job read: status %d", code)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestMasterKeyLooseModeRejected(t *testing.T) {
	// A pre-existing master key readable by group or world must fail
	// startup: it derives the peer-auth secret and seals per-job keys.
	dir := t.TempDir()
	path := filepath.Join(dir, "master.key")
	if err := os.WriteFile(path, []byte(strings.Repeat("ab", 32)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Workers: 1, DataDir: dir}); err == nil ||
		!strings.Contains(err.Error(), "group/world-readable") {
		t.Fatalf("loose master.key accepted (err=%v)", err)
	}
	// Tightened to 0600 the same key is accepted.
	if err := os.Chmod(path, 0o600); err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatalf("0600 master.key rejected: %v", err)
	}
	s.Close()
}

func TestAuditEndpointsWithoutLedger(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	if code := getJSON(t, ts.URL+"/v1/audit/roots", nil); code != http.StatusNotFound {
		t.Fatalf("roots without ledger: status %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/audit/proof?seq=1", nil); code != http.StatusNotFound {
		t.Fatalf("proof without ledger: status %d, want 404", code)
	}
}

func TestDebugLogsRedactTokens(t *testing.T) {
	// The satellite security contract: bearer credentials never reach
	// logs. Drive an access_token request through a debug-logging server
	// and grep the log output.
	buf := &lockedBuf{}
	logger := slog.New(slog.NewTextHandler(buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	_, ts := newTestServer(t, Options{Workers: 1, Tenants: threeTenants(t), Debug: true, Logger: logger})

	if code := getJSON(t, ts.URL+"/v1/jobs?access_token=alice-secret-token", nil); code != http.StatusOK {
		t.Fatalf("query-token list: status %d", code)
	}
	resp := authedDo(t, http.MethodGet, ts.URL+"/v1/jobs?access_token=wrong-token-value", "", "", nil)
	resp.Body.Close()

	out := buf.String()
	if strings.Contains(out, "alice-secret-token") || strings.Contains(out, "wrong-token-value") {
		t.Fatalf("server logs leak bearer tokens:\n%s", out)
	}
	if !strings.Contains(out, "access_token=REDACTED") {
		t.Fatalf("expected redacted access_token in logs:\n%s", out)
	}
}
