package split

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestRandomBasic(t *testing.T) {
	r, err := Random(100, DefaultFractions(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, v, te := r.Counts()
	if tr != 80 || v != 10 || te != 10 {
		t.Fatalf("counts=%d/%d/%d", tr, v, te)
	}
	if err := Disjoint(r, 100); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a, _ := Random(50, DefaultFractions(), 42)
	b, _ := Random(50, DefaultFractions(), 42)
	for i := range a.Train {
		if a.Train[i] != b.Train[i] {
			t.Fatal("same seed must give same split")
		}
	}
	c, _ := Random(50, DefaultFractions(), 43)
	same := true
	for i := range a.Train {
		if a.Train[i] != c.Train[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical split (suspicious)")
	}
}

func TestRandomErrors(t *testing.T) {
	if _, err := Random(0, DefaultFractions(), 1); err == nil {
		t.Fatal("want n error")
	}
	if _, err := Random(10, Fractions{0.5, 0.5, 0.5}, 1); err == nil {
		t.Fatal("want sum error")
	}
	if _, err := Random(10, Fractions{1.2, -0.1, -0.1}, 1); err == nil {
		t.Fatal("want negative error")
	}
}

func TestRandomTinyDataset(t *testing.T) {
	r, err := Random(1, DefaultFractions(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total() != 1 {
		t.Fatalf("total=%d", r.Total())
	}
	if err := Disjoint(r, 1); err != nil {
		t.Fatal(err)
	}
}

func TestStratifiedPreservesDistribution(t *testing.T) {
	labels := make([]string, 1000)
	for i := range labels {
		if i%10 == 0 {
			labels[i] = "rare"
		} else {
			labels[i] = "common"
		}
	}
	r, err := Stratified(labels, DefaultFractions(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := Disjoint(r, 1000); err != nil {
		t.Fatal(err)
	}
	countRare := func(idx []int) int {
		n := 0
		for _, i := range idx {
			if labels[i] == "rare" {
				n++
			}
		}
		return n
	}
	// Each partition should have ~10% rare.
	if got := countRare(r.Train); got != 80 {
		t.Fatalf("train rare=%d, want 80", got)
	}
	if got := countRare(r.Val); got != 10 {
		t.Fatalf("val rare=%d, want 10", got)
	}
	if got := countRare(r.Test); got != 10 {
		t.Fatalf("test rare=%d, want 10", got)
	}
}

func TestStratifiedEmpty(t *testing.T) {
	if _, err := Stratified(nil, DefaultFractions(), 1); err == nil {
		t.Fatal("want empty error")
	}
}

func TestGroupedKeepsGroupsTogether(t *testing.T) {
	// 20 shots x 10 windows.
	groups := make([]string, 200)
	for i := range groups {
		groups[i] = fmt.Sprintf("shot-%02d", i/10)
	}
	r, err := Grouped(groups, DefaultFractions(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := Disjoint(r, 200); err != nil {
		t.Fatal(err)
	}
	partOf := make(map[string]string)
	assign := func(name string, idx []int) {
		for _, i := range idx {
			g := groups[i]
			if prev, ok := partOf[g]; ok && prev != name {
				t.Fatalf("group %s straddles %s and %s", g, prev, name)
			}
			partOf[g] = name
		}
	}
	assign("train", r.Train)
	assign("val", r.Val)
	assign("test", r.Test)
	if len(r.Train) < 100 {
		t.Fatalf("train too small: %d", len(r.Train))
	}
	if len(r.Val) == 0 || len(r.Test) == 0 {
		t.Fatalf("val=%d test=%d", len(r.Val), len(r.Test))
	}
}

func TestGroupedEmpty(t *testing.T) {
	if _, err := Grouped(nil, DefaultFractions(), 1); err == nil {
		t.Fatal("want empty error")
	}
}

func TestTemporalNoFutureLeakage(t *testing.T) {
	r, err := Temporal(100, DefaultFractions())
	if err != nil {
		t.Fatal(err)
	}
	if err := Disjoint(r, 100); err != nil {
		t.Fatal(err)
	}
	maxTrain := -1
	for _, i := range r.Train {
		if i > maxTrain {
			maxTrain = i
		}
	}
	for _, i := range r.Val {
		if i <= maxTrain {
			t.Fatalf("val index %d <= max train %d", i, maxTrain)
		}
	}
	maxVal := maxTrain
	for _, i := range r.Val {
		if i > maxVal {
			maxVal = i
		}
	}
	for _, i := range r.Test {
		if i <= maxVal {
			t.Fatalf("test index %d <= max val %d", i, maxVal)
		}
	}
}

func TestTemporalErrors(t *testing.T) {
	if _, err := Temporal(-1, DefaultFractions()); err == nil {
		t.Fatal("want n error")
	}
}

func TestDisjointDetectsOverlap(t *testing.T) {
	r := &Result{Train: []int{0, 1}, Val: []int{1}, Test: []int{2}}
	if err := Disjoint(r, 3); err == nil {
		t.Fatal("want overlap error")
	}
}

func TestDisjointDetectsGap(t *testing.T) {
	r := &Result{Train: []int{0}, Val: []int{}, Test: []int{2}}
	if err := Disjoint(r, 3); err == nil {
		t.Fatal("want gap error")
	}
}

func TestDisjointDetectsOutOfRange(t *testing.T) {
	r := &Result{Train: []int{0, 5}, Val: nil, Test: nil}
	if err := Disjoint(r, 2); err == nil {
		t.Fatal("want range error")
	}
}

// Property: every strategy yields a valid partition of [0,n).
func TestPartitionProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16, strat uint8) bool {
		n := int(nRaw)%500 + 1
		fr := DefaultFractions()
		var r *Result
		var err error
		switch strat % 4 {
		case 0:
			r, err = Random(n, fr, seed)
		case 1:
			labels := make([]string, n)
			for i := range labels {
				labels[i] = string(rune('a' + i%3))
			}
			r, err = Stratified(labels, fr, seed)
		case 2:
			groups := make([]string, n)
			for i := range groups {
				groups[i] = fmt.Sprintf("g%d", i/4)
			}
			r, err = Grouped(groups, fr, seed)
		default:
			r, err = Temporal(n, fr)
		}
		if err != nil {
			return false
		}
		return Disjoint(r, n) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: fractions are honored within rounding for Random.
func TestFractionAccuracyProperty(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := int(nRaw)%1000 + 10
		r, err := Random(n, DefaultFractions(), 1)
		if err != nil {
			return false
		}
		tr, _, _ := r.Counts()
		return math.Abs(float64(tr)/float64(n)-0.8) < 0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
