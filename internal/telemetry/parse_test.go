package telemetry

import (
	"strings"
	"testing"
)

func mustFail(t *testing.T, doc, wantSub string) {
	t.Helper()
	_, err := ParseText(strings.NewReader(doc))
	if err == nil {
		t.Fatalf("parse accepted invalid doc:\n%s", doc)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not mention %q", err, wantSub)
	}
}

func TestParseRejectsGoQuotingArtifacts(t *testing.T) {
	// The old handleMetrics emitted stage labels with Go %q, which
	// escapes non-ASCII as \x sequences — invalid in the exposition
	// format. The strict parser must reject them.
	mustFail(t, "# TYPE draid_x counter\ndraid_x{stage=\"a\\x00b\"} 1\n", "invalid escape")
}

func TestParseRejectsDuplicateSeries(t *testing.T) {
	mustFail(t, "# TYPE draid_x counter\ndraid_x 1\ndraid_x 2\n", "duplicate series")
}

func TestParseRejectsUndeclaredSeries(t *testing.T) {
	mustFail(t, "draid_mystery 1\n", "no TYPE")
}

func TestParseRejectsNonCumulativeHistogram(t *testing.T) {
	doc := `# TYPE draid_h histogram
draid_h_bucket{le="0.1"} 5
draid_h_bucket{le="1"} 3
draid_h_bucket{le="+Inf"} 5
draid_h_sum 1
draid_h_count 5
`
	mustFail(t, doc, "not cumulative")
}

func TestParseRejectsHistogramMissingInf(t *testing.T) {
	doc := `# TYPE draid_h histogram
draid_h_bucket{le="0.1"} 5
draid_h_sum 1
draid_h_count 5
`
	mustFail(t, doc, "+Inf")
}

func TestParseRejectsBadName(t *testing.T) {
	mustFail(t, "# TYPE 1draid counter\n1draid 1\n", "invalid")
}

func TestParseAcceptsValidDocument(t *testing.T) {
	doc := `# HELP draid_req_seconds Request latency.
# TYPE draid_req_seconds histogram
draid_req_seconds_bucket{route="/v1/jobs",code="200",le="0.1"} 3
draid_req_seconds_bucket{route="/v1/jobs",code="200",le="+Inf"} 4
draid_req_seconds_sum{route="/v1/jobs",code="200"} 1.25
draid_req_seconds_count{route="/v1/jobs",code="200"} 4
# TYPE draid_jobs_queued gauge
draid_jobs_queued 0
# TYPE draid_stage_seconds_total counter
draid_stage_seconds_total{stage="job:\"x\""} 2.5
`
	series, err := ParseText(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	var found bool
	for _, s := range series {
		if s.Name == "draid_stage_seconds_total" && s.Labels["stage"] == `job:"x"` {
			found = true
			if s.Value != 2.5 {
				t.Errorf("value = %v, want 2.5", s.Value)
			}
		}
	}
	if !found {
		t.Fatal("escaped stage label not decoded")
	}
}
