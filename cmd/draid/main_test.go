package main

import (
	"strings"
	"testing"
)

// TestResolveCacheBudget pins the flag→budget mapping: -serve-cache-mb
// wins when set, the deprecated split flags sum into the budget, the
// 256 MiB default applies when nothing is set, and any negative value
// is rejected with the offending flag named.
func TestResolveCacheBudget(t *testing.T) {
	cases := []struct {
		name                string
		serveMB, cacheMB    int64
		frameMB             int64
		serveSet, splitSet  bool
		want                int64
		wantNote, wantError string
	}{
		{name: "default", serveMB: 256, cacheMB: 128, frameMB: 128, want: 256 << 20},
		{name: "serve set", serveMB: 64, cacheMB: 128, frameMB: 128, serveSet: true, want: 64 << 20},
		{name: "serve zero disables", serveMB: 0, cacheMB: 128, frameMB: 128, serveSet: true, want: 0},
		{name: "split sums", serveMB: 256, cacheMB: 100, frameMB: 28, splitSet: true,
			want: 128 << 20, wantNote: "deprecated"},
		{name: "serve wins over split", serveMB: 512, cacheMB: 1, frameMB: 1, serveSet: true, splitSet: true,
			want: 512 << 20, wantNote: "ignored"},
		{name: "negative serve", serveMB: -1, cacheMB: 128, frameMB: 128, serveSet: true,
			wantError: "-serve-cache-mb"},
		{name: "negative cache", serveMB: 256, cacheMB: -5, frameMB: 128, splitSet: true,
			wantError: "-cache-mb"},
		{name: "negative frame", serveMB: 256, cacheMB: 128, frameMB: -9000, splitSet: true,
			wantError: "-frame-cache-mb"},
		// Negative values are rejected even on flags left at defaults
		// elsewhere: the check guards every value that could be shifted.
		{name: "negative unset still rejected", serveMB: 256, cacheMB: 128, frameMB: -1,
			wantError: "-frame-cache-mb"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, note, err := resolveCacheBudget(tc.serveMB, tc.cacheMB, tc.frameMB, tc.serveSet, tc.splitSet)
			if tc.wantError != "" {
				if err == nil {
					t.Fatalf("want error naming %s, got budget %d", tc.wantError, got)
				}
				if !strings.Contains(err.Error(), tc.wantError) {
					t.Fatalf("error %q does not name %s", err, tc.wantError)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("budget %d, want %d", got, tc.want)
			}
			if tc.wantNote == "" && note != "" {
				t.Fatalf("unexpected note %q", note)
			}
			if tc.wantNote != "" && !strings.Contains(note, tc.wantNote) {
				t.Fatalf("note %q does not mention %q", note, tc.wantNote)
			}
		})
	}
}
