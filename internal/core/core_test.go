package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLevelStrings(t *testing.T) {
	want := map[Level]string{
		Raw:               "1-Raw",
		Cleaned:           "2-Cleaned",
		Labeled:           "3-Labeled",
		FeatureEngineered: "4-Feature-engineered",
		AIReady:           "5-Fully AI-ready",
	}
	for l, s := range want {
		if l.String() != s {
			t.Fatalf("%d: %q", l, l.String())
		}
	}
	if !strings.Contains(Level(9).String(), "9") {
		t.Fatal("unknown level string")
	}
}

func TestStageStrings(t *testing.T) {
	names := []string{"Ingest", "Preprocess", "Transform", "Structure", "Shard"}
	for i, s := range Stages() {
		if s.String() != names[i] {
			t.Fatalf("stage %d: %q", i, s.String())
		}
	}
	if !strings.Contains(Stage(9).String(), "9") {
		t.Fatal("unknown stage string")
	}
}

func TestValidity(t *testing.T) {
	for _, l := range Levels() {
		if !l.Valid() {
			t.Fatalf("level %v invalid", l)
		}
	}
	if Level(0).Valid() || Level(6).Valid() {
		t.Fatal("out-of-range level valid")
	}
	for _, s := range Stages() {
		if !s.Valid() {
			t.Fatalf("stage %v invalid", s)
		}
	}
	if Stage(-1).Valid() || Stage(5).Valid() {
		t.Fatal("out-of-range stage valid")
	}
}

// TestMaturityMatrixReproduction verifies the Table 2 staircase exactly:
// level k populates the first k stages; everything else is grey.
func TestMaturityMatrixReproduction(t *testing.T) {
	wantCells := map[Level]int{Raw: 1, Cleaned: 2, Labeled: 3, FeatureEngineered: 4, AIReady: 5}
	total := 0
	for _, l := range Levels() {
		n := 0
		for _, s := range Stages() {
			if Applicable(l, s) {
				n++
				if CellDescription(l, s) == "" {
					t.Fatalf("applicable cell (%v,%v) has no description", l, s)
				}
			} else if CellDescription(l, s) != "" {
				t.Fatalf("grey cell (%v,%v) has description", l, s)
			}
		}
		if n != wantCells[l] {
			t.Fatalf("level %v populates %d stages, want %d", l, n, wantCells[l])
		}
		total += n
	}
	if total != 15 { // 1+2+3+4+5 populated cells in Table 2
		t.Fatalf("total populated cells=%d, want 15", total)
	}
}

func TestTable2CellTexts(t *testing.T) {
	// Spot-check the exact Table 2 wording.
	cases := []struct {
		l    Level
		s    Stage
		text string
	}{
		{Raw, Ingest, "Initial raw acquisition"},
		{Cleaned, Preprocess, "Initial spatial/temporal alignment or regridding"},
		{Labeled, Transform, "Initial normalization or anonymization; basic labels added"},
		{FeatureEngineered, Structure, "Domain-specific feature extraction completed"},
		{AIReady, Shard, "Data partitioned into train/test/val & sharded into binary formats for scalable ingestion"},
	}
	for _, c := range cases {
		if got := CellDescription(c.l, c.s); got != c.text {
			t.Fatalf("(%v,%v): %q", c.l, c.s, got)
		}
	}
}

func TestApplicableInvalidInputs(t *testing.T) {
	if Applicable(Level(0), Ingest) || Applicable(Raw, Stage(7)) {
		t.Fatal("invalid inputs must not be applicable")
	}
}

// factsAt returns Facts representative of a dataset at exactly the given
// level (used by the matrix reproduction and the monotonicity property).
func factsAt(l Level) Facts {
	f := Facts{}
	if l >= Raw {
		f.Acquired = true
	}
	if l >= Cleaned {
		f.StandardFormat = true
		f.Validated = true
		f.MissingRate = 0
		f.AlignedGrids = true
	}
	if l >= Labeled {
		f.LabelCoverage = 0.5
		f.Normalized = true
		f.MetadataFields = 5
	}
	if l >= FeatureEngineered {
		f.FeaturesExtracted = true
		f.StructuredLayout = true
		f.LabelCoverage = 1.0
	}
	if l >= AIReady {
		f.SplitDone = true
		f.Sharded = true
		f.PipelineAutomated = true
		f.AuditTrail = true
	}
	return f
}

func TestAssessEachLevel(t *testing.T) {
	th := DefaultThresholds()
	for _, l := range Levels() {
		a := Assess(factsAt(l), th)
		if a.Level != l {
			t.Fatalf("facts for %v assessed as %v (gaps: %v)", l, a.Level, a.Gaps)
		}
	}
}

func TestAssessNoData(t *testing.T) {
	a := Assess(Facts{}, DefaultThresholds())
	if a.Level != 0 || len(a.Gaps) == 0 {
		t.Fatalf("level=%v gaps=%v", a.Level, a.Gaps)
	}
}

func TestAssessGapsNameBlockers(t *testing.T) {
	th := DefaultThresholds()
	f := factsAt(Cleaned)
	a := Assess(f, th)
	if a.Level != Cleaned {
		t.Fatalf("level=%v", a.Level)
	}
	joined := strings.Join(a.Gaps, "; ")
	if !strings.Contains(joined, "label") {
		t.Fatalf("gaps should mention labels: %v", a.Gaps)
	}
	if !strings.Contains(joined, "normalization") {
		t.Fatalf("gaps should mention normalization: %v", a.Gaps)
	}
}

func TestAssessPrivacyGate(t *testing.T) {
	th := DefaultThresholds()
	f := factsAt(Labeled)
	f.RequiresPrivacy = true
	f.Anonymized = false
	a := Assess(f, th)
	if a.Level != Cleaned {
		t.Fatalf("un-anonymized PHI dataset must stall at Cleaned, got %v", a.Level)
	}
	f.Anonymized = true
	a = Assess(f, th)
	if a.Level != Labeled {
		t.Fatalf("anonymized dataset should reach Labeled, got %v", a.Level)
	}
}

func TestAssessMissingValuesBlockCleaned(t *testing.T) {
	th := DefaultThresholds()
	f := factsAt(Cleaned)
	f.MissingRate = 0.25
	a := Assess(f, th)
	if a.Level != Raw {
		t.Fatalf("25%% missing should stall at Raw, got %v", a.Level)
	}
	found := false
	for _, g := range a.Gaps {
		if strings.Contains(g, "missing") {
			found = true
		}
	}
	if !found {
		t.Fatalf("gaps=%v", a.Gaps)
	}
}

func TestAssessComprehensiveLabelingGate(t *testing.T) {
	th := DefaultThresholds()
	f := factsAt(FeatureEngineered)
	f.LabelCoverage = 0.5 // basic but not comprehensive
	a := Assess(f, th)
	if a.Level != Labeled {
		t.Fatalf("partial labels should stall at Labeled, got %v", a.Level)
	}
}

func TestAssessAuditGate(t *testing.T) {
	th := DefaultThresholds()
	f := factsAt(AIReady)
	f.AuditTrail = false
	a := Assess(f, th)
	if a.Level != FeatureEngineered {
		t.Fatalf("no audit trail should stall at L4, got %v", a.Level)
	}
}

func TestStageMaturityGreyCellsZero(t *testing.T) {
	th := DefaultThresholds()
	a := Assess(factsAt(Cleaned), th)
	for _, s := range []Stage{Transform, Structure, Shard} {
		if a.StageMaturity[s] != 0 {
			t.Fatalf("grey stage %v has maturity %v", s, a.StageMaturity[s])
		}
	}
	if a.StageMaturity[Ingest] == 0 || a.StageMaturity[Preprocess] == 0 {
		t.Fatalf("populated stages zero: %v", a.StageMaturity)
	}
}

func TestStageMaturityFullAtAIReady(t *testing.T) {
	a := Assess(factsAt(AIReady), DefaultThresholds())
	for _, s := range Stages() {
		if a.StageMaturity[s] < 0.99 {
			t.Fatalf("stage %v maturity %v at AI-ready", s, a.StageMaturity[s])
		}
	}
	if len(a.Gaps) != 0 {
		t.Fatalf("AI-ready dataset has gaps: %v", a.Gaps)
	}
}

// Property (paper claim C5): adding capabilities never lowers the level.
func TestMonotonicityProperty(t *testing.T) {
	th := DefaultThresholds()
	f := func(bits uint16, missing, labels float64) bool {
		base := Facts{
			Acquired:          true,
			StandardFormat:    bits&1 != 0,
			Validated:         bits&2 != 0,
			AlignedGrids:      bits&4 != 0,
			Normalized:        bits&8 != 0,
			FeaturesExtracted: bits&16 != 0,
			StructuredLayout:  bits&32 != 0,
			SplitDone:         bits&64 != 0,
			Sharded:           bits&128 != 0,
			PipelineAutomated: bits&256 != 0,
			AuditTrail:        bits&512 != 0,
			MetadataFields:    int(bits % 7),
			MissingRate:       abs01(missing),
			LabelCoverage:     abs01(labels),
		}
		before := Assess(base, th).Level

		improved := base
		improved.StandardFormat = true
		improved.Validated = true
		improved.MissingRate = 0
		improved.AlignedGrids = true
		after := Assess(improved, th).Level
		return after >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func abs01(x float64) float64 {
	if x < 0 {
		x = -x
	}
	for x > 1 {
		x /= 10
	}
	return x
}

func TestRenderMatrix(t *testing.T) {
	a := Assess(factsAt(Labeled), DefaultThresholds())
	out := RenderMatrix(a)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // header + 5 levels
		t.Fatalf("lines=%d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "--") {
		t.Fatalf("raw row should have grey cells:\n%s", out)
	}
	if !strings.Contains(lines[3], "[") {
		t.Fatalf("current level row should show maturity scores:\n%s", out)
	}
	if !strings.Contains(lines[5], "pending") {
		t.Fatalf("higher level rows should be pending:\n%s", out)
	}
	if !strings.Contains(lines[2], "done") {
		t.Fatalf("lower level rows should be done:\n%s", out)
	}
}

func TestTable1Catalog(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("rows=%d", len(rows))
	}
	domains := map[Domain]bool{}
	for _, r := range rows {
		domains[r.Domain] = true
		if len(r.WorkflowSteps) != 4 {
			t.Fatalf("%s: %d workflow steps, want 4 (Table 1)", r.Domain, len(r.WorkflowSteps))
		}
		if len(r.Challenges) != 3 {
			t.Fatalf("%s: %d challenges, want 3", r.Domain, len(r.Challenges))
		}
		if r.Architecture == "" || r.Modality == "" || r.Name == "" {
			t.Fatalf("%s: incomplete row %+v", r.Domain, r)
		}
	}
	for _, d := range Domains() {
		if !domains[d] {
			t.Fatalf("missing domain %s", d)
		}
	}
}

func TestTable1WorkflowWording(t *testing.T) {
	for _, r := range Table1() {
		switch r.Domain {
		case Climate:
			if r.WorkflowSteps[1] != "Resample grids" {
				t.Fatalf("climate steps=%v", r.WorkflowSteps)
			}
		case Fusion:
			if r.WorkflowSteps[0] != "Extract/align diagnostics" {
				t.Fatalf("fusion steps=%v", r.WorkflowSteps)
			}
		case BioHealth:
			if r.WorkflowSteps[3] != "Secure sharding" {
				t.Fatalf("bio steps=%v", r.WorkflowSteps)
			}
		case Materials:
			if r.WorkflowSteps[2] != "Graph encoding" {
				t.Fatalf("materials steps=%v", r.WorkflowSteps)
			}
		}
	}
}
