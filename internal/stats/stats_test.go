package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunningBasic(t *testing.T) {
	var r Running
	r.AddSlice([]float64{2, 4, 6, 8})
	if r.N() != 4 {
		t.Fatalf("n=%d", r.N())
	}
	if r.Mean() != 5 {
		t.Fatalf("mean=%v", r.Mean())
	}
	if got := r.Variance(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("var=%v, want 5", got)
	}
	if r.Min() != 2 || r.Max() != 8 {
		t.Fatalf("min=%v max=%v", r.Min(), r.Max())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.Std()) || !math.IsNaN(r.Min()) || !math.IsNaN(r.Max()) {
		t.Fatal("empty accumulator should give NaN stats")
	}
	if r.MissingRate() != 0 {
		t.Fatal("empty missing rate should be 0")
	}
}

func TestRunningNaNHandling(t *testing.T) {
	var r Running
	r.AddSlice([]float64{1, math.NaN(), 3, math.NaN()})
	if r.N() != 2 || r.NaNCount() != 2 {
		t.Fatalf("n=%d nan=%d", r.N(), r.NaNCount())
	}
	if r.Mean() != 2 {
		t.Fatalf("mean=%v", r.Mean())
	}
	if r.MissingRate() != 0.5 {
		t.Fatalf("missing=%v", r.MissingRate())
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
	}
	var whole Running
	whole.AddSlice(xs)

	var a, b Running
	a.AddSlice(xs[:317])
	b.AddSlice(xs[317:])
	a.Merge(&b)

	if a.N() != whole.N() {
		t.Fatalf("n %d vs %d", a.N(), whole.N())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-10 {
		t.Fatalf("mean %v vs %v", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Variance()-whole.Variance()) > 1e-8 {
		t.Fatalf("var %v vs %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatal("min/max mismatch after merge")
	}
}

func TestRunningMergeEmptySides(t *testing.T) {
	var a, b Running
	b.AddSlice([]float64{1, 2, 3})
	a.Merge(&b) // empty <- full
	if a.Mean() != 2 {
		t.Fatalf("mean=%v", a.Mean())
	}
	var c Running
	a.Merge(&c) // full <- empty
	if a.Mean() != 2 || a.N() != 3 {
		t.Fatal("merge with empty changed stats")
	}
}

// Property: merging any split of a series equals processing it whole.
func TestRunningMergeProperty(t *testing.T) {
	f := func(raw []float64, cut uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		k := int(cut) % len(xs)
		var whole, a, b Running
		whole.AddSlice(xs)
		a.AddSlice(xs[:k])
		b.AddSlice(xs[k:])
		a.Merge(&b)
		if a.N() != whole.N() || a.NaNCount() != whole.NaNCount() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(whole.Mean()))
		return math.Abs(a.Mean()-whole.Mean()) < 1e-6*scale &&
			math.Abs(a.Variance()-whole.Variance()) <= 1e-6*math.Max(1, whole.Variance())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("q=%v: got %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	got, err := Quantile([]float64{0, 10}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("got %v, want 5", got)
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("want error for empty data")
	}
	if _, err := Quantile([]float64{math.NaN()}, 0.5); err == nil {
		t.Fatal("want error for all-NaN data")
	}
	if _, err := Quantile([]float64{1}, 1.5); err == nil {
		t.Fatal("want error for q out of range")
	}
}

func TestQuantileIgnoresNaN(t *testing.T) {
	got, err := Quantile([]float64{math.NaN(), 1, 3, math.NaN()}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("got %v, want 2", got)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 1, 3, 5, 7, 9, 9.9} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("total=%d", h.Total())
	}
	if h.Counts[0] != 2 { // 0.5 and 1
		t.Fatalf("bin0=%d counts=%v", h.Counts[0], h.Counts)
	}
	if h.Counts[4] != 2 { // 9 and 9.9
		t.Fatalf("bin4=%d", h.Counts[4])
	}
}

func TestHistogramClampsAndSkipsNaN(t *testing.T) {
	h, _ := NewHistogram(0, 1, 2)
	h.Add(-5)         // clamps to bin 0
	h.Add(99)         // clamps to bin 1
	h.Add(math.NaN()) // ignored
	if h.Total() != 2 || h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Fatalf("counts=%v total=%d", h.Counts, h.Total())
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("want error for 0 bins")
	}
	if _, err := NewHistogram(1, 1, 3); err == nil {
		t.Fatal("want error for empty range")
	}
}

func TestHistogramMode(t *testing.T) {
	h, _ := NewHistogram(0, 10, 10)
	for i := 0; i < 5; i++ {
		h.Add(7.3)
	}
	h.Add(2)
	if got := h.Mode(); got != 7 {
		t.Fatalf("mode=%v, want 7", got)
	}
}

func TestHistogramEntropy(t *testing.T) {
	h, _ := NewHistogram(0, 2, 2)
	if h.Entropy() != 0 {
		t.Fatal("empty histogram entropy must be 0")
	}
	h.Add(0.5)
	h.Add(1.5)
	if got := h.Entropy(); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("entropy=%v, want ln2", got)
	}
	// Concentrated distribution: lower entropy.
	h2, _ := NewHistogram(0, 2, 2)
	h2.Add(0.5)
	h2.Add(0.5)
	if h2.Entropy() != 0 {
		t.Fatalf("concentrated entropy=%v, want 0", h2.Entropy())
	}
}

func TestClassBalance(t *testing.T) {
	cb := NewClassBalance([]string{"a", "a", "a", "b"})
	if cb.Total != 4 {
		t.Fatalf("total=%d", cb.Total)
	}
	if got := cb.ImbalanceRatio(); got != 3 {
		t.Fatalf("ratio=%v", got)
	}
	if ne := cb.NormalizedEntropy(); ne <= 0 || ne >= 1 {
		t.Fatalf("normalized entropy=%v, want in (0,1)", ne)
	}
}

func TestClassBalanceUniform(t *testing.T) {
	cb := NewClassBalance([]string{"x", "y", "x", "y"})
	if cb.ImbalanceRatio() != 1 {
		t.Fatalf("ratio=%v", cb.ImbalanceRatio())
	}
	if math.Abs(cb.NormalizedEntropy()-1) > 1e-12 {
		t.Fatalf("entropy=%v", cb.NormalizedEntropy())
	}
}

func TestClassBalanceDegenerate(t *testing.T) {
	cb := NewClassBalance([]string{"only"})
	if cb.ImbalanceRatio() != 1 || cb.NormalizedEntropy() != 1 {
		t.Fatal("single class should be 'balanced' by convention")
	}
	empty := NewClassBalance(nil)
	if empty.ImbalanceRatio() != 1 {
		t.Fatal("empty should be 1")
	}
}

func TestCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	got, err := Correlation(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("corr=%v, want 1", got)
	}
	neg := []float64{8, 6, 4, 2}
	got, err = Correlation(a, neg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got+1) > 1e-12 {
		t.Fatalf("corr=%v, want -1", got)
	}
}

func TestCorrelationErrors(t *testing.T) {
	if _, err := Correlation([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("want length mismatch error")
	}
	if _, err := Correlation([]float64{1, math.NaN()}, []float64{1, 2}); err == nil {
		t.Fatal("want error with <2 valid pairs")
	}
	if _, err := Correlation([]float64{3, 3}, []float64{1, 2}); err == nil {
		t.Fatal("want error for constant series")
	}
}

func TestCorrelationSkipsNaNPairs(t *testing.T) {
	a := []float64{1, math.NaN(), 2, 3}
	b := []float64{2, 100, 4, 6}
	got, err := Correlation(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("corr=%v, want 1 (NaN pair skipped)", got)
	}
}

func BenchmarkRunningAdd(b *testing.B) {
	var r Running
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add(float64(i % 1000))
	}
}
