// Command drai assesses dataset readiness against the paper's
// two-dimensional framework and prints the Table 2 maturity matrix with
// the dataset's position, stage maturities, and the gap list blocking the
// next Data Readiness Level.
//
// Usage:
//
//	drai -demo                      # walk a dataset through all 5 levels
//	drai -standard-format -validated -aligned -normalized \
//	     -label-coverage 0.5 -metadata 4
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	demo := flag.Bool("demo", false, "render the matrix for datasets staged at every readiness level")
	acquired := flag.Bool("acquired", true, "raw data exists")
	standardFormat := flag.Bool("standard-format", false, "stored in a standard self-describing format")
	validated := flag.Bool("validated", false, "ingest-time validation performed")
	missing := flag.Float64("missing-rate", 0, "fraction of missing values remaining")
	metadata := flag.Int("metadata", 0, "number of descriptive metadata fields")
	aligned := flag.Bool("aligned", false, "spatial/temporal alignment or regridding done")
	labelCoverage := flag.Float64("label-coverage", 0, "fraction of samples with labels")
	normalized := flag.Bool("normalized", false, "variables normalized")
	privacy := flag.Bool("requires-privacy", false, "dataset carries PHI/PII")
	anonymized := flag.Bool("anonymized", false, "privacy transformations applied")
	audit := flag.Bool("audit-trail", false, "provenance/audit records captured")
	features := flag.Bool("features", false, "domain-specific features extracted")
	structured := flag.Bool("structured", false, "fixed model-facing layout established")
	splitDone := flag.Bool("split", false, "train/test/val partitions exist")
	sharded := flag.Bool("sharded", false, "binary shards written")
	automated := flag.Bool("automated", false, "end-to-end pipeline automated")
	flag.Parse()

	if *demo {
		runDemo()
		return
	}

	facts := core.Facts{
		Acquired:          *acquired,
		StandardFormat:    *standardFormat,
		Validated:         *validated,
		MissingRate:       *missing,
		MetadataFields:    *metadata,
		AlignedGrids:      *aligned,
		LabelCoverage:     *labelCoverage,
		Normalized:        *normalized,
		RequiresPrivacy:   *privacy,
		Anonymized:        *anonymized,
		AuditTrail:        *audit,
		FeaturesExtracted: *features,
		StructuredLayout:  *structured,
		SplitDone:         *splitDone,
		Sharded:           *sharded,
		PipelineAutomated: *automated,
	}
	a := core.Assess(facts, core.DefaultThresholds())
	fmt.Printf("Data Readiness Level: %s\n\n", a.Level)
	fmt.Println(core.RenderMatrix(a))
	if len(a.Gaps) > 0 {
		fmt.Println("Blocking the next level:")
		for _, g := range a.Gaps {
			fmt.Printf("  - %s\n", g)
		}
	} else {
		fmt.Println("Dataset is fully AI-ready.")
	}
	_ = os.Stdout
}

func runDemo() {
	th := core.DefaultThresholds()
	stage := []struct {
		name  string
		facts core.Facts
	}{
		{"freshly acquired simulation dump", core.Facts{Acquired: true}},
		{"validated + aligned NetCDF", core.Facts{Acquired: true, StandardFormat: true,
			Validated: true, AlignedGrids: true}},
		{"normalized with basic labels", core.Facts{Acquired: true, StandardFormat: true,
			Validated: true, AlignedGrids: true, Normalized: true, LabelCoverage: 0.3,
			MetadataFields: 5}},
		{"feature-engineered, fully labeled", core.Facts{Acquired: true, StandardFormat: true,
			Validated: true, AlignedGrids: true, Normalized: true, LabelCoverage: 1,
			MetadataFields: 5, FeaturesExtracted: true, StructuredLayout: true}},
		{"sharded, automated, audited", core.Facts{Acquired: true, StandardFormat: true,
			Validated: true, AlignedGrids: true, Normalized: true, LabelCoverage: 1,
			MetadataFields: 5, FeaturesExtracted: true, StructuredLayout: true,
			SplitDone: true, Sharded: true, PipelineAutomated: true, AuditTrail: true}},
	}
	for _, s := range stage {
		a := core.Assess(s.facts, th)
		fmt.Printf("=== %s -> %s ===\n", s.name, a.Level)
		fmt.Println(core.RenderMatrix(a))
	}
}
