// Job model for the draid service: a submission names a domain plugin
// and synthetic-input scale; the server runs the archetype pipeline
// asynchronously on a bounded worker pool and retains the outputs
// (shard sink, manifest, readiness trajectory, provenance) for the
// serving endpoints. All per-domain behaviour — input synthesis,
// pipeline options, manifest extraction, sealed-shard opening, wire
// encoding — lives behind internal/domain plugins; this package never
// switches on core.Domain.
package server

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/domain"
	"repro/internal/pipeline"
	"repro/internal/provenance"
	"repro/internal/shard"
	"repro/pkg/client"
)

// The REST API types are owned by pkg/client — the supported SDK — so
// the server serves exactly the structs clients decode. The aliases
// keep this package's vocabulary.

// JobState is the lifecycle position of a submitted job.
type JobState = client.JobState

// Job lifecycle states.
const (
	JobQueued  = client.JobQueued
	JobRunning = client.JobRunning
	JobDone    = client.JobDone
	JobFailed  = client.JobFailed
)

// JobSpec is the submission body: which domain template to run and how
// large a synthetic input to prepare (see domain.Spec for the knobs and
// their ceilings).
type JobSpec = domain.Spec

// TrajectoryPoint is one stage of the job's readiness trajectory — the
// Table 2 walk exposed over the API.
type TrajectoryPoint = client.TrajectoryPoint

// JobStatus is the JSON view of a job.
type JobStatus = client.JobStatus

// Job is one pipeline run owned by the server.
type Job struct {
	mu         sync.Mutex
	id         string
	spec       JobSpec
	state      JobState
	err        string
	submitted  time.Time
	started    time.Time
	finished   time.Time
	trajectory []TrajectoryPoint
	records    int64

	// Populated on success.
	manifest *shard.Manifest
	store    shard.Store  // raw shard storage (owned; destroyed on eviction)
	open     shard.Opener // read path (plugin-wrapped for sealed domains)
	servable bool         // a manifest-indexed shard set is attached
	tracker  *provenance.Tracker
	key      []byte // per-job shard secret (sealed into the job log)

	// lastAccess drives TTL/LRU eviction: completion and every batch
	// stream refresh it.
	lastAccess time.Time

	// trace is the submitting request's trace ID; events is the
	// lifecycle timeline served by /v1/jobs/{id}/events (rebuilt from
	// the job log on replay, so it spans restarts).
	trace  string
	events []JobEvent

	// tenant owns the job ("" = submitted with auth off). Immutable
	// after construction — set before the job is published to the
	// table, so readers need no lock.
	tenant string
}

// touch refreshes the eviction clock.
func (j *Job) touch() {
	j.mu.Lock()
	j.lastAccess = time.Now()
	j.mu.Unlock()
}

// Events snapshots the job's lifecycle timeline in time order.
func (j *Job) Events() []JobEvent {
	j.mu.Lock()
	out := append([]JobEvent(nil), j.events...)
	j.mu.Unlock()
	sort.SliceStable(out, func(i, k int) bool { return out[i].Time.Before(out[k].Time) })
	return out
}

// Status snapshots the job for JSON rendering.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, Spec: j.spec, State: j.state, Error: j.err,
		Submitted: j.submitted, Records: j.records, Servable: j.servable,
		Trajectory: append([]TrajectoryPoint(nil), j.trajectory...),
		Tenant:     j.tenant,
	}
	if plug, err := domain.Lookup(j.spec.Domain); err == nil {
		st.Kind = plug.Codec.Kind()
		st.Wires = domain.Wires()
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.manifest != nil {
		st.Shards = len(j.manifest.Shards)
	}
	return st
}

// serveHandle returns what the batch endpoint needs — the manifest, the
// (possibly decrypting) shard opener, and the domain's wire codec — or
// an error describing why the job cannot stream yet.
func (j *Job) serveHandle() (*shard.Manifest, shard.Opener, domain.Codec, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state == JobQueued || j.state == JobRunning:
		return nil, nil, nil, fmt.Errorf("job %s is %s; batches are served once it is done", j.id, j.state)
	case j.state == JobFailed:
		return nil, nil, nil, fmt.Errorf("job %s failed: %s", j.id, j.err)
	case !j.servable || j.manifest == nil:
		return nil, nil, nil, fmt.Errorf("job %s (%s) has no servable shard set", j.id, j.spec.Domain)
	}
	plug, err := domain.Lookup(j.spec.Domain)
	if err != nil {
		return nil, nil, nil, err
	}
	return j.manifest, j.open, plug.Codec, nil
}

// jobResult carries a finished pipeline run back onto the Job.
type jobResult struct {
	trajectory []TrajectoryPoint
	records    int64
	manifest   *shard.Manifest
	open       shard.Opener
	servable   bool
	tracker    *provenance.Tracker
	pipe       *pipeline.Pipeline
	key        []byte
}

// runSpec resolves the domain plugin, synthesizes the input, and runs
// the archetype pipeline over the job's shard store (in-memory, durable
// FSSink, or parfs, chosen by the server) — the body of one worker-pool
// slot.
func runSpec(spec JobSpec, sink shard.Store) (*jobResult, error) {
	plug, err := domain.Lookup(spec.Domain)
	if err != nil {
		return nil, err
	}
	run, err := plug.Build(spec, sink)
	if err != nil {
		return nil, err
	}
	res := &jobResult{open: sink, pipe: run.Pipeline}
	snaps, err := run.Pipeline.Run(run.Dataset)
	res.trajectory = toTrajectory(snaps)
	res.tracker = run.Pipeline.Tracker
	if err != nil {
		return res, err
	}
	res.records = run.Dataset.Records
	manifest, err := plug.Manifest(run.Dataset)
	if err != nil {
		return res, err
	}
	res.manifest = manifest
	res.key = run.Key
	res.open = plug.Opener(sink, run.Key)
	res.servable = true
	return res, nil
}

func toTrajectory(snaps []pipeline.Snapshot) []TrajectoryPoint {
	out := make([]TrajectoryPoint, len(snaps))
	for i, s := range snaps {
		out[i] = TrajectoryPoint{
			Stage:     s.StageName,
			Kind:      s.StageKind.String(),
			Level:     int(s.Assessment.Level),
			LevelName: s.Assessment.Level.String(),
			Gaps:      append([]string(nil), s.Assessment.Gaps...),
		}
	}
	return out
}
