package server

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/pkg/client"
)

// scrape fetches /metrics and strict-parses it, failing the test on any
// exposition-format violation.
func scrape(t *testing.T, baseURL string) (map[string]float64, string) {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	series, err := telemetry.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("strict parse of /metrics failed: %v\n%s", err, body)
	}
	byKey := make(map[string]float64, len(series))
	for _, s := range series {
		byKey[s.Name+"{"+s.LabelString()+"}"] = s.Value
	}
	return byKey, string(body)
}

// TestMetricsStrictExposition validates the entire /metrics document
// with the strict parser after real traffic, and checks the serving
// histograms the acceptance criteria name.
func TestMetricsStrictExposition(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, CacheBytes: 1 << 20})
	id, err := SubmitAndWait(ts.URL, JobSpec{Domain: core.Climate, Months: 12, Lat: 8, Lon: 16}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := StreamBatches(ts.URL + "/v1/jobs/" + id + "/batches?batch_size=4&max_batches=2"); err != nil {
		t.Fatal(err)
	}
	byKey, text := scrape(t, ts.URL)

	for key, min := range map[string]float64{
		`draid_jobs_done_total{}`: 1,
		`draid_first_batch_seconds_count{domain="climate",wire="ndjson"}`:  1,
		`draid_batch_encode_seconds_count{domain="climate",wire="ndjson"}`: 1,
		`draid_shard_load_seconds_count{domain="climate",outcome="ok"}`:    1,
		`draid_stage_calls_total{stage="serve:batches"}`:                   1,
		`draid_stage_calls_total{stage="job:climate"}`:                     1,
	} {
		if v := byKey[key]; v < min {
			t.Errorf("%s = %v, want >= %v\n%s", key, v, min, text)
		}
	}
	// The request histogram is labeled by mux route pattern, never by
	// raw path (unbounded cardinality).
	var requests float64
	for key, v := range byKey {
		if strings.HasPrefix(key, "draid_request_seconds_count{") {
			if strings.Contains(key, id) {
				t.Errorf("request histogram labeled with a raw job ID: %s", key)
			}
			requests += v
		}
	}
	if requests == 0 {
		t.Errorf("no draid_request_seconds samples after real traffic\n%s", text)
	}
}

// TestMetricsScrapeDoesNotBlock pins the satellite fix: the old
// handleMetrics scanned the whole job table holding s.mu, so a slow
// scrape stalled every submission (and a stuck submission stalled the
// scrape). The registry path shares no lock with the job table — a
// scrape must complete while s.mu is held.
func TestMetricsScrapeDoesNotBlock(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	s.mu.Lock()
	defer s.mu.Unlock()
	done := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/metrics")
		if err == nil {
			_, err = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("/metrics blocked on the server mutex")
	}
}

// TestSubmissionsFlowDuringScrapeLoad hammers /metrics from several
// goroutines while submissions proceed; every submission must complete
// promptly. With the old mutex-holding scrape this serialized.
func TestSubmissionsFlowDuringScrapeLoad(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 256})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		start := time.Now()
		st, code := postJob(t, ts.URL, JobSpec{Domain: core.Climate, Name: fmt.Sprintf("s%d", i), Seed: int64(i + 1)})
		if code != http.StatusAccepted {
			close(stop)
			t.Fatalf("submission %d status %d (%+v)", i, code, st)
		}
		if d := time.Since(start); d > 2*time.Second {
			close(stop)
			t.Fatalf("submission %d took %v under scrape load", i, d)
		}
	}
	close(stop)
	wg.Wait()
}

// BenchmarkMetricsScrape prices one /metrics render with a populated
// job table — the cost an operator's scraper imposes per interval.
func BenchmarkMetricsScrape(b *testing.B) {
	s, err := New(Options{Workers: 1, QueueDepth: 512})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	// Populate label children so the render is representative.
	for i := 0; i < 64; i++ {
		s.metrics.observeStage(fmt.Sprintf("stage-%d", i), 0.001, 1, 100)
		s.metrics.requestSeconds.With("GET /v1/jobs/{id}", "200").Observe(0.001)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		s.metrics.reg.WritePrometheus(&buf)
	}
}

// TestJobEventsTimeline checks the full lifecycle timeline — and that a
// restarted server replays it from the job log, pre-restart transitions
// included.
func TestJobEventsTimeline(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Options{Workers: 1, DataDir: dir})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := client.New(ts.URL, client.WithPollInterval(5*time.Millisecond), client.WithTrace("timeline-test-trace"))
	st, err := c.SubmitJob(ctx, JobSpec{Domain: core.Climate, Name: "ev", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if st.Trace != "timeline-test-trace" {
		t.Fatalf("submission trace %q, want the pinned one", st.Trace)
	}
	if _, err := c.WaitDone(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	assertLifecycle := func(events []client.JobEvent, where string) {
		t.Helper()
		want := []string{client.EventSubmitted, client.EventQueued, client.EventRunning, client.EventDone}
		var got []string
		for _, ev := range events {
			got = append(got, ev.Event)
			if ev.Trace != "timeline-test-trace" {
				t.Errorf("%s: event %s has trace %q, want the submission trace", where, ev.Event, ev.Trace)
			}
		}
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Fatalf("%s: events %v, want %v", where, got, want)
		}
		for i := 1; i < len(events); i++ {
			if events[i].Time.Before(events[i-1].Time) {
				t.Fatalf("%s: events out of order: %+v", where, events)
			}
		}
	}
	events, err := c.Events(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertLifecycle(events, "live")

	// Restart: the timeline must survive via log replay.
	ts.Close()
	s.Close()
	_, ts2 := newTestServer(t, Options{Workers: 1, DataDir: dir})
	c2 := client.New(ts2.URL, client.WithPollInterval(5*time.Millisecond))
	events2, err := c2.Events(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertLifecycle(events2, "replayed")
}

// lockedBuf is a goroutine-safe log sink for fleet trace assertions.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTracePropagatesAcrossFleet is the satellite trace test: one trace
// ID observed at the proxying node, the owning node, and in the SDK's
// response surface — for both the transparent-proxy and the
// 307-redirect paths.
func TestTracePropagatesAcrossFleet(t *testing.T) {
	logs := make([]*lockedBuf, 3)
	fleet := startFleet(t, t.TempDir(), 3, func(i int, o *Options) {
		logs[i] = &lockedBuf{}
		o.Logger = slog.New(slog.NewTextHandler(logs[i], &slog.HandlerOptions{Level: slog.LevelDebug}))
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Submit through node 0 until a job lands on a different owner, so
	// the submission takes the proxy hop.
	const trace = "fleet-trace-e2e.1"
	c := client.New(fleet[0].ts.URL, client.WithPollInterval(5*time.Millisecond), client.WithTrace(trace))
	var jobID string
	var owner int
	for seed := 1; seed <= 20; seed++ {
		st, err := c.SubmitJob(ctx, JobSpec{Domain: core.Climate, Name: fmt.Sprintf("tr%d", seed), Seed: int64(seed)})
		if err != nil {
			t.Fatal(err)
		}
		if st.Trace != trace {
			t.Fatalf("SDK surfaced trace %q, want %q", st.Trace, trace)
		}
		if o := ownerOf(t, fleet, 0, st.ID); o != 0 {
			jobID, owner = st.ID, o
			break
		}
	}
	if jobID == "" {
		t.Fatal("20 submissions all hashed to the entry node; cannot exercise the proxy hop")
	}
	if _, err := c.WaitDone(ctx, jobID); err != nil {
		t.Fatal(err)
	}

	// Proxy path: stream batches through the non-owner. The response
	// trace header and both nodes' logs must carry the client's ID.
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fleet[0].ts.URL+"/v1/jobs/"+jobID+"/batches?batch_size=8&max_batches=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(telemetry.TraceHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Values(telemetry.TraceHeader); len(got) != 1 || got[0] != trace {
		t.Fatalf("proxied stream trace header %v, want exactly one %q", got, trace)
	}
	for _, idx := range []int{0, owner} {
		if !strings.Contains(logs[idx].String(), trace) {
			t.Fatalf("node %s log does not mention trace %q:\n%s", fleet[idx].id, trace, logs[idx].String())
		}
	}

	// Redirect path: a fresh trace via X-Draid-Route: redirect. Go's
	// client re-sends custom headers on the 307, so the owner must log
	// and echo the same ID.
	const rtrace = "fleet-trace-redirect.1"
	req2, err := http.NewRequestWithContext(ctx, http.MethodGet, fleet[0].ts.URL+"/v1/jobs/"+jobID, nil)
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set(telemetry.TraceHeader, rtrace)
	req2.Header.Set("X-Draid-Route", "redirect")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("redirected status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get(telemetry.TraceHeader); got != rtrace {
		t.Fatalf("redirected trace header %q, want %q", got, rtrace)
	}
	if !strings.Contains(logs[owner].String(), rtrace) {
		t.Fatalf("owner %s log does not mention redirect trace %q", fleet[owner].id, rtrace)
	}
}

// TestDebugEndpoints gates pprof and the runtime gauges on
// Options.Debug.
func TestDebugEndpoints(t *testing.T) {
	_, plain := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(plain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof served without Debug")
	}
	byKey, _ := scrape(t, plain.URL)
	if _, ok := byKey["draid_goroutines{}"]; ok {
		t.Fatal("runtime gauges exported without Debug")
	}

	_, dbg := newTestServer(t, Options{Workers: 1, Debug: true})
	resp, err = http.Get(dbg.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof under Debug: status %d", resp.StatusCode)
	}
	byKey, text := scrape(t, dbg.URL)
	if v := byKey["draid_goroutines{}"]; v <= 0 {
		t.Fatalf("draid_goroutines = %v under Debug\n%s", v, text)
	}
	if _, ok := byKey["draid_heap_alloc_bytes{}"]; !ok {
		t.Fatalf("draid_heap_alloc_bytes missing under Debug\n%s", text)
	}
}

// TestMetricsFamiliesDocumented is the hygiene gate: every draid_*
// family the server can emit — debug and cluster modes included — must
// be named in the README's Observability section. An undocumented
// series fails CI here.
func TestMetricsFamiliesDocumented(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	families := map[string]bool{}
	collect := func(baseURL string) {
		resp, err := http.Get(baseURL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<24)
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			if len(fields) >= 3 && fields[0] == "#" && fields[1] == "TYPE" {
				families[fields[2]] = true
			}
		}
	}
	_, dbg := newTestServer(t, Options{Workers: 1, Debug: true})
	collect(dbg.URL)
	fleet := startFleet(t, t.TempDir(), 2, nil)
	collect(fleet[0].ts.URL)

	if len(families) < 20 {
		t.Fatalf("only %d families collected — scrape broken?", len(families))
	}
	for name := range families {
		if !bytes.Contains(readme, []byte(name)) {
			t.Errorf("metric family %s is emitted but not documented in README.md", name)
		}
	}
}
