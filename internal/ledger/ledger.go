// Package ledger is draid's tamper-evident audit log: an append-only
// NDJSON file of security-relevant events (job submissions, stream
// opens, evictions, auth failures) where every record is hash-chained
// to its predecessor and records are grouped into fixed-size Merkle
// batches whose roots are published for offline verification. The
// write path uses group commit: appenders share one fsync per batch
// window instead of paying one each, which is what keeps the audit
// trail off the submit hot path (the "Merkle batching" variant of the
// direct-ledger design, see RunLedgerBenchmark).
//
// Durability contract: Append returns only after the record's bytes
// are fsynced (alone in direct mode, amortized across the group
// otherwise). A crash mid-append leaves a torn final line that Open
// truncates; any other chain damage — a reordered, edited, or deleted
// record — fails Open with a chain-break error, because every record's
// hash covers its predecessor's.
package ledger

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// Audit record types.
const (
	TypeSubmit      = "submit"       // job accepted into a queue
	TypeStream      = "stream"       // batch stream opened against a job
	TypeEvict       = "evict"        // retention deleted a job's shards
	TypeAuthFailure = "auth_failure" // request rejected by token auth
)

// Record is one line of the audit log. Hash is the SHA-256 of the
// record's canonical JSON with Hash itself empty, so the stored line
// self-certifies; Prev chains it to the preceding record (empty on the
// first record).
type Record struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Type   string    `json:"type"`
	Tenant string    `json:"tenant,omitempty"`
	Job    string    `json:"job,omitempty"`
	Detail string    `json:"detail,omitempty"`
	Node   string    `json:"node,omitempty"`
	Prev   string    `json:"prev,omitempty"`
	Hash   string    `json:"hash"`
}

// HashRecord computes the hash a record must carry: SHA-256 over the
// record's JSON with the Hash field cleared. Exported so offline
// verifiers can re-derive the chain from a downloaded log.
func HashRecord(rec Record) string {
	rec.Hash = ""
	b, _ := json.Marshal(rec)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// BatchRoot is one published Merkle root: the root over the record
// hashes of batch Batch (records [FirstSeq, LastSeq]). Batches are
// deterministic — batch k covers seqs [k*size+1, (k+1)*size] — so a
// replayed ledger recomputes identical roots. The final batch is
// unsealed until it fills; its provisional root still verifies
// proofs for the records it already holds.
type BatchRoot struct {
	Batch    int    `json:"batch"`
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"`
	Records  int    `json:"records"`
	Root     string `json:"root"`
	Sealed   bool   `json:"sealed"`
}

// Config tunes a Ledger.
type Config struct {
	// Path is the NDJSON audit log file.
	Path string
	// Node stamps records with the fleet member writing them.
	Node string
	// BatchSize is records per Merkle batch (<=0 means 64). Also the
	// group-commit ceiling: a batch's worth of pending appends forces a
	// sync even inside the coalescing window.
	BatchSize int
	// FlushWait is the group-commit coalescing window: the first
	// appender of a group waits this long for followers before syncing
	// once for all of them (<0 disables waiting; 0 means 2ms).
	FlushWait time.Duration
	// Direct makes every Append write and fsync its own record — the
	// no-batching reference the benchmark compares against.
	Direct bool
}

// Ledger is an open audit log. Safe for concurrent appenders.
type Ledger struct {
	cfg Config

	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	seq     uint64
	prev    string   // hash of the last appended record
	records []Record // full history, for proofs and tenant checks
	hashes  [][]byte // raw record hashes (Merkle leaves)
	sealed  []string // cached roots of full batches
	group   *syncGroup
	closed  bool

	// Counters for /metrics (read via Stats without blocking appends
	// longer than a map access).
	nAppends int64
	nSyncs   int64
	nBytes   int64
}

// syncGroup is one group commit in flight: followers wait on done and
// read err, which the leader writes before closing the channel.
type syncGroup struct {
	done chan struct{}
	err  error
}

// Open opens (or creates) the audit log at cfg.Path, replaying and
// verifying the existing chain. A torn final line (crash mid-append)
// is truncated away; any interior damage or hash mismatch is a
// chain-break error — the ledger refuses to extend a history it
// cannot certify.
func Open(cfg Config) (*Ledger, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.FlushWait == 0 {
		cfg.FlushWait = 2 * time.Millisecond
	}
	l := &Ledger{cfg: cfg}
	if err := l.replay(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(cfg.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("ledger: open %s: %w", cfg.Path, err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	return l, nil
}

// replay loads and verifies the existing log. Offsets are tracked per
// line so a torn tail can be truncated to the last committed record.
func (l *Ledger) replay() error {
	b, err := os.ReadFile(l.cfg.Path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("ledger: read %s: %w", l.cfg.Path, err)
	}
	good := int64(0) // offset just past the last verified record
	off := int64(0)
	for len(b) > 0 {
		nl := bytes.IndexByte(b, '\n')
		line := b
		torn := nl < 0 // no newline: the append was cut mid-write
		if !torn {
			line = b[:nl]
			b = b[nl+1:]
		} else {
			b = nil
		}
		lineLen := int64(len(line))
		if !torn {
			lineLen++
		}
		if len(bytes.TrimSpace(line)) == 0 {
			off += lineLen
			if !torn {
				good = off
			}
			continue
		}
		var rec Record
		if jerr := json.Unmarshal(line, &rec); jerr != nil {
			if torn || len(b) == 0 {
				break // torn tail: truncate below
			}
			return fmt.Errorf("ledger: %s: unparsable record after seq %d (chain broken)", l.cfg.Path, l.seq)
		}
		if rec.Seq != l.seq+1 || rec.Prev != l.prev || HashRecord(rec) != rec.Hash {
			if torn {
				break
			}
			return fmt.Errorf("ledger: %s: hash chain broken at seq %d", l.cfg.Path, rec.Seq)
		}
		if torn {
			// Even a fully parsable tail without its newline never
			// completed its fsync (line and terminator are written as one
			// buffer), so its Append never returned success. Drop it: a
			// record either committed fully or never happened.
			break
		}
		l.seq = rec.Seq
		l.prev = rec.Hash
		l.records = append(l.records, rec)
		raw, derr := hex.DecodeString(rec.Hash)
		if derr != nil {
			return fmt.Errorf("ledger: %s: bad hash encoding at seq %d", l.cfg.Path, rec.Seq)
		}
		l.hashes = append(l.hashes, raw)
		off += lineLen
		good = off
	}
	if fi, serr := os.Stat(l.cfg.Path); serr == nil && fi.Size() > good {
		if terr := os.Truncate(l.cfg.Path, good); terr != nil {
			return fmt.Errorf("ledger: truncate torn tail of %s: %w", l.cfg.Path, terr)
		}
	}
	// Seal the roots of every full batch up front so Roots and Prove
	// never recompute them.
	for batch := 0; (batch+1)*l.cfg.BatchSize <= len(l.hashes); batch++ {
		l.sealed = append(l.sealed, hex.EncodeToString(
			merkleRoot(l.hashes[batch*l.cfg.BatchSize:(batch+1)*l.cfg.BatchSize])))
	}
	return nil
}

// Append commits one audit record, returning it with its assigned
// sequence number and chain hash once it is durable on disk.
func (l *Ledger) Append(typ, tenant, job, detail string) (Record, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return Record{}, fmt.Errorf("ledger: closed")
	}
	rec := Record{
		Seq: l.seq + 1, Time: time.Now().UTC(), Type: typ,
		Tenant: tenant, Job: job, Detail: detail, Node: l.cfg.Node,
		Prev: l.prev,
	}
	rec.Hash = HashRecord(rec)
	b, err := json.Marshal(rec)
	if err != nil {
		l.mu.Unlock()
		return Record{}, fmt.Errorf("ledger: encode record: %w", err)
	}
	if _, err := l.w.Write(append(b, '\n')); err != nil {
		l.mu.Unlock()
		return Record{}, fmt.Errorf("ledger: append: %w", err)
	}
	l.seq = rec.Seq
	l.prev = rec.Hash
	l.records = append(l.records, rec)
	raw, _ := hex.DecodeString(rec.Hash)
	l.hashes = append(l.hashes, raw)
	if len(l.hashes)%l.cfg.BatchSize == 0 {
		batch := len(l.hashes)/l.cfg.BatchSize - 1
		l.sealed = append(l.sealed, hex.EncodeToString(
			merkleRoot(l.hashes[batch*l.cfg.BatchSize:])))
	}
	l.nAppends++
	l.nBytes += int64(len(b) + 1)

	if l.cfg.Direct {
		err := l.syncLocked()
		l.mu.Unlock()
		return rec, err
	}
	if g := l.group; g != nil {
		// A leader is already coalescing: ride its fsync.
		l.mu.Unlock()
		<-g.done
		return rec, g.err
	}
	// Become the leader: give followers a short window to pile their
	// records into this group's single fsync, then commit for everyone.
	g := &syncGroup{done: make(chan struct{})}
	l.group = g
	l.mu.Unlock()
	if l.cfg.FlushWait > 0 {
		time.Sleep(l.cfg.FlushWait)
	}
	l.mu.Lock()
	l.group = nil
	g.err = l.syncLocked()
	l.mu.Unlock()
	close(g.done)
	return rec, g.err
}

// syncLocked flushes buffered lines and fsyncs. Caller holds mu.
func (l *Ledger) syncLocked() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("ledger: flush: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("ledger: fsync: %w", err)
	}
	l.nSyncs++
	return nil
}

// Len reports how many records the ledger holds.
func (l *Ledger) Len() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Roots returns every batch root: sealed roots for full batches plus
// the provisional root of the open tail batch (if any records are in
// it). This is the document /v1/audit/roots publishes.
func (l *Ledger) Roots() []BatchRoot {
	l.mu.Lock()
	defer l.mu.Unlock()
	size := l.cfg.BatchSize
	out := make([]BatchRoot, 0, len(l.sealed)+1)
	for i, root := range l.sealed {
		out = append(out, BatchRoot{
			Batch: i, FirstSeq: uint64(i*size) + 1, LastSeq: uint64((i + 1) * size),
			Records: size, Root: root, Sealed: true,
		})
	}
	if tail := len(l.hashes) % size; tail > 0 {
		batch := len(l.hashes) / size
		out = append(out, BatchRoot{
			Batch: batch, FirstSeq: uint64(batch*size) + 1, LastSeq: uint64(len(l.hashes)),
			Records: tail, Root: hex.EncodeToString(merkleRoot(l.hashes[batch*size:])),
			Sealed: false,
		})
	}
	return out
}

// Record returns the record at seq (1-based).
func (l *Ledger) Record(seq uint64) (Record, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < 1 || seq > uint64(len(l.records)) {
		return Record{}, false
	}
	return l.records[seq-1], true
}

// Prove builds the Merkle inclusion proof for the record at seq
// against its batch's root (sealed, or the open batch's provisional
// root). Verify offline with Proof.Verify plus a published root.
func (l *Ledger) Prove(seq uint64) (*Proof, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < 1 || seq > uint64(len(l.hashes)) {
		return nil, fmt.Errorf("ledger: no record with seq %d", seq)
	}
	size := l.cfg.BatchSize
	idx := int(seq - 1)
	batch := idx / size
	lo := batch * size
	hi := lo + size
	if hi > len(l.hashes) {
		hi = len(l.hashes)
	}
	leaves := l.hashes[lo:hi]
	path := merkleProof(leaves, idx-lo)
	steps := make([]ProofStep, len(path))
	for i, st := range path {
		steps[i] = ProofStep{Hash: hex.EncodeToString(st.hash), Left: st.left}
	}
	return &Proof{
		Seq:    seq,
		Batch:  batch,
		Record: l.records[idx],
		Path:   steps,
		Root:   hex.EncodeToString(merkleRoot(leaves)),
	}, nil
}

// Stats is a point-in-time counter snapshot for /metrics.
type Stats struct {
	Records int64 // records appended this process (replayed ones excluded)
	Syncs   int64 // fsyncs issued (group commits count once)
	Bytes   int64 // record bytes written this process
}

// Stats snapshots the ledger's write counters.
func (l *Ledger) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Records: l.nAppends, Syncs: l.nSyncs, Bytes: l.nBytes}
}

// Close flushes, fsyncs, and closes the log file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
