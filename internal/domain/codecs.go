// Wire codecs: one per shard-record encoding. A codec's Decode runs
// once per record at shard-cache fill time; Line runs per batch on the
// streaming hot path, so lines reference decoded slices instead of
// copying them.
package domain

import (
	"fmt"
	"math"

	"repro/internal/formats/bp"
	"repro/internal/formats/tfrecord"
	"repro/internal/loader"
)

// Wire kind names, the values of BatchHeader.Kind.
const (
	KindSamples         = "samples"
	KindFusionWindows   = "fusion_windows"
	KindMaterialsGraphs = "materials_graphs"
)

// sampleCodec serves loader.Sample shards (climate, bio): flat float32
// feature vectors with integer labels.
type sampleCodec struct{}

func (sampleCodec) Kind() string { return KindSamples }

func (sampleCodec) Decode(rec []byte) (any, int64, error) {
	s, err := loader.DecodeSample(rec)
	if err != nil {
		return nil, 0, err
	}
	return s, int64(len(rec)), nil
}

// sampleLine keeps the pre-plugin wire layout: features and labels at
// the top level, now tagged with a kind.
type sampleLine struct {
	BatchHeader
	Features [][]float32 `json:"features"`
	Labels   []int32     `json:"labels"`
}

func (sampleCodec) Line(h BatchHeader, recs []any) (any, error) {
	ln := &sampleLine{BatchHeader: h,
		Features: make([][]float32, len(recs)), Labels: make([]int32, len(recs))}
	for i, r := range recs {
		s, ok := r.(*loader.Sample)
		if !ok {
			return nil, fmt.Errorf("domain: samples codec got %T", r)
		}
		ln.Features[i] = s.Features
		ln.Labels[i] = s.Label
	}
	return ln, nil
}

// FusionWindow is one decoded fusion shard record: a windowed,
// channel-major diagnostic slice with its disruption label and the
// horizon the label looks ahead.
type FusionWindow struct {
	Signal  []float32
	Shot    int64
	Start   int64
	Label   int64
	Horizon float32
}

// fusionCodec serves the fusion pipeline's TFRecord tf.train.Examples.
type fusionCodec struct{}

func (fusionCodec) Kind() string { return KindFusionWindows }

func (fusionCodec) Decode(rec []byte) (any, int64, error) {
	ex, err := tfrecord.Unmarshal(rec)
	if err != nil {
		return nil, 0, err
	}
	w := &FusionWindow{Signal: ex.Features["signal"].Floats}
	if len(w.Signal) == 0 {
		return nil, 0, fmt.Errorf("domain: fusion record without signal floats")
	}
	// signal/shot/label have been written since the pipeline's first
	// version — their absence means corruption, not age, so it is an
	// error (a silently-defaulted label=0 would mis-serve "disruption"
	// ground truth). start/horizon were added with the serving codecs
	// and legitimately default to zero on pre-plugin shards replayed
	// from old job logs.
	requiredInt := func(name string) (int64, error) {
		ints := ex.Features[name].Ints
		if len(ints) == 0 {
			return 0, fmt.Errorf("domain: fusion record without %q int feature", name)
		}
		return ints[0], nil
	}
	if w.Shot, err = requiredInt("shot"); err != nil {
		return nil, 0, err
	}
	if w.Label, err = requiredInt("label"); err != nil {
		return nil, 0, err
	}
	if ints := ex.Features["start"].Ints; len(ints) > 0 {
		w.Start = ints[0]
	}
	if fl := ex.Features["horizon"].Floats; len(fl) > 0 {
		w.Horizon = fl[0]
	}
	return w, int64(len(w.Signal))*4 + 48, nil
}

type fusionLine struct {
	BatchHeader
	Labels   []int64     `json:"labels"`
	Signals  [][]float32 `json:"signals"`
	Shots    []int64     `json:"shots"`
	Starts   []int64     `json:"starts"`
	Horizons []float32   `json:"horizons"`
}

func (fusionCodec) Line(h BatchHeader, recs []any) (any, error) {
	ln := &fusionLine{BatchHeader: h,
		Labels: make([]int64, len(recs)), Signals: make([][]float32, len(recs)),
		Shots: make([]int64, len(recs)), Starts: make([]int64, len(recs)),
		Horizons: make([]float32, len(recs))}
	for i, r := range recs {
		w, ok := r.(*FusionWindow)
		if !ok {
			return nil, fmt.Errorf("domain: fusion codec got %T", r)
		}
		ln.Labels[i] = w.Label
		ln.Signals[i] = w.Signal
		ln.Shots[i] = w.Shot
		ln.Starts[i] = w.Start
		ln.Horizons[i] = w.Horizon
	}
	return ln, nil
}

// WireGraph is one decoded materials shard record: a periodic cutoff
// graph with ragged per-graph tensors flattened row-major alongside
// their shapes (nodes × feature_dim node features, 2-wide edge list).
type WireGraph struct {
	Nodes        int       `json:"nodes"`
	FeatureDim   int       `json:"feature_dim"`
	NodeFeatures []float64 `json:"node_features"`
	Edges        []int64   `json:"edges"`
	EdgeLengths  []float64 `json:"edge_lengths"`
	Energy       float64   `json:"energy"`
	ClassID      int64     `json:"class_id"`
}

// materialsCodec serves the materials pipeline's per-graph BP process
// groups.
type materialsCodec struct{}

func (materialsCodec) Kind() string { return KindMaterialsGraphs }

func (materialsCodec) Decode(rec []byte) (any, int64, error) {
	_, _, vars, err := bp.UnmarshalPG(rec)
	if err != nil {
		return nil, 0, err
	}
	byName := make(map[string]bp.Variable, len(vars))
	for _, v := range vars {
		byName[v.Name] = v
	}
	// Shapes are attacker-controlled ints off the wire (the per-variable
	// CRC only covers the data bytes): every shape must be non-negative,
	// modest, and consistent with its data length, or clients indexing
	// node_features[n*feature_dim+f] by the documented contract would
	// read out of bounds.
	const maxDim = 1 << 31
	nf, ok := byName["node_features"]
	// Both dims must be >= 1: a structure always has atoms and features,
	// and a zero dim would let N*F==len(Data) hold vacuously for any
	// fabricated node count.
	if !ok || len(nf.Shape) != 2 ||
		nf.Shape[0] < 1 || nf.Shape[1] < 1 || nf.Shape[0] > maxDim || nf.Shape[1] > maxDim ||
		nf.Shape[0]*nf.Shape[1] != len(nf.Data) {
		return nil, 0, fmt.Errorf("domain: materials record without consistent [N,F] node_features")
	}
	ed, ok := byName["edges"]
	if !ok || len(ed.Shape) != 2 || ed.Shape[1] != 2 ||
		ed.Shape[0] < 0 || ed.Shape[0] > maxDim || 2*ed.Shape[0] != len(ed.Data) {
		return nil, 0, fmt.Errorf("domain: materials record without consistent [E,2] edges")
	}
	if len(byName["edge_lengths"].Data) != ed.Shape[0] {
		return nil, 0, fmt.Errorf("domain: materials record with %d edge_lengths for %d edges",
			len(byName["edge_lengths"].Data), ed.Shape[0])
	}
	g := &WireGraph{
		Nodes:        nf.Shape[0],
		FeatureDim:   nf.Shape[1],
		NodeFeatures: nf.Data,
		Edges:        make([]int64, len(ed.Data)),
		EdgeLengths:  byName["edge_lengths"].Data,
	}
	for i, e := range ed.Data {
		// Endpoints must be integral node indices (NaN fails every
		// comparison, so it is rejected here too) — clients index
		// node_features by them.
		if !(e >= 0 && e < float64(g.Nodes)) || e != math.Trunc(e) {
			return nil, 0, fmt.Errorf("domain: materials record with edge endpoint %v outside %d nodes", e, g.Nodes)
		}
		g.Edges[i] = int64(e)
	}
	if v := byName["energy"].Data; len(v) > 0 {
		g.Energy = v[0]
	}
	if v := byName["class_id"].Data; len(v) > 0 {
		g.ClassID = int64(v[0])
	}
	size := int64(len(g.NodeFeatures)+len(g.EdgeLengths))*8 + int64(len(g.Edges))*8 + 64
	return g, size, nil
}

type materialsLine struct {
	BatchHeader
	Graphs []*WireGraph `json:"graphs"`
}

func (materialsCodec) Line(h BatchHeader, recs []any) (any, error) {
	ln := &materialsLine{BatchHeader: h, Graphs: make([]*WireGraph, len(recs))}
	for i, r := range recs {
		g, ok := r.(*WireGraph)
		if !ok {
			return nil, fmt.Errorf("domain: materials codec got %T", r)
		}
		ln.Graphs[i] = g
	}
	return ln, nil
}
