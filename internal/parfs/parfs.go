// Package parfs simulates a striped parallel filesystem (a Lustre/GPFS
// stand-in). The paper's scale argument (§1: >10 TB training sets require
// "high-throughput, parallel file I/O") needs a substrate where striping,
// per-target bandwidth, and contention are observable on one node: files
// are striped round-robin across OSTs (object storage targets); each OST
// serializes its I/O and charges latency + bytes/bandwidth per chunk, so
// concurrent writers to disjoint OSTs overlap while same-OST traffic
// contends — exactly the behaviour that makes parallel sharding scale
// until the stripe width saturates.
package parfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Config sizes the simulated filesystem.
type Config struct {
	// OSTs is the number of object storage targets (>=1).
	OSTs int
	// StripeSize is the chunk size in bytes distributed round-robin.
	StripeSize int
	// BandwidthMBps is each OST's throughput in MiB/s.
	BandwidthMBps float64
	// LatencyMicros is the fixed per-chunk overhead in microseconds.
	LatencyMicros int
}

// DefaultConfig models a small burst-buffer-class system scaled down so
// benchmarks finish quickly: 8 OSTs, 1 MiB stripes, 4 GiB/s per OST.
func DefaultConfig() Config {
	return Config{OSTs: 8, StripeSize: 1 << 20, BandwidthMBps: 4096, LatencyMicros: 50}
}

func (c Config) validate() error {
	if c.OSTs < 1 {
		return fmt.Errorf("parfs: OSTs=%d must be >=1", c.OSTs)
	}
	if c.StripeSize < 1 {
		return fmt.Errorf("parfs: stripe size %d must be >=1", c.StripeSize)
	}
	if c.BandwidthMBps <= 0 {
		return fmt.Errorf("parfs: bandwidth %v must be positive", c.BandwidthMBps)
	}
	if c.LatencyMicros < 0 {
		return fmt.Errorf("parfs: negative latency %d", c.LatencyMicros)
	}
	return nil
}

// ost is one storage target: a mutex (serializing its service time) plus
// accounting.
type ost struct {
	mu    sync.Mutex
	busy  time.Duration
	ops   int64
	bytes int64
}

// FS is the simulated filesystem.
type FS struct {
	cfg   Config
	osts  []*ost
	mu    sync.Mutex
	files map[string]*file
	// sleep is the delay primitive; tests may replace it to make timing
	// assertions deterministic.
	sleep func(time.Duration)
}

type file struct {
	mu   sync.Mutex
	data []byte
}

// New creates a filesystem from the config.
func New(cfg Config) (*FS, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	fs := &FS{cfg: cfg, files: make(map[string]*file), sleep: time.Sleep}
	for i := 0; i < cfg.OSTs; i++ {
		fs.osts = append(fs.osts, &ost{})
	}
	return fs, nil
}

// SetSleep replaces the delay primitive (testing hook).
func (fs *FS) SetSleep(f func(time.Duration)) { fs.sleep = f }

// chunkCost returns the simulated service time for n bytes on one OST.
func (fs *FS) chunkCost(n int) time.Duration {
	bw := fs.cfg.BandwidthMBps * 1024 * 1024 // bytes/sec
	transfer := time.Duration(float64(n) / bw * float64(time.Second))
	return transfer + time.Duration(fs.cfg.LatencyMicros)*time.Microsecond
}

// ostFor picks the OST serving stripe index k of a file, offsetting by a
// name hash so files start on different targets (as Lustre does).
func (fs *FS) ostFor(name string, k int) *ost {
	h := 0
	for _, c := range name {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return fs.osts[(h+k)%len(fs.osts)]
}

// WriteFile stores data under name, striping across OSTs and charging
// simulated I/O time. Existing files are overwritten.
func (fs *FS) WriteFile(name string, data []byte) error {
	if name == "" {
		return errors.New("parfs: empty file name")
	}
	fs.mu.Lock()
	f, ok := fs.files[name]
	if !ok {
		f = &file{}
		fs.files[name] = f
	}
	fs.mu.Unlock()

	f.mu.Lock()
	defer f.mu.Unlock()
	f.data = f.data[:0]
	for k, off := 0, 0; off < len(data) || (len(data) == 0 && k == 0); k++ {
		end := off + fs.cfg.StripeSize
		if end > len(data) {
			end = len(data)
		}
		chunk := data[off:end]
		fs.charge(fs.ostFor(name, k), len(chunk))
		f.data = append(f.data, chunk...)
		off = end
		if len(data) == 0 {
			break
		}
	}
	return nil
}

// charge occupies the OST for the chunk's service time.
func (fs *FS) charge(o *ost, n int) {
	cost := fs.chunkCost(n)
	o.mu.Lock()
	o.busy += cost
	o.ops++
	o.bytes += int64(n)
	fs.sleep(cost)
	o.mu.Unlock()
}

// ReadFile retrieves a file, charging read I/O symmetrical to writes.
func (fs *FS) ReadFile(name string) ([]byte, error) {
	fs.mu.Lock()
	f, ok := fs.files[name]
	fs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("parfs: %q not found", name)
	}
	f.mu.Lock()
	data := append([]byte(nil), f.data...)
	f.mu.Unlock()
	for k, off := 0, 0; off < len(data); k++ {
		end := off + fs.cfg.StripeSize
		if end > len(data) {
			end = len(data)
		}
		fs.charge(fs.ostFor(name, k), end-off)
		off = end
	}
	return data, nil
}

// ReadAt serves a byte range of a file, charging only the OSTs whose
// stripes the range covers — and each only for its covered bytes. This
// is what makes sidecar range serving cheap on a striped store: a
// small range touches one OST for a fraction of a stripe instead of
// replaying the whole file's stripe schedule the way ReadFile does.
func (fs *FS) ReadAt(name string, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("parfs: negative read offset %d", off)
	}
	fs.mu.Lock()
	f, ok := fs.files[name]
	fs.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("parfs: %q not found", name)
	}
	f.mu.Lock()
	if off > int64(len(f.data)) {
		f.mu.Unlock()
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	f.mu.Unlock()
	stripe := int64(fs.cfg.StripeSize)
	for k, end := int(off/stripe), off+int64(n); int64(k)*stripe < end; k++ {
		lo, hi := int64(k)*stripe, int64(k+1)*stripe
		if lo < off {
			lo = off
		}
		if hi > end {
			hi = end
		}
		fs.charge(fs.ostFor(name, k), int(hi-lo))
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Size returns a file's stored byte size without charging I/O (a
// metadata operation, like stat on a real parallel FS).
func (fs *FS) Size(name string) int64 {
	fs.mu.Lock()
	f, ok := fs.files[name]
	fs.mu.Unlock()
	if !ok {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.data))
}

// Exists reports whether a file is present.
func (fs *FS) Exists(name string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[name]
	return ok
}

// List returns the stored file names, sorted.
func (fs *FS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Stats aggregates per-OST accounting.
type Stats struct {
	Ops      int64
	Bytes    int64
	BusyTime time.Duration
	// MaxOSTBusy is the busiest single OST's time: the critical path of a
	// perfectly parallel workload.
	MaxOSTBusy time.Duration
}

// Stats returns accumulated I/O accounting.
func (fs *FS) Stats() Stats {
	var s Stats
	for _, o := range fs.osts {
		o.mu.Lock()
		s.Ops += o.ops
		s.Bytes += o.bytes
		s.BusyTime += o.busy
		if o.busy > s.MaxOSTBusy {
			s.MaxOSTBusy = o.busy
		}
		o.mu.Unlock()
	}
	return s
}

// --- shard.Sink / shard.Opener adapters -------------------------------------

// writeCloser buffers a shard then commits it to the FS on Close, charging
// the simulated write cost once (shards are written streaming in practice,
// but committing at close keeps partially-written shards invisible, the
// same effect as write-then-rename).
type writeCloser struct {
	fs   *FS
	name string
	buf  bytes.Buffer
	done bool
}

func (w *writeCloser) Write(p []byte) (int, error) {
	if w.done {
		return 0, errors.New("parfs: write after close")
	}
	return w.buf.Write(p)
}

func (w *writeCloser) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	return w.fs.WriteFile(w.name, w.buf.Bytes())
}

// Create implements shard.Sink.
func (fs *FS) Create(name string) (io.WriteCloser, error) {
	if name == "" {
		return nil, errors.New("parfs: empty shard name")
	}
	if fs.Exists(name) {
		return nil, fmt.Errorf("parfs: %q already exists", name)
	}
	return &writeCloser{fs: fs, name: name}, nil
}

// Open implements shard.Opener.
func (fs *FS) Open(name string) (io.ReadCloser, error) {
	data, err := fs.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

// --- namespaced views -------------------------------------------------------

// SubFS is a prefixed view of an FS: every name is transparently stored
// as "<prefix>/<name>". A fleet of draid nodes sharing one simulated
// parallel filesystem mounts each job's shard set under its own prefix,
// so shard names from different jobs (or nodes) never collide while the
// underlying OSTs — and therefore stripe contention — stay shared,
// which is exactly the coordination a real parallel FS gives co-mounted
// compute nodes.
type SubFS struct {
	fs     *FS
	prefix string
}

// Sub returns a view of the filesystem rooted at prefix. Sub of the
// same prefix on any node yields the same files, making the view the
// failover handle: a surviving node re-mounts a dead node's job prefix
// and serves its shards.
func (fs *FS) Sub(prefix string) *SubFS {
	return &SubFS{fs: fs, prefix: strings.TrimSuffix(prefix, "/") + "/"}
}

// Create implements shard.Sink under the prefix.
func (s *SubFS) Create(name string) (io.WriteCloser, error) {
	if name == "" {
		return nil, errors.New("parfs: empty shard name")
	}
	return s.fs.Create(s.prefix + name)
}

// Open implements shard.Opener under the prefix.
func (s *SubFS) Open(name string) (io.ReadCloser, error) { return s.fs.Open(s.prefix + name) }

// List returns the names under the prefix, trimmed and sorted.
func (s *SubFS) List() []string {
	var names []string
	for _, n := range s.fs.List() {
		if strings.HasPrefix(n, s.prefix) {
			names = append(names, strings.TrimPrefix(n, s.prefix))
		}
	}
	return names
}

// Size returns a file's size under the prefix (0 if absent).
func (s *SubFS) Size(name string) int64 { return s.fs.Size(s.prefix + name) }

// ReadAt serves a byte range under the prefix with striped accounting.
func (s *SubFS) ReadAt(name string, p []byte, off int64) (int, error) {
	return s.fs.ReadAt(s.prefix+name, p, off)
}
