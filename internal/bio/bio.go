// Package bio implements the bio/health archetype (paper §3.3, Table 1):
// genomic sequences are one-hot encoded Enformer-style, clinical records
// are anonymized to HIPAA-grade k-anonymity, the two modalities are fused
// per subject, and the result is sharded into encrypted ("secure enclave")
// shards — one-hot encoding → anonymization → cross-modal fusion → secure
// sharding.
package bio

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/anonymize"
)

// Bases is the DNA alphabet in one-hot channel order.
const Bases = "ACGT"

// Sequence is one genomic sample tied to a subject.
type Sequence struct {
	SubjectID string
	Seq       string
	// Expression is the regression/classification target (e.g. measured
	// gene expression for the tile).
	Expression float64
}

// OneHot encodes a DNA string as a [len x 4] row-major matrix; unknown
// bases (N) encode as all-zero columns, as Enformer does.
func OneHot(seq string) []float64 {
	out := make([]float64, len(seq)*4)
	for i, c := range strings.ToUpper(seq) {
		switch c {
		case 'A':
			out[i*4] = 1
		case 'C':
			out[i*4+1] = 1
		case 'G':
			out[i*4+2] = 1
		case 'T':
			out[i*4+3] = 1
		}
	}
	return out
}

// Tile splits a sequence into fixed-length tiles (Enformer "segments them
// into fixed-length tiles"); a trailing fragment shorter than length is
// dropped.
func Tile(seq string, length int) ([]string, error) {
	if length <= 0 {
		return nil, fmt.Errorf("bio: tile length %d must be positive", length)
	}
	var out []string
	for start := 0; start+length <= len(seq); start += length {
		out = append(out, seq[start:start+length])
	}
	return out, nil
}

// KmerCounts returns the normalized k-mer frequency vector of a sequence
// in lexicographic k-mer order (a compact sequence featurization).
func KmerCounts(seq string, k int) ([]float64, error) {
	if k <= 0 || k > 8 {
		return nil, fmt.Errorf("bio: k=%d out of [1,8]", k)
	}
	dim := 1
	for i := 0; i < k; i++ {
		dim *= 4
	}
	counts := make([]float64, dim)
	seq = strings.ToUpper(seq)
	total := 0
	for i := 0; i+k <= len(seq); i++ {
		idx := 0
		ok := true
		for j := 0; j < k; j++ {
			b := strings.IndexByte(Bases, seq[i+j])
			if b < 0 {
				ok = false
				break
			}
			idx = idx*4 + b
		}
		if ok {
			counts[idx]++
			total++
		}
	}
	if total > 0 {
		for i := range counts {
			counts[i] /= float64(total)
		}
	}
	return counts, nil
}

// GCContent returns the fraction of G/C bases (a classic genomic feature
// correlated with expression).
func GCContent(seq string) float64 {
	if len(seq) == 0 {
		return 0
	}
	gc := 0
	for _, c := range strings.ToUpper(seq) {
		if c == 'G' || c == 'C' {
			gc++
		}
	}
	return float64(gc) / float64(len(seq))
}

// SynthConfig sizes the synthetic cohort generator.
type SynthConfig struct {
	Subjects int
	SeqLen   int
	Seed     int64
}

// DefaultSynthConfig returns a small cohort.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{Subjects: 40, SeqLen: 512, Seed: 1}
}

// Cohort is the raw multimodal dataset: per-subject sequences plus
// clinical records carrying PHI.
type Cohort struct {
	Sequences []Sequence
	Clinical  []anonymize.Record
}

// Synthesize builds a cohort whose expression target is a (noisy)
// function of GC content, so downstream learners have real signal, and
// whose clinical notes contain PHI that the privacy path must catch.
func Synthesize(cfg SynthConfig) (*Cohort, error) {
	if cfg.Subjects <= 0 || cfg.SeqLen <= 0 {
		return nil, fmt.Errorf("bio: invalid cohort config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Cohort{}
	for i := 0; i < cfg.Subjects; i++ {
		id := fmt.Sprintf("subj-%04d", i)
		// Bias base composition per subject for GC-content variation.
		gcBias := 0.3 + 0.4*rng.Float64()
		var sb strings.Builder
		for j := 0; j < cfg.SeqLen; j++ {
			if rng.Float64() < gcBias {
				if rng.Float64() < 0.5 {
					sb.WriteByte('G')
				} else {
					sb.WriteByte('C')
				}
			} else {
				if rng.Float64() < 0.5 {
					sb.WriteByte('A')
				} else {
					sb.WriteByte('T')
				}
			}
		}
		seq := sb.String()
		c.Sequences = append(c.Sequences, Sequence{
			SubjectID:  id,
			Seq:        seq,
			Expression: 5*GCContent(seq) + 0.1*rng.NormFloat64(),
		})
		age := 30 + rng.Intn(50)
		c.Clinical = append(c.Clinical, anonymize.Record{
			ID:        id,
			Name:      fmt.Sprintf("Patient %d", i),
			BirthDate: time.Date(2024-age, time.Month(1+rng.Intn(12)), 1+rng.Intn(28), 0, 0, 0, 0, time.UTC),
			ZIP:       fmt.Sprintf("378%02d", rng.Intn(10)),
			Age:       age,
			Sex:       []string{"F", "M"}[rng.Intn(2)],
			Notes:     fmt.Sprintf("routine visit, contact 865-555-%04d, MRN: %d", rng.Intn(10000), 10000+i),
			Values:    []float64{float64(age), rng.NormFloat64()*10 + 120, rng.NormFloat64()*8 + 80},
		})
	}
	return c, nil
}

// ToFASTA renders the cohort's sequences in FASTA (the community ingest
// format).
func (c *Cohort) ToFASTA() string {
	var b strings.Builder
	for _, s := range c.Sequences {
		fmt.Fprintf(&b, ">%s expression=%.4f\n", s.SubjectID, s.Expression)
		for start := 0; start < len(s.Seq); start += 60 {
			end := start + 60
			if end > len(s.Seq) {
				end = len(s.Seq)
			}
			b.WriteString(s.Seq[start:end])
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// ParseFASTA parses FASTA content produced by ToFASTA (headers carry the
// expression target).
func ParseFASTA(content string) ([]Sequence, error) {
	var out []Sequence
	var cur *Sequence
	for lineNo, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ">") {
			if cur != nil {
				out = append(out, *cur)
			}
			fields := strings.Fields(line[1:])
			if len(fields) == 0 {
				return nil, fmt.Errorf("bio: empty FASTA header at line %d", lineNo+1)
			}
			cur = &Sequence{SubjectID: fields[0]}
			for _, f := range fields[1:] {
				if strings.HasPrefix(f, "expression=") {
					if _, err := fmt.Sscanf(f, "expression=%f", &cur.Expression); err != nil {
						return nil, fmt.Errorf("bio: bad expression in header line %d: %w", lineNo+1, err)
					}
				}
			}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("bio: sequence data before header at line %d", lineNo+1)
		}
		for _, ch := range line {
			if !strings.ContainsRune("ACGTNacgtn", ch) {
				return nil, fmt.Errorf("bio: invalid base %q at line %d", ch, lineNo+1)
			}
		}
		cur.Seq += strings.ToUpper(line)
	}
	if cur != nil {
		out = append(out, *cur)
	}
	return out, nil
}
