// A strict parser for the Prometheus text exposition format (0.0.4).
// The tests use it to hold /metrics to the contract a real scraper
// assumes: valid names, correct label escaping, consistent TYPE lines,
// no duplicate series, and well-formed cumulative histograms. It is a
// validator first and a parser second — anything a tolerant scraper
// might quietly mis-read is an error here.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Series is one parsed sample line.
type Series struct {
	Name   string
	Labels map[string]string
	Value  float64
	// Exemplar holds the OpenMetrics exemplar trailing the sample, when
	// present (histogram bucket lines only in our exposition).
	Exemplar *ParsedExemplar
}

// ParsedExemplar is a parsed `# {labels} value` exemplar suffix.
type ParsedExemplar struct {
	Labels map[string]string
	Value  float64
}

// LabelString renders the labels sorted, for stable comparisons.
func (s Series) LabelString() string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.Labels[k])
	}
	return b.String()
}

// ParseText parses and validates a full exposition document. Errors
// carry the offending line number.
func ParseText(r io.Reader) ([]Series, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<22)
	var (
		series []Series
		types  = make(map[string]string) // family -> TYPE
		helps  = make(map[string]bool)
		seen   = make(map[string]bool) // name + sorted labels -> dup check
		lineNo int
	)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, _ := strings.Cut(rest, " ")
			if !validName(name) {
				return nil, fmt.Errorf("line %d: HELP for invalid name %q", lineNo, name)
			}
			if helps[name] {
				return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
			}
			helps[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("line %d: malformed TYPE line", lineNo)
			}
			if !validName(name) {
				return nil, fmt.Errorf("line %d: TYPE for invalid name %q", lineNo, name)
			}
			switch typ {
			case typeCounter, typeGauge, typeHistogram, "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q", lineNo, typ)
			}
			if old, ok := types[name]; ok && old != typ {
				return nil, fmt.Errorf("line %d: %s re-typed %s -> %s", lineNo, name, old, typ)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal and ignored
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		key := s.Name + "{" + s.LabelString() + "}"
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
		series = append(series, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := checkFamilies(series, types); err != nil {
		return nil, err
	}
	return series, nil
}

// parseSample parses one `name{labels} value` line.
func parseSample(line string) (Series, error) {
	var s Series
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.Name = line[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimPrefix(rest, " ")
	// No timestamps in our exposition: after the value the only legal
	// continuation is an OpenMetrics exemplar (` # {labels} value`).
	val, rest, _ := strings.Cut(rest, " ")
	if rest != "" {
		ex, err := parseExemplar(rest)
		if err != nil {
			return s, err
		}
		s.Exemplar = ex
	}
	v, err := parseValue(val)
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

// parseExemplar parses the `# {labels} value` suffix trailing a sample
// value. Anything else after a value is an error — this exposition
// never emits timestamps.
func parseExemplar(in string) (*ParsedExemplar, error) {
	rest, ok := strings.CutPrefix(in, "# ")
	if !ok || !strings.HasPrefix(rest, "{") {
		return nil, fmt.Errorf("unexpected trailing content %q", in)
	}
	labels, tail, err := parseLabels(rest)
	if err != nil {
		return nil, fmt.Errorf("exemplar: %w", err)
	}
	if len(labels) == 0 {
		return nil, fmt.Errorf("exemplar: empty label set")
	}
	for name := range labels {
		if !validLabelName(name) {
			return nil, fmt.Errorf("exemplar: invalid label name %q", name)
		}
	}
	tail, ok = strings.CutPrefix(tail, " ")
	if !ok || tail == "" {
		return nil, fmt.Errorf("exemplar: missing value")
	}
	if strings.ContainsRune(tail, ' ') {
		return nil, fmt.Errorf("exemplar: unexpected trailing content %q", tail)
	}
	v, err := parseValue(tail)
	if err != nil {
		return nil, fmt.Errorf("exemplar: %w", err)
	}
	return &ParsedExemplar{Labels: labels, Value: v}, nil
}

// parseLabels parses a leading {k="v",...} block, returning the rest.
func parseLabels(in string) (map[string]string, string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		if i >= len(in) {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if in[i] == '}' {
			return labels, in[i+1:], nil
		}
		j := i
		for j < len(in) && in[j] != '=' {
			j++
		}
		name := in[i:j]
		if name != "le" && name != "quantile" && !validLabelName(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", name)
		}
		if j+1 >= len(in) || in[j+1] != '"' {
			return nil, "", fmt.Errorf("label %q: missing quoted value", name)
		}
		val, next, err := parseQuoted(in[j+1:])
		if err != nil {
			return nil, "", fmt.Errorf("label %q: %w", name, err)
		}
		labels[name] = val
		i = j + 1 + next
		if i < len(in) && in[i] == ',' {
			i++
		} else if i < len(in) && in[i] != '}' {
			return nil, "", fmt.Errorf("label %q: expected ',' or '}', got %q", name, in[i])
		}
	}
}

// parseQuoted parses a double-quoted label value with Prometheus
// escapes, returning the consumed length including both quotes.
func parseQuoted(in string) (string, int, error) {
	if len(in) == 0 || in[0] != '"' {
		return "", 0, fmt.Errorf("missing opening quote")
	}
	var b strings.Builder
	i := 1
	for i < len(in) {
		c := in[i]
		switch c {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(in) {
				return "", 0, fmt.Errorf("dangling backslash")
			}
			switch in[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("invalid escape \\%c", in[i+1])
			}
			i += 2
		case '\n':
			return "", 0, fmt.Errorf("raw newline in label value")
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// parseValue parses a sample value (including +Inf/-Inf/NaN).
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	case "":
		return 0, fmt.Errorf("missing value")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

// checkFamilies validates cross-line family invariants: every sample
// belongs to a declared TYPE, histogram series come in complete
// cumulative sets, and counters/gauges never grow histogram suffixes.
func checkFamilies(series []Series, types map[string]string) error {
	// Map each sample to its family: histogram samples use suffixes.
	hist := make(map[string][]Series) // family -> bucket samples
	counts := make(map[string]bool)
	sums := make(map[string]bool)
	for _, s := range series {
		fam, kind := familyOf(s.Name, types)
		if fam == "" {
			return fmt.Errorf("series %s has no TYPE declaration", s.Name)
		}
		if s.Exemplar != nil {
			// OpenMetrics allows exemplars on histogram buckets and
			// counters only; a bucket exemplar must fit its bucket.
			switch {
			case kind == "bucket":
				if b := leBound(s); !math.IsNaN(b) && s.Exemplar.Value > b {
					return fmt.Errorf("series %s: exemplar value %v exceeds le=%v",
						s.Name, s.Exemplar.Value, b)
				}
			case kind == "plain" && types[fam] == typeCounter:
			default:
				return fmt.Errorf("series %s: exemplar on non-bucket, non-counter sample", s.Name)
			}
		}
		switch kind {
		case "bucket":
			if _, ok := s.Labels["le"]; !ok {
				return fmt.Errorf("series %s: _bucket without le label", s.Name)
			}
			hist[fam+"{"+labelKeyWithout(s, "le")+"}"] = append(hist[fam+"{"+labelKeyWithout(s, "le")+"}"], s)
		case "count":
			counts[fam+"{"+labelKeyWithout(s, "")+"}"] = true
		case "sum":
			sums[fam+"{"+labelKeyWithout(s, "")+"}"] = true
		case "plain":
			if _, ok := s.Labels["le"]; ok && types[fam] != typeHistogram {
				return fmt.Errorf("series %s: le label on non-histogram", s.Name)
			}
		}
	}
	for key, buckets := range hist {
		sort.Slice(buckets, func(i, j int) bool {
			return leBound(buckets[i]) < leBound(buckets[j])
		})
		last := math.Inf(-1)
		prev := -1.0
		sawInf := false
		for _, b := range buckets {
			bound := leBound(b)
			if math.IsNaN(bound) {
				return fmt.Errorf("histogram %s: unparsable le bound", key)
			}
			if bound <= last {
				return fmt.Errorf("histogram %s: duplicate/unsorted le bound %v", key, bound)
			}
			last = bound
			if b.Value < prev {
				return fmt.Errorf("histogram %s: bucket counts not cumulative at le=%v", key, bound)
			}
			prev = b.Value
			if math.IsInf(bound, 1) {
				sawInf = true
			}
		}
		if !sawInf {
			return fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", key)
		}
		if !counts[key] {
			return fmt.Errorf("histogram %s: missing _count", key)
		}
		if !sums[key] {
			return fmt.Errorf("histogram %s: missing _sum", key)
		}
	}
	return nil
}

// familyOf resolves a sample name to its declared family, classifying
// histogram suffix samples.
func familyOf(name string, types map[string]string) (fam, kind string) {
	if t, ok := types[name]; ok && t != typeHistogram {
		return name, "plain"
	}
	for _, suf := range []struct{ s, kind string }{
		{"_bucket", "bucket"}, {"_count", "count"}, {"_sum", "sum"},
	} {
		if base, ok := strings.CutSuffix(name, suf.s); ok {
			if types[base] == typeHistogram {
				return base, suf.kind
			}
		}
	}
	if _, ok := types[name]; ok {
		return name, "plain"
	}
	return "", ""
}

// labelKeyWithout renders a sample's labels sorted, dropping one key.
func labelKeyWithout(s Series, drop string) string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		if k != drop {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.Labels[k])
	}
	return b.String()
}

// leBound parses a bucket sample's le label.
func leBound(s Series) float64 {
	v := s.Labels["le"]
	if v == "+Inf" {
		return math.Inf(1)
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return math.NaN()
	}
	return f
}
