package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/loader"
	"repro/internal/provenance"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJob(t *testing.T, baseURL string, spec JobSpec) (JobStatus, int) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	_ = json.NewDecoder(resp.Body).Decode(&st)
	return st, resp.StatusCode
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
}

func TestTemplatesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	var tpls []TemplateInfo
	if code := getJSON(t, ts.URL+"/v1/templates", &tpls); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(tpls) != 4 {
		t.Fatalf("templates=%d, want 4", len(tpls))
	}
	seen := map[string]bool{}
	for _, tp := range tpls {
		if tp.Description == "" {
			t.Fatalf("template %s lacks description", tp.Domain)
		}
		// Discovery contract: every template names its wire kind and is
		// streamable, so clients choose decoders without probing 409s.
		if tp.Kind == "" || !tp.Servable {
			t.Fatalf("template %s lacks discovery fields: %+v", tp.Domain, tp)
		}
		seen[tp.Domain] = true
	}
	for _, d := range core.Domains() {
		if !seen[string(d)] {
			t.Fatalf("template for %s missing", d)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	if _, code := postJob(t, ts.URL, JobSpec{Domain: "astro"}); code != http.StatusBadRequest {
		t.Fatalf("unknown domain: status %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: status %d", resp.StatusCode)
	}
	// Oversized scale knobs must be rejected at submission, not allowed
	// to allocate the worker to death.
	for _, spec := range []JobSpec{
		{Domain: core.Climate, Months: 1e6},
		{Domain: core.Climate, Lat: 100000, Lon: 100000},
		{Domain: core.Fusion, Shots: 1e6},
		{Domain: core.BioHealth, Subjects: 1e6},
		{Domain: core.Climate, Months: -3},
	} {
		if _, code := postJob(t, ts.URL, spec); code != http.StatusBadRequest {
			t.Fatalf("spec %+v: status %d, want 400", spec, code)
		}
	}
}

func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	if code := getJSON(t, ts.URL+"/v1/jobs/job-999999", nil); code != http.StatusNotFound {
		t.Fatalf("status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/job-999999/batches", nil); code != http.StatusNotFound {
		t.Fatalf("batches status %d", code)
	}
}

// TestEndToEndClimateServe is the acceptance path: submit a
// registry-template job over HTTP, poll to completion, stream >=2
// batches, and verify decoded sample shapes.
func TestEndToEndClimateServe(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2, CacheBytes: 32 << 20})

	spec := JobSpec{Domain: core.Climate, Name: "e2e", Seed: 7, Months: 24, Lat: 16, Lon: 32}
	id, err := SubmitAndWait(ts.URL, spec, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	var st JobStatus
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if st.State != JobDone || !st.Servable || st.Shards == 0 {
		t.Fatalf("job status %+v", st)
	}
	// The trajectory walks the full pipeline and ends fully AI-ready.
	if len(st.Trajectory) == 0 {
		t.Fatal("no trajectory")
	}
	last := st.Trajectory[len(st.Trajectory)-1]
	if last.Level != int(core.AIReady) {
		t.Fatalf("final level %d (%s)", last.Level, last.LevelName)
	}

	// Stream batches; climate features are TargetLat*TargetLon floats
	// per variable (= Lat/2 * Lon/2 here), labels are seasons 0..3.
	wantFeatures := (spec.Lat / 2) * (spec.Lon / 2)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/batches?batch_size=4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batches status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	batches, samples := 0, 0
	for sc.Scan() {
		var wire BatchWire
		if err := json.Unmarshal(sc.Bytes(), &wire); err != nil {
			t.Fatalf("line %d: %v", batches, err)
		}
		if len(wire.Features) == 0 || len(wire.Features) != len(wire.Labels) {
			t.Fatalf("batch %d: %d rows, %d labels", batches, len(wire.Features), len(wire.Labels))
		}
		for i, f := range wire.Features {
			if len(f) != wantFeatures {
				t.Fatalf("batch %d row %d: %d features, want %d", batches, i, len(f), wantFeatures)
			}
			if wire.Labels[i] < 0 || wire.Labels[i] > 3 {
				t.Fatalf("batch %d row %d: season label %d", batches, i, wire.Labels[i])
			}
		}
		batches++
		samples += len(wire.Labels)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if batches < 2 {
		t.Fatalf("streamed %d batches, want >= 2", batches)
	}
	if int64(samples) > st.Records {
		t.Fatalf("served %d samples from %d records", samples, st.Records)
	}
	if got := int64(s.metrics.bytesServed.Value()); got == 0 {
		t.Fatal("bytes served not accounted")
	}
}

// TestBioServeDecryptsSealedShards checks the secure path: the sink
// only holds AES-GCM sealed shards, yet the serving tier streams
// plaintext sample batches via the per-job key.
func TestBioServeDecryptsSealedShards(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, CacheBytes: 32 << 20})
	id, err := SubmitAndWait(ts.URL, JobSpec{Domain: core.BioHealth, Subjects: 16, SeqLen: 128}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	batches, samples, n, err := StreamBatches(ts.URL + "/v1/jobs/" + id + "/batches?batch_size=2")
	if err != nil {
		t.Fatal(err)
	}
	if batches == 0 || samples == 0 || n == 0 {
		t.Fatalf("batches=%d samples=%d bytes=%d", batches, samples, n)
	}
}

// TestFusionStreamsWindows: fusion shards hold tfrecord Examples; the
// fusion_windows codec streams them as windowed signal batches with
// disruption labels and horizons instead of the pre-plugin 409.
func TestFusionStreamsWindows(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, CacheBytes: 32 << 20})
	id, err := SubmitAndWait(ts.URL, JobSpec{Domain: core.Fusion, Shots: 6}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !st.Servable || st.Kind != "fusion_windows" || st.Shards == 0 {
		t.Fatalf("fusion job not discoverable as streamable: %+v", st)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/batches?batch_size=4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batches status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	windows, dim := 0, -1
	for sc.Scan() {
		var wire BatchWire
		if err := json.Unmarshal(sc.Bytes(), &wire); err != nil {
			t.Fatal(err)
		}
		if err := wire.Validate(); err != nil {
			t.Fatal(err)
		}
		if wire.Kind != "fusion_windows" {
			t.Fatalf("kind %q", wire.Kind)
		}
		if len(wire.Shots) != len(wire.Labels) || len(wire.Horizons) != len(wire.Labels) ||
			len(wire.Starts) != len(wire.Labels) {
			t.Fatalf("ragged fusion batch: %+v", wire)
		}
		for i, sig := range wire.Signals {
			if dim == -1 {
				dim = len(sig)
			}
			if len(sig) != dim || dim == 0 {
				t.Fatalf("signal row %d has %d floats, want %d", i, len(sig), dim)
			}
			if l := wire.Labels[i]; l != 0 && l != 1 {
				t.Fatalf("disruption label %d", l)
			}
			if wire.Horizons[i] <= 0 {
				t.Fatalf("horizon %v not positive", wire.Horizons[i])
			}
			windows++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// The shard set holds the train split, so the stream covers at most
	// the job's total window count.
	if windows == 0 || int64(windows) > st.Records {
		t.Fatalf("streamed %d windows for %d records", windows, st.Records)
	}
}

// TestMaterialsStreamsGraphs: materials shards hold one BP process
// group per graph; the materials_graphs codec streams them as ragged
// node/edge tensors.
func TestMaterialsStreamsGraphs(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, CacheBytes: 32 << 20})
	id, err := SubmitAndWait(ts.URL, JobSpec{Domain: core.Materials, Structures: 12}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !st.Servable || st.Kind != "materials_graphs" {
		t.Fatalf("materials job not discoverable as streamable: %+v", st)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/batches?batch_size=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batches status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	graphs := 0
	for sc.Scan() {
		var wire BatchWire
		if err := json.Unmarshal(sc.Bytes(), &wire); err != nil {
			t.Fatal(err)
		}
		if err := wire.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, g := range wire.Graphs {
			if g.Nodes == 0 || g.FeatureDim == 0 || len(g.NodeFeatures) != g.Nodes*g.FeatureDim {
				t.Fatalf("graph tensor shape: %+v", g)
			}
			if len(g.Edges) != 2*len(g.EdgeLengths) {
				t.Fatalf("edge list %d vs %d lengths", len(g.Edges), len(g.EdgeLengths))
			}
			graphs++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if graphs == 0 || int64(graphs) != st.Records {
		t.Fatalf("streamed %d graphs for %d records", graphs, st.Records)
	}
}

func TestBatchesBeforeCompletionRejected(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	st, code := postJob(t, ts.URL, JobSpec{Domain: core.Climate, Months: 12, Lat: 8, Lon: 16})
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	// Immediately asking for batches races the worker, but whichever
	// state the job is in, a non-done job must yield 409.
	code = getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/batches", nil)
	if code != http.StatusConflict && code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
}

func TestProvenanceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	id, err := SubmitAndWait(ts.URL, JobSpec{Domain: core.Climate, Months: 12, Lat: 8, Lon: 16}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/provenance")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var buf strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		buf.WriteString(sc.Text())
		buf.WriteByte('\n')
	}
	tracker, err := provenance.Import([]byte(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := tracker.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(tracker.Activities()) == 0 {
		t.Fatal("no activities in exported lineage")
	}
}

// TestConcurrentReadersShareCache streams the same job from many
// readers at once; the decoded-shard cache must coalesce the decodes.
func TestConcurrentReadersShareCache(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, CacheBytes: 64 << 20})
	id, err := SubmitAndWait(ts.URL, JobSpec{Domain: core.Climate, Months: 24, Lat: 16, Lon: 32}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/v1/jobs/" + id + "/batches?batch_size=8"
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, _, err := StreamBatches(url); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	cs := s.cache.Stats()
	if cs.Hits == 0 {
		t.Fatalf("no cache hits across 8 readers: %+v", cs)
	}
	var st JobStatus
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	// Every shard decodes at most once (singleflight): misses <= shards.
	if cs.Misses > int64(st.Shards) {
		t.Fatalf("%d misses for %d shards", cs.Misses, st.Shards)
	}
}

func TestShardCacheEviction(t *testing.T) {
	c := NewShardCache[[]any](100)
	load := func(n int64) func() ([]any, int64, error) {
		return func() ([]any, int64, error) {
			return []any{&loader.Sample{Features: []float32{1}, Label: 1}}, n, nil
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Get(fmt.Sprintf("k%d", i), load(40)); err != nil {
			t.Fatal(err)
		}
	}
	cs := c.Stats()
	if cs.Bytes > 100 {
		t.Fatalf("cache over budget: %+v", cs)
	}
	if cs.Evictions == 0 {
		t.Fatalf("no evictions: %+v", cs)
	}
	// DropPrefix removals are invalidations, not evictions: the eviction
	// counter must not move, and every removed entry must be counted.
	evictionsBefore, entriesBefore := cs.Evictions, cs.Entries
	if entriesBefore == 0 {
		t.Fatalf("no entries resident: %+v", cs)
	}
	c.DropPrefix("k")
	cs = c.Stats()
	if cs.Entries != 0 || cs.Bytes != 0 {
		t.Fatalf("DropPrefix left entries: %+v", cs)
	}
	if cs.Evictions != evictionsBefore {
		t.Fatalf("DropPrefix counted as evictions: %+v", cs)
	}
	if cs.Invalidations != int64(entriesBefore) {
		t.Fatalf("invalidations %d, want %d: %+v", cs.Invalidations, entriesBefore, cs)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, CacheBytes: 1 << 20})
	id, err := SubmitAndWait(ts.URL, JobSpec{Domain: core.Climate, Months: 12, Lat: 8, Lon: 16}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := StreamBatches(ts.URL + "/v1/jobs/" + id + "/batches?batch_size=4&max_batches=2"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		body.WriteString(sc.Text())
		body.WriteByte('\n')
	}
	text := body.String()
	for _, want := range []string{
		"draid_jobs_total 1",
		"draid_jobs_done_total 1",
		"draid_bytes_served_total",
		"draid_batches_served_total 2",
		"draid_shard_cache_misses_total",
		`draid_stage_seconds_total{stage="job:climate"}`,
		`draid_stage_seconds_total{stage="regrid"}`,
		`draid_stage_calls_total{stage="serve:batches"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestGracefulShutdownRejectsNewJobs(t *testing.T) {
	s, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close()
	if _, code := postJob(t, ts.URL, JobSpec{Domain: core.Climate}); code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", code)
	}
	// Close is idempotent.
	s.Close()
}

func TestQueueBackpressure(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	// A job large enough to hold the single worker for the duration of
	// the fast submissions below.
	busy := JobSpec{Domain: core.Climate, Months: 120, Lat: 48, Lon: 96}
	codes := make(map[int]int)
	for i := 0; i < 6; i++ {
		_, code := postJob(t, ts.URL, busy)
		codes[code]++
	}
	if codes[http.StatusAccepted] == 0 {
		t.Fatalf("no submissions accepted: %v", codes)
	}
	if codes[http.StatusTooManyRequests] == 0 {
		t.Fatalf("queue never pushed back: %v", codes)
	}
}

func TestJobListOrder(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	ids := make([]string, 3)
	for i := range ids {
		st, code := postJob(t, ts.URL, JobSpec{Domain: core.Materials, Structures: 6})
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
		ids[i] = st.ID
	}
	var list []JobStatus
	if code := getJSON(t, ts.URL+"/v1/jobs", &list); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(list) != 3 {
		t.Fatalf("listed %d jobs", len(list))
	}
	for i, st := range list {
		if st.ID != ids[i] {
			t.Fatalf("list[%d]=%s, want %s (submission order)", i, st.ID, ids[i])
		}
	}
}

// TestAllDomainsRunToCompletion submits one job per registered domain
// concurrently — the parallel-request pattern draid serves in practice.
func TestAllDomainsRunToCompletion(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for _, d := range core.Domains() {
		wg.Add(1)
		go func(d core.Domain) {
			defer wg.Done()
			if _, err := SubmitAndWait(ts.URL, JobSpec{Domain: d}, 120*time.Second); err != nil {
				errs <- fmt.Errorf("%s: %w", d, err)
			}
		}(d)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
