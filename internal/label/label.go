// Package label implements labeling support for partially labeled
// scientific datasets: small pure-Go learners (kNN, multinomial logistic
// regression, k-means) and the iterative pseudo-labeling loop the paper
// highlights (§2.1: "model predictions on unlabeled data are iteratively
// treated as labels to improve training" — the feedback edge in Fig. 1).
package label

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Classifier predicts a class and a confidence in [0,1] for a feature vector.
type Classifier interface {
	Fit(features [][]float64, labels []int) error
	Predict(x []float64) (class int, confidence float64)
}

// --- kNN ---------------------------------------------------------------

// KNN is a k-nearest-neighbour classifier with Euclidean distance.
type KNN struct {
	K        int
	features [][]float64
	labels   []int
	classes  int
}

// NewKNN returns a kNN classifier with the given neighbourhood size.
func NewKNN(k int) *KNN { return &KNN{K: k} }

// Fit memorizes the training set.
func (m *KNN) Fit(features [][]float64, labels []int) error {
	if err := checkTraining(features, labels); err != nil {
		return err
	}
	if m.K <= 0 {
		return fmt.Errorf("label: k=%d must be positive", m.K)
	}
	m.features = features
	m.labels = labels
	m.classes = numClasses(labels)
	return nil
}

// Predict votes among the K nearest training points; confidence is the
// winning vote fraction.
func (m *KNN) Predict(x []float64) (int, float64) {
	if len(m.features) == 0 {
		return 0, 0
	}
	type cand struct {
		d     float64
		label int
	}
	cands := make([]cand, len(m.features))
	for i, f := range m.features {
		cands[i] = cand{d: sqDist(f, x), label: m.labels[i]}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	k := m.K
	if k > len(cands) {
		k = len(cands)
	}
	votes := make(map[int]int)
	for _, c := range cands[:k] {
		votes[c.label]++
	}
	best, bestN := 0, -1
	keys := make([]int, 0, len(votes))
	for c := range votes {
		keys = append(keys, c)
	}
	sort.Ints(keys) // deterministic tie-break: smallest class wins
	for _, c := range keys {
		if votes[c] > bestN {
			best, bestN = c, votes[c]
		}
	}
	return best, float64(bestN) / float64(k)
}

func sqDist(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// --- multinomial logistic regression ------------------------------------

// Logistic is a multinomial logistic-regression classifier trained with
// full-batch gradient descent.
type Logistic struct {
	LearningRate float64
	Epochs       int
	L2           float64
	weights      [][]float64 // [class][feature+1], last is bias
	classes      int
	dims         int
}

// NewLogistic returns a classifier with sensible defaults.
func NewLogistic() *Logistic {
	return &Logistic{LearningRate: 0.1, Epochs: 200, L2: 1e-4}
}

// Fit trains by gradient descent on the softmax cross-entropy.
func (m *Logistic) Fit(features [][]float64, labels []int) error {
	if err := checkTraining(features, labels); err != nil {
		return err
	}
	m.classes = numClasses(labels)
	m.dims = len(features[0])
	m.weights = make([][]float64, m.classes)
	for c := range m.weights {
		m.weights[c] = make([]float64, m.dims+1)
	}
	n := len(features)
	probs := make([]float64, m.classes)
	grad := make([][]float64, m.classes)
	for c := range grad {
		grad[c] = make([]float64, m.dims+1)
	}
	for epoch := 0; epoch < m.Epochs; epoch++ {
		for c := range grad {
			for j := range grad[c] {
				grad[c][j] = 0
			}
		}
		for i, x := range features {
			m.softmax(x, probs)
			for c := 0; c < m.classes; c++ {
				delta := probs[c]
				if labels[i] == c {
					delta -= 1
				}
				for j := 0; j < m.dims; j++ {
					grad[c][j] += delta * x[j]
				}
				grad[c][m.dims] += delta
			}
		}
		for c := 0; c < m.classes; c++ {
			for j := 0; j <= m.dims; j++ {
				g := grad[c][j]/float64(n) + m.L2*m.weights[c][j]
				m.weights[c][j] -= m.LearningRate * g
			}
		}
	}
	return nil
}

func (m *Logistic) softmax(x []float64, out []float64) {
	maxLogit := math.Inf(-1)
	for c := 0; c < m.classes; c++ {
		logit := m.weights[c][m.dims]
		for j := 0; j < m.dims && j < len(x); j++ {
			logit += m.weights[c][j] * x[j]
		}
		out[c] = logit
		if logit > maxLogit {
			maxLogit = logit
		}
	}
	sum := 0.0
	for c := range out {
		out[c] = math.Exp(out[c] - maxLogit)
		sum += out[c]
	}
	for c := range out {
		out[c] /= sum
	}
}

// Predict returns the argmax class and its softmax probability.
func (m *Logistic) Predict(x []float64) (int, float64) {
	if m.classes == 0 {
		return 0, 0
	}
	probs := make([]float64, m.classes)
	m.softmax(x, probs)
	best := 0
	for c := 1; c < m.classes; c++ {
		if probs[c] > probs[best] {
			best = c
		}
	}
	return best, probs[best]
}

func checkTraining(features [][]float64, labels []int) error {
	if len(features) == 0 {
		return errors.New("label: empty training set")
	}
	if len(features) != len(labels) {
		return fmt.Errorf("label: %d features vs %d labels", len(features), len(labels))
	}
	d := len(features[0])
	for i, f := range features {
		if len(f) != d {
			return fmt.Errorf("label: feature %d has %d dims, want %d", i, len(f), d)
		}
	}
	for i, l := range labels {
		if l < 0 {
			return fmt.Errorf("label: negative label %d at %d", l, i)
		}
	}
	return nil
}

func numClasses(labels []int) int {
	maxC := 0
	for _, l := range labels {
		if l > maxC {
			maxC = l
		}
	}
	return maxC + 1
}

// --- k-means -------------------------------------------------------------

// KMeans clusters feature vectors (used for exploratory labeling of fully
// unlabeled datasets).
type KMeans struct {
	K        int
	MaxIters int
	Centers  [][]float64
}

// NewKMeans returns a clusterer with k clusters.
func NewKMeans(k int) *KMeans { return &KMeans{K: k, MaxIters: 100} }

// Fit runs Lloyd's algorithm with deterministic seeding and returns the
// cluster assignment per point.
func (m *KMeans) Fit(features [][]float64, seed int64) ([]int, error) {
	if len(features) == 0 {
		return nil, errors.New("label: kmeans on empty data")
	}
	if m.K <= 0 || m.K > len(features) {
		return nil, fmt.Errorf("label: k=%d out of range (n=%d)", m.K, len(features))
	}
	rng := rand.New(rand.NewSource(seed))
	dims := len(features[0])
	// Initialize with distinct random points.
	perm := rng.Perm(len(features))
	m.Centers = make([][]float64, m.K)
	for i := 0; i < m.K; i++ {
		m.Centers[i] = append([]float64(nil), features[perm[i]]...)
	}
	assign := make([]int, len(features))
	for iter := 0; iter < m.MaxIters; iter++ {
		changed := false
		for i, x := range features {
			best, bestD := 0, math.Inf(1)
			for c, center := range m.Centers {
				if d := sqDist(x, center); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]int, m.K)
		sums := make([][]float64, m.K)
		for c := range sums {
			sums[c] = make([]float64, dims)
		}
		for i, x := range features {
			c := assign[i]
			counts[c]++
			for j, v := range x {
				sums[c][j] += v
			}
		}
		for c := 0; c < m.K; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				m.Centers[c] = append([]float64(nil), features[rng.Intn(len(features))]...)
				continue
			}
			for j := range sums[c] {
				m.Centers[c][j] = sums[c][j] / float64(counts[c])
			}
		}
	}
	return assign, nil
}

// --- pseudo-labeling loop --------------------------------------------------

// PseudoLabelConfig tunes the iterative loop.
type PseudoLabelConfig struct {
	// Confidence is the minimum prediction confidence to accept a
	// pseudo-label.
	Confidence float64
	// MaxRounds bounds the number of train→predict→accept iterations.
	MaxRounds int
}

// DefaultPseudoLabelConfig matches the reproduction's experiments.
func DefaultPseudoLabelConfig() PseudoLabelConfig {
	return PseudoLabelConfig{Confidence: 0.8, MaxRounds: 10}
}

// RoundStats reports one pseudo-labeling round.
type RoundStats struct {
	Round    int
	Labeled  int // total labeled samples after this round
	Accepted int // pseudo-labels accepted this round
	Coverage float64
}

// PseudoLabel iteratively trains clf on the labeled subset, predicts the
// unlabeled remainder, and adopts confident predictions as labels. labels
// uses -1 for "unlabeled". It returns the final labels (copy) and
// per-round statistics; the loop stops when no new labels are accepted.
func PseudoLabel(clf Classifier, features [][]float64, labels []int, cfg PseudoLabelConfig) ([]int, []RoundStats, error) {
	if len(features) != len(labels) {
		return nil, nil, fmt.Errorf("label: %d features vs %d labels", len(features), len(labels))
	}
	if cfg.Confidence < 0 || cfg.Confidence > 1 {
		return nil, nil, fmt.Errorf("label: confidence %v out of [0,1]", cfg.Confidence)
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 1
	}
	cur := append([]int(nil), labels...)
	var stats []RoundStats
	for round := 1; round <= cfg.MaxRounds; round++ {
		var trainX [][]float64
		var trainY []int
		for i, l := range cur {
			if l >= 0 {
				trainX = append(trainX, features[i])
				trainY = append(trainY, l)
			}
		}
		if len(trainX) == 0 {
			return nil, nil, errors.New("label: no seed labels for pseudo-labeling")
		}
		if err := clf.Fit(trainX, trainY); err != nil {
			return nil, nil, fmt.Errorf("label: round %d fit: %w", round, err)
		}
		accepted := 0
		for i, l := range cur {
			if l >= 0 {
				continue
			}
			class, conf := clf.Predict(features[i])
			if conf >= cfg.Confidence {
				cur[i] = class
				accepted++
			}
		}
		labeled := 0
		for _, l := range cur {
			if l >= 0 {
				labeled++
			}
		}
		stats = append(stats, RoundStats{
			Round:    round,
			Labeled:  labeled,
			Accepted: accepted,
			Coverage: float64(labeled) / float64(len(cur)),
		})
		if accepted == 0 {
			break
		}
	}
	return cur, stats, nil
}

// Accuracy computes the fraction of predictions matching truth, skipping
// entries where truth is negative (unknown).
func Accuracy(pred, truth []int) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("label: %d predictions vs %d truths", len(pred), len(truth))
	}
	n, correct := 0, 0
	for i := range pred {
		if truth[i] < 0 {
			continue
		}
		n++
		if pred[i] == truth[i] {
			correct++
		}
	}
	if n == 0 {
		return 0, errors.New("label: no ground truth to score against")
	}
	return float64(correct) / float64(n), nil
}
