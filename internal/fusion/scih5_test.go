package fusion

import (
	"math"
	"testing"
)

func TestSciH5ExportImportRoundTrip(t *testing.T) {
	st, err := SynthesizeCampaign(SynthConfig{Shots: 4, DisruptionRate: 0.5, FlattopSeconds: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var aligned []*AlignedShot
	for _, num := range st.Shots() {
		s, _ := st.Get(num)
		a, err := Align(s, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		aligned = append(aligned, a)
	}
	b, err := ExportSciH5(aligned)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ImportSciH5(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(aligned) {
		t.Fatalf("shots %d vs %d", len(got), len(aligned))
	}
	for i, a := range aligned {
		g := got[i]
		if g.Number != a.Number || g.Disrupted != a.Disrupted {
			t.Fatalf("shot %d metadata mismatch: %+v vs %+v", i, g, a)
		}
		if math.Abs(g.Dt-a.Dt) > 1e-12 || math.Abs(g.T0-a.T0) > 1e-6 {
			t.Fatalf("shot %d timing: dt %v/%v t0 %v/%v", i, g.Dt, a.Dt, g.T0, a.T0)
		}
		if len(g.Channels) != len(a.Channels) {
			t.Fatalf("shot %d channels %v vs %v", i, g.Channels, a.Channels)
		}
		for c := range a.Channels {
			if g.Channels[c] != a.Channels[c] {
				t.Fatalf("channel order: %v vs %v", g.Channels, a.Channels)
			}
			if len(g.Series[c]) != len(a.Series[c]) {
				t.Fatalf("series length %d vs %d", len(g.Series[c]), len(a.Series[c]))
			}
			// float32 storage: compare loosely.
			for k := range a.Series[c] {
				av, gv := a.Series[c][k], g.Series[c][k]
				if math.IsNaN(av) && math.IsNaN(gv) {
					continue
				}
				if math.Abs(av-gv) > 1e-3*math.Max(1, math.Abs(av)) {
					t.Fatalf("shot %d ch %s sample %d: %v vs %v", i, a.Channels[c], k, gv, av)
				}
			}
		}
	}
}

func TestExportSciH5Empty(t *testing.T) {
	if _, err := ExportSciH5(nil); err == nil {
		t.Fatal("want empty error")
	}
}

func TestImportSciH5Garbage(t *testing.T) {
	if _, err := ImportSciH5([]byte("junk")); err == nil {
		t.Fatal("want open error")
	}
}

func TestImportSciH5NoShots(t *testing.T) {
	b, err := ExportSciH5([]*AlignedShot{{Number: 1, Dt: 0.1, Channels: []string{"ip"},
		Series: [][]float64{{1, 2, 3}}}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ImportSciH5(b)
	if err != nil || len(got) != 1 {
		t.Fatalf("got=%v err=%v", got, err)
	}
}
