// Package tensor provides dense n-dimensional arrays of float64 used as the
// in-memory interchange type throughout the data-readiness pipelines.
//
// Scientific AI workloads demand high numeric precision (paper §2.2), so the
// canonical element type is float64; conversion to float32 happens only at
// shard boundaries. Missing values are represented as NaN and every
// statistical reduction has a NaN-aware variant.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// Tensor is a dense, row-major n-dimensional array of float64.
// The zero value is an empty (rank-0, 1-element) scalar tensor holding 0.
type Tensor struct {
	shape   []int
	strides []int
	data    []float64
}

// ErrShape reports an operation applied to tensors of incompatible shape.
var ErrShape = errors.New("tensor: shape mismatch")

// New returns a zero-filled tensor with the given shape.
// New() with no dims returns a scalar. New panics only on negative dims;
// invalid runtime shapes should be checked with Numel beforehand.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		data:  make([]float64, n),
	}
	t.strides = computeStrides(t.shape)
	return t
}

// FromSlice wraps data (not copied) in a tensor of the given shape.
// It returns an error if len(data) does not match the shape's element count.
func FromSlice(data []float64, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d < 0 {
			return nil, fmt.Errorf("tensor: negative dimension %d", d)
		}
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("%w: data length %d, shape %v needs %d", ErrShape, len(data), shape, n)
	}
	t := &Tensor{shape: append([]int(nil), shape...), data: data}
	t.strides = computeStrides(t.shape)
	return t, nil
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

func computeStrides(shape []int) []int {
	strides := make([]int, len(shape))
	s := 1
	for i := len(shape) - 1; i >= 0; i-- {
		strides[i] = s
		s *= shape[i]
	}
	return strides
}

// Shape returns the tensor's dimensions. The returned slice must not be mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Numel returns the total number of elements.
func (t *Tensor) Numel() int { return len(t.data) }

// Data returns the underlying flat row-major storage. Mutations are visible
// to the tensor; callers needing isolation should Clone first.
func (t *Tensor) Data() []float64 { return t.data }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// offset computes the flat index for the given coordinates.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", x, t.shape[i], i))
		}
		off += x * t.strides[i]
	}
	return off
}

// At returns the element at the given coordinates.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set assigns v at the given coordinates.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

// Reshape returns a view of t with a new shape covering the same elements.
// The underlying data is shared.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("%w: cannot reshape %v (%d elems) to %v (%d elems)",
			ErrShape, t.shape, len(t.data), shape, n)
	}
	nt := &Tensor{shape: append([]int(nil), shape...), data: t.data}
	nt.strides = computeStrides(nt.shape)
	return nt, nil
}

// SubTensor returns a copy of the slice t[i] along the first axis
// (e.g. one timestep of a [T,H,W] stack), with shape t.Shape()[1:].
func (t *Tensor) SubTensor(i int) (*Tensor, error) {
	if t.Rank() == 0 {
		return nil, errors.New("tensor: cannot subscript a scalar")
	}
	if i < 0 || i >= t.shape[0] {
		return nil, fmt.Errorf("tensor: index %d out of range [0,%d)", i, t.shape[0])
	}
	sub := New(t.shape[1:]...)
	stride := t.strides[0]
	copy(sub.data, t.data[i*stride:(i+1)*stride])
	return sub, nil
}

// SetSubTensor copies src into slot i along the first axis.
func (t *Tensor) SetSubTensor(i int, src *Tensor) error {
	if t.Rank() == 0 {
		return errors.New("tensor: cannot subscript a scalar")
	}
	if i < 0 || i >= t.shape[0] {
		return fmt.Errorf("tensor: index %d out of range [0,%d)", i, t.shape[0])
	}
	stride := t.strides[0]
	if src.Numel() != stride {
		return fmt.Errorf("%w: subtensor needs %d elems, got %d", ErrShape, stride, src.Numel())
	}
	copy(t.data[i*stride:(i+1)*stride], src.data)
	return nil
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// Apply replaces each element x with f(x) in place and returns t.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// AddScalar adds s to every element in place.
func (t *Tensor) AddScalar(s float64) *Tensor {
	for i := range t.data {
		t.data[i] += s
	}
	return t
}

// MulScalar multiplies every element by s in place.
func (t *Tensor) MulScalar(s float64) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// Add accumulates other into t element-wise in place.
func (t *Tensor) Add(other *Tensor) error {
	if !SameShape(t, other) {
		return fmt.Errorf("%w: %v vs %v", ErrShape, t.shape, other.shape)
	}
	for i := range t.data {
		t.data[i] += other.data[i]
	}
	return nil
}

// Sub subtracts other from t element-wise in place.
func (t *Tensor) Sub(other *Tensor) error {
	if !SameShape(t, other) {
		return fmt.Errorf("%w: %v vs %v", ErrShape, t.shape, other.shape)
	}
	for i := range t.data {
		t.data[i] -= other.data[i]
	}
	return nil
}

// Mul multiplies t by other element-wise in place.
func (t *Tensor) Mul(other *Tensor) error {
	if !SameShape(t, other) {
		return fmt.Errorf("%w: %v vs %v", ErrShape, t.shape, other.shape)
	}
	for i := range t.data {
		t.data[i] *= other.data[i]
	}
	return nil
}

// Min returns the minimum element, ignoring NaNs. It returns NaN when the
// tensor holds no finite values.
func (t *Tensor) Min() float64 {
	m := math.NaN()
	for _, v := range t.data {
		if math.IsNaN(v) {
			continue
		}
		if math.IsNaN(m) || v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum element, ignoring NaNs. It returns NaN when the
// tensor holds no finite values.
func (t *Tensor) Max() float64 {
	m := math.NaN()
	for _, v := range t.data {
		if math.IsNaN(v) {
			continue
		}
		if math.IsNaN(m) || v > m {
			m = v
		}
	}
	return m
}

// Sum returns the sum of all elements, ignoring NaNs.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		if !math.IsNaN(v) {
			s += v
		}
	}
	return s
}

// Mean returns the arithmetic mean of non-NaN elements
// (NaN if all elements are NaN or the tensor is empty).
func (t *Tensor) Mean() float64 {
	s, n := 0.0, 0
	for _, v := range t.data {
		if !math.IsNaN(v) {
			s += v
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}

// Std returns the population standard deviation of non-NaN elements.
func (t *Tensor) Std() float64 {
	mean := t.Mean()
	if math.IsNaN(mean) {
		return math.NaN()
	}
	s, n := 0.0, 0
	for _, v := range t.data {
		if !math.IsNaN(v) {
			d := v - mean
			s += d * d
			n++
		}
	}
	return math.Sqrt(s / float64(n))
}

// CountNaN returns the number of NaN elements.
func (t *Tensor) CountNaN() int {
	n := 0
	for _, v := range t.data {
		if math.IsNaN(v) {
			n++
		}
	}
	return n
}

// Normalize standardizes t in place to zero mean and unit variance
// (NaNs are left untouched) and returns the (mean, std) used.
// A zero std leaves values mean-centered only.
func (t *Tensor) Normalize() (mean, std float64) {
	mean, std = t.Mean(), t.Std()
	if math.IsNaN(mean) {
		return mean, std
	}
	div := std
	if div == 0 {
		div = 1
	}
	for i, v := range t.data {
		if !math.IsNaN(v) {
			t.data[i] = (v - mean) / div
		}
	}
	return mean, std
}

// Denormalize reverses Normalize with the given statistics, in place.
func (t *Tensor) Denormalize(mean, std float64) {
	if std == 0 {
		std = 1
	}
	for i, v := range t.data {
		if !math.IsNaN(v) {
			t.data[i] = v*std + mean
		}
	}
}

// FillNaN replaces every NaN element with v and returns the number replaced.
func (t *Tensor) FillNaN(v float64) int {
	n := 0
	for i, x := range t.data {
		if math.IsNaN(x) {
			t.data[i] = v
			n++
		}
	}
	return n
}

// Float32 returns the tensor's elements converted to float32, the
// precision typically used at shard boundaries.
func (t *Tensor) Float32() []float32 {
	out := make([]float32, len(t.data))
	for i, v := range t.data {
		out[i] = float32(v)
	}
	return out
}

// FromFloat32 builds a float64 tensor from float32 data.
func FromFloat32(data []float32, shape ...int) (*Tensor, error) {
	d := make([]float64, len(data))
	for i, v := range data {
		d[i] = float64(v)
	}
	return FromSlice(d, shape...)
}

// String implements fmt.Stringer with a compact shape+stats summary.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v(n=%d, mean=%.4g, std=%.4g, nan=%d)",
		t.shape, t.Numel(), t.Mean(), t.Std(), t.CountNaN())
}

// MeanAxis0 reduces a rank>=1 tensor along its first axis, returning a
// tensor of shape t.Shape()[1:] whose elements are NaN-aware means.
func (t *Tensor) MeanAxis0() (*Tensor, error) {
	if t.Rank() == 0 {
		return nil, errors.New("tensor: MeanAxis0 on scalar")
	}
	inner := t.strides[0]
	out := New(t.shape[1:]...)
	counts := make([]int, inner)
	for i := 0; i < t.shape[0]; i++ {
		row := t.data[i*inner : (i+1)*inner]
		for j, v := range row {
			if !math.IsNaN(v) {
				out.data[j] += v
				counts[j]++
			}
		}
	}
	for j := range out.data {
		if counts[j] == 0 {
			out.data[j] = math.NaN()
		} else {
			out.data[j] /= float64(counts[j])
		}
	}
	return out, nil
}

// StdAxis0 reduces along the first axis to per-cell population standard
// deviations (NaN-aware), mirroring MeanAxis0.
func (t *Tensor) StdAxis0() (*Tensor, error) {
	mean, err := t.MeanAxis0()
	if err != nil {
		return nil, err
	}
	inner := t.strides[0]
	out := New(t.shape[1:]...)
	counts := make([]int, inner)
	for i := 0; i < t.shape[0]; i++ {
		row := t.data[i*inner : (i+1)*inner]
		for j, v := range row {
			if !math.IsNaN(v) && !math.IsNaN(mean.data[j]) {
				d := v - mean.data[j]
				out.data[j] += d * d
				counts[j]++
			}
		}
	}
	for j := range out.data {
		if counts[j] == 0 {
			out.data[j] = math.NaN()
		} else {
			out.data[j] = math.Sqrt(out.data[j] / float64(counts[j]))
		}
	}
	return out, nil
}
