// The four surveyed domains' plugin registrations: spec-driven input
// synthesis (moved out of the serving tier's former per-domain switch),
// registry pipeline construction, product→manifest extraction, and the
// bio read-path decryption wrapper.
package domain

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"io"

	"repro/internal/anonymize"
	"repro/internal/bio"
	"repro/internal/climate"
	"repro/internal/core"
	"repro/internal/fusion"
	"repro/internal/materials"
	"repro/internal/pipeline"
	"repro/internal/registry"
	"repro/internal/shard"
)

func orDefault(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

func specSeed(spec Spec) int64 {
	if spec.Seed == 0 {
		return 1
	}
	return spec.Seed
}

// manifestOf builds a Manifest extractor from a typed product accessor.
func manifestOf[P any](get func(p P) *shard.Manifest) func(ds *pipeline.Dataset) (*shard.Manifest, error) {
	return func(ds *pipeline.Dataset) (*shard.Manifest, error) {
		p, ok := ds.Payload.(P)
		if !ok {
			return nil, fmt.Errorf("domain: payload is %T, want %T", ds.Payload, *new(P))
		}
		m := get(p)
		if m == nil {
			return nil, fmt.Errorf("domain: %T carries no shard manifest", p)
		}
		return m, nil
	}
}

// bioSealedSuffix is the single source of truth for the sealed-shard
// object naming rule: both the plugin's StoredName (restore-time
// existence probe) and the decrypting read path derive from it.
const bioSealedSuffix = ".enc"

// decryptOpener presents a bio job's sealed shard set as plaintext: the
// sink stores "<name><suffix>" AES-GCM blobs; readers see the
// manifest's plaintext names and checksums.
type decryptOpener struct {
	sink   shard.Opener
	key    []byte
	suffix string
}

// Open implements shard.Opener over sealed shards.
func (o decryptOpener) Open(name string) (io.ReadCloser, error) {
	rc, err := o.sink.Open(name + o.suffix)
	if err != nil {
		return nil, err
	}
	sealed, err := io.ReadAll(rc)
	if cerr := rc.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	plain, err := anonymize.DecryptShard(o.key, name, sealed)
	if err != nil {
		return nil, err
	}
	return io.NopCloser(bytes.NewReader(plain)), nil
}

// encryptSink is decryptOpener's write-path mirror: objects created
// under a plaintext name are sealed on Close and stored as
// "<name><suffix>", bound to the plaintext name exactly the way the
// pipeline seals shards — so decryptOpener reopens them unchanged.
type encryptSink struct {
	sink   shard.Sink
	key    []byte
	suffix string
}

// Create implements shard.Sink. The sealed blob is written in one shot
// at Close, so an underlying exists/collision error also surfaces
// there.
func (s encryptSink) Create(name string) (io.WriteCloser, error) {
	return &encryptShard{sink: s.sink, key: s.key, name: name, stored: name + s.suffix}, nil
}

type encryptShard struct {
	sink   shard.Sink
	key    []byte
	name   string
	stored string
	buf    bytes.Buffer
	done   bool
}

func (w *encryptShard) Write(p []byte) (int, error) {
	if w.done {
		return 0, fmt.Errorf("domain: write to sealed shard %q after close", w.name)
	}
	return w.buf.Write(p)
}

func (w *encryptShard) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	sealed, err := anonymize.EncryptShard(w.key, w.name, w.buf.Bytes())
	if err != nil {
		return err
	}
	wc, err := w.sink.Create(w.stored)
	if err != nil {
		return err
	}
	if _, err := wc.Write(sealed); err != nil {
		wc.Close()
		return err
	}
	return wc.Close()
}

func init() {
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(Register(Plugin{
		Domain: core.Climate,
		Codec:  sampleCodec{},
		Build: func(spec Spec, sink shard.Sink) (*Run, error) {
			seed := specSeed(spec)
			months, lat, lon := orDefault(spec.Months, 24), orDefault(spec.Lat, 16), orDefault(spec.Lon, 32)
			field, err := climate.Synthesize(climate.SynthConfig{
				Months: months, Lat: lat, Lon: lon, MissingRate: 0.01, Seed: seed})
			if err != nil {
				return nil, err
			}
			raw, err := field.ToNetCDF()
			if err != nil {
				return nil, err
			}
			p, err := registry.New(spec.Domain, sink, climate.Config{
				TargetLat: lat / 2, TargetLon: lon / 2, Method: climate.Bilinear,
				Workers: 2, ShardTargetBytes: 8 << 10, Seed: seed})
			if err != nil {
				return nil, err
			}
			return &Run{Pipeline: p, Dataset: climate.NewDataset(spec.Name, raw)}, nil
		},
		Manifest: manifestOf(func(p *climate.Product) *shard.Manifest { return p.Manifest }),
	}))
	must(Register(Plugin{
		Domain: core.Fusion,
		Codec:  fusionCodec{},
		Build: func(spec Spec, sink shard.Sink) (*Run, error) {
			seed := specSeed(spec)
			st, err := fusion.SynthesizeCampaign(fusion.SynthConfig{
				Shots: orDefault(spec.Shots, 8), DisruptionRate: 0.35,
				FlattopSeconds: 1, DropoutRate: 0.01, Seed: seed})
			if err != nil {
				return nil, err
			}
			cfg := fusion.DefaultConfig()
			cfg.Seed = seed
			// Serving granularity: the library default (128 KiB) would pack
			// a whole interactive-scale campaign into one shard, making
			// cursor resume and cache eviction all-or-nothing.
			cfg.ShardTarget = 16 << 10
			p, err := registry.New(spec.Domain, sink, cfg)
			if err != nil {
				return nil, err
			}
			return &Run{Pipeline: p, Dataset: fusion.NewDataset(spec.Name, st)}, nil
		},
		Manifest: manifestOf(func(p *fusion.Product) *shard.Manifest { return p.Manifest }),
	}))
	must(Register(Plugin{
		Domain:       core.BioHealth,
		Codec:        sampleCodec{},
		SealedSuffix: bioSealedSuffix,
		Build: func(spec Spec, sink shard.Sink) (*Run, error) {
			seed := specSeed(spec)
			// The bio template tiles at the default length; shorter synthetic
			// sequences would fail every job, so floor SeqLen there.
			seqLen := orDefault(spec.SeqLen, 256)
			if min := bio.DefaultConfig(nil, nil).TileLen; seqLen < min {
				seqLen = min
			}
			cohort, err := bio.Synthesize(bio.SynthConfig{
				Subjects: orDefault(spec.Subjects, 24), SeqLen: seqLen, Seed: seed})
			if err != nil {
				return nil, err
			}
			key := make([]byte, 32)
			if _, err := rand.Read(key); err != nil {
				return nil, err
			}
			secret := make([]byte, 32)
			if _, err := rand.Read(secret); err != nil {
				return nil, err
			}
			p, err := registry.New(spec.Domain, sink, registry.BioSecrets{
				EncryptionKey: key, PseudonymSecret: secret})
			if err != nil {
				return nil, err
			}
			ds := bio.NewDataset(spec.Name, cohort.ToFASTA(), cohort.Clinical)
			return &Run{Pipeline: p, Dataset: ds, Key: key}, nil
		},
		Manifest: manifestOf(func(p *bio.Product) *shard.Manifest { return p.Manifest }),
		WrapOpener: func(open shard.Opener, key []byte) shard.Opener {
			return decryptOpener{sink: open, key: key, suffix: bioSealedSuffix}
		},
		WrapSink: func(sink shard.Sink, key []byte) shard.Sink {
			return encryptSink{sink: sink, key: key, suffix: bioSealedSuffix}
		},
	}))
	must(Register(Plugin{
		Domain: core.Materials,
		Codec:  materialsCodec{},
		Build: func(spec Spec, sink shard.Sink) (*Run, error) {
			seed := specSeed(spec)
			structs, err := materials.Synthesize(materials.SynthConfig{
				Structures: orDefault(spec.Structures, 24), MinAtoms: 4, MaxAtoms: 10,
				ImbalanceRatio: 3, Seed: seed})
			if err != nil {
				return nil, err
			}
			poscars := make([]string, len(structs))
			for i, s := range structs {
				poscars[i] = s.ToPOSCAR()
			}
			cfg := materials.DefaultConfig()
			cfg.Seed = seed
			p, err := registry.New(spec.Domain, sink, cfg)
			if err != nil {
				return nil, err
			}
			return &Run{Pipeline: p, Dataset: materials.NewDataset(spec.Name, poscars)}, nil
		},
		Manifest: manifestOf(func(p *materials.Product) *shard.Manifest { return p.Manifest }),
	}))
}
