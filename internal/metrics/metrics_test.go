package metrics

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a fixed step per call.
type fakeClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(f.step)
	return f.now
}

func TestTimeRecordsDuration(t *testing.T) {
	c := NewCollector()
	fc := &fakeClock{step: 10 * time.Millisecond}
	c.SetClock(fc.Now)
	err := c.Time("normalize", "compute", 1024, 10, func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	stats := c.ByStage()
	if len(stats) != 1 || stats[0].Stage != "normalize" {
		t.Fatalf("stats=%+v", stats)
	}
	if stats[0].Total != 10*time.Millisecond {
		t.Fatalf("total=%v", stats[0].Total)
	}
	if stats[0].Bytes != 1024 || stats[0].Records != 10 || stats[0].Calls != 1 {
		t.Fatalf("stats=%+v", stats[0])
	}
}

func TestTimePropagatesError(t *testing.T) {
	c := NewCollector()
	sentinel := errors.New("boom")
	if err := c.Time("s", "c", 0, 0, func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err=%v", err)
	}
	// Sample still recorded despite the error.
	if len(c.ByStage()) != 1 {
		t.Fatal("failed op not recorded")
	}
}

func TestThroughput(t *testing.T) {
	s := StageStats{Total: time.Second, Bytes: 2 * 1024 * 1024, Records: 100}
	if got := s.Throughput(); got != 2*1024*1024 {
		t.Fatalf("throughput=%v", got)
	}
	if got := s.RecordsPerSecond(); got != 100 {
		t.Fatalf("rps=%v", got)
	}
	zero := StageStats{}
	if zero.Throughput() != 0 || zero.RecordsPerSecond() != 0 {
		t.Fatal("zero-time stats must be 0")
	}
}

func TestByStageAggregation(t *testing.T) {
	c := NewCollector()
	c.Record(Sample{Stage: "b", Duration: time.Millisecond, Records: 1})
	c.Record(Sample{Stage: "a", Duration: time.Millisecond, Records: 2})
	c.Record(Sample{Stage: "b", Duration: time.Millisecond, Records: 3})
	stats := c.ByStage()
	if len(stats) != 2 || stats[0].Stage != "a" || stats[1].Stage != "b" {
		t.Fatalf("stats=%+v", stats)
	}
	if stats[1].Calls != 2 || stats[1].Records != 4 {
		t.Fatalf("b stats=%+v", stats[1])
	}
}

func TestCategoryShare(t *testing.T) {
	c := NewCollector()
	c.Record(Sample{Stage: "extract", Category: "curation", Duration: 700 * time.Millisecond})
	c.Record(Sample{Stage: "train", Category: "compute", Duration: 300 * time.Millisecond})
	shares := c.CategoryShare()
	if math.Abs(shares["curation"]-0.7) > 1e-9 {
		t.Fatalf("curation=%v", shares["curation"])
	}
	if math.Abs(shares["compute"]-0.3) > 1e-9 {
		t.Fatalf("compute=%v", shares["compute"])
	}
}

func TestCategoryShareEmpty(t *testing.T) {
	if shares := NewCollector().CategoryShare(); len(shares) != 0 {
		t.Fatalf("shares=%v", shares)
	}
}

func TestTotalDuration(t *testing.T) {
	c := NewCollector()
	c.Record(Sample{Duration: time.Second})
	c.Record(Sample{Duration: 2 * time.Second})
	if c.TotalDuration() != 3*time.Second {
		t.Fatalf("total=%v", c.TotalDuration())
	}
}

func TestReportRendering(t *testing.T) {
	c := NewCollector()
	c.Record(Sample{Stage: "shard", Category: "io", Duration: time.Second, Bytes: 1 << 20, Records: 50})
	r := c.Report()
	if !strings.Contains(r, "shard") || !strings.Contains(r, "category io") {
		t.Fatalf("report:\n%s", r)
	}
}

func TestConcurrentRecording(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = c.Time("parallel", "compute", 1, 1, func() error { return nil })
		}()
	}
	wg.Wait()
	stats := c.ByStage()
	if len(stats) != 1 || stats[0].Calls != 64 {
		t.Fatalf("stats=%+v", stats)
	}
}
