// LRU shard-index cache for the serving tier. Opening a shard means
// verifying its SHA-256, inflating gzip, walking TFRecord frames, and
// decoding every record through the domain codec — work worth doing
// once per shard, not once per reader. The cache keys decoded shard
// contents by (job, shard) and evicts least-recently-served entries
// when the configured byte budget is exceeded, so many concurrent
// streaming clients share one decode. Records are opaque to the cache:
// the codec that decoded them also reports their in-memory size, which
// is what the byte budget accounts.
package server

import (
	"container/list"
	"strings"
	"sync"
)

// shardEntry is one cached, fully decoded shard.
type shardEntry struct {
	key     string
	records []any
	bytes   int64
	elem    *list.Element
}

// inflight coalesces concurrent loads of the same shard (singleflight):
// the first reader decodes, the rest wait on done.
type inflight struct {
	done    chan struct{}
	records []any
	bytes   int64
	err     error
}

// ShardCache is a byte-budgeted LRU over decoded shards, safe for
// concurrent use.
type ShardCache struct {
	mu      sync.Mutex
	max     int64
	size    int64
	entries map[string]*shardEntry
	lru     *list.List // front = most recently used; values are *shardEntry
	loads   map[string]*inflight

	hits, misses, evictions int64
}

// NewShardCache returns a cache that holds at most maxBytes of decoded
// record data. maxBytes <= 0 disables caching (every read decodes).
func NewShardCache(maxBytes int64) *ShardCache {
	return &ShardCache{
		max:     maxBytes,
		entries: make(map[string]*shardEntry),
		lru:     list.New(),
		loads:   make(map[string]*inflight),
	}
}

// Records returns the decoded records for key, loading them via load on
// a miss. Concurrent misses on one key run load once and share the
// result. The returned slice is shared — callers must not mutate it.
func (c *ShardCache) Records(key string, load func() ([]any, int64, error)) ([]any, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		c.hits++
		records := e.records
		c.mu.Unlock()
		return records, nil
	}
	if fl, ok := c.loads[key]; ok {
		// Another reader is decoding this shard; wait for it.
		c.mu.Unlock()
		<-fl.done
		return fl.records, fl.err
	}
	fl := &inflight{done: make(chan struct{})}
	c.loads[key] = fl
	c.misses++
	c.mu.Unlock()

	fl.records, fl.bytes, fl.err = load()
	close(fl.done)

	c.mu.Lock()
	delete(c.loads, key)
	if fl.err == nil && c.max > 0 {
		c.insert(key, fl.records, fl.bytes)
	}
	c.mu.Unlock()
	return fl.records, fl.err
}

// insert adds an entry and evicts from the LRU tail until within budget.
// Caller holds c.mu.
func (c *ShardCache) insert(key string, records []any, bytes int64) {
	if _, ok := c.entries[key]; ok {
		return
	}
	e := &shardEntry{key: key, records: records, bytes: bytes}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.size += bytes
	for c.size > c.max && c.lru.Len() > 1 {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		victim := tail.Value.(*shardEntry)
		c.lru.Remove(tail)
		delete(c.entries, victim.key)
		c.size -= victim.bytes
		c.evictions++
	}
}

// DropPrefix removes every cached shard whose key starts with prefix —
// the eviction hook that frees a deleted job's decoded records without
// waiting for LRU pressure.
func (c *ShardCache) DropPrefix(prefix string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, e := range c.entries {
		if strings.HasPrefix(key, prefix) {
			c.lru.Remove(e.elem)
			delete(c.entries, key)
			c.size -= e.bytes
		}
	}
}

// CacheStats is a point-in-time view of cache effectiveness.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats snapshots the cache counters.
func (c *ShardCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Bytes:     c.size,
		MaxBytes:  c.max,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
