// Package fusion implements the fusion archetype (paper §3.2, Table 1):
// shot-level diagnostics are extracted from an MDSplus-like store, aligned
// onto a common time base, turned into physics-based features, normalized
// per shot, windowed, and sharded to TFRecords — the DIII-D disruption-ML
// extract → align → normalize → shard pattern.
package fusion

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Signal is one diagnostic channel: irregular samples at its own rate.
type Signal struct {
	Name  string
	Times []float64 // seconds, ascending
	Data  []float64 // NaN = dropout
	Units string
}

// Validate checks monotonic times and matching lengths.
func (s *Signal) Validate() error {
	if len(s.Times) != len(s.Data) {
		return fmt.Errorf("fusion: signal %q has %d times, %d samples", s.Name, len(s.Times), len(s.Data))
	}
	for i := 1; i < len(s.Times); i++ {
		if s.Times[i] <= s.Times[i-1] {
			return fmt.Errorf("fusion: signal %q time not increasing at %d", s.Name, i)
		}
	}
	return nil
}

// Shot is one plasma discharge: a tree of named diagnostics plus outcome
// metadata (the label source).
type Shot struct {
	Number    int
	Signals   map[string]*Signal
	Disrupted bool
	// TDisrupt is the disruption time (seconds), meaningful when Disrupted.
	TDisrupt float64
}

// Store is an MDSplus-like shot archive; safe for concurrent reads.
type Store struct {
	mu    sync.RWMutex
	shots map[int]*Shot
}

// NewStore returns an empty archive.
func NewStore() *Store { return &Store{shots: make(map[int]*Shot)} }

// Put validates and stores a shot.
func (st *Store) Put(s *Shot) error {
	if s == nil {
		return errors.New("fusion: nil shot")
	}
	for _, sig := range s.Signals {
		if err := sig.Validate(); err != nil {
			return fmt.Errorf("shot %d: %w", s.Number, err)
		}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.shots[s.Number]; dup {
		return fmt.Errorf("fusion: shot %d already stored", s.Number)
	}
	st.shots[s.Number] = s
	return nil
}

// Get retrieves a shot.
func (st *Store) Get(number int) (*Shot, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s, ok := st.shots[number]
	if !ok {
		return nil, fmt.Errorf("fusion: shot %d not found", number)
	}
	return s, nil
}

// Shots lists stored shot numbers, ascending.
func (st *Store) Shots() []int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	nums := make([]int, 0, len(st.shots))
	for n := range st.shots {
		nums = append(nums, n)
	}
	sort.Ints(nums)
	return nums
}

// GetSignal fetches one diagnostic of one shot (the MDSplus
// tree-traversal access pattern).
func (st *Store) GetSignal(shot int, name string) (*Signal, error) {
	s, err := st.Get(shot)
	if err != nil {
		return nil, err
	}
	sig, ok := s.Signals[name]
	if !ok {
		return nil, fmt.Errorf("fusion: shot %d has no signal %q", shot, name)
	}
	return sig, nil
}

// Resample linearly interpolates the signal onto a uniform time base
// [t0, t1) with step dt. Points outside the signal's support and NaN
// dropouts are bridged from valid neighbours; a signal with no valid
// samples yields all NaN.
func (s *Signal) Resample(t0, t1, dt float64) ([]float64, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("fusion: dt=%v must be positive", dt)
	}
	if t1 <= t0 {
		return nil, fmt.Errorf("fusion: empty window [%v,%v)", t0, t1)
	}
	n := int(math.Ceil((t1 - t0) / dt))
	out := make([]float64, n)

	// Collect valid points only.
	var ts, vs []float64
	for i, v := range s.Data {
		if !math.IsNaN(v) {
			ts = append(ts, s.Times[i])
			vs = append(vs, v)
		}
	}
	if len(ts) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out, nil
	}
	for i := 0; i < n; i++ {
		t := t0 + float64(i)*dt
		out[i] = interp(ts, vs, t)
	}
	return out, nil
}

// interp linearly interpolates (ts, vs) at t with edge clamping.
func interp(ts, vs []float64, t float64) float64 {
	if t <= ts[0] {
		return vs[0]
	}
	if t >= ts[len(ts)-1] {
		return vs[len(vs)-1]
	}
	k := sort.SearchFloat64s(ts, t)
	// ts[k-1] < t <= ts[k]
	frac := (t - ts[k-1]) / (ts[k] - ts[k-1])
	return vs[k-1] + frac*(vs[k]-vs[k-1])
}
