package telemetry

import (
	"context"
	"testing"
)

func TestNewTraceIDShapeAndUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q: want 16 hex chars", id)
		}
		if !ValidTraceID(id) {
			t.Fatalf("generated trace ID %q fails own validation", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q in 100 draws", id)
		}
		seen[id] = true
	}
}

func TestValidTraceID(t *testing.T) {
	for id, want := range map[string]bool{
		"abc123":                 true,
		"a-b_c.d":                true,
		"":                       false,
		"has space":              false,
		"has\"quote":             false,
		"line\nbreak":            false,
		string(make([]byte, 65)): false,
	} {
		if got := ValidTraceID(id); got != want {
			t.Errorf("ValidTraceID(%q) = %v, want %v", id, got, want)
		}
	}
}

func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if TraceFrom(ctx) != "" {
		t.Fatal("empty context has a trace")
	}
	ctx = WithTrace(ctx, "deadbeef00000000")
	if got := TraceFrom(ctx); got != "deadbeef00000000" {
		t.Fatalf("TraceFrom = %q", got)
	}
}
