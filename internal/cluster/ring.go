// Package cluster turns independent draid nodes into a fleet. Membership
// is static (every node is started with the same `-peers` list), routing
// is a consistent-hash ring over the live members (so job placement is a
// pure function of the job ID and the set of healthy nodes — no
// coordinator, no gossip), and the shared parallel filesystem under every
// node's data dir is what makes failover cheap: when a node dies its hash
// ranges fall deterministically to the survivors, which replay the dead
// node's job log straight from the shared dir and keep serving.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is an immutable consistent-hash ring: each member contributes
// VNodes points (hashes of "id#k"), and a key is owned by the member
// whose point is the first at or clockwise after the key's hash.
// Immutability keeps lookups lock-free; membership changes build a new
// ring.
type Ring struct {
	points []ringPoint
	vnodes int
	member map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultVNodes balances ownership to within a few percent for small
// fleets without making ring rebuilds expensive.
const DefaultVNodes = 64

// NewRing builds a ring over the given member IDs. vnodes <= 0 picks
// DefaultVNodes. An empty member list yields a ring that owns nothing.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		points: make([]ringPoint, 0, len(members)*vnodes),
		vnodes: vnodes,
		member: make(map[string]bool, len(members)),
	}
	for _, id := range members {
		if id == "" || r.member[id] {
			continue
		}
		r.member[id] = true
		for k := 0; k < vnodes; k++ {
			r.points = append(r.points, ringPoint{
				hash: ringHash(fmt.Sprintf("%s#%d", id, k)),
				node: id,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on node ID so equal hashes order identically on
		// every node regardless of the member-list order they were fed.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// ringHash is FNV-1a 64 pushed through a murmur3-style finalizer.
// Plain FNV has weak avalanche in the high bits for keys differing only
// in their tail ("job-000041" vs "job-000042"), which is exactly what
// sequential job IDs look like — without the mix they cluster onto one
// member. The result is stable across processes and architectures, so
// every node agrees on placement.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owner returns the member owning key, or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: first point owns the arc past the last hash
	}
	return r.points[i].node
}

// Members returns the ring's member IDs, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.member))
	for id := range r.member {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Has reports membership.
func (r *Ring) Has(id string) bool { return r.member[id] }

// Shares estimates each member's fraction of the hash space from its
// arc lengths — the /v1/cluster balance report.
func (r *Ring) Shares() map[string]float64 {
	shares := make(map[string]float64, len(r.member))
	if len(r.points) == 0 {
		return shares
	}
	const space = float64(1 << 63) * 2 // 2^64 as float
	for i, p := range r.points {
		var arc uint64
		if i == 0 {
			// First point owns the wrap-around arc from the last point.
			arc = p.hash + (^r.points[len(r.points)-1].hash + 1)
		} else {
			arc = p.hash - r.points[i-1].hash
		}
		shares[p.node] += float64(arc) / space
	}
	return shares
}
