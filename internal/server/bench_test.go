package server

import (
	"fmt"
	"testing"
)

// BenchmarkServeThroughput measures concurrent batch streaming against
// a live draid server: N clients each stream the full shard set of one
// completed climate job. The MiB/s metric is the serving-tier headline
// number future PRs track.
func BenchmarkServeThroughput(b *testing.B) {
	for _, clients := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("clients%d", clients), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunServeBenchmark(clients, 16, 0, 2)
				if err != nil {
					b.Fatal(err)
				}
				if res.Batches == 0 {
					b.Fatal("no batches streamed")
				}
				b.ReportMetric(res.BytesPerSec/(1024*1024), "MiB/s")
				b.ReportMetric(res.BatchesPerSec, "batches/s")
			}
		})
	}
}
