// Package server is the draid serving tier: it turns the in-process
// data-readiness library into a facility service. Clients list the
// registry's domain templates, submit pipeline jobs that run
// asynchronously on a bounded worker pool, follow each job's readiness
// trajectory and provenance, and stream training batches from completed
// jobs' shard sets through an LRU shard cache. /metrics exposes the
// paper-facing accounting (latency histograms, jobs in flight, bytes
// served) in Prometheus text format via internal/telemetry, and every
// request carries a trace ID (X-Draid-Trace) across fleet hops.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/domain"
	"repro/internal/ledger"
	"repro/internal/provenance"
	"repro/internal/registry"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/tenant"
	"repro/pkg/client"
)

// Options tunes a Server.
type Options struct {
	// Workers bounds concurrent pipeline executions. <=0 means 2.
	Workers int
	// QueueDepth bounds jobs waiting for a worker; submissions beyond it
	// are rejected with 429 (explicit backpressure, not unbounded RAM).
	// <=0 means 64.
	QueueDepth int
	// CacheBytes budgets the decoded-shard LRU cache. <=0 disables it.
	CacheBytes int64
	// FrameCacheBytes budgets the encoded-frame shard cache: each
	// shard's records are packed into frame-ready payload bytes once,
	// and frame-wire batches are then served by slicing byte ranges —
	// no per-request tensor marshalling. <=0 disables it (frame batches
	// serve from on-store sidecars, or encode per request). NDJSON
	// streams never use it.
	FrameCacheBytes int64
	// ServeCacheBytes, when positive, replaces the independent
	// CacheBytes/FrameCacheBytes budgets with ONE byte budget shared by
	// the decoded-shard and encoded-frame caches (the -serve-cache-mb
	// arena). Eviction is weighted: encoded payloads are cheap to
	// refill from frame sidecars, so they are evicted preferentially;
	// decoded entries only pay once frames hold a small fraction of the
	// resident bytes. <=0 keeps the split budgets.
	ServeCacheBytes int64
	// DisableFrameStore turns the on-store frame sidecar tier off
	// entirely: sidecars are neither written at job completion, nor
	// read, nor backfilled — every cold frame stream pays the full
	// decode+encode. Benchmarks and byte-exactness tests use it as the
	// encode-per-request reference; production servers leave it off.
	DisableFrameStore bool
	// ServeMaxKBps caps every batch stream's throughput (KiB/second,
	// token bucket per stream). <=0 leaves streams unpaced. Clients may
	// lower their own stream's cap with ?max_kbps= but never raise it
	// above this server-wide ceiling.
	ServeMaxKBps int
	// ServeBudgetKBps is the global weighted-fair bandwidth budget
	// (KiB/second) shared by ALL batch streams: split across active
	// tenants by their configured weights, then evenly across each
	// tenant's streams, re-evaluated continuously as streams open and
	// close. A per-stream ?max_kbps= (or ServeMaxKBps) still caps a
	// stream below its fair share, never above. <=0 keeps the
	// independent per-stream pacing only.
	ServeBudgetKBps int

	// Tenants enables bearer-token authentication: every request (bar
	// /healthz and /metrics) must present a registered tenant's token,
	// job visibility is scoped to the owning tenant, and per-tenant
	// quotas and weights apply. Nil keeps the server open — existing
	// single-user behavior, byte for byte.
	Tenants *tenant.Registry
	// LedgerBatch is the audit ledger's Merkle batch size (records per
	// published root). <=0 uses the ledger default (64). Only
	// meaningful with DataDir set — the ledger lives there.
	LedgerBatch int
	// LedgerFlushWait is the audit ledger's group-commit window: how
	// long the first appender waits for followers before one fsync
	// covers them all. 0 uses the default (2ms); negative syncs every
	// append individually.
	LedgerFlushWait time.Duration

	// DataDir makes the server durable: job shard sets are written to
	// DataDir/jobs/<id> (FSSink) and every job transition is appended to
	// DataDir/jobs.log, which New replays so a restarted server re-serves
	// completed jobs from disk. Empty keeps everything in memory.
	DataDir string
	// JobTTL evicts completed (done or failed) jobs idle longer than
	// this — their shard directories are deleted and the eviction is
	// logged. <=0 disables TTL eviction.
	JobTTL time.Duration
	// MaxJobs bounds retained completed jobs; beyond it the least
	// recently served are evicted. <=0 means unbounded.
	MaxJobs int

	// NewStore overrides per-job shard storage (benchmarks route jobs
	// through a parfs-backed store with it). Nil picks FSSink under
	// DataDir, or MemSink when DataDir is empty.
	NewStore func(jobID string) (shard.Store, error)

	// Cluster makes this server a fleet member: job-addressed requests
	// are routed to their consistent-hash owner, /v1/cluster reports
	// membership, and jobs stranded by dead members are adopted from
	// the shared DataDir (which every member must point at the same
	// parallel filesystem). The server takes over the cluster's
	// lifecycle: New starts its probing, Close stops it. Requires
	// DataDir (or a shared NewStore) for failover to mean anything.
	Cluster *cluster.Cluster
	// Requeue resubmits jobs replayed in queued/running state instead
	// of marking them failed: their partial output is wiped and the
	// deterministic spec (seeds included) reruns on this node's pool.
	Requeue bool

	// TraceSlow is the tail-sampling threshold: requests whose root span
	// lasts at least this long (or ends in error) have their whole trace
	// retained in the notable ring and are logged at Info even without
	// Debug. <=0 means 250ms.
	TraceSlow time.Duration
	// TraceSpans bounds the recent-span ring (completed spans retained
	// per node). <=0 means 4096.
	TraceSpans int
	// TraceNotable bounds the tail-sampled notable-trace ring. <=0
	// means 32.
	TraceNotable int

	// Debug exposes /debug/pprof and the runtime gauges (goroutines,
	// heap bytes, cumulative GC pause) on /metrics. Off by default: the
	// runtime gauges cost a ReadMemStats per scrape and the profiler
	// endpoints do not belong on an unguarded production port.
	Debug bool
	// Logger receives the server's structured log (every record carries
	// the request trace ID and this node's fleet ID). Nil discards —
	// embedding tests stay quiet unless they opt in.
	Logger *slog.Logger
}

// Server is the draid HTTP service. Create with New, serve via Handler,
// stop with Close.
type Server struct {
	mux     *http.ServeMux
	handler http.Handler               // mux wrapped in the telemetry middleware
	cache   *ShardCache[[]any]         // decoded shard records
	frames  *ShardCache[*encodedShard] // frame-ready shard payload bytes
	opts    Options
	// frameCacheOn records whether the frame cache has a byte budget
	// (its own or the shared arena's) — the frame-wire serving path's
	// cache-vs-disk switch.
	frameCacheOn bool

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order for listing
	seq    int
	closed bool

	queue chan *Job
	stop  chan struct{}
	wg    sync.WaitGroup

	// Durability (nil/empty when DataDir is unset).
	log      *jobLog
	master   []byte
	nodeLock *shard.NodeLock
	// ledger is the append-only audit log (nil without DataDir);
	// peerAuth is the master-key-derived fleet-internal secret.
	ledger   *ledger.Ledger
	peerAuth string

	// Tenancy (tenants nil = open server). fair is the global
	// weighted-fair bandwidth pool (nil without ServeBudgetKBps).
	tenants *tenant.Registry
	fair    *fairShare
	// tenantMu guards the quota counters below; it is a leaf lock
	// (see auth.go).
	tenantMu    sync.Mutex
	tenantJobs  map[string]int   // tenant -> jobs queued or running
	tenantBytes map[string]int64 // tenant -> retained shard bytes of done jobs

	// adoptMu serializes shared-log adoption scans (probe callbacks and
	// request-path misses can race into adoptOrphans) and guards the
	// scan memo below, which lets repeated misses skip unchanged logs.
	adoptMu sync.Mutex
	scanSig string
	scanIDs map[string]bool

	// metrics is the server's telemetry registry: all counters and
	// gauges move at the transition that changes them, so a /metrics
	// scrape never takes s.mu (see TestMetricsScrapeDoesNotBlock).
	metrics *serverMetrics
	// spans is the per-node span store behind /v1/traces. Its lock
	// stripes are private to the store — recording on the serving hot
	// path never contends with s.mu or any cache lock.
	spans    *telemetry.SpanStore
	rtSample runtimeSampler
	logger   *slog.Logger
}

// New starts a server's worker pool and registers its routes. With
// Options.DataDir set it also replays the persisted job log, so
// completed jobs from previous runs are immediately servable.
func New(opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	// The unified arena gives each cache the full joint budget as its
	// individual ceiling; the arena's weighted rebalance is what keeps
	// their sum under it.
	cacheBytes, frameBytes := opts.CacheBytes, opts.FrameCacheBytes
	if opts.ServeCacheBytes > 0 {
		cacheBytes, frameBytes = opts.ServeCacheBytes, opts.ServeCacheBytes
	}
	s := &Server{
		mux:         http.NewServeMux(),
		cache:       NewShardCache[[]any](cacheBytes),
		frames:      NewShardCache[*encodedShard](frameBytes),
		opts:        opts,
		jobs:        make(map[string]*Job),
		queue:       make(chan *Job, opts.QueueDepth),
		stop:        make(chan struct{}),
		metrics:     newServerMetrics(),
		logger:      opts.Logger,
		tenants:     opts.Tenants,
		tenantJobs:  make(map[string]int),
		tenantBytes: make(map[string]int64),
	}
	if opts.ServeBudgetKBps > 0 {
		s.fair = newFairShare(int64(opts.ServeBudgetKBps) << 10)
	}
	s.frameCacheOn = frameBytes > 0
	if opts.ServeCacheBytes > 0 {
		arena := &cacheArena{budget: opts.ServeCacheBytes, frames: s.frames, decoded: s.cache}
		s.cache.arena, s.frames.arena = arena, arena
	}
	if s.logger == nil {
		s.logger = slog.New(slog.DiscardHandler)
	}
	// Fleet members tag every line with their ID once here, so call
	// sites don't emit a noisy node="" in single-node mode.
	if id := s.nodeID(); id != "" {
		s.logger = s.logger.With("node", id)
	}
	s.spans = telemetry.NewSpanStore(s.nodeID(), opts.TraceSpans, opts.TraceNotable, opts.TraceSlow)
	s.registerCollectors()
	if opts.DataDir != "" {
		if err := s.openDurable(); err != nil {
			return nil, err
		}
	}
	s.routes()
	// Auth sits inside telemetry so 401s are traced and latency-counted
	// like everything else, but outside the mux so no handler ever runs
	// without an identity when tenancy is on.
	s.handler = s.withTelemetry(s.withAuth(s.mux))
	for w := 0; w < opts.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	if opts.JobTTL > 0 || opts.MaxJobs > 0 || s.tenantByteQuotas() {
		s.wg.Add(1)
		go s.evictLoop()
	}
	if opts.Cluster != nil {
		// Membership transitions trigger adoption of whatever the new
		// ring says is ours; probing starts only once the job table is
		// replayed so adoption never races the initial restore.
		opts.Cluster.SetOnChange(func() { s.adoptOrphans("") })
		opts.Cluster.Start()
	}
	return s, nil
}

// newStore allocates the shard storage backing one job.
func (s *Server) newStore(jobID string) (shard.Store, error) {
	if s.opts.NewStore != nil {
		return s.opts.NewStore(jobID)
	}
	if s.opts.DataDir != "" {
		return shard.NewFSSink(filepath.Join(s.opts.DataDir, "jobs", jobID))
	}
	return shard.NewMemSink(), nil
}

// openDurable prepares the data directory and rebuilds the job table
// from the persisted log. In cluster mode the data dir is shared by the
// fleet: this node registers a heartbeating lock file, appends to its
// own per-node log (so members never interleave writes into one file),
// replays the merged logs of every member, and keeps only the jobs the
// ring assigns to it.
func (s *Server) openDurable() error {
	if err := os.MkdirAll(filepath.Join(s.opts.DataDir, "jobs"), 0o755); err != nil {
		return fmt.Errorf("server: create data dir: %w", err)
	}
	master, err := loadOrCreateMasterKey(s.opts.DataDir)
	if err != nil {
		return err
	}
	s.master = master
	// Fleet-internal requests authenticate with a secret derived from
	// the shared master key — every member of this data dir computes the
	// same value, so peer hops survive tenancy without key distribution.
	s.peerAuth = peerAuthSecret(master)
	if c := s.opts.Cluster; c != nil {
		c.SetPeerAuth(s.peerAuth)
	}
	selfID, logName, ledgerName := "", "jobs.log", "audit.log"
	if c := s.opts.Cluster; c != nil {
		selfID = c.Self().ID
		logName = "jobs-" + selfID + ".log"
		ledgerName = "audit-" + selfID + ".log"
		lock, err := shard.AcquireNodeLock(filepath.Join(s.opts.DataDir, "nodes"), selfID, c.Self().URL, nodeLockStale)
		if err != nil {
			return err
		}
		s.nodeLock = lock
	}
	recs, err := readAllJobLogs(s.opts.DataDir)
	if err != nil {
		return err
	}
	log, err := openJobLog(filepath.Join(s.opts.DataDir, logName))
	if err != nil {
		return err
	}
	s.log = log
	led, err := ledger.Open(ledger.Config{
		Path:      filepath.Join(s.opts.DataDir, ledgerName),
		Node:      selfID,
		BatchSize: s.opts.LedgerBatch,
		FlushWait: s.opts.LedgerFlushWait,
	})
	if err != nil {
		return err
	}
	s.ledger = led
	states, maxSeq := replayJobs(recs, selfID)
	s.seq = maxSeq
	var requeued []*Job
	for _, st := range states {
		if s.opts.Cluster != nil && !s.opts.Cluster.IsLocal(st.sub.ID) {
			continue // another live member's job; adoption picks it up if that member dies
		}
		// Same guard as adoption: a non-terminal job whose accepting
		// member still heartbeats its lock file is running, not lost.
		if s.opts.Cluster != nil && !st.hasTerm &&
			st.sub.Node != "" && st.sub.Node != selfID && s.nodeLockFresh(st.sub.Node) {
			continue
		}
		job, requeue, err := s.restoreJob(st)
		if err != nil {
			return err
		}
		s.jobs[job.id] = job
		s.order = append(s.order, job.id)
		if job.state == JobDone {
			s.quotaRetain(job.tenant, manifestStoredBytes(job.manifest))
		}
		if requeue {
			requeued = append(requeued, job)
		}
	}
	for _, job := range requeued {
		s.enqueueRestored(job)
	}
	s.metrics.jobsTotal.Set(float64(len(s.jobs)))
	return nil
}

// enqueueRestored resubmits a job replayed in queued/running state: its
// partial shard output is wiped so the deterministic rerun starts
// clean. Queue overflow (more interrupted jobs than QueueDepth) falls
// back to the non-requeue behaviour — the job is marked failed.
func (s *Server) enqueueRestored(job *Job) {
	if st, err := s.newStore(job.id); err == nil {
		if d, ok := st.(interface{ Destroy() error }); ok {
			_ = d.Destroy()
		}
	}
	select {
	case s.queue <- job:
		s.quotaActivate(job.tenant)
		s.metrics.jobsQueued.Add(1)
		s.addDurableEvent(job, client.EventRequeued, "interrupted job resubmitted after restart")
		s.logger.Info("job requeued", "job", job.id, "trace", job.trace)
	default:
		job.mu.Lock()
		job.state = JobFailed
		job.err = "requeue: job queue full"
		job.finished = time.Now()
		job.mu.Unlock()
		s.metrics.jobsFailed.Inc()
		s.addEvent(job, client.EventFailed, "requeue: job queue full", "")
		s.persistTerminal(job, "")
	}
}

// restoreJob rebuilds one job from its log records. Jobs the crash
// caught queued or running come back as failed (their partial output
// is gone) — or, with Options.Requeue, as queued again (the caller
// enqueues them). Done jobs reattach to their on-disk shard set and
// reimport their persisted provenance DAG.
func (s *Server) restoreJob(st *replayState) (job *Job, requeue bool, err error) {
	job = &Job{
		id:         st.sub.ID,
		spec:       *st.sub.Spec,
		submitted:  st.sub.Time,
		lastAccess: st.sub.Time,
		trace:      st.sub.Trace,
		tenant:     st.sub.Tenant,
		events:     replayEvents(st),
	}
	if !st.hasTerm {
		if s.opts.Requeue {
			job.state = JobQueued
			return job, true, nil
		}
		job.state = JobFailed
		job.err = "interrupted by server restart"
		job.events = append(job.events, JobEvent{
			Event: client.EventFailed, Time: time.Now(), Node: s.nodeID(),
			Detail: job.err, Trace: job.trace,
		})
		// Record the loss so the next replay converges without this branch.
		_ = s.log.append(logRecord{Type: recFailed, ID: job.id, Time: time.Now(), Error: job.err, Node: s.nodeID()})
		return job, false, nil
	}
	rec := st.rec
	job.started = rec.Started
	job.finished = rec.Time
	job.lastAccess = rec.Time
	if len(rec.Provenance) > 0 {
		if tr, perr := provenance.Import(rec.Provenance); perr == nil {
			job.tracker = tr
		}
	}
	if rec.Type == recFailed {
		job.state = JobFailed
		job.err = rec.Error
		return job, false, nil
	}
	job.state = JobDone
	job.records = rec.Records
	job.trajectory = rec.Traject
	// A job is servable whenever a manifest-indexed shard set exists and
	// its domain has a plugin. (Logs predating the plugin architecture
	// recorded servable=false for fusion/materials jobs even though
	// their manifests were persisted — those become streamable on
	// replay, which is exactly the upgrade this field order buys.)
	job.manifest = rec.Manifest
	plug, perr := domain.Lookup(job.spec.Domain)
	job.servable = rec.Manifest != nil && perr == nil
	if !job.servable {
		return job, false, nil
	}
	store, err := s.newStore(job.id)
	if err != nil {
		return nil, false, err
	}
	// Trust the on-store manifest over the log copy when present: it is
	// committed atomically alongside the shards it describes. Stores
	// without manifest persistence (parfs) serve from the log copy.
	if lm, ok := store.(interface {
		LoadManifest() (*shard.Manifest, error)
	}); ok {
		if m, merr := lm.LoadManifest(); merr == nil {
			job.manifest = m
		}
	}
	job.store = store
	job.open = store
	if rec.SealedKey != "" {
		key, err := unsealJobKey(s.master, rec.SealedKey, job.id)
		if err != nil {
			job.state = JobFailed
			job.err = fmt.Sprintf("restore: %v", err)
			job.servable = false
			return job, false, nil
		}
		job.key = key
		job.open = plug.Opener(store, key)
	}
	if len(job.manifest.Shards) > 0 &&
		store.Size(plug.StoredName(job.manifest.Shards[0].Name, job.key != nil)) == 0 {
		job.state = JobFailed
		job.err = "restore: shard files missing from data dir"
		job.servable = false
	}
	return job, false, nil
}

// nodeID is this server's fleet member ID ("" single-node).
func (s *Server) nodeID() string {
	if c := s.opts.Cluster; c != nil {
		return c.Self().ID
	}
	return ""
}

// Handler returns the HTTP handler (also usable under httptest): the
// route mux wrapped in the telemetry middleware, so every request is
// traced, latency-observed, and logged.
func (s *Server) Handler() http.Handler { return s.handler }

// Close initiates graceful shutdown: no new submissions are accepted,
// running jobs finish, and workers exit. Jobs still queued stay queued
// and are reported as such.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	if s.opts.Cluster != nil {
		// Stop probing first so no adoption scan starts mid-shutdown.
		s.opts.Cluster.Close()
	}
	close(s.stop)
	s.wg.Wait()
	if s.log != nil {
		_ = s.log.close()
	}
	if s.ledger != nil {
		_ = s.ledger.Close()
	}
	if s.nodeLock != nil {
		_ = s.nodeLock.Release()
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		// Check stop first: a blocking select alone picks randomly when
		// both channels are ready, which would keep draining a full
		// queue instead of shutting down.
		select {
		case <-s.stop:
			return
		default:
		}
		select {
		case <-s.stop:
			return
		case job := <-s.queue:
			s.runJob(job)
		}
	}
}

func (s *Server) runJob(job *Job) {
	job.mu.Lock()
	job.state = JobRunning
	job.started = time.Now()
	spec := job.spec
	trace := job.trace
	submitted := job.submitted
	started := job.started
	job.mu.Unlock()
	s.metrics.jobsQueued.Add(-1)
	s.metrics.jobsInFlight.Add(1)
	defer s.metrics.jobsInFlight.Add(-1)
	s.addEvent(job, client.EventRunning, "", "")
	s.logger.Info("job running", "job", job.id, "domain", string(spec.Domain), "trace", trace)

	// Job spans live in the submission's trace but are top-level there:
	// the submission request span ended long before the worker picked the
	// job up, so parenting under it would violate interval nesting.
	var runSpan *telemetry.Span
	if telemetry.ValidTraceID(trace) {
		s.spans.Record(telemetry.SpanData{
			TraceID: trace, SpanID: telemetry.NewSpanID(), Name: "job.wait",
			Start: submitted, End: started,
			Attrs: map[string]string{"job": job.id},
		})
		runSpan = s.spans.StartChild("job.run", telemetry.SpanContext{TraceID: trace})
		runSpan.SetAttr("job", job.id)
		runSpan.SetAttr("domain", string(spec.Domain))
	}

	var res *jobResult
	var pipeStart time.Time
	store, err := s.newStore(job.id)
	if err == nil {
		pipeStart = time.Now()
		res, err = runSpec(spec, store)
		s.metrics.observeStage("job:"+string(spec.Domain), time.Since(pipeStart).Seconds(), 1, 0)
	}
	// Commit durable state before announcing success: a job is only
	// "done" once its manifest is on disk and its key is sealable, so
	// clients never observe a done job that later un-happens.
	var sealedKey string
	if err == nil && s.log != nil {
		if ms, ok := store.(interface{ WriteManifest(*shard.Manifest) error }); ok && res.manifest != nil {
			err = ms.WriteManifest(res.manifest)
		}
		if err == nil && res.key != nil {
			sealedKey, err = sealJobKey(s.master, res.key, job.id)
		}
	}
	// Frame-ready sidecars ride along with the sealed shard set so the
	// first cold frame stream already serves from the disk tier. Best
	// effort: a failed build costs decode+encode (and a lazy backfill)
	// later, never the job.
	if err == nil && res != nil && res.servable && res.manifest != nil {
		s.buildJobSidecars(job, store, res.manifest, res.key)
	}

	job.mu.Lock()
	job.finished = time.Now()
	job.lastAccess = job.finished
	job.store = store
	if res != nil {
		job.trajectory = res.trajectory
		job.tracker = res.tracker
	}
	if err != nil {
		job.state = JobFailed
		job.err = err.Error()
		job.mu.Unlock()
		s.quotaDeactivate(job.tenant)
		runSpan.SetError(err.Error())
		runSpan.End()
		s.metrics.jobsFailed.Inc()
		s.addEvent(job, client.EventFailed, err.Error(), "")
		s.logger.Info("job failed", "job", job.id, "error", err.Error(), "trace", trace)
		s.persistTerminal(job, "")
		s.maybeEvict()
		return
	}
	job.records = res.records
	job.manifest = res.manifest
	job.open = res.open
	job.key = res.key
	job.servable = res.servable && res.manifest != nil
	job.state = JobDone
	job.mu.Unlock()
	s.quotaDeactivate(job.tenant)
	s.quotaRetain(job.tenant, manifestStoredBytes(res.manifest))
	s.metrics.jobsDone.Inc()
	s.addEvent(job, client.EventDone, "", "")
	s.logger.Info("job done", "job", job.id, "records", res.records, "trace", trace)
	s.persistTerminal(job, sealedKey)
	s.maybeEvict()

	// Fold the pipeline's per-stage timings into the stage counters so
	// /metrics aggregates stage cost across all jobs.
	for _, st := range res.pipe.Collector.ByStage() {
		s.metrics.observeStage(st.Stage, st.Total.Seconds(), int64(st.Calls), st.Bytes)
	}

	// Synthesize job.stage child spans from the pipeline's sample record:
	// samples were taken sequentially during runSpec, so laying them end
	// to end from the pipeline start reconstructs the stage timeline
	// (clamped so children never escape job.run's interval).
	if runSpan != nil {
		parent := runSpan.Context()
		cursor := pipeStart
		for _, sm := range res.pipe.Collector.Samples() {
			end := cursor.Add(sm.Duration)
			if end.After(time.Now()) {
				end = time.Now()
			}
			s.spans.Record(telemetry.SpanData{
				TraceID: parent.TraceID, SpanID: telemetry.NewSpanID(), Parent: parent.SpanID,
				Name: "job.stage", Start: cursor, End: end,
				Attrs: map[string]string{"stage": sm.Stage, "category": sm.Category},
			})
			cursor = end
		}
		runSpan.End()
	}
}

// persistTerminal appends a finished job's terminal log record (the
// manifest was already committed to disk by runJob before the job was
// declared done). Without a data dir it is a no-op.
func (s *Server) persistTerminal(job *Job, sealedKey string) {
	if s.log == nil {
		return
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	rec := logRecord{
		ID:      job.id,
		Time:    job.finished,
		Started: job.started,
		Node:    s.nodeID(),
	}
	if job.state == JobFailed {
		rec.Type = recFailed
		rec.Error = job.err
	} else {
		rec.Type = recDone
		rec.Records = job.records
		rec.Servable = job.servable
		rec.Manifest = job.manifest
		rec.Traject = job.trajectory
		rec.SealedKey = sealedKey
	}
	// The lineage DAG rides along on every terminal record so replayed
	// jobs keep serving /provenance (a failed run's partial lineage is
	// worth as much as a successful one's for debugging).
	if job.tracker != nil {
		if b, perr := job.tracker.Export(); perr == nil {
			rec.Provenance = b
		}
	}
	_ = s.log.append(rec)
}

// evictLoop applies TTL eviction on a timer (LRU pressure is also
// checked at every job completion).
func (s *Server) evictLoop() {
	defer s.wg.Done()
	interval := time.Second
	if ttl := s.opts.JobTTL; ttl > 0 {
		interval = ttl / 4
		if interval < 50*time.Millisecond {
			interval = 50 * time.Millisecond
		}
		if interval > 30*time.Second {
			interval = 30 * time.Second
		}
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.maybeEvict()
		}
	}
}

// maybeEvict removes completed jobs past the TTL or beyond the
// retained-job bound (least recently served first), deleting their
// shard storage and logging the eviction so a restart does not
// resurrect them. In-flight streams of a victim fail on their next
// uncached shard read — the same contract as any storage eviction.
func (s *Server) maybeEvict() {
	ttl, maxJobs := s.opts.JobTTL, s.opts.MaxJobs
	if ttl <= 0 && maxJobs <= 0 && !s.tenantByteQuotas() {
		return
	}
	now := time.Now()
	var victims, released []*Job

	s.mu.Lock()
	type candidate struct {
		job  *Job
		last time.Time
	}
	var completed []candidate
	for _, j := range s.jobs {
		// In a fleet only the current ring owner may evict: destroying
		// a shard set out from under the member actually serving it
		// (after ownership moved back) would be a cross-node eviction
		// race on the shared dir. A copy we no longer own (adopted
		// during an outage, owner since returned) is instead released —
		// dropped from the table and cache, storage untouched — so it
		// neither lingers forever nor serves a dir the owner may evict.
		if c := s.opts.Cluster; c != nil && !c.IsLocal(j.id) {
			j.mu.Lock()
			terminal := j.state == JobDone || j.state == JobFailed
			j.mu.Unlock()
			if terminal {
				released = append(released, j)
			}
			continue
		}
		j.mu.Lock()
		terminal := j.state == JobDone || j.state == JobFailed
		last := j.lastAccess
		j.mu.Unlock()
		if !terminal {
			continue
		}
		if ttl > 0 && now.Sub(last) > ttl {
			victims = append(victims, j)
			continue
		}
		completed = append(completed, candidate{job: j, last: last})
	}
	if maxJobs > 0 && len(completed) > maxJobs {
		sort.Slice(completed, func(i, k int) bool {
			return completed[i].last.Before(completed[k].last)
		})
		for _, c := range completed[:len(completed)-maxJobs] {
			victims = append(victims, c.job)
		}
	}
	if s.tenants != nil {
		// Tenant byte-quota pressure: a tenant past its retained-bytes cap
		// has its least recently served completed jobs evicted until it
		// fits again, so over-quota hoarding degrades into LRU turnover
		// instead of freezing the tenant's submissions forever. Reading a
		// victim's manifest without its lock is safe here: the state read
		// above confirmed the job terminal under job.mu, after which the
		// manifest never changes.
		chosen := make(map[string]bool, len(victims))
		for _, j := range victims {
			chosen[j.id] = true
		}
		over := make(map[string]int64)
		for _, t := range s.tenants.Tenants() {
			if t.MaxShardBytes <= 0 {
				continue
			}
			usage := s.tenantRetained(t.ID)
			for _, j := range victims {
				if j.tenant == t.ID {
					usage -= manifestStoredBytes(j.manifest)
				}
			}
			if usage > t.MaxShardBytes {
				over[t.ID] = usage - t.MaxShardBytes
			}
		}
		if len(over) > 0 {
			sort.Slice(completed, func(i, k int) bool {
				return completed[i].last.Before(completed[k].last)
			})
			for _, c := range completed {
				j := c.job
				if chosen[j.id] || over[j.tenant] <= 0 {
					continue
				}
				bytes := manifestStoredBytes(j.manifest)
				if bytes <= 0 {
					continue
				}
				victims = append(victims, j)
				chosen[j.id] = true
				over[j.tenant] -= bytes
			}
		}
	}
	if len(victims) == 0 && len(released) == 0 {
		s.mu.Unlock()
		return
	}
	gone := make(map[string]bool, len(victims)+len(released))
	for _, j := range victims {
		gone[j.id] = true
		delete(s.jobs, j.id)
	}
	for _, j := range released {
		gone[j.id] = true
		delete(s.jobs, j.id)
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if !gone[id] {
			kept = append(kept, id)
		}
	}
	s.order = kept
	s.metrics.jobsTotal.Set(float64(len(s.jobs)))
	s.mu.Unlock()

	for _, j := range released {
		s.cache.DropPrefix(j.id + "/")
		s.frames.DropPrefix(j.id + "/")
		// The ring owner re-retains these bytes on its side; this copy no
		// longer charges the tenant here.
		s.quotaRelease(j.tenant, manifestStoredBytes(j.manifest))
	}
	for _, j := range victims {
		// Destroy the shard files before invalidating the caches: a load
		// that starts in the gap then either fails (files gone — nothing
		// inserted) or completes before DropPrefix and is swept or
		// tombstoned by it. The reverse order would let a load beginning
		// just after DropPrefix read still-present files and cache the
		// deleted job's records forever.
		if d, ok := j.store.(interface{ Destroy() error }); ok {
			_ = d.Destroy()
		} else if s.opts.DataDir != "" {
			// Restored jobs without an attached store (failed or
			// interrupted) may still own a shard directory.
			_ = os.RemoveAll(filepath.Join(s.opts.DataDir, "jobs", j.id))
		}
		s.cache.DropPrefix(j.id + "/")
		s.frames.DropPrefix(j.id + "/")
		if s.log != nil {
			_ = s.log.append(logRecord{Type: recEvicted, ID: j.id, Time: now, Node: s.nodeID()})
		}
		s.quotaRelease(j.tenant, manifestStoredBytes(j.manifest))
		s.audit(ledger.TypeEvict, j.tenant, j.id, "retention")
		s.metrics.jobsEvicted.Inc()
		s.logger.Info("job evicted", "job", j.id)
	}
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /v1/templates", s.handleTemplates)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/provenance", s.handleProvenance)
	s.mux.HandleFunc("GET /v1/jobs/{id}/batches", s.handleBatches)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	s.mux.HandleFunc("GET /v1/audit/roots", s.handleAuditRoots)
	s.mux.HandleFunc("GET /v1/audit/proof", s.handleAuditProof)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraces)
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.opts.Debug {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// TemplateInfo is the catalog entry served by /v1/templates: the wire
// kind, the negotiable wire formats, and whether completed jobs stream
// at all — discovery fields so clients pick a decoder instead of
// probing for 409s.
type TemplateInfo = client.TemplateInfo

func (s *Server) handleTemplates(w http.ResponseWriter, _ *http.Request) {
	plugs := domain.Plugins()
	out := make([]TemplateInfo, len(plugs))
	for i, p := range plugs {
		info := TemplateInfo{Domain: string(p.Domain), Kind: p.Codec.Kind(),
			Wires: domain.Wires(), Servable: true}
		if t, err := registry.Lookup(p.Domain); err == nil {
			info.Description = t.Description
		}
		out[i] = info
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode job spec: %w", err))
		return
	}
	// Gate on the plugin seam (not the registry): a spec is runnable iff
	// a domain plugin exists — the same lookup runSpec will do.
	if _, err := domain.Lookup(spec.Domain); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.clusterMode() {
		s.clusterSubmit(w, r, spec)
		return
	}
	s.submitLocal(w, spec, "", telemetry.TraceFrom(r.Context()), tenant.FromContext(r.Context()).ID)
}

// submitLocal enqueues a job on this node. An empty id allocates the
// next sequence number; a pre-assigned id (cluster routing) is used
// verbatim after a collision check. trace is the submitting request's
// trace ID — recorded on the job and in its log record so the whole
// lifecycle correlates back to the request. tenantID is the
// authenticated submitter ("" with auth off): it owns the job for
// scoping, is charged for it under quotas, and rides on the log record
// so ownership survives replay and adoption.
func (s *Server) submitLocal(w http.ResponseWriter, spec JobSpec, id, trace, tenantID string) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server is shutting down"))
		return
	}
	if id == "" {
		s.seq++
		id = s.jobID(s.seq)
	} else if _, exists := s.jobs[id]; exists {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, fmt.Errorf("job %q already exists", id))
		return
	}
	var ten *tenant.Tenant
	if s.tenants != nil && tenantID != "" {
		if t, ok := s.tenants.Get(tenantID); ok {
			ten = t
		}
	}
	if err := s.quotaAdmit(ten); err != nil {
		s.mu.Unlock()
		s.metrics.tenantQuotaRejections.Inc()
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	job := &Job{
		id:        id,
		spec:      spec,
		state:     JobQueued,
		submitted: time.Now(),
		trace:     trace,
		tenant:    tenantID,
	}
	if job.spec.Name == "" {
		job.spec.Name = job.id
	}
	job.events = []JobEvent{
		{Event: client.EventSubmitted, Time: job.submitted, Node: s.nodeID(), Trace: trace},
		{Event: client.EventQueued, Time: job.submitted, Node: s.nodeID(), Trace: trace},
	}
	select {
	case s.queue <- job:
		s.jobs[job.id] = job
		s.order = append(s.order, job.id)
		s.metrics.jobsTotal.Set(float64(len(s.jobs)))
		s.mu.Unlock()
		s.metrics.jobsQueued.Add(1)
		if s.log != nil {
			spec := job.spec
			_ = s.log.append(logRecord{
				Type: recSubmitted, ID: job.id, Time: job.submitted, Spec: &spec,
				Node: s.nodeID(), Trace: trace, Tenant: tenantID,
			})
		}
		s.audit(ledger.TypeSubmit, tenantID, job.id, string(spec.Domain))
		s.logger.Info("job submitted", "job", job.id, "domain", string(spec.Domain), "trace", trace)
		writeJSON(w, http.StatusAccepted, s.decorate(job.Status()))
	default:
		s.mu.Unlock()
		if ten != nil {
			s.quotaDeactivate(ten.ID)
		}
		writeError(w, http.StatusTooManyRequests, fmt.Errorf("job queue full (%d waiting)", cap(s.queue)))
	}
}

// decorate stamps a status with this node's fleet identity.
func (s *Server) decorate(st JobStatus) JobStatus {
	st.Node = s.nodeID()
	return st
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	ident := tenant.FromContext(r.Context())
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		if s.tenants != nil && !ident.CanAccess(j.tenant) {
			continue
		}
		out = append(out, s.decorate(j.Status()))
	}
	if s.clusterMode() && r.URL.Query().Get("scope") != "local" && !cluster.Forwarded(r) {
		out = s.mergeClusterList(out, ident.ID)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok && s.clusterMode() && s.opts.DataDir != "" {
		// The job may be stranded on the shared dir by a dead member
		// whose hash range just became ours: adopt it on the spot.
		// Malformed IDs can't name a logged job — don't scan for them.
		if _, _, valid := parseJobID(id); valid {
			job = s.adoptJob(id)
			ok = job != nil
		}
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return nil
	}
	if s.tenants != nil {
		if ident := tenant.FromContext(r.Context()); !ident.CanAccess(job.tenant) {
			// 403 (not a job-hiding 404): the ID namespace is sequential
			// and node-prefixed, so existence is not a secret — but the
			// job's spec, events, and batches are.
			writeError(w, http.StatusForbidden, fmt.Errorf("job %q belongs to another tenant", id))
			return nil
		}
	}
	return job
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if s.routedElsewhere(w, r) {
		return
	}
	if job := s.job(w, r); job != nil {
		writeJSON(w, http.StatusOK, s.decorate(job.Status()))
	}
}

func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	if s.routedElsewhere(w, r) {
		return
	}
	job := s.job(w, r)
	if job == nil {
		return
	}
	job.mu.Lock()
	tracker := job.tracker
	job.mu.Unlock()
	if tracker == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("job %s has no provenance yet", job.id))
		return
	}
	b, err := tracker.Export()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func (s *Server) handleBatches(w http.ResponseWriter, r *http.Request) {
	if s.routedElsewhere(w, r) {
		return
	}
	// Time-to-first-batch starts once the request is ours to serve —
	// proxy hops are accounted on the node actually streaming.
	streamStart := time.Now()
	job := s.job(w, r)
	if job == nil {
		return
	}
	job.mu.Lock()
	dom := string(job.spec.Domain)
	job.mu.Unlock()
	manifest, open, codec, err := job.serveHandle()
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	batchSize, err := queryInt(r, "batch_size", 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	maxBatches, err := queryInt(r, "max_batches", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if batchSize <= 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch_size must be positive"))
		return
	}
	// 0 means unlimited; a negative cap is a malformed request, not a
	// synonym for it — same contract as batch_size and max_kbps.
	if maxBatches < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("max_batches must not be negative"))
		return
	}
	maxKBps, err := queryInt(r, "max_kbps", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if maxKBps < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("max_kbps must not be negative"))
		return
	}
	// Rates beyond ~1 TiB/s are indistinguishable from unpaced and
	// would overflow the bytes/sec conversion below — treat them as no
	// request. Applies to the operator's ceiling too.
	const maxPaceKBps = 1 << 30
	if maxKBps > maxPaceKBps {
		maxKBps = 0
	}
	// The client may pace itself below the server-wide ceiling, never
	// above it.
	if lim := s.opts.ServeMaxKBps; lim > 0 && lim <= maxPaceKBps && (maxKBps <= 0 || maxKBps > lim) {
		maxKBps = lim
	}
	start := Cursor{}
	if cs := r.URL.Query().Get("cursor"); cs != "" {
		start, err = ParseCursor(cs)
		if err == nil {
			err = start.validate(manifest)
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	job.touch()
	ident := tenant.FromContext(r.Context())
	s.audit(ledger.TypeStream, ident.ID, job.id, "cursor="+start.String()+" batch_size="+strconv.Itoa(batchSize))

	// Content negotiation: NDJSON unless the client's Accept asks for
	// the binary frame format. X-Draid-Wire names the format actually
	// chosen, so clients need not re-parse the content type.
	wire := domain.WireNDJSON
	if acceptsFrames(r) {
		wire = domain.WireFrame
	}
	if wire == domain.WireFrame {
		w.Header().Set("Content-Type", domain.ContentTypeFrame)
	} else {
		w.Header().Set("Content-Type", domain.ContentTypeNDJSON)
	}
	w.Header().Set(domain.HeaderWire, wire)
	w.Header().Set("X-Draid-Cursor", start.String())
	cw := &countingResponseWriter{w: w}
	flusher, _ := w.(http.Flusher)
	// Pacing: with a global fair-share budget every stream gets a
	// dynamic pacer tracking its live share (capped by any per-stream
	// ?max_kbps= / server ceiling resolved above); without one, the
	// per-stream cap alone paces, exactly as before.
	var pace *pacer
	if s.fair != nil {
		weight := 1
		if s.tenants != nil {
			if t, ok := s.tenants.Get(ident.ID); ok {
				weight = t.EffectiveWeight()
			}
		}
		fairRate, release := s.fair.acquire(ident.ID, weight)
		defer release()
		capBytes := float64(0)
		if maxKBps > 0 {
			capBytes = float64(int64(maxKBps) << 10)
		}
		pace = newDynamicPacer(func() float64 {
			rate := fairRate()
			if capBytes > 0 && capBytes < rate {
				rate = capBytes
			}
			return rate
		})
	} else if maxKBps > 0 {
		pace = newPacer(int64(maxKBps) << 10)
	}
	// Histogram children resolved once per stream, not per batch.
	firstBatchH := s.metrics.firstBatch.With(dom, wire)
	encodeH := s.metrics.batchEncode.With(dom, wire)
	trace := telemetry.TraceFrom(r.Context())

	// emitError reports a mid-stream failure in-band, in the stream's
	// own format (NDJSON error line or error frame) — and fails the
	// request's root span so the trace is tail-sampled as notable.
	emitError := func(err error) {
		s.metrics.serveErrors.Inc()
		telemetry.SpanFromContext(r.Context()).SetError(err.Error())
		if wire == domain.WireFrame {
			_, _ = cw.Write(domain.EncodeErrorFrame(err.Error()))
			return
		}
		line, _ := json.Marshal(map[string]string{"error": err.Error()})
		cw.writeLine(string(line))
	}

	// Frame streams are served by slicing byte ranges out of per-shard
	// frame sources — cached payload bytes, on-store sidecars, or a
	// per-request encode, resolved per shard by frameSourceFor — so a
	// single emission path covers warm, disk-tier, and fallback
	// serving. NDJSON keeps the encode-per-request path. Sources backed
	// by open store handles are closed when the stream ends.
	useFrames := wire == domain.WireFrame
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()

	served := 0
	failed := false                // shard-read failure: error already reported in-band
	emitFailed := false            // write/encode failure: the connection is unusable
	pos := start                   // position after the last record buffered for emission
	var pending []any              // NDJSON path: buffered records
	var pendingRanges []frameRange // frame path: buffered payload ranges
	pendingCount := 0

	// post is the shared per-batch bookkeeping after a successful write:
	// latency, counters, flush, and pacing — which charges the bytes
	// actually written since before (cw.n), so NDJSON, encoded frames,
	// and cache-sliced frames are throttled identically.
	post := func(before int64) error {
		if served == 0 {
			firstBatchH.ObserveWithExemplar(time.Since(streamStart).Seconds(), trace)
		}
		served++
		s.metrics.batchesServed.Inc()
		s.metrics.samplesServed.Add(float64(pendingCount))
		if flusher != nil {
			flusher.Flush()
		}
		if pace != nil {
			stallStart := time.Now()
			perr := pace.pace(r.Context(), cw.n-before)
			// A pace call that actually slept becomes a span — token-bucket
			// bookkeeping that never blocked is not a stall.
			if d := time.Since(stallStart); d >= time.Millisecond {
				s.recordChildSpan(r.Context(), "pace.stall", stallStart, stallStart.Add(d), nil)
			}
			if perr != nil {
				return perr
			}
		}
		return nil
	}

	emit := func() error {
		// The codec references the cached record slices directly —
		// encoding only reads them, and copying every batch would double
		// memory traffic on the serving hot path.
		h := domain.BatchHeader{Batch: served, Cursor: pos.String(), Kind: codec.Kind()}
		before := cw.n
		// Encode and write are timed apart: the encode histogram is
		// codec cost only, so a slow client (or the pacer) cannot
		// masquerade as an expensive codec.
		encStart := time.Now()
		line, err := codec.Line(h, pending)
		if err != nil {
			// Encode failure with a healthy connection: nothing was
			// written yet, so the client can still be told — same
			// contract as the shard-read failure path. (Write/pace
			// errors below get nothing; that connection is dead.)
			emitError(err)
			return err
		}
		b, err := json.Marshal(line)
		if err != nil {
			emitError(err)
			return err
		}
		wireBytes := append(b, '\n')
		encDone := time.Now()
		encodeH.Observe(encDone.Sub(encStart).Seconds())
		s.recordChildSpan(r.Context(), "batch.encode", encStart, encDone, nil)
		if _, err := cw.Write(wireBytes); err != nil {
			return err
		}
		return post(before)
	}

	// emitFrame frames the buffered payload ranges under a fresh
	// header. The envelope is a handful of varint bytes; the payload is
	// written straight from each source — cached buffers, or io.CopyN
	// off an on-store sidecar — byte-identical to what EncodeFrame
	// would produce (a codec batch payload is the concatenation of its
	// records' payloads), with the encode histogram collapsing to
	// header-assembly time.
	emitFrame := func() error {
		h := domain.BatchHeader{Batch: served, Cursor: pos.String(), Kind: codec.Kind()}
		before := cw.n
		encStart := time.Now()
		payloadLen := 0
		for _, rng := range pendingRanges {
			payloadLen += rng.src.rangeLen(rng.a, rng.b)
		}
		env, err := domain.FrameEnvelope(h, pendingCount, payloadLen)
		if err != nil {
			emitError(err)
			return err
		}
		encDone := time.Now()
		encodeH.Observe(encDone.Sub(encStart).Seconds())
		s.recordChildSpan(r.Context(), "batch.encode", encStart, encDone, nil)
		if _, err := cw.Write(env); err != nil {
			return err
		}
		for _, rng := range pendingRanges {
			if err := rng.src.writeRange(cw, rng.a, rng.b); err != nil {
				return err
			}
		}
		return post(before)
	}

	flush := func() error {
		var err error
		if useFrames {
			err = emitFrame()
			pendingRanges = pendingRanges[:0]
		} else {
			err = emit()
			pending = pending[:0]
		}
		pendingCount = 0
		return err
	}

shards:
	for si := start.Shard; si < len(manifest.Shards); si++ {
		info := manifest.Shards[si]
		var records []any
		var src frameSource
		var n int
		var err error
		if useFrames {
			src, err = s.frameSourceFor(r.Context(), job, dom, manifest, info, open, codec, &closers)
			if err == nil {
				n = src.count()
			}
		} else {
			records, err = s.shardRecords(r.Context(), job.id, dom, manifest, info, open, codec)
			if err == nil {
				n = len(records)
			}
		}
		if err != nil {
			// Headers are gone; the in-band error is the only channel
			// left — but the counter makes the failure observable
			// beyond whoever held this one connection.
			emitError(err)
			failed = true
			break
		}
		first := 0
		if si == start.Shard {
			first = start.Record
			if first > n {
				first = n
			}
		}
		for j := first; j < n; j++ {
			if useFrames {
				// Batches may span shards; contiguous records within one
				// shard coalesce into a single byte range.
				if k := len(pendingRanges); k > 0 && pendingRanges[k-1].src == src && pendingRanges[k-1].b == j {
					pendingRanges[k-1].b = j + 1
				} else {
					pendingRanges = append(pendingRanges, frameRange{src: src, a: j, b: j + 1})
				}
			} else {
				pending = append(pending, records[j])
			}
			pendingCount++
			pos = advanceCursor(manifest, si, j)
			if pendingCount == batchSize {
				if err := flush(); err != nil {
					// The batch was already written (or the writer is
					// gone): do NOT fall through to the tail emit, which
					// would duplicate it onto a half-dead connection.
					emitFailed = true
					break shards
				}
				if maxBatches > 0 && served >= maxBatches {
					break shards
				}
			}
		}
	}
	if !failed && !emitFailed && pendingCount > 0 && (maxBatches <= 0 || served < maxBatches) {
		_ = flush()
	}
	if pace != nil && pace.throttled {
		s.metrics.serveThrottled.Inc()
	}
	s.metrics.bytesServed.Add(float64(cw.n))
	s.metrics.observeStage("serve:batches", 0, 1, cw.n)
}

// shardRecords returns one shard's decoded records through the LRU
// cache, verifying checksums and decoding (via the domain codec) on
// first access only. Misses are timed into the shard-load histogram
// (with the loading request's trace as exemplar) and spanned as
// shard.load; hits observe nothing — cache lookups are not loads.
func (s *Server) shardRecords(ctx context.Context, jobID, dom string, m *shard.Manifest, info shard.Info, open shard.Opener, codec domain.Codec) ([]any, error) {
	key := jobID + "/" + info.Name
	return s.cache.Get(key, func() ([]any, int64, error) {
		loadStart := time.Now()
		one := &shard.Manifest{Prefix: m.Prefix, Compressed: m.Compressed, Shards: []shard.Info{info}}
		var records []any
		var bytes int64
		err := shard.ReadAll(open, one, func(_ string, rec []byte) error {
			decoded, n, derr := codec.Decode(rec)
			if derr != nil {
				return derr
			}
			records = append(records, decoded)
			bytes += n
			return nil
		})
		loadDone := time.Now()
		outcome := "ok"
		attrs := map[string]string{"shard": info.Name}
		if err != nil {
			outcome = "error"
			attrs["error"] = err.Error()
		}
		s.metrics.shardLoad.With(dom, outcome).ObserveWithExemplar(
			loadDone.Sub(loadStart).Seconds(), telemetry.TraceFrom(ctx))
		s.recordChildSpan(ctx, "shard.load", loadStart, loadDone, attrs)
		if err != nil {
			return nil, 0, err
		}
		return records, bytes, nil
	})
}

// recordChildSpan records a completed interval as a child of the
// context's active span — the no-allocation-when-untraced path for
// per-batch and cache-fill work, where a live Span object per event
// would cost more than the work being measured.
func (s *Server) recordChildSpan(ctx context.Context, name string, start, end time.Time, attrs map[string]string) {
	sp := telemetry.SpanFromContext(ctx)
	if sp == nil {
		return
	}
	pc := sp.Context()
	s.spans.Record(telemetry.SpanData{
		TraceID: pc.TraceID, SpanID: telemetry.NewSpanID(), Parent: pc.SpanID,
		Name: name, Start: start, End: end, Attrs: attrs,
	})
}

// pacer is a per-stream token bucket: rate bytes/second sustained, with
// a small burst so short streams are not over-delayed by rounding.
type pacer struct {
	rate      float64 // bytes per second
	burst     float64 // bucket capacity (bytes)
	tokens    float64
	last      time.Time
	throttled bool
	// rateFn, when set, re-resolves the rate at every pace call — the
	// weighted-fair share moves as streams open and close elsewhere.
	rateFn func() float64
}

// newPacer returns a pacer sustaining rateBytes per second, with the
// pacerBurst capacity for that rate.
func newPacer(rateBytes int64) *pacer {
	burst := pacerBurst(float64(rateBytes))
	return &pacer{rate: float64(rateBytes), burst: burst, tokens: burst, last: time.Now()}
}

// pace charges n bytes against the bucket and sleeps off any deficit.
// The sleep aborts when ctx ends (client disconnect), returning the
// context's error so the caller stops streaming instead of pinning a
// handler goroutine — a huge batch at a tiny rate would otherwise
// sleep unbounded for a reader that may already be gone.
func (p *pacer) pace(ctx context.Context, n int64) error {
	if p.rateFn != nil {
		if r := p.rateFn(); r > 0 && r != p.rate {
			p.rate = r
			p.burst = pacerBurst(r)
			if p.tokens > p.burst {
				p.tokens = p.burst
			}
		}
	}
	now := time.Now()
	p.tokens += now.Sub(p.last).Seconds() * p.rate
	if p.tokens > p.burst {
		p.tokens = p.burst
	}
	p.last = now
	p.tokens -= float64(n)
	if p.tokens < 0 {
		p.throttled = true
		t := time.NewTimer(time.Duration(-p.tokens / p.rate * float64(time.Second)))
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// handleMetrics renders the registry. It never takes s.mu: every value
// is either updated at its state transition or collected by a callback
// against a subsystem's own lock, so a scrape under heavy submission
// load costs the submitters nothing (the old implementation scanned the
// whole job table under the server mutex, stalling submissions for the
// duration of every scrape).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// One MemStats snapshot per scrape, shared by every runtime
	// collector — ReadMemStats stops the world, so the collectors must
	// never each take their own.
	if s.opts.Debug {
		s.rtSample.refresh()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.reg.WritePrometheus(w)
}

// countingResponseWriter tracks bytes written for the serving metrics.
type countingResponseWriter struct {
	w http.ResponseWriter
	n int64
}

func (c *countingResponseWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (c *countingResponseWriter) writeLine(line string) {
	n, _ := c.w.Write([]byte(line + "\n"))
	c.n += int64(n)
}

// acceptsFrames reports whether the request's Accept header asks for
// the binary frame media type at least as strongly as for NDJSON.
// Only an explicit frame mention opts in — wildcard accepts (curl's
// */*) keep the debuggable NDJSON default — and q-values are honoured
// per RFC 9110: ";q=0" refuses frames, and a lower frame q than the
// client's (explicit or wildcard) NDJSON preference keeps NDJSON.
func acceptsFrames(r *http.Request) bool {
	frameQ, ndjsonQ, wildQ := -1.0, -1.0, -1.0
	// A media range repeated across (or within) Accept headers keeps its
	// most preferred weight, per RFC 9110's "most preferred" semantics —
	// overwriting with the last occurrence would let a trailing ;q=0.1
	// mask an earlier explicit preference.
	keep := func(dst *float64, q float64) {
		if q > *dst {
			*dst = q
		}
	}
	for _, accept := range r.Header.Values("Accept") {
		for _, part := range strings.Split(accept, ",") {
			mt, params, _ := strings.Cut(part, ";")
			q := acceptQ(params)
			switch strings.ToLower(strings.TrimSpace(mt)) {
			case domain.ContentTypeFrame:
				keep(&frameQ, q)
			case domain.ContentTypeNDJSON:
				keep(&ndjsonQ, q)
			case "*/*", "application/*":
				keep(&wildQ, q)
			}
		}
	}
	if frameQ <= 0 {
		return false // unmentioned or explicitly refused
	}
	effNDJSON := ndjsonQ
	if effNDJSON < 0 {
		effNDJSON = wildQ // NDJSON reachable through a wildcard only
	}
	return frameQ >= effNDJSON
}

// acceptQ extracts a media range's q-value from its parameter list
// (1.0 when absent or unparsable, per RFC 9110's default weight).
func acceptQ(params string) float64 {
	for _, param := range strings.Split(params, ";") {
		k, v, ok := strings.Cut(param, "=")
		if !ok || !strings.EqualFold(strings.TrimSpace(k), "q") {
			continue
		}
		if q, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
			return q
		}
	}
	return 1
}

func queryInt(r *http.Request, key string, def int) (int, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("query %s=%q is not an integer", key, v)
	}
	return n, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
