// Serving-throughput benchmark harness: stands up a draid server over
// httptest, prepares one completed job, then hammers the batch endpoint
// with N concurrent streaming clients. Shared by the Go benchmark, the
// end-to-end tests, and cmd/benchreport's BENCH_serve.json artifact, so
// future PRs track serving speed with one number.
package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/parfs"
	"repro/internal/shard"
)

// ServeBenchResult reports one throughput run; JSON field names are the
// BENCH_serve.json schema.
type ServeBenchResult struct {
	Clients       int     `json:"clients"`
	BatchSize     int     `json:"batch_size"`
	Backend       string  `json:"backend"`
	Domain        string  `json:"domain,omitempty"`
	Kind          string  `json:"kind,omitempty"`
	Batches       int64   `json:"batches"`
	Samples       int64   `json:"samples"`
	Bytes         int64   `json:"bytes"`
	Seconds       float64 `json:"seconds"`
	BytesPerSec   float64 `json:"bytes_per_sec"`
	BatchesPerSec float64 `json:"batches_per_sec"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
}

// Render formats the result for benchreport's console output.
func (r *ServeBenchResult) Render() string {
	workload := r.Backend + " store"
	if r.Domain != "" {
		workload += fmt.Sprintf(", %s (%s)", r.Domain, r.Kind)
	}
	return fmt.Sprintf(
		"Serving throughput — %d concurrent clients, batch size %d, %s:\n"+
			"  %d batches (%d samples, %d bytes) in %.3fs\n"+
			"  %.2f MiB/s, %.0f batches/s; shard cache %d hits / %d misses\n",
		r.Clients, r.BatchSize, workload, r.Batches, r.Samples, r.Bytes, r.Seconds,
		r.BytesPerSec/(1024*1024), r.BatchesPerSec, r.CacheHits, r.CacheMisses)
}

// ServeBenchConfig parameterizes RunServeBenchmark.
type ServeBenchConfig struct {
	// Clients is the number of concurrent streaming readers (required).
	Clients int
	// BatchSize is samples per NDJSON batch line.
	BatchSize int
	// MaxBatches caps each stream; <=0 streams the whole shard set.
	MaxBatches int
	// Passes is how many times each client streams; <=0 means once.
	Passes int
	// Backend picks the per-job shard store: "mem" (default), "fs"
	// (durable FSSink under DataDir or a temp dir), or "parfs" (the
	// simulated striped parallel FS, so stripe contention shows up in
	// the measurement).
	Backend string
	// DataDir roots the "fs" backend; empty uses a temp dir that is
	// removed afterwards.
	DataDir string
	// ColdCache disables the decoded-shard cache so every read hits the
	// store — required when the measurement is about the store (the
	// fs/mem gate): with the cache on, both backends serve ~all batches
	// from RAM and the ratio measures scheduler noise.
	ColdCache bool
	// Domain picks the streamed workload (and therefore the wire codec).
	// Empty means climate.
	Domain core.Domain
}

// RunServeBenchmark measures concurrent streaming throughput: it
// submits one job for the configured domain (climate by default), waits
// for readiness, then runs Clients parallel readers each streaming up
// to MaxBatches batches of BatchSize records against the configured
// store backend.
func RunServeBenchmark(cfg ServeBenchConfig) (*ServeBenchResult, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("server: clients=%d must be positive", cfg.Clients)
	}
	if cfg.Passes <= 0 {
		cfg.Passes = 1
	}
	if cfg.Backend == "" {
		cfg.Backend = "mem"
	}
	if cfg.Domain == "" {
		cfg.Domain = core.Climate
	}
	plug, err := domain.Lookup(cfg.Domain)
	if err != nil {
		return nil, err
	}
	opts := Options{Workers: 2, CacheBytes: 64 << 20}
	if cfg.ColdCache {
		opts.CacheBytes = 0
	}
	switch cfg.Backend {
	case "mem":
	case "fs":
		dir := cfg.DataDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "draid-bench-")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		opts.DataDir = dir
	case "parfs":
		opts.NewStore = func(string) (shard.Store, error) {
			fs, err := parfs.New(parfs.DefaultConfig())
			if err != nil {
				return nil, err
			}
			return shard.NewParfsSink(fs), nil
		}
	default:
		return nil, fmt.Errorf("server: unknown store backend %q (want mem|fs|parfs)", cfg.Backend)
	}
	s, err := New(opts)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id, err := SubmitAndWait(ts.URL, JobSpec{Domain: cfg.Domain, Name: "serve-bench", Seed: 1}, 60*time.Second)
	if err != nil {
		return nil, err
	}

	url := fmt.Sprintf("%s/v1/jobs/%s/batches?batch_size=%d&max_batches=%d", ts.URL, id, cfg.BatchSize, cfg.MaxBatches)
	res := &ServeBenchResult{Clients: cfg.Clients, BatchSize: cfg.BatchSize, Backend: cfg.Backend,
		Domain: string(cfg.Domain), Kind: plug.Codec.Kind()}
	clients, passes := cfg.Clients, cfg.Passes
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := 0; p < passes; p++ {
				batches, samples, n, err := StreamBatches(url)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				res.Batches += batches
				res.Samples += samples
				res.Bytes += n
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Seconds = time.Since(start).Seconds()
	if firstErr != nil {
		return nil, firstErr
	}
	if res.Seconds > 0 {
		res.BytesPerSec = float64(res.Bytes) / res.Seconds
		res.BatchesPerSec = float64(res.Batches) / res.Seconds
	}
	cs := s.cache.Stats()
	res.CacheHits, res.CacheMisses = cs.Hits, cs.Misses
	return res, nil
}

// ServeBenchReport pairs a same-process mem-backend and fs-backend run;
// it is the BENCH_serve.json schema. The CI gate compares FSOverMem —
// how much of the in-memory serving rate survives the durable store —
// because that ratio is a property of the code path, not of how fast
// the machine running the benchmark happens to be.
type ServeBenchReport struct {
	Mem *ServeBenchResult `json:"mem"`
	FS  *ServeBenchResult `json:"fs"`
	// FSOverMem is samples/sec with the fs backend divided by
	// samples/sec with the mem backend, measured in the same run.
	FSOverMem float64 `json:"fs_over_mem"`
	// Codecs is the per-codec throughput dimension: one mem-backend run
	// per registered domain, keyed by domain name, each tagged with its
	// wire kind. Informational — the regression gate stays on FSOverMem.
	Codecs map[string]*ServeBenchResult `json:"codecs,omitempty"`
}

// Render formats both runs, the gate ratio, and the per-codec sweep.
func (r *ServeBenchReport) Render() string {
	out := r.Mem.Render() + r.FS.Render() +
		fmt.Sprintf("fs/mem serve-throughput ratio: %.3f\n", r.FSOverMem)
	if len(r.Codecs) > 0 {
		out += "per-codec throughput (mem backend):\n"
		names := make([]string, 0, len(r.Codecs))
		for name := range r.Codecs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			c := r.Codecs[name]
			out += fmt.Sprintf("  %-12s %-18s %8.0f records/s, %7.2f MiB/s\n",
				name, "("+c.Kind+")", float64(c.Samples)/c.Seconds, c.BytesPerSec/(1024*1024))
		}
	}
	return out
}

// RunServeComparison runs the serve benchmark against the mem and fs
// backends with identical load, yielding the same-run relative metric
// the regression gate consumes. Each backend runs serveCompareRounds
// times interleaved and the gate ratio uses the median samples/sec of
// each side — a single short run's ratio swings ±15% with scheduler
// noise, which would eat the whole regression budget.
func RunServeComparison(cfg ServeBenchConfig) (*ServeBenchReport, error) {
	// Cold cache on both sides: the gate is about the store code path,
	// and a warm cache hides it behind RAM reads.
	cfg.ColdCache = true
	var memRates, fsRates []float64
	rep := &ServeBenchReport{}
	for round := 0; round < serveCompareRounds; round++ {
		memCfg := cfg
		memCfg.Backend = "mem"
		mem, err := RunServeBenchmark(memCfg)
		if err != nil {
			return nil, err
		}
		fsCfg := cfg
		fsCfg.Backend = "fs"
		fs, err := RunServeBenchmark(fsCfg)
		if err != nil {
			return nil, err
		}
		if mem.Seconds > 0 {
			memRates = append(memRates, float64(mem.Samples)/mem.Seconds)
		}
		if fs.Seconds > 0 {
			fsRates = append(fsRates, float64(fs.Samples)/fs.Seconds)
		}
		rep.Mem, rep.FS = mem, fs // keep the last rounds' detail for the report
	}
	memRate, fsRate := median(memRates), median(fsRates)
	if memRate > 0 {
		rep.FSOverMem = fsRate / memRate
	}
	// Per-codec dimension: every registered domain streams once against
	// the mem backend, so codec-encode regressions are visible per wire
	// kind rather than folded into the climate-only gate number. Climate
	// deliberately runs again here even though rep.Mem measured it: the
	// gate rounds are cold-cache (store-bound) while this sweep is
	// warm-cache (codec-bound), and the sweep's four numbers must be
	// mutually comparable.
	rep.Codecs = make(map[string]*ServeBenchResult, len(domain.Plugins()))
	for _, plug := range domain.Plugins() {
		codecCfg := cfg
		codecCfg.Backend = "mem"
		codecCfg.Passes = 1
		codecCfg.ColdCache = false
		codecCfg.Domain = plug.Domain
		res, err := RunServeBenchmark(codecCfg)
		if err != nil {
			return nil, fmt.Errorf("codec sweep %s: %w", plug.Domain, err)
		}
		rep.Codecs[string(plug.Domain)] = res
	}
	return rep, nil
}

// serveCompareRounds is how many interleaved mem/fs rounds feed the
// gate's median. Five rounds put the median's spread well inside the
// 20% regression budget (single runs swing ±15%).
const serveCompareRounds = 5

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// SubmitAndWait posts a job spec to a running draid server and polls it
// until done, returning the job ID.
func SubmitAndWait(baseURL string, spec JobSpec, timeout time.Duration) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	resp, err := http.Post(baseURL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	var st JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(baseURL + "/v1/jobs/" + st.ID)
		if err != nil {
			return "", err
		}
		var cur JobStatus
		err = json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		switch cur.State {
		case JobDone:
			return cur.ID, nil
		case JobFailed:
			return "", fmt.Errorf("job %s failed: %s", cur.ID, cur.Error)
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("job %s still %s after %s", cur.ID, cur.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// BatchWire is the client-side view of one streamed NDJSON line of
// /v1/jobs/{id}/batches — the union of every kind's payload schema, so
// generic tooling can decode any domain's stream. The field order
// matches the per-codec server emission exactly, so unmarshal →
// re-marshal reproduces a line byte-for-byte (the resume tests and
// clustersmoke rely on this). Exactly one payload group is populated:
//
//	kind "samples":          features, labels
//	kind "fusion_windows":   labels, signals, shots, starts, horizons
//	kind "materials_graphs": graphs
//
// The cursor names the position after this batch: pass it back as
// ?cursor=… to resume the stream exactly there after a disconnect.
type BatchWire struct {
	Batch    int               `json:"batch"`
	Cursor   string            `json:"cursor"`
	Kind     string            `json:"kind,omitempty"`
	Features [][]float32       `json:"features,omitempty"`
	Labels   []int64           `json:"labels,omitempty"`
	Signals  [][]float32       `json:"signals,omitempty"`
	Shots    []int64           `json:"shots,omitempty"`
	Starts   []int64           `json:"starts,omitempty"`
	Horizons []float32         `json:"horizons,omitempty"`
	Graphs   []json.RawMessage `json:"graphs,omitempty"`
	Error    string            `json:"error,omitempty"`
}

// Count returns the number of records in the batch, whatever its kind.
func (w *BatchWire) Count() int {
	if len(w.Graphs) > 0 {
		return len(w.Graphs)
	}
	return len(w.Labels)
}

// check validates the batch's per-kind shape invariants.
func (w *BatchWire) check() error {
	if w.Error != "" {
		return fmt.Errorf("server error: %s", w.Error)
	}
	switch w.Kind {
	case "samples":
		if len(w.Features) == 0 || len(w.Features) != len(w.Labels) {
			return fmt.Errorf("%d feature rows vs %d labels", len(w.Features), len(w.Labels))
		}
	case "fusion_windows":
		if len(w.Signals) == 0 || len(w.Signals) != len(w.Labels) ||
			len(w.Shots) != len(w.Labels) || len(w.Starts) != len(w.Labels) ||
			len(w.Horizons) != len(w.Labels) {
			return fmt.Errorf("ragged fusion batch: %d signals / %d labels / %d shots / %d starts / %d horizons",
				len(w.Signals), len(w.Labels), len(w.Shots), len(w.Starts), len(w.Horizons))
		}
	case "materials_graphs":
		if len(w.Graphs) == 0 {
			return fmt.Errorf("empty graph batch")
		}
	default:
		return fmt.Errorf("unknown wire kind %q", w.Kind)
	}
	return nil
}

// StreamBatches consumes one NDJSON batch stream, validating every
// line, and returns (batches, samples, bytes).
func StreamBatches(url string) (batches, samples, n int64, err error) {
	batches, samples, n, _, err = StreamBatchesFrom(url, "")
	return batches, samples, n, err
}

// StreamBatchesFrom streams like StreamBatches but resumes from the
// given cursor (empty starts at the beginning) and returns the cursor
// after the last batch received — the value a reconnecting client
// passes back to continue the stream.
func StreamBatchesFrom(url, cursor string) (batches, samples, n int64, last string, err error) {
	last = cursor
	if cursor != "" {
		url += "&cursor=" + cursor
	}
	resp, err := http.Get(url)
	if err != nil {
		return 0, 0, 0, last, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return 0, 0, 0, last, fmt.Errorf("stream: status %d: %s", resp.StatusCode, b)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		n += int64(len(line)) + 1
		var wire BatchWire
		if err := json.Unmarshal(line, &wire); err != nil {
			return batches, samples, n, last, fmt.Errorf("stream: bad line: %w", err)
		}
		if err := wire.check(); err != nil {
			return batches, samples, n, last, fmt.Errorf("stream: %w", err)
		}
		batches++
		samples += int64(wire.Count())
		last = wire.Cursor
	}
	return batches, samples, n, last, sc.Err()
}
