package climate

import (
	"math"
	"testing"
)

func TestGRIBStackRoundTrip(t *testing.T) {
	f, err := Synthesize(SynthConfig{Months: 6, Lat: 12, Lon: 24, MissingRate: 0.02, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := f.ToGRIB(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 6 {
		t.Fatalf("messages=%d", len(msgs))
	}
	g, err := FromGRIB(msgs, "tas", "K")
	if err != nil {
		t.Fatal(err)
	}
	if g.Data.Dim(0) != 6 || g.Data.Dim(1) != 12 || g.Data.Dim(2) != 24 {
		t.Fatalf("shape=%v", g.Data.Shape())
	}
	// Missing cells survive via bitmaps.
	if f.Data.CountNaN() != g.Data.CountNaN() {
		t.Fatalf("NaN %d vs %d", f.Data.CountNaN(), g.Data.CountNaN())
	}
	// Values within 16-bit quantization error (span ~80 K -> step ~1.2e-3).
	fd, gd := f.Data.Data(), g.Data.Data()
	for i := range fd {
		if math.IsNaN(fd[i]) {
			continue
		}
		if math.Abs(fd[i]-gd[i]) > 0.01 {
			t.Fatalf("cell %d: %v vs %v", i, fd[i], gd[i])
		}
	}
	if len(g.Lats) != 12 || len(g.Lons) != 24 {
		t.Fatalf("coords %d/%d", len(g.Lats), len(g.Lons))
	}
}

func TestGRIBIngestIntoPipeline(t *testing.T) {
	// The ERA5-style path: GRIB in, NetCDF-independent, same pipeline.
	f, _ := Synthesize(SynthConfig{Months: 12, Lat: 8, Lon: 16, Seed: 22})
	msgs, err := f.ToGRIB(16)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromGRIB(msgs, "tas", "K")
	if err != nil {
		t.Fatal(err)
	}
	// Convert to NetCDF and run the standard pipeline.
	raw, err := g.ToNetCDF()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromNetCDF(raw, "tas"); err != nil {
		t.Fatal(err)
	}
}

func TestFromGRIBErrors(t *testing.T) {
	if _, err := FromGRIB(nil, "x", ""); err == nil {
		t.Fatal("want empty error")
	}
	if _, err := FromGRIB([][]byte{[]byte("junk")}, "x", ""); err == nil {
		t.Fatal("want decode error")
	}
	// Mismatched grids across messages.
	f1, _ := Synthesize(SynthConfig{Months: 1, Lat: 4, Lon: 8, Seed: 1})
	f2, _ := Synthesize(SynthConfig{Months: 1, Lat: 8, Lon: 8, Seed: 1})
	m1, err := f1.ToGRIB(8)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := f2.ToGRIB(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromGRIB([][]byte{m1[0], m2[0]}, "x", ""); err == nil {
		t.Fatal("want grid mismatch error")
	}
}

func TestToGRIBErrors(t *testing.T) {
	bad := &Field{Data: nil}
	_ = bad
	f, _ := Synthesize(SynthConfig{Months: 1, Lat: 4, Lon: 8, Seed: 1})
	month, _ := f.Data.SubTensor(0)
	badField := &Field{Data: month} // rank 2
	if _, err := badField.ToGRIB(8); err == nil {
		t.Fatal("want rank error")
	}
	if _, err := f.ToGRIB(99); err == nil {
		t.Fatal("want bits error")
	}
}
