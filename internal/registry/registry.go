// Package registry implements the paper's envisioned "reusable scientific
// AI-readiness framework composed of domain-specific templates" (§6): a
// catalog mapping each surveyed domain to its archetype pipeline factory,
// so facilities can instantiate a standard pipeline per domain from one
// entry point.
package registry

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bio"
	"repro/internal/climate"
	"repro/internal/core"
	"repro/internal/fusion"
	"repro/internal/materials"
	"repro/internal/pipeline"
	"repro/internal/shard"
)

// Template builds an archetype pipeline over a shard sink. Options carries
// template-specific settings; nil selects defaults.
type Template struct {
	Domain      core.Domain
	Description string
	Build       func(sink shard.Sink, opts any) (*pipeline.Pipeline, error)
}

var (
	mu        sync.RWMutex
	templates = map[core.Domain]Template{}
)

// Register installs a template, replacing any previous one for the domain.
func Register(t Template) error {
	if t.Domain == "" || t.Build == nil {
		return fmt.Errorf("registry: template needs a domain and a builder")
	}
	mu.Lock()
	defer mu.Unlock()
	templates[t.Domain] = t
	return nil
}

// Lookup retrieves a domain's template.
func Lookup(d core.Domain) (Template, error) {
	mu.RLock()
	defer mu.RUnlock()
	t, ok := templates[d]
	if !ok {
		return Template{}, fmt.Errorf("registry: no template for domain %q", d)
	}
	return t, nil
}

// Templates lists all registered templates sorted by domain — the
// catalog a serving tier exposes to clients choosing a pipeline.
func Templates() []Template {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Template, 0, len(templates))
	for _, t := range templates {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// Domains lists registered domains, sorted.
func Domains() []core.Domain {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]core.Domain, 0, len(templates))
	for d := range templates {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// New instantiates the archetype pipeline for a domain with default
// options (or the provided typed options).
func New(d core.Domain, sink shard.Sink, opts any) (*pipeline.Pipeline, error) {
	t, err := Lookup(d)
	if err != nil {
		return nil, err
	}
	return t.Build(sink, opts)
}

// BioSecrets carries the bio template's mandatory secrets.
type BioSecrets struct {
	EncryptionKey   []byte
	PseudonymSecret []byte
}

func init() {
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(Register(Template{
		Domain:      core.Climate,
		Description: "CMIP6/ERA5-style gridded fields → regridded, normalized NPZ shards",
		Build: func(sink shard.Sink, opts any) (*pipeline.Pipeline, error) {
			cfg, ok := opts.(climate.Config)
			if !ok {
				cfg = climate.DefaultConfig()
			}
			return climate.NewPipeline(cfg, sink)
		},
	}))
	must(Register(Template{
		Domain:      core.Fusion,
		Description: "MDSplus-style shot trees → aligned, windowed TFRecord shards",
		Build: func(sink shard.Sink, opts any) (*pipeline.Pipeline, error) {
			cfg, ok := opts.(fusion.Config)
			if !ok {
				cfg = fusion.DefaultConfig()
			}
			return fusion.NewPipeline(cfg, sink)
		},
	}))
	must(Register(Template{
		Domain:      core.BioHealth,
		Description: "FASTA + clinical records → anonymized, fused, encrypted shards",
		Build: func(sink shard.Sink, opts any) (*pipeline.Pipeline, error) {
			switch o := opts.(type) {
			case bio.Config:
				return bio.NewPipeline(o, sink)
			case BioSecrets:
				return bio.NewPipeline(bio.DefaultConfig(o.EncryptionKey, o.PseudonymSecret), sink)
			default:
				return nil, fmt.Errorf("registry: bio template requires bio.Config or registry.BioSecrets options")
			}
		},
	}))
	must(Register(Template{
		Domain:      core.Materials,
		Description: "POSCAR structures → normalized periodic graphs in a BP container",
		Build: func(sink shard.Sink, opts any) (*pipeline.Pipeline, error) {
			cfg, ok := opts.(materials.Config)
			if !ok {
				cfg = materials.DefaultConfig()
			}
			return materials.NewPipeline(cfg, sink)
		},
	}))
}
