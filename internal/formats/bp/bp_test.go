package bp

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestRoundTripSinglePG(t *testing.T) {
	w := NewWriter()
	vars := []Variable{
		{Name: "energy", Shape: []int{3}, Data: []float64{-1.5, 0, 2.25}},
		{Name: "forces", Shape: []int{3, 3}, Data: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}},
	}
	if err := w.AppendPG(0, 0, vars); err != nil {
		t.Fatal(err)
	}
	b, err := w.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.PGs()) != 1 {
		t.Fatalf("pgs=%d", len(f.PGs()))
	}
	rank, step, got, err := f.ReadPG(0)
	if err != nil {
		t.Fatal(err)
	}
	if rank != 0 || step != 0 {
		t.Fatalf("rank=%d step=%d", rank, step)
	}
	if len(got) != 2 || got[0].Name != "energy" || got[1].Name != "forces" {
		t.Fatalf("vars=%+v", got)
	}
	if got[1].Shape[0] != 3 || got[1].Shape[1] != 3 {
		t.Fatalf("shape=%v", got[1].Shape)
	}
	for i, v := range got[0].Data {
		if v != vars[0].Data[i] {
			t.Fatalf("energy=%v", got[0].Data)
		}
	}
}

func TestMultiRankMultiStep(t *testing.T) {
	w := NewWriter()
	for step := 0; step < 3; step++ {
		for rank := 0; rank < 4; rank++ {
			v := Variable{Name: "x", Shape: []int{2},
				Data: []float64{float64(rank), float64(step)}}
			if err := w.AppendPG(rank, step, []Variable{v}); err != nil {
				t.Fatal(err)
			}
		}
	}
	b, _ := w.Finalize()
	f, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.PGs()) != 12 {
		t.Fatalf("pgs=%d", len(f.PGs()))
	}
	all, err := f.ReadVar("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 12 {
		t.Fatalf("gathered %d", len(all))
	}
	// PG order: step-major as written.
	if all[5].Data[0] != 1 || all[5].Data[1] != 1 {
		t.Fatalf("pg5=%v", all[5].Data)
	}
}

func TestParallelMarshalAggregation(t *testing.T) {
	// Ranks marshal concurrently; a coordinator appends — the ADIOS
	// aggregation pattern.
	const ranks = 8
	type result struct {
		rank    int
		payload []byte
		metas   []VarMeta
	}
	results := make([]result, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			v := Variable{Name: "graph", Shape: []int{4}, Data: []float64{float64(r), 1, 2, 3}}
			p, m, err := MarshalPG(r, 0, []Variable{v})
			if err != nil {
				t.Error(err)
				return
			}
			results[r] = result{rank: r, payload: p, metas: m}
		}(r)
	}
	wg.Wait()

	w := NewWriter()
	for _, res := range results {
		if err := w.AppendRawPG(res.rank, 0, res.payload, res.metas); err != nil {
			t.Fatal(err)
		}
	}
	b, _ := w.Finalize()
	f, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ranks; i++ {
		rank, _, vars, err := f.ReadPG(i)
		if err != nil {
			t.Fatal(err)
		}
		if vars[0].Data[0] != float64(rank) {
			t.Fatalf("pg %d: rank=%d data=%v", i, rank, vars[0].Data)
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	w := NewWriter()
	if err := w.AppendPG(0, 0, []Variable{{Name: "v", Shape: []int{2}, Data: []float64{1, 2}}}); err != nil {
		t.Fatal(err)
	}
	b, _ := w.Finalize()
	bad := append([]byte(nil), b...)
	// Flip a data byte: PG starts after the 8-byte magic; header 12 +
	// name(2+1) + ndims(1) + dims(8) + nbytes(8) puts data ~40 in.
	bad[len(magic)+35] ^= 0xFF
	f, err := Open(bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := f.ReadPG(0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err=%v, want ErrCorrupt", err)
	}
}

func TestFooterCorruptionDetected(t *testing.T) {
	w := NewWriter()
	if err := w.AppendPG(0, 0, nil); err != nil {
		t.Fatal(err)
	}
	b, _ := w.Finalize()
	bad := append([]byte(nil), b...)
	bad[len(bad)-20] ^= 0xFF
	if _, err := Open(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err=%v, want ErrCorrupt", err)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open([]byte("x")); err == nil {
		t.Fatal("want magic error")
	}
	w := NewWriter()
	b, _ := w.Finalize()
	bad := append([]byte(nil), b...)
	copy(bad[len(bad)-4:], "NOPE")
	if _, err := Open(bad); err == nil {
		t.Fatal("want trailer error")
	}
}

func TestWriterErrors(t *testing.T) {
	w := NewWriter()
	if err := w.AppendPG(-1, 0, nil); err == nil {
		t.Fatal("want negative-rank error")
	}
	if err := w.AppendPG(0, 0, []Variable{{Name: "", Shape: nil, Data: nil}}); err == nil {
		t.Fatal("want empty-name error")
	}
	if err := w.AppendPG(0, 0, []Variable{{Name: "v", Shape: []int{3}, Data: []float64{1}}}); err == nil {
		t.Fatal("want shape error")
	}
	if err := w.AppendPG(0, 0, []Variable{{Name: "v", Shape: []int{-1}, Data: nil}}); err == nil {
		t.Fatal("want negative-dim error")
	}
	if _, err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendPG(0, 0, nil); err == nil {
		t.Fatal("want finalized error")
	}
	if _, err := w.Finalize(); err == nil {
		t.Fatal("want double-finalize error")
	}
}

func TestReadPGOutOfRange(t *testing.T) {
	w := NewWriter()
	b, _ := w.Finalize()
	f, _ := Open(b)
	if _, _, _, err := f.ReadPG(0); err == nil {
		t.Fatal("want range error")
	}
}

func TestReadVarMissing(t *testing.T) {
	w := NewWriter()
	if err := w.AppendPG(0, 0, []Variable{{Name: "a", Shape: []int{1}, Data: []float64{1}}}); err != nil {
		t.Fatal(err)
	}
	b, _ := w.Finalize()
	f, _ := Open(b)
	if _, err := f.ReadVar("missing"); err == nil {
		t.Fatal("want not-found error")
	}
}

func TestEmptyVariable(t *testing.T) {
	w := NewWriter()
	if err := w.AppendPG(2, 7, []Variable{{Name: "empty", Shape: []int{0}, Data: nil}}); err != nil {
		t.Fatal(err)
	}
	b, _ := w.Finalize()
	f, _ := Open(b)
	rank, step, vars, err := f.ReadPG(0)
	if err != nil {
		t.Fatal(err)
	}
	if rank != 2 || step != 7 || len(vars[0].Data) != 0 {
		t.Fatalf("rank=%d step=%d vars=%+v", rank, step, vars)
	}
}

// Property: arbitrary PGs round-trip exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := NewWriter()
		npgs := rng.Intn(5) + 1
		want := make([][]Variable, npgs)
		for p := 0; p < npgs; p++ {
			nvars := rng.Intn(4)
			vars := make([]Variable, 0, nvars)
			for v := 0; v < nvars; v++ {
				n := rng.Intn(20)
				data := make([]float64, n)
				for i := range data {
					data[i] = rng.NormFloat64()
				}
				vars = append(vars, Variable{
					Name: string(rune('a' + v)), Shape: []int{n}, Data: data})
			}
			want[p] = vars
			if err := w.AppendPG(p%4, p/4, vars); err != nil {
				return false
			}
		}
		b, err := w.Finalize()
		if err != nil {
			return false
		}
		file, err := Open(b)
		if err != nil {
			return false
		}
		for p := 0; p < npgs; p++ {
			_, _, got, err := file.ReadPG(p)
			if err != nil || len(got) != len(want[p]) {
				return false
			}
			for v := range got {
				if got[v].Name != want[p][v].Name || len(got[v].Data) != len(want[p][v].Data) {
					return false
				}
				for i := range got[v].Data {
					a, b := got[v].Data[i], want[p][v].Data[i]
					if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppendPG(b *testing.B) {
	data := make([]float64, 4096)
	for i := range data {
		data[i] = float64(i)
	}
	b.SetBytes(int64(len(data) * 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := NewWriter()
		if err := w.AppendPG(0, 0, []Variable{{Name: "v", Shape: []int{4096}, Data: data}}); err != nil {
			b.Fatal(err)
		}
		if _, err := w.Finalize(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestUnmarshalPGRoundTrip: a standalone PG payload decodes back to its
// variables without the container, and corruption/truncation is caught.
func TestUnmarshalPGRoundTrip(t *testing.T) {
	vars := []Variable{
		{Name: "node_features", Shape: []int{2, 3}, Data: []float64{1, 2, 3, 4, 5, 6}},
		{Name: "energy", Shape: []int{1}, Data: []float64{-7.5}},
	}
	payload, _, err := MarshalPG(3, 9, vars)
	if err != nil {
		t.Fatal(err)
	}
	rank, step, got, err := UnmarshalPG(payload)
	if err != nil {
		t.Fatal(err)
	}
	if rank != 3 || step != 9 {
		t.Fatalf("rank=%d step=%d", rank, step)
	}
	if len(got) != len(vars) {
		t.Fatalf("vars=%d", len(got))
	}
	for i := range vars {
		if got[i].Name != vars[i].Name {
			t.Fatalf("var %d name %q", i, got[i].Name)
		}
		for j := range vars[i].Data {
			if got[i].Data[j] != vars[i].Data[j] {
				t.Fatalf("var %d data differs", i)
			}
		}
	}

	// Trailing garbage, truncation, and a flipped data byte must all fail.
	if _, _, _, err := UnmarshalPG(append(append([]byte(nil), payload...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, _, _, err := UnmarshalPG(payload[:len(payload)-3]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	// Flip a byte inside the first variable's float payload (header 12 +
	// name len 2 + "node_features" 13 + ndims 1 + dims 16 + nbytes 8 = 52).
	bad := append([]byte(nil), payload...)
	bad[56] ^= 0xff
	if _, _, _, err := UnmarshalPG(bad); err == nil {
		t.Fatal("corrupted payload accepted")
	}
}
