package cluster

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestRelayAbortsOnUpstreamDeath: when the upstream (owner) connection
// dies after the response header was relayed, the proxy must cut the
// downstream connection uncleanly rather than end it like a completed
// stream — batches end at line/frame boundaries, so a clean end would
// make the client silently accept a truncated dataset instead of
// resuming by cursor.
func TestRelayAbortsOnUpstreamDeath(t *testing.T) {
	// Upstream writes two lines, flushes, then aborts its connection —
	// the HTTP shape of an owner SIGKILLed mid-stream.
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_, _ = w.Write([]byte("{\"batch\":0}\n{\"batch\":1}\n"))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}))
	defer owner.Close()

	c, err := New(Config{
		Self: "a",
		Nodes: []Node{
			{ID: "a", URL: "http://self.invalid"},
			{ID: "b", URL: owner.URL},
		},
		ProbeInterval: time.Hour, // no probing; this test drives Forward directly
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := c.Forward(w, r, Node{ID: "b", URL: owner.URL}); err != nil {
			t.Errorf("forward: %v", err)
		}
	}))
	defer proxy.Close()

	resp, err := http.Get(proxy.URL + "/v1/jobs/job-b-000001/batches")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("proxied stream of a dead upstream ended cleanly with %d bytes — indistinguishable from completion", len(body))
	}
}
