// Client: typed access to a draid server (or fleet — any member can be
// the base URL; routing is the server's job).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Client talks to one draid base URL. Create with New; the zero value
// is not usable.
type Client struct {
	base  string
	httpc *http.Client
	wire  string
	poll  time.Duration
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (timeouts, proxies, test
// doubles). The default is http.DefaultClient.
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpc = h } }

// WithWire pins the default wire format for StreamBatches: WireAuto
// (default), WireNDJSON, or WireFrame.
func WithWire(wire string) Option { return func(c *Client) { c.wire = wire } }

// WithPollInterval sets WaitDone's polling cadence (default 10ms —
// tuned for local servers; raise it for remote ones).
func WithPollInterval(d time.Duration) Option { return func(c *Client) { c.poll = d } }

// New returns a client for the draid server at baseURL.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:  strings.TrimRight(baseURL, "/"),
		httpc: http.DefaultClient,
		wire:  WireAuto,
		poll:  10 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL reports the server this client targets.
func (c *Client) BaseURL() string { return c.base }

// apiError decodes the server's {"error": ...} body.
func apiError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return fmt.Errorf("draid: %s (status %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("draid: status %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Templates lists the server's domain templates with their wire
// discovery fields.
func (c *Client) Templates(ctx context.Context) ([]TemplateInfo, error) {
	var out []TemplateInfo
	if err := c.getJSON(ctx, "/v1/templates", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// SubmitJob submits a pipeline job and returns its accepted status
// (state "queued"). The job runs asynchronously; follow it with Job or
// WaitDone.
func (c *Client) SubmitJob(ctx context.Context, spec JobSpec) (*JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, apiError(resp)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.getJSON(ctx, "/v1/jobs/"+url.PathEscape(id), &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists jobs. In a fleet the view is cluster-merged unless the
// server is asked otherwise.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	if err := c.getJSON(ctx, "/v1/jobs", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// WaitDone polls a job until it completes, returning its final status.
// A failed job is an error carrying the job's message; bound the wait
// with the context's deadline.
func (c *Client) WaitDone(ctx context.Context, id string) (*JobStatus, error) {
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case JobDone:
			return st, nil
		case JobFailed:
			return st, fmt.Errorf("job %s failed: %s", st.ID, st.Error)
		}
		select {
		case <-ctx.Done():
			return st, fmt.Errorf("job %s still %s: %w", id, st.State, ctx.Err())
		case <-time.After(c.poll):
		}
	}
}

// Provenance fetches a job's lineage DAG as raw JSON.
func (c *Client) Provenance(ctx context.Context, id string) (json.RawMessage, error) {
	var out json.RawMessage
	if err := c.getJSON(ctx, "/v1/jobs/"+url.PathEscape(id)+"/provenance", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// ClusterInfo reports fleet membership. jobID non-empty additionally
// resolves that job's ring owner.
func (c *Client) ClusterInfo(ctx context.Context, jobID string) (*ClusterInfo, error) {
	path := "/v1/cluster"
	if jobID != "" {
		path += "?job=" + url.QueryEscape(jobID)
	}
	var out ClusterInfo
	if err := c.getJSON(ctx, path, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
