// Package tfrecord implements the TFRecord container format used by the
// fusion archetype (paper §3.2: the DIII-D ML pipeline "aggregates across
// shots before sharding into TFRecords").
//
// The framing is byte-compatible with TensorFlow's:
//
//	uint64 length (little-endian)
//	uint32 masked CRC32-C of the length bytes
//	byte   data[length]
//	uint32 masked CRC32-C of the data
//
// where masked(crc) = ((crc >> 15) | (crc << 17)) + 0xa282ead8.
//
// On top of the framing, the package provides a minimal protobuf wire-format
// encoder/decoder for the tf.train.Example subset the pipelines need
// (float_list, int64_list, bytes_list features), so emitted records are
// readable by TensorFlow's tf.io.parse_example.
package tfrecord

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

const maskDelta = 0xa282ead8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maskedCRC computes the masked CRC32-C that TFRecord uses.
func maskedCRC(b []byte) uint32 {
	c := crc32.Checksum(b, castagnoli)
	return ((c >> 15) | (c << 17)) + maskDelta
}

// ErrCorrupt reports a CRC mismatch while reading.
var ErrCorrupt = errors.New("tfrecord: CRC mismatch")

// Writer frames records onto an io.Writer.
type Writer struct {
	w io.Writer
	n int64
}

// NewWriter returns a Writer emitting TFRecord framing to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write frames one record.
func (tw *Writer) Write(rec []byte) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(len(rec)))
	binary.LittleEndian.PutUint32(hdr[8:], maskedCRC(hdr[:8]))
	if _, err := tw.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("tfrecord: write header: %w", err)
	}
	if _, err := tw.w.Write(rec); err != nil {
		return fmt.Errorf("tfrecord: write payload: %w", err)
	}
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], maskedCRC(rec))
	if _, err := tw.w.Write(foot[:]); err != nil {
		return fmt.Errorf("tfrecord: write footer: %w", err)
	}
	tw.n++
	return nil
}

// Count returns the number of records written.
func (tw *Writer) Count() int64 { return tw.n }

// Reader unframes records from an io.Reader.
type Reader struct {
	r io.Reader
}

// NewReader returns a Reader consuming TFRecord framing from r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next returns the next record, io.EOF at clean end-of-stream, or an error
// (ErrCorrupt on checksum failure).
func (tr *Reader) Next() ([]byte, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(tr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("tfrecord: read header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[8:]) != maskedCRC(hdr[:8]) {
		return nil, fmt.Errorf("%w: length CRC", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint64(hdr[:8])
	if n > 1<<31 {
		return nil, fmt.Errorf("tfrecord: implausible record length %d", n)
	}
	rec := make([]byte, n)
	if _, err := io.ReadFull(tr.r, rec); err != nil {
		return nil, fmt.Errorf("tfrecord: read payload: %w", err)
	}
	var foot [4]byte
	if _, err := io.ReadFull(tr.r, foot[:]); err != nil {
		return nil, fmt.Errorf("tfrecord: read footer: %w", err)
	}
	if binary.LittleEndian.Uint32(foot[:]) != maskedCRC(rec) {
		return nil, fmt.Errorf("%w: data CRC", ErrCorrupt)
	}
	return rec, nil
}

// ReadAll drains the stream into a slice of records.
func (tr *Reader) ReadAll() ([][]byte, error) {
	var out [][]byte
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// --- tf.train.Example subset -----------------------------------------------
//
// Wire layout (all field numbers match the real .proto definitions):
//
//	Example    { Features features = 1 }
//	Features   { map<string, Feature> feature = 1 }
//	Feature    { oneof { BytesList bytes_list = 1;
//	                     FloatList float_list = 2;
//	                     Int64List int64_list = 3 } }
//	BytesList  { repeated bytes value = 1 }
//	FloatList  { repeated float value = 1 [packed] }
//	Int64List  { repeated int64 value = 1 [packed] }

// Feature is one typed feature of an Example; exactly one of the fields
// should be set.
type Feature struct {
	Floats []float32
	Ints   []int64
	Bytes  [][]byte
}

// Example is a named-feature record, the logical unit the fusion pipeline
// writes per time window.
type Example struct {
	Features map[string]Feature
}

// NewExample returns an empty Example ready for feature assignment.
func NewExample() *Example { return &Example{Features: make(map[string]Feature)} }

func appendVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func appendTag(b []byte, field, wire int) []byte {
	return appendVarint(b, uint64(field)<<3|uint64(wire))
}

func appendBytesField(b []byte, field int, p []byte) []byte {
	b = appendTag(b, field, 2)
	b = appendVarint(b, uint64(len(p)))
	return append(b, p...)
}

// Marshal encodes the Example in protobuf wire format. Features are
// emitted in sorted key order so output is deterministic.
func (e *Example) Marshal() []byte {
	keys := make([]string, 0, len(e.Features))
	for k := range e.Features {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var features []byte
	for _, k := range keys {
		f := e.Features[k]

		// Encode the Feature message (oneof).
		var feat []byte
		switch {
		case f.Bytes != nil:
			var bl []byte
			for _, v := range f.Bytes {
				bl = appendBytesField(bl, 1, v)
			}
			feat = appendBytesField(feat, 1, bl)
		case f.Floats != nil:
			packed := make([]byte, 4*len(f.Floats))
			for i, v := range f.Floats {
				binary.LittleEndian.PutUint32(packed[i*4:], math.Float32bits(v))
			}
			var fl []byte
			fl = appendBytesField(fl, 1, packed)
			feat = appendBytesField(feat, 2, fl)
		case f.Ints != nil:
			var packed []byte
			for _, v := range f.Ints {
				packed = appendVarint(packed, uint64(v))
			}
			var il []byte
			il = appendBytesField(il, 1, packed)
			feat = appendBytesField(feat, 3, il)
		}

		// map entry { key = 1; value = 2 }
		var entry []byte
		entry = appendBytesField(entry, 1, []byte(k))
		entry = appendBytesField(entry, 2, feat)
		features = appendBytesField(features, 1, entry)
	}

	var out []byte
	out = appendBytesField(out, 1, features)
	return out
}

type decoder struct {
	b   []byte
	pos int
}

func (d *decoder) varint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if d.pos >= len(d.b) {
			return 0, io.ErrUnexpectedEOF
		}
		c := d.b[d.pos]
		d.pos++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
		shift += 7
		if shift >= 64 {
			return 0, errors.New("tfrecord: varint overflow")
		}
	}
}

func (d *decoder) bytesField() ([]byte, error) {
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if uint64(d.pos)+n > uint64(len(d.b)) {
		return nil, io.ErrUnexpectedEOF
	}
	p := d.b[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return p, nil
}

func (d *decoder) skip(wire uint64) error {
	switch wire {
	case 0:
		_, err := d.varint()
		return err
	case 1:
		d.pos += 8
	case 2:
		_, err := d.bytesField()
		return err
	case 5:
		d.pos += 4
	default:
		return fmt.Errorf("tfrecord: unsupported wire type %d", wire)
	}
	if d.pos > len(d.b) {
		return io.ErrUnexpectedEOF
	}
	return nil
}

// Unmarshal decodes a protobuf-encoded tf.train.Example subset.
func Unmarshal(b []byte) (*Example, error) {
	e := NewExample()
	d := &decoder{b: b}
	for d.pos < len(d.b) {
		tag, err := d.varint()
		if err != nil {
			return nil, err
		}
		field, wire := tag>>3, tag&7
		if field == 1 && wire == 2 { // Features
			fb, err := d.bytesField()
			if err != nil {
				return nil, err
			}
			if err := decodeFeatures(fb, e); err != nil {
				return nil, err
			}
		} else if err := d.skip(wire); err != nil {
			return nil, err
		}
	}
	return e, nil
}

func decodeFeatures(b []byte, e *Example) error {
	d := &decoder{b: b}
	for d.pos < len(d.b) {
		tag, err := d.varint()
		if err != nil {
			return err
		}
		if tag>>3 == 1 && tag&7 == 2 { // map entry
			entry, err := d.bytesField()
			if err != nil {
				return err
			}
			if err := decodeEntry(entry, e); err != nil {
				return err
			}
		} else if err := d.skip(tag & 7); err != nil {
			return err
		}
	}
	return nil
}

func decodeEntry(b []byte, e *Example) error {
	d := &decoder{b: b}
	var key string
	var feat Feature
	for d.pos < len(d.b) {
		tag, err := d.varint()
		if err != nil {
			return err
		}
		switch {
		case tag>>3 == 1 && tag&7 == 2:
			kb, err := d.bytesField()
			if err != nil {
				return err
			}
			key = string(kb)
		case tag>>3 == 2 && tag&7 == 2:
			fb, err := d.bytesField()
			if err != nil {
				return err
			}
			feat, err = decodeFeature(fb)
			if err != nil {
				return err
			}
		default:
			if err := d.skip(tag & 7); err != nil {
				return err
			}
		}
	}
	if key == "" {
		return errors.New("tfrecord: feature map entry without key")
	}
	e.Features[key] = feat
	return nil
}

func decodeFeature(b []byte) (Feature, error) {
	var f Feature
	d := &decoder{b: b}
	for d.pos < len(d.b) {
		tag, err := d.varint()
		if err != nil {
			return f, err
		}
		field, wire := tag>>3, tag&7
		if wire != 2 {
			if err := d.skip(wire); err != nil {
				return f, err
			}
			continue
		}
		inner, err := d.bytesField()
		if err != nil {
			return f, err
		}
		id := &decoder{b: inner}
		for id.pos < len(id.b) {
			itag, err := id.varint()
			if err != nil {
				return f, err
			}
			if itag>>3 != 1 {
				if err := id.skip(itag & 7); err != nil {
					return f, err
				}
				continue
			}
			switch field {
			case 1: // BytesList
				v, err := id.bytesField()
				if err != nil {
					return f, err
				}
				f.Bytes = append(f.Bytes, append([]byte(nil), v...))
			case 2: // FloatList, packed
				packed, err := id.bytesField()
				if err != nil {
					return f, err
				}
				if len(packed)%4 != 0 {
					return f, errors.New("tfrecord: packed float list not multiple of 4")
				}
				if f.Floats == nil {
					f.Floats = []float32{}
				}
				for i := 0; i+4 <= len(packed); i += 4 {
					f.Floats = append(f.Floats, math.Float32frombits(binary.LittleEndian.Uint32(packed[i:])))
				}
			case 3: // Int64List, packed
				packed, err := id.bytesField()
				if err != nil {
					return f, err
				}
				if f.Ints == nil {
					f.Ints = []int64{}
				}
				pd := &decoder{b: packed}
				for pd.pos < len(pd.b) {
					v, err := pd.varint()
					if err != nil {
						return f, err
					}
					f.Ints = append(f.Ints, int64(v))
				}
			default:
				// Unknown oneof arm: consume and ignore its payload.
				if err := id.skip(itag & 7); err != nil {
					return f, err
				}
			}
		}
	}
	return f, nil
}
