// Audit-ledger benchmark harness: hammers Append with concurrent
// writers under the two durability designs — direct (every append pays
// its own fsync) and Merkle-batched group commit (appenders share one
// fsync per coalescing window) — and reports the throughput ratio.
// Shared by the Go benchmark and cmd/benchreport's BENCH_ledger.json
// artifact, so the cost of the audit trail is tracked the same way as
// serving throughput.
package ledger

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// BenchConfig parameterizes RunLedgerBenchmark.
type BenchConfig struct {
	// Records is the total audit records appended per mode (required).
	Records int
	// Appenders is the number of concurrent appender goroutines —
	// model the submit handlers of a busy server. Group commit can only
	// coalesce what arrives concurrently, so this is the lever that
	// separates the two designs. <=0 means 64.
	Appenders int
	// BatchSize is the Merkle batch size of the batched mode (<=0 uses
	// the ledger default, 64).
	BatchSize int
	// FlushWait is the batched mode's group-commit window (0 uses the
	// ledger default, 2ms).
	FlushWait time.Duration
	// Dir roots the ledger files; empty uses a temp dir that is
	// removed afterwards.
	Dir string
}

// BenchMode is one mode's measurement; JSON field names are the
// BENCH_ledger.json schema.
type BenchMode struct {
	Mode           string  `json:"mode"` // "direct" or "batched"
	Seconds        float64 `json:"seconds"`
	RecordsPerSec  float64 `json:"records_per_sec"`
	Syncs          int64   `json:"syncs"`
	RecordsPerSync float64 `json:"records_per_sync"`
	Bytes          int64   `json:"bytes"`
}

// BenchReport compares the two durability designs over an identical
// concurrent workload. BatchedOverDirect is the gated dimension: the
// batched design's append throughput as a multiple of direct's, >1
// meaning group commit pays off (it must, materially — that ratio is
// the reason the audit trail can sit on the submit path at all).
type BenchReport struct {
	Records           int        `json:"records"`
	Appenders         int        `json:"appenders"`
	BatchSize         int        `json:"batch_size"`
	FlushWaitMs       float64    `json:"flush_wait_ms"`
	Direct            *BenchMode `json:"direct"`
	Batched           *BenchMode `json:"batched"`
	BatchedOverDirect float64    `json:"batched_over_direct"`
	// ProofsVerified counts the post-run integrity check: every Nth
	// record of the batched ledger proven against its published root.
	ProofsVerified int `json:"proofs_verified"`
}

// Render formats the report for benchreport's console output.
func (r *BenchReport) Render() string {
	line := func(m *BenchMode) string {
		return fmt.Sprintf("  %-7s %8.0f records/s (%d records in %.3fs, %d fsyncs, %.1f records/fsync)\n",
			m.Mode, m.RecordsPerSec, r.Records, m.Seconds, m.Syncs, m.RecordsPerSync)
	}
	return fmt.Sprintf(
		"Audit ledger throughput — %d appenders, %d records/mode, Merkle batch %d, flush wait %.1fms:\n",
		r.Appenders, r.Records, r.BatchSize, r.FlushWaitMs) +
		line(r.Direct) + line(r.Batched) +
		fmt.Sprintf("  batched/direct ratio %.2fx; %d inclusion proofs verified against published roots\n",
			r.BatchedOverDirect, r.ProofsVerified)
}

// RunLedgerBenchmark appends cfg.Records audit records from
// cfg.Appenders concurrent goroutines twice — once against a direct
// ledger, once against a Merkle-batched group-commit ledger — then
// verifies a sample of inclusion proofs on the batched ledger against
// its published roots.
func RunLedgerBenchmark(cfg BenchConfig) (*BenchReport, error) {
	if cfg.Records <= 0 {
		return nil, fmt.Errorf("ledger: bench records=%d must be positive", cfg.Records)
	}
	if cfg.Appenders <= 0 {
		cfg.Appenders = 64
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.FlushWait == 0 {
		cfg.FlushWait = 2 * time.Millisecond
	}
	dir := cfg.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "draid-ledger-bench-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(d)
		dir = d
	}

	direct, _, err := benchMode(cfg, Config{
		Path: filepath.Join(dir, "audit-direct.log"), Node: "bench",
		BatchSize: cfg.BatchSize, Direct: true,
	}, "direct")
	if err != nil {
		return nil, err
	}
	batched, bled, err := benchMode(cfg, Config{
		Path: filepath.Join(dir, "audit-batched.log"), Node: "bench",
		BatchSize: cfg.BatchSize, FlushWait: cfg.FlushWait,
	}, "batched")
	if err != nil {
		return nil, err
	}

	// Integrity spot check: the speedup would be worthless if batching
	// weakened what the ledger certifies. Prove every batch-size-th
	// record and check each proof both self-verifies and matches the
	// root the ledger publishes for its batch.
	roots := bled.Roots()
	proofs := 0
	for seq := uint64(1); seq <= bled.Len(); seq += uint64(cfg.BatchSize) {
		p, err := bled.Prove(seq)
		if err != nil {
			return nil, fmt.Errorf("ledger: bench prove seq %d: %w", seq, err)
		}
		if err := p.Verify(); err != nil {
			return nil, fmt.Errorf("ledger: bench proof seq %d: %w", seq, err)
		}
		if p.Batch >= len(roots) || roots[p.Batch].Root != p.Root {
			return nil, fmt.Errorf("ledger: bench proof seq %d: root not among published roots", seq)
		}
		proofs++
	}
	if err := bled.Close(); err != nil {
		return nil, err
	}

	ratio := 0.0
	if direct.RecordsPerSec > 0 {
		ratio = batched.RecordsPerSec / direct.RecordsPerSec
	}
	return &BenchReport{
		Records: cfg.Records, Appenders: cfg.Appenders,
		BatchSize: cfg.BatchSize, FlushWaitMs: float64(cfg.FlushWait) / float64(time.Millisecond),
		Direct: direct, Batched: batched,
		BatchedOverDirect: ratio, ProofsVerified: proofs,
	}, nil
}

// benchMode runs one mode's workload: cfg.Appenders goroutines share
// cfg.Records appends as evenly as division allows. The direct mode's
// ledger is closed here; the batched mode's is returned open so the
// caller can run the proof check against it.
func benchMode(cfg BenchConfig, lc Config, mode string) (*BenchMode, *Ledger, error) {
	l, err := Open(lc)
	if err != nil {
		return nil, nil, err
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	start := time.Now()
	for a := 0; a < cfg.Appenders; a++ {
		n := cfg.Records / cfg.Appenders
		if a < cfg.Records%cfg.Appenders {
			n++
		}
		wg.Add(1)
		go func(a, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if _, err := l.Append(TypeSubmit, "bench", fmt.Sprintf("job-%d-%d", a, i), "bench workload"); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}(a, n)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if firstErr != nil {
		l.Close()
		return nil, nil, fmt.Errorf("ledger: bench %s append: %w", mode, firstErr)
	}
	st := l.Stats()
	m := &BenchMode{
		Mode: mode, Seconds: elapsed,
		RecordsPerSec: float64(st.Records) / elapsed,
		Syncs:         st.Syncs, Bytes: st.Bytes,
	}
	if st.Syncs > 0 {
		m.RecordsPerSync = float64(st.Records) / float64(st.Syncs)
	}
	if mode == "direct" {
		err := l.Close()
		return m, nil, err
	}
	return m, l, nil
}
