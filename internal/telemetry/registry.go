// Package telemetry is the draid observability substrate: a
// dependency-free metrics registry (labeled counters, gauges, and
// fixed-bucket histograms with Prometheus text exposition), trace-ID
// propagation helpers, and a strict exposition-format parser the tests
// use to keep the metric surface honest.
//
// The registry is built for scrape-under-load: family lookup takes a
// read lock, label-child lookup takes a per-family read lock (the lock
// striping — one contended family never blocks another), and every
// value update is a single atomic operation. A scrape walks the same
// structures with read locks only, so exposition never serializes
// against the serving hot path and never needs any caller-side mutex.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric family types, mirrored in the exposition TYPE line.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// labelSep joins label values into a child key. 0xff cannot appear in
// valid UTF-8 label text, so joined keys never collide.
const labelSep = "\xff"

// Registry holds metric families and renders them in Prometheus text
// exposition format. Create with NewRegistry; safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string // registration order kept only for duplicate checks; exposition sorts
}

// family is one named metric with a fixed label schema.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64 // histograms only

	mu       sync.RWMutex
	children map[string]metric

	fn func() float64 // GaugeFunc families evaluate at scrape time
}

// metric is one labeled child of a family.
type metric interface {
	write(w io.Writer, fam *family, labelValues []string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName reports whether s is a legal Prometheus metric name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether s is a legal label name (no colons).
func validLabelName(s string) bool {
	if s == "" || s == "le" { // "le" is reserved for histogram buckets
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// register installs (or fetches, when the schema matches) a family.
// Schema mismatches panic: two call sites disagreeing about a metric's
// shape is a programming error no runtime fallback can paper over.
func (r *Registry) register(name, help, typ string, labels []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("telemetry: metric %s: invalid label name %q", name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || strings.Join(f.labels, ",") != strings.Join(labels, ",") {
			panic(fmt.Sprintf("telemetry: metric %s re-registered as %s{%s}, was %s{%s}",
				name, typ, strings.Join(labels, ","), f.typ, strings.Join(f.labels, ",")))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		children: make(map[string]metric),
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// child returns the family's metric for the given label values,
// creating it with mk on first use. The fast path is one read-locked
// map hit.
func (f *family) child(values []string, mk func() metric) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	m, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	m = mk()
	f.children[key] = m
	return m
}

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing float value.
type Counter struct{ bits atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v, which must not be negative.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("telemetry: counter decremented")
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) write(w io.Writer, fam *family, values []string) {
	fmt.Fprintf(w, "%s%s %s\n", fam.name, renderLabels(fam.labels, values), formatValue(c.Value()))
}

// CounterVec is a counter family; With selects one labeled child.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values (in the order the
// labels were declared), creating it on first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.fam.child(labelValues, func() metric { return &Counter{} }).(*Counter)
}

// Counter registers (or fetches) a labeled counter family. With no
// labels the returned vec's With() yields the single child.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, typeCounter, labels, nil)}
}

// Counter1 registers an unlabeled counter and returns its only child —
// the common case for global totals.
func (r *Registry) Counter1(name, help string) *Counter {
	return r.Counter(name, help).With()
}

// ---------------------------------------------------------------------------
// Gauge

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by v (negative allowed).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, fam *family, values []string) {
	fmt.Fprintf(w, "%s%s %s\n", fam.name, renderLabels(fam.labels, values), formatValue(g.Value()))
}

// GaugeVec is a gauge family; With selects one labeled child.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.fam.child(labelValues, func() metric { return &Gauge{} }).(*Gauge)
}

// Gauge registers (or fetches) a labeled gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, typeGauge, labels, nil)}
}

// Gauge1 registers an unlabeled gauge and returns its only child.
func (r *Registry) Gauge1(name, help string) *Gauge {
	return r.Gauge(name, help).With()
}

// GaugeFunc registers a gauge whose value is computed by fn at every
// scrape — for values another subsystem already tracks under its own
// lock (cache sizes, fleet membership, runtime stats).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, typeGauge, nil, nil)
	f.fn = fn
}

// CounterFunc registers a counter collected by fn at scrape time — for
// monotone totals another subsystem already counts under its own lock.
// fn must never decrease.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, typeCounter, nil, nil)
	f.fn = fn
}

// ---------------------------------------------------------------------------
// Histogram

// DefBuckets covers request/stream latencies from 100µs to 10s.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// FastBuckets covers per-batch encode and shard-load costs from 1µs to
// 250ms — the sub-request work the serving hot path is made of.
var FastBuckets = []float64{
	0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.25,
}

// Exemplar links one observed value to the trace that produced it —
// rendered OpenMetrics-style after the bucket's sample so a p99 bucket
// carries the trace ID of a real offending request.
type Exemplar struct {
	TraceID string
	Value   float64
}

// Histogram is a fixed-bucket distribution. Observations update one
// bucket counter, the count, and the sum — all atomically. Each bucket
// (including +Inf) keeps the latest exemplar via an atomic pointer.
type Histogram struct {
	buckets   []float64 // upper bounds, ascending; +Inf implicit
	counts    []atomic.Uint64
	exemplars []atomic.Pointer[Exemplar] // one per bucket + one for +Inf
	count     atomic.Uint64
	sumBits   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bucket whose bound holds v.
	i := sort.SearchFloat64s(h.buckets, v)
	if i < len(h.buckets) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveWithExemplar records one value and stamps its bucket's
// exemplar with the trace that produced it (last writer wins — the
// freshest offender is the useful one). An empty trace ID degrades to
// a plain Observe.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" || !ValidTraceID(traceID) {
		return
	}
	i := sort.SearchFloat64s(h.buckets, v) // i == len(buckets) means +Inf
	h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0..1) from the bucket counts by
// linear interpolation inside the holding bucket — the same estimate
// Prometheus's histogram_quantile computes. Observations beyond the
// last finite bucket clamp to its bound. Returns 0 with no data.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i, bound := range h.buckets {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.buckets[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (bound-lower)*frac
		}
		cum += c
	}
	// Rank falls in the +Inf bucket: the bound of the last finite
	// bucket is the best (under)estimate available.
	if len(h.buckets) > 0 {
		return h.buckets[len(h.buckets)-1]
	}
	return 0
}

func (h *Histogram) write(w io.Writer, fam *family, values []string) {
	var cum uint64
	for i, bound := range h.buckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d%s\n",
			fam.name, renderLabelsExtra(fam.labels, values, "le", formatValue(bound)), cum,
			renderExemplar(h.exemplars[i].Load()))
	}
	fmt.Fprintf(w, "%s_bucket%s %d%s\n",
		fam.name, renderLabelsExtra(fam.labels, values, "le", "+Inf"), h.count.Load(),
		renderExemplar(h.exemplars[len(h.buckets)].Load()))
	fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, renderLabels(fam.labels, values), formatValue(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", fam.name, renderLabels(fam.labels, values), h.count.Load())
}

// renderExemplar renders an OpenMetrics exemplar suffix
// (` # {trace_id="..."} value`), or "" for nil.
func renderExemplar(e *Exemplar) string {
	if e == nil {
		return ""
	}
	return ` # {trace_id="` + EscapeLabelValue(e.TraceID) + `"} ` + formatValue(e.Value)
}

// HistogramVec is a histogram family; With selects one labeled child.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.fam.child(labelValues, func() metric {
		return &Histogram{
			buckets:   v.fam.buckets,
			counts:    make([]atomic.Uint64, len(v.fam.buckets)),
			exemplars: make([]atomic.Pointer[Exemplar], len(v.fam.buckets)+1),
		}
	}).(*Histogram)
}

// Histogram registers (or fetches) a labeled histogram family with the
// given ascending bucket upper bounds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: metric %s: buckets not strictly ascending", name))
		}
	}
	return &HistogramVec{fam: r.register(name, help, typeHistogram, labels, buckets)}
}

// ---------------------------------------------------------------------------
// Exposition

// EscapeLabelValue escapes a label value for the exposition format:
// backslash, double-quote, and newline get backslash escapes — the
// Prometheus contract, which is NOT Go's %q quoting (that would also
// escape every non-ASCII rune and tab, which a strict Prometheus
// parser reads back literally).
func EscapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP text: backslash and newline only (quotes
// are legal in HELP).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// renderLabels renders a {k="v",...} block ("" when no labels).
func renderLabels(names, values []string) string {
	return renderLabelsExtra(names, values, "", "")
}

// renderLabelsExtra renders labels plus one extra pair (for histogram
// "le"); extraName "" omits it.
func renderLabelsExtra(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value: integral floats print without an
// exponent or decimal point so counters stay grep-able.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in text exposition format,
// sorted by family name with children sorted by label values, so
// consecutive scrapes diff cleanly. It takes only read locks.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		if f.fn != nil {
			fmt.Fprintf(w, "%s %s\n", f.name, formatValue(f.fn()))
			continue
		}
		f.mu.RLock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		children := make([]metric, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.RUnlock()
		for i, k := range keys {
			var values []string
			if k != "" || len(f.labels) > 0 {
				values = strings.Split(k, labelSep)
			}
			children[i].write(w, f, values)
		}
	}
}
