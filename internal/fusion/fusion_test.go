package fusion

import (
	"io"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/formats/tfrecord"
	"repro/internal/pipeline"
	"repro/internal/shard"
)

func TestSignalValidate(t *testing.T) {
	ok := &Signal{Name: "ip", Times: []float64{0, 1, 2}, Data: []float64{1, 2, 3}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Signal{Name: "ip", Times: []float64{0, 1}, Data: []float64{1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("want length error")
	}
	nonMono := &Signal{Name: "ip", Times: []float64{0, 2, 1}, Data: []float64{1, 2, 3}}
	if err := nonMono.Validate(); err == nil {
		t.Fatal("want monotonicity error")
	}
}

func TestStorePutGet(t *testing.T) {
	st := NewStore()
	shot := &Shot{Number: 1, Signals: map[string]*Signal{
		"ip": {Name: "ip", Times: []float64{0, 1}, Data: []float64{1, 2}},
	}}
	if err := st.Put(shot); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(shot); err == nil {
		t.Fatal("want duplicate error")
	}
	if err := st.Put(nil); err == nil {
		t.Fatal("want nil error")
	}
	got, err := st.Get(1)
	if err != nil || got.Number != 1 {
		t.Fatalf("got=%+v err=%v", got, err)
	}
	if _, err := st.Get(99); err == nil {
		t.Fatal("want not-found error")
	}
	sig, err := st.GetSignal(1, "ip")
	if err != nil || sig.Data[1] != 2 {
		t.Fatalf("sig=%+v err=%v", sig, err)
	}
	if _, err := st.GetSignal(1, "nope"); err == nil {
		t.Fatal("want signal-not-found error")
	}
}

func TestResampleLinear(t *testing.T) {
	sig := &Signal{Name: "x", Times: []float64{0, 1, 2}, Data: []float64{0, 10, 20}}
	out, err := sig.Resample(0, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 5, 10, 15}
	if len(out) != 4 {
		t.Fatalf("len=%d", len(out))
	}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("out=%v", out)
		}
	}
}

func TestResampleBridgesDropouts(t *testing.T) {
	sig := &Signal{Name: "x", Times: []float64{0, 1, 2, 3}, Data: []float64{0, math.NaN(), math.NaN(), 30}}
	out, err := sig.Resample(0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Valid points are (0,0) and (3,30): interpolate across the gap.
	if out[1] != 10 || out[2] != 20 {
		t.Fatalf("out=%v", out)
	}
}

func TestResampleEdgeClamp(t *testing.T) {
	sig := &Signal{Name: "x", Times: []float64{1, 2}, Data: []float64{5, 6}}
	out, err := sig.Resample(0, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 5 || out[3] != 6 {
		t.Fatalf("clamp: %v", out)
	}
}

func TestResampleAllNaN(t *testing.T) {
	sig := &Signal{Name: "x", Times: []float64{0, 1}, Data: []float64{math.NaN(), math.NaN()}}
	out, err := sig.Resample(0, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if !math.IsNaN(v) {
			t.Fatalf("out=%v", out)
		}
	}
}

func TestResampleErrors(t *testing.T) {
	sig := &Signal{Name: "x", Times: []float64{0}, Data: []float64{1}}
	if _, err := sig.Resample(0, 1, 0); err == nil {
		t.Fatal("want dt error")
	}
	if _, err := sig.Resample(1, 1, 0.1); err == nil {
		t.Fatal("want window error")
	}
}

func TestSynthesizeCampaign(t *testing.T) {
	st, err := SynthesizeCampaign(SynthConfig{Shots: 10, DisruptionRate: 0.5, FlattopSeconds: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	shots := st.Shots()
	if len(shots) != 10 {
		t.Fatalf("shots=%d", len(shots))
	}
	disrupted := 0
	for _, n := range shots {
		s, _ := st.Get(n)
		if len(s.Signals) != 4 {
			t.Fatalf("shot %d has %d signals", n, len(s.Signals))
		}
		if s.Disrupted {
			disrupted++
			ip := s.Signals["ip"]
			// Current must collapse after disruption.
			last := ip.Data[len(ip.Data)-1]
			if !math.IsNaN(last) && last > 0.5 {
				t.Fatalf("shot %d: no current quench (ip end=%v)", n, last)
			}
		}
		for _, sig := range s.Signals {
			if err := sig.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if disrupted == 0 || disrupted == 10 {
		t.Fatalf("disrupted=%d, want mixed outcomes", disrupted)
	}
}

func TestSynthesizeErrors(t *testing.T) {
	if _, err := SynthesizeCampaign(SynthConfig{Shots: 0}); err == nil {
		t.Fatal("want shots error")
	}
	if _, err := SynthesizeCampaign(SynthConfig{Shots: 1, DisruptionRate: 2, FlattopSeconds: 1}); err == nil {
		t.Fatal("want rate error")
	}
	if _, err := SynthesizeCampaign(SynthConfig{Shots: 1, FlattopSeconds: 0}); err == nil {
		t.Fatal("want flattop error")
	}
}

func TestAlignCommonSupport(t *testing.T) {
	st, _ := SynthesizeCampaign(SynthConfig{Shots: 2, FlattopSeconds: 1, Seed: 1})
	s, _ := st.Get(170000)
	a, err := Align(s, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Channels) != 4 {
		t.Fatalf("channels=%v", a.Channels)
	}
	// Sorted channel order.
	for i := 1; i < len(a.Channels); i++ {
		if a.Channels[i] < a.Channels[i-1] {
			t.Fatalf("channels unsorted: %v", a.Channels)
		}
	}
	n := a.Samples()
	for c, s := range a.Series {
		if len(s) != n {
			t.Fatalf("channel %d length %d != %d", c, len(s), n)
		}
	}
}

func TestAlignErrors(t *testing.T) {
	if _, err := Align(&Shot{Number: 1, Signals: map[string]*Signal{}}, 0.1); err == nil {
		t.Fatal("want no-signal error")
	}
	disjoint := &Shot{Number: 2, Signals: map[string]*Signal{
		"a": {Name: "a", Times: []float64{0, 1}, Data: []float64{1, 1}},
		"b": {Name: "b", Times: []float64{5, 6}, Data: []float64{1, 1}},
	}}
	if _, err := Align(disjoint, 0.1); err == nil {
		t.Fatal("want no-support error")
	}
}

func TestDerivative(t *testing.T) {
	// f(t) = 3t -> f' = 3 everywhere.
	xs := []float64{0, 3, 6, 9}
	d, err := Derivative(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range d {
		if math.Abs(v-3) > 1e-12 {
			t.Fatalf("d=%v", d)
		}
	}
	if _, err := Derivative([]float64{1}, 1); err == nil {
		t.Fatal("want length error")
	}
	if _, err := Derivative(xs, 0); err == nil {
		t.Fatal("want dt error")
	}
}

func TestAddDerivativeChannels(t *testing.T) {
	a := &AlignedShot{Dt: 0.5, Channels: []string{"ip"}, Series: [][]float64{{0, 1, 2}}}
	if err := a.AddDerivativeChannels(); err != nil {
		t.Fatal(err)
	}
	if len(a.Channels) != 2 || a.Channels[1] != "dip" {
		t.Fatalf("channels=%v", a.Channels)
	}
	if a.Series[1][1] != 2 { // (2-0)/(2*0.5)
		t.Fatalf("dip=%v", a.Series[1])
	}
}

func TestNormalizePerShot(t *testing.T) {
	a := &AlignedShot{Dt: 1, Channels: []string{"x", "const"},
		Series: [][]float64{{2, 4, 6}, {5, 5, 5}}}
	stats, err := a.NormalizePerShot()
	if err != nil {
		t.Fatal(err)
	}
	if stats[0][0] != 4 {
		t.Fatalf("mean=%v", stats[0][0])
	}
	mean := (a.Series[0][0] + a.Series[0][1] + a.Series[0][2]) / 3
	if math.Abs(mean) > 1e-12 {
		t.Fatalf("normalized mean=%v", mean)
	}
	// Constant channel: centered, not divided by zero.
	for _, v := range a.Series[1] {
		if v != 0 {
			t.Fatalf("const channel=%v", a.Series[1])
		}
	}
}

func TestNormalizeAllNaNChannel(t *testing.T) {
	a := &AlignedShot{Dt: 1, Channels: []string{"x"},
		Series: [][]float64{{math.NaN(), math.NaN()}}}
	if _, err := a.NormalizePerShot(); err == nil {
		t.Fatal("want all-NaN error")
	}
}

func TestWindowizeLabels(t *testing.T) {
	// 100 samples at dt=0.01 from T0=0; disruption at t=0.55.
	a := &AlignedShot{Dt: 0.01, T0: 0, Disrupted: true, TDisrupt: 0.55,
		Channels: []string{"x"}, Series: [][]float64{make([]float64, 100)}}
	ws, err := Windowize(a, 20, 10, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 9 {
		t.Fatalf("windows=%d", len(ws))
	}
	// Window ending at t=0.4 (start 20): 0.55 in (0.4, 0.6] -> label 1.
	labeled := map[int]int{}
	for _, w := range ws {
		labeled[w.Start] = w.Label
	}
	if labeled[20] != 1 {
		t.Fatalf("window@20 label=%d", labeled[20])
	}
	// Window ending at t=0.2 (start 0): 0.55 beyond horizon -> 0.
	if labeled[0] != 0 {
		t.Fatalf("window@0 label=%d", labeled[0])
	}
	// Feature vector is channel-major length.
	if len(ws[0].Features) != 20 {
		t.Fatalf("features=%d", len(ws[0].Features))
	}
}

func TestWindowizeShortShot(t *testing.T) {
	a := &AlignedShot{Dt: 1, Channels: []string{"x"}, Series: [][]float64{{1, 2}}}
	ws, err := Windowize(a, 10, 5, 1)
	if err != nil || ws != nil {
		t.Fatalf("ws=%v err=%v", ws, err)
	}
	if _, err := Windowize(a, 0, 5, 1); err == nil {
		t.Fatal("want length error")
	}
}

// TestPipelineEndToEnd runs the full Table 1 fusion workflow.
func TestPipelineEndToEnd(t *testing.T) {
	st, err := SynthesizeCampaign(SynthConfig{Shots: 12, DisruptionRate: 0.4, FlattopSeconds: 1.5, DropoutRate: 0.01, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sink := shard.NewMemSink()
	p, err := NewPipeline(DefaultConfig(), sink)
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDataset("campaign-2024", st)
	snaps, err := p.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipeline.VerifyMonotone(snaps); err != nil {
		t.Fatal(err)
	}
	final := snaps[len(snaps)-1].Assessment
	if final.Level != core.AIReady {
		t.Fatalf("level=%v gaps=%v", final.Level, final.Gaps)
	}
	prod := ds.Payload.(*Product)
	if len(prod.Aligned) != 12 {
		t.Fatalf("aligned=%d", len(prod.Aligned))
	}
	// Derivative channels doubled the channel count.
	if got := len(prod.Aligned[0].Channels); got != 8 {
		t.Fatalf("channels=%d", got)
	}
	if len(prod.Windows) == 0 {
		t.Fatal("no windows")
	}
	rate := DisruptionRate(prod.Windows)
	if rate <= 0 || rate >= 0.5 {
		t.Fatalf("disruption window rate=%v, want sparse positives", rate)
	}

	// Shot-level leakage check: train/val/test shots disjoint.
	part := map[int]string{}
	for _, i := range prod.Split.Train {
		part[prod.Windows[i].Shot] = "train"
	}
	for _, i := range prod.Split.Val {
		if part[prod.Windows[i].Shot] == "train" {
			t.Fatal("shot leaked between train and val")
		}
	}

	// TFRecords decode as tf.train.Examples.
	count := 0
	err = shard.ReadAll(sink, prod.Manifest, func(_ string, rec []byte) error {
		ex, err := tfrecord.Unmarshal(rec)
		if err != nil {
			return err
		}
		if len(ex.Features["signal"].Floats) != 8*50 {
			t.Fatalf("signal dims=%d", len(ex.Features["signal"].Floats))
		}
		if len(ex.Features["label"].Ints) != 1 {
			return io.ErrUnexpectedEOF
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != len(prod.Split.Train) {
		t.Fatalf("tfrecords=%d train=%d", count, len(prod.Split.Train))
	}
}

func TestPipelineConfigErrors(t *testing.T) {
	if _, err := NewPipeline(DefaultConfig(), nil); err == nil {
		t.Fatal("want nil-sink error")
	}
	bad := DefaultConfig()
	bad.Dt = 0
	if _, err := NewPipeline(bad, shard.NewMemSink()); err == nil {
		t.Fatal("want dt error")
	}
}

func TestPipelineEmptyStore(t *testing.T) {
	p, err := NewPipeline(DefaultConfig(), shard.NewMemSink())
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDataset("empty", NewStore())
	if _, err := p.Run(ds); err == nil {
		t.Fatal("want empty-campaign error")
	}
}

// Property: resampling a linear signal is exact for any uniform rate.
func TestResampleLinearProperty(t *testing.T) {
	f := func(seed int64, a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
			return true
		}
		sig := &Signal{Name: "lin", Times: make([]float64, 50), Data: make([]float64, 50)}
		for i := range sig.Times {
			t := float64(i) * 0.1
			sig.Times[i] = t
			sig.Data[i] = a + b*t
		}
		out, err := sig.Resample(0, 4.9, 0.07)
		if err != nil {
			return false
		}
		for i, v := range out {
			t := float64(i) * 0.07
			want := a + b*t
			if math.Abs(v-want) > 1e-6*math.Max(1, math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAlign(b *testing.B) {
	st, err := SynthesizeCampaign(SynthConfig{Shots: 1, FlattopSeconds: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	s, _ := st.Get(170000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Align(s, 0.001); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWindowize(b *testing.B) {
	st, _ := SynthesizeCampaign(SynthConfig{Shots: 1, FlattopSeconds: 3, Seed: 1})
	s, _ := st.Get(170000)
	a, err := Align(s, 0.001)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Windowize(a, 100, 50, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPipelineEmitSciH5(t *testing.T) {
	st, err := SynthesizeCampaign(SynthConfig{Shots: 5, DisruptionRate: 0.4, FlattopSeconds: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.EmitSciH5 = true
	sink := shard.NewMemSink()
	p, err := NewPipeline(cfg, sink)
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDataset("h5-campaign", st)
	if _, err := p.Run(ds); err != nil {
		t.Fatal(err)
	}
	prod := ds.Payload.(*Product)
	if len(prod.SciH5) == 0 {
		t.Fatal("no SciH5 artifact")
	}
	back, err := ImportSciH5(prod.SciH5)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 5 {
		t.Fatalf("shots in container=%d", len(back))
	}
	// Channels include the derivative features added upstream.
	if len(back[0].Channels) != 8 {
		t.Fatalf("channels=%v", back[0].Channels)
	}
}
