// Tests for the unified serve-cache arena: one -serve-cache-mb budget
// shared by the decoded-shard and encoded-frame caches, with weighted
// eviction that sheds frame payloads first — they are cheap to refill
// from sidecars — and decoded shards only when frames alone can't pay.
package server

import (
	"fmt"
	"testing"
)

// stubArenaCache is a minimal arenaCache: a FIFO of entry sizes.
type stubArenaCache struct {
	entries []int64
	evicted int
}

func (s *stubArenaCache) usedBytes() int64 {
	var n int64
	for _, e := range s.entries {
		n += e
	}
	return n
}

func (s *stubArenaCache) evictOne() bool {
	if len(s.entries) == 0 {
		return false
	}
	s.entries = s.entries[1:]
	s.evicted++
	return true
}

func TestArenaRebalance(t *testing.T) {
	t.Run("under budget is untouched", func(t *testing.T) {
		frames := &stubArenaCache{entries: []int64{40, 40}}
		decoded := &stubArenaCache{entries: []int64{100}}
		a := &cacheArena{budget: 200, frames: frames, decoded: decoded}
		a.rebalance()
		if frames.evicted != 0 || decoded.evicted != 0 {
			t.Fatalf("evicted %d frames / %d decoded under budget", frames.evicted, decoded.evicted)
		}
	})
	t.Run("frames are shed first", func(t *testing.T) {
		// Frames dominate: weighted preference evicts only frames until
		// the combined usage fits.
		frames := &stubArenaCache{entries: []int64{100, 100, 100, 100}}
		decoded := &stubArenaCache{entries: []int64{100}}
		a := &cacheArena{budget: 300, frames: frames, decoded: decoded}
		a.rebalance()
		if got := frames.usedBytes() + decoded.usedBytes(); got > 300 {
			t.Fatalf("still %d bytes over a 300-byte budget", got)
		}
		if decoded.evicted != 0 {
			t.Fatalf("evicted %d decoded entries while frames could pay", decoded.evicted)
		}
		if frames.evicted == 0 {
			t.Fatal("no frame entries evicted")
		}
	})
	t.Run("decoded evicts when frames are already small", func(t *testing.T) {
		// frames*frameEvictWeight < decoded: the decoded side pays.
		frames := &stubArenaCache{entries: []int64{10}}
		decoded := &stubArenaCache{entries: []int64{100, 100, 100}}
		a := &cacheArena{budget: 150, frames: frames, decoded: decoded}
		a.rebalance()
		if got := frames.usedBytes() + decoded.usedBytes(); got > 150 {
			t.Fatalf("still %d bytes over a 150-byte budget", got)
		}
		if decoded.evicted == 0 {
			t.Fatal("no decoded entries evicted")
		}
		if frames.usedBytes() == 0 {
			t.Fatal("small frame side was drained instead of the decoded side")
		}
	})
	t.Run("empty decoded falls back to frames", func(t *testing.T) {
		frames := &stubArenaCache{entries: []int64{10, 10, 10, 10}}
		decoded := &stubArenaCache{}
		a := &cacheArena{budget: 20, frames: frames, decoded: decoded}
		a.rebalance()
		if got := frames.usedBytes(); got > 20 {
			t.Fatalf("frames still hold %d bytes over a 20-byte budget", got)
		}
	})
	t.Run("unpayable budget terminates", func(t *testing.T) {
		// Both sides empty but budget zero: rebalance must return, not spin.
		a := &cacheArena{budget: 0, frames: &stubArenaCache{entries: []int64{5}}, decoded: &stubArenaCache{}}
		a.rebalance()
		if a.frames.usedBytes() != 0 {
			t.Fatal("lone frame entry not evicted under zero budget")
		}
		a.rebalance() // both empty now; must still terminate
	})
}

// TestArenaSharedBudget wires two real ShardCaches into one arena and
// checks the invariant the flag promises: combined bytes never stay
// above the unified budget after inserts, with frame entries evicted
// preferentially.
func TestArenaSharedBudget(t *testing.T) {
	const budget = 1 << 20
	decoded := NewShardCache[[]any](budget)
	frames := NewShardCache[*encodedShard](budget)
	arena := &cacheArena{budget: budget, frames: frames, decoded: decoded}
	decoded.arena, frames.arena = arena, arena

	fill := func(i int) (*encodedShard, int64, error) {
		enc := &encodedShard{payload: make([]byte, 64<<10), offsets: []int64{0, 64 << 10}}
		return enc, enc.memBytes(), nil
	}
	for i := 0; i < 12; i++ {
		if _, err := frames.Get(fmt.Sprintf("f%d", i), func() (*encodedShard, int64, error) { return fill(i) }); err != nil {
			t.Fatal(err)
		}
		if _, err := decoded.Get(fmt.Sprintf("d%d", i), func() ([]any, int64, error) {
			return make([]any, 8), 64 << 10, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := frames.usedBytes() + decoded.usedBytes(); got > budget {
		t.Fatalf("caches hold %d bytes over the %d-byte shared budget", got, budget)
	}
	fs, ds := frames.Stats(), decoded.Stats()
	if fs.Evictions == 0 {
		t.Fatalf("no frame evictions under shared-budget pressure: frames %+v decoded %+v", fs, ds)
	}
	if fs.Entries == 0 && ds.Entries == 0 {
		t.Fatal("both caches drained to zero — arena over-evicts")
	}
}
