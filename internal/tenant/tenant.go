// Package tenant is draid's multi-tenancy boundary: bearer-token
// authentication against a registry loaded from the -tenants config
// file, the per-tenant identity threaded through request contexts and
// fleet hops, and the credential-redaction helpers that keep tokens
// out of logs, spans, and error bodies.
//
// The config file is a JSON array of tenants:
//
//	[
//	  {"id": "acme", "token": "s3cret", "weight": 2,
//	   "max_jobs": 8, "max_shard_bytes": 1073741824},
//	  {"id": "ops", "token": "t0psecret", "admin": true}
//	]
//
// Tokens are compared in constant time (SHA-256 digests under
// crypto/subtle), and the file must not be group/world-readable — the
// same posture the server enforces for master.key.
package tenant

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"strings"
)

// Fleet headers. Both are stamped only by authenticated parties: the
// server overwrites any client-supplied HeaderTenant with the identity
// its token actually authenticated, and HeaderPeerAuth carries a
// secret derived from the shared master key that only fleet members
// hold — a request presenting it may speak for any tenant (it is a
// node relaying an already-authenticated request).
const (
	// HeaderTenant names the authenticated tenant on fleet-internal
	// hops, so ownership survives proxy/redirect forwarding without
	// re-sending the client credential.
	HeaderTenant = "X-Draid-Tenant"
	// HeaderPeerAuth authenticates node-to-node requests.
	HeaderPeerAuth = "X-Draid-Peer-Auth"
)

// Tenant is one row of the -tenants config file.
type Tenant struct {
	// ID is the tenant's stable name — stamped on jobs, audit records,
	// traces, and log lines.
	ID string `json:"id"`
	// Token is the bearer credential (Authorization: Bearer <token>,
	// or ?access_token= for clients that cannot set headers).
	Token string `json:"token"`
	// Weight is the tenant's share of the -serve-budget-kbps bandwidth
	// budget relative to other active tenants (<=0 means 1).
	Weight int `json:"weight,omitempty"`
	// Admin grants cross-tenant visibility: unscoped listings, any
	// job's streams, every audit proof.
	Admin bool `json:"admin,omitempty"`
	// MaxJobs caps the tenant's queued+running jobs (0 = unbounded).
	MaxJobs int `json:"max_jobs,omitempty"`
	// MaxShardBytes caps the tenant's retained completed-job shard
	// bytes; enforced at submit and fed into eviction (0 = unbounded).
	MaxShardBytes int64 `json:"max_shard_bytes,omitempty"`
}

// EffectiveWeight is the tenant's bandwidth weight with the default
// applied.
func (t *Tenant) EffectiveWeight() int {
	if t == nil || t.Weight <= 0 {
		return 1
	}
	return t.Weight
}

// Registry is the set of configured tenants, indexed for constant-time
// token authentication.
type Registry struct {
	tenants []*Tenant
	byID    map[string]*Tenant
	digests [][sha256.Size]byte // digests[i] = SHA-256(tenants[i].Token)
}

// Load reads and validates the -tenants config file. The file must be
// private to the server user: a group/world-readable token file is a
// startup error, not a warning.
func Load(path string) (*Registry, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: stat %s: %w", path, err)
	}
	if mode := fi.Mode().Perm(); mode&0o077 != 0 {
		return nil, fmt.Errorf("tenant: %s is group/world-readable (mode %04o); chmod it to 0600 — it holds bearer tokens", path, mode)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: read %s: %w", path, err)
	}
	var tenants []*Tenant
	if err := json.Unmarshal(b, &tenants); err != nil {
		return nil, fmt.Errorf("tenant: parse %s: %w", path, err)
	}
	return NewRegistry(tenants)
}

// NewRegistry builds a registry from an in-memory tenant list (the
// seam tests and benchmarks use instead of a config file).
func NewRegistry(tenants []*Tenant) (*Registry, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("tenant: no tenants configured")
	}
	r := &Registry{byID: make(map[string]*Tenant, len(tenants))}
	seenTok := make(map[[sha256.Size]byte]string, len(tenants))
	for i, t := range tenants {
		if t == nil || t.ID == "" {
			return nil, fmt.Errorf("tenant: entry %d has no id", i)
		}
		if strings.ContainsAny(t.ID, " \t\n/") {
			return nil, fmt.Errorf("tenant: id %q contains whitespace or '/'", t.ID)
		}
		if len(t.Token) < 8 {
			return nil, fmt.Errorf("tenant: %s: token must be at least 8 characters", t.ID)
		}
		if _, dup := r.byID[t.ID]; dup {
			return nil, fmt.Errorf("tenant: duplicate id %q", t.ID)
		}
		d := sha256.Sum256([]byte(t.Token))
		if prev, dup := seenTok[d]; dup {
			return nil, fmt.Errorf("tenant: %s and %s share a token", prev, t.ID)
		}
		seenTok[d] = t.ID
		r.byID[t.ID] = t
		r.tenants = append(r.tenants, t)
		r.digests = append(r.digests, d)
	}
	return r, nil
}

// Authenticate resolves a presented bearer token to its tenant. The
// scan compares SHA-256 digests with subtle.ConstantTimeCompare for
// every configured tenant — no early exit — so timing reveals neither
// which tenant matched nor how close a guess came.
func (r *Registry) Authenticate(token string) (*Tenant, bool) {
	if r == nil || token == "" {
		return nil, false
	}
	d := sha256.Sum256([]byte(token))
	var found *Tenant
	for i := range r.digests {
		if subtle.ConstantTimeCompare(d[:], r.digests[i][:]) == 1 {
			found = r.tenants[i]
		}
	}
	return found, found != nil
}

// Get resolves a tenant by ID — the lookup for identities already
// authenticated elsewhere (peer-forwarded requests, replayed jobs).
func (r *Registry) Get(id string) (*Tenant, bool) {
	if r == nil {
		return nil, false
	}
	t, ok := r.byID[id]
	return t, ok
}

// Tenants lists the registry in config order.
func (r *Registry) Tenants() []*Tenant {
	if r == nil {
		return nil
	}
	return append([]*Tenant(nil), r.tenants...)
}

// Identity is the authenticated principal a request acts as.
type Identity struct {
	// ID is the tenant ID ("" for fleet-internal peer requests that
	// carry no tenant — maintenance fan-outs).
	ID string
	// Admin grants cross-tenant access (admin tokens, and peer
	// requests without a tenant, which act for the fleet itself).
	Admin bool
}

type ctxKey struct{}

// WithIdentity stamps the authenticated identity on a context.
func WithIdentity(ctx context.Context, id Identity) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// FromContext returns the request's authenticated identity. The zero
// Identity means authentication is disabled (no -tenants file) — every
// caller may do everything, today's open behavior.
func FromContext(ctx context.Context) Identity {
	id, _ := ctx.Value(ctxKey{}).(Identity)
	return id
}

// CanAccess reports whether the identity may touch a resource owned by
// tenant owner. Empty owner (pre-tenancy jobs) is accessible to every
// authenticated caller.
func (id Identity) CanAccess(owner string) bool {
	return id.Admin || owner == "" || id.ID == owner
}

// TokenFromRequest extracts the presented bearer credential:
// "Authorization: Bearer <token>" or the ?access_token= query
// fallback. Empty means no credential was presented.
func TokenFromRequest(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if tok, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(tok)
		}
		return ""
	}
	return r.URL.Query().Get("access_token")
}

// redactedParams are query parameters whose values are credentials.
var redactedParams = []string{"access_token", "token"}

// RedactQuery returns the query string with credential parameter
// values replaced, for logs and span attributes. Empty stays empty.
func RedactQuery(q url.Values) string {
	if len(q) == 0 {
		return ""
	}
	clean := url.Values{}
	for k, vs := range q {
		redact := false
		for _, p := range redactedParams {
			if strings.EqualFold(k, p) {
				redact = true
				break
			}
		}
		for _, v := range vs {
			if redact && v != "" {
				v = "REDACTED"
			}
			clean.Add(k, v)
		}
	}
	return clean.Encode()
}

// RedactedPath renders a request's path plus redacted query — the
// form every log line and span attribute must use, so -debug logging
// never leaks a credential verbatim.
func RedactedPath(r *http.Request) string {
	if q := RedactQuery(r.URL.Query()); q != "" {
		return r.URL.Path + "?" + q
	}
	return r.URL.Path
}

// RedactHeaderValue redacts an Authorization-style header value while
// keeping its scheme visible ("Bearer REDACTED").
func RedactHeaderValue(v string) string {
	if v == "" {
		return ""
	}
	if scheme, _, ok := strings.Cut(v, " "); ok {
		return scheme + " REDACTED"
	}
	return "REDACTED"
}
