package ledger

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func openTest(t *testing.T, path string, batch int) *Ledger {
	t.Helper()
	l, err := Open(Config{Path: path, Node: "n1", BatchSize: batch, FlushWait: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func appendN(t *testing.T, l *Ledger, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append(TypeSubmit, "acme", fmt.Sprintf("job-%06d", i+1), ""); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func TestAppendReplayRecomputesRoots(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l := openTest(t, path, 4)
	appendN(t, l, 10) // 2 sealed batches of 4 + open batch of 2
	rootsBefore := l.Roots()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := openTest(t, path, 4)
	defer l2.Close()
	if got := l2.Len(); got != 10 {
		t.Fatalf("replayed Len = %d, want 10", got)
	}
	rootsAfter := l2.Roots()
	if len(rootsAfter) != 3 || len(rootsBefore) != 3 {
		t.Fatalf("roots count before/after = %d/%d, want 3", len(rootsBefore), len(rootsAfter))
	}
	for i := range rootsAfter {
		if rootsAfter[i] != rootsBefore[i] {
			t.Fatalf("root %d changed across replay: %+v vs %+v", i, rootsBefore[i], rootsAfter[i])
		}
	}
	if !rootsAfter[0].Sealed || !rootsAfter[1].Sealed || rootsAfter[2].Sealed {
		t.Fatalf("sealing flags wrong: %+v", rootsAfter)
	}
	// The chain must extend seamlessly after replay.
	rec, err := l2.Append(TypeEvict, "acme", "job-000001", "")
	if err != nil {
		t.Fatalf("Append after replay: %v", err)
	}
	if rec.Seq != 11 {
		t.Fatalf("post-replay Seq = %d, want 11", rec.Seq)
	}
	prev, _ := l2.Record(10)
	if rec.Prev != prev.Hash {
		t.Fatalf("post-replay record does not chain to replayed tail")
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l := openTest(t, path, 4)
	appendN(t, l, 5)
	l.Close()

	// Simulate a crash mid-append: a partial JSON line with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":6,"time":"2026-0`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2 := openTest(t, path, 4)
	defer l2.Close()
	if got := l2.Len(); got != 5 {
		t.Fatalf("Len after torn tail = %d, want 5", got)
	}
	rec, err := l2.Append(TypeStream, "acme", "job-000002", "")
	if err != nil {
		t.Fatalf("Append after truncation: %v", err)
	}
	if rec.Seq != 6 {
		t.Fatalf("Seq after truncation = %d, want 6", rec.Seq)
	}
	// The file must hold exactly 6 clean lines now.
	b, _ := os.ReadFile(path)
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("file holds %d lines, want 6", len(lines))
	}
}

func TestChainBreakDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l := openTest(t, path, 4)
	appendN(t, l, 6)
	l.Close()

	b, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(b), "\n")

	t.Run("edited record", func(t *testing.T) {
		tampered := append([]string(nil), lines...)
		var rec Record
		if err := json.Unmarshal([]byte(tampered[2]), &rec); err != nil {
			t.Fatal(err)
		}
		rec.Job = "job-999999" // rewrite history, keep everything else
		tb, _ := json.Marshal(rec)
		tampered[2] = string(tb) + "\n"
		p := filepath.Join(t.TempDir(), "audit.log")
		os.WriteFile(p, []byte(strings.Join(tampered, "")), 0o600)
		if _, err := Open(Config{Path: p, BatchSize: 4}); err == nil ||
			!strings.Contains(err.Error(), "chain broken") {
			t.Fatalf("edited record not detected: err=%v", err)
		}
	})

	t.Run("deleted record", func(t *testing.T) {
		tampered := append(append([]string(nil), lines[:2]...), lines[3:]...)
		p := filepath.Join(t.TempDir(), "audit.log")
		os.WriteFile(p, []byte(strings.Join(tampered, "")), 0o600)
		if _, err := Open(Config{Path: p, BatchSize: 4}); err == nil ||
			!strings.Contains(err.Error(), "chain broken") {
			t.Fatalf("deleted record not detected: err=%v", err)
		}
	})
}

func TestProofsVerifyAgainstPublishedRoots(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l := openTest(t, path, 4)
	defer l.Close()
	appendN(t, l, 11) // sealed batches 0..1, open batch 2 with 3 records
	roots := l.Roots()
	rootOf := map[int]string{}
	for _, r := range roots {
		rootOf[r.Batch] = r.Root
	}
	for seq := uint64(1); seq <= 11; seq++ {
		p, err := l.Prove(seq)
		if err != nil {
			t.Fatalf("Prove(%d): %v", seq, err)
		}
		if err := p.Verify(); err != nil {
			t.Fatalf("Verify(%d): %v", seq, err)
		}
		if rootOf[p.Batch] != p.Root {
			t.Fatalf("proof %d root not among published roots (batch %d)", seq, p.Batch)
		}
	}
	// A tampered proof must not verify.
	p, _ := l.Prove(3)
	p.Record.Tenant = "mallory"
	if err := p.Verify(); err == nil {
		t.Fatal("tampered record verified")
	}
	p, _ = l.Prove(3)
	if len(p.Path) > 0 {
		p.Path[0].Left = !p.Path[0].Left
		if err := p.Verify(); err == nil {
			t.Fatal("tampered path verified")
		}
	}
}

func TestGroupCommitAmortizesSyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l, err := Open(Config{Path: path, BatchSize: 64, FlushWait: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := l.Append(TypeSubmit, "t", fmt.Sprintf("job-%06d", i), ""); err != nil {
				t.Errorf("Append: %v", err)
			}
		}(i)
	}
	wg.Wait()
	st := l.Stats()
	if st.Records != n {
		t.Fatalf("Records = %d, want %d", st.Records, n)
	}
	if st.Syncs >= n {
		t.Fatalf("group commit issued %d syncs for %d appends — no amortization", st.Syncs, n)
	}
	// Every record must still be on disk, chained, and replayable.
	l.Close()
	l2 := openTest(t, path, 64)
	defer l2.Close()
	if got := l2.Len(); got != n {
		t.Fatalf("replayed Len = %d, want %d", got, n)
	}
}

func TestDirectModeSyncsEveryAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l, err := Open(Config{Path: path, BatchSize: 8, Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 5)
	if st := l.Stats(); st.Syncs != 5 {
		t.Fatalf("direct mode: %d syncs for 5 appends", st.Syncs)
	}
}
