package provenance

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHashBytesDeterministic(t *testing.T) {
	a := HashBytes([]byte("raw climate field"))
	b := HashBytes([]byte("raw climate field"))
	if a != b {
		t.Fatal("same content must hash equal")
	}
	if a == HashBytes([]byte("different")) {
		t.Fatal("different content must hash differently")
	}
	if len(a) != 64 {
		t.Fatalf("hex sha256 length=%d", len(a))
	}
}

func TestHashFloat64s(t *testing.T) {
	a := HashFloat64s([]float64{1, 2, 3})
	if a != HashFloat64s([]float64{1, 2, 3}) {
		t.Fatal("deterministic")
	}
	if a == HashFloat64s([]float64{1, 2, 4}) {
		t.Fatal("collision on different data")
	}
	// NaN must hash stably.
	n1 := HashFloat64s([]float64{math.NaN()})
	n2 := HashFloat64s([]float64{math.NaN()})
	if n1 != n2 {
		t.Fatal("NaN hash unstable")
	}
}

func TestRecordAndActivities(t *testing.T) {
	tr := NewTracker()
	raw := HashBytes([]byte("raw"))
	clean := HashBytes([]byte("clean"))
	tr.Label(raw, "raw-netcdf")
	id, err := tr.Record(Activity{
		Name: "clean", Agent: "preprocess-stage",
		Params: map[string]string{"fill": "interpolate"},
		Inputs: []ArtifactID{raw}, Outputs: []ArtifactID{clean},
	})
	if err != nil {
		t.Fatal(err)
	}
	if id != "act-000001" {
		t.Fatalf("id=%q", id)
	}
	acts := tr.Activities()
	if len(acts) != 1 || acts[0].Name != "clean" || acts[0].Params["fill"] != "interpolate" {
		t.Fatalf("acts=%+v", acts)
	}
	if acts[0].Started.IsZero() || acts[0].Finished.IsZero() {
		t.Fatal("timestamps not defaulted")
	}
}

func TestRecordRequiresName(t *testing.T) {
	tr := NewTracker()
	if _, err := tr.Record(Activity{}); err == nil {
		t.Fatal("want name error")
	}
}

func TestLineageChain(t *testing.T) {
	tr := NewTracker()
	raw := HashBytes([]byte("raw"))
	clean := HashBytes([]byte("clean"))
	norm := HashBytes([]byte("norm"))
	shard := HashBytes([]byte("shard"))
	tr.Label(raw, "raw")
	mustRecord(t, tr, "clean", []ArtifactID{raw}, []ArtifactID{clean})
	mustRecord(t, tr, "normalize", []ArtifactID{clean}, []ArtifactID{norm})
	mustRecord(t, tr, "shard", []ArtifactID{norm}, []ArtifactID{shard})

	lin := tr.Lineage(shard)
	if len(lin) != 3 {
		t.Fatalf("lineage depth=%d", len(lin))
	}
	if lin[0].Name != "clean" || lin[1].Name != "normalize" || lin[2].Name != "shard" {
		t.Fatalf("order: %v %v %v", lin[0].Name, lin[1].Name, lin[2].Name)
	}
}

func TestLineageDiamond(t *testing.T) {
	// raw -> a, raw -> b, (a,b) -> merged: each activity appears once.
	tr := NewTracker()
	raw := HashBytes([]byte("raw"))
	a := HashBytes([]byte("a"))
	b := HashBytes([]byte("b"))
	m := HashBytes([]byte("m"))
	tr.Label(raw, "raw")
	mustRecord(t, tr, "branch-a", []ArtifactID{raw}, []ArtifactID{a})
	mustRecord(t, tr, "branch-b", []ArtifactID{raw}, []ArtifactID{b})
	mustRecord(t, tr, "merge", []ArtifactID{a, b}, []ArtifactID{m})
	lin := tr.Lineage(m)
	if len(lin) != 3 {
		t.Fatalf("diamond lineage=%d activities", len(lin))
	}
	if lin[2].Name != "merge" {
		t.Fatalf("merge must come last: %v", lin[2].Name)
	}
}

func TestLineageUnknownArtifact(t *testing.T) {
	tr := NewTracker()
	if lin := tr.Lineage(HashBytes([]byte("never seen"))); len(lin) != 0 {
		t.Fatalf("lineage of unknown=%v", lin)
	}
}

func TestVerifyDetectsUnknownInput(t *testing.T) {
	tr := NewTracker()
	mystery := HashBytes([]byte("mystery"))
	out := HashBytes([]byte("out"))
	mustRecord(t, tr, "use-mystery", []ArtifactID{mystery}, []ArtifactID{out})
	if err := tr.Verify(); err == nil {
		t.Fatal("want unknown-artifact error")
	}
	// Declaring the root fixes it.
	tr.Label(mystery, "declared raw input")
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyOrdering(t *testing.T) {
	tr := NewTracker()
	raw := HashBytes([]byte("raw"))
	mid := HashBytes([]byte("mid"))
	tr.Label(raw, "raw")
	mustRecord(t, tr, "produce", []ArtifactID{raw}, []ArtifactID{mid})
	mustRecord(t, tr, "consume", []ArtifactID{mid}, []ArtifactID{HashBytes([]byte("end"))})
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	tr := NewTracker()
	tr.SetClock(func() time.Time { return time.Unix(1700000000, 0).UTC() })
	raw := HashBytes([]byte("raw"))
	out := HashBytes([]byte("out"))
	tr.Label(raw, "raw-grib")
	mustRecord(t, tr, "decode", []ArtifactID{raw}, []ArtifactID{out})

	b, err := tr.Export()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "raw-grib") {
		t.Fatal("export missing label")
	}
	tr2, err := Import(b)
	if err != nil {
		t.Fatal(err)
	}
	lin := tr2.Lineage(out)
	if len(lin) != 1 || lin[0].Name != "decode" {
		t.Fatalf("imported lineage=%+v", lin)
	}
	if err := tr2.Verify(); err != nil {
		t.Fatal(err)
	}
	// Imported tracker continues sequence numbering.
	id, err := tr2.Record(Activity{Name: "next"})
	if err != nil {
		t.Fatal(err)
	}
	if id != "act-000002" {
		t.Fatalf("continued id=%q", id)
	}
}

func TestImportGarbage(t *testing.T) {
	if _, err := Import([]byte("{broken")); err == nil {
		t.Fatal("want decode error")
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := NewTracker()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := HashFloat64s([]float64{float64(i)})
			if _, err := tr.Record(Activity{Name: "worker", Outputs: []ArtifactID{out}}); err != nil {
				t.Error(err)
			}
			tr.Label(out, "w")
		}(i)
	}
	wg.Wait()
	if len(tr.Activities()) != 50 {
		t.Fatalf("activities=%d", len(tr.Activities()))
	}
	ids := map[string]bool{}
	for _, a := range tr.Activities() {
		if ids[a.ID] {
			t.Fatalf("duplicate id %s", a.ID)
		}
		ids[a.ID] = true
	}
}

func mustRecord(t *testing.T, tr *Tracker, name string, in, out []ArtifactID) {
	t.Helper()
	if _, err := tr.Record(Activity{Name: name, Inputs: in, Outputs: out}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHashFloat64s(b *testing.B) {
	vals := make([]float64, 8192)
	for i := range vals {
		vals[i] = float64(i) * 0.3
	}
	b.SetBytes(int64(len(vals) * 8))
	for i := 0; i < b.N; i++ {
		_ = HashFloat64s(vals)
	}
}
