// Package materials implements the materials archetype (paper §3.4,
// Table 1): DFT-style simulation outputs are parsed from a POSCAR-like
// text format, atomic descriptors are normalized, structures are encoded
// as periodic cutoff graphs for GNN training (HydraGNN-style), and the
// graphs are sharded to an ADIOS-style BP container — parse → normalize →
// encode → shard.
package materials

import (
	"bufio"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Structure is one crystal: a cubic lattice constant, fractional atomic
// positions, species, and DFT-style labels (energy, per-atom forces).
type Structure struct {
	ID      string
	Lattice float64      // cubic cell edge (Angstrom)
	Species []string     // per-atom element symbols
	Frac    [][3]float64 // fractional coordinates in [0,1)
	Energy  float64      // total energy (eV)
	Forces  [][3]float64 // per-atom forces (eV/A)
	Class   string       // material class label (e.g. "metal", "insulator")
}

// NumAtoms returns the atom count.
func (s *Structure) NumAtoms() int { return len(s.Species) }

// Validate checks structural consistency.
func (s *Structure) Validate() error {
	if s.Lattice <= 0 {
		return fmt.Errorf("materials: %s lattice %v must be positive", s.ID, s.Lattice)
	}
	if len(s.Frac) != len(s.Species) {
		return fmt.Errorf("materials: %s has %d positions, %d species", s.ID, len(s.Frac), len(s.Species))
	}
	if s.Forces != nil && len(s.Forces) != len(s.Species) {
		return fmt.Errorf("materials: %s has %d forces, %d atoms", s.ID, len(s.Forces), len(s.Species))
	}
	for i, p := range s.Frac {
		for d := 0; d < 3; d++ {
			if p[d] < 0 || p[d] >= 1 {
				return fmt.Errorf("materials: %s atom %d fractional coord %v out of [0,1)", s.ID, i, p[d])
			}
		}
	}
	return nil
}

// atomicNumbers for the species the generator emits.
var atomicNumbers = map[string]int{
	"H": 1, "C": 6, "N": 7, "O": 8, "Al": 13, "Si": 14, "Ti": 22, "Fe": 26, "Cu": 29,
}

// AtomicNumber returns Z for a symbol (0 for unknown).
func AtomicNumber(symbol string) int { return atomicNumbers[symbol] }

// SynthConfig sizes the synthetic DFT-archive generator.
type SynthConfig struct {
	Structures int
	MinAtoms   int
	MaxAtoms   int
	// ImbalanceRatio skews class frequencies (Table 1 lists class
	// imbalance as a materials readiness challenge). 1 = balanced.
	ImbalanceRatio float64
	Seed           int64
}

// DefaultSynthConfig returns a small OMat24-like archive.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{Structures: 60, MinAtoms: 4, MaxAtoms: 16, ImbalanceRatio: 5, Seed: 1}
}

// Classes emitted by the generator.
var Classes = []string{"metal", "semiconductor", "insulator"}

// Synthesize generates random-but-physical structures: atoms jittered off
// a cubic sublattice (no overlaps), energies roughly extensive in atom
// count with class-dependent offsets, and forces consistent in magnitude.
func Synthesize(cfg SynthConfig) ([]*Structure, error) {
	if cfg.Structures <= 0 {
		return nil, fmt.Errorf("materials: structures=%d must be positive", cfg.Structures)
	}
	if cfg.MinAtoms < 1 || cfg.MaxAtoms < cfg.MinAtoms {
		return nil, fmt.Errorf("materials: atom range [%d,%d] invalid", cfg.MinAtoms, cfg.MaxAtoms)
	}
	if cfg.ImbalanceRatio < 1 {
		return nil, fmt.Errorf("materials: imbalance ratio %v must be >=1", cfg.ImbalanceRatio)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	species := []string{"Fe", "Cu", "Si", "O", "Al", "Ti"}
	// Class weights: metal is ImbalanceRatio times more likely than
	// insulator; semiconductor in between.
	weights := []float64{cfg.ImbalanceRatio, (cfg.ImbalanceRatio + 1) / 2, 1}
	wsum := weights[0] + weights[1] + weights[2]

	out := make([]*Structure, 0, cfg.Structures)
	for k := 0; k < cfg.Structures; k++ {
		n := cfg.MinAtoms + rng.Intn(cfg.MaxAtoms-cfg.MinAtoms+1)
		// Cubic sublattice with enough sites.
		side := int(math.Ceil(math.Cbrt(float64(n))))
		lattice := 3.0 * float64(side) * (0.9 + 0.2*rng.Float64())

		r := rng.Float64() * wsum
		class := Classes[2]
		if r < weights[0] {
			class = Classes[0]
		} else if r < weights[0]+weights[1] {
			class = Classes[1]
		}

		s := &Structure{
			ID:      fmt.Sprintf("struct-%05d", k),
			Lattice: lattice,
			Class:   class,
		}
		perm := rng.Perm(side * side * side)[:n]
		for _, site := range perm {
			x := float64(site%side) / float64(side)
			y := float64(site/side%side) / float64(side)
			z := float64(site/(side*side)) / float64(side)
			jitter := 0.02
			pos := [3]float64{
				wrap01(x + jitter*rng.NormFloat64()),
				wrap01(y + jitter*rng.NormFloat64()),
				wrap01(z + jitter*rng.NormFloat64()),
			}
			s.Frac = append(s.Frac, pos)
			s.Species = append(s.Species, species[rng.Intn(len(species))])
		}
		classOffset := map[string]float64{"metal": -4.2, "semiconductor": -3.1, "insulator": -2.0}[class]
		s.Energy = classOffset*float64(n) + rng.NormFloat64()*0.1
		s.Forces = make([][3]float64, n)
		for i := range s.Forces {
			for d := 0; d < 3; d++ {
				s.Forces[i][d] = rng.NormFloat64() * 0.05
			}
		}
		if err := s.Validate(); err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func wrap01(x float64) float64 {
	x = math.Mod(x, 1)
	if x < 0 {
		x++
	}
	return x
}

// ToPOSCAR renders the structure in a POSCAR-like text format (the DFT
// community's interchange format):
//
//	comment (ID class=… energy=…)
//	scale
//	3 lattice vectors (cubic here)
//	species line, counts line, "Direct", then fractional coords.
func (s *Structure) ToPOSCAR() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s class=%s energy=%.6f\n", s.ID, s.Class, s.Energy)
	b.WriteString("1.0\n")
	fmt.Fprintf(&b, "%.6f 0.0 0.0\n0.0 %.6f 0.0\n0.0 0.0 %.6f\n", s.Lattice, s.Lattice, s.Lattice)

	// Group atoms by species in first-appearance order.
	order := []string{}
	counts := map[string]int{}
	for _, sp := range s.Species {
		if counts[sp] == 0 {
			order = append(order, sp)
		}
		counts[sp]++
	}
	b.WriteString(strings.Join(order, " ") + "\n")
	parts := make([]string, len(order))
	for i, sp := range order {
		parts[i] = strconv.Itoa(counts[sp])
	}
	b.WriteString(strings.Join(parts, " ") + "\n")
	b.WriteString("Direct\n")
	for _, sp := range order {
		for i, atomSp := range s.Species {
			if atomSp != sp {
				continue
			}
			fmt.Fprintf(&b, "%.8f %.8f %.8f\n", s.Frac[i][0], s.Frac[i][1], s.Frac[i][2])
		}
	}
	return b.String()
}

// ParsePOSCAR parses the format produced by ToPOSCAR. Forces are not part
// of POSCAR and are left nil.
func ParsePOSCAR(content string) (*Structure, error) {
	sc := bufio.NewScanner(strings.NewReader(content))
	read := func() (string, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line != "" {
				return line, nil
			}
		}
		return "", fmt.Errorf("materials: unexpected end of POSCAR")
	}
	header, err := read()
	if err != nil {
		return nil, err
	}
	s := &Structure{}
	fields := strings.Fields(header)
	if len(fields) > 0 {
		s.ID = fields[0]
	}
	for _, f := range fields[1:] {
		switch {
		case strings.HasPrefix(f, "class="):
			s.Class = strings.TrimPrefix(f, "class=")
		case strings.HasPrefix(f, "energy="):
			if _, err := fmt.Sscanf(f, "energy=%f", &s.Energy); err != nil {
				return nil, fmt.Errorf("materials: bad energy in header: %w", err)
			}
		}
	}
	scaleLine, err := read()
	if err != nil {
		return nil, err
	}
	scale, err := strconv.ParseFloat(scaleLine, 64)
	if err != nil {
		return nil, fmt.Errorf("materials: bad scale %q: %w", scaleLine, err)
	}
	var lat [3][3]float64
	for r := 0; r < 3; r++ {
		line, err := read()
		if err != nil {
			return nil, err
		}
		cols := strings.Fields(line)
		if len(cols) != 3 {
			return nil, fmt.Errorf("materials: lattice row %q", line)
		}
		for cI, c := range cols {
			v, err := strconv.ParseFloat(c, 64)
			if err != nil {
				return nil, fmt.Errorf("materials: lattice value %q: %w", c, err)
			}
			lat[r][cI] = v * scale
		}
	}
	if lat[0][1] != 0 || lat[0][2] != 0 || lat[1][0] != 0 || lat[1][2] != 0 || lat[2][0] != 0 || lat[2][1] != 0 {
		return nil, fmt.Errorf("materials: only cubic (diagonal) lattices supported")
	}
	if lat[0][0] != lat[1][1] || lat[1][1] != lat[2][2] {
		return nil, fmt.Errorf("materials: only cubic lattices supported")
	}
	s.Lattice = lat[0][0]

	speciesLine, err := read()
	if err != nil {
		return nil, err
	}
	species := strings.Fields(speciesLine)
	countsLine, err := read()
	if err != nil {
		return nil, err
	}
	countFields := strings.Fields(countsLine)
	if len(countFields) != len(species) {
		return nil, fmt.Errorf("materials: %d species but %d counts", len(species), len(countFields))
	}
	counts := make([]int, len(species))
	total := 0
	for i, cf := range countFields {
		n, err := strconv.Atoi(cf)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("materials: bad count %q", cf)
		}
		counts[i] = n
		total += n
	}
	mode, err := read()
	if err != nil {
		return nil, err
	}
	if !strings.EqualFold(mode, "Direct") {
		return nil, fmt.Errorf("materials: only Direct coordinates supported, got %q", mode)
	}
	for i, sp := range species {
		for a := 0; a < counts[i]; a++ {
			line, err := read()
			if err != nil {
				return nil, fmt.Errorf("materials: missing coordinates for %s atom %d", sp, a)
			}
			cols := strings.Fields(line)
			if len(cols) != 3 {
				return nil, fmt.Errorf("materials: coordinate line %q", line)
			}
			var pos [3]float64
			for d, c := range cols {
				v, err := strconv.ParseFloat(c, 64)
				if err != nil {
					return nil, fmt.Errorf("materials: coordinate %q: %w", c, err)
				}
				pos[d] = wrap01(v)
			}
			s.Species = append(s.Species, sp)
			s.Frac = append(s.Frac, pos)
		}
	}
	if total != len(s.Species) {
		return nil, fmt.Errorf("materials: expected %d atoms, parsed %d", total, len(s.Species))
	}
	return s, s.Validate()
}

// ClassCounts tallies class labels across structures (imbalance
// diagnostics), sorted by class name.
func ClassCounts(structs []*Structure) map[string]int {
	out := make(map[string]int)
	for _, s := range structs {
		out[s.Class]++
	}
	return out
}

// SortedClasses lists the classes present, sorted.
func SortedClasses(structs []*Structure) []string {
	set := ClassCounts(structs)
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
