// Package augment implements data-augmentation transforms for image-like
// scientific samples (paper §2.1: "where scientific datasets contain an
// insufficient number of samples, certain data augmentation techniques may
// be employed … such as rotating images, adding noise, and generating
// synthetic samples").
package augment

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Rotate90 rotates a rank-2 tensor by quarter turns counter-clockwise
// (turns may be negative) and returns a new tensor.
func Rotate90(t *tensor.Tensor, turns int) (*tensor.Tensor, error) {
	if t.Rank() != 2 {
		return nil, fmt.Errorf("augment: Rotate90 needs rank 2, got %d", t.Rank())
	}
	turns = ((turns % 4) + 4) % 4
	out := t.Clone()
	for k := 0; k < turns; k++ {
		h, w := out.Dim(0), out.Dim(1)
		rot := tensor.New(w, h)
		for i := 0; i < h; i++ {
			for j := 0; j < w; j++ {
				// CCW: (i,j) -> (w-1-j, i)
				rot.Set(out.At(i, j), w-1-j, i)
			}
		}
		out = rot
	}
	return out, nil
}

// FlipHorizontal mirrors a rank-2 tensor left-right into a new tensor.
func FlipHorizontal(t *tensor.Tensor) (*tensor.Tensor, error) {
	if t.Rank() != 2 {
		return nil, fmt.Errorf("augment: FlipHorizontal needs rank 2, got %d", t.Rank())
	}
	h, w := t.Dim(0), t.Dim(1)
	out := tensor.New(h, w)
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			out.Set(t.At(i, j), i, w-1-j)
		}
	}
	return out, nil
}

// FlipVertical mirrors a rank-2 tensor top-bottom into a new tensor.
func FlipVertical(t *tensor.Tensor) (*tensor.Tensor, error) {
	if t.Rank() != 2 {
		return nil, fmt.Errorf("augment: FlipVertical needs rank 2, got %d", t.Rank())
	}
	h, w := t.Dim(0), t.Dim(1)
	out := tensor.New(h, w)
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			out.Set(t.At(i, j), h-1-i, j)
		}
	}
	return out, nil
}

// AddGaussianNoise returns a copy of t with N(0, sigma²) noise added to
// every non-NaN element, using the given seed.
func AddGaussianNoise(t *tensor.Tensor, sigma float64, seed int64) (*tensor.Tensor, error) {
	if sigma < 0 {
		return nil, fmt.Errorf("augment: negative sigma %v", sigma)
	}
	rng := rand.New(rand.NewSource(seed))
	out := t.Clone()
	data := out.Data()
	for i, v := range data {
		if !math.IsNaN(v) {
			data[i] = v + rng.NormFloat64()*sigma
		}
	}
	return out, nil
}

// Mixup blends two same-shape samples: out = lambda*a + (1-lambda)*b.
// Lambda must lie in [0,1].
func Mixup(a, b *tensor.Tensor, lambda float64) (*tensor.Tensor, error) {
	if !tensor.SameShape(a, b) {
		return nil, fmt.Errorf("augment: mixup shape mismatch %v vs %v", a.Shape(), b.Shape())
	}
	if lambda < 0 || lambda > 1 {
		return nil, fmt.Errorf("augment: lambda %v out of [0,1]", lambda)
	}
	out := a.Clone()
	bd := b.Data()
	for i := range out.Data() {
		out.Data()[i] = lambda*out.Data()[i] + (1-lambda)*bd[i]
	}
	return out, nil
}

// Policy is a reproducible augmentation plan applied to a pool of samples.
type Policy struct {
	Rotations  bool    // include all three nontrivial quarter turns
	Flips      bool    // include horizontal and vertical mirrors
	NoiseSigma float64 // if > 0, include one noisy copy per sample
	MixupPairs int     // number of random mixup synthetics to add
	Seed       int64
}

// Apply expands samples according to the policy. The original samples are
// always first in the output, so labels can be extended in parallel by the
// caller using ExpandLabels.
func (p Policy) Apply(samples []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(samples) == 0 {
		return nil, errors.New("augment: empty sample pool")
	}
	out := append([]*tensor.Tensor(nil), samples...)
	for _, s := range samples {
		if p.Rotations {
			for _, turns := range []int{1, 2, 3} {
				r, err := Rotate90(s, turns)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
		}
		if p.Flips {
			fh, err := FlipHorizontal(s)
			if err != nil {
				return nil, err
			}
			fv, err := FlipVertical(s)
			if err != nil {
				return nil, err
			}
			out = append(out, fh, fv)
		}
		if p.NoiseSigma > 0 {
			n, err := AddGaussianNoise(s, p.NoiseSigma, p.Seed)
			if err != nil {
				return nil, err
			}
			out = append(out, n)
		}
	}
	if p.MixupPairs > 0 {
		rng := rand.New(rand.NewSource(p.Seed))
		for k := 0; k < p.MixupPairs; k++ {
			i, j := rng.Intn(len(samples)), rng.Intn(len(samples))
			lam := rng.Float64()
			m, err := Mixup(samples[i], samples[j], lam)
			if err != nil {
				return nil, err
			}
			out = append(out, m)
		}
	}
	return out, nil
}

// Multiplier returns how many outputs Apply produces per input sample
// (mixup synthetics excluded since they are pool-level).
func (p Policy) Multiplier() int {
	m := 1
	if p.Rotations {
		m += 3
	}
	if p.Flips {
		m += 2
	}
	if p.NoiseSigma > 0 {
		m++
	}
	return m
}

// ExpandLabels repeats per-sample labels to match Policy.Apply output
// order: originals first, then per-sample variants, then mixup synthetics
// labeled by their (deterministic) dominant parent.
func (p Policy) ExpandLabels(labels []string) ([]string, error) {
	if len(labels) == 0 {
		return nil, errors.New("augment: empty labels")
	}
	out := append([]string(nil), labels...)
	perSample := p.Multiplier() - 1
	for _, l := range labels {
		for k := 0; k < perSample; k++ {
			out = append(out, l)
		}
	}
	if p.MixupPairs > 0 {
		rng := rand.New(rand.NewSource(p.Seed))
		for k := 0; k < p.MixupPairs; k++ {
			i, j := rng.Intn(len(labels)), rng.Intn(len(labels))
			lam := rng.Float64()
			if lam >= 0.5 {
				out = append(out, labels[i])
			} else {
				out = append(out, labels[j])
			}
		}
	}
	return out, nil
}
