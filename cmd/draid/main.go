// Command draid serves dataset readiness as a facility service: domain
// templates from the registry, asynchronous pipeline jobs on a bounded
// worker pool, trained-side batch streaming from completed jobs' shard
// sets, and Prometheus-style metrics.
//
// Usage:
//
//	draid                          # listen on :8080 with 4 workers, in-memory
//	draid -addr :9000 -workers 8 -cache-mb 256
//	draid -data-dir /var/lib/draid -job-ttl 24h -max-jobs 100
//	draid -data-dir /mnt/pfs/draid -node-id n1 -advertise http://host1:8080 \
//	      -peers n1=http://host1:8080,n2=http://host2:8080,n3=http://host3:8080
//
// With -data-dir, completed jobs' shard sets are written to
// <data-dir>/jobs/<id> with an atomic MANIFEST.json and every job
// transition is appended to a job log; a restarted draid replays the
// log and re-serves completed jobs from disk. -job-ttl and -max-jobs
// evict idle completed jobs (deleting their shard directories) so
// retained state stays bounded. -requeue resubmits jobs interrupted by
// a crash instead of marking them failed.
//
// With -peers, draid joins a static fleet: jobs are routed to their
// consistent-hash owner (submissions and all /v1/jobs/{id}/* requests
// are transparently proxied, or 307-redirected when the client sends
// "X-Draid-Route: redirect"), every member must point -data-dir at the
// same shared/parallel filesystem, and a dead member's jobs are adopted
// by the survivors via job-log replay from that shared dir.
//
// Every domain streams: each template registers a wire codec
// (internal/domain), so climate/bio loader samples, fusion windowed
// TFRecord Examples, and materials BP graph records all serve as NDJSON
// batches tagged with their payload "kind". /v1/templates reports each
// domain's kind so clients pick a decoder up front.
//
// API:
//
//	GET  /v1/templates               list domain templates (+ wire kind, servable)
//	POST /v1/jobs                    submit {"domain":"climate", ...}
//	GET  /v1/jobs                    list jobs (fleet-merged; ?scope=local for this node)
//	GET  /v1/jobs/{id}               job state + readiness trajectory + wire kind
//	GET  /v1/jobs/{id}/provenance    lineage report (JSON)
//	GET  /v1/jobs/{id}/events        lifecycle timeline (submitted → queued → running → ...)
//	GET  /v1/jobs/{id}/batches       stream NDJSON training batches
//	     ?batch_size=&max_batches=&cursor=<shard>:<record>  (resume point)
//	     &max_kbps=<KiB/s>           (token-bucket pacing, capped by -serve-max-kbps)
//	GET  /v1/cluster                 fleet membership + ownership (?job=<id>)
//	GET  /v1/traces                  this node's recent + tail-sampled traces
//	     ?min_ms=&error=true&limit=  (slow/error filters)
//	GET  /v1/traces/{id}             fleet-assembled span tree for one trace
//	GET  /v1/audit/roots             this node's published Merkle audit roots
//	GET  /v1/audit/proof?seq=N       inclusion proof for one audit record
//	GET  /metrics                    serving + pipeline + cluster metrics (with exemplars)
//	GET  /healthz                    liveness (also the fleet probe target)
//
// With -tenants, every request (bar /healthz and /metrics) must carry a
// registered tenant's bearer token; jobs, traces, and audit records are
// scoped to the owning tenant (admin tenants see everything), per-tenant
// job/byte quotas apply, and -serve-budget-kbps splits a global bandwidth
// budget across active tenants by weight. With -data-dir, every
// submission, stream open, eviction, and auth failure is appended to a
// hash-chained audit ledger whose Merkle batch roots are published on
// /v1/audit/roots for offline verification.
//
// Every request carries an X-Draid-Trace ID (inherited from the client
// or generated) that is echoed in the response, logged, and propagated
// across fleet hops — plus a span tree recording where its time went
// (queue wait, shard loads, per-batch encodes, pacing stalls, proxy
// hops), browsable via /v1/traces. Traces slower than -trace-slow or
// ending in error are tail-sampled into a notable ring and logged at
// Info. -debug additionally mounts /debug/pprof, exports runtime
// gauges on /metrics, and logs per-request debug lines.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/tenant"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "concurrent pipeline executions")
	queueDepth := flag.Int("queue", 64, "max queued jobs before submissions get 429")
	cacheMB := flag.Int64("cache-mb", 128, "deprecated: use -serve-cache-mb; decoded-shard cache budget in MiB, summed with -frame-cache-mb into the unified serve cache")
	frameCacheMB := flag.Int64("frame-cache-mb", 128, "deprecated: use -serve-cache-mb; encoded-frame cache budget in MiB, summed with -cache-mb into the unified serve cache")
	serveCacheMB := flag.Int64("serve-cache-mb", 256, "unified serving-cache budget in MiB, shared by the decoded-shard and encoded-frame caches under weighted eviction (0 disables both)")
	serveMaxKBps := flag.Int("serve-max-kbps", 0, "per-stream batch throughput ceiling in KiB/s (0 = unpaced; clients can lower theirs with ?max_kbps=)")
	serveBudgetKBps := flag.Int("serve-budget-kbps", 0, "global weighted-fair bandwidth budget in KiB/s shared by all batch streams: split across active tenants by weight, then evenly across each tenant's streams (0 = per-stream pacing only)")
	tenantsFile := flag.String("tenants", "", "tenant config file (JSON: id, token, weight, admin, quotas); enables bearer-token auth and per-tenant scoping — the file must be chmod 0600")
	ledgerBatch := flag.Int("ledger-batch", 0, "audit ledger Merkle batch size in records per published root (0 = default 64; requires -data-dir)")
	ledgerFlush := flag.Duration("ledger-flush", 0, "audit ledger group-commit window: how long the first appender waits for followers before one fsync covers all (0 = default 2ms; negative syncs every append)")
	dataDir := flag.String("data-dir", "", "durable root for shard sets + job log (empty keeps jobs in memory)")
	jobTTL := flag.Duration("job-ttl", 0, "evict completed jobs idle this long, deleting their shards (0 disables)")
	maxJobs := flag.Int("max-jobs", 0, "max retained completed jobs; least recently served evicted first (0 = unbounded)")
	requeue := flag.Bool("requeue", false, "resubmit jobs interrupted by a crash instead of marking them failed")
	nodeID := flag.String("node-id", "", "fleet member ID (requires -peers)")
	advertise := flag.String("advertise", "", "base URL peers reach this node at, e.g. http://host1:8080")
	peers := flag.String("peers", "", "static fleet membership as id=url,id=url,... (includes or implies self)")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per fleet member on the hash ring")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "fleet liveness probe spacing")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	traceSlow := flag.Duration("trace-slow", 250*time.Millisecond, "tail-sampling threshold: requests at least this slow (or erroring) keep their trace in the notable ring and log at Info")
	traceSpans := flag.Int("trace-spans", 4096, "completed spans retained in the recent ring")
	traceNotable := flag.Int("trace-notable", 32, "tail-sampled slow/error traces retained")
	debug := flag.Bool("debug", false, "mount /debug/pprof, export runtime gauges, log per-request debug lines")
	flag.Parse()
	log.SetFlags(0)

	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	serveCacheBytes, cacheNote, err := resolveCacheBudget(*serveCacheMB, *cacheMB, *frameCacheMB,
		setFlags["serve-cache-mb"], setFlags["cache-mb"] || setFlags["frame-cache-mb"])
	if err != nil {
		log.Fatalf("draid: %v", err)
	}
	if cacheNote != "" {
		log.Printf("draid: %s", cacheNote)
	}

	logLevel := slog.LevelInfo
	if *debug {
		logLevel = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: logLevel}))

	var reg *tenant.Registry
	if *tenantsFile != "" {
		var err error
		reg, err = tenant.Load(*tenantsFile)
		if err != nil {
			log.Fatalf("draid: %v", err)
		}
	}

	var cl *cluster.Cluster
	if *peers != "" {
		var err error
		cl, err = buildCluster(*peers, *nodeID, *advertise, *vnodes, *probeInterval)
		if err != nil {
			log.Fatalf("draid: %v", err)
		}
		if *dataDir == "" {
			log.Fatalf("draid: -peers requires -data-dir on a filesystem shared by the fleet")
		}
	} else if *nodeID != "" {
		log.Fatalf("draid: -node-id is meaningless without -peers")
	}

	s, err := server.New(server.Options{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		ServeCacheBytes: serveCacheBytes,
		ServeMaxKBps:    *serveMaxKBps,
		ServeBudgetKBps: *serveBudgetKBps,
		Tenants:         reg,
		LedgerBatch:     *ledgerBatch,
		LedgerFlushWait: *ledgerFlush,
		DataDir:         *dataDir,
		JobTTL:          *jobTTL,
		MaxJobs:         *maxJobs,
		Requeue:         *requeue,
		Cluster:         cl,
		TraceSlow:       *traceSlow,
		TraceSpans:      *traceSpans,
		TraceNotable:    *traceNotable,
		Debug:           *debug,
		Logger:          logger,
	})
	if err != nil {
		log.Fatalf("draid: %v", err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	durability := "in-memory jobs"
	if *dataDir != "" {
		durability = "data dir " + *dataDir
	}
	if cl != nil {
		durability += fmt.Sprintf(", fleet member %s of %d", cl.Self().ID, len(cl.Nodes()))
	}
	log.Printf("draid: listening on %s (%d workers, %d MiB serve cache, %s)", *addr, *workers, serveCacheBytes>>20, durability)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("draid: %v", err)
		}
	case got := <-sig:
		log.Printf("draid: %v — draining (up to %s)", got, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("draid: shutdown: %v", err)
		}
		s.Close()
		log.Printf("draid: stopped")
	}
}

// resolveCacheBudget maps the cache flags onto the server's unified
// serving-cache budget (bytes). -serve-cache-mb wins when set
// explicitly; the deprecated split flags (-cache-mb, -frame-cache-mb)
// otherwise sum into the budget so existing invocations keep roughly
// the memory ceiling they asked for. Negative values on any cache flag
// are rejected up front — a negative MiB count shifted left silently
// becomes a huge positive byte budget otherwise. The returned note, if
// non-empty, is a compatibility message to log at startup.
func resolveCacheBudget(serveMB, cacheMB, frameMB int64, serveSet, splitSet bool) (int64, string, error) {
	for _, f := range []struct {
		name string
		v    int64
	}{
		{"-serve-cache-mb", serveMB}, {"-cache-mb", cacheMB}, {"-frame-cache-mb", frameMB},
	} {
		if f.v < 0 {
			return 0, "", fmt.Errorf("%s must be >= 0 (MiB), got %d", f.name, f.v)
		}
	}
	if serveSet {
		note := ""
		if splitSet {
			note = "-cache-mb/-frame-cache-mb are deprecated and ignored because -serve-cache-mb is set"
		}
		return serveMB << 20, note, nil
	}
	if splitSet {
		return (cacheMB + frameMB) << 20, fmt.Sprintf(
			"-cache-mb/-frame-cache-mb are deprecated; using their sum as -serve-cache-mb %d", cacheMB+frameMB), nil
	}
	return serveMB << 20, "", nil
}

// buildCluster parses "-peers id=url,..." into a fleet view. Self is
// taken from -node-id and must either appear in the list or be added
// implicitly from -advertise.
func buildCluster(peers, nodeID, advertise string, vnodes int, probe time.Duration) (*cluster.Cluster, error) {
	if nodeID == "" {
		return nil, errors.New("-peers requires -node-id")
	}
	var nodes []cluster.Node
	selfListed := false
	for _, part := range strings.Split(peers, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-peers entry %q: want id=url", part)
		}
		nodes = append(nodes, cluster.Node{ID: strings.TrimSpace(id), URL: strings.TrimSpace(url)})
		if strings.TrimSpace(id) == nodeID {
			selfListed = true
		}
	}
	if !selfListed {
		if advertise == "" {
			return nil, fmt.Errorf("-node-id %s is not in -peers; add it there or set -advertise", nodeID)
		}
		nodes = append(nodes, cluster.Node{ID: nodeID, URL: advertise})
	}
	return cluster.New(cluster.Config{
		Self:          nodeID,
		Nodes:         nodes,
		VNodes:        vnodes,
		ProbeInterval: probe,
	})
}
