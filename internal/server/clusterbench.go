// Multi-node serving benchmark: stands up an in-process draid fleet
// over one shared data dir (or one shared simulated parallel FS),
// submits jobs round-robin so consistent hashing spreads them across
// members, then streams every job through randomly-assigned members so
// most reads cross the proxy — the number that comes out is fleet
// serving throughput including routing cost, the scale-out counterpart
// of RunServeBenchmark's single-node number.
package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/parfs"
	"repro/internal/shard"
)

// ClusterBenchConfig parameterizes RunClusterBenchmark.
type ClusterBenchConfig struct {
	// Nodes is the fleet size (<=0 → 3).
	Nodes int
	// Jobs are submitted round-robin across members (<=0 → 2*Nodes).
	Jobs int
	// Clients is the number of concurrent streaming readers (required).
	Clients int
	// BatchSize is samples per NDJSON batch line (<=0 → 16).
	BatchSize int
	// Passes is how many times each client streams every job (<=0 → 1).
	Passes int
	// Backend picks shared storage: "fs" (default; one shared directory,
	// the parallel-filesystem deployment shape) or "parfs" (shards ride
	// the simulated striped FS so OST contention is in the measurement).
	Backend string
	// DataDir roots the shared dir; empty uses a temp dir.
	DataDir string
}

// ClusterBenchResult reports one fleet throughput run; JSON field names
// are the BENCH_cluster.json schema.
type ClusterBenchResult struct {
	Nodes         int            `json:"nodes"`
	Jobs          int            `json:"jobs"`
	Clients       int            `json:"clients"`
	BatchSize     int            `json:"batch_size"`
	Backend       string         `json:"backend"`
	JobsPerNode   map[string]int `json:"jobs_per_node"`
	Batches       int64          `json:"batches"`
	Samples       int64          `json:"samples"`
	Bytes         int64          `json:"bytes"`
	Seconds       float64        `json:"seconds"`
	BytesPerSec   float64        `json:"bytes_per_sec"`
	BatchesPerSec float64        `json:"batches_per_sec"`
	Proxied       int64          `json:"proxied_requests"`
}

// Render formats the result for benchreport's console output.
func (r *ClusterBenchResult) Render() string {
	owners := make([]string, 0, len(r.JobsPerNode))
	for id := range r.JobsPerNode {
		owners = append(owners, id)
	}
	sort.Strings(owners)
	dist := ""
	for _, id := range owners {
		dist += fmt.Sprintf(" %s=%d", id, r.JobsPerNode[id])
	}
	return fmt.Sprintf(
		"Cluster serving throughput — %d nodes, %d jobs, %d clients, batch size %d, %s backend:\n"+
			"  ownership:%s\n"+
			"  %d batches (%d samples, %d bytes) in %.3fs — %.2f MiB/s, %.0f batches/s\n"+
			"  %d requests crossed the proxy\n",
		r.Nodes, r.Jobs, r.Clients, r.BatchSize, r.Backend, dist,
		r.Batches, r.Samples, r.Bytes, r.Seconds,
		r.BytesPerSec/(1024*1024), r.BatchesPerSec, r.Proxied)
}

// RunClusterBenchmark measures fleet streaming throughput end to end:
// submissions route to their hash owners, streams mostly cross the
// proxy, and all shard traffic lands on the shared backend.
func RunClusterBenchmark(cfg ClusterBenchConfig) (*ClusterBenchResult, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("server: clients=%d must be positive", cfg.Clients)
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 2 * cfg.Nodes
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.Passes <= 0 {
		cfg.Passes = 1
	}
	if cfg.Backend == "" {
		cfg.Backend = "fs"
	}
	dataDir := cfg.DataDir
	if dataDir == "" {
		tmp, err := os.MkdirTemp("", "draid-clusterbench-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dataDir = tmp
	}
	var newStore func(string) (shard.Store, error)
	switch cfg.Backend {
	case "fs":
	case "parfs":
		fs, err := parfs.New(parfs.DefaultConfig())
		if err != nil {
			return nil, err
		}
		// One simulated striped FS shared by the whole fleet; each job
		// mounts its own prefix, so members contend on OSTs, not names.
		newStore = func(jobID string) (shard.Store, error) {
			return shard.NewParfsSink(fs.Sub("jobs/" + jobID)), nil
		}
	default:
		return nil, fmt.Errorf("server: unknown cluster backend %q (want fs|parfs)", cfg.Backend)
	}

	fleet, err := startBenchFleet(cfg.Nodes, dataDir, newStore)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, f := range fleet {
			f.ts.Close()
			f.s.Close()
		}
	}()

	res := &ClusterBenchResult{
		Nodes: cfg.Nodes, Jobs: cfg.Jobs, Clients: cfg.Clients,
		BatchSize: cfg.BatchSize, Backend: cfg.Backend,
		JobsPerNode: make(map[string]int),
	}

	ids := make([]string, cfg.Jobs)
	for i := range ids {
		id, err := SubmitAndWait(fleet[i%len(fleet)].ts.URL, JobSpec{
			Domain: core.Climate, Name: fmt.Sprintf("cbench-%d", i), Seed: int64(i + 1),
		}, 120*time.Second)
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	for _, id := range ids {
		owner := fleet[0].s.opts.Cluster.Owner(id)
		res.JobsPerNode[owner.ID]++
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		rr       atomic.Int64
	)
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := 0; p < cfg.Passes; p++ {
				for _, id := range ids {
					// Rotate entry nodes so ~(N-1)/N of streams proxy.
					entry := fleet[int(rr.Add(1))%len(fleet)]
					url := fmt.Sprintf("%s/v1/jobs/%s/batches?batch_size=%d", entry.ts.URL, id, cfg.BatchSize)
					batches, samples, n, err := StreamBatches(url)
					mu.Lock()
					if err != nil && firstErr == nil {
						firstErr = err
					}
					res.Batches += batches
					res.Samples += samples
					res.Bytes += n
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	res.Seconds = time.Since(start).Seconds()
	if firstErr != nil {
		return nil, firstErr
	}
	if res.Seconds > 0 {
		res.BytesPerSec = float64(res.Bytes) / res.Seconds
		res.BatchesPerSec = float64(res.Batches) / res.Seconds
	}
	for _, f := range fleet {
		res.Proxied += int64(f.s.metrics.clusterProxied.Value())
	}
	return res, nil
}

// benchNode is one fleet member of the benchmark harness.
type benchNode struct {
	s  *Server
	ts *httptest.Server
}

// startBenchFleet wires n members over one shared dir, resolving the
// peers-need-URLs-first cycle with handlers swapped in after creation.
func startBenchFleet(n int, dataDir string, newStore func(string) (shard.Store, error)) ([]*benchNode, error) {
	holders := make([]atomic.Pointer[http.Handler], n)
	fleet := make([]*benchNode, n)
	nodes := make([]cluster.Node, n)
	for i := 0; i < n; i++ {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h := holders[i].Load()
			if h == nil {
				http.Error(w, "node starting", http.StatusServiceUnavailable)
				return
			}
			(*h).ServeHTTP(w, r)
		}))
		fleet[i] = &benchNode{ts: ts}
		nodes[i] = cluster.Node{ID: fmt.Sprintf("b%d", i+1), URL: ts.URL}
	}
	for i := 0; i < n; i++ {
		cl, err := cluster.New(cluster.Config{
			Self:          nodes[i].ID,
			Nodes:         nodes,
			ProbeInterval: 500 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		s, err := New(Options{
			Workers: 2, CacheBytes: 64 << 20, DataDir: dataDir,
			Cluster: cl, NewStore: newStore,
		})
		if err != nil {
			return nil, err
		}
		fleet[i].s = s
		h := s.Handler()
		holders[i].Store(&h)
	}
	return fleet, nil
}
