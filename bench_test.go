// Package repro's root benchmarks regenerate every paper artifact under
// the Go benchmark harness — one benchmark per figure/table plus the
// quantitative claims. Ablation benchmarks for individual design choices
// live next to their packages (shard compression, loader shuffle buffer,
// GRIB bit width, parfs striping, parallel regridding).
//
// Run: go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/formats/grib"
	"repro/internal/formats/tfrecord"
)

// BenchmarkFigure1PipelineStages times the full Figure 1 raw→AI-ready
// flow (clean → normalize → augment → label → feature → split → shard).
func BenchmarkFigure1PipelineStages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig1(24, 16, 32, 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.FinalLevel != core.AIReady {
			b.Fatalf("final=%v", res.FinalLevel)
		}
	}
}

// Table 1: one benchmark per domain archetype pipeline.

func BenchmarkTable1Climate(b *testing.B)   { benchDomain(b, core.Climate) }
func BenchmarkTable1Fusion(b *testing.B)    { benchDomain(b, core.Fusion) }
func BenchmarkTable1Bio(b *testing.B)       { benchDomain(b, core.BioHealth) }
func BenchmarkTable1Materials(b *testing.B) { benchDomain(b, core.Materials) }

func benchDomain(b *testing.B, domain core.Domain) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable1(1)
		if err != nil {
			b.Fatal(err)
		}
		found := false
		for _, r := range rows {
			if r.Domain == domain {
				found = true
				b.ReportMetric(float64(r.Records), "records")
				if r.FinalLevel != core.AIReady {
					b.Fatalf("%s final=%v", domain, r.FinalLevel)
				}
			}
		}
		if !found {
			b.Fatalf("domain %s missing", domain)
		}
	}
}

// BenchmarkTable2Assessment times the maturity-matrix assessment that
// places a dataset on the Table 2 grid.
func BenchmarkTable2Assessment(b *testing.B) {
	facts := core.Facts{Acquired: true, StandardFormat: true, Validated: true,
		AlignedGrids: true, Normalized: true, LabelCoverage: 0.5, MetadataFields: 5}
	th := core.DefaultThresholds()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := core.Assess(facts, th)
		if a.Level != core.Labeled {
			b.Fatalf("level=%v", a.Level)
		}
	}
}

// BenchmarkParallelShardingScaling is the C1 experiment: sharding a fixed
// volume across worker counts on the simulated striped parallel FS.
func BenchmarkParallelShardingScaling(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				points, err := experiments.RunScaling(8, []int{workers}, 8)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(points[0].Throughput, "MiB/s")
			}
		})
	}
}

// BenchmarkCurationComparison is the C2 experiment: manual-equivalent vs
// automated fusion preparation.
func BenchmarkCurationComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCuration(4, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.ManualCurationShare, "%curation")
		b.ReportMetric(res.AutoSpeedup, "auto-speedup")
	}
}

// BenchmarkFeedbackLoop is the C3 experiment: the iterative
// pseudo-labeling loop from 10% seed labels.
func BenchmarkFeedbackLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFeedback(400, 1)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rounds[len(res.Rounds)-1]
		b.ReportMetric(100*last.Coverage, "%coverage")
	}
}

// BenchmarkGRIBPacking ablates the packing bit-width (size/error
// trade-off of the encoded-gridded-binary ingest format).
func BenchmarkGRIBPacking(b *testing.B) {
	vals := make([]float64, 64*128)
	for i := range vals {
		vals[i] = 250 + float64(i%331)*0.21
	}
	for _, bits := range []int{8, 12, 16, 24} {
		b.Run(fmt.Sprintf("bits%d", bits), func(b *testing.B) {
			b.SetBytes(int64(len(vals) * 8))
			var size int
			for i := 0; i < b.N; i++ {
				enc, err := grib.Encode(vals, 128, 64, bits)
				if err != nil {
					b.Fatal(err)
				}
				size = len(enc)
			}
			b.ReportMetric(float64(size), "bytes")
		})
	}
}

// BenchmarkTFRecordRecordSize ablates record size against framing
// overhead (16 bytes per record).
func BenchmarkTFRecordRecordSize(b *testing.B) {
	for _, size := range []int{256, 4096, 65536} {
		b.Run(fmt.Sprintf("rec%d", size), func(b *testing.B) {
			rec := make([]byte, size)
			w := tfrecord.NewWriter(discard{})
			b.SetBytes(int64(size))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := w.Write(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
