// Serving-throughput benchmark harness: stands up a draid server over
// httptest, prepares one completed job, then hammers the batch endpoint
// with N concurrent streaming clients. Shared by the Go benchmark, the
// end-to-end tests, and cmd/benchreport's BENCH_serve.json artifact, so
// future PRs track serving speed with one number.
package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/parfs"
	"repro/internal/shard"
	"repro/pkg/client"
)

// ServeBenchResult reports one throughput run; JSON field names are the
// BENCH_serve.json schema.
type ServeBenchResult struct {
	Clients       int     `json:"clients"`
	BatchSize     int     `json:"batch_size"`
	Backend       string  `json:"backend"`
	Domain        string  `json:"domain,omitempty"`
	Kind          string  `json:"kind,omitempty"`
	Wire          string  `json:"wire,omitempty"`
	Batches       int64   `json:"batches"`
	Samples       int64   `json:"samples"`
	Bytes         int64   `json:"bytes"`
	Seconds       float64 `json:"seconds"`
	BytesPerSec   float64 `json:"bytes_per_sec"`
	BatchesPerSec float64 `json:"batches_per_sec"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	// Latency percentiles from the server's telemetry histograms
	// (draid_first_batch_seconds, draid_batch_encode_seconds), estimated
	// by linear interpolation within histogram buckets — the same
	// estimate Prometheus histogram_quantile gives operators, so the
	// benchmark and the dashboards speak one language.
	FirstBatchP50Ms  float64 `json:"first_batch_p50_ms"`
	FirstBatchP99Ms  float64 `json:"first_batch_p99_ms"`
	BatchEncodeP50Us float64 `json:"batch_encode_p50_us"`
	BatchEncodeP99Us float64 `json:"batch_encode_p99_us"`
}

// Render formats the result for benchreport's console output.
func (r *ServeBenchResult) Render() string {
	workload := r.Backend + " store"
	if r.Domain != "" {
		workload += fmt.Sprintf(", %s (%s)", r.Domain, r.Kind)
	}
	if r.Wire != "" {
		workload += ", " + r.Wire + " wire"
	}
	return fmt.Sprintf(
		"Serving throughput — %d concurrent clients, batch size %d, %s:\n"+
			"  %d batches (%d samples, %d bytes) in %.3fs\n"+
			"  %.2f MiB/s, %.0f batches/s; shard cache %d hits / %d misses\n"+
			"  first batch p50 %.2fms / p99 %.2fms; batch encode p50 %.1fµs / p99 %.1fµs\n",
		r.Clients, r.BatchSize, workload, r.Batches, r.Samples, r.Bytes, r.Seconds,
		r.BytesPerSec/(1024*1024), r.BatchesPerSec, r.CacheHits, r.CacheMisses,
		r.FirstBatchP50Ms, r.FirstBatchP99Ms, r.BatchEncodeP50Us, r.BatchEncodeP99Us)
}

// ServeBenchConfig parameterizes RunServeBenchmark.
type ServeBenchConfig struct {
	// Clients is the number of concurrent streaming readers (required).
	Clients int
	// BatchSize is samples per NDJSON batch line.
	BatchSize int
	// MaxBatches caps each stream; <=0 streams the whole shard set.
	MaxBatches int
	// Passes is how many times each client streams; <=0 means once.
	Passes int
	// Backend picks the per-job shard store: "mem" (default), "fs"
	// (durable FSSink under DataDir or a temp dir), or "parfs" (the
	// simulated striped parallel FS, so stripe contention shows up in
	// the measurement).
	Backend string
	// DataDir roots the "fs" backend; empty uses a temp dir that is
	// removed afterwards.
	DataDir string
	// ColdCache disables the decoded-shard cache so every read hits the
	// store — required when the measurement is about the store (the
	// fs/mem gate): with the cache on, both backends serve ~all batches
	// from RAM and the ratio measures scheduler noise.
	ColdCache bool
	// Domain picks the streamed workload (and therefore the wire codec).
	// Empty means climate.
	Domain core.Domain
	// Wire picks the stream encoding: "ndjson" (default) or "frame".
	Wire string
	// FrameCacheBytes budgets the encoded-frame shard cache; <=0 leaves
	// it disabled so frame streams encode per request.
	FrameCacheBytes int64
}

// RunServeBenchmark measures concurrent streaming throughput: it
// submits one job for the configured domain (climate by default), waits
// for readiness, then runs Clients parallel readers each streaming up
// to MaxBatches batches of BatchSize records against the configured
// store backend.
func RunServeBenchmark(cfg ServeBenchConfig) (*ServeBenchResult, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("server: clients=%d must be positive", cfg.Clients)
	}
	if cfg.Passes <= 0 {
		cfg.Passes = 1
	}
	if cfg.Backend == "" {
		cfg.Backend = "mem"
	}
	if cfg.Domain == "" {
		cfg.Domain = core.Climate
	}
	if cfg.Wire == "" {
		cfg.Wire = client.WireNDJSON
	}
	plug, err := domain.Lookup(cfg.Domain)
	if err != nil {
		return nil, err
	}
	opts := Options{Workers: 2, CacheBytes: 64 << 20, FrameCacheBytes: cfg.FrameCacheBytes}
	if cfg.ColdCache {
		opts.CacheBytes = 0
	}
	switch cfg.Backend {
	case "mem":
	case "fs":
		dir := cfg.DataDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "draid-bench-")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		opts.DataDir = dir
	case "parfs":
		opts.NewStore = func(string) (shard.Store, error) {
			fs, err := parfs.New(parfs.DefaultConfig())
			if err != nil {
				return nil, err
			}
			return shard.NewParfsSink(fs), nil
		}
	default:
		return nil, fmt.Errorf("server: unknown store backend %q (want mem|fs|parfs)", cfg.Backend)
	}
	s, err := New(opts)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id, err := SubmitAndWait(ts.URL, JobSpec{Domain: cfg.Domain, Name: "serve-bench", Seed: 1}, 60*time.Second)
	if err != nil {
		return nil, err
	}

	url := fmt.Sprintf("%s/v1/jobs/%s/batches?batch_size=%d&max_batches=%d", ts.URL, id, cfg.BatchSize, cfg.MaxBatches)
	res := &ServeBenchResult{Clients: cfg.Clients, BatchSize: cfg.BatchSize, Backend: cfg.Backend,
		Domain: string(cfg.Domain), Kind: plug.Codec.Kind(), Wire: cfg.Wire}
	if err := measureStreams(res, url, cfg.Wire, cfg.Clients, cfg.Passes); err != nil {
		return nil, err
	}
	cs := s.cache.Stats()
	res.CacheHits, res.CacheMisses = cs.Hits, cs.Misses
	s.fillLatencies(res)
	return res, nil
}

// fillLatencies reads the serve-latency histogram quantiles for the
// result's domain × wire off the server's telemetry registry.
func (s *Server) fillLatencies(res *ServeBenchResult) {
	fb := s.metrics.firstBatch.With(res.Domain, res.Wire)
	res.FirstBatchP50Ms = fb.Quantile(0.5) * 1e3
	res.FirstBatchP99Ms = fb.Quantile(0.99) * 1e3
	enc := s.metrics.batchEncode.With(res.Domain, res.Wire)
	res.BatchEncodeP50Us = enc.Quantile(0.5) * 1e6
	res.BatchEncodeP99Us = enc.Quantile(0.99) * 1e6
}

// measureStreams hammers one batch URL with clients×passes concurrent
// streams in the given wire format, filling res's throughput fields.
func measureStreams(res *ServeBenchResult, url, wire string, clients, passes int) error {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := 0; p < passes; p++ {
				batches, samples, n, _, err := streamConsume(url, "", wire)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				res.Batches += batches
				res.Samples += samples
				res.Bytes += n
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Seconds = time.Since(start).Seconds()
	if firstErr != nil {
		return firstErr
	}
	if res.Seconds > 0 {
		res.BytesPerSec = float64(res.Bytes) / res.Seconds
		res.BatchesPerSec = float64(res.Batches) / res.Seconds
	}
	return nil
}

// WireComparison pairs one domain's NDJSON and binary-frame runs over
// identical load, with the frame-over-NDJSON record-rate ratio — the
// number that says what the binary negotiation buys per codec.
type WireComparison struct {
	NDJSON *ServeBenchResult `json:"ndjson"`
	Frame  *ServeBenchResult `json:"frame"`
	// FrameOverNDJSON is frame records/sec divided by NDJSON
	// records/sec, measured in the same run.
	FrameOverNDJSON float64 `json:"frame_over_ndjson"`
}

// FrameCachedComparison pairs one domain's frame-wire runs with the
// encoded-frame cache off (encode per request) and on (payload slices
// off the cache), over the same fs-backend dataset — the number that
// says what zero-copy serving buys.
type FrameCachedComparison struct {
	Frame       *ServeBenchResult `json:"frame"`
	FrameCached *ServeBenchResult `json:"frame_cached"`
	// CachedOverFrame is cached-frame records/sec divided by
	// encode-per-request records/sec, measured in the same run.
	CachedOverFrame float64 `json:"frame_cached_over_frame"`
}

// FrameDiskComparison pairs one domain's fully-cold frame-wire runs —
// both caches empty on every request — served by decode+encode vs by
// streaming the on-store frame sidecar (domain.Sidecar), over the same
// fs-backend dataset. The ratio says what the disk tier buys when
// nothing is warm.
type FrameDiskComparison struct {
	Encode *ServeBenchResult `json:"encode"`
	Disk   *ServeBenchResult `json:"disk"`
	// DiskOverEncode is sidecar-served records/sec divided by cold
	// decode+encode records/sec, measured in the same run.
	DiskOverEncode float64 `json:"frame_disk_over_encode"`
}

// ServeBenchReport pairs a same-process mem-backend and fs-backend run;
// it is the BENCH_serve.json schema. The CI gate compares FSOverMem —
// how much of the in-memory serving rate survives the durable store —
// because that ratio is a property of the code path, not of how fast
// the machine running the benchmark happens to be.
type ServeBenchReport struct {
	Mem *ServeBenchResult `json:"mem"`
	FS  *ServeBenchResult `json:"fs"`
	// FSOverMem is samples/sec with the fs backend divided by
	// samples/sec with the mem backend, measured in the same run.
	FSOverMem float64 `json:"fs_over_mem"`
	// Codecs is the per-codec × per-wire throughput dimension: one
	// mem-backend NDJSON run and one frame run per registered domain,
	// keyed by domain name. Informational — the regression gate stays
	// on FSOverMem.
	Codecs map[string]*WireComparison `json:"codecs,omitempty"`
	// FrameCached is the zero-copy dimension: fusion frame streams off
	// the fs backend with the encoded-frame cache off vs on. Gated by
	// cmd/benchreport -compare on CachedOverFrame.
	FrameCached *FrameCachedComparison `json:"frame_cached,omitempty"`
	// FrameDisk is the disk-tier dimension: fully-cold frame streams off
	// the fs backend served from shard sidecars vs by decode+encode,
	// keyed by domain name. Gated by cmd/benchreport -compare on
	// DiskOverEncode once the baseline carries it.
	FrameDisk map[string]*FrameDiskComparison `json:"frame_disk,omitempty"`
}

// Render formats both runs, the gate ratio, and the per-codec sweep.
func (r *ServeBenchReport) Render() string {
	out := r.Mem.Render() + r.FS.Render() +
		fmt.Sprintf("fs/mem serve-throughput ratio: %.3f\n", r.FSOverMem)
	if len(r.Codecs) > 0 {
		out += "per-codec wire throughput (mem backend):\n"
		names := make([]string, 0, len(r.Codecs))
		for name := range r.Codecs {
			names = append(names, name)
		}
		sort.Strings(names)
		rate := func(res *ServeBenchResult) float64 {
			if res == nil || res.Seconds == 0 {
				return 0
			}
			return float64(res.Samples) / res.Seconds
		}
		for _, name := range names {
			c := r.Codecs[name]
			out += fmt.Sprintf("  %-12s %-18s ndjson %8.0f rec/s  frame %8.0f rec/s  frame/ndjson %.2fx\n",
				name, "("+c.NDJSON.Kind+")", rate(c.NDJSON), rate(c.Frame), c.FrameOverNDJSON)
		}
	}
	if fc := r.FrameCached; fc != nil {
		rate := func(res *ServeBenchResult) float64 {
			if res == nil || res.Seconds == 0 {
				return 0
			}
			return float64(res.Samples) / res.Seconds
		}
		out += fmt.Sprintf("encoded-frame cache (%s, %s backend):\n"+
			"  per-request encode %8.0f rec/s  cached slices %8.0f rec/s  cached/encode %.2fx\n"+
			"  encode p99 %.1fµs -> %.1fµs\n",
			fc.Frame.Domain, fc.Frame.Backend, rate(fc.Frame), rate(fc.FrameCached),
			fc.CachedOverFrame, fc.Frame.BatchEncodeP99Us, fc.FrameCached.BatchEncodeP99Us)
	}
	if len(r.FrameDisk) > 0 {
		rate := func(res *ServeBenchResult) float64 {
			if res == nil || res.Seconds == 0 {
				return 0
			}
			return float64(res.Samples) / res.Seconds
		}
		out += "frame sidecar disk tier (cold caches, fs backend):\n"
		names := make([]string, 0, len(r.FrameDisk))
		for name := range r.FrameDisk {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fd := r.FrameDisk[name]
			out += fmt.Sprintf("  %-12s cold encode %8.0f rec/s  sidecar stream %8.0f rec/s  disk/encode %.2fx\n",
				name, rate(fd.Encode), rate(fd.Disk), fd.DiskOverEncode)
		}
	}
	return out
}

// RunServeComparison runs the serve benchmark against the mem and fs
// backends with identical load, yielding the same-run relative metric
// the regression gate consumes. Each backend runs serveCompareRounds
// times interleaved and the gate ratio uses the median samples/sec of
// each side — a single short run's ratio swings ±15% with scheduler
// noise, which would eat the whole regression budget.
func RunServeComparison(cfg ServeBenchConfig) (*ServeBenchReport, error) {
	// Cold cache on both sides: the gate is about the store code path,
	// and a warm cache hides it behind RAM reads.
	cfg.ColdCache = true
	var memRates, fsRates []float64
	rep := &ServeBenchReport{}
	for round := 0; round < serveCompareRounds; round++ {
		memCfg := cfg
		memCfg.Backend = "mem"
		mem, err := RunServeBenchmark(memCfg)
		if err != nil {
			return nil, err
		}
		fsCfg := cfg
		fsCfg.Backend = "fs"
		fs, err := RunServeBenchmark(fsCfg)
		if err != nil {
			return nil, err
		}
		if mem.Seconds > 0 {
			memRates = append(memRates, float64(mem.Samples)/mem.Seconds)
		}
		if fs.Seconds > 0 {
			fsRates = append(fsRates, float64(fs.Samples)/fs.Seconds)
		}
		rep.Mem, rep.FS = mem, fs // keep the last rounds' detail for the report
	}
	memRate, fsRate := median(memRates), median(fsRates)
	if memRate > 0 {
		rep.FSOverMem = fsRate / memRate
	}
	// Per-codec × per-wire dimension: every registered domain streams
	// against the mem backend in both wire formats, so codec-encode
	// regressions are visible per wire kind (and the frame format's win
	// is recorded) rather than folded into the climate-only gate
	// number. Climate deliberately runs again here even though rep.Mem
	// measured it: the gate rounds are cold-cache (store-bound) while
	// this sweep is warm-cache (codec-bound), and the sweep's numbers
	// must be mutually comparable.
	rep.Codecs = make(map[string]*WireComparison, len(domain.Plugins()))
	for _, plug := range domain.Plugins() {
		codecCfg := cfg
		codecCfg.Passes = 2
		codecCfg.Domain = plug.Domain
		cmp, err := runWireComparison(codecCfg)
		if err != nil {
			return nil, fmt.Errorf("codec sweep %s: %w", plug.Domain, err)
		}
		rep.Codecs[string(plug.Domain)] = cmp
	}
	// Zero-copy dimension: what the encoded-frame cache buys over
	// per-request encoding, on the durable backend.
	fcCfg := cfg
	fcCfg.Passes = 2
	fc, err := RunFrameCachedComparison(fcCfg)
	if err != nil {
		return nil, fmt.Errorf("frame-cached sweep: %w", err)
	}
	rep.FrameCached = fc
	// Disk-tier dimension: fully-cold frame streams served from shard
	// sidecars vs decode+encode. Fusion and materials bracket the codec
	// cost spectrum (heaviest tensor encode vs graph records).
	rep.FrameDisk = make(map[string]*FrameDiskComparison, 2)
	for _, dom := range []core.Domain{core.Fusion, core.Materials} {
		fdCfg := cfg
		fdCfg.Passes = 2
		fdCfg.Domain = dom
		fd, err := RunFrameDiskComparison(fdCfg)
		if err != nil {
			return nil, fmt.Errorf("frame-disk sweep %s: %w", dom, err)
		}
		rep.FrameDisk[string(dom)] = fd
	}
	return rep, nil
}

// RunFrameCachedComparison measures one domain's frame-wire throughput
// with the encoded-frame cache off and on, over the same fs-backend
// dataset: two servers share one data dir (the second replays the job
// log), so the only difference between the sides is per-request tensor
// encoding vs slicing cached payload bytes. The decoded-shard cache is
// warm on both sides and the frame cache is pre-filled, isolating the
// encode cost. Fusion is the default workload — its windowed signal
// tensors have the largest per-record encode cost, so the ratio tracks
// the win where it matters most. Like the fs/mem gate, the ratio is the
// median of frameCachedRounds interleaved rounds.
func RunFrameCachedComparison(cfg ServeBenchConfig) (*FrameCachedComparison, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("server: clients=%d must be positive", cfg.Clients)
	}
	if cfg.Passes <= 0 {
		cfg.Passes = 1
	}
	if cfg.Domain == "" {
		cfg.Domain = core.Fusion
	}
	plug, err := domain.Lookup(cfg.Domain)
	if err != nil {
		return nil, err
	}
	dir := cfg.DataDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "draid-bench-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	// DisableFrameStore keeps the encode side a true per-request-encode
	// reference; with the disk tier on it would serve cold frames from
	// sidecars and the ratio would measure the wrong thing.
	encSrv, err := New(Options{Workers: 2, CacheBytes: 64 << 20, DataDir: dir, DisableFrameStore: true})
	if err != nil {
		return nil, err
	}
	defer encSrv.Close()
	encTS := httptest.NewServer(encSrv.Handler())
	defer encTS.Close()
	id, err := SubmitAndWait(encTS.URL, JobSpec{Domain: cfg.Domain, Name: "frame-cache-bench", Seed: 1}, 60*time.Second)
	if err != nil {
		return nil, err
	}
	// The cached server starts after the job completes so its job-log
	// replay sees the finished shard set.
	cachedSrv, err := New(Options{Workers: 2, CacheBytes: 64 << 20, FrameCacheBytes: 256 << 20, DataDir: dir})
	if err != nil {
		return nil, err
	}
	defer cachedSrv.Close()
	cachedTS := httptest.NewServer(cachedSrv.Handler())
	defer cachedTS.Close()

	urlFor := func(base string) string {
		return fmt.Sprintf("%s/v1/jobs/%s/batches?batch_size=%d&max_batches=%d", base, id, cfg.BatchSize, cfg.MaxBatches)
	}
	sides := []struct {
		s  *Server
		ts *httptest.Server
	}{{encSrv, encTS}, {cachedSrv, cachedTS}}
	// Warm-up: fills the decoded-shard cache on the encode side and the
	// frame cache on the cached side, so neither measured stream pays a
	// fill.
	for _, side := range sides {
		if _, _, _, _, err := streamConsume(urlFor(side.ts.URL), "", domain.WireFrame); err != nil {
			return nil, err
		}
	}

	cmp := &FrameCachedComparison{}
	var encRates, cachedRates []float64
	for round := 0; round < frameCachedRounds; round++ {
		for i, side := range sides {
			res := &ServeBenchResult{Clients: cfg.Clients, BatchSize: cfg.BatchSize, Backend: "fs",
				Domain: string(cfg.Domain), Kind: plug.Codec.Kind(), Wire: domain.WireFrame}
			before := side.s.cache.Stats()
			if err := measureStreams(res, urlFor(side.ts.URL), domain.WireFrame, cfg.Clients, cfg.Passes); err != nil {
				return nil, err
			}
			cs := side.s.cache.Stats()
			res.CacheHits, res.CacheMisses = cs.Hits-before.Hits, cs.Misses-before.Misses
			side.s.fillLatencies(res)
			rate := 0.0
			if res.Seconds > 0 {
				rate = float64(res.Samples) / res.Seconds
			}
			if i == 0 {
				encRates = append(encRates, rate)
				cmp.Frame = res
			} else {
				cachedRates = append(cachedRates, rate)
				cmp.FrameCached = res
			}
		}
	}
	if hits := cachedSrv.frames.Stats().Hits; hits == 0 {
		return nil, fmt.Errorf("server: frame cache took no hits during cached rounds")
	}
	encRate, cachedRate := median(encRates), median(cachedRates)
	if encRate > 0 {
		cmp.CachedOverFrame = cachedRate / encRate
	}
	return cmp, nil
}

// frameCachedRounds is how many interleaved encode/cached rounds feed
// the frame-cached ratio's median.
const frameCachedRounds = 3

// RunFrameDiskComparison measures one domain's fully-cold frame-wire
// throughput — decoded and frame caches disabled on both sides, so
// every request goes to the store — served by per-request decode+encode
// vs by streaming the shard's frame sidecar, over the same fs-backend
// dataset. The job is built on the disk side (which writes sidecars at
// completion); the encode side replays the same job log with the frame
// store disabled, so the only difference between the sides is how cold
// bytes reach the wire. Like the other gates, the ratio is the median
// of frameDiskRounds interleaved rounds.
func RunFrameDiskComparison(cfg ServeBenchConfig) (*FrameDiskComparison, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("server: clients=%d must be positive", cfg.Clients)
	}
	if cfg.Passes <= 0 {
		cfg.Passes = 1
	}
	if cfg.Domain == "" {
		cfg.Domain = core.Fusion
	}
	plug, err := domain.Lookup(cfg.Domain)
	if err != nil {
		return nil, err
	}
	dir := cfg.DataDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "draid-bench-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	// The job builds on the disk side so completion writes the sidecars
	// the measured streams will serve from.
	diskSrv, err := New(Options{Workers: 2, CacheBytes: 0, DataDir: dir})
	if err != nil {
		return nil, err
	}
	defer diskSrv.Close()
	diskTS := httptest.NewServer(diskSrv.Handler())
	defer diskTS.Close()
	id, err := SubmitAndWait(diskTS.URL, JobSpec{Domain: cfg.Domain, Name: "frame-disk-bench", Seed: 1}, 60*time.Second)
	if err != nil {
		return nil, err
	}
	// The encode side starts after the job completes so its job-log
	// replay sees the finished shard set; DisableFrameStore keeps it a
	// true cold decode+encode reference.
	encSrv, err := New(Options{Workers: 2, CacheBytes: 0, DataDir: dir, DisableFrameStore: true})
	if err != nil {
		return nil, err
	}
	defer encSrv.Close()
	encTS := httptest.NewServer(encSrv.Handler())
	defer encTS.Close()

	urlFor := func(base string) string {
		return fmt.Sprintf("%s/v1/jobs/%s/batches?batch_size=%d&max_batches=%d", base, id, cfg.BatchSize, cfg.MaxBatches)
	}
	sides := []struct {
		s  *Server
		ts *httptest.Server
	}{{encSrv, encTS}, {diskSrv, diskTS}}
	// One warm-up stream per side: with both caches off nothing warms,
	// but this surfaces stream errors before the measured rounds.
	for _, side := range sides {
		if _, _, _, _, err := streamConsume(urlFor(side.ts.URL), "", domain.WireFrame); err != nil {
			return nil, err
		}
	}

	cmp := &FrameDiskComparison{}
	var encRates, diskRates []float64
	for round := 0; round < frameDiskRounds; round++ {
		for i, side := range sides {
			res := &ServeBenchResult{Clients: cfg.Clients, BatchSize: cfg.BatchSize, Backend: "fs",
				Domain: string(cfg.Domain), Kind: plug.Codec.Kind(), Wire: domain.WireFrame}
			before := side.s.cache.Stats()
			if err := measureStreams(res, urlFor(side.ts.URL), domain.WireFrame, cfg.Clients, cfg.Passes); err != nil {
				return nil, err
			}
			cs := side.s.cache.Stats()
			res.CacheHits, res.CacheMisses = cs.Hits-before.Hits, cs.Misses-before.Misses
			side.s.fillLatencies(res)
			rate := 0.0
			if res.Seconds > 0 {
				rate = float64(res.Samples) / res.Seconds
			}
			if i == 0 {
				encRates = append(encRates, rate)
				cmp.Encode = res
			} else {
				diskRates = append(diskRates, rate)
				cmp.Disk = res
			}
		}
	}
	if hits := diskSrv.metrics.frameStoreHits.Value(); hits == 0 {
		return nil, fmt.Errorf("server: no frame stream was sidecar-served during disk rounds")
	}
	encRate, diskRate := median(encRates), median(diskRates)
	if encRate > 0 {
		cmp.DiskOverEncode = diskRate / encRate
	}
	return cmp, nil
}

// frameDiskRounds is how many interleaved encode/disk rounds feed the
// disk-tier ratio's median.
const frameDiskRounds = 3

// runWireComparison measures one domain's NDJSON and frame throughput
// against the *same* server and the same completed job, so the ratio
// compares wire encodings over an identical dataset — some pipelines'
// shard layouts vary run to run, and standing up a fresh job per wire
// would fold that synthesis noise into the tracked ratio.
func runWireComparison(cfg ServeBenchConfig) (*WireComparison, error) {
	plug, err := domain.Lookup(cfg.Domain)
	if err != nil {
		return nil, err
	}
	s, err := New(Options{Workers: 2, CacheBytes: 64 << 20})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	id, err := SubmitAndWait(ts.URL, JobSpec{Domain: cfg.Domain, Name: "wire-bench", Seed: 1}, 60*time.Second)
	if err != nil {
		return nil, err
	}
	url := fmt.Sprintf("%s/v1/jobs/%s/batches?batch_size=%d&max_batches=%d", ts.URL, id, cfg.BatchSize, cfg.MaxBatches)

	cmp := &WireComparison{}
	for _, wire := range domain.Wires() {
		// One warm-up pass per wire so neither side pays the shard-
		// decode cache fill.
		if _, _, _, _, err := streamConsume(url, "", wire); err != nil {
			return nil, err
		}
		res := &ServeBenchResult{Clients: cfg.Clients, BatchSize: cfg.BatchSize, Backend: "mem",
			Domain: string(cfg.Domain), Kind: plug.Codec.Kind(), Wire: wire}
		// Cache counters are server-lifetime; record this wire's delta,
		// not the accumulated total of warm-up and earlier wires.
		before := s.cache.Stats()
		if err := measureStreams(res, url, wire, cfg.Clients, cfg.Passes); err != nil {
			return nil, err
		}
		cs := s.cache.Stats()
		res.CacheHits, res.CacheMisses = cs.Hits-before.Hits, cs.Misses-before.Misses
		// Histogram quantiles are server-lifetime, but the warm-up adds
		// only one stream per wire against Clients×Passes measured ones —
		// and the per-wire labels keep the two wires' samples apart.
		s.fillLatencies(res)
		if wire == domain.WireFrame {
			cmp.Frame = res
		} else {
			cmp.NDJSON = res
		}
	}
	if cmp.NDJSON.Seconds > 0 && cmp.Frame.Seconds > 0 {
		nd := float64(cmp.NDJSON.Samples) / cmp.NDJSON.Seconds
		fr := float64(cmp.Frame.Samples) / cmp.Frame.Seconds
		if nd > 0 {
			cmp.FrameOverNDJSON = fr / nd
		}
	}
	return cmp, nil
}

// serveCompareRounds is how many interleaved mem/fs rounds feed the
// gate's median. Five rounds put the median's spread well inside the
// 20% regression budget (single runs swing ±15%).
const serveCompareRounds = 5

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// SubmitAndWait posts a job spec to a running draid server and polls it
// until done, returning the job ID — a thin wrapper over the pkg/client
// SDK kept for the benchmark harness and tests.
func SubmitAndWait(baseURL string, spec JobSpec, timeout time.Duration) (string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	c := client.New(baseURL, client.WithPollInterval(5*time.Millisecond))
	st, err := c.SubmitJob(ctx, spec)
	if err != nil {
		return "", err
	}
	done, err := c.WaitDone(ctx, st.ID)
	if err != nil {
		return "", err
	}
	return done.ID, nil
}

// BatchWire is the client-side union of every wire kind's batch
// payload; it lives in pkg/client (the supported SDK) and is aliased
// here for the serving tests.
type BatchWire = client.BatchWire

// StreamBatches consumes one NDJSON batch stream, validating every
// line, and returns (batches, samples, bytes).
func StreamBatches(url string) (batches, samples, n int64, err error) {
	batches, samples, n, _, err = StreamBatchesFrom(url, "")
	return batches, samples, n, err
}

// StreamBatchesFrom streams like StreamBatches but resumes from the
// given cursor (empty starts at the beginning) and returns the cursor
// after the last batch received — the value a reconnecting client
// passes back to continue the stream.
func StreamBatchesFrom(url, cursor string) (batches, samples, n int64, last string, err error) {
	return streamConsume(url, cursor, client.WireNDJSON)
}

// streamConsume drains one batch stream through the SDK in the given
// wire format, with automatic resume disabled so benchmarks and tests
// see transport failures instead of silent reconnects.
func streamConsume(url, cursor, wire string) (batches, samples, n int64, last string, err error) {
	last = cursor
	st, err := client.OpenStreamURL(context.Background(), nil, url, cursor, wire, -1)
	if err != nil {
		return 0, 0, 0, last, err
	}
	defer st.Close()
	batches, samples, n, err = st.Drain()
	if c := st.Cursor(); c != "" {
		last = c
	}
	return batches, samples, n, last, err
}
