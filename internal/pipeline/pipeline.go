// Package pipeline is the staged execution engine for data-readiness
// workflows. It enforces the paper's abstracted cross-domain pattern
// (§3.5: ingest → preprocess → transform → structure → shard), times every
// stage, captures provenance, re-assesses readiness after each stage (the
// Table 2 trajectory), and supports the iterative feedback loops of
// Fig. 1 ("data preparation outcomes inform subsequent model training …
// model performance … triggers further data refinement").
package pipeline

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/provenance"
)

// Dataset is the unit of work flowing through a pipeline. Payload holds
// the domain-specific representation (grids, shot trees, record sets, …);
// Facts drive readiness assessment; Meta carries descriptive metadata
// (paper: "enhanced metadata enrichment").
type Dataset struct {
	Name    string
	Domain  core.Domain
	Payload any
	Meta    map[string]string
	Facts   core.Facts
	// Bytes and Records size the dataset for throughput accounting;
	// stages should keep them current.
	Bytes   int64
	Records int64
	rev     int
}

// NewDataset returns a raw dataset wrapper (Facts.Acquired set).
func NewDataset(name string, domain core.Domain, payload any) *Dataset {
	return &Dataset{
		Name:    name,
		Domain:  domain,
		Payload: payload,
		Meta:    make(map[string]string),
		Facts:   core.Facts{Acquired: true},
	}
}

// ID returns a revision-scoped artifact identifier for provenance capture.
func (d *Dataset) ID() provenance.ArtifactID {
	return provenance.HashBytes([]byte(fmt.Sprintf("%s|%s|rev%d", d.Domain, d.Name, d.rev)))
}

// SetMeta records a metadata field and keeps Facts.MetadataFields current.
func (d *Dataset) SetMeta(key, value string) {
	d.Meta[key] = value
	d.Facts.MetadataFields = len(d.Meta)
}

// Stage is one pipeline step. Kind tags it with its abstract processing
// stage so the engine can verify the cross-domain pattern and build the
// maturity trajectory.
type Stage interface {
	Name() string
	Kind() core.Stage
	Run(ds *Dataset) error
}

// StageFunc adapts a function to Stage.
type StageFunc struct {
	StageName string
	StageKind core.Stage
	Fn        func(ds *Dataset) error
}

// Name implements Stage.
func (s StageFunc) Name() string { return s.StageName }

// Kind implements Stage.
func (s StageFunc) Kind() core.Stage { return s.StageKind }

// Run implements Stage.
func (s StageFunc) Run(ds *Dataset) error { return s.Fn(ds) }

// Snapshot freezes the readiness state after one stage — one point of the
// dataset's trajectory across the Table 2 matrix.
type Snapshot struct {
	StageName  string
	StageKind  core.Stage
	Assessment core.Assessment
}

// Pipeline executes stages in order.
type Pipeline struct {
	name       string
	stages     []Stage
	Collector  *metrics.Collector
	Tracker    *provenance.Tracker
	Thresholds core.Thresholds
	// Category labels stage time for the curation-share experiment;
	// stages not listed default to "curation" (everything before model
	// training is data curation in the paper's accounting).
	Category map[string]string
}

// New creates a pipeline, validating that stage kinds never move backwards
// through the abstract order (the paper's C4 pattern: every domain
// workflow is a monotone walk through ingest → … → shard).
func New(name string, stages ...Stage) (*Pipeline, error) {
	if len(stages) == 0 {
		return nil, errors.New("pipeline: no stages")
	}
	prev := core.Ingest
	for i, s := range stages {
		if !s.Kind().Valid() {
			return nil, fmt.Errorf("pipeline: stage %d (%s) has invalid kind", i, s.Name())
		}
		if s.Kind() < prev {
			return nil, fmt.Errorf("pipeline: stage %d (%s, %v) regresses before %v — violates ingest→shard order",
				i, s.Name(), s.Kind(), prev)
		}
		prev = s.Kind()
	}
	return &Pipeline{
		name:       name,
		stages:     stages,
		Collector:  metrics.NewCollector(),
		Tracker:    provenance.NewTracker(),
		Thresholds: core.DefaultThresholds(),
		Category:   make(map[string]string),
	}, nil
}

// Name returns the pipeline's name.
func (p *Pipeline) Name() string { return p.name }

// Stages returns the configured stages.
func (p *Pipeline) Stages() []Stage { return p.stages }

// Run executes all stages on ds, returning the per-stage readiness
// trajectory. On stage failure it returns the snapshots so far plus the
// error.
func (p *Pipeline) Run(ds *Dataset) ([]Snapshot, error) {
	if ds == nil {
		return nil, errors.New("pipeline: nil dataset")
	}
	p.Tracker.Label(ds.ID(), ds.Name+" (raw)")
	snaps := make([]Snapshot, 0, len(p.stages))
	for _, st := range p.stages {
		inID := ds.ID()
		cat := p.Category[st.Name()]
		if cat == "" {
			cat = "curation"
		}
		err := p.Collector.Time(st.Name(), cat, ds.Bytes, ds.Records, func() error {
			return st.Run(ds)
		})
		if err != nil {
			return snaps, fmt.Errorf("pipeline %s: stage %s: %w", p.name, st.Name(), err)
		}
		ds.rev++
		if _, perr := p.Tracker.Record(provenance.Activity{
			Name:    st.Name(),
			Agent:   fmt.Sprintf("pipeline:%s", p.name),
			Params:  map[string]string{"kind": st.Kind().String()},
			Inputs:  []provenance.ArtifactID{inID},
			Outputs: []provenance.ArtifactID{ds.ID()},
		}); perr != nil {
			return snaps, fmt.Errorf("pipeline %s: provenance: %w", p.name, perr)
		}
		ds.Facts.AuditTrail = true
		snaps = append(snaps, Snapshot{
			StageName:  st.Name(),
			StageKind:  st.Kind(),
			Assessment: core.Assess(ds.Facts, p.Thresholds),
		})
	}
	return snaps, nil
}

// VerifyMonotone checks the paper's C5 claim on a trajectory: assessed
// readiness levels never decrease as stages complete.
func VerifyMonotone(snaps []Snapshot) error {
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Assessment.Level < snaps[i-1].Assessment.Level {
			return fmt.Errorf("pipeline: readiness regressed from %v to %v at stage %s",
				snaps[i-1].Assessment.Level, snaps[i].Assessment.Level, snaps[i].StageName)
		}
	}
	return nil
}

// StageKinds lists the distinct abstract kinds a pipeline walks through,
// in order (the E7 structural check that a domain pipeline instantiates
// the shared pattern).
func (p *Pipeline) StageKinds() []core.Stage {
	var kinds []core.Stage
	for _, s := range p.stages {
		if len(kinds) == 0 || kinds[len(kinds)-1] != s.Kind() {
			kinds = append(kinds, s.Kind())
		}
	}
	return kinds
}

// Iterate runs a refinement stage repeatedly until done(ds) or maxRounds —
// the Fig. 1 feedback loop (pseudo-labeling, quality-driven re-cleaning).
// It returns the number of rounds executed.
func Iterate(ds *Dataset, st Stage, done func(*Dataset) bool, maxRounds int) (int, error) {
	if maxRounds <= 0 {
		return 0, fmt.Errorf("pipeline: maxRounds=%d must be positive", maxRounds)
	}
	for round := 1; round <= maxRounds; round++ {
		if done(ds) {
			return round - 1, nil
		}
		if err := st.Run(ds); err != nil {
			return round - 1, fmt.Errorf("pipeline: feedback round %d: %w", round, err)
		}
	}
	return maxRounds, nil
}

// ForEach applies fn to indices [0,n) across `workers` goroutines —
// record-level parallelism within a stage (regridding months, encoding
// structures, …). The first error wins; all workers drain.
func ForEach(n, workers int, fn func(i int) error) error {
	if n < 0 {
		return fmt.Errorf("pipeline: negative item count %d", n)
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return nil
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}
