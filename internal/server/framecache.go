// Encoded-frame shard cache: the zero-copy half of the serving tier.
// The decoded-shard cache already makes shard opening cheap, but every
// frame-wire batch was still re-encoded per request — each record's
// tensors packed into little-endian bytes again for every client and
// every batch size. This cache stores each shard's records in
// frame-ready byte form exactly once: one contiguous payload buffer
// plus per-record boundary offsets. Any batch_size/cursor combination
// is then served by slicing byte ranges out of the buffer and writing
// them straight to the connection under a freshly framed header
// (domain.FrameEnvelope) — no per-request tensor marshalling, and
// byte-identical wire output to the encode-per-request path because a
// codec's batch payload is the concatenation of its single-record
// payloads.
package server

import (
	"context"
	"time"

	"repro/internal/domain"
	"repro/internal/shard"
)

// encodedShard is one shard's records in frame-ready byte form.
type encodedShard struct {
	payload []byte
	// offsets has len(records)+1 entries; record i occupies
	// payload[offsets[i]:offsets[i+1]].
	offsets []int64
}

// count is the number of records in the shard.
func (e *encodedShard) count() int { return len(e.offsets) - 1 }

// slice returns the payload bytes of the record range [a, b).
func (e *encodedShard) slice(a, b int) []byte {
	return e.payload[e.offsets[a]:e.offsets[b]]
}

// sliceLen is len(slice(a, b)) without materializing the slice header.
func (e *encodedShard) sliceLen(a, b int) int {
	return int(e.offsets[b] - e.offsets[a])
}

// memBytes is the cache accounting for this entry.
func (e *encodedShard) memBytes() int64 {
	return int64(len(e.payload)) + int64(len(e.offsets))*8
}

// frameRange is a contiguous record range [a, b) of one encoded shard,
// buffered for the next batch emission. A batch that spans a shard
// boundary holds one range per shard.
type frameRange struct {
	enc  *encodedShard
	a, b int
}

// frameShard returns one shard's encoded-frame form through the frame
// cache, encoding on first access only. The fill path reads through the
// decoded-shard cache, so a cold shard is opened and decoded once even
// when both caches miss at the same moment. Fills are spanned as
// frame.fill under the filling request's span (with the nested
// shard.load appearing as a sibling child of the same request — the
// decoded-cache read happens inside this interval but parents to the
// request span, which keeps both directly visible in the tree).
func (s *Server) frameShard(ctx context.Context, jobID, dom string, m *shard.Manifest, info shard.Info, open shard.Opener, codec domain.Codec) (*encodedShard, error) {
	key := jobID + "/" + info.Name
	return s.frames.Get(key, func() (*encodedShard, int64, error) {
		fillStart := time.Now()
		records, err := s.shardRecords(ctx, jobID, dom, m, info, open, codec)
		if err != nil {
			return nil, 0, err
		}
		payload, offsets, err := domain.EncodeRecordPayloads(codec, records)
		if err != nil {
			return nil, 0, err
		}
		enc := &encodedShard{payload: payload, offsets: offsets}
		s.recordChildSpan(ctx, "frame.fill", fillStart, time.Now(),
			map[string]string{"shard": info.Name})
		return enc, enc.memBytes(), nil
	})
}
