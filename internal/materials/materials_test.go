package materials

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/formats/bp"
	"repro/internal/pipeline"
	"repro/internal/shard"
)

func TestSynthesize(t *testing.T) {
	structs, err := Synthesize(SynthConfig{Structures: 30, MinAtoms: 4, MaxAtoms: 10, ImbalanceRatio: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(structs) != 30 {
		t.Fatalf("n=%d", len(structs))
	}
	for _, s := range structs {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		if s.NumAtoms() < 4 || s.NumAtoms() > 10 {
			t.Fatalf("%s atoms=%d", s.ID, s.NumAtoms())
		}
		// Energy roughly extensive: more negative with more atoms.
		if s.Energy >= 0 {
			t.Fatalf("%s energy=%v", s.ID, s.Energy)
		}
	}
	counts := ClassCounts(structs)
	if counts["metal"] <= counts["insulator"] {
		t.Fatalf("imbalance not realized: %v", counts)
	}
}

func TestSynthesizeErrors(t *testing.T) {
	if _, err := Synthesize(SynthConfig{Structures: 0, MinAtoms: 1, MaxAtoms: 2, ImbalanceRatio: 1}); err == nil {
		t.Fatal("want structures error")
	}
	if _, err := Synthesize(SynthConfig{Structures: 1, MinAtoms: 5, MaxAtoms: 2, ImbalanceRatio: 1}); err == nil {
		t.Fatal("want atom-range error")
	}
	if _, err := Synthesize(SynthConfig{Structures: 1, MinAtoms: 1, MaxAtoms: 2, ImbalanceRatio: 0.5}); err == nil {
		t.Fatal("want imbalance error")
	}
}

func TestValidate(t *testing.T) {
	bad := &Structure{ID: "x", Lattice: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("want lattice error")
	}
	bad2 := &Structure{ID: "x", Lattice: 5, Species: []string{"Fe"}, Frac: [][3]float64{{1.5, 0, 0}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("want coord error")
	}
	bad3 := &Structure{ID: "x", Lattice: 5, Species: []string{"Fe", "O"}, Frac: [][3]float64{{0, 0, 0}}}
	if err := bad3.Validate(); err == nil {
		t.Fatal("want count error")
	}
	bad4 := &Structure{ID: "x", Lattice: 5, Species: []string{"Fe"}, Frac: [][3]float64{{0, 0, 0}},
		Forces: [][3]float64{{0, 0, 0}, {0, 0, 0}}}
	if err := bad4.Validate(); err == nil {
		t.Fatal("want forces error")
	}
}

func TestPOSCARRoundTrip(t *testing.T) {
	structs, _ := Synthesize(SynthConfig{Structures: 5, MinAtoms: 4, MaxAtoms: 8, ImbalanceRatio: 2, Seed: 2})
	for _, s := range structs {
		text := s.ToPOSCAR()
		got, err := ParsePOSCAR(text)
		if err != nil {
			t.Fatalf("%s: %v\n%s", s.ID, err, text)
		}
		if got.ID != s.ID || got.Class != s.Class {
			t.Fatalf("id/class: %s/%s vs %s/%s", got.ID, got.Class, s.ID, s.Class)
		}
		if math.Abs(got.Energy-s.Energy) > 1e-5 {
			t.Fatalf("energy %v vs %v", got.Energy, s.Energy)
		}
		if math.Abs(got.Lattice-s.Lattice) > 1e-5 {
			t.Fatalf("lattice %v vs %v", got.Lattice, s.Lattice)
		}
		if got.NumAtoms() != s.NumAtoms() {
			t.Fatalf("atoms %d vs %d", got.NumAtoms(), s.NumAtoms())
		}
		// Species multiset preserved (POSCAR groups by species).
		want := map[string]int{}
		for _, sp := range s.Species {
			want[sp]++
		}
		for _, sp := range got.Species {
			want[sp]--
		}
		for sp, n := range want {
			if n != 0 {
				t.Fatalf("species %s count off by %d", sp, n)
			}
		}
	}
}

func TestParsePOSCARErrors(t *testing.T) {
	cases := []string{
		"",                  // empty
		"hdr\nnotanumber\n", // bad scale
		"hdr\n1.0\n1 0\n",   // short lattice row
		"hdr\n1.0\n5 0 0\n0 5 0\n0 0 5\nFe\n2 3\nDirect\n",         // counts mismatch
		"hdr\n1.0\n5 1 0\n0 5 0\n0 0 5\nFe\n1\nDirect\n0 0 0\n",    // non-cubic
		"hdr\n1.0\n5 0 0\n0 5 0\n0 0 5\nFe\n1\nCartesian\n0 0 0\n", // mode
		"hdr\n1.0\n5 0 0\n0 5 0\n0 0 5\nFe\n2\nDirect\n0 0 0\n",    // missing atom
	}
	for i, c := range cases {
		if _, err := ParsePOSCAR(c); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func TestMinImageDist(t *testing.T) {
	// Atoms at 0.05 and 0.95: wrapped distance is 0.1*a, not 0.9*a.
	d := minImageDist([3]float64{0.05, 0, 0}, [3]float64{0.95, 0, 0}, 10)
	if math.Abs(d-1.0) > 1e-12 {
		t.Fatalf("d=%v", d)
	}
	same := minImageDist([3]float64{0.3, 0.3, 0.3}, [3]float64{0.3, 0.3, 0.3}, 10)
	if same != 0 {
		t.Fatalf("self distance=%v", same)
	}
}

func TestBuildGraph(t *testing.T) {
	s := &Structure{
		ID: "dimer", Lattice: 10, Class: "metal", Energy: -8,
		Species: []string{"Fe", "Cu", "O"},
		Frac: [][3]float64{
			{0.0, 0, 0},
			{0.2, 0, 0},     // 2 A from atom 0
			{0.5, 0.5, 0.5}, // far from both
		},
	}
	g, err := BuildGraph(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("nodes=%d", g.NumNodes())
	}
	if g.NumEdges() != 1 || g.Edges[0] != [2]int{0, 1} {
		t.Fatalf("edges=%v", g.Edges)
	}
	if math.Abs(g.EdgeLengths[0]-2) > 1e-12 {
		t.Fatalf("length=%v", g.EdgeLengths[0])
	}
	if g.NodeFeatures[0][0] != 26 { // Fe
		t.Fatalf("Z=%v", g.NodeFeatures[0][0])
	}
}

func TestBuildGraphPeriodicEdge(t *testing.T) {
	s := &Structure{
		ID: "wrap", Lattice: 10, Species: []string{"Si", "Si"},
		Frac: [][3]float64{{0.02, 0, 0}, {0.98, 0, 0}},
	}
	g, err := BuildGraph(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("periodic edge missed: %v", g.Edges)
	}
	if math.Abs(g.EdgeLengths[0]-0.4) > 1e-9 {
		t.Fatalf("wrapped length=%v", g.EdgeLengths[0])
	}
}

func TestBuildGraphErrors(t *testing.T) {
	s := &Structure{ID: "x", Lattice: 10, Species: []string{"Fe"}, Frac: [][3]float64{{0, 0, 0}}}
	if _, err := BuildGraph(s, 0); err == nil {
		t.Fatal("want cutoff error")
	}
	if _, err := BuildGraph(s, 6); err == nil {
		t.Fatal("want half-cell error")
	}
}

func TestDescriptorNormalization(t *testing.T) {
	structs, _ := Synthesize(SynthConfig{Structures: 20, MinAtoms: 6, MaxAtoms: 12, ImbalanceRatio: 1, Seed: 3})
	graphs := make([]*Graph, len(structs))
	for i, s := range structs {
		cutoff := math.Min(4, s.Lattice/2)
		g, err := BuildGraph(s, cutoff)
		if err != nil {
			t.Fatal(err)
		}
		graphs[i] = g
	}
	st, err := ComputeDescriptorStats(graphs)
	if err != nil {
		t.Fatal(err)
	}
	if st.StdZ <= 0 || st.StdDeg <= 0 {
		t.Fatalf("stats=%+v", st)
	}
	for _, g := range graphs {
		NormalizeDescriptors(g, st)
	}
	// Post-normalization: Z feature has ~0 mean across all nodes.
	sum, n := 0.0, 0
	for _, g := range graphs {
		for _, f := range g.NodeFeatures {
			if len(f) != 2 {
				t.Fatalf("feature dims=%d, want 2 (Z + degree)", len(f))
			}
			sum += f[0]
			n++
		}
	}
	if math.Abs(sum/float64(n)) > 1e-9 {
		t.Fatalf("normalized Z mean=%v", sum/float64(n))
	}
}

func TestComputeDescriptorStatsEmpty(t *testing.T) {
	if _, err := ComputeDescriptorStats(nil); err == nil {
		t.Fatal("want empty error")
	}
}

func TestFlatten(t *testing.T) {
	g := &Graph{
		StructID:     "x",
		NodeFeatures: [][]float64{{1, 2}, {3, 4}},
		Edges:        [][2]int{{0, 1}},
		EdgeLengths:  []float64{2.5},
		Energy:       -7,
		Class:        "metal",
	}
	names, shapes, data := g.Flatten(map[string]int{"metal": 1})
	if len(names) != 5 {
		t.Fatalf("names=%v", names)
	}
	if shapes[0][0] != 2 || shapes[0][1] != 2 {
		t.Fatalf("node shape=%v", shapes[0])
	}
	if data[0][3] != 4 {
		t.Fatalf("node data=%v", data[0])
	}
	if data[1][0] != 0 || data[1][1] != 1 {
		t.Fatalf("edges=%v", data[1])
	}
	if data[4][0] != 1 {
		t.Fatalf("class id=%v", data[4])
	}
}

// TestPipelineEndToEnd runs the full Table 1 materials workflow.
func TestPipelineEndToEnd(t *testing.T) {
	structs, err := Synthesize(SynthConfig{Structures: 40, MinAtoms: 4, MaxAtoms: 12, ImbalanceRatio: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	poscars := make([]string, len(structs))
	for i, s := range structs {
		poscars[i] = s.ToPOSCAR()
	}
	sink := shard.NewMemSink()
	p, err := NewPipeline(DefaultConfig(), sink)
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDataset("omat-mini", poscars)
	snaps, err := p.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipeline.VerifyMonotone(snaps); err != nil {
		t.Fatal(err)
	}
	final := snaps[len(snaps)-1].Assessment
	if final.Level != core.AIReady {
		t.Fatalf("level=%v gaps=%v", final.Level, final.Gaps)
	}
	prod := ds.Payload.(*Product)
	if len(prod.Graphs) != 40 {
		t.Fatalf("graphs=%d", len(prod.Graphs))
	}
	if prod.Imbalance <= 1 {
		t.Fatalf("imbalance=%v, expected skew preserved", prod.Imbalance)
	}

	// The BP container decodes and holds one PG per train graph.
	f, err := bp.Open(prod.BP)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.PGs()) != len(prod.Split.Train) {
		t.Fatalf("pgs=%d train=%d", len(f.PGs()), len(prod.Split.Train))
	}
	_, _, vars, err := f.ReadPG(0)
	if err != nil {
		t.Fatal(err)
	}
	varNames := map[string]bool{}
	for _, v := range vars {
		varNames[v.Name] = true
	}
	for _, want := range []string{"node_features", "edges", "edge_lengths", "energy", "class_id"} {
		if !varNames[want] {
			t.Fatalf("missing variable %q in PG", want)
		}
	}

	// The durable shard set mirrors the container: one self-describing
	// PG record per train graph, replayable through the verifying reader.
	if prod.Manifest == nil {
		t.Fatal("no shard manifest on product")
	}
	if got := prod.Manifest.TotalRecords(); got != len(prod.Split.Train) {
		t.Fatalf("shard records=%d train=%d", got, len(prod.Split.Train))
	}
	if len(prod.Manifest.Shards) < 2 {
		t.Fatalf("train split packed into %d shard(s); want rotation", len(prod.Manifest.Shards))
	}
	records := 0
	if err := shard.ReadAll(sink, prod.Manifest, func(_ string, rec []byte) error {
		_, _, vars, err := bp.UnmarshalPG(rec)
		if err != nil {
			return err
		}
		if len(vars) != 5 {
			return fmt.Errorf("record %d: %d vars", records, len(vars))
		}
		records++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if records != len(prod.Split.Train) {
		t.Fatalf("streamed %d shard records, want %d", records, len(prod.Split.Train))
	}
}

func TestPipelineConfigErrors(t *testing.T) {
	if _, err := NewPipeline(Config{Cutoff: 0, Ranks: 1}, shard.NewMemSink()); err == nil {
		t.Fatal("want cutoff error")
	}
	if _, err := NewPipeline(Config{Cutoff: 1, Ranks: 0}, shard.NewMemSink()); err == nil {
		t.Fatal("want ranks error")
	}
}

func TestPipelineNoInputs(t *testing.T) {
	p, err := NewPipeline(DefaultConfig(), shard.NewMemSink())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(NewDataset("empty", nil)); err == nil {
		t.Fatal("want no-input error")
	}
}

func TestPipelineBadPOSCAR(t *testing.T) {
	p, err := NewPipeline(DefaultConfig(), shard.NewMemSink())
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDataset("bad", []string{"not a poscar"})
	if _, err := p.Run(ds); err == nil {
		t.Fatal("want parse error")
	}
}

// Property: graph edges are symmetric under atom reordering of the
// distance computation, and all edge lengths respect the cutoff.
func TestGraphCutoffProperty(t *testing.T) {
	f := func(seed int64) bool {
		structs, err := Synthesize(SynthConfig{Structures: 1, MinAtoms: 3, MaxAtoms: 10, ImbalanceRatio: 1, Seed: seed})
		if err != nil {
			return false
		}
		s := structs[0]
		cutoff := math.Min(4, s.Lattice/2)
		g, err := BuildGraph(s, cutoff)
		if err != nil {
			return false
		}
		for k, e := range g.Edges {
			if e[0] >= e[1] {
				return false // canonical i<j ordering
			}
			if g.EdgeLengths[k] > cutoff || g.EdgeLengths[k] < 0 {
				return false
			}
			// Distance symmetric.
			d1 := minImageDist(s.Frac[e[0]], s.Frac[e[1]], s.Lattice)
			d2 := minImageDist(s.Frac[e[1]], s.Frac[e[0]], s.Lattice)
			if math.Abs(d1-d2) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: POSCAR round-trip preserves atom count and energy for any
// generated structure.
func TestPOSCARRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		structs, err := Synthesize(SynthConfig{Structures: 1, MinAtoms: 2, MaxAtoms: 8, ImbalanceRatio: 1, Seed: seed})
		if err != nil {
			return false
		}
		s := structs[0]
		got, err := ParsePOSCAR(s.ToPOSCAR())
		if err != nil {
			return false
		}
		return got.NumAtoms() == s.NumAtoms() &&
			math.Abs(got.Energy-s.Energy) < 1e-5 &&
			got.Class == s.Class
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicNumber(t *testing.T) {
	if AtomicNumber("Fe") != 26 || AtomicNumber("Xx") != 0 {
		t.Fatal("atomic numbers")
	}
}

func TestSortedClasses(t *testing.T) {
	structs := []*Structure{{Class: "b"}, {Class: "a"}, {Class: "b"}}
	got := SortedClasses(structs)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("classes=%v", got)
	}
	if !strings.Contains(strings.Join(got, ","), "a") {
		t.Fatal("missing class")
	}
}

func BenchmarkBuildGraph(b *testing.B) {
	structs, err := Synthesize(SynthConfig{Structures: 1, MinAtoms: 60, MaxAtoms: 64, ImbalanceRatio: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	s := structs[0]
	cutoff := math.Min(4, s.Lattice/2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildGraph(s, cutoff); err != nil {
			b.Fatal(err)
		}
	}
}
