// Package stats provides streaming and batch statistics used by the
// readiness pipelines: Welford online mean/variance (so normalization
// constants can be computed in one pass over out-of-core data), exact
// quantiles, histograms, and class-balance metrics.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Running accumulates count, mean and variance online using Welford's
// algorithm. The zero value is ready to use. NaN inputs are skipped and
// counted separately, which lets pipelines report missing-value rates from
// the same pass that computes normalization constants.
type Running struct {
	n    int64
	nan  int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	if math.IsNaN(x) {
		r.nan++
		return
	}
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// AddSlice folds every value of xs into the accumulator.
func (r *Running) AddSlice(xs []float64) {
	for _, x := range xs {
		r.Add(x)
	}
}

// Merge combines another accumulator into r (parallel reduction), using
// Chan et al.'s pairwise update so per-worker accumulators can be reduced.
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		r.nan += o.nan
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	n1, n2 := float64(r.n), float64(o.n)
	d := o.mean - r.mean
	tot := n1 + n2
	r.m2 += o.m2 + d*d*n1*n2/tot
	r.mean += d * n2 / tot
	r.n += o.n
	r.nan += o.nan
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
}

// N returns the number of non-NaN observations.
func (r *Running) N() int64 { return r.n }

// NaNCount returns the number of NaN observations skipped.
func (r *Running) NaNCount() int64 { return r.nan }

// Mean returns the running mean (NaN when no observations).
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Variance returns the population variance (NaN when no observations).
func (r *Running) Variance() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.m2 / float64(r.n)
}

// Std returns the population standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Variance()) }

// Min returns the minimum observation (NaN when empty).
func (r *Running) Min() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.min
}

// Max returns the maximum observation (NaN when empty).
func (r *Running) Max() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.max
}

// MissingRate returns the fraction of observations that were NaN.
func (r *Running) MissingRate() float64 {
	total := r.n + r.nan
	if total == 0 {
		return 0
	}
	return float64(r.nan) / float64(total)
}

// String summarizes the accumulator.
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g missing=%.2f%%",
		r.n, r.Mean(), r.Std(), r.Min(), r.Max(), 100*r.MissingRate())
}

// Quantile returns the q-th quantile (0<=q<=1) of xs by linear
// interpolation, ignoring NaNs. It returns an error for empty input or an
// out-of-range q.
func Quantile(xs []float64, q float64) (float64, error) {
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	if len(clean) == 0 {
		return 0, errors.New("stats: quantile of empty data")
	}
	sort.Float64s(clean)
	pos := q * float64(len(clean)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return clean[lo], nil
	}
	frac := pos - float64(lo)
	return clean[lo]*(1-frac) + clean[hi]*frac, nil
}

// Histogram is a fixed-width binning of observations over [Lo, Hi).
// Out-of-range observations are clamped to the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	total  int64
}

// NewHistogram creates a histogram with nbins bins over [lo, hi).
func NewHistogram(lo, hi float64, nbins int) (*Histogram, error) {
	if nbins <= 0 {
		return nil, fmt.Errorf("stats: nbins %d must be positive", nbins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram range [%v,%v) is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, nbins)}, nil
}

// Add bins one observation. NaNs are ignored.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	bin := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if bin < 0 {
		bin = 0
	}
	if bin >= len(h.Counts) {
		bin = len(h.Counts) - 1
	}
	h.Counts[bin]++
	h.total++
}

// Total returns the number of binned observations.
func (h *Histogram) Total() int64 { return h.total }

// Mode returns the lower edge of the most populated bin.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + float64(best)*w
}

// Entropy returns the Shannon entropy (nats) of the bin distribution, a
// coverage/diversity indicator used in quality reports.
func (h *Histogram) Entropy() float64 {
	if h.total == 0 {
		return 0
	}
	e := 0.0
	for _, c := range h.Counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(h.total)
		e -= p * math.Log(p)
	}
	return e
}

// ClassBalance describes the label distribution of a classification
// dataset; the paper flags class imbalance as a materials-domain readiness
// challenge (Table 1).
type ClassBalance struct {
	Counts map[string]int
	Total  int
}

// NewClassBalance tallies the labels.
func NewClassBalance(labels []string) *ClassBalance {
	cb := &ClassBalance{Counts: make(map[string]int)}
	for _, l := range labels {
		cb.Counts[l]++
		cb.Total++
	}
	return cb
}

// ImbalanceRatio returns max-class-count / min-class-count (1 = perfectly
// balanced; +Inf if some class seen zero times is impossible here since
// counts come from observed labels). Returns 1 for <=1 class.
func (cb *ClassBalance) ImbalanceRatio() float64 {
	if len(cb.Counts) <= 1 {
		return 1
	}
	minC, maxC := math.MaxInt64, 0
	for _, c := range cb.Counts {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	return float64(maxC) / float64(minC)
}

// NormalizedEntropy returns label entropy divided by log(k) so 1 means a
// uniform distribution across the k observed classes. Returns 1 for <=1 class.
func (cb *ClassBalance) NormalizedEntropy() float64 {
	k := len(cb.Counts)
	if k <= 1 || cb.Total == 0 {
		return 1
	}
	e := 0.0
	for _, c := range cb.Counts {
		p := float64(c) / float64(cb.Total)
		e -= p * math.Log(p)
	}
	return e / math.Log(float64(k))
}

// Correlation returns the Pearson correlation of two equal-length series,
// skipping pairs where either value is NaN. It errors on length mismatch
// or fewer than two valid pairs.
func Correlation(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: correlation length mismatch %d vs %d", len(a), len(b))
	}
	var ra, rb Running
	pairs := make([][2]float64, 0, len(a))
	for i := range a {
		if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
			continue
		}
		ra.Add(a[i])
		rb.Add(b[i])
		pairs = append(pairs, [2]float64{a[i], b[i]})
	}
	if len(pairs) < 2 {
		return 0, errors.New("stats: correlation needs >=2 valid pairs")
	}
	cov := 0.0
	for _, p := range pairs {
		cov += (p[0] - ra.Mean()) * (p[1] - rb.Mean())
	}
	cov /= float64(len(pairs))
	denom := ra.Std() * rb.Std()
	if denom == 0 {
		return 0, errors.New("stats: correlation undefined for constant series")
	}
	return cov / denom, nil
}
