package npy

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, data []float64, shape []int, dtype DType) *Array {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, data, shape, dtype); err != nil {
		t.Fatalf("write: %v", err)
	}
	arr, err := Read(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return arr
}

func TestRoundTripFloat64(t *testing.T) {
	data := []float64{1.5, -2.25, 3.125, 0, math.Pi, -1e-300}
	arr := roundTrip(t, data, []int{2, 3}, Float64)
	if arr.DType != Float64 {
		t.Fatalf("dtype=%s", arr.DType)
	}
	if len(arr.Shape) != 2 || arr.Shape[0] != 2 || arr.Shape[1] != 3 {
		t.Fatalf("shape=%v", arr.Shape)
	}
	for i, v := range arr.Data {
		if v != data[i] {
			t.Fatalf("elem %d: %v != %v", i, v, data[i])
		}
	}
}

func TestRoundTripFloat32Precision(t *testing.T) {
	data := []float64{1.5, 0.25, -8}
	arr := roundTrip(t, data, []int{3}, Float32)
	for i, v := range arr.Data {
		if v != data[i] { // exactly representable in f32
			t.Fatalf("elem %d: %v != %v", i, v, data[i])
		}
	}
}

func TestRoundTripInts(t *testing.T) {
	data := []float64{-3, 0, 7, 2147483647}
	arr := roundTrip(t, data, []int{4}, Int32)
	for i, v := range arr.Data {
		if v != data[i] {
			t.Fatalf("i32 elem %d: %v != %v", i, v, data[i])
		}
	}
	data64 := []float64{-9007199254740992, 9007199254740992}
	arr = roundTrip(t, data64, []int{2}, Int64)
	for i, v := range arr.Data {
		if v != data64[i] {
			t.Fatalf("i64 elem %d: %v != %v", i, v, data64[i])
		}
	}
}

func TestRoundTripScalarShape(t *testing.T) {
	arr := roundTrip(t, []float64{42}, nil, Float64)
	if len(arr.Shape) != 0 || arr.Numel() != 1 || arr.Data[0] != 42 {
		t.Fatalf("scalar roundtrip: shape=%v data=%v", arr.Shape, arr.Data)
	}
}

func TestRoundTrip1DTrailingComma(t *testing.T) {
	// 1-D shapes must serialize as "(n,)" per the spec.
	var buf bytes.Buffer
	if err := Write(&buf, []float64{1, 2, 3}, []int{3}, Float64); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("(3,)")) {
		t.Fatal("1-D shape must have trailing comma")
	}
	arr, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(arr.Shape) != 1 || arr.Shape[0] != 3 {
		t.Fatalf("shape=%v", arr.Shape)
	}
}

func TestRoundTripEmptyArray(t *testing.T) {
	arr := roundTrip(t, nil, []int{0}, Float32)
	if arr.Numel() != 0 || len(arr.Data) != 0 {
		t.Fatalf("empty roundtrip: %v", arr)
	}
}

func TestHeaderPaddingAlignment(t *testing.T) {
	// Spec: data must begin at a multiple of 64 bytes.
	for _, shape := range [][]int{{1}, {3, 4}, {2, 3, 4, 5}, {1000000}} {
		h := buildHeader(shape, Float64)
		if (10+len(h))%64 != 0 {
			t.Fatalf("shape %v: preamble %d not 64-aligned", shape, 10+len(h))
		}
		if !strings.HasSuffix(h, "\n") {
			t.Fatal("header must end with newline")
		}
	}
}

func TestWriteErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []float64{1, 2}, []int{3}, Float64); err == nil {
		t.Fatal("want element-count error")
	}
	if err := Write(&buf, []float64{1}, []int{1}, DType("<c16")); err == nil {
		t.Fatal("want unsupported-dtype error")
	}
	if err := Write(&buf, []float64{1}, []int{-1}, Float64); err == nil {
		t.Fatal("want negative-dim error")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not numpy data here"))); err == nil {
		t.Fatal("want bad-magic error")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("want EOF error")
	}
	// Truncated payload.
	var buf bytes.Buffer
	if err := Write(&buf, []float64{1, 2, 3, 4}, []int{4}, Float64); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-8]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Fatal("want truncation error")
	}
}

func TestReadRejectsFortranOrder(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []float64{1}, []int{1}, Float64); err != nil {
		t.Fatal(err)
	}
	b := bytes.Replace(buf.Bytes(), []byte("False"), []byte("True "), 1)
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Fatal("want fortran_order rejection")
	}
}

func TestReadVersion2Header(t *testing.T) {
	// Hand-build a v2.0 file (4-byte header length) and confirm we read it.
	h := buildHeader([]int{2}, Float64)
	var buf bytes.Buffer
	buf.Write([]byte{0x93, 'N', 'U', 'M', 'P', 'Y', 2, 0})
	var hlen [4]byte
	binary.LittleEndian.PutUint32(hlen[:], uint32(len(h)))
	buf.Write(hlen[:])
	buf.WriteString(h)
	var payload [16]byte
	binary.LittleEndian.PutUint64(payload[0:], math.Float64bits(5))
	binary.LittleEndian.PutUint64(payload[8:], math.Float64bits(6))
	buf.Write(payload[:])
	arr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if arr.Data[0] != 5 || arr.Data[1] != 6 {
		t.Fatalf("v2 data=%v", arr.Data)
	}
}

func TestReadRejectsUnknownVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0x93, 'N', 'U', 'M', 'P', 'Y', 9, 0, 0, 0})
	if _, err := Read(&buf); err == nil {
		t.Fatal("want version error")
	}
}

func TestNPZRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewNPZWriter(&buf)
	if err := w.Add("temperature", []float64{280, 290, 300}, []int{3}, Float32); err != nil {
		t.Fatal(err)
	}
	if err := w.Add("pressure", []float64{1000, 900}, []int{2, 1}, Float64); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	arrs, err := ReadNPZBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(arrs) != 2 {
		t.Fatalf("members=%d", len(arrs))
	}
	temp, ok := arrs["temperature"]
	if !ok {
		t.Fatalf("missing temperature member, have %v", arrs)
	}
	if temp.Data[2] != 300 {
		t.Fatalf("temp=%v", temp.Data)
	}
	p := arrs["pressure"]
	if len(p.Shape) != 2 || p.Shape[0] != 2 {
		t.Fatalf("pressure shape=%v", p.Shape)
	}
}

func TestNPZEmptyName(t *testing.T) {
	w := NewNPZWriter(&bytes.Buffer{})
	if err := w.Add("", nil, []int{0}, Float64); err == nil {
		t.Fatal("want empty-name error")
	}
}

func TestNPZBadArchive(t *testing.T) {
	if _, err := ReadNPZBytes([]byte("garbage")); err == nil {
		t.Fatal("want archive error")
	}
}

// Property: float64 write→read is the identity for any finite data.
func TestRoundTripPropertyFloat64(t *testing.T) {
	f := func(vals []float64) bool {
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if !math.IsNaN(v) { // NaN != NaN breaks naive compare
				clean = append(clean, v)
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, clean, []int{len(clean)}, Float64); err != nil {
			return false
		}
		arr, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(arr.Data) != len(clean) {
			return false
		}
		for i := range clean {
			if arr.Data[i] != clean[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: NaN payloads survive float64 round trips bit-for-bit as NaN.
func TestRoundTripNaN(t *testing.T) {
	arr := roundTrip(t, []float64{math.NaN(), 1}, []int{2}, Float64)
	if !math.IsNaN(arr.Data[0]) || arr.Data[1] != 1 {
		t.Fatalf("NaN roundtrip failed: %v", arr.Data)
	}
}

func BenchmarkWriteFloat32(b *testing.B) {
	data := make([]float64, 64*128)
	for i := range data {
		data[i] = float64(i) * 0.1
	}
	b.SetBytes(int64(len(data) * 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, data, []int{64, 128}, Float32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadFloat32(b *testing.B) {
	data := make([]float64, 64*128)
	var buf bytes.Buffer
	if err := Write(&buf, data, []int{64, 128}, Float32); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(data) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
