package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestHistogramExemplarExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("draid_req_seconds", "Req.", []float64{0.01, 0.1, 1}, "route")
	h.With("/v1/jobs").ObserveWithExemplar(0.05, "trace-slow.1")
	h.With("/v1/jobs").ObserveWithExemplar(5, "trace-huge.2") // +Inf bucket
	h.With("/v1/jobs").Observe(0.0001)                        // no exemplar on the 0.01 bucket

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`draid_req_seconds_bucket{route="/v1/jobs",le="0.1"} 2 # {trace_id="trace-slow.1"} 0.05`,
		`draid_req_seconds_bucket{route="/v1/jobs",le="+Inf"} 3 # {trace_id="trace-huge.2"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `le="0.01"} 1 #`) {
		t.Errorf("unexemplared bucket grew an exemplar:\n%s", out)
	}

	// The whole document, exemplars included, must satisfy the strict
	// parser and surface the exemplar structurally.
	series, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("strict parse of exemplared exposition: %v\n%s", err, out)
	}
	found := 0
	for _, s := range series {
		if s.Exemplar == nil {
			continue
		}
		found++
		if s.Exemplar.Labels["trace_id"] == "" {
			t.Errorf("series %s%v exemplar without trace_id: %+v", s.Name, s.Labels, s.Exemplar)
		}
	}
	if found != 2 {
		t.Errorf("parser surfaced %d exemplars, want 2", found)
	}
}

func TestObserveWithExemplarLastWriterWins(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("draid_w_seconds", "w", []float64{1}).With()
	h.ObserveWithExemplar(0.5, "first")
	h.ObserveWithExemplar(0.25, "second")
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	if !strings.Contains(out, `# {trace_id="second"} 0.25`) {
		t.Errorf("latest exemplar not exposed:\n%s", out)
	}
	if strings.Contains(out, "first") {
		t.Errorf("stale exemplar survived:\n%s", out)
	}
}

func TestObserveWithExemplarRejectsInvalidTrace(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("draid_i_seconds", "i", []float64{1}).With()
	h.ObserveWithExemplar(0.5, "")
	h.ObserveWithExemplar(0.5, "bad id with spaces")
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	if strings.Contains(out, "trace_id") {
		t.Errorf("invalid trace IDs produced exemplars:\n%s", out)
	}
	if !strings.Contains(out, `draid_i_seconds_count 2`) {
		t.Errorf("observations lost when exemplar rejected:\n%s", out)
	}
}

func TestParseRejectsBadExemplars(t *testing.T) {
	cases := map[string]string{
		"gauge exemplar": "# TYPE draid_g gauge\ndraid_g 1 # {trace_id=\"t\"} 1\n",
		"sum exemplar": "# TYPE draid_h histogram\n" +
			"draid_h_bucket{le=\"+Inf\"} 1\ndraid_h_sum 1 # {trace_id=\"t\"} 1\ndraid_h_count 1\n",
		"exemplar above le bound": "# TYPE draid_h histogram\n" +
			"draid_h_bucket{le=\"0.1\"} 1 # {trace_id=\"t\"} 5\n" +
			"draid_h_bucket{le=\"+Inf\"} 1\ndraid_h_sum 0.05\ndraid_h_count 1\n",
		"empty label set": "# TYPE draid_h histogram\n" +
			"draid_h_bucket{le=\"+Inf\"} 1 # {} 1\ndraid_h_sum 1\ndraid_h_count 1\n",
		"missing value": "# TYPE draid_h histogram\n" +
			"draid_h_bucket{le=\"+Inf\"} 1 # {trace_id=\"t\"}\ndraid_h_sum 1\ndraid_h_count 1\n",
		"trailing junk": "# TYPE draid_h histogram\n" +
			"draid_h_bucket{le=\"+Inf\"} 1 # {trace_id=\"t\"} 1 extra\ndraid_h_sum 1\ndraid_h_count 1\n",
		"no hash prefix": "# TYPE draid_g gauge\ndraid_g 1 {trace_id=\"t\"} 1\n",
	}
	for name, doc := range cases {
		if _, err := ParseText(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: strict parser accepted\n%s", name, doc)
		}
	}
}

func TestParseAcceptsCounterExemplar(t *testing.T) {
	doc := "# TYPE draid_x_total counter\ndraid_x_total 5 # {trace_id=\"abc\"} 1\n"
	series, err := ParseText(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("counter exemplar rejected: %v", err)
	}
	if len(series) != 1 || series[0].Exemplar == nil || series[0].Exemplar.Labels["trace_id"] != "abc" {
		t.Fatalf("parsed series = %+v", series)
	}
}
