// Persistent job log: an append-only NDJSON file under the data
// directory recording every job's spec, state transitions, readiness
// trajectory, shard manifest, and (for bio jobs) the per-job shard key
// sealed under a server master key. A restarted draid replays the log
// and re-serves completed jobs' shard sets straight from disk — the
// same recover-by-replay design as an audit ledger, where the log is
// the source of truth and process memory is just a cache of its tail.
package server

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/anonymize"
	"repro/internal/shard"
)

// Log record types, one per line of jobs.log.
const (
	recSubmitted = "submitted" // job accepted into the queue
	recDone      = "done"      // pipeline finished; payload fields set
	recFailed    = "failed"    // pipeline errored (or lost to a restart)
	recEvicted   = "evicted"   // completed job expired; shards deleted
)

// logRecord is one NDJSON line. Only the fields relevant to its Type
// are populated.
type logRecord struct {
	Type      string            `json:"type"`
	ID        string            `json:"id"`
	Time      time.Time         `json:"time"`
	Spec      *JobSpec          `json:"spec,omitempty"`
	Error     string            `json:"error,omitempty"`
	Started   time.Time         `json:"started,omitzero"`
	Records   int64             `json:"records,omitempty"`
	Servable  bool              `json:"servable,omitempty"`
	Manifest  *shard.Manifest   `json:"manifest,omitempty"`
	Traject   []TrajectoryPoint `json:"trajectory,omitempty"`
	SealedKey string            `json:"sealed_key,omitempty"` // hex(AES-GCM(master, jobKey))
}

// jobLog appends NDJSON records to jobs.log, syncing each append so a
// crash loses at most the record being written (which replay then
// discards as a torn tail).
type jobLog struct {
	mu sync.Mutex
	f  *os.File
}

func openJobLog(path string) (*jobLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: open job log: %w", err)
	}
	// A crash mid-append leaves a torn line with no trailing newline.
	// Seal it so the next record starts on its own line instead of
	// merging into the garbage; replay skips the sealed fragment.
	if fi, err := f.Stat(); err == nil && fi.Size() > 0 {
		tail := make([]byte, 1)
		if _, err := f.ReadAt(tail, fi.Size()-1); err == nil && tail[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, fmt.Errorf("server: seal torn job log tail: %w", err)
			}
		}
	}
	return &jobLog{f: f}, nil
}

func (l *jobLog) append(rec logRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("server: encode job log record: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("server: append job log: %w", err)
	}
	return l.f.Sync()
}

func (l *jobLog) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// readJobLog parses every complete line of the log. Unparsable lines
// (torn appends from a crash, later sealed by openJobLog) are skipped:
// a record either committed fully — one line, one fsync — or it never
// happened.
func readJobLog(path string) ([]logRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("server: read job log: %w", err)
	}
	defer f.Close()
	var recs []logRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec logRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("server: scan job log: %w", err)
	}
	return recs, nil
}

// masterKeyFile holds the 32-byte key that seals per-job bio shard
// keys inside log records, so plaintext shard keys never rest on disk.
const masterKeyFile = "master.key"

// loadOrCreateMasterKey returns the data directory's sealing key,
// creating it (0600) on first start.
func loadOrCreateMasterKey(dataDir string) ([]byte, error) {
	path := filepath.Join(dataDir, masterKeyFile)
	b, err := os.ReadFile(path)
	if err == nil {
		key, derr := hex.DecodeString(strings.TrimSpace(string(b)))
		if derr != nil || len(key) != 32 {
			return nil, fmt.Errorf("server: %s is not a hex-encoded 32-byte key", path)
		}
		return key, nil
	}
	if !os.IsNotExist(err) {
		return nil, fmt.Errorf("server: read master key: %w", err)
	}
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("server: generate master key: %w", err)
	}
	if err := os.WriteFile(path, []byte(hex.EncodeToString(key)+"\n"), 0o600); err != nil {
		return nil, fmt.Errorf("server: write master key: %w", err)
	}
	return key, nil
}

// sealJobKey protects a per-job shard key for the log, binding it to
// the job ID so sealed keys cannot be swapped between records.
func sealJobKey(master, jobKey []byte, jobID string) (string, error) {
	sealed, err := anonymize.EncryptShard(master, "jobkey/"+jobID, jobKey)
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(sealed), nil
}

// unsealJobKey reverses sealJobKey.
func unsealJobKey(master []byte, sealedHex, jobID string) ([]byte, error) {
	sealed, err := hex.DecodeString(sealedHex)
	if err != nil {
		return nil, fmt.Errorf("server: sealed key for %s is not hex: %w", jobID, err)
	}
	return anonymize.DecryptShard(master, "jobkey/"+jobID, sealed)
}

// replayState is a job reconstructed from the log.
type replayState struct {
	rec     logRecord // the terminal (or submitted) record
	sub     logRecord // the submitted record
	hasSub  bool
	hasTerm bool
}

// replayJobs folds the log into the surviving job set, in submission
// order, and returns the highest job sequence number seen.
func replayJobs(recs []logRecord) (jobs []*replayState, maxSeq int) {
	byID := map[string]*replayState{}
	var order []string
	for _, rec := range recs {
		if n, ok := jobSeq(rec.ID); ok && n > maxSeq {
			maxSeq = n
		}
		st := byID[rec.ID]
		if st == nil {
			st = &replayState{}
			byID[rec.ID] = st
			order = append(order, rec.ID)
		}
		switch rec.Type {
		case recSubmitted:
			st.sub, st.hasSub = rec, true
		case recDone, recFailed:
			st.rec, st.hasTerm = rec, true
		case recEvicted:
			delete(byID, rec.ID)
		}
	}
	for _, id := range order {
		if st, ok := byID[id]; ok && st.hasSub {
			jobs = append(jobs, st)
		}
	}
	return jobs, maxSeq
}

// jobSeq extracts the numeric suffix of "job-%06d" IDs so a restarted
// server keeps allocating fresh IDs.
func jobSeq(id string) (int, bool) {
	const prefix = "job-"
	if !strings.HasPrefix(id, prefix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimPrefix(id, prefix))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
