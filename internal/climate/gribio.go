package climate

import (
	"errors"
	"fmt"

	"repro/internal/formats/grib"
	"repro/internal/tensor"
)

// ToGRIB encodes each timestep of the field as one GRIB-style message
// with the given packing width (the ERA5-style encoded distribution
// format; missing cells travel in the bitmap).
func (f *Field) ToGRIB(bits int) ([][]byte, error) {
	if f.Data.Rank() != 3 {
		return nil, fmt.Errorf("climate: ToGRIB needs [T,lat,lon], got %v", f.Data.Shape())
	}
	T, lat, lon := f.Data.Dim(0), f.Data.Dim(1), f.Data.Dim(2)
	out := make([][]byte, T)
	for t := 0; t < T; t++ {
		month, err := f.Data.SubTensor(t)
		if err != nil {
			return nil, err
		}
		msg, err := grib.Encode(month.Data(), lon, lat, bits)
		if err != nil {
			return nil, fmt.Errorf("climate: encode month %d: %w", t, err)
		}
		out[t] = msg
	}
	return out, nil
}

// FromGRIB decodes a message sequence (one per timestep, identical grids)
// back into a Field. Quantization error is bounded by the messages'
// packing parameters. Coordinates are reconstructed as uniform global.
func FromGRIB(messages [][]byte, name, units string) (*Field, error) {
	if len(messages) == 0 {
		return nil, errors.New("climate: no GRIB messages")
	}
	first, err := grib.Decode(messages[0])
	if err != nil {
		return nil, fmt.Errorf("climate: decode message 0: %w", err)
	}
	lat, lon := first.Nj, first.Ni
	stack := tensor.New(len(messages), lat, lon)
	for t, raw := range messages {
		msg, err := grib.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("climate: decode message %d: %w", t, err)
		}
		if msg.Ni != lon || msg.Nj != lat {
			return nil, fmt.Errorf("climate: message %d grid %dx%d != %dx%d",
				t, msg.Nj, msg.Ni, lat, lon)
		}
		sub, err := tensor.FromSlice(msg.Values, lat, lon)
		if err != nil {
			return nil, err
		}
		if err := stack.SetSubTensor(t, sub); err != nil {
			return nil, err
		}
	}
	return &Field{
		Name:  name,
		Units: units,
		Data:  stack,
		Lats:  linspace(-90, 90, lat),
		Lons:  linspace(0, 360*(1-1/float64(lon)), lon),
	}, nil
}
