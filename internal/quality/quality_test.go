package quality

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func tensorFrom(t *testing.T, vals []float64, shape ...int) *tensor.Tensor {
	t.Helper()
	x, err := tensor.FromSlice(vals, shape...)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestFillMean(t *testing.T) {
	x := tensorFrom(t, []float64{1, math.NaN(), 3}, 3)
	out, rep, err := FillMissing(x, FillMean, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Missing != 1 || rep.Repaired != 1 {
		t.Fatalf("report=%+v", rep)
	}
	if out.At(1) != 2 {
		t.Fatalf("filled=%v", out.Data())
	}
}

func TestFillMedian(t *testing.T) {
	x := tensorFrom(t, []float64{1, 2, 100, math.NaN()}, 4)
	out, _, err := FillMissing(x, FillMedian, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(3) != 2 { // median of {1,2,100}
		t.Fatalf("filled=%v", out.Data())
	}
}

func TestFillConstant(t *testing.T) {
	x := tensorFrom(t, []float64{math.NaN(), math.NaN()}, 2)
	out, rep, err := FillMissing(x, FillConstant, -999)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 2 || out.At(0) != -999 {
		t.Fatalf("rep=%+v data=%v", rep, out.Data())
	}
}

func TestFillInterpolateInterior(t *testing.T) {
	x := tensorFrom(t, []float64{0, math.NaN(), math.NaN(), 3}, 4)
	out, rep, err := FillMissing(x, FillInterpolate, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 2 {
		t.Fatalf("rep=%+v", rep)
	}
	if out.At(1) != 1 || out.At(2) != 2 {
		t.Fatalf("interp=%v", out.Data())
	}
}

func TestFillInterpolateEdges(t *testing.T) {
	x := tensorFrom(t, []float64{math.NaN(), 5, 7, math.NaN(), math.NaN()}, 5)
	out, _, err := FillMissing(x, FillInterpolate, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0) != 5 || out.At(3) != 7 || out.At(4) != 7 {
		t.Fatalf("edge extend=%v", out.Data())
	}
}

func TestFillInterpolateAllNaN(t *testing.T) {
	x := tensorFrom(t, []float64{math.NaN(), math.NaN()}, 2)
	out, rep, err := FillMissing(x, FillInterpolate, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 0 || out.CountNaN() != 2 {
		t.Fatal("all-NaN should be untouched by interpolation")
	}
}

func TestFillMeanAllNaNErrors(t *testing.T) {
	x := tensorFrom(t, []float64{math.NaN()}, 1)
	if _, _, err := FillMissing(x, FillMean, 0); err == nil {
		t.Fatal("want all-NaN error")
	}
}

func TestDropRows(t *testing.T) {
	x := tensorFrom(t, []float64{
		1, 2,
		math.NaN(), 4,
		5, 6,
	}, 3, 2)
	out, rep, err := FillMissing(x, DropRows, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsDropped != 1 {
		t.Fatalf("rep=%+v", rep)
	}
	if out.Dim(0) != 2 || out.At(0, 0) != 1 || out.At(1, 1) != 6 {
		t.Fatalf("out=%v shape=%v", out.Data(), out.Shape())
	}
}

func TestDropRowsScalarErrors(t *testing.T) {
	if _, _, err := FillMissing(tensor.New(), DropRows, 0); err == nil {
		t.Fatal("want rank error")
	}
}

func TestUnknownStrategy(t *testing.T) {
	if _, _, err := FillMissing(tensor.New(1), FillStrategy(99), 0); err == nil {
		t.Fatal("want unknown-strategy error")
	}
}

func TestStrategyStrings(t *testing.T) {
	for _, s := range []FillStrategy{FillMean, FillMedian, FillConstant, FillInterpolate, DropRows} {
		if strings.Contains(s.String(), "FillStrategy(") {
			t.Fatalf("missing name for %d", s)
		}
	}
	if !strings.Contains(FillStrategy(42).String(), "42") {
		t.Fatal("unknown strategy string")
	}
}

func TestDetectOutliersZScore(t *testing.T) {
	xs := []float64{1, 1.1, 0.9, 1.05, 0.95, 50}
	idx, err := DetectOutliers(xs, ZScore, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 1 || idx[0] != 5 {
		t.Fatalf("idx=%v", idx)
	}
}

func TestDetectOutliersIQR(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 1000}
	idx, err := DetectOutliers(xs, IQR, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 1 || idx[0] != 8 {
		t.Fatalf("idx=%v", idx)
	}
}

func TestDetectOutliersConstantSeries(t *testing.T) {
	idx, err := DetectOutliers([]float64{5, 5, 5, 5}, ZScore, 3)
	if err != nil || len(idx) != 0 {
		t.Fatalf("idx=%v err=%v", idx, err)
	}
}

func TestDetectOutliersSkipsNaN(t *testing.T) {
	xs := []float64{1, math.NaN(), 1, 1, 100}
	idx, err := DetectOutliers(xs, ZScore, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range idx {
		if i == 1 {
			t.Fatal("NaN flagged as outlier")
		}
	}
}

func TestDetectOutliersBadK(t *testing.T) {
	if _, err := DetectOutliers([]float64{1}, ZScore, 0); err == nil {
		t.Fatal("want multiplier error")
	}
	if _, err := DetectOutliers([]float64{1}, OutlierMethod(9), 1); err == nil {
		t.Fatal("want method error")
	}
}

func TestWinsorize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 1000}
	n, err := WinsorizeOutliers(xs, IQR, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("clamped=%d", n)
	}
	if xs[8] >= 1000 {
		t.Fatalf("not clamped: %v", xs[8])
	}
	// After winsorizing, no further IQR outliers (bounds from original data).
	if xs[8] < 8 {
		t.Fatalf("clamped below max inlier: %v", xs[8])
	}
}

func TestWinsorizeNoOutliers(t *testing.T) {
	xs := []float64{1, 2, 3}
	n, err := WinsorizeOutliers(xs, ZScore, 5)
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestBuildDatasheetClean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 2000)
	for i := range vals {
		vals[i] = rng.Float64() * 100 // uniform: good coverage
	}
	d, err := BuildDatasheet("clean", vals, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.MissingRate != 0 {
		t.Fatalf("missing=%v", d.MissingRate)
	}
	if d.QualityScore() < 0.9 {
		t.Fatalf("clean data scored %v\n%s", d.QualityScore(), d)
	}
	if len(d.Issues) != 0 {
		t.Fatalf("issues=%v", d.Issues)
	}
}

func TestBuildDatasheetDirty(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = 1 // concentrated
	}
	for i := 0; i < 100; i++ {
		vals[i] = math.NaN() // 10% missing
	}
	labels := make([]string, 1000)
	for i := range labels {
		if i < 950 {
			labels[i] = "majority"
		} else {
			labels[i] = "minority"
		}
	}
	d, err := BuildDatasheet("dirty", vals, labels)
	if err != nil {
		t.Fatal(err)
	}
	if d.QualityScore() > 0.7 {
		t.Fatalf("dirty data scored %v", d.QualityScore())
	}
	joined := strings.Join(d.Issues, ";")
	if !strings.Contains(joined, "missing") {
		t.Fatalf("issues=%v", d.Issues)
	}
	if !strings.Contains(joined, "imbalance") {
		t.Fatalf("issues=%v", d.Issues)
	}
	if d.Imbalance != 19 {
		t.Fatalf("imbalance=%v", d.Imbalance)
	}
}

func TestBuildDatasheetEmpty(t *testing.T) {
	if _, err := BuildDatasheet("x", nil, nil); err == nil {
		t.Fatal("want empty error")
	}
}

func TestDatasheetString(t *testing.T) {
	d, err := BuildDatasheet("demo", []float64{1, 2, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := d.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "samples=3") {
		t.Fatalf("string=%q", s)
	}
}

// Property: after any fill strategy except DropRows, no NaNs remain
// (unless the input was entirely NaN).
func TestFillEliminatesNaNProperty(t *testing.T) {
	f := func(seed int64, strat uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 2
		vals := make([]float64, n)
		hasValid := false
		for i := range vals {
			if rng.Float64() < 0.3 {
				vals[i] = math.NaN()
			} else {
				vals[i] = rng.NormFloat64()
				hasValid = true
			}
		}
		if !hasValid {
			return true
		}
		strategy := []FillStrategy{FillMean, FillMedian, FillConstant, FillInterpolate}[strat%4]
		x, err := tensor.FromSlice(vals, n)
		if err != nil {
			return false
		}
		out, _, err := FillMissing(x, strategy, 0)
		if err != nil {
			return false
		}
		return out.CountNaN() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interpolation is exact for linear series.
func TestInterpolateLinearProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 5
		a, b := rng.NormFloat64(), rng.NormFloat64()
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = a + b*float64(i)
		}
		// Punch interior holes (keep endpoints).
		holes := rng.Intn(n - 2)
		for h := 0; h < holes; h++ {
			vals[1+rng.Intn(n-2)] = math.NaN()
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = a + b*float64(i)
		}
		interpolateNaN(vals)
		for i := range vals {
			if math.Abs(vals[i]-want[i]) > 1e-9*math.Max(1, math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFillInterpolate(b *testing.B) {
	base := make([]float64, 100000)
	for i := range base {
		if i%7 == 0 {
			base[i] = math.NaN()
		} else {
			base[i] = float64(i)
		}
	}
	work := make([]float64, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, base)
		interpolateNaN(work)
	}
}
