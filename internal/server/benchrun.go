// Serving-throughput benchmark harness: stands up a draid server over
// httptest, prepares one completed job, then hammers the batch endpoint
// with N concurrent streaming clients. Shared by the Go benchmark, the
// end-to-end tests, and cmd/benchreport's BENCH_serve.json artifact, so
// future PRs track serving speed with one number.
package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/core"
)

// ServeBenchResult reports one throughput run; JSON field names are the
// BENCH_serve.json schema.
type ServeBenchResult struct {
	Clients       int     `json:"clients"`
	BatchSize     int     `json:"batch_size"`
	Batches       int64   `json:"batches"`
	Samples       int64   `json:"samples"`
	Bytes         int64   `json:"bytes"`
	Seconds       float64 `json:"seconds"`
	BytesPerSec   float64 `json:"bytes_per_sec"`
	BatchesPerSec float64 `json:"batches_per_sec"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
}

// Render formats the result for benchreport's console output.
func (r *ServeBenchResult) Render() string {
	return fmt.Sprintf(
		"Serving throughput — %d concurrent clients, batch size %d:\n"+
			"  %d batches (%d samples, %d bytes) in %.3fs\n"+
			"  %.2f MiB/s, %.0f batches/s; shard cache %d hits / %d misses\n",
		r.Clients, r.BatchSize, r.Batches, r.Samples, r.Bytes, r.Seconds,
		r.BytesPerSec/(1024*1024), r.BatchesPerSec, r.CacheHits, r.CacheMisses)
}

// RunServeBenchmark measures concurrent streaming throughput: it
// submits one climate job, waits for readiness, then runs `clients`
// parallel readers each streaming up to maxBatches batches of
// batchSize samples. passes<=0 means each client streams once.
func RunServeBenchmark(clients, batchSize, maxBatches, passes int) (*ServeBenchResult, error) {
	if clients <= 0 {
		return nil, fmt.Errorf("server: clients=%d must be positive", clients)
	}
	if passes <= 0 {
		passes = 1
	}
	s := New(Options{Workers: 2, CacheBytes: 64 << 20})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id, err := SubmitAndWait(ts.URL, JobSpec{Domain: core.Climate, Name: "serve-bench", Seed: 1}, 60*time.Second)
	if err != nil {
		return nil, err
	}

	url := fmt.Sprintf("%s/v1/jobs/%s/batches?batch_size=%d&max_batches=%d", ts.URL, id, batchSize, maxBatches)
	res := &ServeBenchResult{Clients: clients, BatchSize: batchSize}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := 0; p < passes; p++ {
				batches, samples, n, err := StreamBatches(url)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				res.Batches += batches
				res.Samples += samples
				res.Bytes += n
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Seconds = time.Since(start).Seconds()
	if firstErr != nil {
		return nil, firstErr
	}
	if res.Seconds > 0 {
		res.BytesPerSec = float64(res.Bytes) / res.Seconds
		res.BatchesPerSec = float64(res.Batches) / res.Seconds
	}
	cs := s.cache.Stats()
	res.CacheHits, res.CacheMisses = cs.Hits, cs.Misses
	return res, nil
}

// SubmitAndWait posts a job spec to a running draid server and polls it
// until done, returning the job ID.
func SubmitAndWait(baseURL string, spec JobSpec, timeout time.Duration) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	resp, err := http.Post(baseURL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	var st JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(baseURL + "/v1/jobs/" + st.ID)
		if err != nil {
			return "", err
		}
		var cur JobStatus
		err = json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		switch cur.State {
		case JobDone:
			return cur.ID, nil
		case JobFailed:
			return "", fmt.Errorf("job %s failed: %s", cur.ID, cur.Error)
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("job %s still %s after %s", cur.ID, cur.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// StreamBatches consumes one NDJSON batch stream, validating every
// line, and returns (batches, samples, bytes).
func StreamBatches(url string) (batches, samples, n int64, err error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return 0, 0, 0, fmt.Errorf("stream: status %d: %s", resp.StatusCode, b)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		n += int64(len(line)) + 1
		var wire struct {
			Error    string      `json:"error"`
			Features [][]float32 `json:"features"`
			Labels   []int32     `json:"labels"`
		}
		if err := json.Unmarshal(line, &wire); err != nil {
			return batches, samples, n, fmt.Errorf("stream: bad line: %w", err)
		}
		if wire.Error != "" {
			return batches, samples, n, fmt.Errorf("stream: server error: %s", wire.Error)
		}
		if len(wire.Features) != len(wire.Labels) {
			return batches, samples, n, fmt.Errorf("stream: %d feature rows vs %d labels", len(wire.Features), len(wire.Labels))
		}
		batches++
		samples += int64(len(wire.Labels))
	}
	return batches, samples, n, sc.Err()
}
