package shard

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func mkRecords(n, size int) [][]byte {
	recs := make([][]byte, n)
	for i := range recs {
		r := make([]byte, size)
		for j := range r {
			r[j] = byte(i + j)
		}
		recs[i] = r
	}
	return recs
}

func TestSingleShardRoundTrip(t *testing.T) {
	sink := NewMemSink()
	w, err := NewWriter(sink, Options{Prefix: "train"})
	if err != nil {
		t.Fatal(err)
	}
	recs := mkRecords(10, 100)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	m, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != 1 || m.Shards[0].Records != 10 {
		t.Fatalf("manifest=%+v", m)
	}
	if m.Shards[0].Name != "train-00000" {
		t.Fatalf("name=%q", m.Shards[0].Name)
	}
	var got [][]byte
	err = ReadAll(sink, m, func(_ string, rec []byte) error {
		got = append(got, append([]byte(nil), rec...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("read %d records", len(got))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestSizeTargetedRotation(t *testing.T) {
	sink := NewMemSink()
	w, err := NewWriter(sink, Options{Prefix: "s", TargetBytes: 500})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range mkRecords(20, 100) { // 20*(100+16) bytes raw
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	m, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) < 4 {
		t.Fatalf("expected rotation, got %d shards", len(m.Shards))
	}
	if m.TotalRecords() != 20 {
		t.Fatalf("total=%d", m.TotalRecords())
	}
	for _, s := range m.Shards {
		if s.Records == 0 {
			t.Fatalf("empty shard %q", s.Name)
		}
	}
}

func TestCompression(t *testing.T) {
	recs := mkRecords(50, 1000)
	// Zero-heavy records compress well.
	for i := range recs {
		for j := range recs[i] {
			recs[i][j] = 0
		}
	}
	plain := NewMemSink()
	wp, _ := NewWriter(plain, Options{Prefix: "p"})
	for _, r := range recs {
		if err := wp.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	mp, _ := wp.Close()

	comp := NewMemSink()
	wc, _ := NewWriter(comp, Options{Prefix: "c", Compress: true})
	for _, r := range recs {
		if err := wc.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	mc, err := wc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if mc.TotalStoredBytes() >= mp.TotalStoredBytes()/10 {
		t.Fatalf("compressed %d vs plain %d", mc.TotalStoredBytes(), mp.TotalStoredBytes())
	}
	// Compressed shards read back fine.
	n := 0
	if err := ReadAll(comp, mc, func(string, []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("read %d", n)
	}
}

func TestManifestEncodeDecode(t *testing.T) {
	sink := NewMemSink()
	w, _ := NewWriter(sink, Options{Prefix: "x"})
	if err := w.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	m, _ := w.Close()
	enc, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeManifest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Shards[0].SHA256 != m.Shards[0].SHA256 {
		t.Fatal("manifest roundtrip lost checksum")
	}
	if _, err := DecodeManifest([]byte("{bad")); err == nil {
		t.Fatal("want decode error")
	}
}

func TestChecksumVerification(t *testing.T) {
	sink := NewMemSink()
	w, _ := NewWriter(sink, Options{Prefix: "v"})
	if err := w.Write(mkRecords(1, 64)[0]); err != nil {
		t.Fatal(err)
	}
	m, _ := w.Close()
	// Corrupt the stored shard.
	sink.mu.Lock()
	buf := sink.shards["v-00000"]
	b := buf.Bytes()
	b[20] ^= 0xFF
	sink.mu.Unlock()
	err := ReadAll(sink, m, func(string, []byte) error { return nil })
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("err=%v, want ErrChecksum", err)
	}
}

func TestRecordCountVerification(t *testing.T) {
	sink := NewMemSink()
	w, _ := NewWriter(sink, Options{Prefix: "n"})
	if err := w.Write([]byte("one")); err != nil {
		t.Fatal(err)
	}
	m, _ := w.Close()
	m.Shards[0].Records = 5 // lie
	err := ReadAll(sink, m, func(string, []byte) error { return nil })
	if err == nil || errors.Is(err, ErrChecksum) {
		// SHA still matches, so the count check must fire.
		if err == nil {
			t.Fatal("want count mismatch error")
		}
	}
	if !strings.Contains(err.Error(), "manifest says") {
		t.Fatalf("err=%v", err)
	}
}

func TestReadAllCallbackError(t *testing.T) {
	sink := NewMemSink()
	w, _ := NewWriter(sink, Options{})
	if err := w.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	m, _ := w.Close()
	sentinel := errors.New("stop")
	if err := ReadAll(sink, m, func(string, []byte) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err=%v", err)
	}
}

func TestParallelWriteAllWidths(t *testing.T) {
	recs := mkRecords(101, 64)
	for _, workers := range []int{1, 2, 4, 8} {
		sink := NewMemSink()
		m, err := ParallelWrite(sink, Options{Prefix: "p", TargetBytes: 1000}, workers, recs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if m.TotalRecords() != 101 {
			t.Fatalf("workers=%d: total=%d", workers, m.TotalRecords())
		}
		// Read back, count all records, ensure content multiset matches.
		seen := make(map[string]int)
		if err := ReadAll(sink, m, func(_ string, rec []byte) error {
			seen[string(rec)]++
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, r := range recs {
			if seen[string(r)] == 0 {
				t.Fatalf("workers=%d: record lost", workers)
			}
			seen[string(r)]--
		}
	}
}

func TestParallelWriteErrors(t *testing.T) {
	if _, err := ParallelWrite(NewMemSink(), Options{}, 0, nil); err == nil {
		t.Fatal("want workers error")
	}
}

func TestWriterErrors(t *testing.T) {
	if _, err := NewWriter(nil, Options{}); err == nil {
		t.Fatal("want nil-sink error")
	}
	w, _ := NewWriter(NewMemSink(), Options{})
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write([]byte("late")); err == nil {
		t.Fatal("want closed error")
	}
	if _, err := w.Close(); err == nil {
		t.Fatal("want double-close error")
	}
}

func TestEmptyWriterManifest(t *testing.T) {
	w, _ := NewWriter(NewMemSink(), Options{})
	m, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != 0 || m.TotalRecords() != 0 {
		t.Fatalf("manifest=%+v", m)
	}
}

func TestMemSinkDuplicate(t *testing.T) {
	s := NewMemSink()
	w1, err := s.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("a"); err == nil {
		t.Fatal("want duplicate error")
	}
	if _, err := s.Open("missing"); err == nil {
		t.Fatal("want not-found error")
	}
}

func TestMemSinkNamesAndSize(t *testing.T) {
	s := NewMemSink()
	for _, n := range []string{"b", "a"} {
		w, _ := s.Create(n)
		if _, err := w.Write([]byte("xy")); err != nil {
			t.Fatal(err)
		}
		_ = w.Close()
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" {
		t.Fatalf("names=%v", names)
	}
	if s.Size("a") != 2 || s.Size("zzz") != 0 {
		t.Fatalf("sizes: %d %d", s.Size("a"), s.Size("zzz"))
	}
}

// Property: for any worker count and record set, parallel sharding loses
// nothing and duplicates nothing.
func TestParallelWriteProperty(t *testing.T) {
	f := func(seed int64, workers8, n8 uint8) bool {
		workers := int(workers8)%8 + 1
		n := int(n8) % 60
		recs := make([][]byte, n)
		for i := range recs {
			recs[i] = []byte(fmt.Sprintf("rec-%d-%d", seed, i))
		}
		sink := NewMemSink()
		m, err := ParallelWrite(sink, Options{Prefix: "q", TargetBytes: 200}, workers, recs)
		if err != nil {
			return false
		}
		if m.TotalRecords() != n {
			return false
		}
		seen := make(map[string]bool)
		if err := ReadAll(sink, m, func(_ string, rec []byte) error {
			if seen[string(rec)] {
				return errors.New("dup")
			}
			seen[string(rec)] = true
			return nil
		}); err != nil {
			return false
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteUncompressed(b *testing.B) {
	rec := make([]byte, 4096)
	b.SetBytes(int64(len(rec)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink := NewMemSink()
		w, _ := NewWriter(sink, Options{})
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
		if _, err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardCompression(b *testing.B) {
	recs := mkRecords(64, 4096)
	for _, compress := range []bool{false, true} {
		name := "off"
		if compress {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(64 * 4096))
			for i := 0; i < b.N; i++ {
				sink := NewMemSink()
				w, _ := NewWriter(sink, Options{Compress: compress})
				for _, r := range recs {
					if err := w.Write(r); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := w.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
