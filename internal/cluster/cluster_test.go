package cluster

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func healthz(ok *atomic.Bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if ok.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	return mux
}

func TestProbeDetectsDeathAndRecovery(t *testing.T) {
	var peerOK atomic.Bool
	peerOK.Store(true)
	peer := httptest.NewServer(healthz(&peerOK))
	defer peer.Close()

	var changes atomic.Int64
	c, err := New(Config{
		Self: "a",
		Nodes: []Node{
			{ID: "a", URL: "http://self.invalid"},
			{ID: "b", URL: peer.URL},
		},
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		FailAfter:     2,
		OnChange:      func() { changes.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Close()

	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	waitFor(func() bool { return c.Alive("b") }, "peer alive")
	peerOK.Store(false)
	waitFor(func() bool { return !c.Alive("b") }, "peer declared dead")
	// OnChange fires after the probe round completes, a beat after the
	// liveness flip becomes visible — wait rather than assert.
	waitFor(func() bool { return changes.Load() > 0 }, "OnChange after death")
	// Dead peer's keys must all land on the survivor.
	for _, key := range []string{"job-1", "job-2", "job-3"} {
		if got := c.Owner(key).ID; got != "a" {
			t.Fatalf("with b dead, %s owned by %s", key, got)
		}
	}
	peerOK.Store(true)
	waitFor(func() bool { return c.Alive("b") }, "peer recovered")
}

func TestMarkDownIsImmediate(t *testing.T) {
	var changes atomic.Int64
	c, err := New(Config{
		Self: "a",
		Nodes: []Node{
			{ID: "a", URL: "http://a.invalid"},
			{ID: "b", URL: "http://b.invalid"},
		},
		OnChange: func() { changes.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Alive("b") {
		t.Fatal("peers start optimistically alive")
	}
	c.MarkDown("b")
	if c.Alive("b") {
		t.Fatal("MarkDown must take effect immediately")
	}
	if changes.Load() != 1 {
		t.Fatalf("OnChange fired %d times, want 1", changes.Load())
	}
	c.MarkDown("b") // idempotent: no second transition
	if changes.Load() != 1 {
		t.Fatalf("repeat MarkDown fired OnChange again")
	}
	c.MarkDown("a") // self is never marked down
	if !c.Alive("a") {
		t.Fatal("self must stay alive")
	}
	if c.AliveCount() != 1 {
		t.Fatalf("alive count %d, want 1", c.AliveCount())
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Self: "", Nodes: []Node{{ID: "a", URL: "http://x"}}},
		{Self: "a", Nodes: []Node{{ID: "b", URL: "http://x"}}},                             // self missing
		{Self: "a", Nodes: []Node{{ID: "a", URL: "http://x"}, {ID: "a", URL: "http://y"}}}, // dup
		{Self: "a", Nodes: []Node{{ID: "a", URL: ""}}},                                     // no URL
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: config accepted, want error", i)
		}
	}
}
