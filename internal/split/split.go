// Package split partitions datasets into train/test/validation sets, the
// final structural step before sharding (paper Fig. 1: "the data should be
// split into train, test, and validation sets, and finally exported in a
// standard compressed and sharded format"). Besides uniform random splits
// it provides stratified (label-balanced), grouped (no group straddles a
// split — e.g. fusion shots), and temporal (no future leakage — e.g.
// climate forecasting) strategies.
package split

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Fractions fixes the split proportions. They must be positive-or-zero and
// sum to 1 within 1e-9.
type Fractions struct {
	Train, Val, Test float64
}

// DefaultFractions returns the common 80/10/10 split.
func DefaultFractions() Fractions { return Fractions{Train: 0.8, Val: 0.1, Test: 0.1} }

func (f Fractions) validate() error {
	if f.Train < 0 || f.Val < 0 || f.Test < 0 {
		return fmt.Errorf("split: negative fraction %+v", f)
	}
	sum := f.Train + f.Val + f.Test
	if sum < 1-1e-9 || sum > 1+1e-9 {
		return fmt.Errorf("split: fractions sum to %v, want 1", sum)
	}
	return nil
}

// Result holds sample indices per partition.
type Result struct {
	Train, Val, Test []int
}

// Counts returns the partition sizes.
func (r *Result) Counts() (train, val, test int) {
	return len(r.Train), len(r.Val), len(r.Test)
}

// Total returns the number of partitioned samples.
func (r *Result) Total() int { return len(r.Train) + len(r.Val) + len(r.Test) }

// Random shuffles indices [0,n) with the seed and cuts by fractions.
func Random(n int, f Fractions, seed int64) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("split: need positive sample count, got %d", n)
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	return cut(idx, f), nil
}

func cut(idx []int, f Fractions) *Result {
	n := len(idx)
	nTrain := int(f.Train * float64(n))
	nVal := int(f.Val * float64(n))
	if nTrain+nVal > n {
		nVal = n - nTrain
	}
	return &Result{
		Train: idx[:nTrain],
		Val:   idx[nTrain : nTrain+nVal],
		Test:  idx[nTrain+nVal:],
	}
}

// Stratified splits so each partition preserves the label distribution:
// every class is split by the fractions independently.
func Stratified(labels []string, f Fractions, seed int64) (*Result, error) {
	if len(labels) == 0 {
		return nil, errors.New("split: no labels")
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	byClass := make(map[string][]int)
	for i, l := range labels {
		byClass[l] = append(byClass[l], i)
	}
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes) // determinism

	rng := rand.New(rand.NewSource(seed))
	out := &Result{}
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		part := cut(idx, f)
		out.Train = append(out.Train, part.Train...)
		out.Val = append(out.Val, part.Val...)
		out.Test = append(out.Test, part.Test...)
	}
	return out, nil
}

// Grouped splits so all samples sharing a group key land in the same
// partition (fusion: all windows of a shot stay together, avoiding
// shot-level leakage).
func Grouped(groups []string, f Fractions, seed int64) (*Result, error) {
	if len(groups) == 0 {
		return nil, errors.New("split: no groups")
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	byGroup := make(map[string][]int)
	for i, g := range groups {
		byGroup[g] = append(byGroup[g], i)
	}
	keys := make([]string, 0, len(byGroup))
	for g := range byGroup {
		keys = append(keys, g)
	}
	sort.Strings(keys)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })

	// Greedy: assign whole groups to train until its quota fills, then
	// val, then test takes the remainder.
	n := len(groups)
	quotaTrain := int(f.Train * float64(n))
	quotaVal := int(f.Val * float64(n))
	out := &Result{}
	part, assigned := 0, 0
	for _, g := range keys {
		idx := byGroup[g]
		switch part {
		case 0:
			out.Train = append(out.Train, idx...)
		case 1:
			out.Val = append(out.Val, idx...)
		default:
			out.Test = append(out.Test, idx...)
		}
		assigned += len(idx)
		if part == 0 && assigned >= quotaTrain {
			part, assigned = 1, 0
		} else if part == 1 && assigned >= quotaVal {
			part, assigned = 2, 0
		}
	}
	return out, nil
}

// Temporal splits ordered samples without shuffling: the earliest go to
// train, then val, then test — no future data leaks into training.
func Temporal(n int, f Fractions) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("split: need positive sample count, got %d", n)
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return cut(idx, f), nil
}

// Disjoint verifies the partitions are pairwise disjoint and cover exactly
// [0,n). Use in tests and pipeline validation gates.
func Disjoint(r *Result, n int) error {
	seen := make([]bool, n)
	check := func(part string, idx []int) error {
		for _, i := range idx {
			if i < 0 || i >= n {
				return fmt.Errorf("split: %s index %d out of [0,%d)", part, i, n)
			}
			if seen[i] {
				return fmt.Errorf("split: index %d appears in multiple partitions", i)
			}
			seen[i] = true
		}
		return nil
	}
	if err := check("train", r.Train); err != nil {
		return err
	}
	if err := check("val", r.Val); err != nil {
		return err
	}
	if err := check("test", r.Test); err != nil {
		return err
	}
	for i, s := range seen {
		if !s {
			return fmt.Errorf("split: index %d unassigned", i)
		}
	}
	return nil
}
