package label

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoBlobs makes a linearly separable 2-class dataset.
func twoBlobs(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	features := make([][]float64, n)
	labels := make([]int, n)
	for i := range features {
		c := i % 2
		cx := float64(c)*6 - 3
		features[i] = []float64{cx + rng.NormFloat64(), cx + rng.NormFloat64()}
		labels[i] = c
	}
	return features, labels
}

func TestKNNSeparableBlobs(t *testing.T) {
	x, y := twoBlobs(200, 1)
	m := NewKNN(5)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		class, conf := m.Predict(x[i])
		if class == y[i] {
			correct++
		}
		if conf < 0 || conf > 1 {
			t.Fatalf("confidence %v out of range", conf)
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.97 {
		t.Fatalf("knn accuracy=%v", acc)
	}
}

func TestKNNKLargerThanData(t *testing.T) {
	m := NewKNN(10)
	if err := m.Fit([][]float64{{0}, {1}}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	class, conf := m.Predict([]float64{0.1})
	if class != 0 && class != 1 {
		t.Fatalf("class=%d", class)
	}
	if conf != 0.5 {
		t.Fatalf("conf=%v with k clamped to 2", conf)
	}
}

func TestKNNErrors(t *testing.T) {
	m := NewKNN(0)
	if err := m.Fit([][]float64{{1}}, []int{0}); err == nil {
		t.Fatal("want k error")
	}
	m = NewKNN(1)
	if err := m.Fit(nil, nil); err == nil {
		t.Fatal("want empty error")
	}
	if err := m.Fit([][]float64{{1}}, []int{0, 1}); err == nil {
		t.Fatal("want length mismatch error")
	}
	if err := m.Fit([][]float64{{1}, {1, 2}}, []int{0, 1}); err == nil {
		t.Fatal("want ragged error")
	}
	if err := m.Fit([][]float64{{1}}, []int{-2}); err == nil {
		t.Fatal("want negative label error")
	}
}

func TestKNNPredictUnfitted(t *testing.T) {
	class, conf := NewKNN(3).Predict([]float64{1})
	if class != 0 || conf != 0 {
		t.Fatalf("unfitted predict=(%d,%v)", class, conf)
	}
}

func TestLogisticSeparableBlobs(t *testing.T) {
	x, y := twoBlobs(200, 2)
	m := NewLogistic()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		class, conf := m.Predict(x[i])
		if class == y[i] {
			correct++
		}
		if conf < 0 || conf > 1 {
			t.Fatalf("probability %v out of range", conf)
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.97 {
		t.Fatalf("logistic accuracy=%v", acc)
	}
}

func TestLogisticThreeClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var x [][]float64
	var y []int
	centers := [][2]float64{{-5, 0}, {5, 0}, {0, 6}}
	for i := 0; i < 300; i++ {
		c := i % 3
		x = append(x, []float64{centers[c][0] + rng.NormFloat64(), centers[c][1] + rng.NormFloat64()})
		y = append(y, c)
	}
	m := NewLogistic()
	m.Epochs = 400
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		if class, _ := m.Predict(x[i]); class == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.95 {
		t.Fatalf("3-class accuracy=%v", acc)
	}
}

func TestLogisticPredictUnfitted(t *testing.T) {
	class, conf := NewLogistic().Predict([]float64{1})
	if class != 0 || conf != 0 {
		t.Fatalf("unfitted predict=(%d,%v)", class, conf)
	}
}

func TestKMeansRecoversBlobs(t *testing.T) {
	x, y := twoBlobs(200, 4)
	m := NewKMeans(2)
	assign, err := m.Fit(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Clustering is label-invariant: check agreement up to permutation.
	agree, swap := 0, 0
	for i := range assign {
		if assign[i] == y[i] {
			agree++
		} else {
			swap++
		}
	}
	best := agree
	if swap > best {
		best = swap
	}
	if acc := float64(best) / float64(len(x)); acc < 0.95 {
		t.Fatalf("kmeans agreement=%v", acc)
	}
	if len(m.Centers) != 2 {
		t.Fatalf("centers=%d", len(m.Centers))
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := NewKMeans(2).Fit(nil, 1); err == nil {
		t.Fatal("want empty error")
	}
	if _, err := NewKMeans(5).Fit([][]float64{{1}}, 1); err == nil {
		t.Fatal("want k>n error")
	}
	if _, err := NewKMeans(0).Fit([][]float64{{1}}, 1); err == nil {
		t.Fatal("want k<=0 error")
	}
}

// TestPseudoLabelImprovesCoverage is the paper's C3/E6 experiment in
// miniature: starting from 10% seed labels, the loop must raise coverage
// substantially while staying accurate.
func TestPseudoLabelImprovesCoverage(t *testing.T) {
	x, truth := twoBlobs(400, 5)
	labels := make([]int, len(x))
	for i := range labels {
		if i < 40 { // 10% seeds
			labels[i] = truth[i]
		} else {
			labels[i] = -1
		}
	}
	final, stats, err := PseudoLabel(NewKNN(5), x, labels, DefaultPseudoLabelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no rounds")
	}
	last := stats[len(stats)-1]
	if last.Coverage < 0.95 {
		t.Fatalf("final coverage=%v, stats=%+v", last.Coverage, stats)
	}
	// Coverage must be non-decreasing across rounds.
	for i := 1; i < len(stats); i++ {
		if stats[i].Coverage < stats[i-1].Coverage {
			t.Fatalf("coverage regressed: %+v", stats)
		}
	}
	// Accuracy on pseudo-labels must be high (blobs are separable).
	acc, err := Accuracy(final, truth)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("pseudo-label accuracy=%v", acc)
	}
}

func TestPseudoLabelStopsWhenNothingConfident(t *testing.T) {
	// Unlabelable point far from seeds with an impossible threshold.
	x := [][]float64{{0}, {0.1}, {100}}
	labels := []int{0, 1, -1}
	cfg := PseudoLabelConfig{Confidence: 1.1, MaxRounds: 5}
	_, _, err := PseudoLabel(NewKNN(1), x, labels, cfg)
	if err == nil {
		t.Fatal("want confidence-range error")
	}
	cfg.Confidence = 1.0
	final, stats, err := PseudoLabel(NewKNN(2), x, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// kNN with k=2 over 2 points gives 0.5 confidence -> never accepted.
	if final[2] != -1 {
		t.Fatalf("final=%v", final)
	}
	if len(stats) != 1 {
		t.Fatalf("loop should stop after first empty round, stats=%+v", stats)
	}
}

func TestPseudoLabelNoSeeds(t *testing.T) {
	x := [][]float64{{1}}
	if _, _, err := PseudoLabel(NewKNN(1), x, []int{-1}, DefaultPseudoLabelConfig()); err == nil {
		t.Fatal("want no-seed error")
	}
}

func TestPseudoLabelLengthMismatch(t *testing.T) {
	if _, _, err := PseudoLabel(NewKNN(1), [][]float64{{1}}, []int{0, 1}, DefaultPseudoLabelConfig()); err == nil {
		t.Fatal("want length error")
	}
}

func TestAccuracy(t *testing.T) {
	acc, err := Accuracy([]int{0, 1, 1, 0}, []int{0, 1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc-2.0/3.0) > 1e-12 {
		t.Fatalf("acc=%v", acc)
	}
	if _, err := Accuracy([]int{0}, []int{0, 1}); err == nil {
		t.Fatal("want length error")
	}
	if _, err := Accuracy([]int{0}, []int{-1}); err == nil {
		t.Fatal("want no-truth error")
	}
}

// Property: pseudo-labeling never overwrites existing labels and never
// decreases the labeled count.
func TestPseudoLabelPreservesSeedsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 10
		x := make([][]float64, n)
		labels := make([]int, n)
		for i := range x {
			x[i] = []float64{rng.NormFloat64()}
			if rng.Float64() < 0.3 {
				labels[i] = rng.Intn(2)
			} else {
				labels[i] = -1
			}
		}
		hasSeed := false
		for _, l := range labels {
			if l >= 0 {
				hasSeed = true
			}
		}
		if !hasSeed {
			return true
		}
		final, _, err := PseudoLabel(NewKNN(3), x, labels, DefaultPseudoLabelConfig())
		if err != nil {
			return false
		}
		for i, l := range labels {
			if l >= 0 && final[i] != l {
				return false // seed overwritten
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKNNPredict(b *testing.B) {
	x, y := twoBlobs(1000, 1)
	m := NewKNN(5)
	if err := m.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(x[i%len(x)])
	}
}

func BenchmarkLogisticFit(b *testing.B) {
	x, y := twoBlobs(200, 1)
	for i := 0; i < b.N; i++ {
		m := NewLogistic()
		m.Epochs = 50
		if err := m.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
