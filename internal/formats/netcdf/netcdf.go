// Package netcdf implements an encoder/decoder for the NetCDF classic
// on-disk format (CDF-1 and CDF-2), the community standard the climate
// archetype ingests (paper §3.1: ClimaX/ORBIT convert CMIP6 NetCDF to
// sharded NumPy). The subset covers dimensions (including one unlimited
// record dimension), global and per-variable attributes, and fixed and
// record variables of all six classic external types.
//
// Layout reference: the NetCDF classic format specification. All values
// are big-endian; names and attribute payloads are padded to 4-byte
// boundaries; each variable's data slab is padded to 4 bytes.
package netcdf

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Type enumerates the classic external data types.
type Type int32

// Classic NetCDF external types.
const (
	Byte   Type = 1
	Char   Type = 2
	Short  Type = 3
	Int    Type = 4
	Float  Type = 5
	Double Type = 6
)

func (t Type) size() int {
	switch t {
	case Byte, Char:
		return 1
	case Short:
		return 2
	case Int, Float:
		return 4
	case Double:
		return 8
	}
	return 0
}

func (t Type) valid() bool { return t.size() != 0 }

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Byte:
		return "byte"
	case Char:
		return "char"
	case Short:
		return "short"
	case Int:
		return "int"
	case Float:
		return "float"
	case Double:
		return "double"
	}
	return fmt.Sprintf("Type(%d)", int32(t))
}

// Header tags.
const (
	tagDimension = 0x0A
	tagVariable  = 0x0B
	tagAttribute = 0x0C
	tagAbsent    = 0x00
)

// Dim is a named dimension. Unlimited marks the record dimension
// (at most one per file, and it must be a variable's first dimension).
type Dim struct {
	Name      string
	Len       int
	Unlimited bool
}

// Attr is a typed attribute. Char attributes carry Str; numeric attributes
// carry Values (widened to float64 in memory).
type Attr struct {
	Name   string
	Type   Type
	Str    string
	Values []float64
}

// CharAttr builds a text attribute.
func CharAttr(name, value string) Attr { return Attr{Name: name, Type: Char, Str: value} }

// DoubleAttr builds a numeric attribute of type double.
func DoubleAttr(name string, values ...float64) Attr {
	return Attr{Name: name, Type: Double, Values: values}
}

// Var is a variable: a typed array over a list of dimensions. Data is the
// flat row-major payload widened to float64 (Char variables use Text
// instead). For record variables Data spans all written records.
type Var struct {
	Name   string
	Type   Type
	DimIDs []int
	Attrs  []Attr
	Data   []float64
	Text   []byte // payload for Char variables
}

// File is an in-memory NetCDF dataset.
type File struct {
	Dims        []Dim
	GlobalAttrs []Attr
	Vars        []Var
	NumRecs     int
}

// AddDim appends a dimension and returns its ID.
func (f *File) AddDim(name string, length int, unlimited bool) int {
	f.Dims = append(f.Dims, Dim{Name: name, Len: length, Unlimited: unlimited})
	return len(f.Dims) - 1
}

// VarByName returns the named variable, or nil.
func (f *File) VarByName(name string) *Var {
	for i := range f.Vars {
		if f.Vars[i].Name == name {
			return &f.Vars[i]
		}
	}
	return nil
}

// VarShape returns the concrete shape of v, with the record dimension
// resolved to NumRecs.
func (f *File) VarShape(v *Var) []int {
	shape := make([]int, len(v.DimIDs))
	for i, id := range v.DimIDs {
		d := f.Dims[id]
		if d.Unlimited {
			shape[i] = f.NumRecs
		} else {
			shape[i] = d.Len
		}
	}
	return shape
}

// isRecord reports whether v uses the unlimited dimension.
func (f *File) isRecord(v *Var) bool {
	return len(v.DimIDs) > 0 && f.Dims[v.DimIDs[0]].Unlimited
}

// chunkElems returns the number of elements in one "record chunk" of v:
// the full element count for fixed variables, or the per-record count for
// record variables.
func (f *File) chunkElems(v *Var) int {
	n := 1
	for i, id := range v.DimIDs {
		if i == 0 && f.Dims[id].Unlimited {
			continue
		}
		n *= f.Dims[id].Len
	}
	return n
}

func pad4(n int) int { return (n + 3) &^ 3 }

// validate checks structural invariants before encoding.
func (f *File) validate() error {
	unlimited := -1
	for i, d := range f.Dims {
		if d.Name == "" {
			return fmt.Errorf("netcdf: dimension %d has empty name", i)
		}
		if d.Unlimited {
			if unlimited >= 0 {
				return errors.New("netcdf: multiple unlimited dimensions")
			}
			unlimited = i
		} else if d.Len <= 0 {
			return fmt.Errorf("netcdf: dimension %q has non-positive length %d", d.Name, d.Len)
		}
	}
	for vi := range f.Vars {
		v := &f.Vars[vi]
		if v.Name == "" {
			return fmt.Errorf("netcdf: variable %d has empty name", vi)
		}
		if !v.Type.valid() {
			return fmt.Errorf("netcdf: variable %q has invalid type %d", v.Name, int32(v.Type))
		}
		for j, id := range v.DimIDs {
			if id < 0 || id >= len(f.Dims) {
				return fmt.Errorf("netcdf: variable %q references unknown dim %d", v.Name, id)
			}
			if f.Dims[id].Unlimited && j != 0 {
				return fmt.Errorf("netcdf: variable %q uses record dim in position %d (must be first)", v.Name, j)
			}
		}
		want := f.chunkElems(v)
		if f.isRecord(v) {
			want *= f.NumRecs
		}
		if v.Type == Char {
			if len(v.Text) != want {
				return fmt.Errorf("netcdf: char variable %q has %d bytes, shape needs %d", v.Name, len(v.Text), want)
			}
		} else if len(v.Data) != want {
			return fmt.Errorf("netcdf: variable %q has %d values, shape needs %d", v.Name, len(v.Data), want)
		}
	}
	return nil
}

// --- encoding ---------------------------------------------------------------

type encoder struct {
	buf bytes.Buffer
}

func (e *encoder) u32(v uint32) { _ = binary.Write(&e.buf, binary.BigEndian, v) }
func (e *encoder) u64(v uint64) { _ = binary.Write(&e.buf, binary.BigEndian, v) }

func (e *encoder) name(s string) {
	e.u32(uint32(len(s)))
	e.buf.WriteString(s)
	for i := len(s); i%4 != 0; i++ {
		e.buf.WriteByte(0)
	}
}

func (e *encoder) attrValues(a *Attr) error {
	if a.Type == Char {
		e.u32(uint32(len(a.Str)))
		e.buf.WriteString(a.Str)
		for i := len(a.Str); i%4 != 0; i++ {
			e.buf.WriteByte(0)
		}
		return nil
	}
	e.u32(uint32(len(a.Values)))
	n := 0
	for _, v := range a.Values {
		if err := writeValue(&e.buf, a.Type, v); err != nil {
			return fmt.Errorf("attribute %q: %w", a.Name, err)
		}
		n += a.Type.size()
	}
	for ; n%4 != 0; n++ {
		e.buf.WriteByte(0)
	}
	return nil
}

func (e *encoder) attrList(attrs []Attr) error {
	if len(attrs) == 0 {
		e.u32(tagAbsent)
		e.u32(0)
		return nil
	}
	e.u32(tagAttribute)
	e.u32(uint32(len(attrs)))
	for i := range attrs {
		a := &attrs[i]
		if !a.Type.valid() {
			return fmt.Errorf("netcdf: attribute %q has invalid type", a.Name)
		}
		e.name(a.Name)
		e.u32(uint32(a.Type))
		if err := e.attrValues(a); err != nil {
			return err
		}
	}
	return nil
}

func writeValue(buf *bytes.Buffer, t Type, v float64) error {
	switch t {
	case Byte:
		buf.WriteByte(byte(int8(v)))
	case Short:
		_ = binary.Write(buf, binary.BigEndian, int16(v))
	case Int:
		_ = binary.Write(buf, binary.BigEndian, int32(v))
	case Float:
		_ = binary.Write(buf, binary.BigEndian, math.Float32bits(float32(v)))
	case Double:
		_ = binary.Write(buf, binary.BigEndian, math.Float64bits(v))
	default:
		return fmt.Errorf("netcdf: cannot encode value of type %v", t)
	}
	return nil
}

// vsize returns the on-disk padded byte size of one chunk of v.
func (f *File) vsize(v *Var) int {
	return pad4(f.chunkElems(v) * v.Type.size())
}

// Encode serializes f in CDF-2 (64-bit offset) classic format.
func Encode(f *File) ([]byte, error) {
	if err := f.validate(); err != nil {
		return nil, err
	}
	// Pass 1: compute the header size with placeholder offsets so we can
	// assign real begin offsets, then re-encode.
	hdr, err := encodeHeader(f, make([]uint64, len(f.Vars)))
	if err != nil {
		return nil, err
	}
	offsets := make([]uint64, len(f.Vars))
	pos := uint64(len(hdr))
	// Fixed variables first, in definition order.
	for i := range f.Vars {
		if f.isRecord(&f.Vars[i]) {
			continue
		}
		offsets[i] = pos
		pos += uint64(f.vsize(&f.Vars[i]))
	}
	// Then record variables: each begin points at its slot in record 0.
	for i := range f.Vars {
		if !f.isRecord(&f.Vars[i]) {
			continue
		}
		offsets[i] = pos
		pos += uint64(f.vsize(&f.Vars[i]))
	}

	hdr, err = encodeHeader(f, offsets)
	if err != nil {
		return nil, err
	}
	out := bytes.NewBuffer(hdr)

	// Fixed data.
	for i := range f.Vars {
		v := &f.Vars[i]
		if f.isRecord(v) {
			continue
		}
		if err := writeChunk(out, f, v, 0); err != nil {
			return nil, err
		}
	}
	// Record data: interleave per record.
	for rec := 0; rec < f.NumRecs; rec++ {
		for i := range f.Vars {
			v := &f.Vars[i]
			if !f.isRecord(v) {
				continue
			}
			if err := writeChunk(out, f, v, rec); err != nil {
				return nil, err
			}
		}
	}
	return out.Bytes(), nil
}

func writeChunk(out *bytes.Buffer, f *File, v *Var, rec int) error {
	n := f.chunkElems(v)
	start := rec * n
	written := 0
	if v.Type == Char {
		out.Write(v.Text[start : start+n])
		written = n
	} else {
		for _, val := range v.Data[start : start+n] {
			if err := writeValue(out, v.Type, val); err != nil {
				return fmt.Errorf("variable %q: %w", v.Name, err)
			}
		}
		written = n * v.Type.size()
	}
	for ; written%4 != 0; written++ {
		out.WriteByte(0)
	}
	return nil
}

func encodeHeader(f *File, offsets []uint64) ([]byte, error) {
	e := &encoder{}
	e.buf.WriteString("CDF")
	e.buf.WriteByte(2) // CDF-2: 64-bit offsets
	e.u32(uint32(f.NumRecs))

	if len(f.Dims) == 0 {
		e.u32(tagAbsent)
		e.u32(0)
	} else {
		e.u32(tagDimension)
		e.u32(uint32(len(f.Dims)))
		for _, d := range f.Dims {
			e.name(d.Name)
			if d.Unlimited {
				e.u32(0)
			} else {
				e.u32(uint32(d.Len))
			}
		}
	}

	if err := e.attrList(f.GlobalAttrs); err != nil {
		return nil, err
	}

	if len(f.Vars) == 0 {
		e.u32(tagAbsent)
		e.u32(0)
	} else {
		e.u32(tagVariable)
		e.u32(uint32(len(f.Vars)))
		for i := range f.Vars {
			v := &f.Vars[i]
			e.name(v.Name)
			e.u32(uint32(len(v.DimIDs)))
			for _, id := range v.DimIDs {
				e.u32(uint32(id))
			}
			if err := e.attrList(v.Attrs); err != nil {
				return nil, err
			}
			e.u32(uint32(v.Type))
			e.u32(uint32(f.vsize(v)))
			e.u64(offsets[i])
		}
	}
	return e.buf.Bytes(), nil
}

// --- decoding ---------------------------------------------------------------

type decoder struct {
	b   []byte
	pos int
	v2  bool
}

func (d *decoder) u32() (uint32, error) {
	if d.pos+4 > len(d.b) {
		return 0, errors.New("netcdf: truncated header")
	}
	v := binary.BigEndian.Uint32(d.b[d.pos:])
	d.pos += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.pos+8 > len(d.b) {
		return 0, errors.New("netcdf: truncated header")
	}
	v := binary.BigEndian.Uint64(d.b[d.pos:])
	d.pos += 8
	return v, nil
}

func (d *decoder) name() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	end := d.pos + pad4(int(n))
	if int(n) > len(d.b)-d.pos || end > len(d.b) {
		return "", errors.New("netcdf: truncated name")
	}
	s := string(d.b[d.pos : d.pos+int(n)])
	d.pos = end
	return s, nil
}

func (d *decoder) attrList() ([]Attr, error) {
	tag, err := d.u32()
	if err != nil {
		return nil, err
	}
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if tag == tagAbsent {
		if n != 0 {
			return nil, errors.New("netcdf: ABSENT attr list with nonzero count")
		}
		return nil, nil
	}
	if tag != tagAttribute {
		return nil, fmt.Errorf("netcdf: expected attribute tag, got 0x%x", tag)
	}
	attrs := make([]Attr, 0, n)
	for i := uint32(0); i < n; i++ {
		name, err := d.name()
		if err != nil {
			return nil, err
		}
		tRaw, err := d.u32()
		if err != nil {
			return nil, err
		}
		t := Type(tRaw)
		if !t.valid() {
			return nil, fmt.Errorf("netcdf: attribute %q has invalid type %d", name, tRaw)
		}
		count, err := d.u32()
		if err != nil {
			return nil, err
		}
		a := Attr{Name: name, Type: t}
		byteLen := int(count) * t.size()
		if d.pos+pad4(byteLen) > len(d.b) {
			return nil, fmt.Errorf("netcdf: truncated attribute %q", name)
		}
		if t == Char {
			a.Str = string(d.b[d.pos : d.pos+int(count)])
		} else {
			a.Values = make([]float64, count)
			for j := range a.Values {
				a.Values[j] = readValue(d.b[d.pos+j*t.size():], t)
			}
		}
		d.pos += pad4(byteLen)
		attrs = append(attrs, a)
	}
	return attrs, nil
}

func readValue(b []byte, t Type) float64 {
	switch t {
	case Byte:
		return float64(int8(b[0]))
	case Short:
		return float64(int16(binary.BigEndian.Uint16(b)))
	case Int:
		return float64(int32(binary.BigEndian.Uint32(b)))
	case Float:
		return float64(math.Float32frombits(binary.BigEndian.Uint32(b)))
	case Double:
		return math.Float64frombits(binary.BigEndian.Uint64(b))
	}
	return math.NaN()
}

// Decode parses a classic NetCDF (CDF-1 or CDF-2) byte stream.
func Decode(b []byte) (*File, error) {
	if len(b) < 8 || string(b[:3]) != "CDF" {
		return nil, errors.New("netcdf: bad magic")
	}
	version := b[3]
	if version != 1 && version != 2 {
		return nil, fmt.Errorf("netcdf: unsupported version %d", version)
	}
	d := &decoder{b: b, pos: 4, v2: version == 2}
	f := &File{}

	numrecs, err := d.u32()
	if err != nil {
		return nil, err
	}
	f.NumRecs = int(numrecs)

	// Dimensions.
	tag, err := d.u32()
	if err != nil {
		return nil, err
	}
	ndims, err := d.u32()
	if err != nil {
		return nil, err
	}
	if tag == tagDimension {
		for i := uint32(0); i < ndims; i++ {
			name, err := d.name()
			if err != nil {
				return nil, err
			}
			length, err := d.u32()
			if err != nil {
				return nil, err
			}
			f.Dims = append(f.Dims, Dim{Name: name, Len: int(length), Unlimited: length == 0})
		}
	} else if tag != tagAbsent {
		return nil, fmt.Errorf("netcdf: expected dimension tag, got 0x%x", tag)
	}

	if f.GlobalAttrs, err = d.attrList(); err != nil {
		return nil, err
	}

	// Variables.
	tag, err = d.u32()
	if err != nil {
		return nil, err
	}
	nvars, err := d.u32()
	if err != nil {
		return nil, err
	}
	type varMeta struct {
		begin uint64
	}
	var metas []varMeta
	if tag == tagVariable {
		for i := uint32(0); i < nvars; i++ {
			name, err := d.name()
			if err != nil {
				return nil, err
			}
			nd, err := d.u32()
			if err != nil {
				return nil, err
			}
			v := Var{Name: name}
			for j := uint32(0); j < nd; j++ {
				id, err := d.u32()
				if err != nil {
					return nil, err
				}
				if int(id) >= len(f.Dims) {
					return nil, fmt.Errorf("netcdf: variable %q references dim %d of %d", name, id, len(f.Dims))
				}
				v.DimIDs = append(v.DimIDs, int(id))
			}
			if v.Attrs, err = d.attrList(); err != nil {
				return nil, err
			}
			tRaw, err := d.u32()
			if err != nil {
				return nil, err
			}
			v.Type = Type(tRaw)
			if !v.Type.valid() {
				return nil, fmt.Errorf("netcdf: variable %q has invalid type %d", name, tRaw)
			}
			if _, err := d.u32(); err != nil { // vsize (recomputed below)
				return nil, err
			}
			var begin uint64
			if d.v2 {
				if begin, err = d.u64(); err != nil {
					return nil, err
				}
			} else {
				b32, err := d.u32()
				if err != nil {
					return nil, err
				}
				begin = uint64(b32)
			}
			f.Vars = append(f.Vars, v)
			metas = append(metas, varMeta{begin: begin})
		}
	} else if tag != tagAbsent {
		return nil, fmt.Errorf("netcdf: expected variable tag, got 0x%x", tag)
	}

	// Compute the record stride: sum of padded chunk sizes of record vars.
	recStride := 0
	for i := range f.Vars {
		if f.isRecord(&f.Vars[i]) {
			recStride += f.vsize(&f.Vars[i])
		}
	}

	// Data slabs.
	for i := range f.Vars {
		v := &f.Vars[i]
		chunk := f.chunkElems(v)
		esize := v.Type.size()
		if f.isRecord(v) {
			if v.Type == Char {
				v.Text = make([]byte, chunk*f.NumRecs)
			} else {
				v.Data = make([]float64, chunk*f.NumRecs)
			}
			for rec := 0; rec < f.NumRecs; rec++ {
				off := int(metas[i].begin) + rec*recStride
				if err := readChunk(b, off, v, rec*chunk, chunk, esize); err != nil {
					return nil, fmt.Errorf("variable %q record %d: %w", v.Name, rec, err)
				}
			}
		} else {
			if v.Type == Char {
				v.Text = make([]byte, chunk)
			} else {
				v.Data = make([]float64, chunk)
			}
			if err := readChunk(b, int(metas[i].begin), v, 0, chunk, esize); err != nil {
				return nil, fmt.Errorf("variable %q: %w", v.Name, err)
			}
		}
	}
	return f, nil
}

func readChunk(b []byte, off int, v *Var, dst, n, esize int) error {
	if off < 0 || off+n*esize > len(b) {
		return errors.New("netcdf: data slab out of bounds")
	}
	if v.Type == Char {
		copy(v.Text[dst:dst+n], b[off:off+n])
		return nil
	}
	for j := 0; j < n; j++ {
		v.Data[dst+j] = readValue(b[off+j*esize:], v.Type)
	}
	return nil
}
