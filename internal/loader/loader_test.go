package loader

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/shard"
)

func mkSamples(n, dims int) []*Sample {
	samples := make([]*Sample, n)
	for i := range samples {
		f := make([]float32, dims)
		for j := range f {
			f[j] = float32(i*dims + j)
		}
		samples[i] = &Sample{Features: f, Label: int32(i)}
	}
	return samples
}

func TestSampleEncodeDecode(t *testing.T) {
	s := &Sample{Features: []float32{1.5, -2.25, 0}, Label: 7}
	d, err := DecodeSample(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if d.Label != 7 || len(d.Features) != 3 || d.Features[1] != -2.25 {
		t.Fatalf("decoded=%+v", d)
	}
}

func TestSampleUnlabeled(t *testing.T) {
	s := &Sample{Features: []float32{1}, Label: -1}
	d, err := DecodeSample(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if d.Label != -1 {
		t.Fatalf("label=%d", d.Label)
	}
}

func TestSampleEmptyFeatures(t *testing.T) {
	s := &Sample{Label: 3}
	d, err := DecodeSample(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Features) != 0 || d.Label != 3 {
		t.Fatalf("decoded=%+v", d)
	}
}

func TestDecodeSampleErrors(t *testing.T) {
	if _, err := DecodeSample([]byte{1, 2}); err == nil {
		t.Fatal("want short error")
	}
	s := &Sample{Features: []float32{1, 2}}
	enc := s.Encode()
	if _, err := DecodeSample(enc[:len(enc)-2]); err == nil {
		t.Fatal("want length error")
	}
}

func writeSet(t *testing.T, n, dims int) (*shard.MemSink, *shard.Manifest) {
	t.Helper()
	sink := shard.NewMemSink()
	m, err := WriteSamples(sink, shard.Options{Prefix: "t", TargetBytes: 512}, mkSamples(n, dims))
	if err != nil {
		t.Fatal(err)
	}
	return sink, m
}

func TestLoaderDeterministicOrder(t *testing.T) {
	sink, m := writeSet(t, 25, 4)
	l, err := New(sink, m, Options{BatchSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	var labels []int32
	for b := l.Next(); b != nil; b = l.Next() {
		labels = append(labels, b.Labels...)
	}
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	if len(labels) != 25 {
		t.Fatalf("got %d samples", len(labels))
	}
	for i, lab := range labels {
		if lab != int32(i) {
			t.Fatalf("order broken at %d: %d", i, lab)
		}
	}
}

func TestLoaderBatchSizes(t *testing.T) {
	sink, m := writeSet(t, 25, 2)
	l, err := New(sink, m, Options{BatchSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{}
	for b := l.Next(); b != nil; b = l.Next() {
		sizes = append(sizes, b.Len())
	}
	if len(sizes) != 3 || sizes[0] != 10 || sizes[2] != 5 {
		t.Fatalf("sizes=%v", sizes)
	}
}

func TestLoaderDropRemainder(t *testing.T) {
	sink, m := writeSet(t, 25, 2)
	l, err := New(sink, m, Options{BatchSize: 10, DropRemainder: true})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for b := l.Next(); b != nil; b = l.Next() {
		if b.Len() != 10 {
			t.Fatalf("partial batch leaked: %d", b.Len())
		}
		total += b.Len()
	}
	if total != 20 {
		t.Fatalf("total=%d", total)
	}
}

func TestLoaderShuffles(t *testing.T) {
	sink, m := writeSet(t, 100, 2)
	l, err := New(sink, m, Options{BatchSize: 100, ShuffleBuffer: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := l.Next()
	if b == nil || b.Len() != 100 {
		t.Fatal("missing batch")
	}
	inOrder := true
	seen := make(map[int32]bool)
	for i, lab := range b.Labels {
		if lab != int32(i) {
			inOrder = false
		}
		if seen[lab] {
			t.Fatalf("duplicate label %d", lab)
		}
		seen[lab] = true
	}
	if inOrder {
		t.Fatal("shuffle produced identity order")
	}
	if len(seen) != 100 {
		t.Fatalf("lost samples: %d", len(seen))
	}
}

func TestLoaderShuffleDeterministicPerSeed(t *testing.T) {
	collect := func(seed int64) []int32 {
		sink, m := writeSet(t, 50, 1)
		l, err := New(sink, m, Options{BatchSize: 50, ShuffleBuffer: 32, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		b := l.Next()
		if b == nil {
			t.Fatal("no batch")
		}
		return b.Labels
	}
	a, b := collect(7), collect(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must shuffle identically")
		}
	}
}

func TestLoaderBadBatchSize(t *testing.T) {
	sink, m := writeSet(t, 1, 1)
	if _, err := New(sink, m, Options{BatchSize: 0}); err == nil {
		t.Fatal("want batch-size error")
	}
}

func TestLoaderDecodeErrorSurfaces(t *testing.T) {
	sink := shard.NewMemSink()
	w, _ := shard.NewWriter(sink, shard.Options{Prefix: "bad"})
	if err := w.Write([]byte{1, 2, 3}); err != nil { // not a valid sample
		t.Fatal(err)
	}
	m, _ := w.Close()
	l, err := New(sink, m, Options{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	for b := l.Next(); b != nil; b = l.Next() {
	}
	if l.Err() == nil {
		t.Fatal("decode error not surfaced")
	}
}

func TestLoaderStop(t *testing.T) {
	sink, m := writeSet(t, 1000, 8)
	l, err := New(sink, m, Options{BatchSize: 1, Prefetch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if l.Next() == nil {
		t.Fatal("no first batch")
	}
	l.Stop()
	l.Stop() // idempotent
	// Drain to termination; must not hang.
	for b := l.Next(); b != nil; b = l.Next() {
	}
}

func TestLoaderEmptyManifest(t *testing.T) {
	sink := shard.NewMemSink()
	w, _ := shard.NewWriter(sink, shard.Options{})
	m, _ := w.Close()
	l, err := New(sink, m, Options{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if b := l.Next(); b != nil {
		t.Fatalf("batch from empty set: %+v", b)
	}
	if l.Err() != nil {
		t.Fatal(l.Err())
	}
}

// Property: every sample written is delivered exactly once, for any batch
// size and shuffle buffer.
func TestLoaderNoLossProperty(t *testing.T) {
	f := func(n8, batch8, buf8 uint8, seed int64) bool {
		n := int(n8)%80 + 1
		batch := int(batch8)%16 + 1
		buf := int(buf8) % 40
		sink := shard.NewMemSink()
		m, err := WriteSamples(sink, shard.Options{TargetBytes: 300}, mkSamples(n, 2))
		if err != nil {
			return false
		}
		l, err := New(sink, m, Options{BatchSize: batch, ShuffleBuffer: buf, Seed: seed})
		if err != nil {
			return false
		}
		seen := make(map[int32]int)
		total := 0
		for b := l.Next(); b != nil; b = l.Next() {
			for _, lab := range b.Labels {
				seen[lab]++
				total++
			}
		}
		if l.Err() != nil || total != n || len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: sample encoding round-trips arbitrary float32 features.
func TestSampleRoundTripProperty(t *testing.T) {
	f := func(features []float32, label int32) bool {
		clean := make([]float32, 0, len(features))
		for _, v := range features {
			if !math.IsNaN(float64(v)) {
				clean = append(clean, v)
			}
		}
		s := &Sample{Features: clean, Label: label}
		d, err := DecodeSample(s.Encode())
		if err != nil || d.Label != label || len(d.Features) != len(clean) {
			return false
		}
		for i := range clean {
			if d.Features[i] != clean[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLoaderShuffle(b *testing.B) {
	samples := mkSamples(2000, 32)
	sink := shard.NewMemSink()
	m, err := WriteSamples(sink, shard.Options{TargetBytes: 1 << 16}, samples)
	if err != nil {
		b.Fatal(err)
	}
	for _, buf := range []int{0, 64, 512} {
		name := map[int]string{0: "none", 64: "buf64", 512: "buf512"}[buf]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				l, err := New(sink, m, Options{BatchSize: 64, ShuffleBuffer: buf, Prefetch: 4})
				if err != nil {
					b.Fatal(err)
				}
				for batch := l.Next(); batch != nil; batch = l.Next() {
				}
				if l.Err() != nil {
					b.Fatal(l.Err())
				}
			}
		})
	}
}
