package climate

import (
	"bytes"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/formats/npy"
	"repro/internal/loader"
	"repro/internal/pipeline"
	"repro/internal/quality"
	"repro/internal/shard"
	"repro/internal/split"
)

// Config tunes the climate archetype pipeline.
type Config struct {
	// Variables lists the NetCDF variables to prepare; nil means
	// {"tas"}. Each variable is normalized independently (ClimaX
	// "normalizing each variable with computed mean and standard
	// deviation", §3.1).
	Variables []string
	// TargetLat/TargetLon is the regrid resolution (standard grid
	// alignment, §3.1).
	TargetLat, TargetLon int
	Method               Method
	// Workers parallelizes per-timestep regridding.
	Workers int
	// ShardTargetBytes sizes output shards.
	ShardTargetBytes int64
	Seed             int64
}

// DefaultConfig matches the reproduction experiments.
func DefaultConfig() Config {
	return Config{TargetLat: 24, TargetLon: 48, Method: Bilinear, Workers: 4,
		ShardTargetBytes: 64 << 10, Seed: 1}
}

// Product accumulates the pipeline's outputs on the dataset payload.
type Product struct {
	Raw    []byte // ingested NetCDF bytes
	Fields []*Field
	// Field aliases Fields[0] (the primary variable).
	Field *Field
	// Stats maps variable name -> (mean, std) used for normalization.
	Stats map[string][2]float64
	// Mean/Std mirror Stats of the primary variable.
	Mean     float64
	Std      float64
	Samples  []*loader.Sample
	Split    *split.Result
	Manifest *shard.Manifest
	NPZ      []byte // the ClimaX-style sharded NumPy artifact
}

// NewPipeline assembles the Table 1 climate workflow over the sink:
// normalize variables → resample grids → standardize outputs → shard.
func NewPipeline(cfg Config, sink shard.Sink) (*pipeline.Pipeline, error) {
	if sink == nil {
		return nil, errors.New("climate: nil sink")
	}
	if cfg.TargetLat < 2 || cfg.TargetLon < 2 {
		return nil, fmt.Errorf("climate: target grid %dx%d too small", cfg.TargetLat, cfg.TargetLon)
	}

	variables := cfg.Variables
	if len(variables) == 0 {
		variables = []string{"tas"}
	}

	ingest := pipeline.StageFunc{StageName: "decode-netcdf", StageKind: core.Ingest, Fn: func(ds *pipeline.Dataset) error {
		p, err := product(ds)
		if err != nil {
			return err
		}
		if p.Raw == nil {
			return errors.New("climate: no raw NetCDF bytes on payload")
		}
		p.Fields = p.Fields[:0]
		missing, total := 0, 0
		for _, name := range variables {
			f, err := FromNetCDF(p.Raw, name)
			if err != nil {
				return err
			}
			p.Fields = append(p.Fields, f)
			missing += f.Data.CountNaN()
			total += f.Data.Numel()
		}
		p.Field = p.Fields[0]
		ds.Facts.StandardFormat = true
		ds.Facts.Validated = true
		ds.Facts.MissingRate = float64(missing) / float64(total)
		ds.SetMeta("source", "CMIP6-like synthetic")
		ds.SetMeta("variables", fmt.Sprintf("%d", len(p.Fields)))
		ds.SetMeta("units", p.Field.Units)
		ds.SetMeta("grid", fmt.Sprintf("%dx%d", p.Field.Data.Dim(1), p.Field.Data.Dim(2)))
		ds.Bytes = int64(len(p.Raw))
		ds.Records = int64(p.Field.Data.Dim(0))
		return nil
	}}

	clean := pipeline.StageFunc{StageName: "fill-missing", StageKind: core.Preprocess, Fn: func(ds *pipeline.Dataset) error {
		p, err := product(ds)
		if err != nil {
			return err
		}
		repaired, remaining, total := 0, 0, 0
		for _, f := range p.Fields {
			_, rep, err := quality.FillMissing(f.Data, quality.FillInterpolate, 0)
			if err != nil {
				return err
			}
			repaired += rep.Repaired
			remaining += f.Data.CountNaN()
			total += f.Data.Numel()
		}
		ds.SetMeta("missing_repaired", fmt.Sprintf("%d", repaired))
		ds.Facts.MissingRate = float64(remaining) / float64(total)
		return nil
	}}

	regrid := pipeline.StageFunc{StageName: "regrid", StageKind: core.Preprocess, Fn: func(ds *pipeline.Dataset) error {
		p, err := product(ds)
		if err != nil {
			return err
		}
		for _, f := range p.Fields {
			rg, err := RegridStack(f.Data, cfg.TargetLat, cfg.TargetLon, cfg.Method, cfg.Workers)
			if err != nil {
				return err
			}
			f.Data = rg
			f.Lats = linspace(-90, 90, cfg.TargetLat)
			f.Lons = linspace(0, 360*(1-1/float64(cfg.TargetLon)), cfg.TargetLon)
		}
		ds.Facts.AlignedGrids = true
		ds.SetMeta("regrid", fmt.Sprintf("%s to %dx%d", cfg.Method, cfg.TargetLat, cfg.TargetLon))
		return nil
	}}

	normalize := pipeline.StageFunc{StageName: "normalize", StageKind: core.Transform, Fn: func(ds *pipeline.Dataset) error {
		p, err := product(ds)
		if err != nil {
			return err
		}
		p.Stats = make(map[string][2]float64, len(p.Fields))
		for _, f := range p.Fields {
			mean, std := f.Data.Normalize()
			p.Stats[f.Name] = [2]float64{mean, std}
		}
		p.Mean, p.Std = p.Stats[p.Field.Name][0], p.Stats[p.Field.Name][1]
		ds.Facts.Normalized = true
		ds.SetMeta("norm_mean", fmt.Sprintf("%.6g", p.Mean))
		ds.SetMeta("norm_std", fmt.Sprintf("%.6g", p.Std))
		return nil
	}}

	structure := pipeline.StageFunc{StageName: "build-samples", StageKind: core.Structure, Fn: func(ds *pipeline.Dataset) error {
		p, err := product(ds)
		if err != nil {
			return err
		}
		T := p.Field.Data.Dim(0)
		p.Samples = make([]*loader.Sample, 0, T)
		for t := 0; t < T; t++ {
			// Concatenate all variables channel-wise per month.
			var features []float32
			for _, f := range p.Fields {
				month, err := f.Data.SubTensor(t)
				if err != nil {
					return err
				}
				features = append(features, month.Float32()...)
			}
			p.Samples = append(p.Samples, &loader.Sample{
				Features: features,
				Label:    int32((t % 12) / 3), // season class 0..3
			})
		}
		ds.Facts.FeaturesExtracted = true
		ds.Facts.StructuredLayout = true
		ds.Facts.LabelCoverage = 1 // season labels are inherent to the time axis
		ds.Records = int64(len(p.Samples))
		return nil
	}}

	shardStage := pipeline.StageFunc{StageName: "split-shard-npz", StageKind: core.Shard, Fn: func(ds *pipeline.Dataset) error {
		p, err := product(ds)
		if err != nil {
			return err
		}
		// Temporal split: no future leakage for forecasting-style use.
		res, err := split.Temporal(len(p.Samples), split.DefaultFractions())
		if err != nil {
			return err
		}
		p.Split = res

		w, err := shard.NewWriter(sink, shard.Options{Prefix: "climate-train", TargetBytes: cfg.ShardTargetBytes})
		if err != nil {
			return err
		}
		for _, i := range res.Train {
			if err := w.Write(p.Samples[i].Encode()); err != nil {
				return err
			}
		}
		p.Manifest, err = w.Close()
		if err != nil {
			return err
		}

		// The ClimaX-style artifact: sharded NPZ with data + stats.
		var npz bytes.Buffer
		zw := npy.NewNPZWriter(&npz)
		for _, f := range p.Fields {
			if err := zw.Add(f.Name, f.Data.Data(), f.Data.Shape(), npy.Float32); err != nil {
				return err
			}
			st := p.Stats[f.Name]
			if err := zw.Add(f.Name+"_stats", st[:], []int{2}, npy.Float64); err != nil {
				return err
			}
		}
		// Legacy single-variable members for the primary field.
		if err := zw.Add("mean", []float64{p.Mean}, []int{1}, npy.Float64); err != nil {
			return err
		}
		if err := zw.Add("std", []float64{p.Std}, []int{1}, npy.Float64); err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
		p.NPZ = npz.Bytes()

		ds.Facts.SplitDone = true
		ds.Facts.Sharded = true
		ds.Facts.PipelineAutomated = true
		ds.Bytes = p.Manifest.TotalStoredBytes() + int64(len(p.NPZ))
		return nil
	}}

	return pipeline.New("climate-archetype", ingest, clean, regrid, normalize, structure, shardStage)
}

// product extracts the typed payload.
func product(ds *pipeline.Dataset) (*Product, error) {
	p, ok := ds.Payload.(*Product)
	if !ok {
		return nil, fmt.Errorf("climate: payload is %T, want *Product", ds.Payload)
	}
	return p, nil
}

// NewDataset wraps raw NetCDF bytes for the pipeline.
func NewDataset(name string, raw []byte) *pipeline.Dataset {
	ds := pipeline.NewDataset(name, core.Climate, &Product{Raw: raw})
	ds.Bytes = int64(len(raw))
	return ds
}

func linspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = lo
		return out
	}
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + step*float64(i)
	}
	return out
}

// GridMean returns the NaN-aware mean of a field (used by conservation
// tests and the experiment harness).
func GridMean(f *Field) float64 {
	if f == nil || f.Data == nil {
		return math.NaN()
	}
	return f.Data.Mean()
}
