// Server-side telemetry wiring: the metric families the draid service
// exports, the HTTP middleware that stamps every request with a trace
// ID and a latency observation, and the per-job event timeline. This
// file is the single place a metric family is registered — the
// metrics-hygiene test holds every name here to the README contract.
package server

import (
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/tenant"
	"repro/pkg/client"
)

// serverMetrics holds the registry plus pre-resolved children for the
// hot paths, so serving code never does a label lookup per batch.
type serverMetrics struct {
	reg *telemetry.Registry

	// Job lifecycle gauges, updated at state transitions — never by
	// scanning the job table at scrape time.
	jobsTotal    *telemetry.Gauge
	jobsQueued   *telemetry.Gauge
	jobsInFlight *telemetry.Gauge
	jobsDone     *telemetry.Counter
	jobsFailed   *telemetry.Counter
	jobsEvicted  *telemetry.Counter

	// Serving totals (unlabeled: the all-up numbers dashboards alert
	// on; per-domain/wire splits live in the histograms' counts).
	bytesServed    *telemetry.Counter
	batchesServed  *telemetry.Counter
	samplesServed  *telemetry.Counter
	serveErrors    *telemetry.Counter
	serveThrottled *telemetry.Counter

	// Frame-store (on-disk sidecar) traffic: the disk tier of the
	// zero-copy frame path.
	frameStoreHits      *telemetry.Counter
	frameStoreMisses    *telemetry.Counter
	frameStoreBackfills *telemetry.Counter
	frameStoreBytes     *telemetry.Counter
	frameStoreErrors    *telemetry.Counter

	// Serving latency distributions.
	requestSeconds *telemetry.HistogramVec // route × code
	firstBatch     *telemetry.HistogramVec // domain × wire
	batchEncode    *telemetry.HistogramVec // domain × wire
	shardLoad      *telemetry.HistogramVec // domain × outcome

	// Pipeline stage accounting, folded in at job completion.
	stageSeconds *telemetry.CounterVec
	stageCalls   *telemetry.CounterVec
	stageBytes   *telemetry.CounterVec

	// Cluster routing counters (registered always so the accessors are
	// total; they only move in cluster mode).
	clusterProxied    *telemetry.Counter
	clusterRedirected *telemetry.Counter
	clusterRetries    *telemetry.Counter
	clusterAdopted    *telemetry.Counter

	// Tenancy counters (registered always, moving only with -tenants:
	// same always-total contract as the cluster counters).
	tenantAuthFailures    *telemetry.Counter
	tenantQuotaRejections *telemetry.Counter
}

func newServerMetrics() *serverMetrics {
	reg := telemetry.NewRegistry()
	m := &serverMetrics{
		reg: reg,

		jobsTotal:    reg.Gauge1("draid_jobs_total", "Jobs in the local table (all states)."),
		jobsQueued:   reg.Gauge1("draid_jobs_queued", "Jobs waiting for a worker."),
		jobsInFlight: reg.Gauge1("draid_jobs_in_flight", "Jobs currently executing."),
		jobsDone:     reg.Counter1("draid_jobs_done_total", "Jobs completed successfully."),
		jobsFailed:   reg.Counter1("draid_jobs_failed_total", "Jobs that ended in failure."),
		jobsEvicted:  reg.Counter1("draid_jobs_evicted_total", "Completed jobs evicted by TTL or retention pressure."),

		bytesServed:    reg.Counter1("draid_bytes_served_total", "Wire bytes written by batch streams."),
		batchesServed:  reg.Counter1("draid_batches_served_total", "Batches emitted by /batches streams."),
		samplesServed:  reg.Counter1("draid_samples_served_total", "Records emitted by /batches streams."),
		serveErrors:    reg.Counter1("draid_serve_errors_total", "Mid-stream serving failures reported in-band."),
		serveThrottled: reg.Counter1("draid_serve_throttled_total", "Streams that hit the pacing token bucket."),

		frameStoreHits:      reg.Counter1("draid_frame_store_hits_total", "Frame-wire shard reads served from an on-store sidecar (zero codec calls)."),
		frameStoreMisses:    reg.Counter1("draid_frame_store_misses_total", "Frame-wire shard reads that found no usable sidecar and fell back to decode+encode."),
		frameStoreBackfills: reg.Counter1("draid_frame_store_backfills_total", "Sidecars lazily materialized for shards that lacked one (replayed jobs, recovered corruption)."),
		frameStoreBytes:     reg.Counter1("draid_frame_store_bytes_total", "Payload bytes read from frame sidecars."),
		frameStoreErrors:    reg.Counter1("draid_frame_store_errors_total", "Sidecars rejected as torn/corrupt or failed to build (served by decode+encode instead)."),

		requestSeconds: reg.Histogram("draid_request_seconds",
			"HTTP request latency by route pattern and status code.",
			telemetry.DefBuckets, "route", "code"),
		firstBatch: reg.Histogram("draid_first_batch_seconds",
			"Time from request start to the first batch on the wire.",
			telemetry.DefBuckets, "domain", "wire"),
		batchEncode: reg.Histogram("draid_batch_encode_seconds",
			"Per-batch codec encode time (excludes network writes).",
			telemetry.FastBuckets, "domain", "wire"),
		shardLoad: reg.Histogram("draid_shard_load_seconds",
			"Shard-cache miss load time: read, verify, decode one shard.",
			telemetry.DefBuckets, "domain", "outcome"),

		stageSeconds: reg.Counter("draid_stage_seconds_total", "Pipeline stage wall time.", "stage"),
		stageCalls:   reg.Counter("draid_stage_calls_total", "Pipeline stage invocations.", "stage"),
		stageBytes:   reg.Counter("draid_stage_bytes_total", "Bytes processed per pipeline stage.", "stage"),

		clusterProxied:    reg.Counter1("draid_cluster_proxied_total", "Requests transparently proxied to their ring owner."),
		clusterRedirected: reg.Counter1("draid_cluster_redirected_total", "Requests answered with a 307 to their ring owner."),
		clusterRetries:    reg.Counter1("draid_cluster_forward_retries_total", "Forward attempts that failed and marked a peer down."),
		clusterAdopted:    reg.Counter1("draid_cluster_jobs_adopted_total", "Jobs adopted from the shared logs after an ownership change."),

		tenantAuthFailures:    reg.Counter1("draid_tenant_auth_failures_total", "Requests rejected 401 for a missing or invalid bearer token."),
		tenantQuotaRejections: reg.Counter1("draid_tenant_quota_rejections_total", "Submissions rejected 429 by a per-tenant job or byte quota."),
	}
	return m
}

// observeStage folds one stage sample into the stage counters —
// transition-time accounting, replacing the per-scrape ByStage scan.
func (m *serverMetrics) observeStage(stage string, seconds float64, calls, bytes int64) {
	m.stageSeconds.With(stage).Add(seconds)
	m.stageCalls.With(stage).Add(float64(calls))
	if bytes > 0 {
		m.stageBytes.With(stage).Add(float64(bytes))
	}
}

// registerCollectors wires scrape-time collectors for state other
// subsystems already track under their own locks. Runtime gauges ride
// only on debug servers: they cost a stop-the-world ReadMemStats per
// scrape.
func (s *Server) registerCollectors() {
	reg := s.metrics.reg
	reg.GaugeFunc("draid_shard_cache_entries", "Decoded shards resident in the LRU cache.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	reg.GaugeFunc("draid_shard_cache_bytes", "Decoded bytes resident in the LRU cache.",
		func() float64 { return float64(s.cache.Stats().Bytes) })
	reg.CounterFunc("draid_shard_cache_hits_total", "Shard reads served from the cache.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	reg.CounterFunc("draid_shard_cache_misses_total", "Shard reads that had to load and decode.",
		func() float64 { return float64(s.cache.Stats().Misses) })
	reg.CounterFunc("draid_shard_cache_evictions_total", "Cached shards evicted by byte-budget pressure.",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	reg.CounterFunc("draid_shard_cache_invalidations_total", "Cached shards removed by job eviction or release (DropPrefix).",
		func() float64 { return float64(s.cache.Stats().Invalidations) })
	reg.GaugeFunc("draid_frame_cache_entries", "Encoded-frame shards resident in the frame cache.",
		func() float64 { return float64(s.frames.Stats().Entries) })
	reg.GaugeFunc("draid_frame_cache_bytes", "Frame-ready payload bytes resident in the frame cache.",
		func() float64 { return float64(s.frames.Stats().Bytes) })
	reg.CounterFunc("draid_frame_cache_hits_total", "Frame-wire shard reads served from pre-encoded payload bytes.",
		func() float64 { return float64(s.frames.Stats().Hits) })
	reg.CounterFunc("draid_frame_cache_misses_total", "Frame-wire shard reads that had to encode the shard's payload.",
		func() float64 { return float64(s.frames.Stats().Misses) })
	reg.CounterFunc("draid_frame_cache_evictions_total", "Encoded-frame shards evicted by byte-budget pressure.",
		func() float64 { return float64(s.frames.Stats().Evictions) })
	reg.CounterFunc("draid_frame_cache_invalidations_total", "Encoded-frame shards removed by job eviction or release (DropPrefix).",
		func() float64 { return float64(s.frames.Stats().Invalidations) })
	if c := s.opts.Cluster; c != nil {
		reg.GaugeFunc("draid_cluster_members", "Configured fleet size.",
			func() float64 { return float64(len(c.Nodes())) })
		reg.GaugeFunc("draid_cluster_peers_alive", "Fleet members currently passing probes.",
			func() float64 { return float64(c.AliveCount()) })
	}
	// Tenancy/ledger collectors are registered unconditionally (nil-
	// guarded) so the family set — and the docs-hygiene contract over
	// it — does not depend on server configuration.
	reg.GaugeFunc("draid_tenant_active_streams", "Batch streams currently drawing from the weighted-fair bandwidth budget.",
		func() float64 {
			if s.fair == nil {
				return 0
			}
			return float64(s.fair.activeStreams())
		})
	reg.CounterFunc("draid_ledger_records_total", "Records appended to the audit ledger.",
		func() float64 {
			if s.ledger == nil {
				return 0
			}
			return float64(s.ledger.Stats().Records)
		})
	reg.CounterFunc("draid_ledger_syncs_total", "fsync calls issued by the audit ledger (group commit amortizes these).",
		func() float64 {
			if s.ledger == nil {
				return 0
			}
			return float64(s.ledger.Stats().Syncs)
		})
	reg.CounterFunc("draid_ledger_bytes_total", "Bytes appended to the audit ledger.",
		func() float64 {
			if s.ledger == nil {
				return 0
			}
			return float64(s.ledger.Stats().Bytes)
		})
	reg.CounterFunc("draid_spans_recorded_total", "Completed spans recorded into the span store.",
		func() float64 { return float64(s.spans.Stats().Recorded) })
	reg.CounterFunc("draid_spans_dropped_total", "Recorded spans overwritten by ring pressure.",
		func() float64 { return float64(s.spans.Stats().Dropped) })
	reg.CounterFunc("draid_trace_notable_total", "Traces tail-sampled as notable (slow root or error).",
		func() float64 { return float64(s.spans.Stats().Notable) })
	reg.GaugeFunc("draid_trace_spans", "Spans currently resident in the recent ring.",
		func() float64 { return float64(s.spans.Stats().Resident) })
	if s.opts.Debug {
		reg.GaugeFunc("draid_goroutines", "Live goroutines (debug servers only).",
			func() float64 { return float64(runtime.NumGoroutine()) })
		// Both memory collectors read the snapshot handleMetrics took for
		// this scrape: ReadMemStats stops the world, and paying that
		// pause once per collector doubled the scrape's STW cost.
		reg.GaugeFunc("draid_heap_alloc_bytes", "Heap bytes in use (debug servers only).",
			func() float64 { return s.rtSample.heapAlloc() })
		reg.CounterFunc("draid_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time (debug servers only).",
			func() float64 { return s.rtSample.gcPause() })
	}
}

// runtimeSampler is one MemStats snapshot per /metrics scrape, shared
// by every collector that needs it.
type runtimeSampler struct {
	mu sync.Mutex
	ms runtime.MemStats
}

// refresh takes the snapshot (called once at the top of a scrape).
func (rs *runtimeSampler) refresh() {
	rs.mu.Lock()
	runtime.ReadMemStats(&rs.ms)
	rs.mu.Unlock()
}

func (rs *runtimeSampler) heapAlloc() float64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return float64(rs.ms.HeapAlloc)
}

func (rs *runtimeSampler) gcPause() float64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return float64(rs.ms.PauseTotalNs) / 1e9
}

// statusWriter captures the response status for the request histogram
// while passing flushes through — batch streams flush per batch and
// must keep doing so under the middleware.
type statusWriter struct {
	w      http.ResponseWriter
	status int
}

func (sw *statusWriter) Header() http.Header { return sw.w.Header() }

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.w.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.w.Write(p)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.w.(http.Flusher); ok {
		f.Flush()
	}
}

// spanlessPath reports whether a request path is excluded from span
// creation: probes and scrapes arrive every few milliseconds in a
// fleet and would evict every interesting trace from the ring, and the
// trace endpoints reading the store must not write to it. Excluded
// requests still get trace IDs, latency observations, and log lines.
func spanlessPath(path string) bool {
	return path == "/healthz" || path == "/metrics" ||
		path == "/v1/traces" || strings.HasPrefix(path, "/v1/traces/") ||
		strings.HasPrefix(path, "/debug/")
}

// withTelemetry is the edge middleware: every request gets (or inherits
// via X-Draid-Trace) a trace ID — set on the request header so cluster
// forwards carry it, on the context so handlers and job records see it,
// and on the response so callers can correlate — plus an http.request
// root span (child of the proxying node's span when X-Draid-Span
// names one), a latency observation labeled by mux route pattern and
// status code with the trace as exemplar, and a structured log line:
// Debug normally, Info for 5xx or tail-sampling-slow requests so
// failures are visible without -debug.
func (s *Server) withTelemetry(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trace := r.Header.Get(telemetry.TraceHeader)
		if !telemetry.ValidTraceID(trace) {
			trace = telemetry.NewTraceID()
		}
		// Span attributes and log lines record the redacted path: a
		// ?access_token= credential must never rest in the span store or
		// the debug log (Authorization headers are never logged at all).
		var span *telemetry.Span
		if !spanlessPath(r.URL.Path) {
			parent, _ := telemetry.ParseSpanContext(r.Header.Get(telemetry.SpanHeader))
			span = s.spans.StartRoot("http.request", trace, parent)
			span.SetAttr("method", r.Method)
			span.SetAttr("path", tenant.RedactedPath(r))
			// Stamp our span as the parent for any outbound hop that
			// clones this request's headers (cluster.Forward does).
			r.Header.Set(telemetry.SpanHeader, span.Context().String())
		}
		r = r.WithContext(telemetry.ContextWithSpan(
			telemetry.WithTrace(r.Context(), trace), span))
		r.Header.Set(telemetry.TraceHeader, trace)
		w.Header().Set(telemetry.TraceHeader, trace)
		sw := &statusWriter{w: w}
		start := time.Now()
		// Observe in a defer so aborted proxy streams (which panic with
		// http.ErrAbortHandler by design) are still counted.
		defer func() {
			code := sw.status
			if code == 0 {
				code = http.StatusOK
			}
			route := r.Pattern // set by the mux; bounded cardinality
			if route == "" {
				route = "unmatched"
			}
			elapsed := time.Since(start)
			s.metrics.requestSeconds.With(route, strconv.Itoa(code)).
				ObserveWithExemplar(elapsed.Seconds(), trace)
			span.SetAttr("route", route)
			span.SetAttr("code", strconv.Itoa(code))
			if code >= 500 {
				span.SetError(http.StatusText(code))
			}
			span.End()
			level := slog.LevelDebug
			if code >= 500 || elapsed >= s.spans.SlowThreshold() {
				level = slog.LevelInfo
			}
			s.logger.Log(r.Context(), level, "http request",
				"method", r.Method, "path", tenant.RedactedPath(r), "status", code,
				"ms", float64(elapsed.Microseconds())/1000,
				"trace", trace)
		}()
		next.ServeHTTP(sw, r)
	})
}

// JobEvent is one entry in a job's lifecycle timeline.
type JobEvent = client.JobEvent

// addEvent appends a lifecycle event to a job's in-memory timeline.
// Most transitions are NOT separately persisted — replay re-derives
// them from the submitted/terminal records already in the job log, so
// the hot path pays no extra fsyncs. Transitions replay cannot derive
// (adoption, requeue) go through addDurableEvent instead.
func (s *Server) addEvent(job *Job, event, detail, trace string) {
	now := time.Now()
	job.mu.Lock()
	if trace == "" {
		trace = job.trace
	}
	job.events = append(job.events, JobEvent{
		Event: event, Time: now, Node: s.nodeID(), Detail: detail, Trace: trace,
	})
	job.mu.Unlock()
}

// addDurableEvent records a transition replay cannot reconstruct from
// the existing record types, persisting a recEvent line alongside the
// in-memory append.
func (s *Server) addDurableEvent(job *Job, event, detail string) {
	s.addEvent(job, event, detail, "")
	if s.log == nil {
		return
	}
	job.mu.Lock()
	trace := job.trace
	job.mu.Unlock()
	_ = s.log.append(logRecord{
		Type: recEvent, ID: job.id, Time: time.Now(),
		Event: event, Error: detail, Node: s.nodeID(), Trace: trace,
	})
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.routedElsewhere(w, r) {
		return
	}
	job := s.job(w, r)
	if job == nil {
		return
	}
	writeJSON(w, http.StatusOK, job.Events())
}
