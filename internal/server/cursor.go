// Resume cursors for the batch stream. A cursor is a position in a
// job's shard set — "<shard index>:<record offset>" — handed to the
// client with every batch, so a reconnecting reader continues exactly
// after the last batch it saw instead of re-streaming from the start.
package server

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/shard"
)

// Cursor addresses the next unread record of a shard set: Shard
// indexes manifest.Shards, Record counts records already consumed in
// that shard. The end-of-stream cursor is {len(Shards), 0}.
type Cursor struct {
	Shard  int
	Record int
}

// String renders the wire form "<shard>:<record>".
func (c Cursor) String() string { return strconv.Itoa(c.Shard) + ":" + strconv.Itoa(c.Record) }

// ParseCursor decodes the wire form. It is strict — exactly two
// base-10 non-negative integers joined by one colon — because cursors
// come from clients and feed slice indexing.
func ParseCursor(s string) (Cursor, error) {
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return Cursor{}, fmt.Errorf("cursor %q: want \"<shard>:<record>\"", s)
	}
	sh, err := parseCursorInt(s[:i])
	if err != nil {
		return Cursor{}, fmt.Errorf("cursor %q: shard index: %w", s, err)
	}
	rec, err := parseCursorInt(s[i+1:])
	if err != nil {
		return Cursor{}, fmt.Errorf("cursor %q: record offset: %w", s, err)
	}
	return Cursor{Shard: sh, Record: rec}, nil
}

// parseCursorInt accepts canonical non-negative decimals only: no
// signs, spaces, hex, or leading zeros ("007" would alias "7" and make
// cursor equality ambiguous).
func parseCursorInt(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("empty")
	}
	if len(s) > 1 && s[0] == '0' {
		return 0, fmt.Errorf("leading zero in %q", s)
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, fmt.Errorf("non-digit in %q", s)
		}
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("%q out of range", s)
	}
	return n, nil
}

// validate bounds-checks the cursor against a manifest: the shard
// index must address a shard (or be the end sentinel), and the record
// offset must not exceed that shard's record count.
func (c Cursor) validate(m *shard.Manifest) error {
	switch {
	case c.Shard < 0 || c.Record < 0:
		return fmt.Errorf("cursor %s: negative component", c)
	case c.Shard > len(m.Shards):
		return fmt.Errorf("cursor %s: shard index beyond %d shards", c, len(m.Shards))
	case c.Shard == len(m.Shards) && c.Record != 0:
		return fmt.Errorf("cursor %s: record offset past end of stream", c)
	case c.Shard < len(m.Shards) && c.Record > m.Shards[c.Shard].Records:
		return fmt.Errorf("cursor %s: record offset beyond %d records in shard %d",
			c, m.Shards[c.Shard].Records, c.Shard)
	}
	return nil
}

// advance returns the cursor after consuming one record at position
// (shardIdx, recIdx), normalizing a shard's end to the next shard's
// start so every position has exactly one wire form.
func advanceCursor(m *shard.Manifest, shardIdx, recIdx int) Cursor {
	if recIdx+1 >= m.Shards[shardIdx].Records {
		return Cursor{Shard: shardIdx + 1, Record: 0}
	}
	return Cursor{Shard: shardIdx, Record: recIdx + 1}
}
