package fusion

import (
	"errors"
	"fmt"
	"math"
)

// AlignedShot is a shot's diagnostics resampled onto one uniform time base
// (the paper's "time-alignment across diagnostics").
type AlignedShot struct {
	Number    int
	Dt        float64
	T0        float64
	Channels  []string    // sorted channel order
	Series    [][]float64 // [channel][sample]
	Disrupted bool
	TDisrupt  float64
}

// Samples returns the common series length.
func (a *AlignedShot) Samples() int {
	if len(a.Series) == 0 {
		return 0
	}
	return len(a.Series[0])
}

// Align resamples all of a shot's diagnostics to a uniform dt over their
// common support.
func Align(s *Shot, dt float64) (*AlignedShot, error) {
	if len(s.Signals) == 0 {
		return nil, fmt.Errorf("fusion: shot %d has no signals", s.Number)
	}
	t0, t1 := math.Inf(-1), math.Inf(1)
	for _, sig := range s.Signals {
		if len(sig.Times) == 0 {
			return nil, fmt.Errorf("fusion: shot %d signal %q empty", s.Number, sig.Name)
		}
		if sig.Times[0] > t0 {
			t0 = sig.Times[0]
		}
		if last := sig.Times[len(sig.Times)-1]; last < t1 {
			t1 = last
		}
	}
	if t1 <= t0 {
		return nil, fmt.Errorf("fusion: shot %d signals share no time support", s.Number)
	}
	a := &AlignedShot{Number: s.Number, Dt: dt, T0: t0,
		Disrupted: s.Disrupted, TDisrupt: s.TDisrupt}
	for _, name := range sortedKeys(s.Signals) {
		rs, err := s.Signals[name].Resample(t0, t1, dt)
		if err != nil {
			return nil, fmt.Errorf("fusion: shot %d align %q: %w", s.Number, name, err)
		}
		a.Channels = append(a.Channels, name)
		a.Series = append(a.Series, rs)
	}
	return a, nil
}

func sortedKeys(m map[string]*Signal) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// Derivative computes the centered finite difference of a series
// (the paper's "derivative-based features from diagnostics").
func Derivative(xs []float64, dt float64) ([]float64, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("fusion: dt=%v must be positive", dt)
	}
	if len(xs) < 2 {
		return nil, errors.New("fusion: derivative needs >=2 samples")
	}
	out := make([]float64, len(xs))
	out[0] = (xs[1] - xs[0]) / dt
	out[len(xs)-1] = (xs[len(xs)-1] - xs[len(xs)-2]) / dt
	for i := 1; i < len(xs)-1; i++ {
		out[i] = (xs[i+1] - xs[i-1]) / (2 * dt)
	}
	return out, nil
}

// AddDerivativeChannels appends d/dt channels for every base channel,
// named "d<name>".
func (a *AlignedShot) AddDerivativeChannels() error {
	base := len(a.Channels)
	for c := 0; c < base; c++ {
		d, err := Derivative(a.Series[c], a.Dt)
		if err != nil {
			return fmt.Errorf("fusion: derivative of %q: %w", a.Channels[c], err)
		}
		a.Channels = append(a.Channels, "d"+a.Channels[c])
		a.Series = append(a.Series, d)
	}
	return nil
}

// NormalizePerShot z-scores each channel within the shot (the paper's
// "normalize shots" step) and returns per-channel (mean, std).
func (a *AlignedShot) NormalizePerShot() ([][2]float64, error) {
	stats := make([][2]float64, len(a.Series))
	for c, xs := range a.Series {
		mean, n := 0.0, 0
		for _, v := range xs {
			if !math.IsNaN(v) {
				mean += v
				n++
			}
		}
		if n == 0 {
			return nil, fmt.Errorf("fusion: channel %q all-NaN", a.Channels[c])
		}
		mean /= float64(n)
		variance := 0.0
		for _, v := range xs {
			if !math.IsNaN(v) {
				d := v - mean
				variance += d * d
			}
		}
		std := math.Sqrt(variance / float64(n))
		div := std
		if div == 0 {
			div = 1
		}
		for i, v := range xs {
			if !math.IsNaN(v) {
				xs[i] = (v - mean) / div
			}
		}
		stats[c] = [2]float64{mean, std}
	}
	return stats, nil
}

// Window is one fixed-length multi-channel slice with its disruption
// label: 1 if a disruption occurs within `horizon` after the window's end
// (the DIII-D disruption-prediction target).
type Window struct {
	Shot     int
	Start    int       // sample index
	Features []float64 // [channel-major: c0 samples…, c1 samples…]
	Label    int
}

// Windowize slices the aligned shot into windows of `length` samples with
// `stride`, labeling each by whether disruption falls within horizon
// seconds after the window end.
func Windowize(a *AlignedShot, length, stride int, horizon float64) ([]Window, error) {
	if length <= 0 || stride <= 0 {
		return nil, fmt.Errorf("fusion: length=%d stride=%d must be positive", length, stride)
	}
	n := a.Samples()
	if n < length {
		return nil, nil // shot too short: no windows
	}
	var out []Window
	for start := 0; start+length <= n; start += stride {
		w := Window{Shot: a.Number, Start: start,
			Features: make([]float64, 0, length*len(a.Series))}
		for _, series := range a.Series {
			w.Features = append(w.Features, series[start:start+length]...)
		}
		endTime := a.T0 + float64(start+length)*a.Dt
		if a.Disrupted && a.TDisrupt >= endTime && a.TDisrupt <= endTime+horizon {
			w.Label = 1
		}
		out = append(out, w)
	}
	return out, nil
}
