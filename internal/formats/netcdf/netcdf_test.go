package netcdf

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// buildClimate returns a small CMIP6-like file: lat/lon fixed dims, an
// unlimited time dim, a fixed lat coordinate variable, and a record
// temperature variable.
func buildClimate(t *testing.T, nrecs int) *File {
	t.Helper()
	f := &File{NumRecs: nrecs}
	timeID := f.AddDim("time", 0, true)
	latID := f.AddDim("lat", 3, false)
	lonID := f.AddDim("lon", 4, false)

	lat := Var{
		Name: "lat", Type: Double, DimIDs: []int{latID},
		Attrs: []Attr{CharAttr("units", "degrees_north")},
		Data:  []float64{-45, 0, 45},
	}
	tas := Var{
		Name: "tas", Type: Float, DimIDs: []int{timeID, latID, lonID},
		Attrs: []Attr{
			CharAttr("units", "K"),
			DoubleAttr("scale_factor", 1.0),
		},
		Data: make([]float64, nrecs*3*4),
	}
	for i := range tas.Data {
		tas.Data[i] = 250 + float64(i%60)*0.5
	}
	f.GlobalAttrs = []Attr{
		CharAttr("Conventions", "CF-1.8"),
		CharAttr("source", "synthetic CMIP6-like generator"),
	}
	f.Vars = []Var{lat, tas}
	_ = lonID
	return f
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := buildClimate(t, 5)
	b, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRecs != 5 {
		t.Fatalf("numrecs=%d", g.NumRecs)
	}
	if len(g.Dims) != 3 || g.Dims[0].Name != "time" || !g.Dims[0].Unlimited {
		t.Fatalf("dims=%+v", g.Dims)
	}
	if g.Dims[1].Len != 3 || g.Dims[2].Len != 4 {
		t.Fatalf("dims=%+v", g.Dims)
	}
	lat := g.VarByName("lat")
	if lat == nil || lat.Type != Double {
		t.Fatal("lat variable missing or wrong type")
	}
	if lat.Data[0] != -45 || lat.Data[2] != 45 {
		t.Fatalf("lat=%v", lat.Data)
	}
	tas := g.VarByName("tas")
	if tas == nil {
		t.Fatal("tas missing")
	}
	if len(tas.Data) != 5*3*4 {
		t.Fatalf("tas len=%d", len(tas.Data))
	}
	for i, v := range tas.Data {
		want := 250 + float64(i%60)*0.5 // exactly representable in float32
		if v != want {
			t.Fatalf("tas[%d]=%v, want %v", i, v, want)
		}
	}
}

func TestMagicAndVersion(t *testing.T) {
	b, err := Encode(&File{})
	if err != nil {
		t.Fatal(err)
	}
	if string(b[:3]) != "CDF" || b[3] != 2 {
		t.Fatalf("header=% x", b[:4])
	}
}

func TestAttributesRoundTrip(t *testing.T) {
	f := &File{
		GlobalAttrs: []Attr{
			CharAttr("title", "x"),
			DoubleAttr("limits", 1.5, -2.5, 1e300),
			{Name: "count", Type: Int, Values: []float64{42}},
			{Name: "flag", Type: Byte, Values: []float64{-3}},
			{Name: "level", Type: Short, Values: []float64{-30000, 30000}},
			{Name: "ratio", Type: Float, Values: []float64{0.5}},
		},
	}
	b, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.GlobalAttrs) != 6 {
		t.Fatalf("attrs=%d", len(g.GlobalAttrs))
	}
	if g.GlobalAttrs[0].Str != "x" {
		t.Fatalf("title=%q", g.GlobalAttrs[0].Str)
	}
	if g.GlobalAttrs[1].Values[2] != 1e300 {
		t.Fatalf("limits=%v", g.GlobalAttrs[1].Values)
	}
	if g.GlobalAttrs[3].Values[0] != -3 {
		t.Fatalf("byte attr=%v", g.GlobalAttrs[3].Values)
	}
	if g.GlobalAttrs[4].Values[1] != 30000 {
		t.Fatalf("short attr=%v", g.GlobalAttrs[4].Values)
	}
}

func TestCharVariable(t *testing.T) {
	f := &File{}
	n := f.AddDim("strlen", 8, false)
	f.Vars = []Var{{
		Name: "station", Type: Char, DimIDs: []int{n},
		Text: []byte("KORD\x00\x00\x00\x00"),
	}}
	b, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	got := g.VarByName("station")
	if got == nil || !strings.HasPrefix(string(got.Text), "KORD") {
		t.Fatalf("station=%q", got.Text)
	}
}

func TestAllNumericTypesRoundTrip(t *testing.T) {
	cases := []struct {
		typ  Type
		vals []float64
	}{
		{Byte, []float64{-128, 0, 127}},
		{Short, []float64{-32768, 0, 32767}},
		{Int, []float64{-2147483648, 0, 2147483647}},
		{Float, []float64{-1.5, 0, 3.25}},
		{Double, []float64{-math.Pi, 0, 1e-300}},
	}
	for _, c := range cases {
		f := &File{}
		d := f.AddDim("n", len(c.vals), false)
		f.Vars = []Var{{Name: "v", Type: c.typ, DimIDs: []int{d}, Data: c.vals}}
		b, err := Encode(f)
		if err != nil {
			t.Fatalf("%v: %v", c.typ, err)
		}
		g, err := Decode(b)
		if err != nil {
			t.Fatalf("%v: %v", c.typ, err)
		}
		got := g.VarByName("v").Data
		for i := range c.vals {
			if got[i] != c.vals[i] {
				t.Fatalf("%v[%d]=%v, want %v", c.typ, i, got[i], c.vals[i])
			}
		}
	}
}

func TestPaddingOddSizes(t *testing.T) {
	// 3 bytes of Byte data forces slab padding; 5-char attr forces attr padding.
	f := &File{GlobalAttrs: []Attr{CharAttr("t", "abcde")}}
	d := f.AddDim("n", 3, false)
	f.Vars = []Var{{Name: "b", Type: Byte, DimIDs: []int{d}, Data: []float64{1, 2, 3}}}
	b, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(b)%4 != 0 {
		t.Fatalf("file size %d not 4-aligned", len(b))
	}
	g, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.GlobalAttrs[0].Str != "abcde" {
		t.Fatalf("attr=%q", g.GlobalAttrs[0].Str)
	}
	if got := g.VarByName("b").Data; got[2] != 3 {
		t.Fatalf("data=%v", got)
	}
}

func TestMultipleRecordVarsInterleaved(t *testing.T) {
	f := &File{NumRecs: 3}
	timeID := f.AddDim("time", 0, true)
	xID := f.AddDim("x", 2, false)
	a := Var{Name: "a", Type: Int, DimIDs: []int{timeID, xID},
		Data: []float64{1, 2, 3, 4, 5, 6}}
	b := Var{Name: "b", Type: Double, DimIDs: []int{timeID},
		Data: []float64{10, 20, 30}}
	f.Vars = []Var{a, b}
	enc, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	ga, gb := g.VarByName("a"), g.VarByName("b")
	for i, want := range []float64{1, 2, 3, 4, 5, 6} {
		if ga.Data[i] != want {
			t.Fatalf("a=%v", ga.Data)
		}
	}
	for i, want := range []float64{10, 20, 30} {
		if gb.Data[i] != want {
			t.Fatalf("b=%v", gb.Data)
		}
	}
}

func TestVarShape(t *testing.T) {
	f := buildClimate(t, 7)
	b, _ := Encode(f)
	g, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	shape := g.VarShape(g.VarByName("tas"))
	if len(shape) != 3 || shape[0] != 7 || shape[1] != 3 || shape[2] != 4 {
		t.Fatalf("shape=%v", shape)
	}
}

func TestValidationErrors(t *testing.T) {
	// Two unlimited dims.
	f := &File{}
	f.AddDim("t1", 0, true)
	f.AddDim("t2", 0, true)
	if _, err := Encode(f); err == nil {
		t.Fatal("want multiple-unlimited error")
	}
	// Record dim not first.
	f2 := &File{NumRecs: 1}
	tid := f2.AddDim("time", 0, true)
	xid := f2.AddDim("x", 2, false)
	f2.Vars = []Var{{Name: "v", Type: Int, DimIDs: []int{xid, tid}, Data: []float64{1, 2}}}
	if _, err := Encode(f2); err == nil {
		t.Fatal("want record-dim-position error")
	}
	// Wrong data length.
	f3 := &File{}
	d := f3.AddDim("n", 4, false)
	f3.Vars = []Var{{Name: "v", Type: Int, DimIDs: []int{d}, Data: []float64{1}}}
	if _, err := Encode(f3); err == nil {
		t.Fatal("want data-length error")
	}
	// Unknown dim reference.
	f4 := &File{Vars: []Var{{Name: "v", Type: Int, DimIDs: []int{9}, Data: nil}}}
	if _, err := Encode(f4); err == nil {
		t.Fatal("want unknown-dim error")
	}
	// Empty names.
	f5 := &File{Dims: []Dim{{Name: "", Len: 1}}}
	if _, err := Encode(f5); err == nil {
		t.Fatal("want empty-dim-name error")
	}
	// Invalid type.
	f6 := &File{Vars: []Var{{Name: "v", Type: Type(99)}}}
	if _, err := Encode(f6); err == nil {
		t.Fatal("want invalid-type error")
	}
	// Non-positive fixed dim.
	f7 := &File{Dims: []Dim{{Name: "n", Len: 0}}}
	if _, err := Encode(f7); err == nil {
		t.Fatal("want non-positive-dim error")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("NOPE")); err == nil {
		t.Fatal("want bad-magic error")
	}
	if _, err := Decode([]byte("CDF\x09____")); err == nil {
		t.Fatal("want version error")
	}
	f := buildClimate(t, 2)
	b, _ := Encode(f)
	if _, err := Decode(b[:len(b)/2]); err == nil {
		t.Fatal("want truncation error")
	}
	if _, err := Decode(b[:16]); err == nil {
		t.Fatal("want truncated-header error")
	}
}

func TestEmptyFile(t *testing.T) {
	b, err := Encode(&File{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Dims) != 0 || len(g.Vars) != 0 || len(g.GlobalAttrs) != 0 {
		t.Fatalf("decoded nonempty: %+v", g)
	}
}

func TestTypeString(t *testing.T) {
	if Double.String() != "double" || Type(99).String() == "" {
		t.Fatal("type strings")
	}
}

// Property: double-typed data round-trips exactly for arbitrary finite values.
func TestRoundTripPropertyDouble(t *testing.T) {
	f := func(vals []float64) bool {
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if !math.IsNaN(v) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		file := &File{}
		d := file.AddDim("n", len(clean), false)
		file.Vars = []Var{{Name: "v", Type: Double, DimIDs: []int{d}, Data: clean}}
		b, err := Encode(file)
		if err != nil {
			return false
		}
		g, err := Decode(b)
		if err != nil {
			return false
		}
		got := g.VarByName("v").Data
		for i := range clean {
			if got[i] != clean[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: record-variable layout is stable across record counts.
func TestRecordCountProperty(t *testing.T) {
	f := func(n uint8) bool {
		nrecs := int(n%20) + 1
		file := &File{NumRecs: nrecs}
		tid := file.AddDim("time", 0, true)
		file.Vars = []Var{{Name: "v", Type: Double, DimIDs: []int{tid},
			Data: seq(nrecs)}}
		b, err := Encode(file)
		if err != nil {
			return false
		}
		g, err := Decode(b)
		if err != nil || g.NumRecs != nrecs {
			return false
		}
		got := g.VarByName("v").Data
		for i := 0; i < nrecs; i++ {
			if got[i] != float64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func seq(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = float64(i)
	}
	return s
}

func BenchmarkEncode(b *testing.B) {
	f := &File{NumRecs: 12}
	tid := f.AddDim("time", 0, true)
	latID := f.AddDim("lat", 64, false)
	lonID := f.AddDim("lon", 128, false)
	data := make([]float64, 12*64*128)
	for i := range data {
		data[i] = float64(i % 300)
	}
	f.Vars = []Var{{Name: "tas", Type: Float, DimIDs: []int{tid, latID, lonID}, Data: data}}
	b.SetBytes(int64(len(data) * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	f := &File{NumRecs: 12}
	tid := f.AddDim("time", 0, true)
	latID := f.AddDim("lat", 64, false)
	lonID := f.AddDim("lon", 128, false)
	data := make([]float64, 12*64*128)
	f.Vars = []Var{{Name: "tas", Type: Float, DimIDs: []int{tid, latID, lonID}, Data: data}}
	enc, err := Encode(f)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDecodeCDF1 hand-builds a version-1 (32-bit offset) classic file and
// verifies the decoder's CDF-1 path.
func TestDecodeCDF1(t *testing.T) {
	var buf []byte
	u32 := func(v uint32) {
		var b [4]byte
		b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
		buf = append(buf, b[:]...)
	}
	name := func(s string) {
		u32(uint32(len(s)))
		buf = append(buf, s...)
		for i := len(s); i%4 != 0; i++ {
			buf = append(buf, 0)
		}
	}
	buf = append(buf, 'C', 'D', 'F', 1)
	u32(0)            // numrecs
	u32(tagDimension) // dim list
	u32(1)
	name("n")
	u32(2)         // dim length
	u32(tagAbsent) // no global attrs
	u32(0)
	u32(tagVariable) // var list
	u32(1)
	name("v")
	u32(1) // ndims
	u32(0) // dimid 0
	u32(tagAbsent)
	u32(0)
	u32(uint32(Int)) // type
	u32(8)           // vsize
	begin := uint32(len(buf) + 4)
	u32(begin) // 32-bit begin offset (CDF-1!)
	// data: two big-endian int32s
	u32(7)
	u32(9)

	f, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	v := f.VarByName("v")
	if v == nil || v.Data[0] != 7 || v.Data[1] != 9 {
		t.Fatalf("decoded=%+v", v)
	}
}
