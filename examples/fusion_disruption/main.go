// fusion_disruption reproduces the DIII-D-style disruption-prediction
// data preparation: synthesize a tokamak campaign, run the fusion
// archetype pipeline to TFRecords, report the curation-time accounting
// the paper quotes ("70% of time on data curation"), and train a small
// classifier on the prepared windows to show the data is genuinely
// ready-to-train.
package main

import (
	"fmt"
	"io"
	"log"

	"repro/internal/experiments"
	"repro/internal/formats/tfrecord"
	"repro/internal/fusion"
	"repro/internal/label"
	"repro/internal/shard"
)

func main() {
	log.SetFlags(0)
	st, err := fusion.SynthesizeCampaign(fusion.SynthConfig{
		Shots: 24, DisruptionRate: 0.4, FlattopSeconds: 2, DropoutRate: 0.02, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign: %d shots, %d diagnostics each\n", len(st.Shots()), len(fusion.DiagnosticNames()))

	sink := shard.NewMemSink()
	p, err := fusion.NewPipeline(fusion.DefaultConfig(), sink)
	if err != nil {
		log.Fatal(err)
	}
	ds := fusion.NewDataset("campaign", st)
	snaps, err := p.Run(ds)
	if err != nil {
		log.Fatal(err)
	}
	prod := ds.Payload.(*fusion.Product)
	fmt.Printf("windows: %d (%.1f%% disruption-positive), final readiness: %s\n",
		len(prod.Windows), 100*fusion.DisruptionRate(prod.Windows),
		snaps[len(snaps)-1].Assessment.Level)
	fmt.Printf("TFRecord shards: %d (%d bytes)\n",
		len(prod.Manifest.Shards), prod.Manifest.TotalStoredBytes())

	// Read the TFRecords back and train a quick kNN disruption detector —
	// the "ready-to-train" proof.
	var features [][]float64
	var labels []int
	err = shard.ReadAll(sink, prod.Manifest, func(_ string, rec []byte) error {
		ex, err := tfrecord.Unmarshal(rec)
		if err != nil {
			return err
		}
		sig := ex.Features["signal"].Floats
		if len(sig) == 0 {
			return io.ErrUnexpectedEOF
		}
		// Compact summary features per window.
		minV, maxV, sum := sig[0], sig[0], float64(0)
		for _, v := range sig {
			f := float64(v)
			if f < float64(minV) {
				minV = v
			}
			if f > float64(maxV) {
				maxV = v
			}
			sum += f
		}
		features = append(features, []float64{float64(minV), float64(maxV), sum / float64(len(sig))})
		labels = append(labels, int(ex.Features["label"].Ints[0]))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	knn := label.NewKNN(5)
	if err := knn.Fit(features, labels); err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i := range features {
		if c, _ := knn.Predict(features[i]); c == labels[i] {
			correct++
		}
	}
	fmt.Printf("kNN self-fit accuracy on prepared windows: %.1f%% (%d windows)\n",
		100*float64(correct)/float64(len(features)), len(features))

	// The curation-time experiment (paper §3.2).
	fmt.Println()
	cur, err := experiments.RunCuration(8, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cur.Render())
}
