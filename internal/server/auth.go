// Tenant authentication and the audit API. The auth middleware sits
// between the telemetry middleware and the mux: it resolves every
// request to a tenant identity (bearer token for clients, the
// master-key-derived peer secret for fleet-internal hops), stamps the
// identity on the context, the root span, and the X-Draid-Tenant
// header (so proxy hops carry it), and turns everything else into an
// audited 401. Quota bookkeeping lives here too: per-tenant active-job
// and retained-shard-byte counters, enforced at submit and consulted
// by eviction.
package server

import (
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/ledger"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/tenant"
)

// peerAuthSecret derives the fleet-internal authentication secret from
// the shared master key. Every member of one data dir computes the
// same value, so node-to-node requests authenticate without any new
// key distribution — and nothing outside the fleet can mint it.
func peerAuthSecret(master []byte) string {
	mac := hmac.New(sha256.New, master)
	mac.Write([]byte("draid-peer-auth-v1"))
	return hex.EncodeToString(mac.Sum(nil))
}

// openPath lists the endpoints that stay unauthenticated with -tenants
// set: the liveness probe (fleet members and orchestrators hit it
// pre-credential) and the metrics scrape (documented operator choice —
// counters carry no tenant payloads).
func openPath(path string) bool {
	return path == "/healthz" || path == "/metrics"
}

// withAuth is the tenancy middleware. Without a tenant registry it is
// a no-op (today's open behavior). With one, every request resolves to
// an identity or dies with an audited 401:
//
//   - A valid X-Draid-Peer-Auth (fleet-internal hop) makes the
//     X-Draid-Tenant header trustworthy: the relaying node already
//     authenticated the client and stamped its tenant. No tenant header
//     means the fleet itself is calling (adoption scans, list merges) —
//     full visibility.
//   - Otherwise the bearer token (Authorization or ?access_token=)
//     must authenticate. The resolved tenant overwrites any
//     client-supplied X-Draid-Tenant, so spoofing the header buys
//     nothing without the peer secret.
func (s *Server) withAuth(next http.Handler) http.Handler {
	if s.tenants == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if openPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		var ident tenant.Identity
		if s.peerAuth != "" &&
			subtle.ConstantTimeCompare([]byte(r.Header.Get(tenant.HeaderPeerAuth)), []byte(s.peerAuth)) == 1 {
			id := r.Header.Get(tenant.HeaderTenant)
			ident = tenant.Identity{ID: id, Admin: id == ""}
			if t, ok := s.tenants.Get(id); ok && t.Admin {
				ident.Admin = true
			}
		} else {
			tok := tenant.TokenFromRequest(r)
			t, ok := s.tenants.Authenticate(tok)
			if !ok {
				s.metrics.tenantAuthFailures.Inc()
				detail := "no credential"
				if tok != "" {
					detail = "invalid token"
				}
				s.audit(ledger.TypeAuthFailure, "", "", detail+": "+r.Method+" "+r.URL.Path)
				s.logger.Info("auth failure", "method", r.Method, "path", tenant.RedactedPath(r),
					"trace", telemetry.TraceFrom(r.Context()))
				w.Header().Set("WWW-Authenticate", `Bearer realm="draid"`)
				writeError(w, http.StatusUnauthorized, fmt.Errorf("missing or invalid bearer token"))
				return
			}
			ident = tenant.Identity{ID: t.ID, Admin: t.Admin}
			// Stamp the authenticated tenant for any proxy hop that clones
			// these headers — the relay adds the peer secret that makes
			// the stamp trustworthy downstream.
			r.Header.Set(tenant.HeaderTenant, t.ID)
		}
		telemetry.SpanFromContext(r.Context()).SetAttr("tenant", ident.ID)
		next.ServeHTTP(w, r.WithContext(tenant.WithIdentity(r.Context(), ident)))
	})
}

// audit appends one record to the audit ledger (no-op without a data
// dir). Append returns once the record is durable — group-committed,
// so concurrent auditors share an fsync.
func (s *Server) audit(typ, tenantID, job, detail string) {
	if s.ledger == nil {
		return
	}
	if _, err := s.ledger.Append(typ, tenantID, job, detail); err != nil {
		s.logger.Warn("audit append failed", "type", typ, "job", job, "error", err.Error())
	}
}

// handleAuditRoots serves GET /v1/audit/roots: the ledger's published
// Merkle batch roots. Any authenticated caller may read them — roots
// reveal nothing about record contents, and verifying a proof against
// an independently fetched root is the whole point.
func (s *Server) handleAuditRoots(w http.ResponseWriter, _ *http.Request) {
	if s.ledger == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("audit ledger disabled (start with -data-dir)"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"node":    s.nodeID(),
		"records": s.ledger.Len(),
		"roots":   s.ledger.Roots(),
	})
}

// handleAuditProof serves GET /v1/audit/proof?seq=N: the Merkle
// inclusion proof for one audit record of this node's ledger. Tenants
// may prove only their own records (admin proves any), so the audit
// API leaks no cross-tenant activity.
func (s *Server) handleAuditProof(w http.ResponseWriter, r *http.Request) {
	if s.ledger == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("audit ledger disabled (start with -data-dir)"))
		return
	}
	seq, err := strconv.ParseUint(r.URL.Query().Get("seq"), 10, 64)
	if err != nil || seq == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("query seq must be a positive integer"))
		return
	}
	rec, ok := s.ledger.Record(seq)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no audit record with seq %d", seq))
		return
	}
	if s.tenants != nil {
		if ident := tenant.FromContext(r.Context()); !ident.CanAccess(rec.Tenant) {
			writeError(w, http.StatusForbidden, fmt.Errorf("audit record %d belongs to another tenant", seq))
			return
		}
	}
	proof, err := s.ledger.Prove(seq)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, proof)
}

// --- per-tenant quota bookkeeping -----------------------------------
//
// tenantMu is a leaf lock: the helpers below never take s.mu or any
// job lock while holding it, so call sites may hold either.

// quotaAdmit checks and reserves one active-job slot for a tenant at
// submission. Nil tenant (auth off, or an identity with no registry
// row) admits freely — quotas bind only configured tenants.
func (s *Server) quotaAdmit(ten *tenant.Tenant) error {
	if ten == nil {
		return nil
	}
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	if ten.MaxJobs > 0 && s.tenantJobs[ten.ID] >= ten.MaxJobs {
		return fmt.Errorf("tenant %s has %d jobs queued or running (max %d)",
			ten.ID, s.tenantJobs[ten.ID], ten.MaxJobs)
	}
	if ten.MaxShardBytes > 0 && s.tenantBytes[ten.ID] >= ten.MaxShardBytes {
		return fmt.Errorf("tenant %s retains %d shard bytes (max %d); evict or expire jobs first",
			ten.ID, s.tenantBytes[ten.ID], ten.MaxShardBytes)
	}
	s.tenantJobs[ten.ID]++
	return nil
}

// quotaActivate counts a job (re)entering the queued/running phase —
// the unchecked path for restarts and requeues, which must never be
// refused by a quota the job was admitted under before the crash.
func (s *Server) quotaActivate(tenantID string) {
	if tenantID == "" {
		return
	}
	s.tenantMu.Lock()
	s.tenantJobs[tenantID]++
	s.tenantMu.Unlock()
}

// quotaDeactivate releases the active-job slot at a terminal
// transition (or an admit that could not enqueue).
func (s *Server) quotaDeactivate(tenantID string) {
	if tenantID == "" {
		return
	}
	s.tenantMu.Lock()
	if s.tenantJobs[tenantID] > 0 {
		s.tenantJobs[tenantID]--
	}
	s.tenantMu.Unlock()
}

// quotaRetain counts a completed job's shard bytes against its tenant
// (job done, restored, or adopted into the table).
func (s *Server) quotaRetain(tenantID string, bytes int64) {
	if tenantID == "" || bytes <= 0 {
		return
	}
	s.tenantMu.Lock()
	s.tenantBytes[tenantID] += bytes
	s.tenantMu.Unlock()
}

// quotaRelease returns shard bytes when a completed job leaves the
// table (eviction, or release to the ring owner).
func (s *Server) quotaRelease(tenantID string, bytes int64) {
	if tenantID == "" || bytes <= 0 {
		return
	}
	s.tenantMu.Lock()
	s.tenantBytes[tenantID] -= bytes
	if s.tenantBytes[tenantID] < 0 {
		s.tenantBytes[tenantID] = 0
	}
	s.tenantMu.Unlock()
}

// tenantRetained reports a tenant's current retained shard bytes.
func (s *Server) tenantRetained(tenantID string) int64 {
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	return s.tenantBytes[tenantID]
}

// tenantByteQuotas reports whether any configured tenant has a
// retained-byte cap — the trigger for quota-pressure eviction even
// when TTL/MaxJobs retention is off.
func (s *Server) tenantByteQuotas() bool {
	if s.tenants == nil {
		return false
	}
	for _, t := range s.tenants.Tenants() {
		if t.MaxShardBytes > 0 {
			return true
		}
	}
	return false
}

// manifestStoredBytes is the on-disk footprint a manifest pins — the
// unit of the retained-byte quota.
func manifestStoredBytes(m *shard.Manifest) int64 {
	if m == nil {
		return 0
	}
	var n int64
	for _, info := range m.Shards {
		n += info.StoredBytes
	}
	return n
}
