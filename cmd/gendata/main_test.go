package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bio"
	"repro/internal/climate"
	"repro/internal/formats/grib"
	"repro/internal/materials"
)

func TestRunGeneratesAllDomains(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 1, 6, 3, 5, 4); err != nil {
		t.Fatal(err)
	}

	// Climate: the NetCDF decodes, the GRIB decodes.
	nc, err := os.ReadFile(filepath.Join(dir, "climate", "tas_synthetic.nc"))
	if err != nil {
		t.Fatal(err)
	}
	f, err := climate.FromNetCDF(nc, "tas")
	if err != nil {
		t.Fatal(err)
	}
	if f.Data.Dim(0) != 6 {
		t.Fatalf("months=%d", f.Data.Dim(0))
	}
	gb, err := os.ReadFile(filepath.Join(dir, "climate", "tas_month0.sgrb"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := grib.Decode(gb); err != nil {
		t.Fatal(err)
	}

	// Fusion: index lists 3 shots; per-shot CSVs exist.
	idx, err := os.ReadFile(filepath.Join(dir, "fusion", "shots.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(idx)), "\n")
	if len(lines) != 4 { // header + 3 shots
		t.Fatalf("index lines=%d", len(lines))
	}
	if _, err := os.Stat(filepath.Join(dir, "fusion", "shot_170000.csv")); err != nil {
		t.Fatal(err)
	}

	// Bio: FASTA parses with 5 subjects; clinical CSV is mode 0600.
	fb, err := os.ReadFile(filepath.Join(dir, "bio", "cohort.fasta"))
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := bio.ParseFASTA(string(fb))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 5 {
		t.Fatalf("subjects=%d", len(seqs))
	}
	info, err := os.Stat(filepath.Join(dir, "bio", "clinical.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Fatalf("clinical.csv mode=%v, want 0600 (contains PHI)", info.Mode().Perm())
	}

	// Materials: every POSCAR parses.
	entries, err := os.ReadDir(filepath.Join(dir, "materials"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("poscars=%d", len(entries))
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, "materials", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := materials.ParsePOSCAR(string(data)); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	d1, d2 := t.TempDir(), t.TempDir()
	if err := run(d1, 42, 2, 1, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := run(d2, 42, 2, 1, 2, 2); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(filepath.Join(d1, "climate", "tas_synthetic.nc"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(d2, "climate", "tas_synthetic.nc"))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("same seed must generate identical raw data")
	}
}
