// Merkle tree over one batch of record hashes. Interior nodes are
// SHA-256(left || right); an unpaired node at any level is promoted
// unchanged, so the tree over n leaves is defined for every n >= 1 and
// a proof is the sibling path from leaf to root.
package ledger

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// merkleRoot folds leaf hashes up to the batch root. Empty input
// returns the hash of nothing — callers never pass it, but a defined
// answer beats a panic in a verifier.
func merkleRoot(leaves [][]byte) []byte {
	if len(leaves) == 0 {
		sum := sha256.Sum256(nil)
		return sum[:]
	}
	level := append([][]byte(nil), leaves...)
	for len(level) > 1 {
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i]) // odd node promoted
				break
			}
			sum := sha256.Sum256(append(append([]byte(nil), level[i]...), level[i+1]...))
			next = append(next, sum[:])
		}
		level = next
	}
	return level[0]
}

// proofStep is one sibling on the path to the root; left says the
// sibling hashes on the left of the running value.
type proofStep struct {
	hash []byte
	left bool
}

// merkleProof returns the sibling path for leaf idx. Levels where the
// running node is unpaired contribute no step (the node was promoted).
func merkleProof(leaves [][]byte, idx int) []proofStep {
	var path []proofStep
	level := append([][]byte(nil), leaves...)
	for len(level) > 1 {
		sib := idx ^ 1
		if sib < len(level) {
			path = append(path, proofStep{hash: level[sib], left: sib < idx})
		}
		next := level[:0:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				break
			}
			sum := sha256.Sum256(append(append([]byte(nil), level[i]...), level[i+1]...))
			next = append(next, sum[:])
		}
		level = next
		idx /= 2
	}
	return path
}

// ProofStep is one hop of a serialized inclusion proof.
type ProofStep struct {
	Hash string `json:"hash"`
	Left bool   `json:"left,omitempty"`
}

// Proof is a Merkle inclusion proof for one audit record, as served by
// GET /v1/audit/proof?seq=N: the record itself, its batch, the sibling
// path, and the batch root the path folds up to. A verifier checks (1)
// HashRecord(Record) == Record.Hash, (2) the path folds that hash to
// Root, and (3) Root matches the published root for Batch.
type Proof struct {
	Seq    uint64      `json:"seq"`
	Batch  int         `json:"batch"`
	Record Record      `json:"record"`
	Path   []ProofStep `json:"path"`
	Root   string      `json:"root"`
}

// Verify checks the proof end to end against its embedded root:
// record hash integrity plus the Merkle path. The caller still
// compares p.Root against an independently fetched published root —
// that comparison is what makes the verification offline-meaningful.
func (p *Proof) Verify() error {
	if HashRecord(p.Record) != p.Record.Hash {
		return fmt.Errorf("ledger: record %d hash does not match its content", p.Seq)
	}
	cur, err := hex.DecodeString(p.Record.Hash)
	if err != nil {
		return fmt.Errorf("ledger: record %d hash is not hex: %w", p.Seq, err)
	}
	for _, st := range p.Path {
		sib, err := hex.DecodeString(st.Hash)
		if err != nil {
			return fmt.Errorf("ledger: proof step hash is not hex: %w", err)
		}
		var sum [32]byte
		if st.Left {
			sum = sha256.Sum256(append(append([]byte(nil), sib...), cur...))
		} else {
			sum = sha256.Sum256(append(append([]byte(nil), cur...), sib...))
		}
		cur = sum[:]
	}
	root, err := hex.DecodeString(p.Root)
	if err != nil {
		return fmt.Errorf("ledger: proof root is not hex: %w", err)
	}
	if !bytes.Equal(cur, root) {
		return fmt.Errorf("ledger: proof for seq %d does not fold to its root", p.Seq)
	}
	return nil
}
