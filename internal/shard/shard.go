// Package shard implements the final AI-readiness stage (paper Fig. 1 and
// Table 2, level 5: "data partitioned into train/test/val & sharded into
// binary formats for scalable ingestion"): a size-targeted shard writer
// with optional compression, a manifest with per-shard checksums, parallel
// multi-writer sharding, and a verifying reader.
//
// Records inside a shard use TFRecord framing (length + masked CRC32C), so
// every shard is independently seekable-by-scan and integrity-checked at
// two levels: per record (CRC32C) and per shard (SHA-256 in the manifest).
package shard

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/formats/tfrecord"
)

// Sink creates named shard objects. Implementations: MemSink (tests,
// in-memory pipelines), or any storage adapter (e.g. parfs).
type Sink interface {
	Create(name string) (io.WriteCloser, error)
}

// Opener retrieves shard objects by name for reading.
type Opener interface {
	Open(name string) (io.ReadCloser, error)
}

// ReaderAtCloser is a random-access read handle on one stored object.
type ReaderAtCloser interface {
	io.ReaderAt
	io.Closer
}

// RangeOpener is the optional random-access side of a store: stores
// that can serve byte ranges without materializing whole objects
// (FSSink via pread, ParfsSink via striped range reads, MemSink
// trivially) expose it so the serving tier's disk-tier frame path can
// io.CopyN payload ranges straight off the store. Callers type-assert;
// absence falls back to Open + ReadAll.
type RangeOpener interface {
	OpenRange(name string) (ReaderAtCloser, int64, error)
}

// Store is full shard storage: creation, read-back, and enumeration.
// Implementations: MemSink (in-memory), FSSink (durable files under a
// root directory), ParfsSink (simulated striped parallel filesystem).
type Store interface {
	Sink
	Opener
	// Names lists finished shard names, sorted.
	Names() []string
	// Size returns the stored byte size of a shard (0 if absent).
	Size(name string) int64
}

// MemSink stores shards in memory and satisfies both Sink and Opener.
type MemSink struct {
	mu     sync.Mutex
	shards map[string]*bytes.Buffer
}

// NewMemSink returns an empty in-memory sink.
func NewMemSink() *MemSink { return &MemSink{shards: make(map[string]*bytes.Buffer)} }

type memShard struct {
	buf  *bytes.Buffer
	sink *MemSink
	name string
	done bool
}

func (m *memShard) Write(p []byte) (int, error) { return m.buf.Write(p) }

func (m *memShard) Close() error {
	if m.done {
		return nil
	}
	m.done = true
	m.sink.mu.Lock()
	defer m.sink.mu.Unlock()
	m.sink.shards[m.name] = m.buf
	return nil
}

// Create begins a new in-memory shard.
func (s *MemSink) Create(name string) (io.WriteCloser, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.shards[name]; exists {
		return nil, fmt.Errorf("shard: %q already exists", name)
	}
	return &memShard{buf: &bytes.Buffer{}, sink: s, name: name}, nil
}

// Open reads back a finished in-memory shard.
func (s *MemSink) Open(name string) (io.ReadCloser, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, ok := s.shards[name]
	if !ok {
		return nil, fmt.Errorf("shard: %q not found", name)
	}
	return io.NopCloser(bytes.NewReader(buf.Bytes())), nil
}

// Names lists stored shard names sorted.
func (s *MemSink) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.shards))
	for n := range s.shards {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// memRange is a no-op-close ReaderAt over a finished shard's bytes.
type memRange struct{ *bytes.Reader }

func (memRange) Close() error { return nil }

// OpenRange implements RangeOpener. The returned handle reads the
// buffer as of open time; finished in-memory shards are never
// rewritten in place, so that snapshot is stable.
func (s *MemSink) OpenRange(name string) (ReaderAtCloser, int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, ok := s.shards[name]
	if !ok {
		return nil, 0, fmt.Errorf("shard: %q not found", name)
	}
	return memRange{bytes.NewReader(buf.Bytes())}, int64(buf.Len()), nil
}

// Size returns the stored byte size of a shard (0 if absent).
func (s *MemSink) Size(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.shards[name]; ok {
		return int64(b.Len())
	}
	return 0
}

// Info describes one finished shard in the manifest.
type Info struct {
	Name        string `json:"name"`
	Records     int    `json:"records"`
	RawBytes    int64  `json:"raw_bytes"`
	StoredBytes int64  `json:"stored_bytes"`
	SHA256      string `json:"sha256"`
}

// Manifest indexes a shard set.
type Manifest struct {
	Prefix     string `json:"prefix"`
	Compressed bool   `json:"compressed"`
	Shards     []Info `json:"shards"`
}

// TotalRecords sums records across shards.
func (m *Manifest) TotalRecords() int {
	n := 0
	for _, s := range m.Shards {
		n += s.Records
	}
	return n
}

// TotalStoredBytes sums stored bytes across shards.
func (m *Manifest) TotalStoredBytes() int64 {
	var n int64
	for _, s := range m.Shards {
		n += s.StoredBytes
	}
	return n
}

// Encode serializes the manifest as JSON.
func (m *Manifest) Encode() ([]byte, error) { return json.MarshalIndent(m, "", "  ") }

// DecodeManifest parses a manifest.
func DecodeManifest(b []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("shard: decode manifest: %w", err)
	}
	return &m, nil
}

// Options configures a Writer.
type Options struct {
	// Prefix names shards "<prefix>-00000", "<prefix>-00001", …
	Prefix string
	// TargetBytes rotates to a new shard once the current shard's raw
	// payload reaches this size. <=0 means a single shard.
	TargetBytes int64
	// Compress wraps each shard in gzip.
	Compress bool
}

// Writer splits a record stream into shards. Not safe for concurrent use;
// for parallel sharding use ParallelWrite.
type Writer struct {
	sink Sink
	opts Options

	cur      io.WriteCloser
	curGzip  *gzip.Writer
	curTFW   *tfrecord.Writer
	curHash  interface{ Sum([]byte) []byte }
	curMulti io.Writer
	curInfo  Info
	counting *countingWriter

	manifest Manifest
	seq      int
	closed   bool
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// NewWriter returns a shard writer over the sink.
func NewWriter(sink Sink, opts Options) (*Writer, error) {
	if sink == nil {
		return nil, errors.New("shard: nil sink")
	}
	if opts.Prefix == "" {
		opts.Prefix = "shard"
	}
	return &Writer{sink: sink, opts: opts,
		manifest: Manifest{Prefix: opts.Prefix, Compressed: opts.Compress}}, nil
}

func (w *Writer) openShard() error {
	name := fmt.Sprintf("%s-%05d", w.opts.Prefix, w.seq)
	w.seq++
	obj, err := w.sink.Create(name)
	if err != nil {
		return fmt.Errorf("shard: create %q: %w", name, err)
	}
	w.cur = obj
	h := sha256.New()
	w.counting = &countingWriter{w: io.MultiWriter(obj, h)}
	w.curHash = h
	var payload io.Writer = w.counting
	if w.opts.Compress {
		w.curGzip = gzip.NewWriter(w.counting)
		payload = w.curGzip
	}
	w.curTFW = tfrecord.NewWriter(payload)
	w.curInfo = Info{Name: name}
	return nil
}

// Write appends one record, rotating shards at the size target.
func (w *Writer) Write(record []byte) error {
	if w.closed {
		return errors.New("shard: writer closed")
	}
	if w.cur == nil {
		if err := w.openShard(); err != nil {
			return err
		}
	}
	if err := w.curTFW.Write(record); err != nil {
		return err
	}
	w.curInfo.Records++
	w.curInfo.RawBytes += int64(len(record)) + 16 // payload + framing
	if w.opts.TargetBytes > 0 && w.curInfo.RawBytes >= w.opts.TargetBytes {
		return w.rotate()
	}
	return nil
}

func (w *Writer) rotate() error {
	if w.cur == nil {
		return nil
	}
	if w.curGzip != nil {
		if err := w.curGzip.Close(); err != nil {
			return fmt.Errorf("shard: close gzip: %w", err)
		}
		w.curGzip = nil
	}
	if err := w.cur.Close(); err != nil {
		return fmt.Errorf("shard: close %q: %w", w.curInfo.Name, err)
	}
	w.curInfo.StoredBytes = w.counting.n
	w.curInfo.SHA256 = hex.EncodeToString(w.curHash.Sum(nil))
	w.manifest.Shards = append(w.manifest.Shards, w.curInfo)
	w.cur = nil
	w.curTFW = nil
	return nil
}

// Close flushes the open shard and returns the manifest.
func (w *Writer) Close() (*Manifest, error) {
	if w.closed {
		return nil, errors.New("shard: writer already closed")
	}
	w.closed = true
	if w.cur != nil && w.curInfo.Records > 0 {
		if err := w.rotate(); err != nil {
			return nil, err
		}
	} else if w.cur != nil {
		_ = w.cur.Close()
	}
	return &w.manifest, nil
}

// ParallelWrite shards records across `workers` independent writers, each
// producing its own shard series ("<prefix>-w<k>-…"). Records are
// distributed round-robin; the returned manifest merges all series. This
// is the high-throughput parallel I/O path the paper's scale argument
// (C1) requires.
func ParallelWrite(sink Sink, opts Options, workers int, records [][]byte) (*Manifest, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("shard: workers=%d must be positive", workers)
	}
	if workers == 1 {
		w, err := NewWriter(sink, opts)
		if err != nil {
			return nil, err
		}
		for _, r := range records {
			if err := w.Write(r); err != nil {
				return nil, err
			}
		}
		return w.Close()
	}
	type result struct {
		manifest *Manifest
		err      error
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			wopts := opts
			wopts.Prefix = fmt.Sprintf("%s-w%d", opts.Prefix, k)
			w, err := NewWriter(sink, wopts)
			if err != nil {
				results[k] = result{err: err}
				return
			}
			for i := k; i < len(records); i += workers {
				if err := w.Write(records[i]); err != nil {
					results[k] = result{err: err}
					return
				}
			}
			m, err := w.Close()
			results[k] = result{manifest: m, err: err}
		}(k)
	}
	wg.Wait()
	merged := &Manifest{Prefix: opts.Prefix, Compressed: opts.Compress}
	for k, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("shard: worker %d: %w", k, r.err)
		}
		merged.Shards = append(merged.Shards, r.manifest.Shards...)
	}
	sort.Slice(merged.Shards, func(i, j int) bool {
		return merged.Shards[i].Name < merged.Shards[j].Name
	})
	return merged, nil
}

// ErrChecksum reports a shard whose content does not match its manifest.
var ErrChecksum = errors.New("shard: manifest checksum mismatch")

// ReadAll streams every record of every shard in manifest order through
// fn. It verifies the per-shard SHA-256 and per-record CRCs.
func ReadAll(open Opener, m *Manifest, fn func(shard string, record []byte) error) error {
	for _, info := range m.Shards {
		rc, err := open.Open(info.Name)
		if err != nil {
			return fmt.Errorf("shard: open %q: %w", info.Name, err)
		}
		raw, err := io.ReadAll(rc)
		closeErr := rc.Close()
		if err != nil {
			return fmt.Errorf("shard: read %q: %w", info.Name, err)
		}
		if closeErr != nil {
			return fmt.Errorf("shard: close %q: %w", info.Name, closeErr)
		}
		sum := sha256.Sum256(raw)
		if hex.EncodeToString(sum[:]) != info.SHA256 {
			return fmt.Errorf("%w: %q", ErrChecksum, info.Name)
		}
		var payload io.Reader = bytes.NewReader(raw)
		if m.Compressed {
			gz, err := gzip.NewReader(payload)
			if err != nil {
				return fmt.Errorf("shard: gunzip %q: %w", info.Name, err)
			}
			payload = gz
		}
		tr := tfrecord.NewReader(payload)
		count := 0
		for {
			rec, err := tr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return fmt.Errorf("shard: record %d of %q: %w", count, info.Name, err)
			}
			if err := fn(info.Name, rec); err != nil {
				return err
			}
			count++
		}
		if count != info.Records {
			return fmt.Errorf("shard: %q has %d records, manifest says %d", info.Name, count, info.Records)
		}
	}
	return nil
}
