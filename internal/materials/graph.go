package materials

import (
	"fmt"
	"math"
)

// Graph is a periodic cutoff graph over a structure's atoms: the
// HydraGNN-style encoding (nodes = atoms with feature vectors, edges =
// pairs within the cutoff under periodic boundary conditions).
type Graph struct {
	StructID string
	// NodeFeatures is [atom][feature]: normalized Z, then one-hot-ish
	// descriptors appended by NormalizeDescriptors.
	NodeFeatures [][]float64
	// Edges lists (i, j) pairs with i < j.
	Edges [][2]int
	// EdgeLengths holds the minimum-image distance per edge (Angstrom).
	EdgeLengths []float64
	Energy      float64
	Class       string
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.NodeFeatures) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// minImageDist computes the minimum-image distance between two fractional
// positions in a cubic cell of edge a.
func minImageDist(p, q [3]float64, a float64) float64 {
	s := 0.0
	for d := 0; d < 3; d++ {
		df := p[d] - q[d]
		df -= math.Round(df) // wrap to [-0.5, 0.5)
		dx := df * a
		s += dx * dx
	}
	return math.Sqrt(s)
}

// BuildGraph encodes a structure as a cutoff graph. Cutoff is in
// Angstrom; it must be positive and at most half the cell edge (the
// minimum-image convention's validity bound).
func BuildGraph(s *Structure, cutoff float64) (*Graph, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if cutoff <= 0 {
		return nil, fmt.Errorf("materials: cutoff %v must be positive", cutoff)
	}
	if cutoff > s.Lattice/2 {
		return nil, fmt.Errorf("materials: cutoff %v exceeds half cell edge %v (minimum image invalid)",
			cutoff, s.Lattice/2)
	}
	g := &Graph{StructID: s.ID, Energy: s.Energy, Class: s.Class}
	for _, sp := range s.Species {
		g.NodeFeatures = append(g.NodeFeatures, []float64{float64(AtomicNumber(sp))})
	}
	n := s.NumAtoms()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := minImageDist(s.Frac[i], s.Frac[j], s.Lattice)
			if d <= cutoff {
				g.Edges = append(g.Edges, [2]int{i, j})
				g.EdgeLengths = append(g.EdgeLengths, d)
			}
		}
	}
	return g, nil
}

// Degree returns per-node degree counts.
func (g *Graph) Degree() []int {
	deg := make([]int, g.NumNodes())
	for _, e := range g.Edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	return deg
}

// DescriptorStats holds normalization constants for graph node features
// computed across a dataset (paper: "normalize descriptors").
type DescriptorStats struct {
	MeanZ, StdZ        float64
	MeanEnergy, StdE   float64
	MeanDegree, StdDeg float64
}

// ComputeDescriptorStats scans graphs for dataset-wide normalization
// constants.
func ComputeDescriptorStats(graphs []*Graph) (*DescriptorStats, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("materials: no graphs to profile")
	}
	var zs, es, ds []float64
	for _, g := range graphs {
		es = append(es, g.Energy/math.Max(1, float64(g.NumNodes()))) // per-atom energy
		for _, f := range g.NodeFeatures {
			zs = append(zs, f[0])
		}
		for _, d := range g.Degree() {
			ds = append(ds, float64(d))
		}
	}
	stats := &DescriptorStats{}
	stats.MeanZ, stats.StdZ = meanStd(zs)
	stats.MeanEnergy, stats.StdE = meanStd(es)
	stats.MeanDegree, stats.StdDeg = meanStd(ds)
	return stats, nil
}

func meanStd(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 1
	}
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	s := math.Sqrt(v / float64(len(xs)))
	if s == 0 {
		s = 1
	}
	return m, s
}

// NormalizeDescriptors standardizes node features in place against the
// dataset statistics and appends a normalized-degree feature per node.
func NormalizeDescriptors(g *Graph, st *DescriptorStats) {
	deg := g.Degree()
	for i := range g.NodeFeatures {
		g.NodeFeatures[i][0] = (g.NodeFeatures[i][0] - st.MeanZ) / st.StdZ
		g.NodeFeatures[i] = append(g.NodeFeatures[i],
			(float64(deg[i])-st.MeanDegree)/st.StdDeg)
	}
}

// Flatten serializes the graph into BP-style flat variables, the layout
// HydraGNN's ADIOS readers consume:
//
//	node_features [N, F] row-major, edges [E, 2], edge_lengths [E],
//	energy [1], class_id [1]
func (g *Graph) Flatten(classIDs map[string]int) (names []string, shapes [][]int, data [][]float64) {
	F := 0
	if g.NumNodes() > 0 {
		F = len(g.NodeFeatures[0])
	}
	nf := make([]float64, 0, g.NumNodes()*F)
	for _, row := range g.NodeFeatures {
		nf = append(nf, row...)
	}
	ed := make([]float64, 0, g.NumEdges()*2)
	for _, e := range g.Edges {
		ed = append(ed, float64(e[0]), float64(e[1]))
	}
	names = []string{"node_features", "edges", "edge_lengths", "energy", "class_id"}
	shapes = [][]int{{g.NumNodes(), F}, {g.NumEdges(), 2}, {g.NumEdges()}, {1}, {1}}
	data = [][]float64{nf, ed, append([]float64(nil), g.EdgeLengths...),
		{g.Energy}, {float64(classIDs[g.Class])}}
	return names, shapes, data
}
