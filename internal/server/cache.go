// LRU shard-index cache for the serving tier. Opening a shard means
// verifying its SHA-256, inflating gzip, walking TFRecord frames, and
// decoding every record through the domain codec — work worth doing
// once per shard, not once per reader. The cache keys cached shard
// contents by (job, shard) and evicts least-recently-served entries
// when the configured byte budget is exceeded, so many concurrent
// streaming clients share one decode. Values are opaque to the cache —
// the loader that produced one also reports its in-memory size, which
// is what the byte budget accounts — so the same structure backs both
// the decoded-record cache ([]any per shard) and the encoded-frame
// cache (frame-ready payload bytes per shard).
package server

import (
	"container/list"
	"strings"
	"sync"
)

// shardEntry is one cached shard value.
type shardEntry[V any] struct {
	key   string
	val   V
	bytes int64
	elem  *list.Element
}

// inflight coalesces concurrent loads of the same shard (singleflight):
// the first reader loads, the rest wait on done. gen snapshots the
// cache generation when the load began, so an insert that completes
// after a DropPrefix covering its key is discarded instead of
// resurrecting an evicted job's data.
type inflight[V any] struct {
	done  chan struct{}
	val   V
	bytes int64
	err   error
	gen   int64
}

// tombstone records one DropPrefix while loads were in flight: any load
// that started before gen and matches prefix must not insert.
type tombstone struct {
	prefix string
	gen    int64
}

// ShardCache is a byte-budgeted LRU over per-shard values, safe for
// concurrent use.
type ShardCache[V any] struct {
	mu      sync.Mutex
	max     int64
	size    int64
	entries map[string]*shardEntry[V]
	lru     *list.List // front = most recently used; values are *shardEntry[V]
	loads   map[string]*inflight[V]

	// gen increments at every DropPrefix; tombs holds the prefixes
	// dropped while loads were in flight (cleared when the last load
	// drains — tombstones only matter to loads that overlapped them).
	gen   int64
	tombs []tombstone

	// arena, when set, couples this cache with its sibling under one
	// shared byte budget: after every insert the arena rebalances both
	// caches back under the joint budget (weighted eviction), replacing
	// the independent per-cache ceilings.
	arena *cacheArena

	hits, misses, evictions, invalidations int64
}

// NewShardCache returns a cache that holds at most maxBytes of loaded
// shard data. maxBytes <= 0 disables caching (every read loads, though
// concurrent loads of one key still coalesce).
func NewShardCache[V any](maxBytes int64) *ShardCache[V] {
	return &ShardCache[V]{
		max:     maxBytes,
		entries: make(map[string]*shardEntry[V]),
		lru:     list.New(),
		loads:   make(map[string]*inflight[V]),
	}
}

// Get returns the cached value for key, loading it via load on a miss.
// Concurrent misses on one key run load once and share the result. The
// returned value is shared — callers must not mutate it.
func (c *ShardCache[V]) Get(key string, load func() (V, int64, error)) (V, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		c.hits++
		val := e.val
		c.mu.Unlock()
		return val, nil
	}
	if fl, ok := c.loads[key]; ok {
		// Another reader is loading this shard; wait for it.
		c.mu.Unlock()
		<-fl.done
		return fl.val, fl.err
	}
	fl := &inflight[V]{done: make(chan struct{}), gen: c.gen}
	c.loads[key] = fl
	c.misses++
	c.mu.Unlock()

	fl.val, fl.bytes, fl.err = load()
	close(fl.done)

	c.mu.Lock()
	delete(c.loads, key)
	// A DropPrefix that ran while this load was in flight tombstoned the
	// key's prefix: inserting now would resurrect a deleted job's data
	// into the cache, to be served forever after. Drop the insert; the
	// waiters above still get this load's result, which is the same
	// contract as reading the shard uncached mid-eviction.
	if fl.err == nil && c.max > 0 && !c.droppedSince(key, fl.gen) {
		c.insert(key, fl.val, fl.bytes)
	}
	if len(c.loads) == 0 {
		c.tombs = nil
	}
	arena := c.arena
	c.mu.Unlock()
	if arena != nil && fl.err == nil {
		// Outside c.mu: rebalance locks the arena and then each member
		// cache in turn, so no lock is ever taken while holding c.mu.
		arena.rebalance()
	}
	return fl.val, fl.err
}

// usedBytes reports the cache's current resident size (arena hook).
func (c *ShardCache[V]) usedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// evictOne removes the least-recently-used entry, reporting whether
// there was one to evict (arena hook).
func (c *ShardCache[V]) evictOne() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	tail := c.lru.Back()
	if tail == nil {
		return false
	}
	victim := tail.Value.(*shardEntry[V])
	c.lru.Remove(tail)
	delete(c.entries, victim.key)
	c.size -= victim.bytes
	c.evictions++
	return true
}

// droppedSince reports whether a DropPrefix covering key ran after a
// load that began at generation gen. Caller holds c.mu.
func (c *ShardCache[V]) droppedSince(key string, gen int64) bool {
	for _, t := range c.tombs {
		if t.gen > gen && strings.HasPrefix(key, t.prefix) {
			return true
		}
	}
	return false
}

// insert adds an entry and evicts from the LRU tail until within budget.
// Caller holds c.mu.
func (c *ShardCache[V]) insert(key string, val V, bytes int64) {
	if _, ok := c.entries[key]; ok {
		return
	}
	e := &shardEntry[V]{key: key, val: val, bytes: bytes}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.size += bytes
	for c.size > c.max && c.lru.Len() > 1 {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		victim := tail.Value.(*shardEntry[V])
		c.lru.Remove(tail)
		delete(c.entries, victim.key)
		c.size -= victim.bytes
		c.evictions++
	}
}

// DropPrefix removes every cached shard whose key starts with prefix —
// the invalidation hook that frees a deleted job's cached shards
// without waiting for LRU pressure. Loads of matching keys already in
// flight are tombstoned so their completion cannot re-insert the
// deleted data. Removals count as invalidations, not evictions: they
// are correctness-driven, not budget-driven.
func (c *ShardCache[V]) DropPrefix(prefix string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	if len(c.loads) > 0 {
		c.tombs = append(c.tombs, tombstone{prefix: prefix, gen: c.gen})
	}
	for key, e := range c.entries {
		if strings.HasPrefix(key, prefix) {
			c.lru.Remove(e.elem)
			delete(c.entries, key)
			c.size -= e.bytes
			c.invalidations++
		}
	}
}

// CacheStats is a point-in-time view of cache effectiveness.
type CacheStats struct {
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	// Evictions counts entries removed by byte-budget pressure;
	// Invalidations counts entries removed by DropPrefix (job eviction
	// or release). They are distinct so dashboards can tell "cache too
	// small" from "jobs churning".
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
}

// Stats snapshots the cache counters.
func (c *ShardCache[V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:       len(c.entries),
		Bytes:         c.size,
		MaxBytes:      c.max,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
}
