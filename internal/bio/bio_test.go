package bio

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/anonymize"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/shard"
)

func TestOneHot(t *testing.T) {
	got := OneHot("ACGT")
	want := []float64{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("onehot=%v", got)
		}
	}
}

func TestOneHotUnknownBase(t *testing.T) {
	got := OneHot("N")
	for _, v := range got {
		if v != 0 {
			t.Fatalf("N should be all-zero: %v", got)
		}
	}
	// Lowercase accepted.
	low := OneHot("a")
	if low[0] != 1 {
		t.Fatalf("lowercase: %v", low)
	}
}

func TestTile(t *testing.T) {
	tiles, err := Tile("ACGTACGTAC", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiles) != 2 || tiles[0] != "ACGT" || tiles[1] != "ACGT" {
		t.Fatalf("tiles=%v", tiles)
	}
	if _, err := Tile("ACGT", 0); err == nil {
		t.Fatal("want length error")
	}
	none, err := Tile("AC", 4)
	if err != nil || none != nil {
		t.Fatalf("short seq tiles=%v err=%v", none, err)
	}
}

func TestKmerCounts(t *testing.T) {
	// "AAAA": 3 overlapping 2-mers, all "AA" (index 0).
	counts, err := KmerCounts("AAAA", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 16 {
		t.Fatalf("dim=%d", len(counts))
	}
	if counts[0] != 1 {
		t.Fatalf("AA freq=%v", counts[0])
	}
	sum := 0.0
	for _, c := range counts {
		sum += c
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("sum=%v", sum)
	}
}

func TestKmerCountsSkipsN(t *testing.T) {
	counts, err := KmerCounts("ANA", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range counts {
		if c != 0 {
			t.Fatalf("N-containing kmers must be skipped: %v", counts)
		}
	}
}

func TestKmerCountsErrors(t *testing.T) {
	if _, err := KmerCounts("ACGT", 0); err == nil {
		t.Fatal("want k error")
	}
	if _, err := KmerCounts("ACGT", 9); err == nil {
		t.Fatal("want k error")
	}
}

func TestGCContent(t *testing.T) {
	if got := GCContent("GGCC"); got != 1 {
		t.Fatalf("gc=%v", got)
	}
	if got := GCContent("AATT"); got != 0 {
		t.Fatalf("gc=%v", got)
	}
	if got := GCContent("ACGT"); got != 0.5 {
		t.Fatalf("gc=%v", got)
	}
	if got := GCContent(""); got != 0 {
		t.Fatalf("empty gc=%v", got)
	}
}

func TestSynthesizeCohort(t *testing.T) {
	c, err := Synthesize(SynthConfig{Subjects: 20, SeqLen: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sequences) != 20 || len(c.Clinical) != 20 {
		t.Fatalf("cohort sizes %d/%d", len(c.Sequences), len(c.Clinical))
	}
	// Expression correlates with GC content by construction.
	for _, s := range c.Sequences {
		if len(s.Seq) != 200 {
			t.Fatalf("seq len=%d", len(s.Seq))
		}
		want := 5 * GCContent(s.Seq)
		if math.Abs(s.Expression-want) > 1 {
			t.Fatalf("expression %v too far from %v", s.Expression, want)
		}
	}
	// Clinical notes intentionally contain PHI.
	if !anonymize.ContainsPHI(c.Clinical[0].Notes) {
		t.Fatal("synthetic notes should contain PHI for the privacy path to catch")
	}
}

func TestSynthesizeErrors(t *testing.T) {
	if _, err := Synthesize(SynthConfig{Subjects: 0, SeqLen: 10}); err == nil {
		t.Fatal("want subjects error")
	}
}

func TestFASTARoundTrip(t *testing.T) {
	c, _ := Synthesize(SynthConfig{Subjects: 5, SeqLen: 130, Seed: 3})
	fasta := c.ToFASTA()
	if !strings.HasPrefix(fasta, ">subj-0000") {
		t.Fatalf("fasta head: %q", fasta[:40])
	}
	seqs, err := ParseFASTA(fasta)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 5 {
		t.Fatalf("parsed %d", len(seqs))
	}
	for i, s := range seqs {
		if s.Seq != c.Sequences[i].Seq {
			t.Fatalf("seq %d mismatch", i)
		}
		if math.Abs(s.Expression-c.Sequences[i].Expression) > 1e-3 {
			t.Fatalf("expression %v vs %v", s.Expression, c.Sequences[i].Expression)
		}
	}
}

func TestParseFASTAErrors(t *testing.T) {
	if _, err := ParseFASTA("ACGT\n"); err == nil {
		t.Fatal("want header error")
	}
	if _, err := ParseFASTA(">x\nACGZ\n"); err == nil {
		t.Fatal("want base error")
	}
	if _, err := ParseFASTA(">\nACGT\n"); err == nil {
		t.Fatal("want empty-header error")
	}
	if _, err := ParseFASTA(">x expression=notanumber\nACGT\n"); err == nil {
		t.Fatal("want expression error")
	}
	empty, err := ParseFASTA("")
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty parse: %v %v", empty, err)
	}
}

func testKeys() (enc, secret []byte) {
	return bytes.Repeat([]byte{7}, 32), []byte("pseudonym-secret-key-123456")
}

// TestPipelineEndToEnd runs the full Table 1 bio workflow and checks the
// privacy and security invariants.
func TestPipelineEndToEnd(t *testing.T) {
	c, err := Synthesize(SynthConfig{Subjects: 30, SeqLen: 400, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	enc, secret := testKeys()
	sink := shard.NewMemSink()
	p, err := NewPipeline(DefaultConfig(enc, secret), sink)
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDataset("cohort", c.ToFASTA(), c.Clinical)
	snaps, err := p.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipeline.VerifyMonotone(snaps); err != nil {
		t.Fatal(err)
	}
	final := snaps[len(snaps)-1].Assessment
	if final.Level != core.AIReady {
		t.Fatalf("level=%v gaps=%v", final.Level, final.Gaps)
	}
	prod := ds.Payload.(*Product)

	// Privacy invariants.
	if prod.Audit.K < 2 {
		t.Fatalf("k-anonymity=%d", prod.Audit.K)
	}
	for _, r := range prod.Anonymous {
		if strings.HasPrefix(r.Pseudonym, "subj-") {
			t.Fatal("identifier leaked into pseudonym")
		}
		if anonymize.ContainsPHI(r.Notes) {
			t.Fatal("PHI survived anonymization")
		}
	}
	if len(prod.Fused) == 0 || len(prod.Fused) > 30 {
		t.Fatalf("fused=%d", len(prod.Fused))
	}
	// Fused features = 4^3 kmers + GC + 3 clinical values.
	if got := len(prod.Fused[0].Features); got != 64+1+3 {
		t.Fatalf("feature dims=%d", got)
	}

	// Security invariants: only sealed shards in the sink, and they decrypt.
	for _, name := range sink.Names() {
		if !strings.HasSuffix(name, ".enc") {
			t.Fatalf("plaintext shard %q leaked", name)
		}
	}
	if len(prod.Sealed) == 0 {
		t.Fatal("no sealed shards")
	}
	for name, sealed := range prod.Sealed {
		plain, err := anonymize.DecryptShard(enc, name, sealed)
		if err != nil {
			t.Fatal(err)
		}
		if len(plain) == 0 {
			t.Fatal("empty shard payload")
		}
	}
}

func TestPipelineRefusesWeakConfig(t *testing.T) {
	sink := shard.NewMemSink()
	_, secret := testKeys()
	if _, err := NewPipeline(DefaultConfig([]byte("short"), secret), sink); err == nil {
		t.Fatal("want key-length error")
	}
	enc, _ := testKeys()
	if _, err := NewPipeline(DefaultConfig(enc, []byte("x")), sink); err == nil {
		t.Fatal("want secret error")
	}
	if _, err := NewPipeline(DefaultConfig(enc, secret), nil); err == nil {
		t.Fatal("want sink error")
	}
	bad := DefaultConfig(enc, secret)
	bad.TileLen = 0
	if _, err := NewPipeline(bad, sink); err == nil {
		t.Fatal("want config error")
	}
}

func TestPipelineEmptyFASTA(t *testing.T) {
	enc, secret := testKeys()
	p, err := NewPipeline(DefaultConfig(enc, secret), shard.NewMemSink())
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDataset("empty", "", nil)
	if _, err := p.Run(ds); err == nil {
		t.Fatal("want empty error")
	}
}

// Property: one-hot output always has exactly one 1 per known base and
// row sums <= 1.
func TestOneHotProperty(t *testing.T) {
	f := func(raw []byte) bool {
		seq := make([]byte, len(raw))
		alphabet := "ACGTN"
		for i, b := range raw {
			seq[i] = alphabet[int(b)%len(alphabet)]
		}
		oh := OneHot(string(seq))
		if len(oh) != len(seq)*4 {
			return false
		}
		for i := 0; i < len(seq); i++ {
			sum := oh[i*4] + oh[i*4+1] + oh[i*4+2] + oh[i*4+3]
			if seq[i] == 'N' {
				if sum != 0 {
					return false
				}
			} else if sum != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: k-mer frequencies are a probability vector for ACGT-only
// sequences of length >= k.
func TestKmerProbabilityProperty(t *testing.T) {
	f := func(raw []byte, k8 uint8) bool {
		k := int(k8)%3 + 1
		if len(raw) < k {
			return true
		}
		seq := make([]byte, len(raw))
		for i, b := range raw {
			seq[i] = Bases[int(b)%4]
		}
		counts, err := KmerCounts(string(seq), k)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, c := range counts {
			if c < 0 {
				return false
			}
			sum += c
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOneHot(b *testing.B) {
	c, _ := Synthesize(SynthConfig{Subjects: 1, SeqLen: 4096, Seed: 1})
	seq := c.Sequences[0].Seq
	b.SetBytes(int64(len(seq)))
	for i := 0; i < b.N; i++ {
		_ = OneHot(seq)
	}
}

func BenchmarkKmerCounts(b *testing.B) {
	c, _ := Synthesize(SynthConfig{Subjects: 1, SeqLen: 4096, Seed: 1})
	seq := c.Sequences[0].Seq
	b.SetBytes(int64(len(seq)))
	for i := 0; i < b.N; i++ {
		if _, err := KmerCounts(seq, 3); err != nil {
			b.Fatal(err)
		}
	}
}
