// Trace endpoints: /v1/traces lists this node's recent and notable
// traces; /v1/traces/{id} returns one trace's span tree — and in a
// fleet assembles the cross-node view by fanning out to alive peers
// for their span fragments and merging by trace ID, so any member can
// answer for a request that hopped through several.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/telemetry"
	"repro/internal/tenant"
	"repro/pkg/client"
)

// serverSpanNames is every span name this package emits. Bounded and
// closed on purpose: the docs-hygiene test holds each name to the
// README span table, and the clustersmoke trace verifier keys on them.
var serverSpanNames = []string{
	"http.request",  // middleware root span, one per traced request
	"proxy.forward", // client span around a transparent proxy hop
	"proxy.submit",  // client span around a relayed job submission
	"job.wait",      // queue wait: submission accepted -> worker pickup
	"job.run",       // pipeline execution on the worker
	"job.stage",     // one pipeline stage inside job.run
	"shard.load",    // decoded-shard cache miss: read, verify, decode
	"frame.fill",    // frame-cache miss: encode a shard's frame payload
	"batch.encode",  // per-batch wire encode (header-only on cache hits)
	"pace.stall",    // token-bucket sleep inside a paced stream
}

// handleTraces serves GET /v1/traces: this node's trace summaries,
// newest first. ?min_ms= keeps traces at least that slow, ?error=true
// keeps only errored ones, ?limit= bounds the answer (default 100).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	minMs := 0.0
	if v := q.Get("min_ms"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("query min_ms=%q is not a non-negative number", v))
			return
		}
		minMs = f
	}
	errorsOnly := false
	if v := q.Get("error"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("query error=%q is not a boolean", v))
			return
		}
		errorsOnly = b
	}
	limit, err := queryInt(r, "limit", 100)
	if err != nil || limit < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("query limit must be a non-negative integer"))
		return
	}
	ident := tenant.FromContext(r.Context())
	sums := s.spans.Summaries()
	out := make([]telemetry.TraceSummary, 0, len(sums))
	for _, ts := range sums {
		if ts.DurationMs < minMs {
			continue
		}
		if errorsOnly && ts.Error == "" {
			continue
		}
		// Tenants see their own traces only (the root span records the
		// authenticated tenant); admin and open servers see everything.
		if s.tenants != nil && !ident.CanAccess(ts.Tenant) {
			continue
		}
		out = append(out, ts)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTrace serves GET /v1/traces/{id}: every span this node holds
// for the trace, merged — unless ?scope=local or the request already
// took its fan-out hop — with the fragments of every alive peer, so
// one call anywhere returns the whole cross-node tree. 404 when no
// node holds any span for the ID (never seen, or evicted unsampled).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !telemetry.ValidTraceID(id) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid trace id %q", id))
		return
	}
	ident := tenant.FromContext(r.Context())
	spans := s.spans.Trace(id)
	if c := s.opts.Cluster; c != nil && r.URL.Query().Get("scope") != "local" && !cluster.Forwarded(r) {
		spans = telemetry.MergeTraces(append([][]telemetry.SpanData{spans}, s.peerTraceFragments(id, ident.ID)...)...)
	}
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, fmt.Errorf("no spans for trace %q", id))
		return
	}
	// A trace belongs to whoever's request rooted it: the entry node's
	// root span carries the authenticated tenant as an attribute.
	if s.tenants != nil {
		for _, sp := range spans {
			if sp.Parent == "" && !ident.CanAccess(sp.Attrs["tenant"]) {
				writeError(w, http.StatusForbidden, fmt.Errorf("trace %q belongs to another tenant", id))
				return
			}
		}
	}
	writeJSON(w, http.StatusOK, client.TraceView{TraceID: id, Spans: spans})
}

// peerTraceFragments collects the trace's spans from every alive peer.
// FetchPeer marks the fetch as forwarded, so peers answer from their
// local store and the fan-out never cascades. A dead or evicted peer
// contributes nothing — partial assembly beats none.
func (s *Server) peerTraceFragments(id, tenantID string) [][]telemetry.SpanData {
	c := s.opts.Cluster
	nodes := c.Nodes()
	frags := make([][]telemetry.SpanData, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		if n.ID == c.Self().ID || !c.Alive(n.ID) {
			continue
		}
		wg.Add(1)
		go func(i int, n cluster.Node) {
			defer wg.Done()
			b, err := c.FetchPeer(n, "/v1/traces/"+url.PathEscape(id)+"?scope=local", tenantID, 5*time.Second)
			if err != nil {
				return
			}
			var view client.TraceView
			if json.Unmarshal(b, &view) == nil {
				frags[i] = view.Spans
			}
		}(i, n)
	}
	wg.Wait()
	return frags
}
