package tfrecord

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func TestMaskedCRCInvertible(t *testing.T) {
	// Masking is a bijection on crc32c: unmasking must recover the raw
	// Castagnoli checksum for any input.
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], 3)
	got := maskedCRC(hdr[:])
	unmasked := got - maskDelta
	raw := (unmasked >> 17) | (unmasked << 15)
	if raw != crc32.Checksum(hdr[:], castagnoli) {
		t.Fatalf("mask not invertible: got %x", got)
	}
}

func TestMaskedCRCGoldenValue(t *testing.T) {
	// crc32c("123456789") = 0xE3069283 is the standard check value;
	// masked((0xE3069283)) = ((c>>15)|(c<<17)) + 0xa282ead8.
	c := crc32.Checksum([]byte("123456789"), castagnoli)
	if c != 0xE3069283 {
		t.Fatalf("castagnoli check value wrong: %x", c)
	}
	want := ((c >> 15) | (c << 17)) + maskDelta
	if got := maskedCRC([]byte("123456789")); got != want {
		t.Fatalf("maskedCRC=%x, want %x", got, want)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	records := [][]byte{[]byte("hello"), []byte(""), []byte("fusion shot 12345"), bytes.Repeat([]byte{0xAB}, 1000)}
	for _, r := range records {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != int64(len(records)) {
		t.Fatalf("count=%d", w.Count())
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range records {
		if !bytes.Equal(got[i], records[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReaderCleanEOF(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("err=%v, want io.EOF", err)
	}
}

func TestReaderDetectsLengthCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[0] ^= 0xFF // corrupt length
	_, err := NewReader(bytes.NewReader(b)).Next()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err=%v, want ErrCorrupt", err)
	}
}

func TestReaderDetectsDataCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[14] ^= 0x01 // corrupt a payload byte (offset 12 is start of data)
	_, err := NewReader(bytes.NewReader(b)).Next()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err=%v, want ErrCorrupt", err)
	}
}

func TestReaderTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:50]
	_, err := NewReader(bytes.NewReader(b)).Next()
	if err == nil || err == io.EOF {
		t.Fatalf("err=%v, want truncation error", err)
	}
}

func TestExampleRoundTripAllTypes(t *testing.T) {
	e := NewExample()
	e.Features["signal"] = Feature{Floats: []float32{1.5, -2.25, 0, float32(math.Pi)}}
	e.Features["shot_id"] = Feature{Ints: []int64{171234, 0, 42}}
	e.Features["machine"] = Feature{Bytes: [][]byte{[]byte("DIII-D"), []byte("")}}

	enc := e.Marshal()
	dec, err := Unmarshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	sig := dec.Features["signal"]
	if len(sig.Floats) != 4 || sig.Floats[0] != 1.5 || sig.Floats[1] != -2.25 {
		t.Fatalf("floats=%v", sig.Floats)
	}
	ids := dec.Features["shot_id"]
	if len(ids.Ints) != 3 || ids.Ints[0] != 171234 {
		t.Fatalf("ints=%v", ids.Ints)
	}
	m := dec.Features["machine"]
	if len(m.Bytes) != 2 || string(m.Bytes[0]) != "DIII-D" {
		t.Fatalf("bytes=%v", m.Bytes)
	}
}

func TestExampleDeterministicEncoding(t *testing.T) {
	e := NewExample()
	e.Features["b"] = Feature{Ints: []int64{1}}
	e.Features["a"] = Feature{Ints: []int64{2}}
	e.Features["c"] = Feature{Ints: []int64{3}}
	first := e.Marshal()
	for i := 0; i < 10; i++ {
		if !bytes.Equal(e.Marshal(), first) {
			t.Fatal("encoding not deterministic")
		}
	}
}

func TestExampleEmpty(t *testing.T) {
	e := NewExample()
	dec, err := Unmarshal(e.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Features) != 0 {
		t.Fatalf("features=%v", dec.Features)
	}
}

func TestExampleEmptyLists(t *testing.T) {
	e := NewExample()
	e.Features["empty_f"] = Feature{Floats: []float32{}}
	e.Features["empty_i"] = Feature{Ints: []int64{}}
	dec, err := Unmarshal(e.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if f := dec.Features["empty_f"]; f.Floats == nil || len(f.Floats) != 0 {
		t.Fatalf("empty float list roundtrip: %#v", f)
	}
	if f := dec.Features["empty_i"]; f.Ints == nil || len(f.Ints) != 0 {
		t.Fatalf("empty int list roundtrip: %#v", f)
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}); err == nil {
		t.Fatal("want error for garbage input")
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	e := NewExample()
	e.Features["x"] = Feature{Floats: []float32{1, 2, 3}}
	enc := e.Marshal()
	if _, err := Unmarshal(enc[:len(enc)-3]); err == nil {
		t.Fatal("want error for truncated message")
	}
}

func TestExampleThroughTFRecordStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for shot := 0; shot < 5; shot++ {
		e := NewExample()
		e.Features["shot"] = Feature{Ints: []int64{int64(shot)}}
		e.Features["ip"] = Feature{Floats: []float32{float32(shot) * 1.1}}
		if err := w.Write(e.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		e, err := Unmarshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if e.Features["shot"].Ints[0] != int64(i) {
			t.Fatalf("record %d: shot=%v", i, e.Features["shot"].Ints)
		}
	}
}

// Property: framing round-trips arbitrary byte payloads.
func TestFramingProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, p := range payloads {
			if err := w.Write(p); err != nil {
				return false
			}
		}
		got, err := NewReader(&buf).ReadAll()
		if err != nil {
			return false
		}
		if len(got) != len(payloads) {
			return false
		}
		for i := range payloads {
			if !bytes.Equal(got[i], payloads[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Example float features round-trip exactly.
func TestExampleFloatProperty(t *testing.T) {
	f := func(vals []float32) bool {
		clean := make([]float32, 0, len(vals))
		for _, v := range vals {
			if !math.IsNaN(float64(v)) {
				clean = append(clean, v)
			}
		}
		e := NewExample()
		e.Features["v"] = Feature{Floats: clean}
		dec, err := Unmarshal(e.Marshal())
		if err != nil {
			return false
		}
		got := dec.Features["v"].Floats
		if len(got) != len(clean) {
			return false
		}
		for i := range clean {
			if got[i] != clean[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteRecord(b *testing.B) {
	rec := bytes.Repeat([]byte{0x55}, 4096)
	b.SetBytes(int64(len(rec)))
	b.ReportAllocs()
	w := NewWriter(io.Discard)
	for i := 0; i < b.N; i++ {
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExampleMarshal(b *testing.B) {
	e := NewExample()
	sig := make([]float32, 1024)
	for i := range sig {
		sig[i] = float32(i) * 0.01
	}
	e.Features["signal"] = Feature{Floats: sig}
	e.Features["shot"] = Feature{Ints: []int64{171234}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.Marshal()
	}
}

// encodeVarint is a test helper for hand-built protobuf messages.
func encodeVarint(v uint64) []byte {
	var out []byte
	for v >= 0x80 {
		out = append(out, byte(v)|0x80)
		v >>= 7
	}
	return append(out, byte(v))
}

func tag(field, wire int) []byte { return encodeVarint(uint64(field)<<3 | uint64(wire)) }

func lenPrefixed(field int, payload []byte) []byte {
	out := tag(field, 2)
	out = append(out, encodeVarint(uint64(len(payload)))...)
	return append(out, payload...)
}

// TestUnmarshalSkipsUnknownFields builds a message with unknown varint,
// fixed64, fixed32, and length-delimited fields around a valid Features
// submessage — a forward-compatibility requirement of protobuf decoding.
func TestUnmarshalSkipsUnknownFields(t *testing.T) {
	e := NewExample()
	e.Features["x"] = Feature{Ints: []int64{7}}
	valid := e.Marshal()

	var msg []byte
	msg = append(msg, tag(9, 0)...) // unknown varint field
	msg = append(msg, encodeVarint(12345)...)
	msg = append(msg, tag(10, 1)...) // unknown fixed64
	msg = append(msg, make([]byte, 8)...)
	msg = append(msg, tag(11, 5)...) // unknown fixed32
	msg = append(msg, make([]byte, 4)...)
	msg = append(msg, lenPrefixed(12, []byte("opaque"))...) // unknown bytes
	msg = append(msg, valid...)

	dec, err := Unmarshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.Features["x"].Ints; len(got) != 1 || got[0] != 7 {
		t.Fatalf("features=%v", dec.Features)
	}
}

func TestUnmarshalRejectsUnsupportedWireType(t *testing.T) {
	msg := append(tag(9, 3), 0) // wire type 3 (group) unsupported
	if _, err := Unmarshal(msg); err == nil {
		t.Fatal("want wire-type error")
	}
}

func TestUnmarshalMapEntryWithoutKey(t *testing.T) {
	// Features { entry { value-only } } must be rejected.
	feat := lenPrefixed(3, lenPrefixed(1, encodeVarint(5))) // Int64List{5}
	entry := lenPrefixed(2, feat)                           // value without key
	features := lenPrefixed(1, entry)
	msg := lenPrefixed(1, features)
	if _, err := Unmarshal(msg); err == nil {
		t.Fatal("want missing-key error")
	}
}

func TestUnmarshalPackedFloatBadLength(t *testing.T) {
	// FloatList with a 3-byte packed payload (not multiple of 4).
	fl := lenPrefixed(1, []byte{1, 2, 3})
	feat := lenPrefixed(2, fl)
	entry := append(lenPrefixed(1, []byte("k")), lenPrefixed(2, feat)...)
	features := lenPrefixed(1, entry)
	msg := lenPrefixed(1, features)
	if _, err := Unmarshal(msg); err == nil {
		t.Fatal("want packed-length error")
	}
}

func TestUnmarshalUnknownOneofArmIgnored(t *testing.T) {
	// Feature with oneof arm 7 (unknown) is ignored, not an error.
	arm := lenPrefixed(1, encodeVarint(1))
	feat := lenPrefixed(7, arm)
	entry := append(lenPrefixed(1, []byte("k")), lenPrefixed(2, feat)...)
	features := lenPrefixed(1, entry)
	msg := lenPrefixed(1, features)
	dec, err := Unmarshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	f := dec.Features["k"]
	if f.Floats != nil || f.Ints != nil || f.Bytes != nil {
		t.Fatalf("unknown arm decoded: %+v", f)
	}
}

func TestVarintOverflowRejected(t *testing.T) {
	// 11 continuation bytes exceed 64 bits.
	msg := bytes.Repeat([]byte{0xFF}, 11)
	if _, err := Unmarshal(msg); err == nil {
		t.Fatal("want overflow error")
	}
}

// errWriter fails after n bytes, exercising Write's error paths.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, io.ErrClosedPipe
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriterPropagatesSinkErrors(t *testing.T) {
	for _, budget := range []int{0, 12, 14} { // fail at header, payload, footer
		w := NewWriter(&errWriter{n: budget})
		if err := w.Write([]byte("xx")); err == nil {
			t.Fatalf("budget=%d: want write error", budget)
		}
	}
}
