// Package npy reads and writes the NumPy NPY v1.0 array format and NPZ
// archives (zip files of .npy members). Climate foundation-model pipelines
// (ClimaX, ORBIT — paper §3.1) shard preprocessed fields as .npz files, so
// this codec is the AI-ready output format of the climate archetype.
//
// Supported dtypes: '<f4' (float32), '<f8' (float64), '<i4' (int32),
// '<i8' (int64). Arrays are written in C (row-major) order, matching what
// the pipelines produce.
package npy

import (
	"archive/zip"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// magic is the NPY file signature: \x93NUMPY.
var magic = []byte{0x93, 'N', 'U', 'M', 'P', 'Y'}

// DType identifies the element type of an array.
type DType string

// Supported dtypes (little-endian, as produced by NumPy on x86).
const (
	Float32 DType = "<f4"
	Float64 DType = "<f8"
	Int32   DType = "<i4"
	Int64   DType = "<i8"
)

func (d DType) size() (int, error) {
	switch d {
	case Float32, Int32:
		return 4, nil
	case Float64, Int64:
		return 8, nil
	default:
		return 0, fmt.Errorf("npy: unsupported dtype %q", string(d))
	}
}

// Array is a decoded NPY array: flat row-major float64 data plus its
// original shape and dtype. Integer and float32 arrays are widened to
// float64 on read (the pipeline-internal precision).
type Array struct {
	Shape []int
	DType DType
	Data  []float64
}

// Numel returns the number of elements implied by the shape.
func (a *Array) Numel() int {
	n := 1
	for _, d := range a.Shape {
		n *= d
	}
	return n
}

// Write encodes data with the given shape and dtype to w in NPY v1.0
// format. len(data) must equal the product of shape.
func Write(w io.Writer, data []float64, shape []int, dtype DType) error {
	esize, err := dtype.size()
	if err != nil {
		return err
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			return fmt.Errorf("npy: negative dimension %d", d)
		}
		n *= d
	}
	if n != len(data) {
		return fmt.Errorf("npy: shape %v needs %d elements, have %d", shape, n, len(data))
	}

	header := buildHeader(shape, dtype)
	if _, err := w.Write(magic); err != nil {
		return fmt.Errorf("npy: write magic: %w", err)
	}
	if _, err := w.Write([]byte{1, 0}); err != nil { // version 1.0
		return fmt.Errorf("npy: write version: %w", err)
	}
	var hlen [2]byte
	binary.LittleEndian.PutUint16(hlen[:], uint16(len(header)))
	if _, err := w.Write(hlen[:]); err != nil {
		return fmt.Errorf("npy: write header length: %w", err)
	}
	if _, err := io.WriteString(w, header); err != nil {
		return fmt.Errorf("npy: write header: %w", err)
	}

	buf := make([]byte, n*esize)
	switch dtype {
	case Float32:
		for i, v := range data {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(float32(v)))
		}
	case Float64:
		for i, v := range data {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
	case Int32:
		for i, v := range data {
			binary.LittleEndian.PutUint32(buf[i*4:], uint32(int32(v)))
		}
	case Int64:
		for i, v := range data {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(int64(v)))
		}
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("npy: write payload: %w", err)
	}
	return nil
}

// buildHeader constructs the Python-dict header, padded with spaces so the
// total preamble (magic+version+len+header) is a multiple of 64 bytes and
// terminated with '\n', exactly as the NPY 1.0 spec requires.
func buildHeader(shape []int, dtype DType) string {
	dims := make([]string, len(shape))
	for i, d := range shape {
		dims[i] = strconv.Itoa(d)
	}
	shapeStr := strings.Join(dims, ", ")
	if len(shape) == 1 {
		shapeStr += ","
	}
	h := fmt.Sprintf("{'descr': '%s', 'fortran_order': False, 'shape': (%s), }", dtype, shapeStr)
	// preamble = 6 magic + 2 version + 2 header length.
	total := 10 + len(h) + 1 // +1 for the trailing '\n'
	pad := (64 - total%64) % 64
	return h + strings.Repeat(" ", pad) + "\n"
}

var headerRe = regexp.MustCompile(
	`'descr':\s*'([^']+)'\s*,\s*'fortran_order':\s*(True|False)\s*,\s*'shape':\s*\(([^)]*)\)`)

// Read decodes an NPY v1.0/v2.0 stream.
func Read(r io.Reader) (*Array, error) {
	head := make([]byte, 8)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("npy: read preamble: %w", err)
	}
	if !bytes.Equal(head[:6], magic) {
		return nil, errors.New("npy: bad magic")
	}
	major := head[6]
	var hlen int
	switch major {
	case 1:
		var b [2]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return nil, fmt.Errorf("npy: read header length: %w", err)
		}
		hlen = int(binary.LittleEndian.Uint16(b[:]))
	case 2:
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return nil, fmt.Errorf("npy: read header length: %w", err)
		}
		hlen = int(binary.LittleEndian.Uint32(b[:]))
	default:
		return nil, fmt.Errorf("npy: unsupported version %d.%d", head[6], head[7])
	}
	hbuf := make([]byte, hlen)
	if _, err := io.ReadFull(r, hbuf); err != nil {
		return nil, fmt.Errorf("npy: read header: %w", err)
	}
	m := headerRe.FindSubmatch(hbuf)
	if m == nil {
		return nil, fmt.Errorf("npy: malformed header %q", hbuf)
	}
	dtype := DType(m[1])
	esize, err := dtype.size()
	if err != nil {
		return nil, err
	}
	if string(m[2]) == "True" {
		return nil, errors.New("npy: fortran_order arrays not supported")
	}
	var shape []int
	n := 1
	for _, part := range strings.Split(string(m[3]), ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("npy: bad shape element %q: %w", part, err)
		}
		if d < 0 {
			return nil, fmt.Errorf("npy: negative shape element %d", d)
		}
		shape = append(shape, d)
		n *= d
	}

	raw := make([]byte, n*esize)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, fmt.Errorf("npy: read payload (%d bytes): %w", len(raw), err)
	}
	data := make([]float64, n)
	switch dtype {
	case Float32:
		for i := range data {
			data[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:])))
		}
	case Float64:
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	case Int32:
		for i := range data {
			data[i] = float64(int32(binary.LittleEndian.Uint32(raw[i*4:])))
		}
	case Int64:
		for i := range data {
			data[i] = float64(int64(binary.LittleEndian.Uint64(raw[i*8:])))
		}
	}
	return &Array{Shape: shape, DType: dtype, Data: data}, nil
}

// NPZWriter writes an NPZ archive: a zip file whose members are .npy files.
type NPZWriter struct {
	zw *zip.Writer
}

// NewNPZWriter wraps w in an NPZ archive writer.
func NewNPZWriter(w io.Writer) *NPZWriter {
	return &NPZWriter{zw: zip.NewWriter(w)}
}

// Add appends one named array to the archive. The ".npy" suffix is added
// automatically, matching numpy.savez naming.
func (z *NPZWriter) Add(name string, data []float64, shape []int, dtype DType) error {
	if name == "" {
		return errors.New("npz: empty member name")
	}
	f, err := z.zw.Create(name + ".npy")
	if err != nil {
		return fmt.Errorf("npz: create member %q: %w", name, err)
	}
	return Write(f, data, shape, dtype)
}

// Close finalizes the zip central directory. The NPZ is unreadable until
// Close succeeds.
func (z *NPZWriter) Close() error { return z.zw.Close() }

// ReadNPZ decodes all members of an NPZ archive from an io.ReaderAt.
// Member names have their ".npy" suffix stripped.
func ReadNPZ(r io.ReaderAt, size int64) (map[string]*Array, error) {
	zr, err := zip.NewReader(r, size)
	if err != nil {
		return nil, fmt.Errorf("npz: open archive: %w", err)
	}
	out := make(map[string]*Array, len(zr.File))
	for _, f := range zr.File {
		rc, err := f.Open()
		if err != nil {
			return nil, fmt.Errorf("npz: open member %q: %w", f.Name, err)
		}
		arr, err := Read(rc)
		closeErr := rc.Close()
		if err != nil {
			return nil, fmt.Errorf("npz: decode member %q: %w", f.Name, err)
		}
		if closeErr != nil {
			return nil, fmt.Errorf("npz: close member %q: %w", f.Name, closeErr)
		}
		out[strings.TrimSuffix(f.Name, ".npy")] = arr
	}
	return out, nil
}

// ReadNPZBytes is a convenience wrapper over ReadNPZ for in-memory archives.
func ReadNPZBytes(b []byte) (map[string]*Array, error) {
	return ReadNPZ(bytes.NewReader(b), int64(len(b)))
}
