package domain

import (
	"encoding/binary"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/formats/bp"
	"repro/internal/formats/tfrecord"
	"repro/internal/loader"
	"repro/internal/shard"
)

func TestAllDomainsHavePlugins(t *testing.T) {
	if got := len(Plugins()); got != len(core.Domains()) {
		t.Fatalf("%d plugins for %d domains", got, len(core.Domains()))
	}
	kinds := map[string]bool{}
	for _, d := range core.Domains() {
		p, err := Lookup(d)
		if err != nil {
			t.Fatal(err)
		}
		if p.Codec.Kind() == "" {
			t.Fatalf("%s: empty wire kind", d)
		}
		kinds[p.Codec.Kind()] = true
	}
	for _, want := range []string{KindSamples, KindFusionWindows, KindMaterialsGraphs} {
		if !kinds[want] {
			t.Fatalf("no plugin serves kind %q", want)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{Domain: core.Climate, Months: 24}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Spec{
		{Months: maxMonths + 1}, {Lat: -1}, {Shots: maxShots + 1},
		{Subjects: maxSubjects + 1}, {SeqLen: -2}, {Structures: maxStructures + 1},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("spec %+v accepted", bad)
		}
	}
}

// TestSampleCodecRoundTrip: encode → decode → batch line reproduces the
// samples and keeps the legacy top-level features/labels layout.
func TestSampleCodecRoundTrip(t *testing.T) {
	c := sampleCodec{}
	samples := []*loader.Sample{
		{Features: []float32{1.5, -2.25, 0}, Label: 3},
		{Features: []float32{0.125}, Label: -1},
	}
	var recs []any
	for _, s := range samples {
		r, bytes, err := c.Decode(s.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if bytes != int64(len(s.Encode())) {
			t.Fatalf("size %d", bytes)
		}
		if !reflect.DeepEqual(r, s) {
			t.Fatalf("decode %+v != %+v", r, s)
		}
		recs = append(recs, r)
	}
	line, err := c.Line(BatchHeader{Batch: 2, Cursor: "1:0", Kind: c.Kind()}, recs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(line)
	if err != nil {
		t.Fatal(err)
	}
	var wire struct {
		Batch    int         `json:"batch"`
		Cursor   string      `json:"cursor"`
		Kind     string      `json:"kind"`
		Features [][]float32 `json:"features"`
		Labels   []int32     `json:"labels"`
	}
	if err := json.Unmarshal(b, &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Kind != KindSamples || wire.Cursor != "1:0" || wire.Batch != 2 {
		t.Fatalf("header %+v", wire)
	}
	for i, s := range samples {
		if !reflect.DeepEqual(wire.Features[i], s.Features) || wire.Labels[i] != s.Label {
			t.Fatalf("sample %d differs on the wire", i)
		}
	}
}

// fusionExample builds a marshaled tf.train.Example the way the fusion
// shard stage does.
func fusionExample(signal []float32, shot, start, label int64, horizon float32) []byte {
	ex := tfrecord.NewExample()
	ex.Features["signal"] = tfrecord.Feature{Floats: signal}
	ex.Features["shot"] = tfrecord.Feature{Ints: []int64{shot}}
	ex.Features["start"] = tfrecord.Feature{Ints: []int64{start}}
	ex.Features["label"] = tfrecord.Feature{Ints: []int64{label}}
	ex.Features["horizon"] = tfrecord.Feature{Floats: []float32{horizon}}
	return ex.Marshal()
}

func TestFusionCodecRoundTrip(t *testing.T) {
	c := fusionCodec{}
	rec := fusionExample([]float32{0.5, -1, 2.75}, 42, 25, 1, 0.3)
	r, size, err := c.Decode(rec)
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 {
		t.Fatalf("size %d", size)
	}
	w := r.(*FusionWindow)
	want := &FusionWindow{Signal: []float32{0.5, -1, 2.75}, Shot: 42, Start: 25, Label: 1, Horizon: 0.3}
	if !reflect.DeepEqual(w, want) {
		t.Fatalf("decoded %+v, want %+v", w, want)
	}
	line, err := c.Line(BatchHeader{Kind: c.Kind()}, []any{w})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(line)
	var wire struct {
		Kind     string      `json:"kind"`
		Labels   []int64     `json:"labels"`
		Signals  [][]float32 `json:"signals"`
		Shots    []int64     `json:"shots"`
		Starts   []int64     `json:"starts"`
		Horizons []float32   `json:"horizons"`
	}
	if err := json.Unmarshal(b, &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Shots[0] != 42 || wire.Starts[0] != 25 || wire.Labels[0] != 1 ||
		wire.Horizons[0] != 0.3 || !reflect.DeepEqual(wire.Signals[0], want.Signal) {
		t.Fatalf("wire %+v", wire)
	}

	// A record without signal floats is not a fusion window.
	ex := tfrecord.NewExample()
	ex.Features["label"] = tfrecord.Feature{Ints: []int64{1}}
	if _, _, err := c.Decode(ex.Marshal()); err == nil {
		t.Fatal("signal-less record accepted")
	}

	// shot/label are mandatory (their absence means corruption, and a
	// defaulted label=0 would mis-serve disruption ground truth); a
	// pre-plugin record lacking only start/horizon still decodes with
	// zero defaults.
	for _, drop := range []string{"shot", "label"} {
		ex := tfrecord.NewExample()
		ex.Features["signal"] = tfrecord.Feature{Floats: []float32{1}}
		for _, k := range []string{"shot", "label"} {
			if k != drop {
				ex.Features[k] = tfrecord.Feature{Ints: []int64{1}}
			}
		}
		if _, _, err := c.Decode(ex.Marshal()); err == nil {
			t.Fatalf("record without %q accepted", drop)
		}
	}
	old := tfrecord.NewExample()
	old.Features["signal"] = tfrecord.Feature{Floats: []float32{1, 2}}
	old.Features["shot"] = tfrecord.Feature{Ints: []int64{7}}
	old.Features["label"] = tfrecord.Feature{Ints: []int64{1}}
	r2, _, err := c.Decode(old.Marshal())
	if err != nil {
		t.Fatalf("pre-plugin record rejected: %v", err)
	}
	if w := r2.(*FusionWindow); w.Start != 0 || w.Horizon != 0 || w.Shot != 7 || w.Label != 1 {
		t.Fatalf("pre-plugin record decoded as %+v", w)
	}
}

// materialsRecord builds one PG payload the way the materials shard
// stage does.
func materialsRecord(t *testing.T, nodes, dim int, edges [][2]int, energy float64, class int) []byte {
	t.Helper()
	nf := make([]float64, nodes*dim)
	for i := range nf {
		nf[i] = float64(i) / 2
	}
	ed := make([]float64, 0, len(edges)*2)
	lengths := make([]float64, len(edges))
	for i, e := range edges {
		ed = append(ed, float64(e[0]), float64(e[1]))
		lengths[i] = 1.5 + float64(i)
	}
	payload, _, err := bp.MarshalPG(0, 0, []bp.Variable{
		{Name: "node_features", Shape: []int{nodes, dim}, Data: nf},
		{Name: "edges", Shape: []int{len(edges), 2}, Data: ed},
		{Name: "edge_lengths", Shape: []int{len(edges)}, Data: lengths},
		{Name: "energy", Shape: []int{1}, Data: []float64{energy}},
		{Name: "class_id", Shape: []int{1}, Data: []float64{float64(class)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

func TestMaterialsCodecRoundTrip(t *testing.T) {
	c := materialsCodec{}
	rec := materialsRecord(t, 3, 2, [][2]int{{0, 1}, {1, 2}}, -7.25, 1)
	r, size, err := c.Decode(rec)
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 {
		t.Fatalf("size %d", size)
	}
	g := r.(*WireGraph)
	if g.Nodes != 3 || g.FeatureDim != 2 || len(g.NodeFeatures) != 6 ||
		!reflect.DeepEqual(g.Edges, []int64{0, 1, 1, 2}) ||
		len(g.EdgeLengths) != 2 || g.Energy != -7.25 || g.ClassID != 1 {
		t.Fatalf("decoded %+v", g)
	}
	line, err := c.Line(BatchHeader{Kind: c.Kind()}, []any{g})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(line)
	var wire struct {
		Kind   string       `json:"kind"`
		Graphs []*WireGraph `json:"graphs"`
	}
	if err := json.Unmarshal(b, &wire); err != nil {
		t.Fatal(err)
	}
	if len(wire.Graphs) != 1 || !reflect.DeepEqual(wire.Graphs[0], g) {
		t.Fatalf("wire %+v", wire)
	}

	// A PG without the graph layout must be rejected, not mis-served.
	payload, _, err := bp.MarshalPG(0, 0, []bp.Variable{
		{Name: "other", Shape: []int{1}, Data: []float64{1}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Decode(payload); err == nil {
		t.Fatal("non-graph PG accepted")
	}
}

// TestMaterialsCodecRejectsInconsistentShapes: shapes come off the wire
// (the PG checksum only covers data bytes), so shape/data mismatches
// must be rejected — clients index node_features[n*feature_dim+f] by
// the documented contract.
func TestMaterialsCodecRejectsInconsistentShapes(t *testing.T) {
	c := materialsCodec{}
	mk := func(mutate func(vars []bp.Variable)) []byte {
		vars := []bp.Variable{
			{Name: "node_features", Shape: []int{2, 2}, Data: []float64{1, 2, 3, 4}},
			{Name: "edges", Shape: []int{1, 2}, Data: []float64{0, 1}},
			{Name: "edge_lengths", Shape: []int{1}, Data: []float64{1.5}},
			{Name: "energy", Shape: []int{1}, Data: []float64{-1}},
			{Name: "class_id", Shape: []int{1}, Data: []float64{0}},
		}
		mutate(vars)
		// Marshal validates shape×data itself, so inconsistent records
		// are assembled via a raw re-marshal of consistent pieces with
		// lying shapes: build each variable alone and splice the data of
		// another. Easier: marshal with the mutated (still self-
		// consistent) variables — the lie is between variables.
		payload, _, err := bp.MarshalPG(0, 0, vars)
		if err != nil {
			t.Fatal(err)
		}
		return payload
	}
	// node_features claims [2,2] but edges/edge_lengths disagree.
	bad := mk(func(vars []bp.Variable) {
		vars[2] = bp.Variable{Name: "edge_lengths", Shape: []int{2}, Data: []float64{1, 2}}
	})
	if _, _, err := c.Decode(bad); err == nil {
		t.Fatal("edge_lengths/edges mismatch accepted")
	}
	// A consistent record still decodes.
	if _, _, err := c.Decode(mk(func([]bp.Variable) {})); err != nil {
		t.Fatal(err)
	}

	// A within-variable lie: patch node_features' first dim to 1000 in
	// the serialized payload (the per-variable CRC covers only the data
	// bytes, so the checksum still passes). Decode must reject rather
	// than hand clients a [1000,2] header over 4 floats.
	lying := mk(func([]bp.Variable) {})
	// Layout: PG header 12 + name len 2 + "node_features" 13 = offset 27
	// is ndims, dims start at 28.
	binary.LittleEndian.PutUint64(lying[28:], 1000)
	if _, _, err := c.Decode(lying); err == nil {
		t.Fatal("shape/data mismatch within node_features accepted")
	}
}

// TestCodecsRejectForeignRecords: each codec must refuse the others'
// records instead of serving garbage.
func TestCodecsRejectForeignRecords(t *testing.T) {
	sample := (&loader.Sample{Features: []float32{1}, Label: 0}).Encode()
	graph := materialsRecord(t, 2, 1, [][2]int{{0, 1}}, 0, 0)
	if _, _, err := (materialsCodec{}).Decode(sample); err == nil {
		t.Fatal("materials codec accepted a loader sample")
	}
	if _, _, err := (sampleCodec{}).Decode(graph); err == nil {
		t.Fatal("sample codec accepted a PG payload")
	}
	if _, ok := func() (any, bool) {
		r, _, err := (fusionCodec{}).Decode(sample)
		return r, err == nil
	}(); ok {
		t.Fatal("fusion codec accepted a loader sample")
	}
}

// TestPluginHelpers covers StoredName/Opener defaults.
func TestPluginHelpers(t *testing.T) {
	bioPlug, err := Lookup(core.BioHealth)
	if err != nil {
		t.Fatal(err)
	}
	if got := bioPlug.StoredName("s-00000", true); got != "s-00000.enc" {
		t.Fatalf("sealed name %q", got)
	}
	if got := bioPlug.StoredName("s-00000", false); got != "s-00000" {
		t.Fatalf("plain name %q", got)
	}
	sink := shard.NewMemSink()
	clim, _ := Lookup(core.Climate)
	if clim.Opener(sink, nil) != shard.Opener(sink) {
		t.Fatal("plaintext opener not identity")
	}
	if bioPlug.Opener(sink, []byte("k")) == shard.Opener(sink) {
		t.Fatal("bio opener not wrapped")
	}
}

// FuzzFusionCodecDecode hardens the TFRecord-Example decode path against
// hostile shard bytes: it must never panic, and whatever it accepts must
// re-encode through the line builder.
func FuzzFusionCodecDecode(f *testing.F) {
	f.Add(fusionExample([]float32{1, 2}, 1, 0, 1, 0.3))
	f.Add([]byte{})
	f.Add([]byte{0x0a, 0x00})
	f.Fuzz(func(t *testing.T, rec []byte) {
		c := fusionCodec{}
		r, size, err := c.Decode(rec)
		if err != nil {
			return
		}
		if size <= 0 {
			t.Fatalf("accepted record with size %d", size)
		}
		if _, err := c.Line(BatchHeader{Kind: c.Kind()}, []any{r}); err != nil {
			t.Fatalf("decoded record fails line building: %v", err)
		}
	})
}

// FuzzMaterialsCodecDecode does the same for the BP process-group path.
func FuzzMaterialsCodecDecode(f *testing.F) {
	valid, _, _ := bp.MarshalPG(0, 0, []bp.Variable{
		{Name: "node_features", Shape: []int{1, 1}, Data: []float64{1}},
		{Name: "edges", Shape: []int{0, 2}, Data: nil},
		{Name: "edge_lengths", Shape: []int{0}, Data: nil},
		{Name: "energy", Shape: []int{1}, Data: []float64{-1}},
		{Name: "class_id", Shape: []int{1}, Data: []float64{0}},
	})
	f.Add(valid)
	f.Add([]byte{})
	f.Add(make([]byte, 16))
	f.Fuzz(func(t *testing.T, rec []byte) {
		c := materialsCodec{}
		r, size, err := c.Decode(rec)
		if err != nil {
			return
		}
		if size <= 0 {
			t.Fatalf("accepted record with size %d", size)
		}
		if _, err := c.Line(BatchHeader{Kind: c.Kind()}, []any{r}); err != nil {
			t.Fatalf("decoded record fails line building: %v", err)
		}
	})
}
