package climate

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/formats/grib"
	"repro/internal/loader"
	"repro/internal/pipeline"
	"repro/internal/shard"
	"repro/internal/tensor"
)

func TestSynthesizeStructure(t *testing.T) {
	f, err := Synthesize(SynthConfig{Months: 12, Lat: 16, Lon: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.Data.Dim(0) != 12 || f.Data.Dim(1) != 16 || f.Data.Dim(2) != 32 {
		t.Fatalf("shape=%v", f.Data.Shape())
	}
	// Equator warmer than poles: compare mean of middle row vs first row.
	var eq, pole float64
	for tt := 0; tt < 12; tt++ {
		for j := 0; j < 32; j++ {
			pole += f.Data.At(tt, 0, j)
			eq += f.Data.At(tt, 8, j)
		}
	}
	if eq <= pole {
		t.Fatalf("equator %v not warmer than pole %v", eq, pole)
	}
	// Plausible Kelvin range.
	if f.Data.Min() < 200 || f.Data.Max() > 330 {
		t.Fatalf("range [%v, %v]", f.Data.Min(), f.Data.Max())
	}
}

func TestSynthesizeMissingRate(t *testing.T) {
	f, err := Synthesize(SynthConfig{Months: 20, Lat: 20, Lon: 20, MissingRate: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(f.Data.CountNaN()) / float64(f.Data.Numel())
	if rate < 0.05 || rate > 0.15 {
		t.Fatalf("missing rate=%v, want ~0.1", rate)
	}
}

func TestSynthesizeErrors(t *testing.T) {
	if _, err := Synthesize(SynthConfig{Months: 0, Lat: 4, Lon: 4}); err == nil {
		t.Fatal("want months error")
	}
	if _, err := Synthesize(SynthConfig{Months: 1, Lat: 4, Lon: 4, MissingRate: 1.5}); err == nil {
		t.Fatal("want rate error")
	}
}

func TestNetCDFRoundTrip(t *testing.T) {
	f, _ := Synthesize(SynthConfig{Months: 6, Lat: 8, Lon: 16, MissingRate: 0.02, Seed: 3})
	b, err := f.ToNetCDF()
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromNetCDF(b, "tas")
	if err != nil {
		t.Fatal(err)
	}
	if g.Units != "K" {
		t.Fatalf("units=%q", g.Units)
	}
	if !tensor.SameShape(f.Data, g.Data) {
		t.Fatalf("shape %v vs %v", f.Data.Shape(), g.Data.Shape())
	}
	// NaN gaps must round-trip through _FillValue.
	if f.Data.CountNaN() != g.Data.CountNaN() {
		t.Fatalf("NaNs %d vs %d", f.Data.CountNaN(), g.Data.CountNaN())
	}
	// Values survive float32 storage to ~1e-4 relative.
	fd, gd := f.Data.Data(), g.Data.Data()
	for i := range fd {
		if math.IsNaN(fd[i]) {
			continue
		}
		if math.Abs(fd[i]-gd[i]) > 1e-3 {
			t.Fatalf("value %d: %v vs %v", i, fd[i], gd[i])
		}
	}
	if len(g.Lats) != 8 || len(g.Lons) != 16 {
		t.Fatalf("coords %d/%d", len(g.Lats), len(g.Lons))
	}
}

func TestFromNetCDFMissingVar(t *testing.T) {
	f, _ := Synthesize(SynthConfig{Months: 2, Lat: 4, Lon: 4, Seed: 1})
	b, _ := f.ToNetCDF()
	if _, err := FromNetCDF(b, "nope"); err == nil {
		t.Fatal("want missing-variable error")
	}
	if _, err := FromNetCDF([]byte("garbage"), "tas"); err == nil {
		t.Fatal("want decode error")
	}
}

func TestGRIBIngestPath(t *testing.T) {
	// The alternate encoded ingest format: pack one month as GRIB-style
	// and confirm quantized decode is within tolerance.
	f, _ := Synthesize(SynthConfig{Months: 1, Lat: 16, Lon: 32, Seed: 4})
	month, _ := f.Data.SubTensor(0)
	enc, err := grib.Encode(month.Data(), 32, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := grib.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	tol := msg.MaxQuantizationError() + 1e-9
	for i, v := range msg.Values {
		if math.Abs(v-month.Data()[i]) > tol {
			t.Fatalf("grib point %d: %v vs %v", i, v, month.Data()[i])
		}
	}
}

func TestBilinearIdentity(t *testing.T) {
	src, _ := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	out, err := Regrid2D(src, 2, 2, Bilinear)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data() {
		if v != src.Data()[i] {
			t.Fatalf("identity regrid changed data: %v", out.Data())
		}
	}
}

func TestBilinearUpsampleMidpoints(t *testing.T) {
	src, _ := tensor.FromSlice([]float64{0, 10, 20, 30}, 2, 2)
	out, err := Regrid2D(src, 3, 3, Bilinear)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 1) != 5 { // midpoint of 0 and 10
		t.Fatalf("midpoint=%v", out.At(0, 1))
	}
	if out.At(1, 1) != 15 { // center
		t.Fatalf("center=%v", out.At(1, 1))
	}
}

func TestBilinearHandlesNaN(t *testing.T) {
	src, _ := tensor.FromSlice([]float64{math.NaN(), 10, 20, 30}, 2, 2)
	out, err := Regrid2D(src, 3, 3, Bilinear)
	if err != nil {
		t.Fatal(err)
	}
	// blend2 falls back to the valid operand, so the NaN corner is
	// gap-filled from its row neighbour and no NaN leaks into the output.
	if out.CountNaN() != 0 {
		t.Fatalf("NaN leaked: %v", out.Data())
	}
	if out.At(0, 0) != 10 { // nearest valid value on that row
		t.Fatalf("corner=%v", out.At(0, 0))
	}
	// An all-NaN grid stays NaN.
	allNaN := tensor.Full(math.NaN(), 2, 2)
	out2, err := Regrid2D(allNaN, 3, 3, Bilinear)
	if err != nil {
		t.Fatal(err)
	}
	if out2.CountNaN() != 9 {
		t.Fatalf("all-NaN grid produced values: %v", out2.Data())
	}
}

func TestConservativePreservesMean(t *testing.T) {
	f, _ := Synthesize(SynthConfig{Months: 1, Lat: 16, Lon: 32, Seed: 5})
	month, _ := f.Data.SubTensor(0)
	down, err := Regrid2D(month, 4, 8, Conservative)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(down.Mean()-month.Mean()) > 1e-9 {
		t.Fatalf("mean not conserved: %v vs %v", down.Mean(), month.Mean())
	}
}

func TestConservativeConstantField(t *testing.T) {
	src := tensor.Full(7, 10, 10)
	out, err := Regrid2D(src, 3, 3, Conservative)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Data() {
		if math.Abs(v-7) > 1e-12 {
			t.Fatalf("constant field regrid=%v", out.Data())
		}
	}
}

func TestRegridErrors(t *testing.T) {
	if _, err := Regrid2D(tensor.New(4), 2, 2, Bilinear); err == nil {
		t.Fatal("want rank error")
	}
	if _, err := Regrid2D(tensor.New(2, 2), 0, 2, Bilinear); err == nil {
		t.Fatal("want target error")
	}
	if _, err := Regrid2D(tensor.New(2, 2), 2, 2, Method(9)); err == nil {
		t.Fatal("want method error")
	}
	if _, err := RegridStack(tensor.New(2, 2), 2, 2, Bilinear, 1); err == nil {
		t.Fatal("want rank-3 error")
	}
}

func TestRegridStackParallelMatchesSerial(t *testing.T) {
	f, _ := Synthesize(SynthConfig{Months: 8, Lat: 12, Lon: 24, MissingRate: 0.01, Seed: 6})
	serial, err := RegridStack(f.Data, 6, 12, Bilinear, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RegridStack(f.Data, 6, 12, Bilinear, 8)
	if err != nil {
		t.Fatal(err)
	}
	sd, pd := serial.Data(), par.Data()
	for i := range sd {
		if sd[i] != pd[i] && !(math.IsNaN(sd[i]) && math.IsNaN(pd[i])) {
			t.Fatalf("parallel differs at %d: %v vs %v", i, sd[i], pd[i])
		}
	}
}

// TestPipelineEndToEnd runs the full Table 1 climate workflow and checks
// the Table 2 trajectory plus the output artifacts.
func TestPipelineEndToEnd(t *testing.T) {
	f, _ := Synthesize(SynthConfig{Months: 24, Lat: 16, Lon: 32, MissingRate: 0.01, Seed: 7})
	raw, err := f.ToNetCDF()
	if err != nil {
		t.Fatal(err)
	}
	sink := shard.NewMemSink()
	p, err := NewPipeline(Config{TargetLat: 8, TargetLon: 16, Method: Bilinear, Workers: 4, ShardTargetBytes: 8 << 10, Seed: 1}, sink)
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDataset("cmip6-mini", raw)
	snaps, err := p.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipeline.VerifyMonotone(snaps); err != nil {
		t.Fatal(err)
	}
	final := snaps[len(snaps)-1].Assessment
	if final.Level != core.AIReady {
		t.Fatalf("final level=%v gaps=%v", final.Level, final.Gaps)
	}

	prod := ds.Payload.(*Product)
	if prod.Field.Data.Dim(1) != 8 || prod.Field.Data.Dim(2) != 16 {
		t.Fatalf("regrid shape=%v", prod.Field.Data.Shape())
	}
	if math.Abs(prod.Field.Data.Mean()) > 1e-6 {
		t.Fatalf("not normalized: mean=%v", prod.Field.Data.Mean())
	}
	if prod.Field.Data.CountNaN() != 0 {
		t.Fatal("NaNs survived cleaning")
	}
	if len(prod.Samples) != 24 {
		t.Fatalf("samples=%d", len(prod.Samples))
	}
	if prod.Manifest.TotalRecords() != len(prod.Split.Train) {
		t.Fatalf("sharded %d, train=%d", prod.Manifest.TotalRecords(), len(prod.Split.Train))
	}
	if len(prod.NPZ) == 0 {
		t.Fatal("no NPZ artifact")
	}

	// The shards feed the loader (ready-to-train contract).
	l, err := loader.New(sink, prod.Manifest, loader.Options{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for b := l.Next(); b != nil; b = l.Next() {
		n += b.Len()
		if len(b.Features[0]) != 8*16 {
			t.Fatalf("feature dims=%d", len(b.Features[0]))
		}
	}
	if l.Err() != nil {
		t.Fatal(l.Err())
	}
	if n != len(prod.Split.Train) {
		t.Fatalf("loader read %d", n)
	}
}

func TestPipelineNoRawBytes(t *testing.T) {
	sink := shard.NewMemSink()
	p, err := NewPipeline(DefaultConfig(), sink)
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDataset("empty", nil)
	if _, err := p.Run(ds); err == nil {
		t.Fatal("want missing-raw error")
	}
}

func TestPipelineConfigErrors(t *testing.T) {
	if _, err := NewPipeline(DefaultConfig(), nil); err == nil {
		t.Fatal("want nil-sink error")
	}
	if _, err := NewPipeline(Config{TargetLat: 1, TargetLon: 1}, shard.NewMemSink()); err == nil {
		t.Fatal("want grid error")
	}
}

// Property: conservative downscaling preserves the mean for arbitrary
// complete fields.
func TestConservativeMeanProperty(t *testing.T) {
	f := func(seed int64, h8, w8, th8, tw8 uint8) bool {
		h, w := int(h8)%12+2, int(w8)%12+2
		th, tw := int(th8)%6+1, int(tw8)%6+1
		field, err := Synthesize(SynthConfig{Months: 1, Lat: maxi(h, 2), Lon: maxi(w, 2), Seed: seed})
		if err != nil {
			return false
		}
		month, err := field.Data.SubTensor(0)
		if err != nil {
			return false
		}
		out, err := Regrid2D(month, th, tw, Conservative)
		if err != nil {
			return false
		}
		return math.Abs(out.Mean()-month.Mean()) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func BenchmarkRegridParallel(b *testing.B) {
	f, err := Synthesize(SynthConfig{Months: 32, Lat: 64, Lon: 128, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(string(rune('0'+workers))+"w", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RegridStack(f.Data, 32, 64, Bilinear, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
