// Trace access and rendering: fetch the fleet-assembled span tree for
// a trace ID and print it as an indented tree with durations — the
// human-readable answer to "where did this request's time go".
package client

import (
	"context"
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// TraceQuery filters Traces listings.
type TraceQuery struct {
	// MinMs keeps only traces at least this slow (milliseconds).
	MinMs float64
	// ErrorsOnly keeps only traces whose root ended in error.
	ErrorsOnly bool
	// Limit bounds the listing (0 means the server default).
	Limit int
}

// Traces lists the server node's recent and notable traces, newest
// first. The listing is per-node (each member lists what it roots);
// Trace then assembles any listed ID across the whole fleet.
func (c *Client) Traces(ctx context.Context, q TraceQuery) ([]TraceSummary, error) {
	v := url.Values{}
	if q.MinMs > 0 {
		v.Set("min_ms", fmt.Sprintf("%g", q.MinMs))
	}
	if q.ErrorsOnly {
		v.Set("error", "true")
	}
	if q.Limit > 0 {
		v.Set("limit", fmt.Sprintf("%d", q.Limit))
	}
	path := "/v1/traces"
	if len(v) > 0 {
		path += "?" + v.Encode()
	}
	var out []TraceSummary
	if err := c.getJSON(ctx, path, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Trace fetches the assembled cross-node trace for one ID. Any fleet
// member can answer: the serving node merges its own spans with every
// alive peer's fragments before responding.
func (c *Client) Trace(ctx context.Context, id string) (*TraceView, error) {
	var out TraceView
	if err := c.getJSON(ctx, "/v1/traces/"+url.PathEscape(id), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RenderTree renders the trace as an indented span tree:
//
//	trace 3f2a... (2 nodes, 7 spans)
//	http.request  12.40ms  [node-a]
//	  proxy.forward  11.90ms  [node-a] peer=node-b
//	    http.request  11.20ms  [node-b]
//	      shard.load  3.10ms  [node-b] shard=s0
//
// Children sort by start time under their parent; spans whose parent
// is absent (top-level, or the parent evicted) print at the root
// level. Errored spans carry an ERROR suffix.
func (t *TraceView) RenderTree() string {
	children := make(map[string][]Span)
	have := make(map[string]bool, len(t.Spans))
	nodes := make(map[string]bool)
	for _, sp := range t.Spans {
		have[sp.SpanID] = true
		if sp.Node != "" {
			nodes[sp.Node] = true
		}
	}
	var roots []Span
	for _, sp := range t.Spans {
		if sp.Parent != "" && have[sp.Parent] {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	byStart := func(spans []Span) {
		sort.Slice(spans, func(i, j int) bool {
			if !spans[i].Start.Equal(spans[j].Start) {
				return spans[i].Start.Before(spans[j].Start)
			}
			return spans[i].SpanID < spans[j].SpanID
		})
	}
	byStart(roots)

	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (%d nodes, %d spans)\n", t.TraceID, len(nodes), len(t.Spans))
	var walk func(sp Span, depth int)
	walk = func(sp Span, depth int) {
		fmt.Fprintf(&b, "%s%s  %.2fms", strings.Repeat("  ", depth), sp.Name,
			float64(sp.Duration().Microseconds())/1000)
		if sp.Node != "" {
			fmt.Fprintf(&b, "  [%s]", sp.Node)
		}
		keys := make([]string, 0, len(sp.Attrs))
		for k := range sp.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, sp.Attrs[k])
		}
		if sp.Error != "" {
			fmt.Fprintf(&b, "  ERROR: %s", sp.Error)
		}
		b.WriteByte('\n')
		kids := children[sp.SpanID]
		byStart(kids)
		for _, kid := range kids {
			walk(kid, depth+1)
		}
	}
	for _, root := range roots {
		walk(root, 0)
	}
	return b.String()
}
