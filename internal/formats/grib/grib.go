// Package grib implements a GRIB-style encoded gridded-binary message
// format. Climate reanalysis archives (ERA5, paper §3.1) distribute fields
// as GRIB: values are quantized with the *simple packing* scheme —
//
//	packed = round((value - reference) / 2^binaryScale)
//
// stored as fixed-width N-bit unsigned integers. This package reproduces
// that scheme (including the bit-level packing) inside a simplified
// message framing, so the climate ingest path exercises the same
// decode-quantized-grid code path a real GRIB reader does.
//
// Message layout (all integers big-endian):
//
//	[4]  magic "SGRB"
//	[2]  version (1)
//	[2]  grid Ni (points along a parallel)
//	[2]  grid Nj (points along a meridian)
//	[8]  reference value (float64 bits)
//	[2]  binary scale factor E (signed, value = ref + packed * 2^E)
//	[1]  bits per value (1..32)
//	[1]  flags (bit0: bitmap present)
//	[4]  number of data points
//	[k]  optional bitmap, ceil(n/8) bytes, 1 = value present
//	[m]  packed data, ceil(present*bits/8) bytes
//	[4]  magic "7777" (end marker, as in real GRIB)
package grib

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

var (
	magic = []byte("SGRB")
	end   = []byte("7777")
)

// ErrFormat reports a malformed message.
var ErrFormat = errors.New("grib: malformed message")

// Message is a decoded gridded field. Missing points are NaN.
type Message struct {
	Ni, Nj int
	Values []float64
	// Packing parameters used on encode (informational after decode).
	Reference   float64
	BinaryScale int
	Bits        int
}

// Encode packs values (length ni*nj, NaN = missing) into a message using
// `bits`-wide simple packing. The binary scale factor is chosen
// automatically so the value range fits in the requested width.
func Encode(values []float64, ni, nj, bits int) ([]byte, error) {
	if ni <= 0 || nj <= 0 {
		return nil, fmt.Errorf("grib: invalid grid %dx%d", ni, nj)
	}
	if len(values) != ni*nj {
		return nil, fmt.Errorf("grib: grid %dx%d needs %d values, have %d", ni, nj, ni*nj, len(values))
	}
	if bits < 1 || bits > 32 {
		return nil, fmt.Errorf("grib: bits per value %d out of [1,32]", bits)
	}

	// Scan for range and missing points.
	ref := math.Inf(1)
	maxV := math.Inf(-1)
	missing := 0
	for _, v := range values {
		if math.IsNaN(v) {
			missing++
			continue
		}
		if math.IsInf(v, 0) {
			return nil, errors.New("grib: cannot pack infinite value")
		}
		if v < ref {
			ref = v
		}
		if v > maxV {
			maxV = v
		}
	}
	present := len(values) - missing
	if present == 0 {
		ref = 0
	}

	// Choose E so (max-ref)/2^E fits in bits. maxPacked = 2^bits - 1.
	e := 0
	if present > 0 && maxV > ref {
		span := maxV - ref
		maxPacked := float64(uint64(1)<<uint(bits) - 1)
		e = int(math.Ceil(math.Log2(span / maxPacked)))
		// Rounding up log2 can still overflow by one step due to float
		// rounding in the packing below; verify and bump if needed.
		for math.Round(span/math.Pow(2, float64(e))) > maxPacked {
			e++
		}
	}
	scale := math.Pow(2, float64(e))

	out := make([]byte, 0, 28+len(values)/2)
	out = append(out, magic...)
	out = appendU16(out, 1)
	out = appendU16(out, uint16(ni))
	out = appendU16(out, uint16(nj))
	var refBits [8]byte
	binary.BigEndian.PutUint64(refBits[:], math.Float64bits(ref))
	out = append(out, refBits[:]...)
	out = appendU16(out, uint16(int16(e)))
	out = append(out, byte(bits))
	flags := byte(0)
	if missing > 0 {
		flags |= 1
	}
	out = append(out, flags)
	out = appendU32(out, uint32(len(values)))

	if missing > 0 {
		bitmap := make([]byte, (len(values)+7)/8)
		for i, v := range values {
			if !math.IsNaN(v) {
				bitmap[i/8] |= 1 << uint(7-i%8)
			}
		}
		out = append(out, bitmap...)
	}

	bw := newBitWriter()
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		packed := uint32(math.Round((v - ref) / scale))
		bw.write(packed, bits)
	}
	out = append(out, bw.bytes()...)
	out = append(out, end...)
	return out, nil
}

// Decode unpacks one message.
func Decode(b []byte) (*Message, error) {
	if len(b) < 24 {
		return nil, fmt.Errorf("%w: too short (%d bytes)", ErrFormat, len(b))
	}
	if string(b[:4]) != string(magic) {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if v := binary.BigEndian.Uint16(b[4:]); v != 1 {
		return nil, fmt.Errorf("grib: unsupported version %d", v)
	}
	ni := int(binary.BigEndian.Uint16(b[6:]))
	nj := int(binary.BigEndian.Uint16(b[8:]))
	ref := math.Float64frombits(binary.BigEndian.Uint64(b[10:]))
	e := int(int16(binary.BigEndian.Uint16(b[18:])))
	bits := int(b[20])
	flags := b[21]
	n := int(binary.BigEndian.Uint32(b[22:]))
	if n != ni*nj {
		return nil, fmt.Errorf("%w: point count %d != grid %dx%d", ErrFormat, n, ni, nj)
	}
	if bits < 1 || bits > 32 {
		return nil, fmt.Errorf("%w: bits per value %d", ErrFormat, bits)
	}
	pos := 26

	present := n
	var bitmap []byte
	if flags&1 != 0 {
		blen := (n + 7) / 8
		if pos+blen > len(b) {
			return nil, fmt.Errorf("%w: truncated bitmap", ErrFormat)
		}
		bitmap = b[pos : pos+blen]
		pos += blen
		present = 0
		for i := 0; i < n; i++ {
			if bitmap[i/8]&(1<<uint(7-i%8)) != 0 {
				present++
			}
		}
	}

	dlen := (present*bits + 7) / 8
	if pos+dlen+4 > len(b) {
		return nil, fmt.Errorf("%w: truncated data section", ErrFormat)
	}
	if string(b[pos+dlen:pos+dlen+4]) != string(end) {
		return nil, fmt.Errorf("%w: missing end marker", ErrFormat)
	}

	scale := math.Pow(2, float64(e))
	br := &bitReader{b: b[pos : pos+dlen]}
	values := make([]float64, n)
	for i := 0; i < n; i++ {
		if bitmap != nil && bitmap[i/8]&(1<<uint(7-i%8)) == 0 {
			values[i] = math.NaN()
			continue
		}
		packed, err := br.read(bits)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		values[i] = ref + float64(packed)*scale
	}
	return &Message{Ni: ni, Nj: nj, Values: values, Reference: ref, BinaryScale: e, Bits: bits}, nil
}

// MaxQuantizationError returns the worst-case absolute error the packing
// parameters of m permit: half of one quantization step.
func (m *Message) MaxQuantizationError() float64 {
	return math.Pow(2, float64(m.BinaryScale)) / 2
}

func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v>>8), byte(v))
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// bitWriter packs big-endian bit fields.
type bitWriter struct {
	out  []byte
	cur  uint64
	nbit int
}

func newBitWriter() *bitWriter { return &bitWriter{} }

func (w *bitWriter) write(v uint32, bits int) {
	w.cur = w.cur<<uint(bits) | uint64(v)&((1<<uint(bits))-1)
	w.nbit += bits
	for w.nbit >= 8 {
		w.nbit -= 8
		w.out = append(w.out, byte(w.cur>>uint(w.nbit)))
	}
}

func (w *bitWriter) bytes() []byte {
	if w.nbit > 0 {
		b := byte(w.cur << uint(8-w.nbit))
		w.out = append(w.out, b)
		w.nbit = 0
		w.cur = 0
	}
	return w.out
}

// bitReader unpacks big-endian bit fields.
type bitReader struct {
	b    []byte
	pos  int
	cur  uint64
	nbit int
}

func (r *bitReader) read(bits int) (uint32, error) {
	for r.nbit < bits {
		if r.pos >= len(r.b) {
			return 0, errors.New("bit stream exhausted")
		}
		r.cur = r.cur<<8 | uint64(r.b[r.pos])
		r.pos++
		r.nbit += 8
	}
	r.nbit -= bits
	v := uint32(r.cur >> uint(r.nbit) & ((1 << uint(bits)) - 1))
	return v, nil
}
