// Stream: one batch stream over either wire format, with content
// negotiation and transparent cursor resume. The client asks for
// frames via Accept, reads the server's X-Draid-Wire / Content-Type
// answer to pick a decoder, and — when the connection is cut mid-
// stream — reconnects from the cursor after the last delivered batch,
// renumbering so consumers see one contiguous stream.
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/domain"
	"repro/internal/telemetry"
)

// StreamOptions tunes StreamBatches.
type StreamOptions struct {
	// BatchSize is records per batch; <=0 takes the server default.
	BatchSize int
	// MaxBatches caps the stream; <=0 streams the whole shard set.
	MaxBatches int
	// MaxKBps asks the server to pace the stream (it may pace tighter
	// under its own ceiling, never looser).
	MaxKBps int
	// Cursor resumes a previous stream at its position.
	Cursor string
	// Wire overrides the client's wire preference for this stream.
	Wire string
	// MaxResumes bounds automatic reconnect-from-cursor attempts after
	// a transport failure. 0 means DefaultMaxResumes; negative
	// disables resuming.
	MaxResumes int
}

// DefaultMaxResumes is how many transparent cursor reconnects a stream
// attempts before surfacing the transport error.
const DefaultMaxResumes = 3

// StreamBatches opens the batch stream of a completed job.
func (c *Client) StreamBatches(ctx context.Context, jobID string, opts StreamOptions) (*Stream, error) {
	q := url.Values{}
	if opts.BatchSize > 0 {
		q.Set("batch_size", strconv.Itoa(opts.BatchSize))
	}
	if opts.MaxBatches > 0 {
		q.Set("max_batches", strconv.Itoa(opts.MaxBatches))
	}
	if opts.MaxKBps > 0 {
		q.Set("max_kbps", strconv.Itoa(opts.MaxKBps))
	}
	u := c.base + "/v1/jobs/" + url.PathEscape(jobID) + "/batches"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	wire := opts.Wire
	if wire == "" {
		wire = c.wire
	}
	s, err := openStream(ctx, c.httpc, u, opts.Cursor, wire, opts.MaxResumes, c.newTrace(), c.token)
	if err != nil {
		return nil, err
	}
	// The server's max_batches cap is per-connection; carry it on the
	// stream so transparent resumes cannot overshoot it.
	s.maxBatches = opts.MaxBatches
	return s, nil
}

// OpenStreamURL opens a batch stream against an already-built
// /batches URL (which must not carry a cursor parameter — cursor is
// passed separately so resume can rebuild it). httpc nil uses
// http.DefaultClient; wire "" means WireAuto; maxResumes as in
// StreamOptions.
func OpenStreamURL(ctx context.Context, httpc *http.Client, rawURL, cursor, wire string, maxResumes int) (*Stream, error) {
	return openStream(ctx, httpc, rawURL, cursor, wire, maxResumes, "", "")
}

// openStream is OpenStreamURL with an explicit trace ID ("" generates a
// fresh one) and bearer token ("" sends no Authorization). The same ID
// and token ride every connection of the stream — resumes included —
// so the whole logical stream correlates to one trace across the fleet
// and reconnects re-authenticate instead of dying with 401.
func openStream(ctx context.Context, httpc *http.Client, rawURL, cursor, wire string, maxResumes int, trace, token string) (*Stream, error) {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	if !telemetry.ValidTraceID(trace) {
		trace = telemetry.NewTraceID()
	}
	switch wire {
	case "":
		wire = WireAuto
	case WireAuto, WireNDJSON, WireFrame:
	default:
		return nil, fmt.Errorf("client: unknown wire format %q", wire)
	}
	if maxResumes == 0 {
		maxResumes = DefaultMaxResumes
	}
	if maxResumes < 0 {
		maxResumes = 0
	}
	s := &Stream{
		ctx:         ctx,
		httpc:       httpc,
		url:         rawURL,
		wire:        wire,
		cursor:      cursor,
		resumesLeft: maxResumes,
		trace:       trace,
		token:       token,
	}
	if err := s.connect(); err != nil {
		return nil, err
	}
	return s, nil
}

// Stream is an open batch stream. Read with Next until io.EOF; Close
// is only needed to abandon a stream early.
type Stream struct {
	ctx   context.Context
	httpc *http.Client
	url   string
	wire  string // requested: auto|ndjson|frame

	negotiated string // wire in use on the current connection
	trace      string // trace ID stamped on every connection of the stream
	token      string // bearer token re-sent on every connection (resumes too)
	cursor     string // position after the last delivered batch
	delivered  int
	maxBatches int // total delivery cap across resumes (0 = unbounded)
	batchBase  int // renumber offset applied after a resume
	bytes      int64

	resumesLeft int
	body        io.ReadCloser
	sc          *bufio.Scanner
	fr          *domain.FrameReader
	frStart     int64
	done        bool
}

// Wire reports the negotiated wire format ("ndjson" or "frame").
func (s *Stream) Wire() string { return s.negotiated }

// TraceID reports the trace ID this stream's requests carry — the
// handle for finding the stream in server logs and metrics.
func (s *Stream) TraceID() string { return s.trace }

// Cursor is the resume position after the last batch Next returned.
func (s *Stream) Cursor() string { return s.cursor }

// Bytes is the total wire bytes consumed so far.
func (s *Stream) Bytes() int64 { return s.bytes }

// Close abandons the stream.
func (s *Stream) Close() error {
	s.done = true
	if s.body != nil {
		return s.body.Close()
	}
	return nil
}

func (s *Stream) connect() error {
	u := s.url
	if s.cursor != "" {
		sep := "?"
		if strings.Contains(u, "?") {
			sep = "&"
		}
		u += sep + "cursor=" + url.QueryEscape(s.cursor)
	}
	req, err := http.NewRequestWithContext(s.ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	req.Header.Set(TraceHeader, s.trace)
	if s.token != "" {
		req.Header.Set("Authorization", "Bearer "+s.token)
	}
	switch s.wire {
	case WireFrame:
		req.Header.Set("Accept", domain.ContentTypeFrame)
	case WireNDJSON:
		req.Header.Set("Accept", domain.ContentTypeNDJSON)
	default: // auto: prefer frames, accept anything
		req.Header.Set("Accept", domain.ContentTypeFrame+", "+domain.ContentTypeNDJSON+";q=0.9, */*;q=0.1")
	}
	resp, err := s.httpc.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		return fmt.Errorf("client: stream: status %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	negotiated := resp.Header.Get(domain.HeaderWire)
	if negotiated == "" {
		// Pre-negotiation servers: infer from the content type.
		if strings.HasPrefix(resp.Header.Get("Content-Type"), domain.ContentTypeFrame) {
			negotiated = domain.WireFrame
		} else {
			negotiated = domain.WireNDJSON
		}
	}
	if s.wire == WireFrame && negotiated != domain.WireFrame {
		resp.Body.Close()
		return fmt.Errorf("client: server answered wire %q, frames required", negotiated)
	}
	if s.wire == WireNDJSON && negotiated != domain.WireNDJSON {
		resp.Body.Close()
		return fmt.Errorf("client: server answered wire %q to an NDJSON request", negotiated)
	}
	s.negotiated = negotiated
	s.body = resp.Body
	s.sc, s.fr, s.frStart = nil, nil, 0
	if negotiated == domain.WireFrame {
		s.fr = domain.NewFrameReader(resp.Body)
	} else {
		s.sc = bufio.NewScanner(resp.Body)
		s.sc.Buffer(make([]byte, 1<<20), 1<<26)
	}
	return nil
}

// Next returns the next batch, validated, or io.EOF at a clean end of
// stream. Transport failures mid-stream are retried transparently by
// reconnecting from the current cursor (bounded by MaxResumes);
// server-reported errors and malformed batches are terminal.
func (s *Stream) Next() (*BatchWire, error) {
	if s.done {
		return nil, io.EOF
	}
	if s.maxBatches > 0 && s.delivered >= s.maxBatches {
		s.done = true
		s.body.Close()
		return nil, io.EOF
	}
	for {
		w, n, err := s.readOne()
		if err == nil {
			s.bytes += n
			s.delivered++
			w.Batch += s.batchBase
			s.cursor = w.Cursor
			return w, nil
		}
		if err == io.EOF {
			s.done = true
			s.body.Close()
			return nil, io.EOF
		}
		if terminal(err) || s.resumesLeft <= 0 {
			s.done = true
			s.body.Close()
			return nil, err
		}
		// Transport failure: reconnect from the cursor after the last
		// delivered batch. The resumed connection renumbers from zero,
		// so shift its indices to continue this stream's count.
		s.resumesLeft--
		s.body.Close()
		s.batchBase = s.delivered
		if cerr := s.connect(); cerr != nil {
			s.done = true
			return nil, fmt.Errorf("client: resume after %v: %w", err, cerr)
		}
	}
}

// terminal reports whether err can never be cured by reconnecting
// from the same cursor: in-band server errors and malformed (but
// fully received) batches or frames, as opposed to cut connections.
func terminal(err error) bool {
	var se *domain.StreamError
	if errors.As(err, &se) {
		return true
	}
	var cf *domain.CorruptFrameError
	if errors.As(err, &cf) {
		return true
	}
	var be *badBatchError
	return errors.As(err, &be)
}

// badBatchError wraps a decode/validation failure of a fully received
// batch — retrying would replay the same bytes.
type badBatchError struct{ err error }

func (e *badBatchError) Error() string { return e.err.Error() }
func (e *badBatchError) Unwrap() error { return e.err }

// readOne reads one batch off the current connection, returning its
// wire byte cost.
func (s *Stream) readOne() (*BatchWire, int64, error) {
	if s.fr != nil {
		h, recs, err := s.fr.Next()
		if err != nil {
			// io.EOF only surfaces at a frame boundary (clean end);
			// mid-frame cuts arrive as io.ErrUnexpectedEOF and resume.
			return nil, 0, err
		}
		n := s.fr.BytesRead() - s.frStart
		s.frStart = s.fr.BytesRead()
		w, err := fromRecords(h, recs)
		if err != nil {
			return nil, 0, &badBatchError{err}
		}
		if err := w.Validate(); err != nil {
			return nil, 0, &badBatchError{err}
		}
		return w, n, nil
	}
	if !s.sc.Scan() {
		if err := s.sc.Err(); err != nil {
			return nil, 0, err
		}
		return nil, 0, io.EOF
	}
	line := s.sc.Bytes()
	var w BatchWire
	if err := json.Unmarshal(line, &w); err != nil {
		// A cut connection truncates the final line; json garbage on a
		// healthy stream also lands here and is bounded by MaxResumes.
		return nil, 0, fmt.Errorf("bad stream line: %w", err)
	}
	if err := w.Validate(); err != nil {
		var se *domain.StreamError
		if errors.As(err, &se) {
			return nil, 0, err // in-band server error line
		}
		return nil, 0, &badBatchError{err}
	}
	return &w, int64(len(line)) + 1, nil
}

// Drain consumes the remainder of the stream, validating every batch,
// and returns what it saw: batches, records, and wire bytes.
func (s *Stream) Drain() (batches, samples, bytes int64, err error) {
	start := s.bytes
	for {
		w, err := s.Next()
		if err == io.EOF {
			return batches, samples, s.bytes - start, nil
		}
		if err != nil {
			return batches, samples, s.bytes - start, err
		}
		batches++
		samples += int64(w.Count())
	}
}
