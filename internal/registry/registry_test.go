package registry

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/climate"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/shard"
)

func TestAllDomainsRegistered(t *testing.T) {
	domains := Domains()
	if len(domains) != 4 {
		t.Fatalf("domains=%v", domains)
	}
	for _, d := range core.Domains() {
		tpl, err := Lookup(d)
		if err != nil {
			t.Fatal(err)
		}
		if tpl.Description == "" {
			t.Fatalf("%s template lacks description", d)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup(core.Domain("astro")); err == nil {
		t.Fatal("want not-found error")
	}
}

func TestRegisterValidation(t *testing.T) {
	if err := Register(Template{}); err == nil {
		t.Fatal("want validation error")
	}
}

func TestNewClimateDefault(t *testing.T) {
	p, err := New(core.Climate, shard.NewMemSink(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "climate-archetype" {
		t.Fatalf("name=%q", p.Name())
	}
}

func TestNewClimateCustomConfig(t *testing.T) {
	cfg := climate.DefaultConfig()
	cfg.TargetLat, cfg.TargetLon = 6, 12
	p, err := New(core.Climate, shard.NewMemSink(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Run it end-to-end to prove the custom config took effect.
	field, err := climate.Synthesize(climate.SynthConfig{Months: 12, Lat: 12, Lon: 24, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := field.ToNetCDF()
	if err != nil {
		t.Fatal(err)
	}
	ds := climate.NewDataset("reg", raw)
	if _, err := p.Run(ds); err != nil {
		t.Fatal(err)
	}
	prod := ds.Payload.(*climate.Product)
	if prod.Field.Data.Dim(1) != 6 || prod.Field.Data.Dim(2) != 12 {
		t.Fatalf("custom grid ignored: %v", prod.Field.Data.Shape())
	}
}

func TestNewFusionAndMaterialsDefaults(t *testing.T) {
	for _, d := range []core.Domain{core.Fusion, core.Materials} {
		p, err := New(d, shard.NewMemSink(), nil)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if !strings.Contains(p.Name(), "archetype") {
			t.Fatalf("%s name=%q", d, p.Name())
		}
	}
}

func TestNewBioRequiresSecrets(t *testing.T) {
	if _, err := New(core.BioHealth, shard.NewMemSink(), nil); err == nil {
		t.Fatal("bio without secrets must fail")
	}
	p, err := New(core.BioHealth, shard.NewMemSink(), BioSecrets{
		EncryptionKey:   bytes.Repeat([]byte{1}, 32),
		PseudonymSecret: []byte("registry-test-secret-key"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "bio-archetype" {
		t.Fatalf("name=%q", p.Name())
	}
}

// TestAllTemplatesWalkAbstractStages re-verifies E7 through the registry
// entry point: every template's pipeline walks ingest→…→shard.
func TestAllTemplatesWalkAbstractStages(t *testing.T) {
	build := func(d core.Domain) *pipeline.Pipeline {
		var opts any
		if d == core.BioHealth {
			opts = BioSecrets{
				EncryptionKey:   bytes.Repeat([]byte{1}, 32),
				PseudonymSecret: []byte("registry-test-secret-key"),
			}
		}
		p, err := New(d, shard.NewMemSink(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, d := range core.Domains() {
		p := build(d)
		kinds := p.StageKinds()
		if kinds[0] != core.Ingest || kinds[len(kinds)-1] != core.Shard {
			t.Fatalf("%s kinds=%v", d, kinds)
		}
	}
}
