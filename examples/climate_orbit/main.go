// climate_orbit reproduces the ORBIT/ClimaX-style climate preparation at
// a larger scale: decode NetCDF, regrid with both methods (comparing
// conservation), normalize, shard to NPZ, and sweep parallel regridding
// workers to show the preprocessing-scaling behaviour the paper's §3.1
// ("pipeline throughput") calls out.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/climate"
	"repro/internal/formats/npy"
	"repro/internal/shard"
)

func main() {
	log.SetFlags(0)
	cfg := climate.SynthConfig{Months: 48, Lat: 64, Lon: 128, MissingRate: 0.01, Seed: 7}
	field, err := climate.Synthesize(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CMIP6-like input: %d months on %dx%d\n", cfg.Months, cfg.Lat, cfg.Lon)

	// Compare regrid methods on month 0.
	month, err := field.Data.SubTensor(0)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range []climate.Method{climate.Bilinear, climate.Conservative} {
		down, err := climate.Regrid2D(month, 32, 64, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-13s 64x128 -> 32x64: mean drift %+.3e K\n",
			m, down.Mean()-month.Mean())
	}

	// Parallel regridding sweep (the pipeline-throughput challenge).
	fmt.Println("\nparallel regridding sweep (48 months, 64x128 -> 32x64):")
	var base time.Duration
	for _, workers := range []int{1, 2, 4, 8} {
		start := time.Now()
		if _, err := climate.RegridStack(field.Data, 32, 64, climate.Bilinear, workers); err != nil {
			log.Fatal(err)
		}
		d := time.Since(start)
		if workers == 1 {
			base = d
		}
		fmt.Printf("  workers=%d  %10s  speedup %.2fx\n", workers, d.Round(time.Microsecond), float64(base)/float64(d))
	}

	// Full pipeline to AI-ready NPZ.
	raw, err := field.ToNetCDF()
	if err != nil {
		log.Fatal(err)
	}
	sink := shard.NewMemSink()
	p, err := climate.NewPipeline(climate.Config{
		TargetLat: 32, TargetLon: 64, Method: climate.Bilinear, Workers: 8,
		ShardTargetBytes: 256 << 10, Seed: 7}, sink)
	if err != nil {
		log.Fatal(err)
	}
	ds := climate.NewDataset("orbit-demo", raw)
	if _, err := p.Run(ds); err != nil {
		log.Fatal(err)
	}
	prod := ds.Payload.(*climate.Product)
	fmt.Printf("\nAI-ready outputs: %d train shards (%d bytes), NPZ %d bytes\n",
		len(prod.Manifest.Shards), prod.Manifest.TotalStoredBytes(), len(prod.NPZ))

	// Verify the NPZ artifact decodes and its stats denormalize sanely.
	arrs, err := npy.ReadNPZBytes(prod.NPZ)
	if err != nil {
		log.Fatal(err)
	}
	mean := arrs["mean"].Data[0]
	std := arrs["std"].Data[0]
	if math.IsNaN(mean) || std <= 0 {
		log.Fatalf("bad normalization stats: mean=%v std=%v", mean, std)
	}
	fmt.Printf("NPZ members: tas%v, mean=%.2f K, std=%.2f K\n", arrs["tas"].Shape, mean, std)
	fmt.Println("\n" + p.Collector.Report())
}
