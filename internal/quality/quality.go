// Package quality implements the data-cleaning and quality-assessment
// substrate: missing-value handling, outlier detection, coverage and
// imbalance metrics, and "Datasheets for Datasets"-style quality reports
// (paper §5, "Data Quality, Bias, and Fairness"; §2.1 lists handling
// missing values as the first common preprocessing task).
package quality

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// FillStrategy selects how missing (NaN) values are repaired.
type FillStrategy int

// Supported strategies.
const (
	FillMean FillStrategy = iota
	FillMedian
	FillConstant
	FillInterpolate // linear along the flattened series
	DropRows        // remove first-axis rows containing NaN
)

// String implements fmt.Stringer.
func (s FillStrategy) String() string {
	switch s {
	case FillMean:
		return "mean"
	case FillMedian:
		return "median"
	case FillConstant:
		return "constant"
	case FillInterpolate:
		return "interpolate"
	case DropRows:
		return "drop-rows"
	}
	return fmt.Sprintf("FillStrategy(%d)", int(s))
}

// FillReport describes a missing-value repair.
type FillReport struct {
	Strategy    FillStrategy
	Missing     int
	Repaired    int
	RowsDropped int
}

// FillMissing repairs NaNs in t according to the strategy, in place
// (except DropRows, which returns a new tensor). The constant is only used
// by FillConstant.
func FillMissing(t *tensor.Tensor, strategy FillStrategy, constant float64) (*tensor.Tensor, FillReport, error) {
	rep := FillReport{Strategy: strategy, Missing: t.CountNaN()}
	switch strategy {
	case FillMean:
		m := t.Mean()
		if math.IsNaN(m) && rep.Missing > 0 {
			return nil, rep, errors.New("quality: cannot mean-fill an all-NaN tensor")
		}
		rep.Repaired = t.FillNaN(m)
		return t, rep, nil
	case FillMedian:
		med, err := stats.Quantile(t.Data(), 0.5)
		if err != nil {
			if rep.Missing == 0 {
				return t, rep, nil
			}
			return nil, rep, fmt.Errorf("quality: median fill: %w", err)
		}
		rep.Repaired = t.FillNaN(med)
		return t, rep, nil
	case FillConstant:
		rep.Repaired = t.FillNaN(constant)
		return t, rep, nil
	case FillInterpolate:
		rep.Repaired = interpolateNaN(t.Data())
		return t, rep, nil
	case DropRows:
		out, dropped, err := dropNaNRows(t)
		rep.RowsDropped = dropped
		rep.Repaired = rep.Missing
		return out, rep, err
	}
	return nil, rep, fmt.Errorf("quality: unknown fill strategy %d", strategy)
}

// interpolateNaN linearly interpolates interior NaN runs and extends edge
// runs with the nearest valid value. Returns the number repaired; an
// all-NaN series is left untouched.
func interpolateNaN(xs []float64) int {
	n := len(xs)
	firstValid, lastValid := -1, -1
	for i, v := range xs {
		if !math.IsNaN(v) {
			if firstValid < 0 {
				firstValid = i
			}
			lastValid = i
		}
	}
	if firstValid < 0 {
		return 0
	}
	repaired := 0
	for i := 0; i < firstValid; i++ {
		xs[i] = xs[firstValid]
		repaired++
	}
	for i := lastValid + 1; i < n; i++ {
		xs[i] = xs[lastValid]
		repaired++
	}
	i := firstValid
	for i < lastValid {
		if !math.IsNaN(xs[i+1]) {
			i++
			continue
		}
		// Find the run of NaNs starting at i+1.
		j := i + 1
		for math.IsNaN(xs[j]) {
			j++
		}
		step := (xs[j] - xs[i]) / float64(j-i)
		for k := i + 1; k < j; k++ {
			xs[k] = xs[i] + step*float64(k-i)
			repaired++
		}
		i = j
	}
	return repaired
}

func dropNaNRows(t *tensor.Tensor) (*tensor.Tensor, int, error) {
	if t.Rank() == 0 {
		return nil, 0, errors.New("quality: DropRows needs rank >= 1")
	}
	rows := t.Dim(0)
	rowElems := t.Numel() / maxInt(rows, 1)
	data := t.Data()
	keep := make([]int, 0, rows)
	for r := 0; r < rows; r++ {
		ok := true
		for _, v := range data[r*rowElems : (r+1)*rowElems] {
			if math.IsNaN(v) {
				ok = false
				break
			}
		}
		if ok {
			keep = append(keep, r)
		}
	}
	shape := append([]int(nil), t.Shape()...)
	shape[0] = len(keep)
	out := tensor.New(shape...)
	for i, r := range keep {
		copy(out.Data()[i*rowElems:(i+1)*rowElems], data[r*rowElems:(r+1)*rowElems])
	}
	return out, rows - len(keep), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// OutlierMethod selects the detection scheme.
type OutlierMethod int

// Supported outlier detectors.
const (
	ZScore OutlierMethod = iota // |x-mean| > k*std
	IQR                         // outside [Q1-k*IQR, Q3+k*IQR]
)

// DetectOutliers returns the indices of outlying values under the chosen
// method with multiplier k (typical: 3 for ZScore, 1.5 for IQR). NaNs are
// never flagged.
func DetectOutliers(xs []float64, method OutlierMethod, k float64) ([]int, error) {
	if k <= 0 {
		return nil, fmt.Errorf("quality: multiplier %v must be positive", k)
	}
	switch method {
	case ZScore:
		var r stats.Running
		r.AddSlice(xs)
		if r.N() < 2 {
			return nil, nil
		}
		mean, std := r.Mean(), r.Std()
		if std == 0 {
			return nil, nil
		}
		var out []int
		for i, x := range xs {
			if !math.IsNaN(x) && math.Abs(x-mean) > k*std {
				out = append(out, i)
			}
		}
		return out, nil
	case IQR:
		q1, err1 := stats.Quantile(xs, 0.25)
		q3, err3 := stats.Quantile(xs, 0.75)
		if err1 != nil || err3 != nil {
			return nil, nil
		}
		iqr := q3 - q1
		lo, hi := q1-k*iqr, q3+k*iqr
		var out []int
		for i, x := range xs {
			if !math.IsNaN(x) && (x < lo || x > hi) {
				out = append(out, i)
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("quality: unknown outlier method %d", method)
}

// WinsorizeOutliers clamps detected outliers to the nearest bound implied
// by the method, in place, returning how many were clamped.
func WinsorizeOutliers(xs []float64, method OutlierMethod, k float64) (int, error) {
	idx, err := DetectOutliers(xs, method, k)
	if err != nil || len(idx) == 0 {
		return 0, err
	}
	var lo, hi float64
	switch method {
	case ZScore:
		var r stats.Running
		r.AddSlice(xs)
		lo, hi = r.Mean()-k*r.Std(), r.Mean()+k*r.Std()
	case IQR:
		q1, _ := stats.Quantile(xs, 0.25)
		q3, _ := stats.Quantile(xs, 0.75)
		lo, hi = q1-k*(q3-q1), q3+k*(q3-q1)
	}
	for _, i := range idx {
		if xs[i] < lo {
			xs[i] = lo
		} else if xs[i] > hi {
			xs[i] = hi
		}
	}
	return len(idx), nil
}

// Datasheet is a "Datasheets for Datasets"-style quality summary.
type Datasheet struct {
	Name          string
	Samples       int
	MissingRate   float64
	OutlierRate   float64
	Mean, Std     float64
	Min, Max      float64
	CoverageScore float64 // normalized histogram entropy in [0,1]
	Imbalance     float64 // label imbalance ratio (1 = balanced)
	Issues        []string
}

// BuildDatasheet profiles values (and optional labels) into a datasheet.
func BuildDatasheet(name string, values []float64, labels []string) (*Datasheet, error) {
	if len(values) == 0 {
		return nil, errors.New("quality: datasheet of empty dataset")
	}
	var r stats.Running
	r.AddSlice(values)
	d := &Datasheet{
		Name:        name,
		Samples:     len(values),
		MissingRate: r.MissingRate(),
		Mean:        r.Mean(),
		Std:         r.Std(),
		Min:         r.Min(),
		Max:         r.Max(),
		Imbalance:   1,
	}
	if out, err := DetectOutliers(values, ZScore, 4); err == nil {
		d.OutlierRate = float64(len(out)) / float64(len(values))
	}
	if r.N() > 0 && r.Max() > r.Min() {
		h, err := stats.NewHistogram(r.Min(), r.Max()+1e-12, 20)
		if err == nil {
			for _, v := range values {
				h.Add(v)
			}
			d.CoverageScore = h.Entropy() / math.Log(20)
		}
	}
	if len(labels) > 0 {
		d.Imbalance = stats.NewClassBalance(labels).ImbalanceRatio()
	}

	if d.MissingRate > 0.05 {
		d.Issues = append(d.Issues, fmt.Sprintf("high missing rate (%.1f%%)", 100*d.MissingRate))
	}
	if d.OutlierRate > 0.01 {
		d.Issues = append(d.Issues, fmt.Sprintf("outlier rate %.2f%%", 100*d.OutlierRate))
	}
	if d.CoverageScore < 0.5 && r.Max() > r.Min() {
		d.Issues = append(d.Issues, "poor value coverage (concentrated distribution)")
	}
	if d.Imbalance > 10 {
		d.Issues = append(d.Issues, fmt.Sprintf("severe class imbalance (%.0f:1)", d.Imbalance))
	}
	sort.Strings(d.Issues)
	return d, nil
}

// QualityScore condenses the datasheet into [0,1] (1 = pristine).
func (d *Datasheet) QualityScore() float64 {
	score := 1.0
	score -= math.Min(0.4, d.MissingRate*4)
	score -= math.Min(0.2, d.OutlierRate*10)
	if d.Imbalance > 1 {
		score -= math.Min(0.2, (d.Imbalance-1)/50)
	}
	if d.CoverageScore > 0 {
		score -= math.Min(0.2, (1-d.CoverageScore)*0.2)
	}
	return math.Max(0, score)
}

// String renders the datasheet as text.
func (d *Datasheet) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Datasheet: %s\n", d.Name)
	fmt.Fprintf(&b, "  samples=%d missing=%.2f%% outliers=%.2f%%\n",
		d.Samples, 100*d.MissingRate, 100*d.OutlierRate)
	fmt.Fprintf(&b, "  mean=%.4g std=%.4g range=[%.4g, %.4g]\n", d.Mean, d.Std, d.Min, d.Max)
	fmt.Fprintf(&b, "  coverage=%.2f imbalance=%.1f quality=%.2f\n",
		d.CoverageScore, d.Imbalance, d.QualityScore())
	for _, issue := range d.Issues {
		fmt.Fprintf(&b, "  ! %s\n", issue)
	}
	return b.String()
}
