package anonymize

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func newP(t *testing.T) *Pseudonymizer {
	t.Helper()
	p, err := NewPseudonymizer([]byte("a-very-secret-key-0123456789"))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPseudonymStableAndOpaque(t *testing.T) {
	p := newP(t)
	a := p.Pseudonym("MRN-12345")
	if a != p.Pseudonym("MRN-12345") {
		t.Fatal("pseudonym unstable")
	}
	if a == p.Pseudonym("MRN-12346") {
		t.Fatal("distinct ids collide")
	}
	if strings.Contains(a, "12345") {
		t.Fatal("pseudonym leaks identifier")
	}
	if len(a) != 16 {
		t.Fatalf("len=%d", len(a))
	}
}

func TestPseudonymKeyDependence(t *testing.T) {
	p1 := newP(t)
	p2, err := NewPseudonymizer([]byte("another-secret-key-9876543210"))
	if err != nil {
		t.Fatal(err)
	}
	if p1.Pseudonym("x") == p2.Pseudonym("x") {
		t.Fatal("pseudonyms must differ under different keys")
	}
}

func TestNewPseudonymizerShortSecret(t *testing.T) {
	if _, err := NewPseudonymizer([]byte("short")); err == nil {
		t.Fatal("want short-secret error")
	}
}

func TestDateShiftProperties(t *testing.T) {
	p := newP(t)
	s := p.DateShift("patient-1")
	if s != p.DateShift("patient-1") {
		t.Fatal("date shift unstable")
	}
	if s < -365*24*time.Hour || s >= 365*24*time.Hour {
		t.Fatalf("shift out of range: %v", s)
	}
	// Interval preservation: two dates for the same subject keep spacing.
	d1 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	d2 := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	if d2.Add(s).Sub(d1.Add(s)) != d2.Sub(d1) {
		t.Fatal("intervals not preserved")
	}
}

func TestScrubText(t *testing.T) {
	in := "Pt John, SSN 123-45-6789, call 865-555-1234, j.doe@example.org, seen 3/14/2021, MRN: 99881"
	out, n := ScrubText(in)
	if n != 5 {
		t.Fatalf("redactions=%d out=%q", n, out)
	}
	for _, leak := range []string{"123-45-6789", "865-555-1234", "j.doe@example.org", "3/14/2021", "99881"} {
		if strings.Contains(out, leak) {
			t.Fatalf("leak %q in %q", leak, out)
		}
	}
	if !strings.Contains(out, "[REDACTED]") {
		t.Fatalf("out=%q", out)
	}
}

func TestScrubTextClean(t *testing.T) {
	out, n := ScrubText("unremarkable echo, ef 60 percent")
	if n != 0 || strings.Contains(out, "REDACTED") {
		t.Fatalf("false positive: %q n=%d", out, n)
	}
}

func TestGeneralizeZIP(t *testing.T) {
	if got := GeneralizeZIP("37830"); got != "378**" {
		t.Fatalf("zip=%q", got)
	}
	if got := GeneralizeZIP("37830-1234"); got != "378**" {
		t.Fatalf("zip+4=%q", got)
	}
	if got := GeneralizeZIP("x9"); got != "000" {
		t.Fatalf("short=%q", got)
	}
}

func TestGeneralizeAge(t *testing.T) {
	if got := GeneralizeAge(47, 10); got != "40-49" {
		t.Fatalf("age=%q", got)
	}
	if got := GeneralizeAge(47, 0); got != "40-49" { // default width
		t.Fatalf("age=%q", got)
	}
	if got := GeneralizeAge(-5, 10); got != "0-9" {
		t.Fatalf("neg age=%q", got)
	}
	if got := GeneralizeAge(30, 5); got != "30-34" {
		t.Fatalf("width5=%q", got)
	}
}

func sampleRecords() []Record {
	mk := func(id, name, zip, sex string, age int, notes string) Record {
		return Record{
			ID: id, Name: name, ZIP: zip, Sex: sex, Age: age, Notes: notes,
			BirthDate: time.Date(1980, 6, 15, 0, 0, 0, 0, time.UTC),
			Values:    []float64{1.0, 2.0},
		}
	}
	return []Record{
		mk("p1", "Alice", "37830", "F", 44, "SSN 123-45-6789 noted"),
		mk("p2", "Bob", "37831", "M", 45, "clear"),
		mk("p3", "Cara", "37832", "F", 46, "clear"),
		mk("p4", "Dan", "37833", "M", 47, "clear"),
		mk("p5", "Eve", "90210", "F", 80, "clear"), // lone outlier class
	}
}

func TestAnonymize(t *testing.T) {
	p := newP(t)
	anon, err := Anonymize(sampleRecords(), p, AnonymizeOptions{AgeBandWidth: 10, ScrubNotes: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(anon) != 5 {
		t.Fatalf("n=%d", len(anon))
	}
	a := anon[0]
	if a.Pseudonym == "p1" || a.Pseudonym == "" {
		t.Fatalf("pseudonym=%q", a.Pseudonym)
	}
	if a.ZIP3 != "378**" || a.AgeBand != "40-49" {
		t.Fatalf("quasi: %q %q", a.ZIP3, a.AgeBand)
	}
	if strings.Contains(a.Notes, "123-45-6789") {
		t.Fatal("PHI survived")
	}
	if a.BirthYear == 0 {
		t.Fatal("birth year missing")
	}
	if a.Values[1] != 2.0 {
		t.Fatal("clinical values must be preserved")
	}
}

func TestAnonymizeNilPseudonymizer(t *testing.T) {
	if _, err := Anonymize(nil, nil, AnonymizeOptions{}); err == nil {
		t.Fatal("want nil error")
	}
}

func TestKAnonymity(t *testing.T) {
	p := newP(t)
	anon, _ := Anonymize(sampleRecords(), p, AnonymizeOptions{AgeBandWidth: 10})
	// Classes: F/378**/40-49 (2: p1,p3), M/378**/40-49 (2: p2,p4), F/902**/80-89 (1: p5).
	if k := KAnonymity(anon); k != 1 {
		t.Fatalf("k=%d", k)
	}
	safe, suppressed, err := EnforceKAnonymity(anon, 2)
	if err != nil {
		t.Fatal(err)
	}
	if suppressed != 1 || len(safe) != 4 {
		t.Fatalf("suppressed=%d kept=%d", suppressed, len(safe))
	}
	if k := KAnonymity(safe); k < 2 {
		t.Fatalf("post-enforcement k=%d", k)
	}
}

func TestKAnonymityEmpty(t *testing.T) {
	if KAnonymity(nil) != 0 {
		t.Fatal("empty k must be 0")
	}
}

func TestEnforceKAnonymityBadK(t *testing.T) {
	if _, _, err := EnforceKAnonymity(nil, 0); err == nil {
		t.Fatal("want k error")
	}
}

func TestEquivalenceClasses(t *testing.T) {
	p := newP(t)
	anon, _ := Anonymize(sampleRecords(), p, AnonymizeOptions{AgeBandWidth: 10})
	classes := EquivalenceClasses(anon)
	if len(classes) != 3 || classes[0] != 1 || classes[2] != 2 {
		t.Fatalf("classes=%v", classes)
	}
}

func TestProcessFullPath(t *testing.T) {
	p := newP(t)
	safe, sum, err := Process(sampleRecords(), p, 2, AnonymizeOptions{AgeBandWidth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records != 5 || sum.Suppressed != 1 || sum.K < 2 {
		t.Fatalf("summary=%+v", sum)
	}
	if sum.Redactions == 0 {
		t.Fatal("expected redactions counted")
	}
	for _, r := range safe {
		if ContainsPHI(r.Notes) {
			t.Fatal("release gate failed")
		}
	}
}

func TestContainsPHI(t *testing.T) {
	if !ContainsPHI("ssn 999-11-2222") {
		t.Fatal("missed SSN")
	}
	if ContainsPHI("ejection fraction 60") {
		t.Fatal("false positive")
	}
}

func TestEncryptDecryptShard(t *testing.T) {
	key := bytes.Repeat([]byte{7}, 32)
	payload := []byte("anonymized shard payload")
	sealed, err := EncryptShard(key, "shard-0001", payload)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, payload) {
		t.Fatal("payload visible in ciphertext")
	}
	plain, err := DecryptShard(key, "shard-0001", sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, payload) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestDecryptShardWrongName(t *testing.T) {
	key := bytes.Repeat([]byte{7}, 32)
	sealed, err := EncryptShard(key, "shard-0001", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecryptShard(key, "shard-0002", sealed); err == nil {
		t.Fatal("want name-binding failure")
	}
}

func TestDecryptShardTampered(t *testing.T) {
	key := bytes.Repeat([]byte{7}, 32)
	sealed, err := EncryptShard(key, "s", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	sealed[len(sealed)-1] ^= 1
	if _, err := DecryptShard(key, "s", sealed); err == nil {
		t.Fatal("want integrity failure")
	}
}

func TestEncryptShardKeyLength(t *testing.T) {
	if _, err := EncryptShard([]byte("short"), "s", nil); err == nil {
		t.Fatal("want key-length error")
	}
	if _, err := DecryptShard([]byte("short"), "s", nil); err == nil {
		t.Fatal("want key-length error")
	}
}

func TestDecryptShardTooShort(t *testing.T) {
	key := bytes.Repeat([]byte{7}, 32)
	if _, err := DecryptShard(key, "s", []byte{1, 2}); err == nil {
		t.Fatal("want too-short error")
	}
}

// Property: enforcement always achieves at least k (or empties the set).
func TestEnforceKAnonymityProperty(t *testing.T) {
	f := func(ages []uint8, k8 uint8) bool {
		k := int(k8)%4 + 1
		recs := make([]AnonymizedRecord, len(ages))
		for i, a := range ages {
			recs[i] = AnonymizedRecord{
				AgeBand: GeneralizeAge(int(a)%100, 20),
				ZIP3:    "378**",
				Sex:     []string{"F", "M"}[i%2],
			}
		}
		safe, _, err := EnforceKAnonymity(recs, k)
		if err != nil {
			return false
		}
		return len(safe) == 0 || KAnonymity(safe) >= k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: encryption round-trips arbitrary payloads.
func TestEncryptRoundTripProperty(t *testing.T) {
	key := bytes.Repeat([]byte{3}, 32)
	f := func(payload []byte, name string) bool {
		sealed, err := EncryptShard(key, name, payload)
		if err != nil {
			return false
		}
		plain, err := DecryptShard(key, name, sealed)
		if err != nil {
			return false
		}
		return bytes.Equal(plain, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAnonymize(b *testing.B) {
	p, err := NewPseudonymizer(bytes.Repeat([]byte{5}, 32))
	if err != nil {
		b.Fatal(err)
	}
	recs := sampleRecordsBench()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Anonymize(recs, p, AnonymizeOptions{AgeBandWidth: 10, ScrubNotes: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func sampleRecordsBench() []Record {
	recs := make([]Record, 100)
	for i := range recs {
		recs[i] = Record{
			ID: "p", Name: "n", ZIP: "37830", Sex: "F", Age: 40 + i%30,
			Notes:  "routine visit, call 865-555-1234",
			Values: []float64{1, 2, 3},
		}
	}
	return recs
}

func BenchmarkEncryptShard(b *testing.B) {
	key := bytes.Repeat([]byte{9}, 32)
	payload := bytes.Repeat([]byte{1}, 1<<20)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncryptShard(key, "s", payload); err != nil {
			b.Fatal(err)
		}
	}
}
