// Durable shard stores. The paper's scale argument (>10 TB training
// sets, §1) rules out holding shard sets in process memory: FSSink
// persists shards as plain files under a root directory with an
// atomically replaced MANIFEST.json (temp file + rename, so readers
// never observe a torn manifest — the same commit discipline as HDF5's
// chunk b-tree flush), and ParfsSink routes the same traffic through
// the simulated striped parallel filesystem so stripe contention stays
// observable in benchmarks.
package shard

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ManifestFile is the reserved name of the shard-set index inside an
// FSSink root. It is not a shard and never appears in Names().
const ManifestFile = "MANIFEST.json"

// tmpPrefix marks in-flight files (uncommitted shards, manifest
// staging); they are invisible to Names/Open and swept on reopen.
const tmpPrefix = ".tmp-"

// validName rejects names that could escape the root or collide with
// the store's own bookkeeping files.
func validName(name string) error {
	switch {
	case name == "":
		return errors.New("shard: empty shard name")
	case name == ManifestFile:
		return fmt.Errorf("shard: %q is reserved", name)
	case strings.HasPrefix(name, tmpPrefix):
		return fmt.Errorf("shard: %q collides with temp-file prefix", name)
	case strings.ContainsAny(name, "/\\") || name == "." || name == "..":
		return fmt.Errorf("shard: name %q must not contain path separators", name)
	}
	return nil
}

// FSSink stores shards as files under a root directory and satisfies
// Store. Writes are atomic: shards stream into a temp file and are
// renamed into place on Close, so a crash never leaves a partial shard
// visible.
type FSSink struct {
	root string
}

// NewFSSink creates root (and parents) if needed and returns a durable
// store over it.
func NewFSSink(root string) (*FSSink, error) {
	if root == "" {
		return nil, errors.New("shard: empty store root")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("shard: create store root: %w", err)
	}
	s := &FSSink{root: root}
	s.sweepTemp()
	return s, nil
}

// Root returns the backing directory.
func (s *FSSink) Root() string { return s.root }

// sweepTemp removes uncommitted temp files left by a crash.
func (s *FSSink) sweepTemp() {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			_ = os.Remove(filepath.Join(s.root, e.Name()))
		}
	}
}

type fsShard struct {
	f     *os.File
	final string
	done  bool
}

func (w *fsShard) Write(p []byte) (int, error) {
	if w.done {
		return 0, errors.New("shard: write after close")
	}
	return w.f.Write(p)
}

func (w *fsShard) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	tmp := w.f.Name()
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		os.Remove(tmp)
		return fmt.Errorf("shard: sync %q: %w", w.final, err)
	}
	if err := w.f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("shard: close %q: %w", w.final, err)
	}
	if err := os.Rename(tmp, w.final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("shard: commit %q: %w", w.final, err)
	}
	return nil
}

// Create implements Sink: the shard becomes visible only on Close.
func (s *FSSink) Create(name string) (io.WriteCloser, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	final := filepath.Join(s.root, name)
	if _, err := os.Stat(final); err == nil {
		return nil, fmt.Errorf("shard: %q already exists", name)
	}
	f, err := os.CreateTemp(s.root, tmpPrefix+name+"-*")
	if err != nil {
		return nil, fmt.Errorf("shard: create %q: %w", name, err)
	}
	return &fsShard{f: f, final: final}, nil
}

// Open implements Opener.
func (s *FSSink) Open(name string) (io.ReadCloser, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(s.root, name))
	if err != nil {
		return nil, fmt.Errorf("shard: %q not found: %w", name, err)
	}
	return f, nil
}

// OpenRange implements RangeOpener: an os.File is already an
// io.ReaderAt, so range reads map straight to pread.
func (s *FSSink) OpenRange(name string) (ReaderAtCloser, int64, error) {
	if err := validName(name); err != nil {
		return nil, 0, err
	}
	f, err := os.Open(filepath.Join(s.root, name))
	if err != nil {
		return nil, 0, fmt.Errorf("shard: %q not found: %w", name, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("shard: stat %q: %w", name, err)
	}
	return f, fi.Size(), nil
}

// Names lists committed shard files, sorted. The manifest and temp
// files are excluded.
func (s *FSSink) Names() []string {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || n == ManifestFile || strings.HasPrefix(n, tmpPrefix) {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Size returns a shard's stored byte size (0 if absent).
func (s *FSSink) Size(name string) int64 {
	if validName(name) != nil {
		return 0
	}
	fi, err := os.Stat(filepath.Join(s.root, name))
	if err != nil {
		return 0
	}
	return fi.Size()
}

// WriteManifest atomically replaces the store's MANIFEST.json: the
// encoded manifest is staged in a temp file, synced, and renamed over
// the old one, so a concurrent or post-crash reader sees either the
// previous complete manifest or the new one — never a prefix.
func (s *FSSink) WriteManifest(m *Manifest) error {
	b, err := m.Encode()
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(s.root, tmpPrefix+"manifest-*")
	if err != nil {
		return fmt.Errorf("shard: stage manifest: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(append(b, '\n')); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("shard: write manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.root, ManifestFile)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("shard: commit manifest: %w", err)
	}
	return nil
}

// LoadManifest reads the committed MANIFEST.json.
func (s *FSSink) LoadManifest() (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(s.root, ManifestFile))
	if err != nil {
		return nil, fmt.Errorf("shard: load manifest: %w", err)
	}
	return DecodeManifest(b)
}

// Destroy deletes the store root and everything under it — the
// eviction path for expired job shard sets.
func (s *FSSink) Destroy() error {
	return os.RemoveAll(s.root)
}

// StripedFS is the surface ParfsSink needs from a parallel-filesystem
// simulation. *parfs.FS satisfies it; the indirection exists because
// parfs's own tests exercise shard writers, so shard cannot import
// parfs without a test-build cycle.
type StripedFS interface {
	Create(name string) (io.WriteCloser, error)
	Open(name string) (io.ReadCloser, error)
	List() []string
	Size(name string) int64
}

// ParfsSink adapts a simulated striped parallel filesystem to Store:
// every shard write and read is striped across OSTs and charged
// bandwidth + latency, so benchmarks over this sink expose the stripe
// contention the paper's C1 scaling claim is about.
type ParfsSink struct {
	FS StripedFS
}

// NewParfsSink wraps a striped filesystem as a shard store.
func NewParfsSink(fs StripedFS) ParfsSink { return ParfsSink{FS: fs} }

// Create implements Sink.
func (p ParfsSink) Create(name string) (io.WriteCloser, error) { return p.FS.Create(name) }

// Open implements Opener.
func (p ParfsSink) Open(name string) (io.ReadCloser, error) { return p.FS.Open(name) }

// Names lists stored shard names, sorted.
func (p ParfsSink) Names() []string { return p.FS.List() }

// Size returns a shard's stored byte size (0 if absent).
func (p ParfsSink) Size(name string) int64 { return p.FS.Size(name) }

// stripedRangeFS is the optional random-access extension of StripedFS.
// *parfs.FS satisfies it with stripe-accurate accounting: a range read
// charges only the OSTs whose stripes the range covers.
type stripedRangeFS interface {
	ReadAt(name string, p []byte, off int64) (int, error)
}

// parfsRange adapts a striped filesystem's named ReadAt to io.ReaderAt.
type parfsRange struct {
	fs   stripedRangeFS
	name string
}

func (r parfsRange) ReadAt(p []byte, off int64) (int, error) { return r.fs.ReadAt(r.name, p, off) }
func (r parfsRange) Close() error                            { return nil }

// OpenRange implements RangeOpener when the underlying striped
// filesystem supports range reads.
func (p ParfsSink) OpenRange(name string) (ReaderAtCloser, int64, error) {
	rfs, ok := p.FS.(stripedRangeFS)
	if !ok {
		return nil, 0, fmt.Errorf("shard: %T supports no range reads", p.FS)
	}
	size := p.FS.Size(name)
	if size == 0 {
		return nil, 0, fmt.Errorf("shard: %q not found", name)
	}
	return parfsRange{fs: rfs, name: name}, size, nil
}

// Interface conformance.
var (
	_ Store       = (*MemSink)(nil)
	_ Store       = (*FSSink)(nil)
	_ Store       = ParfsSink{}
	_ RangeOpener = (*MemSink)(nil)
	_ RangeOpener = (*FSSink)(nil)
	_ RangeOpener = ParfsSink{}
)
