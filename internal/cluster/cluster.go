// Fleet membership and routing: a Cluster knows the static node list,
// probes peers for liveness, and exposes a consistent-hash view over
// the members currently believed alive. Detection is both active
// (periodic /healthz probes) and passive (a failed forward marks the
// peer down immediately), so routing converges at request speed rather
// than probe speed when a node dies mid-stream.
package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// Node is one static fleet member.
type Node struct {
	ID  string `json:"id"`
	URL string `json:"url"` // advertise base URL, e.g. http://host:8080
}

// Config describes the fleet from one node's point of view.
type Config struct {
	// Self is this node's ID; it must appear in Nodes.
	Self string
	// Nodes is the full static membership, including self.
	Nodes []Node
	// VNodes is the virtual nodes per member (<=0 → DefaultVNodes).
	VNodes int
	// ProbeInterval spaces liveness probes (<=0 → 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (<=0 → 1s).
	ProbeTimeout time.Duration
	// FailAfter is the consecutive probe failures before a peer is
	// declared dead (<=0 → 2). Recovery takes one successful probe.
	FailAfter int
	// OnChange, when set, runs after every membership transition (a
	// peer dying or returning). The server hooks job adoption here.
	OnChange func()
	// Client issues probes and forwards; nil uses a per-cluster client
	// with the probe timeout on probes and no timeout on forwards
	// (batch streams are long-lived).
	Client *http.Client
}

// MemberStatus is one node's row in the /v1/cluster report.
type MemberStatus struct {
	ID        string    `json:"id"`
	URL       string    `json:"url"`
	Self      bool      `json:"self,omitempty"`
	Alive     bool      `json:"alive"`
	Share     float64   `json:"share"` // fraction of the hash space owned
	LastProbe time.Time `json:"last_probe,omitzero"`
	Failures  int       `json:"consecutive_failures,omitempty"`
}

// Cluster is one node's live view of the fleet. Create with New, start
// probing with Start, stop with Close.
type Cluster struct {
	cfg    Config
	self   Node
	nodes  []Node // static membership, sorted by ID
	client *http.Client

	mu    sync.Mutex
	down  map[string]int // peer ID -> consecutive failures (>=FailAfter means dead)
	probe map[string]time.Time
	ring  *Ring // over alive members; rebuilt on transitions

	// peerAuth, when set, is stamped on every outbound relay and peer
	// fetch (X-Draid-Peer-Auth) so receivers can tell fleet-internal
	// requests from client ones. Set once at startup via SetPeerAuth,
	// before any traffic.
	peerAuth string

	stop chan struct{}
	wg   sync.WaitGroup
}

// New validates the membership and returns a cluster view with every
// node optimistically alive (probing corrects that within an interval).
func New(cfg Config) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: empty self node ID")
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 2
	}
	seen := make(map[string]bool)
	var self *Node
	nodes := append([]Node(nil), cfg.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for i := range nodes {
		n := nodes[i]
		if n.ID == "" {
			return nil, fmt.Errorf("cluster: node %d has no ID", i)
		}
		if !ValidNodeID(n.ID) {
			return nil, fmt.Errorf("cluster: node ID %q: only letters, digits, '.', '_', '-' allowed", n.ID)
		}
		if seen[n.ID] {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", n.ID)
		}
		seen[n.ID] = true
		if n.URL == "" {
			return nil, fmt.Errorf("cluster: node %s has no URL", n.ID)
		}
		if _, err := url.Parse(n.URL); err != nil {
			return nil, fmt.Errorf("cluster: node %s URL: %w", n.ID, err)
		}
		nodes[i].URL = strings.TrimRight(n.URL, "/")
		if n.ID == cfg.Self {
			self = &nodes[i]
		}
	}
	if self == nil {
		return nil, fmt.Errorf("cluster: self %q not in the node list", cfg.Self)
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	c := &Cluster{
		cfg:    cfg,
		self:   *self,
		nodes:  nodes,
		client: client,
		down:   make(map[string]int),
		probe:  make(map[string]time.Time),
		stop:   make(chan struct{}),
	}
	c.rebuildRing()
	return c, nil
}

// Start launches the background probe loop.
func (c *Cluster) Start() {
	c.wg.Add(1)
	go c.probeLoop()
}

// Close stops probing.
func (c *Cluster) Close() {
	c.mu.Lock()
	select {
	case <-c.stop:
		c.mu.Unlock()
		return
	default:
	}
	close(c.stop)
	c.mu.Unlock()
	c.wg.Wait()
}

// Self returns this node.
func (c *Cluster) Self() Node { return c.self }

// Nodes returns the full static membership, sorted by ID.
func (c *Cluster) Nodes() []Node { return append([]Node(nil), c.nodes...) }

// VNodes returns the virtual nodes per member.
func (c *Cluster) VNodes() int { return c.cfg.VNodes }

// SetOnChange replaces the membership-transition callback. Call it
// before Start and before routing traffic — it is not synchronized
// against in-flight transitions.
func (c *Cluster) SetOnChange(fn func()) { c.cfg.OnChange = fn }

// SetPeerAuth installs the fleet-internal authentication secret
// stamped on outbound relays and peer fetches. The server derives it
// from the shared master key, so every member of one data dir holds
// the same secret and nothing new needs distributing. Call before
// Start, alongside SetOnChange — it is not synchronized either.
func (c *Cluster) SetPeerAuth(secret string) { c.peerAuth = secret }

// ValidNodeID restricts member IDs to a charset safe for embedding in
// job IDs, log file names, and lock file names on the shared dir.
func ValidNodeID(id string) bool {
	if id == "" || id == "." || id == ".." {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// rebuildRing recomputes the ring over alive members. Caller holds mu.
func (c *Cluster) rebuildRing() {
	var alive []string
	for _, n := range c.nodes {
		if c.down[n.ID] < c.cfg.FailAfter {
			alive = append(alive, n.ID)
		}
	}
	c.ring = NewRing(alive, c.cfg.VNodes)
}

// Owner returns the live member owning jobID. With every peer down it
// falls back to self so the fleet degrades to single-node service
// instead of refusing requests.
func (c *Cluster) Owner(jobID string) Node {
	c.mu.Lock()
	id := c.ring.Owner(jobID)
	c.mu.Unlock()
	if id == "" {
		return c.self
	}
	for _, n := range c.nodes {
		if n.ID == id {
			return n
		}
	}
	return c.self
}

// IsLocal reports whether this node owns jobID.
func (c *Cluster) IsLocal(jobID string) bool { return c.Owner(jobID).ID == c.self.ID }

// Alive reports whether a member is currently believed alive.
func (c *Cluster) Alive(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down[id] < c.cfg.FailAfter
}

// MarkDown records a passive failure observation (a forward that could
// not reach the peer), immediately declaring it dead and rebuilding the
// ring. Probes will resurrect it if it comes back.
func (c *Cluster) MarkDown(id string) {
	if id == c.self.ID {
		return
	}
	c.mu.Lock()
	wasAlive := c.down[id] < c.cfg.FailAfter
	c.down[id] = c.cfg.FailAfter
	if wasAlive {
		c.rebuildRing()
	}
	c.mu.Unlock()
	if wasAlive && c.cfg.OnChange != nil {
		c.cfg.OnChange()
	}
}

// markProbe folds one probe result in and reports whether liveness
// flipped.
func (c *Cluster) markProbe(id string, ok bool) bool {
	c.mu.Lock()
	wasAlive := c.down[id] < c.cfg.FailAfter
	if ok {
		c.down[id] = 0
	} else if !wasAlive {
		// Already dead: don't let the counter run away.
		c.down[id] = c.cfg.FailAfter
	} else {
		c.down[id]++
	}
	c.probe[id] = time.Now()
	isAlive := c.down[id] < c.cfg.FailAfter
	if isAlive != wasAlive {
		c.rebuildRing()
	}
	c.mu.Unlock()
	return isAlive != wasAlive
}

func (c *Cluster) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.probeOnce()
		}
	}
}

// probeOnce checks every peer's /healthz concurrently and fires
// OnChange once if any liveness flipped.
func (c *Cluster) probeOnce() {
	var wg sync.WaitGroup
	changed := make([]bool, len(c.nodes))
	for i, n := range c.nodes {
		if n.ID == c.self.ID {
			continue
		}
		wg.Add(1)
		go func(i int, n Node) {
			defer wg.Done()
			changed[i] = c.markProbe(n.ID, c.probeNode(n))
		}(i, n)
	}
	wg.Wait()
	for _, ch := range changed {
		if ch && c.cfg.OnChange != nil {
			c.cfg.OnChange()
			return
		}
	}
}

func (c *Cluster) probeNode(n Node) bool {
	req, err := http.NewRequest(http.MethodGet, n.URL+"/healthz", nil)
	if err != nil {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	resp, err := c.client.Do(req.WithContext(ctx))
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Status snapshots the fleet for /v1/cluster.
func (c *Cluster) Status() []MemberStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	shares := c.ring.Shares()
	out := make([]MemberStatus, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = MemberStatus{
			ID:        n.ID,
			URL:       n.URL,
			Self:      n.ID == c.self.ID,
			Alive:     c.down[n.ID] < c.cfg.FailAfter,
			Share:     shares[n.ID],
			LastProbe: c.probe[n.ID],
			Failures:  c.down[n.ID],
		}
	}
	return out
}

// AliveCount returns how many members are currently believed alive.
func (c *Cluster) AliveCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, node := range c.nodes {
		if c.down[node.ID] < c.cfg.FailAfter {
			n++
		}
	}
	return n
}
