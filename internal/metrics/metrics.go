// Package metrics instruments pipeline stages with wall-clock timing and
// throughput accounting. The curation-time experiment (paper §3.2:
// "scientists spend upwards of 70% of their time on data curation") is
// answered by attributing stage time to categories and reporting shares.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sample is one timed operation.
type Sample struct {
	Stage    string
	Category string // e.g. "curation" vs "compute"
	Duration time.Duration
	Bytes    int64
	Records  int64
}

// Collector accumulates samples; safe for concurrent use.
type Collector struct {
	mu      sync.Mutex
	samples []Sample
	clock   func() time.Time
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{clock: time.Now} }

// SetClock overrides the time source (testing hook).
func (c *Collector) SetClock(clock func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock = clock
}

// Record appends a pre-measured sample.
func (c *Collector) Record(s Sample) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.samples = append(c.samples, s)
}

// Time runs fn, recording its duration under (stage, category) with the
// given data volume, and propagates fn's error.
func (c *Collector) Time(stage, category string, bytes, records int64, fn func() error) error {
	c.mu.Lock()
	clock := c.clock
	c.mu.Unlock()
	start := clock()
	err := fn()
	c.Record(Sample{
		Stage: stage, Category: category,
		Duration: clock().Sub(start), Bytes: bytes, Records: records,
	})
	return err
}

// Samples returns a copy of the recorded samples in record order —
// the per-call view span synthesis needs (ByStage aggregates it away).
func (c *Collector) Samples() []Sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Sample(nil), c.samples...)
}

// StageStats aggregates one stage.
type StageStats struct {
	Stage   string
	Calls   int
	Total   time.Duration
	Bytes   int64
	Records int64
}

// Throughput returns bytes/second over the stage's total time (0 when
// no time elapsed).
func (s StageStats) Throughput() float64 {
	if s.Total <= 0 {
		return 0
	}
	return float64(s.Bytes) / s.Total.Seconds()
}

// RecordsPerSecond returns records/second.
func (s StageStats) RecordsPerSecond() float64 {
	if s.Total <= 0 {
		return 0
	}
	return float64(s.Records) / s.Total.Seconds()
}

// ByStage aggregates samples per stage, sorted by stage name.
func (c *Collector) ByStage() []StageStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	agg := make(map[string]*StageStats)
	for _, s := range c.samples {
		st, ok := agg[s.Stage]
		if !ok {
			st = &StageStats{Stage: s.Stage}
			agg[s.Stage] = st
		}
		st.Calls++
		st.Total += s.Duration
		st.Bytes += s.Bytes
		st.Records += s.Records
	}
	out := make([]StageStats, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// CategoryShare returns each category's fraction of total recorded time.
// This is the instrument behind the "70% curation" claim (E5).
func (c *Collector) CategoryShare() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	totals := make(map[string]time.Duration)
	var grand time.Duration
	for _, s := range c.samples {
		totals[s.Category] += s.Duration
		grand += s.Duration
	}
	out := make(map[string]float64, len(totals))
	if grand <= 0 {
		return out
	}
	for cat, d := range totals {
		out[cat] = float64(d) / float64(grand)
	}
	return out
}

// TotalDuration sums all recorded time.
func (c *Collector) TotalDuration() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total time.Duration
	for _, s := range c.samples {
		total += s.Duration
	}
	return total
}

// Report renders a human-readable per-stage table plus category shares.
func (c *Collector) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %8s %14s %14s %12s\n", "stage", "calls", "time", "MB/s", "rec/s")
	for _, st := range c.ByStage() {
		fmt.Fprintf(&b, "%-24s %8d %14s %14.1f %12.0f\n",
			st.Stage, st.Calls, st.Total.Round(time.Microsecond),
			st.Throughput()/(1024*1024), st.RecordsPerSecond())
	}
	shares := c.CategoryShare()
	cats := make([]string, 0, len(shares))
	for cat := range shares {
		cats = append(cats, cat)
	}
	sort.Strings(cats)
	for _, cat := range cats {
		fmt.Fprintf(&b, "category %-16s %6.1f%%\n", cat, 100*shares[cat])
	}
	return b.String()
}
