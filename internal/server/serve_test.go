// Cross-domain serving tests: the plugin architecture's acceptance
// criteria — every registered domain streams batches, resumes cursors
// across a server restart, reports its wire kind, and the serving tier
// accounts failures and pacing.
package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/domain"
)

// metricValue scrapes one counter from /metrics.
func metricValue(t *testing.T, baseURL, name string) int64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		var v int64
		if _, err := fmt.Sscanf(line, name+" %d", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestAllDomainsStreamAndResumeAcrossRestart is the acceptance path of
// the plugin refactor: POST /v1/jobs then GET /v1/jobs/{id}/batches
// succeeds for all four domains, and a cursor taken mid-stream resumes
// exactly — on a freshly restarted server over the same data dir.
func TestAllDomainsStreamAndResumeAcrossRestart(t *testing.T) {
	dataDir := t.TempDir()
	s1, err := New(Options{Workers: 4, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())

	specs := map[core.Domain]JobSpec{
		core.Climate:   {Domain: core.Climate, Seed: 3, Months: 24, Lat: 16, Lon: 32},
		core.Fusion:    {Domain: core.Fusion, Seed: 3, Shots: 8},
		core.BioHealth: {Domain: core.BioHealth, Seed: 3, Subjects: 16},
		core.Materials: {Domain: core.Materials, Seed: 3, Structures: 16},
	}
	type jobRef struct {
		id       string
		kind     string
		ref      []streamLine
		cursorAt int
	}
	jobs := map[core.Domain]*jobRef{}
	for d, spec := range specs {
		id, err := SubmitAndWait(ts1.URL, spec, 120*time.Second)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		plug, err := domain.Lookup(d)
		if err != nil {
			t.Fatal(err)
		}
		ref := streamFrom(t, ts1.URL+"/v1/jobs/"+id+"/batches?batch_size=2", "")
		if len(ref) < 3 {
			t.Fatalf("%s: only %d batches", d, len(ref))
		}
		for i, line := range ref {
			if line.kind != plug.Codec.Kind() {
				t.Fatalf("%s line %d kind %q, want %q", d, i, line.kind, plug.Codec.Kind())
			}
		}
		jobs[d] = &jobRef{id: id, kind: plug.Codec.Kind(), ref: ref, cursorAt: len(ref) / 2}
	}

	// Kill the server; restart over the same data dir.
	ts1.Close()
	s1.Close()
	s2, err := New(Options{Workers: 2, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	t.Cleanup(s2.Close)

	for d, j := range jobs {
		var st JobStatus
		if code := getJSON(t, ts2.URL+"/v1/jobs/"+j.id, &st); code != http.StatusOK {
			t.Fatalf("%s: restart status %d", d, code)
		}
		if st.State != JobDone || !st.Servable || st.Kind != j.kind {
			t.Fatalf("%s: restart status %+v", d, st)
		}
		// Resume from a mid-stream cursor taken before the restart: the
		// suffix must reproduce the original stream exactly.
		got := streamFrom(t, ts2.URL+"/v1/jobs/"+j.id+"/batches?batch_size=2", j.ref[j.cursorAt].cursor)
		assertSuffix(t, fmt.Sprintf("%s resume across restart", d), got, j.ref[j.cursorAt+1:])
	}
}

// TestServeErrorMetric: a mid-stream shard-read failure emits the
// best-effort NDJSON error line and increments draid_serve_errors_total.
func TestServeErrorMetric(t *testing.T) {
	dataDir := t.TempDir()
	// Cold cache so the stream really reads the (sabotaged) store.
	s, err := New(Options{Workers: 1, DataDir: dataDir, CacheBytes: 0})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)

	id, err := SubmitAndWait(ts.URL, JobSpec{Domain: core.Climate, Seed: 2, Months: 24, Lat: 16, Lon: 32}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st); code != http.StatusOK || st.Shards < 2 {
		t.Fatalf("need >=2 shards to fail mid-stream, have %+v (code %d)", st, code)
	}
	// Delete the last shard file so the stream starts fine and dies
	// partway through.
	entries, err := os.ReadDir(filepath.Join(dataDir, "jobs", id))
	if err != nil {
		t.Fatal(err)
	}
	victim := ""
	for _, e := range entries {
		if !strings.Contains(e.Name(), "MANIFEST") && e.Name() > victim {
			victim = e.Name()
		}
	}
	if victim == "" {
		t.Fatal("no shard file found")
	}
	if err := os.Remove(filepath.Join(dataDir, "jobs", id, victim)); err != nil {
		t.Fatal(err)
	}

	before := metricValue(t, ts.URL, "draid_serve_errors_total")
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/batches?batch_size=4")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<22)
	n := 0
	for {
		m, rerr := resp.Body.Read(body[n:])
		n += m
		if rerr != nil {
			break
		}
	}
	resp.Body.Close()
	if !strings.Contains(string(body[:n]), `"error"`) {
		t.Fatalf("stream of sabotaged job carried no error line:\n%s", body[:n])
	}
	if after := metricValue(t, ts.URL, "draid_serve_errors_total"); after != before+1 {
		t.Fatalf("draid_serve_errors_total %d -> %d, want +1", before, after)
	}
}

// TestServeRateControl: ?max_kbps= paces the stream with a token bucket
// and the throttled-streams counter ticks. The unpaced stream finishes
// the same payload far faster than the paced one.
func TestServeRateControl(t *testing.T) {
	s, err := New(Options{Workers: 1, CacheBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	id, err := SubmitAndWait(ts.URL, JobSpec{Domain: core.Climate, Seed: 2, Months: 36, Lat: 16, Lon: 32}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/v1/jobs/" + id + "/batches?batch_size=1"

	// Unpaced reference: full stream, bytes counted.
	_, _, bytes, err := StreamBatches(url)
	if err != nil {
		t.Fatal(err)
	}
	if s.serveThrottled.Load() != 0 {
		t.Fatal("unpaced stream counted as throttled")
	}
	// Pace at a rate making the nominal full-stream time ~1 second.
	kbps := int(bytes / 1024)
	if kbps < 1 {
		kbps = 1
	}
	start := time.Now()
	_, _, paced, err := StreamBatches(fmt.Sprintf("%s&max_kbps=%d", url, kbps))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if paced != bytes {
		t.Fatalf("paced stream served %d bytes, want %d", paced, bytes)
	}
	// Recompute the pacer's burst; bytes beyond it must take at least
	// half their nominal time (half, to stay robust under scheduler
	// slop in the other direction there is no upper bound to check).
	rate := float64(int64(kbps) << 10)
	burst := rate / 4
	if burst < 4<<10 {
		burst = 4 << 10
	}
	if burst > 256<<10 {
		burst = 256 << 10
	}
	if rem := float64(bytes) - burst; rem > 0 {
		minTime := time.Duration(rem / rate / 2 * float64(time.Second))
		if elapsed < minTime {
			t.Fatalf("paced stream of %d bytes at %d KiB/s finished in %s (< %s)", bytes, kbps, elapsed, minTime)
		}
	} else {
		t.Fatalf("stream too small (%d bytes) to exercise pacing beyond the %d-byte burst", bytes, int64(burst))
	}
	if s.serveThrottled.Load() == 0 {
		t.Fatal("paced stream not counted in draid_serve_throttled_total")
	}

	// The server-wide ceiling clamps client requests above it.
	s2, err := New(Options{Workers: 1, ServeMaxKBps: kbps})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	t.Cleanup(s2.Close)
	id2, err := SubmitAndWait(ts2.URL, JobSpec{Domain: core.Climate, Seed: 2, Months: 36, Lat: 16, Lon: 32}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Ask for 100x the ceiling; the server must still pace.
	if _, _, _, err := StreamBatches(fmt.Sprintf("%s/v1/jobs/%s/batches?batch_size=1&max_kbps=%d", ts2.URL, id2, kbps*100)); err != nil {
		t.Fatal(err)
	}
	if s2.serveThrottled.Load() == 0 {
		t.Fatal("server-wide ceiling did not pace a greedy client")
	}

	// Malformed pacing values are rejected.
	resp, err := http.Get(url + "&max_kbps=-3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative max_kbps accepted with %d", resp.StatusCode)
	}

	// An absurd rate must not overflow into a negative bucket: the
	// stream runs unpaced and the throttled counter stays put.
	throttledBefore := s.serveThrottled.Load()
	if _, _, _, err := StreamBatches(url + "&max_kbps=9223372036854775807"); err != nil {
		t.Fatal(err)
	}
	if got := s.serveThrottled.Load(); got != throttledBefore {
		t.Fatalf("overflow max_kbps ticked draid_serve_throttled_total (%d -> %d)", throttledBefore, got)
	}
}

// TestServeBenchAllCodecs is the bench smoke: every registered domain
// streams through the benchmark harness under the mem backend.
func TestServeBenchAllCodecs(t *testing.T) {
	for _, plug := range domain.Plugins() {
		res, err := RunServeBenchmark(ServeBenchConfig{
			Clients: 2, BatchSize: 8, Passes: 1, Domain: plug.Domain})
		if err != nil {
			t.Fatalf("%s: %v", plug.Domain, err)
		}
		if res.Batches == 0 || res.Samples == 0 || res.Bytes == 0 {
			t.Fatalf("%s: empty bench result %+v", plug.Domain, res)
		}
		if res.Kind != plug.Codec.Kind() || res.Domain != string(plug.Domain) {
			t.Fatalf("%s: result not tagged: %+v", plug.Domain, res)
		}
	}
}
