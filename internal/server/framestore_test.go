// Acceptance tests for the disk tier of the zero-copy frame path:
// fully-cold frame streams served from shard sidecars must be
// byte-identical to encode-per-request, make zero codec calls, lazily
// backfill sidecars for replayed pre-sidecar jobs, and survive torn or
// corrupt sidecars by falling back — never by serving bad bytes.
package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/domain"
)

// buildJobs runs one job per spec on a fresh server over dataDir and
// returns the job IDs. The server is closed before returning, so the
// shard sets (and, unless disableStore, their sidecars) are on disk.
func buildJobs(t *testing.T, dataDir string, disableStore bool, specs []JobSpec) []string {
	t.Helper()
	s, err := New(Options{Workers: 4, DataDir: dataDir, CacheBytes: 32 << 20, DisableFrameStore: disableStore})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer s.Close()
	defer ts.Close()
	ids := make([]string, len(specs))
	for i, spec := range specs {
		id, err := SubmitAndWait(ts.URL, spec, 120*time.Second)
		if err != nil {
			t.Fatalf("%s: %v", spec.Domain, err)
		}
		ids[i] = id
	}
	return ids
}

// sidecarFiles lists the .fpay objects (sealed or not) under a job's
// shard directory.
func sidecarFiles(t *testing.T, dataDir, id string) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dataDir, "jobs", id))
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.Contains(e.Name(), domain.SidecarSuffix) {
			out = append(out, e.Name())
		}
	}
	return out
}

// TestFrameDiskByteExact is the disk tier's wire-invisibility proof:
// for every codec — including the sealed bio domain, whose sidecars
// are encrypted under the per-job key — a fully-cold frame stream
// served from sidecars is byte-identical to the encode-per-request
// reference, across batch sizes, cursor resume, and ?max_kbps= pacing.
func TestFrameDiskByteExact(t *testing.T) {
	dataDir := t.TempDir()
	ids := buildJobs(t, dataDir, false, []JobSpec{
		{Domain: core.Climate, Seed: 3, Months: 24, Lat: 16, Lon: 32},
		{Domain: core.Fusion, Seed: 3, Shots: 8},
		{Domain: core.Materials, Seed: 3, Structures: 16},
		{Domain: core.BioHealth, Seed: 3, Subjects: 16},
	})
	doms := []core.Domain{core.Climate, core.Fusion, core.Materials, core.BioHealth}
	for i, id := range ids {
		if len(sidecarFiles(t, dataDir, id)) == 0 {
			t.Fatalf("%s: job completed without sidecars on disk", doms[i])
		}
	}

	// Reference bytes from a replay server with the frame store off —
	// a true encode-per-request server.
	ref, err := New(Options{Workers: 2, DataDir: dataDir, CacheBytes: 32 << 20, DisableFrameStore: true})
	if err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(ref.Handler())
	type refStreams struct {
		full   []byte // batch_size=2
		odd    []byte // batch_size=3
		cursor string // mid-stream resume point
		resume []byte // batch_size=2 from cursor
	}
	refs := make([]refStreams, len(ids))
	for i, id := range ids {
		url := refTS.URL + "/v1/jobs/" + id + "/batches"
		refs[i].full = rawFrameStream(t, url+"?batch_size=2")
		refs[i].odd = rawFrameStream(t, url+"?batch_size=3")
		cursors := frameCursors(t, refs[i].full)
		if len(cursors) < 3 {
			t.Fatalf("%s: only %d batches", doms[i], len(cursors))
		}
		refs[i].cursor = cursors[len(cursors)/2]
		refs[i].resume = rawFrameStream(t, url+"?batch_size=2&cursor="+refs[i].cursor)
	}
	if hits := ref.metrics.frameStoreHits.Value(); hits != 0 {
		t.Fatalf("DisableFrameStore server recorded %v sidecar hits", hits)
	}
	refTS.Close()
	ref.Close()

	// The disk server runs with both caches off: every stream below is
	// fully cold and must be served from the sidecars.
	disk, err := New(Options{Workers: 2, DataDir: dataDir, CacheBytes: 0})
	if err != nil {
		t.Fatal(err)
	}
	diskTS := httptest.NewServer(disk.Handler())
	t.Cleanup(diskTS.Close)
	t.Cleanup(disk.Close)

	for i, id := range ids {
		dom := doms[i]
		url := diskTS.URL + "/v1/jobs/" + id + "/batches"
		if got := rawFrameStream(t, url+"?batch_size=2"); !bytes.Equal(got, refs[i].full) {
			t.Fatalf("%s: disk-served stream differs from reference (%d vs %d bytes)", dom, len(got), len(refs[i].full))
		}
		if got := rawFrameStream(t, url+"?batch_size=3"); !bytes.Equal(got, refs[i].odd) {
			t.Fatalf("%s: batch_size=3 disk-served stream differs from reference", dom)
		}
		if got := rawFrameStream(t, url+"?batch_size=2&cursor="+refs[i].cursor); !bytes.Equal(got, refs[i].resume) {
			t.Fatalf("%s: resumed disk-served stream differs from reference", dom)
		}
		kbps := len(refs[i].full)/1024 + 1
		if got := rawFrameStream(t, fmt.Sprintf("%s?batch_size=2&max_kbps=%d", url, kbps)); !bytes.Equal(got, refs[i].full) {
			t.Fatalf("%s: paced disk-served stream differs from reference", dom)
		}
	}
	if hits := disk.metrics.frameStoreHits.Value(); hits == 0 {
		t.Fatal("no stream was sidecar-served")
	}
	if misses := disk.metrics.frameStoreMisses.Value(); misses != 0 {
		t.Fatalf("%v sidecar misses on a fully-sidecared job set", misses)
	}
	if errs := disk.metrics.frameStoreErrors.Value(); errs != 0 {
		t.Fatalf("%v sidecar errors on pristine sidecars", errs)
	}
}

// countingCodec wraps a real codec and counts every Encode/Decode-side
// call, so a test can prove a serving path never touched the codec.
type countingCodec struct {
	domain.Codec
	calls atomic.Int64
}

func (c *countingCodec) Decode(rec []byte) (any, int64, error) {
	c.calls.Add(1)
	return c.Codec.Decode(rec)
}

func (c *countingCodec) Line(h domain.BatchHeader, recs []any) (any, error) {
	c.calls.Add(1)
	return c.Codec.Line(h, recs)
}

func (c *countingCodec) AppendFramePayload(buf []byte, recs []any) ([]byte, error) {
	c.calls.Add(1)
	return c.Codec.AppendFramePayload(buf, recs)
}

func (c *countingCodec) DecodeFramePayload(payload []byte, count int) ([]any, error) {
	c.calls.Add(1)
	return c.Codec.DecodeFramePayload(payload, count)
}

// TestFrameDiskZeroCodecCalls pins the acceptance criterion directly:
// a fully-cold frame stream over a job with sidecars performs zero
// codec Encode/Decode calls on the serving path. The fusion plugin's
// codec is swapped for a counting wrapper after the job is built, so
// any decode, line build, or payload encode during serving trips the
// counter.
func TestFrameDiskZeroCodecCalls(t *testing.T) {
	dataDir := t.TempDir()
	id := buildJobs(t, dataDir, false, []JobSpec{{Domain: core.Fusion, Seed: 4, Shots: 8}})[0]

	plug, err := domain.Lookup(core.Fusion)
	if err != nil {
		t.Fatal(err)
	}
	counting := &countingCodec{Codec: plug.Codec}
	wrapped := plug
	wrapped.Codec = counting
	if err := domain.Register(wrapped); err != nil {
		t.Fatal(err)
	}
	defer domain.Register(plug)

	s, err := New(Options{Workers: 2, DataDir: dataDir, CacheBytes: 0})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)

	url := ts.URL + "/v1/jobs/" + id + "/batches?batch_size=3"
	stream := rawFrameStream(t, url)
	if len(stream) == 0 {
		t.Fatal("empty frame stream")
	}
	if n := counting.calls.Load(); n != 0 {
		t.Fatalf("cold sidecar-served frame stream made %d codec calls, want 0", n)
	}
	if hits := s.metrics.frameStoreHits.Value(); hits == 0 {
		t.Fatal("stream was not sidecar-served")
	}
	// Sanity: the counter does trip on paths that must use the codec.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/batches?batch_size=3")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if counting.calls.Load() == 0 {
		t.Fatal("NDJSON stream made no codec calls — counting codec is not wired in")
	}
}

// TestSidecarBackfillReplayedJobs: a job built before the disk tier
// existed (simulated with DisableFrameStore) has no sidecars; the
// first frame access on a current server backfills them, and the next
// cold stream is served from disk.
func TestSidecarBackfillReplayedJobs(t *testing.T) {
	dataDir := t.TempDir()
	id := buildJobs(t, dataDir, true, []JobSpec{{Domain: core.Materials, Seed: 5, Structures: 16}})[0]
	if files := sidecarFiles(t, dataDir, id); len(files) != 0 {
		t.Fatalf("DisableFrameStore build still wrote sidecars: %v", files)
	}

	s, err := New(Options{Workers: 2, DataDir: dataDir, CacheBytes: 0})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)

	url := ts.URL + "/v1/jobs/" + id + "/batches?batch_size=2"
	first := rawFrameStream(t, url)
	if v := s.metrics.frameStoreMisses.Value(); v == 0 {
		t.Fatal("first stream over a sidecar-less job recorded no misses")
	}
	if v := s.metrics.frameStoreBackfills.Value(); v == 0 {
		t.Fatal("first frame access did not backfill sidecars")
	}
	if files := sidecarFiles(t, dataDir, id); len(files) == 0 {
		t.Fatal("no .fpay files on disk after backfill")
	}
	hitsBefore := s.metrics.frameStoreHits.Value()
	second := rawFrameStream(t, url)
	if !bytes.Equal(first, second) {
		t.Fatal("backfilled stream differs from the encode-per-request stream")
	}
	if v := s.metrics.frameStoreHits.Value(); v <= hitsBefore {
		t.Fatal("second stream was not served from the backfilled sidecars")
	}
}

// TestSidecarCorruptionFallback: torn, bit-flipped, or deleted
// sidecars must never surface on the wire — streams stay byte-exact
// via decode+encode fallback, and the error counter records each
// rejected sidecar. A deleted sidecar counts as absent and is lazily
// re-backfilled.
func TestSidecarCorruptionFallback(t *testing.T) {
	dataDir := t.TempDir()
	id := buildJobs(t, dataDir, false, []JobSpec{{Domain: core.Fusion, Seed: 6, Shots: 8}})[0]
	jobDir := filepath.Join(dataDir, "jobs", id)
	files := sidecarFiles(t, dataDir, id)
	if len(files) == 0 {
		t.Fatal("no sidecars on disk")
	}
	pristine := make(map[string][]byte, len(files))
	for _, f := range files {
		b, err := os.ReadFile(filepath.Join(jobDir, f))
		if err != nil {
			t.Fatal(err)
		}
		pristine[f] = b
	}

	ref, err := New(Options{Workers: 2, DataDir: dataDir, CacheBytes: 32 << 20, DisableFrameStore: true})
	if err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(ref.Handler())
	want := rawFrameStream(t, refTS.URL+"/v1/jobs/"+id+"/batches?batch_size=2")
	refTS.Close()
	ref.Close()

	corrupt := map[string]func(b []byte) []byte{
		"bitflip":  func(b []byte) []byte { m := append([]byte(nil), b...); m[len(m)/2] ^= 0x01; return m },
		"truncate": func(b []byte) []byte { return b[:len(b)*2/3] },
		"deleted":  nil, // removed from disk instead of rewritten
	}
	// Each corruption mode runs against both cold serving modes: direct
	// sidecar streaming (no caches) and frame-cache fill.
	caches := map[string]Options{
		"disk":  {Workers: 2, DataDir: dataDir, CacheBytes: 0},
		"cache": {Workers: 2, DataDir: dataDir, CacheBytes: 32 << 20, FrameCacheBytes: 64 << 20},
	}
	for mode, mutate := range corrupt {
		for cacheName, opts := range caches {
			t.Run(mode+"/"+cacheName, func(t *testing.T) {
				for f, b := range pristine {
					if mutate == nil {
						if err := os.Remove(filepath.Join(jobDir, f)); err != nil {
							t.Fatal(err)
						}
						continue
					}
					if err := os.WriteFile(filepath.Join(jobDir, f), mutate(b), 0o644); err != nil {
						t.Fatal(err)
					}
				}
				t.Cleanup(func() {
					for f, b := range pristine {
						if err := os.WriteFile(filepath.Join(jobDir, f), b, 0o644); err != nil {
							t.Fatal(err)
						}
					}
				})
				s, err := New(opts)
				if err != nil {
					t.Fatal(err)
				}
				ts := httptest.NewServer(s.Handler())
				t.Cleanup(ts.Close)
				t.Cleanup(s.Close)
				got := rawFrameStream(t, ts.URL+"/v1/jobs/"+id+"/batches?batch_size=2")
				if !bytes.Equal(got, want) {
					t.Fatalf("stream over %s sidecars differs from reference (%d vs %d bytes)", mode, len(got), len(want))
				}
				if mode == "deleted" {
					// Absent means lost, not corrupt: lazily rebuilt.
					if v := s.metrics.frameStoreBackfills.Value(); v == 0 {
						t.Fatal("deleted sidecars were not backfilled")
					}
				} else if v := s.metrics.frameStoreErrors.Value(); v == 0 {
					t.Fatalf("%s sidecars were served without tripping the error counter", mode)
				}
			})
		}
	}
}
