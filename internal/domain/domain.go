// Package domain is the plugin seam between the archetype pipelines and
// the draid serving tier. Each surveyed domain registers one Plugin:
// how to synthesize a scale-controlled input from a job spec and build
// the registry pipeline over a shard sink, how to pull the durable
// shard manifest out of the finished product, how to wrap the shard
// read path with a per-job secret, and a Codec that turns shard records
// into typed wire batches. The serving tier programs against this
// package only — it never type-switches on core.Domain or on a
// pipeline's product type.
package domain

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/shard"
)

// Spec is a serving-tier job submission: which domain template to run
// and how large a synthetic input to prepare. Zero-valued knobs pick
// per-domain defaults sized for interactive turnaround.
type Spec struct {
	Domain core.Domain `json:"domain"`
	Name   string      `json:"name,omitempty"`
	Seed   int64       `json:"seed,omitempty"`
	// Climate: source grid before regridding.
	Months int `json:"months,omitempty"`
	Lat    int `json:"lat,omitempty"`
	Lon    int `json:"lon,omitempty"`
	// Fusion.
	Shots int `json:"shots,omitempty"`
	// Bio/health.
	Subjects int `json:"subjects,omitempty"`
	SeqLen   int `json:"seq_len,omitempty"`
	// Materials.
	Structures int `json:"structures,omitempty"`
}

// Scale-knob ceilings: submissions are unauthenticated, so a single
// oversized spec must not be able to allocate the server to death.
const (
	maxMonths     = 1200
	maxGridDim    = 512
	maxShots      = 256
	maxSubjects   = 5000
	maxSeqLen     = 100000
	maxStructures = 5000
)

// Validate rejects specs whose synthetic input would exceed the
// per-job resource ceilings.
func (s Spec) Validate() error {
	check := func(name string, v, max int) error {
		if v > max {
			return fmt.Errorf("domain: %s=%d exceeds limit %d", name, v, max)
		}
		if v < 0 {
			return fmt.Errorf("domain: %s=%d must not be negative", name, v)
		}
		return nil
	}
	for _, c := range []struct {
		name   string
		v, max int
	}{
		{"months", s.Months, maxMonths},
		{"lat", s.Lat, maxGridDim},
		{"lon", s.Lon, maxGridDim},
		{"shots", s.Shots, maxShots},
		{"subjects", s.Subjects, maxSubjects},
		{"seq_len", s.SeqLen, maxSeqLen},
		{"structures", s.Structures, maxStructures},
	} {
		if err := check(c.name, c.v, c.max); err != nil {
			return err
		}
	}
	return nil
}

// Run is one instantiated pipeline execution: the pipeline, the
// synthesized dataset it will consume, and the per-job secret (if the
// domain seals its shards) the caller must persist to reopen them.
type Run struct {
	Pipeline *pipeline.Pipeline
	Dataset  *pipeline.Dataset
	// Key is the per-job shard secret (nil for domains whose shards
	// rest in plaintext). The serving tier seals it into its job log.
	Key []byte
}

// BatchHeader is the envelope of every streamed NDJSON batch line. The
// cursor names the position after the batch; kind names the payload
// schema that follows, so clients pick a decoder without probing.
type BatchHeader struct {
	Batch  int    `json:"batch"`
	Cursor string `json:"cursor"`
	Kind   string `json:"kind"`
}

// Codec decodes one domain's shard records into wire records and
// assembles them into NDJSON batch lines or binary frame payloads —
// both wire formats serve the same decoded records.
type Codec interface {
	// Kind names the wire payload schema ("samples", "fusion_windows",
	// "materials_graphs").
	Kind() string
	// Decode parses one shard record into an opaque wire record and
	// reports its decoded in-memory size for cache accounting.
	Decode(rec []byte) (any, int64, error)
	// Line builds one marshalable NDJSON batch line from records
	// previously produced by Decode.
	Line(h BatchHeader, recs []any) (any, error)
	// AppendFramePayload appends the records' packed little-endian
	// binary frame payload (see frames.go for the per-kind layout).
	AppendFramePayload(buf []byte, recs []any) ([]byte, error)
	// DecodeFramePayload parses exactly count records back out of a
	// frame payload, consuming it fully. It must tolerate hostile
	// input: every length is validated before allocation.
	DecodeFramePayload(payload []byte, count int) ([]any, error)
}

// Plugin wires one domain into the serving tier.
type Plugin struct {
	Domain core.Domain
	// Build synthesizes the spec-scale input and instantiates the
	// domain's registry pipeline over sink.
	Build func(spec Spec, sink shard.Sink) (*Run, error)
	// Manifest extracts the durable shard manifest from the completed
	// dataset's product.
	Manifest func(ds *pipeline.Dataset) (*shard.Manifest, error)
	// WrapOpener wraps the raw store read path with the per-job key
	// (nil when the domain stores plaintext shards; then the identity
	// is used).
	WrapOpener func(open shard.Opener, key []byte) shard.Opener
	// WrapSink is WrapOpener's write-path mirror: it wraps a raw sink
	// so late-written objects (frame sidecars) are sealed under the
	// same per-job key as the shards themselves (nil for plaintext
	// domains).
	WrapSink func(sink shard.Sink, key []byte) shard.Sink
	// SealedSuffix is appended to manifest shard names to obtain the
	// stored object name when the job has a key ("" for plaintext).
	SealedSuffix string
	// Codec translates this domain's shard records to the wire.
	Codec Codec
}

// StoredName maps a manifest shard name to its on-store object name.
func (p Plugin) StoredName(name string, sealed bool) string {
	if sealed {
		return name + p.SealedSuffix
	}
	return name
}

// Opener returns the read path over a job's shard store: the identity
// for plaintext domains, the key-wrapping opener otherwise.
func (p Plugin) Opener(open shard.Opener, key []byte) shard.Opener {
	if p.WrapOpener == nil || key == nil {
		return open
	}
	return p.WrapOpener(open, key)
}

// Sink returns the write path over a job's shard store: the identity
// for plaintext domains, the key-wrapping (sealing) sink otherwise.
func (p Plugin) Sink(sink shard.Sink, key []byte) shard.Sink {
	if p.WrapSink == nil || key == nil {
		return sink
	}
	return p.WrapSink(sink, key)
}

var (
	mu      sync.RWMutex
	plugins = map[core.Domain]Plugin{}
)

// Register installs a plugin, replacing any previous one for the domain.
func Register(p Plugin) error {
	if p.Domain == "" || p.Build == nil || p.Manifest == nil || p.Codec == nil {
		return fmt.Errorf("domain: plugin needs a domain, builder, manifest extractor, and codec")
	}
	mu.Lock()
	defer mu.Unlock()
	plugins[p.Domain] = p
	return nil
}

// Lookup retrieves a domain's plugin.
func Lookup(d core.Domain) (Plugin, error) {
	mu.RLock()
	defer mu.RUnlock()
	p, ok := plugins[d]
	if !ok {
		return Plugin{}, fmt.Errorf("domain: no plugin for domain %q", d)
	}
	return p, nil
}

// Plugins lists registered plugins sorted by domain.
func Plugins() []Plugin {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Plugin, 0, len(plugins))
	for _, p := range plugins {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}
