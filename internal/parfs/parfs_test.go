package parfs

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/shard"
)

// fastFS returns an FS whose sleeps are no-ops but still accounted,
// making timing-related tests deterministic.
func fastFS(t *testing.T, cfg Config) *FS {
	t.Helper()
	fs, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs.SetSleep(func(time.Duration) {})
	return fs
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{OSTs: 0, StripeSize: 1, BandwidthMBps: 1},
		{OSTs: 1, StripeSize: 0, BandwidthMBps: 1},
		{OSTs: 1, StripeSize: 1, BandwidthMBps: 0},
		{OSTs: 1, StripeSize: 1, BandwidthMBps: 1, LatencyMicros: -1},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Fatalf("config %d should fail: %+v", i, c)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := fastFS(t, Config{OSTs: 4, StripeSize: 16, BandwidthMBps: 1000})
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i)
	}
	if err := fs.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestReadMissing(t *testing.T) {
	fs := fastFS(t, DefaultConfig())
	if _, err := fs.ReadFile("nope"); err == nil {
		t.Fatal("want not-found error")
	}
}

func TestOverwrite(t *testing.T) {
	fs := fastFS(t, DefaultConfig())
	if err := fs.WriteFile("f", []byte("old-longer-content")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("f", []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("f")
	if string(got) != "new" {
		t.Fatalf("got %q", got)
	}
}

func TestEmptyFileAndName(t *testing.T) {
	fs := fastFS(t, DefaultConfig())
	if err := fs.WriteFile("", nil); err == nil {
		t.Fatal("want name error")
	}
	if err := fs.WriteFile("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("got=%v err=%v", got, err)
	}
}

func TestExistsAndList(t *testing.T) {
	fs := fastFS(t, DefaultConfig())
	_ = fs.WriteFile("b", []byte("1"))
	_ = fs.WriteFile("a", []byte("2"))
	if !fs.Exists("a") || fs.Exists("c") {
		t.Fatal("exists wrong")
	}
	l := fs.List()
	if len(l) != 2 || l[0] != "a" || l[1] != "b" {
		t.Fatalf("list=%v", l)
	}
}

func TestStatsAccounting(t *testing.T) {
	fs := fastFS(t, Config{OSTs: 2, StripeSize: 10, BandwidthMBps: 1, LatencyMicros: 100})
	if err := fs.WriteFile("f", make([]byte, 35)); err != nil { // 4 chunks
		t.Fatal(err)
	}
	s := fs.Stats()
	if s.Ops != 4 {
		t.Fatalf("ops=%d", s.Ops)
	}
	if s.Bytes != 35 {
		t.Fatalf("bytes=%d", s.Bytes)
	}
	if s.BusyTime <= 0 || s.MaxOSTBusy <= 0 || s.MaxOSTBusy > s.BusyTime {
		t.Fatalf("busy=%v max=%v", s.BusyTime, s.MaxOSTBusy)
	}
}

func TestStripingSpreadsAcrossOSTs(t *testing.T) {
	fs := fastFS(t, Config{OSTs: 4, StripeSize: 10, BandwidthMBps: 1000})
	if err := fs.WriteFile("f", make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	busyOSTs := 0
	for _, o := range fs.osts {
		if o.ops > 0 {
			busyOSTs++
		}
	}
	if busyOSTs != 4 {
		t.Fatalf("striping touched %d/4 OSTs", busyOSTs)
	}
}

func TestChunkCostScalesWithSize(t *testing.T) {
	fs := fastFS(t, Config{OSTs: 1, StripeSize: 1 << 20, BandwidthMBps: 100, LatencyMicros: 10})
	small := fs.chunkCost(1024)
	big := fs.chunkCost(1 << 20)
	if big <= small {
		t.Fatalf("cost not monotone: %v vs %v", small, big)
	}
}

func TestConcurrentWritersSafe(t *testing.T) {
	fs := fastFS(t, Config{OSTs: 4, StripeSize: 64, BandwidthMBps: 10000})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i))
			data := bytes.Repeat([]byte{byte(i)}, 500)
			if err := fs.WriteFile(name, data); err != nil {
				t.Error(err)
				return
			}
			got, err := fs.ReadFile(name)
			if err != nil || !bytes.Equal(got, data) {
				t.Errorf("file %s corrupted", name)
			}
		}(i)
	}
	wg.Wait()
	if len(fs.List()) != 16 {
		t.Fatalf("files=%d", len(fs.List()))
	}
}

func TestParallelWritersOverlapRealTime(t *testing.T) {
	// With real sleeps: 4 writers to a 4-OST FS should take well under
	// 4x one writer's time (overlap across OSTs).
	cfg := Config{OSTs: 4, StripeSize: 1 << 16, BandwidthMBps: 50, LatencyMicros: 0}
	mk := func() *FS {
		fs, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}
	payload := make([]byte, 1<<20) // ~20ms serial at 50 MiB/s

	serial := mk()
	start := time.Now()
	for i := 0; i < 4; i++ {
		if err := serial.WriteFile(string(rune('a'+i)), payload); err != nil {
			t.Fatal(err)
		}
	}
	serialTime := time.Since(start)

	par := mk()
	start = time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := par.WriteFile(string(rune('a'+i)), payload); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	parTime := time.Since(start)

	if parTime >= serialTime {
		t.Fatalf("no overlap: parallel %v vs serial %v", parTime, serialTime)
	}
}

func TestShardSinkAdapter(t *testing.T) {
	fs := fastFS(t, DefaultConfig())
	w, err := shard.NewWriter(fs, shard.Options{Prefix: "train", TargetBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := w.Write(bytes.Repeat([]byte{byte(i)}, 50)); err != nil {
			t.Fatal(err)
		}
	}
	m, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) < 2 {
		t.Fatalf("shards=%d", len(m.Shards))
	}
	n := 0
	if err := shard.ReadAll(fs, m, func(string, []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("read %d records", n)
	}
}

func TestCreateDuplicateAndEmpty(t *testing.T) {
	fs := fastFS(t, DefaultConfig())
	w, err := fs.Create("s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("s"); err == nil {
		t.Fatal("want duplicate error")
	}
	if _, err := fs.Create(""); err == nil {
		t.Fatal("want empty-name error")
	}
	// Write after close rejected.
	if _, err := w.Write([]byte("y")); err == nil {
		t.Fatal("want write-after-close error")
	}
	// Double close is a no-op.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenAdapter(t *testing.T) {
	fs := fastFS(t, DefaultConfig())
	if err := fs.WriteFile("x", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	rc, err := fs.Open("x")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	if err != nil || string(got) != "hello" {
		t.Fatalf("got=%q err=%v", got, err)
	}
	if _, err := fs.Open("missing"); err == nil {
		t.Fatal("want not-found error")
	}
}

func BenchmarkParfsStriping(b *testing.B) {
	payload := make([]byte, 4<<20)
	for _, osts := range []int{1, 2, 4, 8} {
		b.Run(string(rune('0'+osts))+"osts", func(b *testing.B) {
			fs, err := New(Config{OSTs: osts, StripeSize: 1 << 20, BandwidthMBps: 8192, LatencyMicros: 20})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := fs.WriteFile("f", payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestSubNamespacesShareOneFS(t *testing.T) {
	fs, err := New(Config{OSTs: 4, StripeSize: 64, BandwidthMBps: 1 << 20, LatencyMicros: 0})
	if err != nil {
		t.Fatal(err)
	}
	fs.SetSleep(func(time.Duration) {})
	a, b := fs.Sub("jobs/a"), fs.Sub("jobs/b")

	write := func(sub *SubFS, name, data string) {
		t.Helper()
		w, err := sub.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write([]byte(data)); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Same shard name under two prefixes must not collide.
	write(a, "shard-0", "alpha")
	write(b, "shard-0", "beta")

	if got := a.List(); len(got) != 1 || got[0] != "shard-0" {
		t.Fatalf("a.List() = %v", got)
	}
	if got := fs.List(); len(got) != 2 {
		t.Fatalf("root List() = %v, want both prefixed files", got)
	}
	rc, err := b.Open("shard-0")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(rc)
	rc.Close()
	if string(data) != "beta" {
		t.Fatalf("b/shard-0 = %q", data)
	}
	if a.Size("shard-0") != 5 || a.Size("missing") != 0 {
		t.Fatalf("Size through Sub wrong: %d", a.Size("shard-0"))
	}
	// A second view of the same prefix sees the same files — the
	// failover handle for a surviving node adopting a dead node's jobs.
	if got := fs.Sub("jobs/a").Size("shard-0"); got != 5 {
		t.Fatalf("re-mounted prefix Size = %d, want 5", got)
	}
}
