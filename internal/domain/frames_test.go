package domain

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/loader"
)

// frameFixtures returns, per codec, shard-encoded records the way each
// domain's shard stage writes them.
func frameFixtures(t *testing.T) map[string][][]byte {
	t.Helper()
	return map[string][][]byte{
		KindSamples: {
			(&loader.Sample{Features: []float32{1.5, -2.25, 0}, Label: 3}).Encode(),
			(&loader.Sample{Features: []float32{0.125}, Label: -1}).Encode(),
			(&loader.Sample{Features: []float32{}, Label: 0}).Encode(),
		},
		KindFusionWindows: {
			fusionExample([]float32{0.5, -1, 2.75}, 42, 25, 1, 0.3),
			fusionExample([]float32{9}, -7, 0, 0, 1.25),
		},
		KindMaterialsGraphs: {
			materialsRecord(t, 3, 2, [][2]int{{0, 1}, {1, 2}}, -7.25, 1),
			materialsRecord(t, 1, 1, nil, 0, 0),
		},
	}
}

// TestFrameRoundTrip: for every codec, shard records decoded then
// framed then frame-decoded reproduce the records and the header.
func TestFrameRoundTrip(t *testing.T) {
	for kind, raws := range frameFixtures(t) {
		codec, ok := CodecByKind(kind)
		if !ok {
			t.Fatalf("no codec for kind %q", kind)
		}
		var recs []any
		for _, raw := range raws {
			r, _, err := codec.Decode(raw)
			if err != nil {
				t.Fatalf("%s: decode: %v", kind, err)
			}
			recs = append(recs, r)
		}
		h := BatchHeader{Batch: 7, Cursor: "3:12", Kind: kind}
		frame, err := EncodeFrame(codec, h, recs)
		if err != nil {
			t.Fatalf("%s: encode frame: %v", kind, err)
		}
		gotH, gotRecs, rest, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("%s: decode frame: %v", kind, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%s: %d trailing bytes", kind, len(rest))
		}
		if gotH != h {
			t.Fatalf("%s: header %+v, want %+v", kind, gotH, h)
		}
		if !reflect.DeepEqual(gotRecs, recs) {
			t.Fatalf("%s: records differ:\n got %#v\nwant %#v", kind, gotRecs, recs)
		}
		// Two concatenated frames parse in sequence.
		double := append(append([]byte{}, frame...), frame...)
		_, _, rest, err = DecodeFrame(double)
		if err != nil || len(rest) != len(frame) {
			t.Fatalf("%s: concatenated frames: rest=%d err=%v", kind, len(rest), err)
		}
	}
}

// TestFrameNDJSONEquivalence is the cross-format acceptance proof:
// frame decode == NDJSON decode record-for-record. Both emissions are
// built from the same decoded records; pushing the frame-decoded
// records back through the NDJSON line builder must reproduce the
// original NDJSON line byte-for-byte.
func TestFrameNDJSONEquivalence(t *testing.T) {
	for kind, raws := range frameFixtures(t) {
		codec, _ := CodecByKind(kind)
		var recs []any
		for _, raw := range raws {
			r, _, err := codec.Decode(raw)
			if err != nil {
				t.Fatal(err)
			}
			recs = append(recs, r)
		}
		h := BatchHeader{Batch: 0, Cursor: "1:0", Kind: kind}
		line, err := codec.Line(h, recs)
		if err != nil {
			t.Fatal(err)
		}
		ndjson, err := json.Marshal(line)
		if err != nil {
			t.Fatal(err)
		}
		frame, err := EncodeFrame(codec, h, recs)
		if err != nil {
			t.Fatal(err)
		}
		_, frameRecs, _, err := DecodeFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(frameRecs, recs) {
			t.Fatalf("%s: frame records != shard-decoded records", kind)
		}
		line2, err := codec.Line(h, frameRecs)
		if err != nil {
			t.Fatal(err)
		}
		ndjson2, err := json.Marshal(line2)
		if err != nil {
			t.Fatal(err)
		}
		if string(ndjson) != string(ndjson2) {
			t.Fatalf("%s: NDJSON from frame-decoded records differs:\n %s\n %s", kind, ndjson, ndjson2)
		}
	}
}

// TestFramePayloadConcatenation pins the invariant the encoded-frame
// shard cache is built on: for every codec, a batch payload is exactly
// the concatenation of its single-record payloads, so a cached
// per-record encoding can be range-sliced into any batch and stay
// byte-identical to encoding that batch directly. A codec that adds
// batch-level payload state (a count prefix, inter-record framing,
// compression across records) breaks zero-copy serving and must fail
// here.
func TestFramePayloadConcatenation(t *testing.T) {
	for kind, raws := range frameFixtures(t) {
		codec, _ := CodecByKind(kind)
		var recs []any
		for _, raw := range raws {
			r, _, err := codec.Decode(raw)
			if err != nil {
				t.Fatal(err)
			}
			recs = append(recs, r)
		}

		batch, err := codec.AppendFramePayload(nil, recs)
		if err != nil {
			t.Fatalf("%s: batch payload: %v", kind, err)
		}
		payload, offsets, err := EncodeRecordPayloads(codec, recs)
		if err != nil {
			t.Fatalf("%s: per-record payloads: %v", kind, err)
		}
		if !bytes.Equal(batch, payload) {
			t.Fatalf("%s: concat of single-record payloads differs from batch payload", kind)
		}
		if len(offsets) != len(recs)+1 || offsets[0] != 0 || offsets[len(recs)] != int64(len(payload)) {
			t.Fatalf("%s: offsets %v for %d records, payload %d bytes", kind, offsets, len(recs), len(payload))
		}
		// Every sub-range sliced from the cached payload equals encoding
		// that record range directly — the cursor/batch_size freedom the
		// serving path relies on.
		for a := 0; a <= len(recs); a++ {
			for b := a; b <= len(recs); b++ {
				want, err := codec.AppendFramePayload(nil, recs[a:b])
				if err != nil {
					t.Fatal(err)
				}
				if got := payload[offsets[a]:offsets[b]]; !bytes.Equal(got, want) {
					t.Fatalf("%s: slice [%d:%d) differs from direct encoding", kind, a, b)
				}
			}
		}

		// FrameEnvelope over the cached payload reproduces EncodeFrame's
		// bytes exactly: envelope + payload == full frame.
		h := BatchHeader{Batch: 3, Cursor: "2:5", Kind: kind}
		frame, err := EncodeFrame(codec, h, recs)
		if err != nil {
			t.Fatal(err)
		}
		env, err := FrameEnvelope(h, len(recs), len(payload))
		if err != nil {
			t.Fatal(err)
		}
		if got := append(append([]byte{}, env...), payload...); !bytes.Equal(got, frame) {
			t.Fatalf("%s: envelope+payload != EncodeFrame output (%d vs %d bytes)", kind, len(got), len(frame))
		}
	}
}

// TestFrameEnvelopeRejects: oversized and negative payloads error.
func TestFrameEnvelopeRejects(t *testing.T) {
	if _, err := FrameEnvelope(BatchHeader{Kind: KindSamples}, 1, -1); err == nil {
		t.Fatal("negative payload length accepted")
	}
	if _, err := FrameEnvelope(BatchHeader{Kind: KindSamples}, 1, MaxFrameBytes); err == nil {
		t.Fatal("over-cap frame body accepted")
	}
}

// TestErrorFrame: the in-band failure frame surfaces as *StreamError.
func TestErrorFrame(t *testing.T) {
	f := EncodeErrorFrame("shard s-00002 vanished")
	_, _, _, err := DecodeFrame(f)
	var se *StreamError
	if !errors.As(err, &se) || se.Msg != "shard s-00002 vanished" {
		t.Fatalf("error frame decoded as %v", err)
	}
}

// TestFrameDecodeRejects: hostile frames — truncations, oversized
// counts, lying lengths, bad varints, foreign kinds — error cleanly.
func TestFrameDecodeRejects(t *testing.T) {
	codec, _ := CodecByKind(KindSamples)
	rec, _, err := codec.Decode((&loader.Sample{Features: []float32{1, 2}, Label: 5}).Encode())
	if err != nil {
		t.Fatal(err)
	}
	valid, err := EncodeFrame(codec, BatchHeader{Batch: 1, Cursor: "0:1", Kind: KindSamples}, []any{rec})
	if err != nil {
		t.Fatal(err)
	}

	// Empty buffer is a clean EOF, not an error.
	if _, _, _, err := DecodeFrame(nil); err != io.EOF {
		t.Fatalf("empty buffer: %v", err)
	}
	// Every truncation of a valid frame must fail without panicking.
	for n := 1; n < len(valid); n++ {
		if _, _, _, err := DecodeFrame(valid[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Oversized record count.
	body := appendFrameHeader(nil, BatchHeader{Kind: KindSamples}, 1<<30)
	if _, _, _, err := DecodeFrame(prefixFrame(body)); err == nil {
		t.Fatal("oversized count accepted")
	}
	// Frame length beyond the cap.
	huge := binary.AppendUvarint(nil, MaxFrameBytes+1)
	if _, _, _, err := DecodeFrame(append(huge, 0)); err == nil {
		t.Fatal("oversized frame length accepted")
	}
	// Unknown kind.
	body = appendFrameHeader(nil, BatchHeader{Kind: "astral_cubes"}, 1)
	if _, _, _, err := DecodeFrame(prefixFrame(append(body, 0, 0))); err == nil {
		t.Fatal("unknown kind accepted")
	}
	// Trailing garbage after the declared records.
	_, sz := binary.Uvarint(valid)
	tampered := prefixFrame(append(append([]byte{}, valid[sz:]...), 0xFF))
	if _, _, _, err := DecodeFrame(tampered); err == nil {
		t.Fatal("trailing payload bytes accepted")
	}
	// A materials payload whose edge endpoint exceeds its node count
	// must be rejected — clients index node_features by endpoints.
	mat, _ := CodecByKind(KindMaterialsGraphs)
	bad := binary.AppendUvarint(nil, 1) // nodes
	bad = binary.AppendUvarint(bad, 1)  // feature_dim
	bad = binary.LittleEndian.AppendUint64(bad, 0)
	bad = binary.AppendUvarint(bad, 1) // one edge
	bad = binary.AppendUvarint(bad, 5) // endpoint 5 >= 1 node
	bad = binary.AppendUvarint(bad, 0)
	bad = binary.LittleEndian.AppendUint64(bad, 0) // edge length
	bad = binary.LittleEndian.AppendUint64(bad, 0) // energy
	bad = binary.AppendVarint(bad, 0)              // class_id
	if _, err := mat.DecodeFramePayload(bad, 1); err == nil {
		t.Fatal("out-of-range edge endpoint accepted")
	}
}

// FuzzFrameDecode hardens the binary frame parser — header varints and
// all three codec payloads — against hostile bytes: it must never
// panic or over-allocate, and whatever it accepts must re-encode.
func FuzzFrameDecode(f *testing.F) {
	// Valid single frames for each codec as seeds.
	sample := &loader.Sample{Features: []float32{1, 2}, Label: 5}
	w := &FusionWindow{Signal: []float32{0.5}, Shot: 3, Start: 1, Label: 1, Horizon: 0.2}
	g := &WireGraph{Nodes: 2, FeatureDim: 1, NodeFeatures: []float64{1, 2},
		Edges: []int64{0, 1}, EdgeLengths: []float64{1.5}, Energy: -3, ClassID: 1}
	for kind, rec := range map[string]any{
		KindSamples: sample, KindFusionWindows: w, KindMaterialsGraphs: g,
	} {
		codec, _ := CodecByKind(kind)
		frame, err := EncodeFrame(codec, BatchHeader{Batch: 1, Cursor: "0:1", Kind: kind}, []any{rec})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[:len(frame)/2])
	}
	f.Add(EncodeErrorFrame("boom"))
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	f.Add(binary.AppendUvarint(nil, 1<<40))
	f.Fuzz(func(t *testing.T, b []byte) {
		h, recs, _, err := DecodeFrame(b)
		if err != nil {
			return
		}
		if len(recs) == 0 {
			t.Fatalf("accepted data frame with no records: %+v", h)
		}
		codec, ok := CodecByKind(h.Kind)
		if !ok {
			t.Fatalf("accepted frame with unresolvable kind %q", h.Kind)
		}
		if _, err := EncodeFrame(codec, h, recs); err != nil {
			t.Fatalf("accepted records fail re-encoding: %v", err)
		}
	})
}
