package fusion

import (
	"errors"
	"fmt"

	"repro/internal/formats/scih5"
)

// ExportSciH5 writes aligned shots into a hierarchical container — the
// "HDF5" half of Table 1's "TFRecord/HDF5" fusion output. Layout:
//
//	/shots/<number>/<channel>   one dataset per diagnostic channel
//	/shots/<number>             group attribute "disrupted@t" metadata
func ExportSciH5(aligned []*AlignedShot) ([]byte, error) {
	if len(aligned) == 0 {
		return nil, errors.New("fusion: no aligned shots to export")
	}
	w := scih5.NewWriter()
	if err := w.SetGroupAttr("/shots", fmt.Sprintf("aligned campaign, %d shots", len(aligned))); err != nil {
		return nil, err
	}
	for _, a := range aligned {
		base := fmt.Sprintf("/shots/%d", a.Number)
		meta := fmt.Sprintf("dt=%g t0=%g disrupted=%t tdisrupt=%g", a.Dt, a.T0, a.Disrupted, a.TDisrupt)
		if err := w.SetGroupAttr(base, meta); err != nil {
			return nil, err
		}
		for c, name := range a.Channels {
			attrs := map[string]string{"channel": name}
			path := base + "/" + name
			if err := w.WriteFloat32(path, a.Series[c], []int{len(a.Series[c])}, attrs); err != nil {
				return nil, fmt.Errorf("fusion: export shot %d channel %q: %w", a.Number, name, err)
			}
		}
	}
	return w.Finalize()
}

// ImportSciH5 reads a container produced by ExportSciH5 back into
// aligned shots (channel data only; window labels are regenerated from
// the group metadata by the caller if needed).
func ImportSciH5(b []byte) ([]*AlignedShot, error) {
	f, err := scih5.Open(b)
	if err != nil {
		return nil, err
	}
	byShot := make(map[int]*AlignedShot)
	var order []int
	for _, ds := range f.Datasets() {
		var shot int
		var channel string
		if _, err := fmt.Sscanf(ds.Path, "/shots/%d/%s", &shot, &channel); err != nil {
			continue
		}
		a, ok := byShot[shot]
		if !ok {
			a = &AlignedShot{Number: shot}
			meta, found := f.GroupAttr(fmt.Sprintf("/shots/%d", shot))
			if found {
				if _, err := fmt.Sscanf(meta, "dt=%g t0=%g disrupted=%t tdisrupt=%g",
					&a.Dt, &a.T0, &a.Disrupted, &a.TDisrupt); err != nil {
					return nil, fmt.Errorf("fusion: shot %d metadata %q: %w", shot, meta, err)
				}
			}
			byShot[shot] = a
			order = append(order, shot)
		}
		data, _, err := f.Read(ds.Path)
		if err != nil {
			return nil, err
		}
		a.Channels = append(a.Channels, channel)
		a.Series = append(a.Series, data)
	}
	if len(byShot) == 0 {
		return nil, errors.New("fusion: container holds no shots")
	}
	out := make([]*AlignedShot, 0, len(order))
	for _, n := range order {
		out = append(out, byShot[n])
	}
	return out, nil
}
