package grib

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripWithinQuantizationError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ni, nj := 16, 8
	vals := make([]float64, ni*nj)
	for i := range vals {
		vals[i] = 250 + rng.Float64()*60 // Kelvin-ish temperatures
	}
	enc, err := Encode(vals, ni, nj, 16)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Ni != ni || msg.Nj != nj {
		t.Fatalf("grid %dx%d", msg.Ni, msg.Nj)
	}
	tol := msg.MaxQuantizationError() + 1e-12
	for i, v := range msg.Values {
		if math.Abs(v-vals[i]) > tol {
			t.Fatalf("point %d: %v vs %v (tol %v)", i, v, vals[i], tol)
		}
	}
}

func TestBitmapMissingValues(t *testing.T) {
	vals := []float64{1, math.NaN(), 3, math.NaN(), 5, 6}
	enc, err := Encode(vals, 3, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(msg.Values[1]) || !math.IsNaN(msg.Values[3]) {
		t.Fatalf("missing points not NaN: %v", msg.Values)
	}
	tol := msg.MaxQuantizationError() + 1e-12
	for _, i := range []int{0, 2, 4, 5} {
		if math.Abs(msg.Values[i]-vals[i]) > tol {
			t.Fatalf("point %d: %v vs %v", i, msg.Values[i], vals[i])
		}
	}
}

func TestAllMissing(t *testing.T) {
	vals := []float64{math.NaN(), math.NaN()}
	enc, err := Encode(vals, 2, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range msg.Values {
		if !math.IsNaN(v) {
			t.Fatalf("values=%v", msg.Values)
		}
	}
}

func TestConstantField(t *testing.T) {
	vals := []float64{288.15, 288.15, 288.15, 288.15}
	enc, err := Encode(vals, 2, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range msg.Values {
		if v != 288.15 {
			t.Fatalf("constant field: %v", msg.Values)
		}
	}
	if msg.BinaryScale != 0 {
		t.Fatalf("constant field should use E=0, got %d", msg.BinaryScale)
	}
}

func TestHigherBitsLowerError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = rng.Float64() * 1000
	}
	errAt := func(bits int) float64 {
		enc, err := Encode(vals, 100, 1, bits)
		if err != nil {
			t.Fatal(err)
		}
		msg, err := Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for i := range vals {
			if d := math.Abs(msg.Values[i] - vals[i]); d > worst {
				worst = d
			}
		}
		return worst
	}
	e8, e16, e24 := errAt(8), errAt(16), errAt(24)
	if !(e24 < e16 && e16 < e8) {
		t.Fatalf("errors not monotone: 8->%v 16->%v 24->%v", e8, e16, e24)
	}
}

func TestNarrowBitsCompresses(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	enc8, err := Encode(vals, 1000, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	enc24, err := Encode(vals, 1000, 1, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc8) >= len(enc24) {
		t.Fatalf("8-bit (%d) should be smaller than 24-bit (%d)", len(enc8), len(enc24))
	}
	// 8-bit data section ~1000 bytes vs raw float64 8000 bytes.
	if len(enc8) > 1100 {
		t.Fatalf("8-bit encoding too large: %d", len(enc8))
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := Encode([]float64{1}, 2, 1, 8); err == nil {
		t.Fatal("want length mismatch error")
	}
	if _, err := Encode([]float64{1, 2}, 0, 2, 8); err == nil {
		t.Fatal("want grid error")
	}
	if _, err := Encode([]float64{1, 2}, 2, 1, 0); err == nil {
		t.Fatal("want bits error")
	}
	if _, err := Encode([]float64{1, 2}, 2, 1, 33); err == nil {
		t.Fatal("want bits error")
	}
	if _, err := Encode([]float64{math.Inf(1), 2}, 2, 1, 8); err == nil {
		t.Fatal("want infinity error")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("short")); !errors.Is(err, ErrFormat) {
		t.Fatalf("err=%v", err)
	}
	if _, err := Decode(make([]byte, 40)); !errors.Is(err, ErrFormat) {
		t.Fatalf("err=%v", err)
	}
	good, err := Encode([]float64{1, 2, 3, 4}, 2, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt end marker.
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] = 'X'
	if _, err := Decode(bad); !errors.Is(err, ErrFormat) {
		t.Fatalf("err=%v", err)
	}
	// Truncate.
	if _, err := Decode(good[:len(good)-6]); !errors.Is(err, ErrFormat) {
		t.Fatalf("err=%v", err)
	}
	// Corrupt version.
	bad2 := append([]byte(nil), good...)
	bad2[5] = 9
	if _, err := Decode(bad2); err == nil {
		t.Fatal("want version error")
	}
}

func TestBitPackerExactWidths(t *testing.T) {
	for _, bits := range []int{1, 3, 7, 8, 11, 16, 24, 31, 32} {
		w := newBitWriter()
		maxV := uint32(1)<<uint(bits) - 1
		if bits == 32 {
			maxV = math.MaxUint32
		}
		inputs := []uint32{0, 1, maxV, maxV / 2}
		for _, v := range inputs {
			w.write(v, bits)
		}
		r := &bitReader{b: w.bytes()}
		for i, want := range inputs {
			got, err := r.read(bits)
			if err != nil {
				t.Fatalf("bits=%d read %d: %v", bits, i, err)
			}
			if got != want {
				t.Fatalf("bits=%d value %d: got %d, want %d", bits, i, got, want)
			}
		}
	}
}

// Property: round-trip error is always bounded by the quantization step for
// any finite field, any width.
func TestQuantizationBoundProperty(t *testing.T) {
	f := func(seed int64, nbits uint8) bool {
		bits := int(nbits)%31 + 2 // 2..32
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 1
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
		}
		enc, err := Encode(vals, n, 1, bits)
		if err != nil {
			return false
		}
		msg, err := Decode(enc)
		if err != nil {
			return false
		}
		tol := msg.MaxQuantizationError()*1.0001 + 1e-9
		for i := range vals {
			if math.Abs(msg.Values[i]-vals[i]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode16bit(b *testing.B) {
	vals := make([]float64, 64*128)
	for i := range vals {
		vals[i] = 250 + float64(i%60)
	}
	b.SetBytes(int64(len(vals) * 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(vals, 128, 64, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode16bit(b *testing.B) {
	vals := make([]float64, 64*128)
	for i := range vals {
		vals[i] = 250 + float64(i%60)
	}
	enc, err := Encode(vals, 128, 64, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(vals) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
