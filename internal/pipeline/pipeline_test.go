package pipeline

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

func noop(name string, kind core.Stage) Stage {
	return StageFunc{StageName: name, StageKind: kind, Fn: func(*Dataset) error { return nil }}
}

// fullStages builds a 5-stage pipeline that legitimately advances the
// dataset to fully AI-ready.
func fullStages() []Stage {
	return []Stage{
		StageFunc{"ingest", core.Ingest, func(d *Dataset) error {
			d.Facts.StandardFormat = true
			d.Facts.Validated = true
			d.SetMeta("source", "synthetic")
			d.SetMeta("units", "K")
			d.SetMeta("grid", "64x128")
			return nil
		}},
		StageFunc{"clean+align", core.Preprocess, func(d *Dataset) error {
			d.Facts.MissingRate = 0
			d.Facts.AlignedGrids = true
			return nil
		}},
		StageFunc{"normalize+label", core.Transform, func(d *Dataset) error {
			d.Facts.Normalized = true
			d.Facts.LabelCoverage = 1
			return nil
		}},
		StageFunc{"features", core.Structure, func(d *Dataset) error {
			d.Facts.FeaturesExtracted = true
			d.Facts.StructuredLayout = true
			return nil
		}},
		StageFunc{"split+shard", core.Shard, func(d *Dataset) error {
			d.Facts.SplitDone = true
			d.Facts.Sharded = true
			d.Facts.PipelineAutomated = true
			return nil
		}},
	}
}

func TestRunFullTrajectory(t *testing.T) {
	p, err := New("demo", fullStages()...)
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDataset("cmip6-mini", core.Climate, nil)
	snaps, err := p.Run(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 5 {
		t.Fatalf("snapshots=%d", len(snaps))
	}
	if snaps[4].Assessment.Level != core.AIReady {
		t.Fatalf("final level=%v gaps=%v", snaps[4].Assessment.Level, snaps[4].Assessment.Gaps)
	}
	if err := VerifyMonotone(snaps); err != nil {
		t.Fatal(err)
	}
	// Levels reach each rung in order.
	wantLevels := []core.Level{core.Raw, core.Cleaned, core.Labeled, core.FeatureEngineered, core.AIReady}
	for i, s := range snaps {
		if s.Assessment.Level != wantLevels[i] {
			t.Fatalf("stage %d: level=%v want %v (gaps %v)", i, s.Assessment.Level, wantLevels[i], s.Assessment.Gaps)
		}
	}
}

func TestProvenanceCaptured(t *testing.T) {
	p, _ := New("prov", fullStages()...)
	ds := NewDataset("x", core.Fusion, nil)
	if _, err := p.Run(ds); err != nil {
		t.Fatal(err)
	}
	acts := p.Tracker.Activities()
	if len(acts) != 5 {
		t.Fatalf("activities=%d", len(acts))
	}
	if err := p.Tracker.Verify(); err != nil {
		t.Fatal(err)
	}
	// Lineage of the final artifact spans all five stages.
	lin := p.Tracker.Lineage(ds.ID())
	if len(lin) != 5 {
		t.Fatalf("lineage=%d", len(lin))
	}
	if lin[0].Name != "ingest" || lin[4].Name != "split+shard" {
		t.Fatalf("lineage order: %s … %s", lin[0].Name, lin[4].Name)
	}
}

func TestMetricsCaptured(t *testing.T) {
	p, _ := New("met", fullStages()...)
	p.Category["split+shard"] = "io"
	ds := NewDataset("x", core.Climate, nil)
	ds.Bytes = 1 << 20
	ds.Records = 100
	if _, err := p.Run(ds); err != nil {
		t.Fatal(err)
	}
	stats := p.Collector.ByStage()
	if len(stats) != 5 {
		t.Fatalf("stages timed=%d", len(stats))
	}
	shares := p.Collector.CategoryShare()
	if _, ok := shares["curation"]; !ok {
		t.Fatalf("shares=%v", shares)
	}
	if _, ok := shares["io"]; !ok {
		t.Fatalf("shares=%v", shares)
	}
}

func TestStageOrderEnforced(t *testing.T) {
	_, err := New("bad", noop("shard-first", core.Shard), noop("then-ingest", core.Ingest))
	if err == nil || !strings.Contains(err.Error(), "regresses") {
		t.Fatalf("err=%v", err)
	}
	// Repeats of the same kind are allowed.
	if _, err := New("ok", noop("a", core.Preprocess), noop("b", core.Preprocess)); err != nil {
		t.Fatal(err)
	}
	// Skipping kinds is allowed (not every pipeline has all five).
	if _, err := New("ok2", noop("a", core.Ingest), noop("b", core.Shard)); err != nil {
		t.Fatal(err)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New("empty"); err == nil {
		t.Fatal("want no-stages error")
	}
	if _, err := New("bad", noop("x", core.Stage(9))); err == nil {
		t.Fatal("want invalid-kind error")
	}
}

func TestRunNilDataset(t *testing.T) {
	p, _ := New("p", noop("a", core.Ingest))
	if _, err := p.Run(nil); err == nil {
		t.Fatal("want nil error")
	}
}

func TestStageFailureReturnsPartialSnapshots(t *testing.T) {
	boom := errors.New("boom")
	p, _ := New("fail",
		noop("ok", core.Ingest),
		StageFunc{"explode", core.Preprocess, func(*Dataset) error { return boom }},
		noop("never", core.Shard),
	)
	ds := NewDataset("x", core.Materials, nil)
	snaps, err := p.Run(ds)
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v", err)
	}
	if len(snaps) != 1 {
		t.Fatalf("snapshots=%d", len(snaps))
	}
	if !strings.Contains(err.Error(), "explode") {
		t.Fatalf("err=%v", err)
	}
}

func TestVerifyMonotoneDetectsRegression(t *testing.T) {
	snaps := []Snapshot{
		{Assessment: core.Assessment{Level: core.Labeled}},
		{StageName: "oops", Assessment: core.Assessment{Level: core.Raw}},
	}
	if err := VerifyMonotone(snaps); err == nil {
		t.Fatal("want regression error")
	}
}

// TestAbstractStageMapping is the E7 structural check: a pipeline's kind
// walk must be a subsequence of the canonical five stages.
func TestAbstractStageMapping(t *testing.T) {
	p, _ := New("walk",
		noop("a", core.Ingest),
		noop("b", core.Preprocess),
		noop("c", core.Preprocess),
		noop("d", core.Transform),
		noop("e", core.Structure),
		noop("f", core.Shard),
	)
	kinds := p.StageKinds()
	want := core.Stages()
	if len(kinds) != len(want) {
		t.Fatalf("kinds=%v", kinds)
	}
	for i := range kinds {
		if kinds[i] != want[i] {
			t.Fatalf("kinds=%v", kinds)
		}
	}
}

func TestIterateFeedbackLoop(t *testing.T) {
	ds := NewDataset("x", core.BioHealth, nil)
	improve := StageFunc{"pseudo-label", core.Transform, func(d *Dataset) error {
		d.Facts.LabelCoverage += 0.25
		return nil
	}}
	rounds, err := Iterate(ds, improve, func(d *Dataset) bool {
		return d.Facts.LabelCoverage >= 0.9
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 4 {
		t.Fatalf("rounds=%d coverage=%v", rounds, ds.Facts.LabelCoverage)
	}
}

func TestIterateHitsMaxRounds(t *testing.T) {
	ds := NewDataset("x", core.BioHealth, nil)
	stall := noop("stall", core.Transform)
	rounds, err := Iterate(ds, stall, func(*Dataset) bool { return false }, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 3 {
		t.Fatalf("rounds=%d", rounds)
	}
}

func TestIterateErrors(t *testing.T) {
	ds := NewDataset("x", core.Climate, nil)
	if _, err := Iterate(ds, noop("s", core.Transform), func(*Dataset) bool { return true }, 0); err == nil {
		t.Fatal("want maxRounds error")
	}
	boom := errors.New("boom")
	bad := StageFunc{"bad", core.Transform, func(*Dataset) error { return boom }}
	rounds, err := Iterate(ds, bad, func(*Dataset) bool { return false }, 5)
	if !errors.Is(err, boom) || rounds != 0 {
		t.Fatalf("rounds=%d err=%v", rounds, err)
	}
}

func TestForEachSequentialAndParallel(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		var sum int64
		err := ForEach(100, workers, func(i int) error {
			atomic.AddInt64(&sum, int64(i))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if sum != 4950 {
			t.Fatalf("workers=%d sum=%d", workers, sum)
		}
	}
}

func TestForEachEdgeCases(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(-1, 4, nil); err == nil {
		t.Fatal("want negative error")
	}
	// workers <= 0 falls back to sequential.
	n := 0
	if err := ForEach(5, 0, func(int) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("n=%d", n)
	}
}

func TestForEachPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := ForEach(50, 8, func(i int) error {
		if i == 25 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v", err)
	}
}

func TestSetMetaTracksCount(t *testing.T) {
	ds := NewDataset("x", core.Climate, nil)
	ds.SetMeta("a", "1")
	ds.SetMeta("b", "2")
	ds.SetMeta("a", "updated")
	if ds.Facts.MetadataFields != 2 {
		t.Fatalf("fields=%d", ds.Facts.MetadataFields)
	}
}

func TestDatasetIDChangesPerRevision(t *testing.T) {
	p, _ := New("rev", noop("a", core.Ingest), noop("b", core.Shard))
	ds := NewDataset("x", core.Climate, nil)
	id0 := ds.ID()
	if _, err := p.Run(ds); err != nil {
		t.Fatal(err)
	}
	if ds.ID() == id0 {
		t.Fatal("ID must change across revisions")
	}
}
