// The unified serving-cache arena: one -serve-cache-mb byte budget
// shared by the decoded-shard cache ([]any per shard) and the
// encoded-frame cache (frame-ready payload bytes per shard), replacing
// the two independent -cache-mb/-frame-cache-mb ceilings. Eviction is
// weighted: encoded payloads are cheap to refill from on-store frame
// sidecars (a CRC pass plus a copy), while decoded entries cost a full
// SHA-256 + gunzip + TFRecord walk + codec decode — so under pressure
// the arena sheds frames first, only turning on decoded entries when
// they dominate the budget.
package server

import "sync"

// frameEvictWeight biases eviction toward the frame cache: frames are
// evicted while they hold more than 1/(weight+1) of the resident
// bytes; beyond that the decoded side pays, so a frame-heavy workload
// still keeps a working set of cheap-to-refill payloads.
const frameEvictWeight = 4

// arenaCache is what the arena needs from each member cache; both
// ShardCache instantiations satisfy it.
type arenaCache interface {
	usedBytes() int64
	evictOne() bool
}

// cacheArena couples two caches under one byte budget. rebalance is
// called by a member after every insert; it serializes on its own
// mutex and takes each member's lock only transiently, so members
// never call into the arena while holding their own locks.
type cacheArena struct {
	budget int64
	mu     sync.Mutex
	// frames is evicted preferentially (refillable from sidecars);
	// decoded is the expensive-to-rebuild fallback victim.
	frames  arenaCache
	decoded arenaCache
}

// rebalance evicts LRU entries until both caches together fit the
// budget, preferring frame entries per frameEvictWeight.
func (a *cacheArena) rebalance() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		f, d := a.frames.usedBytes(), a.decoded.usedBytes()
		if f+d <= a.budget {
			return
		}
		if f*frameEvictWeight >= d && a.frames.evictOne() {
			continue
		}
		if a.decoded.evictOne() {
			continue
		}
		if a.frames.evictOne() {
			continue
		}
		return
	}
}
