package tensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndZeroFill(t *testing.T) {
	x := New(2, 3, 4)
	if x.Rank() != 3 || x.Numel() != 24 {
		t.Fatalf("rank=%d numel=%d, want 3, 24", x.Rank(), x.Numel())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestNewScalar(t *testing.T) {
	s := New()
	if s.Rank() != 0 || s.Numel() != 1 {
		t.Fatalf("scalar rank=%d numel=%d", s.Rank(), s.Numel())
	}
}

func TestFromSliceValid(t *testing.T) {
	x, err := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := x.At(1, 2); got != 6 {
		t.Fatalf("At(1,2)=%v, want 6", got)
	}
	if got := x.At(0, 0); got != 1 {
		t.Fatalf("At(0,0)=%v, want 1", got)
	}
}

func TestFromSliceShapeMismatch(t *testing.T) {
	_, err := FromSlice([]float64{1, 2, 3}, 2, 2)
	if !errors.Is(err, ErrShape) {
		t.Fatalf("err=%v, want ErrShape", err)
	}
}

func TestFromSliceNegativeDim(t *testing.T) {
	if _, err := FromSlice([]float64{1}, -1); err == nil {
		t.Fatal("want error for negative dim")
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if got := x.At(2, 1); got != 7.5 {
		t.Fatalf("got %v, want 7.5", got)
	}
	// Row-major layout: (2,1) is flat index 2*4+1=9.
	if x.Data()[9] != 7.5 {
		t.Fatalf("flat layout wrong: %v", x.Data())
	}
}

func TestFull(t *testing.T) {
	x := Full(3.25, 2, 2)
	for _, v := range x.Data() {
		if v != 3.25 {
			t.Fatalf("got %v", v)
		}
	}
}

func TestReshapeSharesData(t *testing.T) {
	x, _ := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y, err := x.Reshape(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	y.Set(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Fatal("reshape must share storage")
	}
}

func TestReshapeBadCount(t *testing.T) {
	x := New(2, 3)
	if _, err := x.Reshape(4, 2); !errors.Is(err, ErrShape) {
		t.Fatalf("err=%v, want ErrShape", err)
	}
}

func TestCloneIsolation(t *testing.T) {
	x, _ := FromSlice([]float64{1, 2}, 2)
	c := x.Clone()
	c.Set(42, 0)
	if x.At(0) != 1 {
		t.Fatal("clone must not alias original")
	}
}

func TestSubTensorAndSet(t *testing.T) {
	x, _ := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	s, err := x.SubTensor(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0) != 3 || s.At(1) != 4 {
		t.Fatalf("subtensor=%v", s.Data())
	}
	repl, _ := FromSlice([]float64{9, 9}, 2)
	if err := x.SetSubTensor(2, repl); err != nil {
		t.Fatal(err)
	}
	if x.At(2, 0) != 9 || x.At(2, 1) != 9 {
		t.Fatal("SetSubTensor did not write")
	}
}

func TestSubTensorOutOfRange(t *testing.T) {
	x := New(2, 2)
	if _, err := x.SubTensor(5); err == nil {
		t.Fatal("want range error")
	}
	if err := x.SetSubTensor(-1, New(2)); err == nil {
		t.Fatal("want range error")
	}
	if err := x.SetSubTensor(0, New(3)); !errors.Is(err, ErrShape) {
		t.Fatalf("err=%v, want ErrShape", err)
	}
}

func TestElementwiseOps(t *testing.T) {
	a, _ := FromSlice([]float64{1, 2, 3}, 3)
	b, _ := FromSlice([]float64{10, 20, 30}, 3)
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 22, 33}
	for i, v := range a.Data() {
		if v != want[i] {
			t.Fatalf("add: got %v", a.Data())
		}
	}
	if err := a.Sub(b); err != nil {
		t.Fatal(err)
	}
	if a.At(2) != 3 {
		t.Fatalf("sub: got %v", a.Data())
	}
	if err := a.Mul(b); err != nil {
		t.Fatal(err)
	}
	if a.At(1) != 40 {
		t.Fatalf("mul: got %v", a.Data())
	}
}

func TestElementwiseShapeMismatch(t *testing.T) {
	a, b := New(2), New(3)
	for _, err := range []error{a.Add(b), a.Sub(b), a.Mul(b)} {
		if !errors.Is(err, ErrShape) {
			t.Fatalf("err=%v, want ErrShape", err)
		}
	}
}

func TestScalarOps(t *testing.T) {
	x, _ := FromSlice([]float64{1, 2}, 2)
	x.AddScalar(1).MulScalar(3)
	if x.At(0) != 6 || x.At(1) != 9 {
		t.Fatalf("got %v", x.Data())
	}
}

func TestApply(t *testing.T) {
	x, _ := FromSlice([]float64{1, 4, 9}, 3)
	x.Apply(math.Sqrt)
	if x.At(2) != 3 {
		t.Fatalf("got %v", x.Data())
	}
}

func TestStatsIgnoreNaN(t *testing.T) {
	x, _ := FromSlice([]float64{1, math.NaN(), 3}, 3)
	if got := x.Mean(); got != 2 {
		t.Fatalf("mean=%v, want 2", got)
	}
	if got := x.Sum(); got != 4 {
		t.Fatalf("sum=%v, want 4", got)
	}
	if got := x.Min(); got != 1 {
		t.Fatalf("min=%v, want 1", got)
	}
	if got := x.Max(); got != 3 {
		t.Fatalf("max=%v, want 3", got)
	}
	if got := x.Std(); got != 1 {
		t.Fatalf("std=%v, want 1", got)
	}
	if got := x.CountNaN(); got != 1 {
		t.Fatalf("nan count=%d", got)
	}
}

func TestAllNaNStats(t *testing.T) {
	x := Full(math.NaN(), 3)
	if !math.IsNaN(x.Mean()) || !math.IsNaN(x.Min()) || !math.IsNaN(x.Max()) || !math.IsNaN(x.Std()) {
		t.Fatal("all-NaN tensor must yield NaN stats")
	}
}

func TestNormalizeMoments(t *testing.T) {
	x, _ := FromSlice([]float64{2, 4, 6, 8}, 4)
	mean, std := x.Normalize()
	if mean != 5 {
		t.Fatalf("mean=%v", mean)
	}
	if math.Abs(x.Mean()) > 1e-12 {
		t.Fatalf("post-normalize mean=%v", x.Mean())
	}
	if math.Abs(x.Std()-1) > 1e-12 {
		t.Fatalf("post-normalize std=%v", x.Std())
	}
	x.Denormalize(mean, std)
	want := []float64{2, 4, 6, 8}
	for i, v := range x.Data() {
		if math.Abs(v-want[i]) > 1e-9 {
			t.Fatalf("denormalize: got %v", x.Data())
		}
	}
}

func TestNormalizeConstantTensor(t *testing.T) {
	x := Full(7, 5)
	mean, std := x.Normalize()
	if mean != 7 || std != 0 {
		t.Fatalf("mean=%v std=%v", mean, std)
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatalf("constant tensor should normalize to 0, got %v", v)
		}
	}
}

func TestNormalizePreservesNaN(t *testing.T) {
	x, _ := FromSlice([]float64{1, math.NaN(), 3}, 3)
	x.Normalize()
	if !math.IsNaN(x.At(1)) {
		t.Fatal("NaN must survive normalization")
	}
}

func TestFillNaN(t *testing.T) {
	x, _ := FromSlice([]float64{math.NaN(), 2, math.NaN()}, 3)
	if n := x.FillNaN(0); n != 2 {
		t.Fatalf("filled %d, want 2", n)
	}
	if x.CountNaN() != 0 {
		t.Fatal("NaNs remain")
	}
}

func TestFloat32RoundTrip(t *testing.T) {
	x, _ := FromSlice([]float64{1.5, -2.25}, 2)
	f := x.Float32()
	y, err := FromFloat32(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if y.At(0) != 1.5 || y.At(1) != -2.25 {
		t.Fatalf("roundtrip: %v", y.Data())
	}
}

func TestMeanStdAxis0(t *testing.T) {
	// Two 2x2 "timesteps".
	x, _ := FromSlice([]float64{
		1, 2, 3, 4,
		3, 6, 5, 8,
	}, 2, 2, 2)
	m, err := x.MeanAxis0()
	if err != nil {
		t.Fatal(err)
	}
	wantM := []float64{2, 4, 4, 6}
	for i, v := range m.Data() {
		if v != wantM[i] {
			t.Fatalf("mean axis0: %v", m.Data())
		}
	}
	s, err := x.StdAxis0()
	if err != nil {
		t.Fatal(err)
	}
	wantS := []float64{1, 2, 1, 2}
	for i, v := range s.Data() {
		if v != wantS[i] {
			t.Fatalf("std axis0: %v", s.Data())
		}
	}
}

func TestMeanAxis0WithNaN(t *testing.T) {
	x, _ := FromSlice([]float64{
		1, math.NaN(),
		3, math.NaN(),
	}, 2, 2)
	m, err := x.MeanAxis0()
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0) != 2 {
		t.Fatalf("got %v", m.At(0))
	}
	if !math.IsNaN(m.At(1)) {
		t.Fatal("all-NaN column must be NaN")
	}
}

func TestMeanAxis0Scalar(t *testing.T) {
	if _, err := New().MeanAxis0(); err == nil {
		t.Fatal("want error for scalar")
	}
}

func TestSameShape(t *testing.T) {
	if !SameShape(New(2, 3), New(2, 3)) {
		t.Fatal("equal shapes")
	}
	if SameShape(New(2, 3), New(3, 2)) || SameShape(New(2), New(2, 1)) {
		t.Fatal("unequal shapes reported equal")
	}
}

// Property: normalization always yields mean ~0 and std ~1 (or 0 for
// constant input) for any finite data.
func TestNormalizeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e100 {
				vals = append(vals, v)
			}
		}
		if len(vals) < 2 {
			return true
		}
		x, err := FromSlice(vals, len(vals))
		if err != nil {
			return false
		}
		_, std := x.Normalize()
		if std == 0 {
			return math.Abs(x.Mean()) < 1e-6
		}
		return math.Abs(x.Mean()) < 1e-6 && math.Abs(x.Std()-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone+mutate never affects the source.
func TestCloneProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		x, err := FromSlice(append([]float64(nil), vals...), len(vals))
		if err != nil {
			return false
		}
		before := append([]float64(nil), x.Data()...)
		c := x.Clone()
		c.AddScalar(1)
		for i, v := range x.Data() {
			if v != before[i] && !(math.IsNaN(v) && math.IsNaN(before[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNormalize(b *testing.B) {
	x := New(256, 256)
	for i := range x.Data() {
		x.Data()[i] = float64(i%97) * 0.37
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Normalize()
	}
}

func BenchmarkMeanAxis0(b *testing.B) {
	x := New(64, 128, 128)
	for i := range x.Data() {
		x.Data()[i] = float64(i % 31)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x.MeanAxis0(); err != nil {
			b.Fatal(err)
		}
	}
}
