package server

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/pkg/client"
)

// fetchTrace polls the trace endpoint until the assembled view
// satisfies ok (spans are recorded in a middleware defer, so the
// client can observe the response before the spans land).
func fetchTrace(t *testing.T, c *client.Client, trace string, ok func(*client.TraceView) bool) *client.TraceView {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	deadline := time.Now().Add(10 * time.Second)
	for {
		view, err := c.Trace(ctx, trace)
		if err == nil && ok(view) {
			return view
		}
		if time.Now().After(deadline) {
			if err != nil {
				t.Fatalf("trace %s never satisfied condition: %v", trace, err)
			}
			t.Fatalf("trace %s never satisfied condition; last view:\n%s", trace, view.RenderTree())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// spanByName indexes a view's spans by name (first occurrence wins).
func spanByName(view *client.TraceView) map[string]client.Span {
	out := make(map[string]client.Span)
	for _, sp := range view.Spans {
		if _, seen := out[sp.Name]; !seen {
			out[sp.Name] = sp
		}
	}
	return out
}

// assertNested fails unless every span whose parent is present in the
// view lies entirely within its parent's interval — the tree-shape
// invariant the acceptance criteria name.
func assertNested(t *testing.T, view *client.TraceView) {
	t.Helper()
	byID := make(map[string]client.Span, len(view.Spans))
	for _, sp := range view.Spans {
		byID[sp.SpanID] = sp
	}
	for _, sp := range view.Spans {
		p, ok := byID[sp.Parent]
		if !ok {
			continue
		}
		if sp.Start.Before(p.Start) || sp.End.After(p.End) {
			t.Errorf("span %s [%v..%v] escapes parent %s [%v..%v]\n%s",
				sp.Name, sp.Start, sp.End, p.Name, p.Start, p.End, view.RenderTree())
		}
	}
}

// TestTraceSpanTreeSingleNode drives a real job + stream under one
// pinned trace ID and checks the recorded span tree end to end: the
// hot-path span names, parent-child nesting, the trace listing and its
// filters, and the exemplar riding the request histogram.
func TestTraceSpanTreeSingleNode(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, CacheBytes: 1 << 20})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const trace = "span-tree-e2e.1"
	c := client.New(ts.URL, client.WithPollInterval(5*time.Millisecond), client.WithTrace(trace))
	st, err := c.SubmitJob(ctx, JobSpec{Domain: core.Climate, Name: "sp", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitDone(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		ts.URL+"/v1/jobs/"+st.ID+"/batches?batch_size=4&max_batches=2", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(telemetry.TraceHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}

	want := []string{"http.request", "job.wait", "job.run", "job.stage", "shard.load", "batch.encode"}
	view := fetchTrace(t, c, trace, func(v *client.TraceView) bool {
		got := spanByName(v)
		for _, name := range want {
			if _, ok := got[name]; !ok {
				return false
			}
		}
		return true
	})
	byName := spanByName(view)
	for _, sp := range view.Spans {
		if sp.TraceID != trace {
			t.Errorf("span %s carries trace %q, want %q", sp.Name, sp.TraceID, trace)
		}
	}
	if !byName["http.request"].Root {
		t.Errorf("http.request not marked root")
	}
	if byName["job.stage"].Parent != byName["job.run"].SpanID {
		t.Errorf("job.stage parent %q, want job.run %q", byName["job.stage"].Parent, byName["job.run"].SpanID)
	}
	assertNested(t, view)

	// Every span name the store actually emitted is in the closed,
	// documented set.
	known := make(map[string]bool, len(serverSpanNames))
	for _, n := range serverSpanNames {
		known[n] = true
	}
	for _, n := range s.spans.Names() {
		if !known[n] {
			t.Errorf("span name %q emitted but missing from serverSpanNames", n)
		}
	}

	// The listing surfaces the trace; an absurd min_ms filters it out.
	sums, err := c.Traces(ctx, client.TraceQuery{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ts := range sums {
		found = found || ts.TraceID == trace
	}
	if !found {
		t.Errorf("trace %s absent from /v1/traces listing", trace)
	}
	sums, err = c.Traces(ctx, client.TraceQuery{MinMs: 1e12, ErrorsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 0 {
		t.Errorf("min_ms+error filters passed %d traces, want 0", len(sums))
	}

	// The scrape strict-parses with exemplars present, and the request
	// histogram carries the pinned trace as one.
	_, text := scrape(t, ts.URL)
	if !strings.Contains(text, `trace_id="`+trace+`"`) {
		t.Errorf("/metrics carries no exemplar for trace %s:\n%s", trace, text)
	}

	// RenderTree produces the human-readable dump, stage spans indented
	// under their job.run parent.
	if tree := view.RenderTree(); !strings.Contains(tree, "http.request") || !strings.Contains(tree, "\n  job.stage") {
		t.Errorf("RenderTree output unexpected:\n%s", tree)
	}
}

// TestTraceEndpointErrors pins the endpoint's failure contract.
func TestTraceEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/traces/bad%20id")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid trace id: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/traces/never-seen-trace.1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace id: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/traces?min_ms=notanumber")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad min_ms: status %d, want 400", resp.StatusCode)
	}
}

// TestProbePathsRecordNoSpans keeps scrapes and probes out of the span
// ring: a fleet's per-second /healthz + /metrics chatter must not evict
// real traces.
func TestProbePathsRecordNoSpans(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	for i := 0; i < 5; i++ {
		for _, path := range []string{"/healthz", "/metrics", "/v1/traces"} {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	if got := s.spans.Stats().Recorded; got != 0 {
		t.Fatalf("probe/scrape traffic recorded %d spans, want 0 (names: %v)", got, s.spans.Names())
	}
}

// TestFleetAssembledTraceView is the 3-node acceptance path: a stream
// proxied through a non-owner, fetched as one trace from a third node
// that served none of it, must come back as a single merged tree with
// spans from both involved nodes, the owner's server span parented
// under the proxy's client span, and every child nested inside its
// parent.
func TestFleetAssembledTraceView(t *testing.T) {
	fleet := startFleet(t, t.TempDir(), 3, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	c0 := client.New(fleet[0].ts.URL, client.WithPollInterval(5*time.Millisecond))
	var jobID string
	var owner int
	for seed := 1; seed <= 20; seed++ {
		st, err := c0.SubmitJob(ctx, JobSpec{Domain: core.Climate, Name: fmt.Sprintf("at%d", seed), Seed: int64(seed)})
		if err != nil {
			t.Fatal(err)
		}
		if o := ownerOf(t, fleet, 0, st.ID); o != 0 {
			jobID, owner = st.ID, o
			break
		}
	}
	if jobID == "" {
		t.Fatal("20 submissions all hashed to the entry node; cannot exercise the proxy hop")
	}
	if _, err := c0.WaitDone(ctx, jobID); err != nil {
		t.Fatal(err)
	}

	const trace = "fleet-assembled-span.1"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fleet[0].ts.URL+"/v1/jobs/"+jobID+"/batches?batch_size=8&max_batches=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(telemetry.TraceHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied stream status %d", resp.StatusCode)
	}

	// Ask the node that served none of the request: 3 nodes, one proxy,
	// one owner — the remaining one must assemble the view via fan-out.
	third := 3 - owner // indices {0, owner, third} cover {0,1,2}
	if third == owner || third == 0 {
		t.Fatalf("bad third-node pick: owner=%d third=%d", owner, third)
	}
	cT := client.New(fleet[third].ts.URL)
	view := fetchTrace(t, cT, trace, func(v *client.TraceView) bool {
		nodes := make(map[string]bool)
		for _, sp := range v.Spans {
			nodes[sp.Node] = true
		}
		return nodes[fleet[0].id] && nodes[fleet[owner].id]
	})

	perNode := make(map[string]int)
	for _, sp := range view.Spans {
		if sp.TraceID != trace {
			t.Errorf("span %s/%s carries trace %q, want %q", sp.Node, sp.Name, sp.TraceID, trace)
		}
		perNode[sp.Node]++
	}
	for _, idx := range []int{0, owner} {
		if perNode[fleet[idx].id] == 0 {
			t.Errorf("no spans from involved node %s:\n%s", fleet[idx].id, view.RenderTree())
		}
	}

	// The cross-node link: the owner's server root hangs off the
	// proxy's client span via the X-Draid-Span hop.
	var fwd, ownerRoot *client.Span
	for i := range view.Spans {
		sp := &view.Spans[i]
		if sp.Name == "proxy.forward" && sp.Node == fleet[0].id {
			fwd = sp
		}
		if sp.Name == "http.request" && sp.Node == fleet[owner].id {
			ownerRoot = sp
		}
	}
	if fwd == nil || ownerRoot == nil {
		t.Fatalf("missing proxy.forward or owner http.request:\n%s", view.RenderTree())
	}
	if ownerRoot.Parent != fwd.SpanID {
		t.Errorf("owner root parent %q, want proxy.forward %q\n%s", ownerRoot.Parent, fwd.SpanID, view.RenderTree())
	}
	assertNested(t, view)

	// Scope control: the third node holds nothing locally.
	var local client.TraceView
	if code := getJSON(t, fleet[third].ts.URL+"/v1/traces/"+trace+"?scope=local", &local); code != http.StatusNotFound {
		t.Errorf("scope=local on uninvolved node: status %d, want 404", code)
	}
}

// TestSlowRequestLoggedAtInfo pins the satellite: a request crossing
// the tail-sampling threshold logs at Info — visible without -debug —
// while fast, clean traffic stays at Debug.
func TestSlowRequestLoggedAtInfo(t *testing.T) {
	get := func(ts string, trace string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts+"/v1/templates", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(telemetry.TraceHeader, trace)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}

	slowLog := &lockedBuf{}
	_, slowTS := newTestServer(t, Options{Workers: 1, TraceSlow: time.Nanosecond,
		Logger: slog.New(slog.NewTextHandler(slowLog, &slog.HandlerOptions{Level: slog.LevelInfo}))})
	get(slowTS.URL, "slow-info-trace.1")
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(slowLog.String(), "slow-info-trace.1") {
		if time.Now().After(deadline) {
			t.Fatalf("slow request never logged at Info:\n%s", slowLog.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(slowLog.String(), "http request") {
		t.Fatalf("Info log line malformed:\n%s", slowLog.String())
	}

	fastLog := &lockedBuf{}
	_, fastTS := newTestServer(t, Options{Workers: 1,
		Logger: slog.New(slog.NewTextHandler(fastLog, &slog.HandlerOptions{Level: slog.LevelInfo}))})
	get(fastTS.URL, "fast-debug-trace.1")
	time.Sleep(50 * time.Millisecond)
	if strings.Contains(fastLog.String(), "fast-debug-trace.1") {
		t.Fatalf("fast clean request logged at Info:\n%s", fastLog.String())
	}
}

// TestSpanNamesDocumented is the docs-hygiene gate for spans: every
// name the server can emit must appear in the README's span table.
func TestSpanNamesDocumented(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range serverSpanNames {
		if !strings.Contains(string(readme), name) {
			t.Errorf("span name %s is emitted but not documented in README.md", name)
		}
	}
}
