// Tests for the frame-ready shard sidecar format: round-trip fidelity,
// and — the property the disk tier's safety rests on — that every
// torn, truncated, or bit-flipped sidecar is rejected by OpenSidecar
// or VerifyPayload before a corrupt byte could reach a client.
package domain

import (
	"bytes"
	"strings"
	"testing"
)

// testSidecar builds a sidecar over a small synthetic payload with
// mixed record sizes (including a zero-length record).
func testSidecar(t testing.TB) (kind string, payload []byte, offsets []int64, file []byte) {
	t.Helper()
	kind = "test-records"
	payload = []byte("aaabbccccdZZ")
	offsets = []int64{0, 3, 5, 5, 9, 10, 12} // 6 records, record 2 empty
	file, err := AppendSidecar(nil, kind, payload, offsets)
	if err != nil {
		t.Fatal(err)
	}
	return kind, payload, offsets, file
}

func TestSidecarRoundTrip(t *testing.T) {
	kind, payload, offsets, file := testSidecar(t)
	sc, err := OpenSidecar(bytes.NewReader(file), int64(len(file)))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Kind() != kind {
		t.Fatalf("kind %q, want %q", sc.Kind(), kind)
	}
	if sc.Count() != len(offsets)-1 {
		t.Fatalf("count %d, want %d", sc.Count(), len(offsets)-1)
	}
	if sc.PayloadLen() != int64(len(payload)) {
		t.Fatalf("payload len %d, want %d", sc.PayloadLen(), len(payload))
	}
	for i, off := range sc.Offsets() {
		if off != offsets[i] {
			t.Fatalf("offset[%d] = %d, want %d", i, off, offsets[i])
		}
	}
	if err := sc.VerifyPayload(); err != nil {
		t.Fatal(err)
	}
	got, err := sc.Payload()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %q, want %q", got, payload)
	}
	// Every record range streams exactly its payload slice, including
	// the empty record and multi-record spans.
	for a := 0; a <= sc.Count(); a++ {
		for b := a; b <= sc.Count(); b++ {
			want := payload[offsets[a]:offsets[b]]
			if n := sc.RangeLen(a, b); n != int64(len(want)) {
				t.Fatalf("RangeLen(%d,%d) = %d, want %d", a, b, n, len(want))
			}
			var buf bytes.Buffer
			if err := sc.WriteRange(&buf, a, b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("WriteRange(%d,%d) = %q, want %q", a, b, buf.Bytes(), want)
			}
		}
	}
}

// TestSidecarEmptyPayload: a shard of zero records (or all-empty
// records) still round-trips.
func TestSidecarEmptyPayload(t *testing.T) {
	file, err := AppendSidecar(nil, "k", nil, []int64{0})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := OpenSidecar(bytes.NewReader(file), int64(len(file)))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Count() != 0 || sc.PayloadLen() != 0 {
		t.Fatalf("count %d payload %d, want 0/0", sc.Count(), sc.PayloadLen())
	}
	if err := sc.VerifyPayload(); err != nil {
		t.Fatal(err)
	}
}

// TestAppendSidecarRejects: writer-side validation.
func TestAppendSidecarRejects(t *testing.T) {
	payload := []byte("abcd")
	cases := []struct {
		name    string
		kind    string
		offsets []int64
		want    string
	}{
		{"empty kind", "", []int64{0, 4}, "kind"},
		{"long kind", strings.Repeat("k", maxKindLen+1), []int64{0, 4}, "kind"},
		{"no offsets", "k", nil, "span"},
		{"offsets not from zero", "k", []int64{1, 4}, "span"},
		{"offsets short of payload", "k", []int64{0, 3}, "span"},
		{"offsets decrease", "k", []int64{0, 3, 2, 4}, "decrease"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := AppendSidecar(nil, tc.kind, payload, tc.offsets)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// openAndVerify runs the full reader-side verification a server does
// before serving: parse + metadata CRC, then payload CRC.
func openAndVerify(b []byte) error {
	sc, err := OpenSidecar(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		return err
	}
	return sc.VerifyPayload()
}

// TestSidecarCorruptionDetected: every single-byte flip anywhere in
// the file, every truncation, and trailing garbage must all be caught
// by OpenSidecar or VerifyPayload. The sidecar's two CRCs plus the
// exact-size equation make this exhaustive check cheap.
func TestSidecarCorruptionDetected(t *testing.T) {
	_, _, _, file := testSidecar(t)
	if err := openAndVerify(file); err != nil {
		t.Fatalf("pristine sidecar rejected: %v", err)
	}
	for i := range file {
		mut := append([]byte(nil), file...)
		mut[i] ^= 0xFF
		if err := openAndVerify(mut); err == nil {
			t.Fatalf("flip at byte %d of %d went undetected", i, len(file))
		}
	}
	for cut := 0; cut < len(file); cut++ {
		if err := openAndVerify(file[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes went undetected", cut, len(file))
		}
	}
	for _, extra := range []string{"x", "garbage-tail-bytes"} {
		grown := append(append([]byte(nil), file...), extra...)
		if err := openAndVerify(grown); err == nil {
			t.Fatalf("%d trailing garbage bytes went undetected", len(extra))
		}
	}
}

// FuzzSidecarDecode: OpenSidecar on arbitrary bytes must never panic
// or over-allocate, and anything it accepts must hold the addressing
// invariants range serving relies on.
func FuzzSidecarDecode(f *testing.F) {
	_, _, _, file := testSidecar(f)
	f.Add(file)
	for _, cut := range []int{1, len(file) / 2, len(file) - 1} {
		f.Add(append([]byte(nil), file[:cut]...))
	}
	mut := append([]byte(nil), file...)
	mut[len(mut)/2] ^= 0x40
	f.Add(mut)
	f.Add([]byte("FPAY"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := OpenSidecar(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		offs := sc.Offsets()
		if len(offs) != sc.Count()+1 || offs[0] != 0 || offs[sc.Count()] != sc.PayloadLen() {
			t.Fatalf("accepted sidecar with inconsistent offsets: %v vs payload %d", offs, sc.PayloadLen())
		}
		if sc.RangeLen(0, sc.Count()) != sc.PayloadLen() {
			t.Fatalf("full range %d != payload %d", sc.RangeLen(0, sc.Count()), sc.PayloadLen())
		}
		if sc.VerifyPayload() != nil {
			return
		}
		// Payload verified: the streamed ranges must reassemble to the
		// in-memory payload exactly.
		p, err := sc.Payload()
		if err != nil {
			t.Fatalf("VerifyPayload passed but Payload failed: %v", err)
		}
		var buf bytes.Buffer
		for i := 0; i < sc.Count(); i++ {
			if err := sc.WriteRange(&buf, i, i+1); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(buf.Bytes(), p) {
			t.Fatal("per-record ranges do not reassemble the payload")
		}
	})
}
