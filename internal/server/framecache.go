// Encoded-frame shard cache: the zero-copy half of the serving tier.
// The decoded-shard cache already makes shard opening cheap, but every
// frame-wire batch was still re-encoded per request — each record's
// tensors packed into little-endian bytes again for every client and
// every batch size. This cache stores each shard's records in
// frame-ready byte form exactly once: one contiguous payload buffer
// plus per-record boundary offsets. Any batch_size/cursor combination
// is then served by slicing byte ranges out of the buffer and writing
// them straight to the connection under a freshly framed header
// (domain.FrameEnvelope) — no per-request tensor marshalling, and
// byte-identical wire output to the encode-per-request path because a
// codec's batch payload is the concatenation of its single-record
// payloads.
package server

import (
	"context"
	"io"
	"time"

	"repro/internal/domain"
	"repro/internal/shard"
)

// encodedShard is one shard's records in frame-ready byte form.
type encodedShard struct {
	payload []byte
	// offsets has len(records)+1 entries; record i occupies
	// payload[offsets[i]:offsets[i+1]].
	offsets []int64
}

// count is the number of records in the shard.
func (e *encodedShard) count() int { return len(e.offsets) - 1 }

// slice returns the payload bytes of the record range [a, b).
func (e *encodedShard) slice(a, b int) []byte {
	return e.payload[e.offsets[a]:e.offsets[b]]
}

// sliceLen is len(slice(a, b)) without materializing the slice header.
func (e *encodedShard) sliceLen(a, b int) int {
	return int(e.offsets[b] - e.offsets[a])
}

// memBytes is the cache accounting for this entry.
func (e *encodedShard) memBytes() int64 {
	return int64(len(e.payload)) + int64(len(e.offsets))*8
}

// writeRange completes frameSource over in-memory payload bytes.
func (e *encodedShard) rangeLen(a, b int) int { return e.sliceLen(a, b) }

func (e *encodedShard) writeRange(w io.Writer, a, b int) error {
	_, err := w.Write(e.slice(a, b))
	return err
}

// frameRange is a contiguous record range [a, b) of one shard's frame
// source, buffered for the next batch emission. A batch that spans a
// shard boundary holds one range per shard.
type frameRange struct {
	src  frameSource
	a, b int
}

// frameShard returns one shard's encoded-frame form through the frame
// cache, filling on first access only. The fill prefers the shard's
// on-store sidecar — one read plus a CRC check, zero codec calls —
// and only decodes+encodes (through the decoded-shard cache, then
// backfilling the sidecar) when no usable sidecar exists. Fills are
// spanned as frame.fill under the filling request's span (with the
// nested shard.load appearing as a sibling child of the same request —
// the decoded-cache read happens inside this interval but parents to
// the request span, which keeps both directly visible in the tree).
func (s *Server) frameShard(ctx context.Context, job *Job, dom string, m *shard.Manifest, info shard.Info, open shard.Opener, codec domain.Codec) (*encodedShard, error) {
	key := job.id + "/" + info.Name
	return s.frames.Get(key, func() (*encodedShard, int64, error) {
		fillStart := time.Now()
		if !s.opts.DisableFrameStore {
			if sc, closer, ok := s.openFrameSidecar(job, info, codec); ok {
				payload, perr := sc.Payload()
				closer.Close()
				if perr == nil {
					enc := &encodedShard{payload: payload, offsets: sc.Offsets()}
					s.metrics.frameStoreHits.Inc()
					s.metrics.frameStoreBytes.Add(float64(len(payload)))
					s.recordChildSpan(ctx, "frame.fill", fillStart, time.Now(),
						map[string]string{"shard": info.Name, "source": "sidecar"})
					return enc, enc.memBytes(), nil
				}
				s.metrics.frameStoreErrors.Inc()
				s.logger.Warn("frame sidecar payload corrupt; re-encoding",
					"job", job.id, "shard", info.Name, "error", perr.Error())
			}
			s.metrics.frameStoreMisses.Inc()
		}
		records, err := s.shardRecords(ctx, job.id, dom, m, info, open, codec)
		if err != nil {
			return nil, 0, err
		}
		payload, offsets, err := domain.EncodeRecordPayloads(codec, records)
		if err != nil {
			return nil, 0, err
		}
		enc := &encodedShard{payload: payload, offsets: offsets}
		if !s.opts.DisableFrameStore {
			s.backfillSidecar(job, info, codec, payload, offsets)
		}
		s.recordChildSpan(ctx, "frame.fill", fillStart, time.Now(),
			map[string]string{"shard": info.Name, "source": "encode"})
		return enc, enc.memBytes(), nil
	})
}
