// Trace IDs: the request-correlation currency of the fleet. A trace ID
// is minted at the first draid component a request touches (SDK or
// server edge), carried on the X-Draid-Trace header across every
// proxy/redirect hop, stamped into slog lines and job records, and
// echoed back to the caller — so one grep over the fleet's logs
// reconstructs a cross-node request.
package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// TraceHeader is the HTTP header carrying the trace ID.
const TraceHeader = "X-Draid-Trace"

// maxTraceLen bounds accepted inbound trace IDs so a hostile caller
// cannot bloat logs or job records.
const maxTraceLen = 64

// NewTraceID returns a fresh 16-hex-char trace ID (64 random bits).
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; trace IDs are not
		// security material, so degrade to a fixed marker over panicking.
		return "trace-rand-failed"
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether an inbound trace ID is safe to adopt:
// non-empty, bounded, and limited to URL- and log-safe characters.
// Invalid inbound IDs are replaced, not rejected — tracing must never
// fail a request.
func ValidTraceID(s string) bool {
	if s == "" || len(s) > maxTraceLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			c == '-' || c == '_' || c == '.'
		if !ok {
			return false
		}
	}
	return true
}

// traceKey is the context key for the trace ID.
type traceKey struct{}

// WithTrace returns a context carrying the trace ID.
func WithTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceFrom returns the context's trace ID, or "" when none is set.
func TraceFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}
