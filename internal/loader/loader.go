// Package loader is the training-side consumer of AI-ready shards: it
// defines the sample wire encoding, and a prefetching, shuffling, batching
// data loader — the contract that makes a dataset "ready-to-train" (paper
// §2.2: data must "interface efficiently with GPU-accelerated AI training
// pipelines").
package loader

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/shard"
)

// Sample is one training example: a float32 feature vector and an integer
// label (-1 = unlabeled).
type Sample struct {
	Features []float32
	Label    int32
}

// Encode serializes a sample:
//
//	u32 featureCount | float32 features… | i32 label   (little-endian)
func (s *Sample) Encode() []byte {
	buf := make([]byte, 4+4*len(s.Features)+4)
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(s.Features)))
	for i, f := range s.Features {
		binary.LittleEndian.PutUint32(buf[4+i*4:], math.Float32bits(f))
	}
	binary.LittleEndian.PutUint32(buf[4+4*len(s.Features):], uint32(s.Label))
	return buf
}

// DecodeSample parses an encoded sample.
func DecodeSample(b []byte) (*Sample, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("loader: sample too short (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b[0:]))
	want := 4 + 4*n + 4
	if len(b) != want {
		return nil, fmt.Errorf("loader: sample with %d features needs %d bytes, have %d", n, want, len(b))
	}
	s := &Sample{Features: make([]float32, n)}
	for i := range s.Features {
		s.Features[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4+i*4:]))
	}
	s.Label = int32(binary.LittleEndian.Uint32(b[4+4*n:]))
	return s, nil
}

// Batch is a fixed group of samples stacked for a training step.
type Batch struct {
	Features [][]float32
	Labels   []int32
}

// Len returns the number of samples in the batch.
func (b *Batch) Len() int { return len(b.Labels) }

// Options configures a Loader.
type Options struct {
	BatchSize int
	// ShuffleBuffer holds this many samples for reservoir-style
	// shuffling; 0 disables shuffling (deterministic order).
	ShuffleBuffer int
	// Prefetch is the batch channel depth (pipeline overlap with the
	// consumer). Minimum effective value is 1.
	Prefetch int
	// DropRemainder discards a trailing partial batch.
	DropRemainder bool
	Seed          int64
}

// Loader streams batches from a shard set in a background goroutine.
type Loader struct {
	ch    chan *Batch
	errMu sync.Mutex
	err   error
	stop  chan struct{}
	once  sync.Once
}

// New starts a loader over the shards in the manifest.
func New(open shard.Opener, m *shard.Manifest, opts Options) (*Loader, error) {
	if opts.BatchSize <= 0 {
		return nil, fmt.Errorf("loader: batch size %d must be positive", opts.BatchSize)
	}
	if opts.Prefetch < 1 {
		opts.Prefetch = 1
	}
	l := &Loader{
		ch:   make(chan *Batch, opts.Prefetch),
		stop: make(chan struct{}),
	}
	go l.run(open, m, opts)
	return l, nil
}

func (l *Loader) run(open shard.Opener, m *shard.Manifest, opts Options) {
	defer close(l.ch)
	rng := rand.New(rand.NewSource(opts.Seed))
	var buffer []*Sample
	var pending []*Sample

	emit := func(s *Sample) bool {
		pending = append(pending, s)
		if len(pending) == opts.BatchSize {
			b := stack(pending)
			pending = pending[:0]
			select {
			case l.ch <- b:
				return true
			case <-l.stop:
				return false
			}
		}
		return true
	}

	err := shard.ReadAll(open, m, func(_ string, rec []byte) error {
		s, err := DecodeSample(rec)
		if err != nil {
			return err
		}
		if opts.ShuffleBuffer <= 0 {
			if !emit(s) {
				return errStopped
			}
			return nil
		}
		buffer = append(buffer, s)
		if len(buffer) >= opts.ShuffleBuffer {
			k := rng.Intn(len(buffer))
			out := buffer[k]
			buffer[k] = buffer[len(buffer)-1]
			buffer = buffer[:len(buffer)-1]
			if !emit(out) {
				return errStopped
			}
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStopped) {
		l.setErr(err)
		return
	}
	if errors.Is(err, errStopped) {
		return
	}
	// Drain the shuffle buffer.
	rng.Shuffle(len(buffer), func(i, j int) { buffer[i], buffer[j] = buffer[j], buffer[i] })
	for _, s := range buffer {
		if !emit(s) {
			return
		}
	}
	if len(pending) > 0 && !opts.DropRemainder {
		select {
		case l.ch <- stack(pending):
		case <-l.stop:
		}
	}
}

var errStopped = errors.New("loader: stopped")

func stack(samples []*Sample) *Batch {
	b := &Batch{
		Features: make([][]float32, len(samples)),
		Labels:   make([]int32, len(samples)),
	}
	for i, s := range samples {
		b.Features[i] = append([]float32(nil), s.Features...)
		b.Labels[i] = s.Label
	}
	return b
}

func (l *Loader) setErr(err error) {
	l.errMu.Lock()
	l.err = err
	l.errMu.Unlock()
}

// Next returns the next batch, or nil when the stream ends. Check Err
// after a nil return.
func (l *Loader) Next() *Batch {
	b, ok := <-l.ch
	if !ok {
		return nil
	}
	return b
}

// Err reports a decode/read failure that ended the stream early.
func (l *Loader) Err() error {
	l.errMu.Lock()
	defer l.errMu.Unlock()
	return l.err
}

// Stop cancels the background reader; safe to call multiple times.
func (l *Loader) Stop() { l.once.Do(func() { close(l.stop) }) }

// WriteSamples shards a sample set — the convenience used by pipelines and
// tests to produce loader-compatible shard sets.
func WriteSamples(sink shard.Sink, opts shard.Options, samples []*Sample) (*shard.Manifest, error) {
	w, err := shard.NewWriter(sink, opts)
	if err != nil {
		return nil, err
	}
	for _, s := range samples {
		if err := w.Write(s.Encode()); err != nil {
			return nil, err
		}
	}
	return w.Close()
}
