// Request forwarding between fleet members. A node that does not own a
// job either proxies the request to the owner (default — the client
// never learns the topology) or answers 307 with the owner's URL when
// the client asked for redirects via the X-Draid-Route header. Proxied
// batch streams are flushed at every read — line-granular for NDJSON,
// frame-granular for the binary frame wire (Forward clones the request
// headers, so Accept negotiation crosses the proxy intact and frame
// streams relay transparently; redirects are never required for them)
// — so a tail -f style consumer sees batches as the owner emits them,
// not when the buffer fills.
package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Routing headers.
const (
	// HeaderRoute lets the client choose forwarding: "redirect" gets a
	// 307 to the owning node instead of a transparent proxy.
	HeaderRoute = "X-Draid-Route"
	// HeaderForwarded carries the proxying node's ID; its presence
	// stops a second hop, so ring disagreement degrades to an error
	// instead of a proxy loop.
	HeaderForwarded = "X-Draid-Forwarded"
	// HeaderJobID pre-assigns the job ID on a forwarded submission (the
	// receiving node already hashed it to pick the owner).
	HeaderJobID = "X-Draid-Job-Id"
	// HeaderServedBy names the node that actually answered.
	HeaderServedBy = "X-Draid-Served-By"
	// HeaderPeerAuth authenticates node-to-node requests (see
	// Cluster.SetPeerAuth). Mirrored by internal/tenant so the server's
	// auth middleware and this package agree on the name without a
	// dependency between them.
	HeaderPeerAuth = "X-Draid-Peer-Auth"
	// HeaderTenant carries the authenticated tenant across fleet hops.
	// Receivers trust it only alongside a valid HeaderPeerAuth (or a
	// client credential that re-authenticates to the same identity).
	HeaderTenant = "X-Draid-Tenant"
)

// RouteRedirect is the HeaderRoute value selecting 307 redirects.
const RouteRedirect = "redirect"

// WantsRedirect reports whether the client asked for a 307 instead of
// a transparent proxy.
func WantsRedirect(r *http.Request) bool {
	return strings.EqualFold(r.Header.Get(HeaderRoute), RouteRedirect)
}

// Forwarded reports whether the request already took a proxy hop.
func Forwarded(r *http.Request) bool { return r.Header.Get(HeaderForwarded) != "" }

// Redirect answers 307 pointing the client at the owner. The method and
// body are preserved by 307 semantics, so POST submissions survive.
func Redirect(w http.ResponseWriter, r *http.Request, owner Node) {
	target := owner.URL + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	w.Header().Set(HeaderServedBy, owner.ID)
	http.Redirect(w, r, target, http.StatusTemporaryRedirect)
}

// Forward proxies the request to the owner and relays the response.
// A transport error (the owner is unreachable) is returned *before*
// anything is written to w, so the caller can mark the peer down and
// retry against the recomputed owner. Errors after the response header
// is relayed are terminal: the stream just ends, and the client resumes
// by cursor against a survivor.
func (c *Cluster) Forward(w http.ResponseWriter, r *http.Request, owner Node) error {
	target := owner.URL + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, target, r.Body)
	if err != nil {
		return fmt.Errorf("cluster: build forward to %s: %w", owner.ID, err)
	}
	req.Header = r.Header.Clone()
	return c.Relay(w, req, owner)
}

// Relay sends an already-built request to a peer and streams the
// response back — the forwarding primitive for callers (like job
// submission) whose upstream body was already consumed and re-encoded.
// Same error contract as Forward: a returned error means nothing was
// written to w. If the *upstream* dies after the response header was
// relayed, the proxied connection is aborted uncleanly (no terminal
// chunk): batches end at line/frame boundaries, so a clean end here
// would be indistinguishable from stream completion and the client
// would silently accept a truncated dataset instead of resuming its
// cursor against a survivor.
func (c *Cluster) Relay(w http.ResponseWriter, req *http.Request, owner Node) error {
	req.Header.Set(HeaderForwarded, c.self.ID)
	if c.peerAuth != "" {
		req.Header.Set(HeaderPeerAuth, c.peerAuth)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: forward to %s: %w", owner.ID, err)
	}
	defer resp.Body.Close()

	h := w.Header()
	for k, vs := range resp.Header {
		// Headers the proxying node already stamped (like the trace ID
		// its middleware set — which the upstream echoes, since the
		// forwarded request carried it) must not be duplicated.
		if _, set := h[k]; set {
			continue
		}
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	if h.Get(HeaderServedBy) == "" {
		h.Set(HeaderServedBy, owner.ID)
	}
	w.WriteHeader(resp.StatusCode)
	if err := flushCopy(w, resp.Body); err != nil {
		panic(http.ErrAbortHandler)
	}
	return nil
}

// FetchPeer GETs a path on a peer with the forwarded-hop header set (so
// the peer answers from local state instead of fanning out again) and a
// hard timeout — the building block for merged fleet views like the
// cluster-wide job list. tenantID, when non-empty, rides along as the
// authenticated tenant the fan-out acts for, so peers scope their
// answers exactly as the originating node would; it is only honoured
// because the peer-auth secret rides with it.
func (c *Cluster) FetchPeer(n Node, path, tenantID string, timeout time.Duration) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+path, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(HeaderForwarded, c.self.ID)
	if c.peerAuth != "" {
		req.Header.Set(HeaderPeerAuth, c.peerAuth)
	}
	if tenantID != "" {
		req.Header.Set(HeaderTenant, tenantID)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s%s: status %d", n.ID, path, resp.StatusCode)
	}
	return b, nil
}

// flushCopy relays a body, flushing after every read so streamed
// batches cross the proxy with per-line (or per-frame) latency. It
// returns the upstream read error that cut the relay short — the
// caller turns that into an unclean downstream abort. A downstream
// write error returns nil: that client is gone, there is nothing left
// to signal.
func flushCopy(w http.ResponseWriter, body io.Reader) error {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return nil
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}
