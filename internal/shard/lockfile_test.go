package shard

import (
	"errors"
	"os"
	"testing"
	"time"
)

func TestNodeLockExcludesSecondHolder(t *testing.T) {
	dir := t.TempDir()
	l1, err := AcquireNodeLock(dir, "n1", "http://a:8080", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AcquireNodeLock(dir, "n1", "http://b:8080", time.Minute); !errors.Is(err, ErrNodeLocked) {
		t.Fatalf("second acquire err = %v, want ErrNodeLocked", err)
	}
	// A different node ID coexists.
	l2, err := AcquireNodeLock(dir, "n2", "http://b:8080", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	got := ListNodeLocks(dir)
	if len(got) != 2 {
		t.Fatalf("ListNodeLocks = %v, want two entries", got)
	}
	if err := l1.Release(); err != nil {
		t.Fatal(err)
	}
	if err := l1.Release(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := os.Stat(l1.Path()); !os.IsNotExist(err) {
		t.Fatal("lock file survives Release")
	}
	// Released ID is reusable.
	l3, err := AcquireNodeLock(dir, "n1", "http://c:8080", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	l3.Release()
	l2.Release()
}

func TestNodeLockReclaimsStale(t *testing.T) {
	dir := t.TempDir()
	l1, err := AcquireNodeLock(dir, "n1", "dead", 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a SIGKILLed holder: stop the heartbeat without removing
	// the file, then age it past staleness.
	close(l1.stop)
	l1.wg.Wait()
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(l1.path, old, old); err != nil {
		t.Fatal(err)
	}
	l2, err := AcquireNodeLock(dir, "n1", "successor", 200*time.Millisecond)
	if err != nil {
		t.Fatalf("stale lock not reclaimed: %v", err)
	}
	defer l2.Release()
}

func TestNodeLockHeartbeatKeepsFresh(t *testing.T) {
	dir := t.TempDir()
	l, err := AcquireNodeLock(dir, "n1", "x", 80*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	time.Sleep(200 * time.Millisecond) // several heartbeat intervals
	fi, err := os.Stat(l.Path())
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(fi.ModTime()) > 80*time.Millisecond {
		t.Fatalf("heartbeat stale: mtime %s old", time.Since(fi.ModTime()))
	}
	// And a live lock with a short staleAfter is still not reclaimable.
	if _, err := AcquireNodeLock(dir, "n1", "thief", 80*time.Millisecond); !errors.Is(err, ErrNodeLocked) {
		t.Fatalf("live heartbeating lock was stolen: %v", err)
	}
}
