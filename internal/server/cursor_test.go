package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

func TestParseCursor(t *testing.T) {
	good := map[string]Cursor{
		"0:0":     {0, 0},
		"3:128":   {3, 128},
		"10:1":    {10, 1},
		"0:7":     {0, 7},
		"123:456": {123, 456},
	}
	for in, want := range good {
		got, err := ParseCursor(in)
		if err != nil || got != want {
			t.Fatalf("ParseCursor(%q) = %+v, %v; want %+v", in, got, err, want)
		}
		if got.String() != in {
			t.Fatalf("round trip %q -> %q", in, got.String())
		}
	}
	bad := []string{
		"", ":", "1", "1:", ":1", "1:2:3", "-1:0", "0:-1", "+1:0",
		"a:b", "1:x", " 1:2", "1 :2", "1: 2", "1:2 ", "01:2", "1:02",
		"0x1:0", "1e3:0", "99999999999999999999:0", "0:99999999999999999999",
		"1:2\n", "∞:0",
	}
	for _, in := range bad {
		if c, err := ParseCursor(in); err == nil {
			t.Fatalf("ParseCursor(%q) accepted as %+v", in, c)
		}
	}
}

func TestCursorValidate(t *testing.T) {
	m := &shard.Manifest{Shards: []shard.Info{{Records: 10}, {Records: 5}}}
	for _, ok := range []Cursor{{0, 0}, {0, 10}, {1, 5}, {2, 0}, {1, 0}} {
		if err := ok.validate(m); err != nil {
			t.Fatalf("cursor %s rejected: %v", ok, err)
		}
	}
	for _, badc := range []Cursor{{3, 0}, {2, 1}, {0, 11}, {1, 6}, {-1, 0}, {0, -1}} {
		if err := badc.validate(m); err == nil {
			t.Fatalf("cursor %s accepted", badc)
		}
	}
}

// FuzzParseCursor hardens the parser against hostile query strings:
// it must never panic, and anything it accepts must be canonical
// (round-trips through String) and in-range for indexing.
func FuzzParseCursor(f *testing.F) {
	for _, seed := range []string{"0:0", "3:128", "-1:5", "01:2", "1:2:3", ":", "", "a:b",
		"99999999999999999999:1", "0x10:4", "7", "7:", ":7", "∞:∞"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseCursor(s)
		if err != nil {
			return
		}
		if c.Shard < 0 || c.Record < 0 {
			t.Fatalf("ParseCursor(%q) accepted negative %+v", s, c)
		}
		if c.String() != s {
			t.Fatalf("accepted non-canonical %q (canonical %q)", s, c.String())
		}
	})
}

// streamLine is one decoded batch with its payload isolated from the
// batch counter, so suffixes can be compared across resumed streams.
// The payload is the raw decoded JSON object minus "batch", making the
// comparison kind-agnostic — it covers every domain codec's fields.
type streamLine struct {
	cursor  string
	kind    string
	payload map[string]any
}

// streamFrom decodes a batch stream into lines.
func streamFrom(t *testing.T, url, cursor string) []streamLine {
	t.Helper()
	if cursor != "" {
		url += "&cursor=" + cursor
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream %s: status %d", url, resp.StatusCode)
	}
	var out []streamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var payload map[string]any
		if err := json.Unmarshal(sc.Bytes(), &payload); err != nil {
			t.Fatalf("bad line: %v", err)
		}
		if errMsg, ok := payload["error"]; ok {
			t.Fatalf("stream error line: %v", errMsg)
		}
		line := streamLine{payload: payload}
		line.cursor, _ = payload["cursor"].(string)
		line.kind, _ = payload["kind"].(string)
		if line.cursor == "" || line.kind == "" {
			t.Fatalf("line without cursor/kind: %s", sc.Text())
		}
		delete(payload, "batch")
		out = append(out, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// assertSuffix requires got to equal want's payloads exactly.
func assertSuffix(t *testing.T, ctx string, got, want []streamLine) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d lines, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i].cursor != want[i].cursor ||
			!reflect.DeepEqual(got[i].payload, want[i].payload) {
			t.Fatalf("%s: line %d differs (cursor %s vs %s)", ctx, i, got[i].cursor, want[i].cursor)
		}
	}
}

// resumeExhaustive streams a job once per record (batch_size=1), then
// resumes at every shard boundary and at mid-shard offsets, requiring
// each resumed stream to reproduce the reference suffix exactly. It
// also chains single-batch connections — a client disconnecting after
// every batch — end to end.
func resumeExhaustive(t *testing.T, ts *httptest.Server, spec JobSpec, wantKind string) {
	t.Helper()
	id, err := SubmitAndWait(ts.URL, spec, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	base := ts.URL + "/v1/jobs/" + id + "/batches?batch_size=1"
	ref := streamFrom(t, base, "")
	if len(ref) < 4 {
		t.Fatalf("reference stream too small (%d records) to exercise boundaries", len(ref))
	}
	for i, line := range ref {
		if line.kind != wantKind {
			t.Fatalf("line %d kind %q, want %q", i, line.kind, wantKind)
		}
	}

	// Pick resume points: after every record that ends a shard (cursor
	// "k:0"), plus first/middle records within each shard.
	resumeAt := map[int]bool{0: true, len(ref) - 1: true}
	shardStart := 0
	for i, line := range ref {
		if strings.HasSuffix(line.cursor, ":0") {
			resumeAt[i] = true // shard boundary: next stream starts a fresh shard
			mid := shardStart + (i-shardStart)/2
			resumeAt[mid] = true
			shardStart = i + 1
		}
	}
	boundaries := 0
	for i := range resumeAt {
		got := streamFrom(t, base, ref[i].cursor)
		assertSuffix(t, fmt.Sprintf("resume at %s", ref[i].cursor), got, ref[i+1:])
		if strings.HasSuffix(ref[i].cursor, ":0") {
			boundaries++
		}
	}
	if boundaries < 2 {
		t.Fatalf("only %d shard boundaries exercised; job too small", boundaries)
	}

	// Chained single-batch clients: disconnect after every batch.
	var chained []streamLine
	cursor := ""
	for {
		got := streamFrom(t, base+"&max_batches=1", cursor)
		if len(got) == 0 {
			break
		}
		chained = append(chained, got...)
		cursor = got[len(got)-1].cursor
	}
	assertSuffix(t, "chained single-batch resume", chained, ref)

	// The terminal cursor resumes to an empty, well-formed stream.
	if got := streamFrom(t, base, ref[len(ref)-1].cursor); len(got) != 0 {
		t.Fatalf("end-of-stream cursor yielded %d lines", len(got))
	}
}

// TestCursorResumeExhaustive runs the boundary/mid-shard/chained resume
// protocol against every wire codec: climate (samples), fusion
// (windowed Examples), and materials (ragged graphs) — multi-shard
// specs so real shard boundaries are crossed.
func TestCursorResumeExhaustive(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, CacheBytes: 32 << 20})
	for _, tc := range []struct {
		name string
		spec JobSpec
		kind string
	}{
		{"climate", JobSpec{Domain: core.Climate, Seed: 5, Months: 48, Lat: 16, Lon: 32}, "samples"},
		{"fusion", JobSpec{Domain: core.Fusion, Seed: 5, Shots: 12}, "fusion_windows"},
		{"materials", JobSpec{Domain: core.Materials, Seed: 5, Structures: 30}, "materials_graphs"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resumeExhaustive(t, ts, tc.spec, tc.kind)
		})
	}
}

// TestCursorResumeBio runs the resume protocol against sealed shards:
// the decrypting opener must hand back identical plaintext wherever
// the client reconnects.
func TestCursorResumeBio(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, CacheBytes: 32 << 20})
	id, err := SubmitAndWait(ts.URL, JobSpec{Domain: core.BioHealth, Seed: 5, Subjects: 32}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	base := ts.URL + "/v1/jobs/" + id + "/batches?batch_size=2"
	ref := streamFrom(t, base, "")
	if len(ref) < 3 {
		t.Fatalf("bio stream too small (%d batches)", len(ref))
	}
	for i := 0; i < len(ref)-1; i++ {
		got := streamFrom(t, base, ref[i].cursor)
		assertSuffix(t, fmt.Sprintf("bio resume after batch %d", i), got, ref[i+1:])
	}
}

// TestCursorRejectsMalformed covers the HTTP surface: garbage and
// out-of-range cursors must 400, not stream or crash.
func TestCursorRejectsMalformed(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	id, err := SubmitAndWait(ts.URL, JobSpec{Domain: core.Climate, Months: 12, Lat: 8, Lon: 16}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, cur := range []string{"abc", "1", "1:2:3", "-1:0", "0:-1", "01:0", "999999:0", "0:999999", "%20:2"} {
		code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/batches?cursor="+cur, nil)
		if code != http.StatusBadRequest {
			t.Fatalf("cursor %q: status %d, want 400", cur, code)
		}
	}
}
