// Command benchreport regenerates every paper artifact from running code:
// Figure 1 (the raw→AI-ready flow), Table 1 (the four domain archetype
// pipelines), Table 2 (the maturity matrix), and the quantitative claims
// C1 (parallel I/O scaling), C2 (curation-time share), and C3 (iterative
// feedback). EXPERIMENTS.md records paper-vs-measured for each.
//
// The serve experiment benchmarks the draid serving tier (N concurrent
// clients streaming batches over HTTP) and writes its result to
// BENCH_serve.json alongside the console report, so serving throughput
// is tracked the same way as the pipeline benchmarks.
//
// Usage:
//
//	benchreport               # run everything
//	benchreport -exp table1   # one experiment: fig1|table1|table2|scaling|curation|feedback|serve
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"slices"
	"strings"

	"repro/internal/experiments"
	"repro/internal/server"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|fig1|table1|table2|scaling|curation|feedback|serve")
	seed := flag.Int64("seed", 1, "experiment seed")
	scaleMB := flag.Int("scale-mb", 16, "C1: megabytes to shard")
	shots := flag.Int("curation-shots", 8, "C2: shots in the curation comparison")
	serveClients := flag.Int("serve-clients", 8, "serve: concurrent streaming clients")
	servePasses := flag.Int("serve-passes", 2, "serve: streaming passes per client")
	serveJSON := flag.String("serve-json", "BENCH_serve.json", "serve: result file (empty disables)")
	flag.Parse()
	log.SetFlags(0)

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			log.Fatalf("benchreport %s: %v", name, err)
		}
		fmt.Println()
	}

	run("fig1", func() error {
		res, err := experiments.RunFig1(24, 16, 32, *seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	})

	run("table1", func() error {
		rows, err := experiments.RunTable1(*seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable1(rows))
		return nil
	})

	run("table2", func() error {
		res, err := experiments.RunTable2()
		if err != nil {
			return err
		}
		fmt.Printf("Table 2 reproduction — maturity matrix: %d populated cells, %d grey (N/A) cells, monotone=%t\n",
			res.PopulatedCells, res.GreyCells, res.Monotone)
		fmt.Println("Trajectory of a dataset advanced level by level (final state):")
		fmt.Print(res.Rendered[len(res.Rendered)-1])
		return nil
	})

	run("scaling", func() error {
		points, err := experiments.RunScaling(*scaleMB, []int{1, 2, 4, 8, 16}, 8)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderScaling(points, *scaleMB, 8))
		return nil
	})

	run("curation", func() error {
		res, err := experiments.RunCuration(*shots, *seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	})

	run("feedback", func() error {
		res, err := experiments.RunFeedback(400, *seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	})

	run("serve", func() error {
		res, err := server.RunServeBenchmark(*serveClients, 16, 0, *servePasses)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		if *serveJSON == "" {
			return nil
		}
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*serveJSON, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *serveJSON)
		return nil
	})

	known := []string{"fig1", "table1", "table2", "scaling", "curation", "feedback", "serve"}
	if *exp != "all" && !slices.Contains(known, *exp) {
		log.Fatalf("benchreport: unknown experiment %q (want all|%s)", *exp, strings.Join(known, "|"))
	}
}
