// Cluster-aware request handling: when the server runs as a fleet
// member every job-addressed request is checked against the consistent-
// hash ring and transparently proxied (or 307-redirected on request) to
// the owning node; /v1/cluster reports membership and ownership; and
// jobs stranded by a dead member are adopted — replayed from the shared
// data dir's job logs — the moment the ring reassigns their hash range.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/tenant"
	"repro/pkg/client"
)

// clusterMode reports whether this server is a fleet member.
func (s *Server) clusterMode() bool { return s.opts.Cluster != nil }

// jobID renders a sequence number as this node's job ID: cluster IDs
// embed the allocating node so fleet members never collide, and the
// ring hashes the full ID so placement is uniform regardless of which
// node allocated it.
func (s *Server) jobID(seq int) string {
	if c := s.opts.Cluster; c != nil {
		return fmt.Sprintf("job-%s-%06d", c.Self().ID, seq)
	}
	return fmt.Sprintf("job-%06d", seq)
}

// routedElsewhere forwards or redirects a /v1/jobs/{id}/* request to
// the ring owner, returning true when the response was written. False
// means the request is ours: we own the ID, the request already took
// its one proxy hop (ring disagreement degrades to local best-effort,
// never a loop), or every peer is unreachable and we are the fleet of
// last resort. An unreachable owner is marked down on the spot — the
// passive detection path — so the ring reassigns its ranges at request
// speed and the retry lands on the new owner.
func (s *Server) routedElsewhere(w http.ResponseWriter, r *http.Request) bool {
	c := s.opts.Cluster
	if c == nil || cluster.Forwarded(r) {
		return false
	}
	id := r.PathValue("id")
	for range c.Nodes() {
		owner := c.Owner(id)
		if owner.ID == c.Self().ID {
			return false
		}
		if cluster.WantsRedirect(r) {
			s.metrics.clusterRedirected.Inc()
			cluster.Redirect(w, r, owner)
			return true
		}
		if err := s.forwardSpanned(w, r, owner); err == nil {
			s.metrics.clusterProxied.Inc()
			return true
		}
		s.metrics.clusterRetries.Inc()
		c.MarkDown(owner.ID) // fires adoption via OnChange before the retry
	}
	return false
}

// forwardSpanned wraps cluster.Forward in a proxy.forward client span
// and stamps it as the parent the owner's server span will link under
// (Forward clones the request headers, so overwriting X-Draid-Span
// here re-parents the downstream hop from our root to this client
// span). The End is deferred: Forward panics with http.ErrAbortHandler
// when the upstream dies mid-stream, and the span must record anyway.
func (s *Server) forwardSpanned(w http.ResponseWriter, r *http.Request, owner cluster.Node) (err error) {
	var fwd *telemetry.Span
	if sp := telemetry.SpanFromContext(r.Context()); sp != nil {
		fwd = s.spans.StartChild("proxy.forward", sp.Context())
		fwd.SetAttr("peer", owner.ID)
		r.Header.Set(telemetry.SpanHeader, fwd.Context().String())
	}
	defer func() {
		if err != nil {
			fwd.SetError(err.Error())
		}
		fwd.End()
	}()
	return s.opts.Cluster.Forward(w, r, owner)
}

// clusterSubmit routes a job submission. The receiving node allocates
// the job ID (hashing it picks the owner), then hands the spec to the
// owner with the ID pre-assigned — via transparent proxy, or via a 307
// carrying ?job_id= when the client asked for redirects.
func (s *Server) clusterSubmit(w http.ResponseWriter, r *http.Request, spec JobSpec) {
	c := s.opts.Cluster
	trace := telemetry.TraceFrom(r.Context())
	tenantID := tenant.FromContext(r.Context()).ID
	id := r.Header.Get(cluster.HeaderJobID)
	if id == "" {
		id = r.URL.Query().Get("job_id")
	}
	if id != "" {
		// Pre-assigned: reject anything that does not parse as a fleet
		// job ID — the ID names a shard directory on the shared dir.
		if node, _, ok := parseJobID(id); !ok || node == "" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid pre-assigned job id %q", id))
			return
		}
	} else {
		s.mu.Lock()
		s.seq++
		id = s.jobID(s.seq)
		s.mu.Unlock()
	}
	if cluster.Forwarded(r) {
		// Terminal hop: enqueue here even if our ring view disagrees —
		// any member can run any job, and the ID decides routing later.
		s.submitLocal(w, spec, id, trace, tenantID)
		return
	}
	body, err := json.Marshal(spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	for range c.Nodes() {
		owner := c.Owner(id)
		if owner.ID == c.Self().ID {
			s.submitLocal(w, spec, id, trace, tenantID)
			return
		}
		if cluster.WantsRedirect(r) {
			s.metrics.clusterRedirected.Inc()
			w.Header().Set(cluster.HeaderServedBy, owner.ID)
			http.Redirect(w, r, owner.URL+"/v1/jobs?job_id="+url.QueryEscape(id), http.StatusTemporaryRedirect)
			return
		}
		req, rerr := http.NewRequestWithContext(r.Context(), http.MethodPost, owner.URL+"/v1/jobs", bytes.NewReader(body))
		if rerr != nil {
			writeError(w, http.StatusInternalServerError, rerr)
			return
		}
		// Propagate the caller's content negotiation instead of
		// clobbering it: the terminal hop must see the same Accept (and
		// any content-type parameters) the client sent, or forwarded
		// requests would silently lose wire-format negotiation.
		if ct := r.Header.Get("Content-Type"); ct != "" {
			req.Header.Set("Content-Type", ct)
		} else {
			req.Header.Set("Content-Type", "application/json")
		}
		if accept := r.Header.Get("Accept"); accept != "" {
			req.Header.Set("Accept", accept)
		}
		req.Header.Set(cluster.HeaderJobID, id)
		// The relayed submission is a new request, not a clone — carry
		// the trace (and our span as the parent context) explicitly so
		// the owner logs the same ID and its server span links under
		// this hop. The authenticated tenant rides the same way (Relay
		// stamps the peer secret that makes it trustworthy).
		if trace != "" {
			req.Header.Set(telemetry.TraceHeader, trace)
		}
		if tenantID != "" {
			req.Header.Set(cluster.HeaderTenant, tenantID)
		}
		if err := s.relaySpanned(w, r, req, owner); err == nil {
			s.metrics.clusterProxied.Inc()
			return
		}
		s.metrics.clusterRetries.Inc()
		c.MarkDown(owner.ID)
	}
	s.submitLocal(w, spec, id, trace, tenantID) // every peer down: degrade to local service
}

// relaySpanned wraps cluster.Relay in a proxy.submit client span. r is
// the inbound request (the span parent); req is the outbound relay.
// Deferred End for the same reason as forwardSpanned: Relay aborts
// uncleanly when the upstream dies mid-response.
func (s *Server) relaySpanned(w http.ResponseWriter, r, req *http.Request, owner cluster.Node) (err error) {
	var rly *telemetry.Span
	if sp := telemetry.SpanFromContext(r.Context()); sp != nil {
		rly = s.spans.StartChild("proxy.submit", sp.Context())
		rly.SetAttr("peer", owner.ID)
		req.Header.Set(telemetry.SpanHeader, rly.Context().String())
	}
	defer func() {
		if err != nil {
			rly.SetError(err.Error())
		}
		rly.End()
	}()
	return s.opts.Cluster.Relay(w, req, owner)
}

// clusterInfo is the /v1/cluster document.
type clusterInfo struct {
	Clustered bool                   `json:"clustered"`
	Self      string                 `json:"self,omitempty"`
	VNodes    int                    `json:"vnodes,omitempty"`
	Members   []cluster.MemberStatus `json:"members,omitempty"`
	JobsLocal int                    `json:"jobs_local"`
	// Registered lists node lock files seen on the shared data dir —
	// the fleet roster as the filesystem tells it, which may lag or
	// lead the probe view.
	Registered []string      `json:"registered_nodes,omitempty"`
	Job        *jobOwnership `json:"job,omitempty"`
}

// jobOwnership answers /v1/cluster?job=<id>: which member owns the ID.
type jobOwnership struct {
	ID    string `json:"id"`
	Owner string `json:"owner"`
	URL   string `json:"url"`
	Local bool   `json:"local"`
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	local := len(s.jobs)
	s.mu.Unlock()
	info := clusterInfo{JobsLocal: local}
	c := s.opts.Cluster
	if c == nil {
		writeJSON(w, http.StatusOK, info)
		return
	}
	info.Clustered = true
	info.Self = c.Self().ID
	info.VNodes = c.VNodes()
	info.Members = c.Status()
	if s.opts.DataDir != "" {
		info.Registered = shard.ListNodeLocks(filepath.Join(s.opts.DataDir, "nodes"))
	}
	if id := r.URL.Query().Get("job"); id != "" {
		// Ownership lookups are scoped like the job itself: placement
		// reveals which member holds a tenant's data.
		if s.tenants != nil {
			s.mu.Lock()
			job, held := s.jobs[id]
			s.mu.Unlock()
			if held {
				if ident := tenant.FromContext(r.Context()); !ident.CanAccess(job.tenant) {
					writeError(w, http.StatusForbidden, fmt.Errorf("job %q belongs to another tenant", id))
					return
				}
			}
		}
		owner := c.Owner(id)
		info.Job = &jobOwnership{ID: id, Owner: owner.ID, URL: owner.URL, Local: owner.ID == c.Self().ID}
	}
	writeJSON(w, http.StatusOK, info)
}

// adoptOrphans scans the shared data dir's merged job logs and takes
// ownership of every job the current ring assigns to this node but
// which is missing from the local table — the re-ownership half of
// failover. Dead members' completed jobs come back servable from their
// on-disk shard sets; jobs they were still running come back failed (or
// requeued under Options.Requeue, rerunning the deterministic spec).
// filterID restricts the scan to one job ("" adopts everything owed).
func (s *Server) adoptOrphans(filterID string) {
	if s.opts.Cluster == nil || s.opts.DataDir == "" {
		return
	}
	s.adoptMu.Lock()
	defer s.adoptMu.Unlock()
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return
	}
	// Cheap pre-check before the full log read: if no member's log grew
	// since the last scan and the asked-for ID was not in them, there is
	// nothing to adopt — without this, every request for a bogus or
	// evicted ID would re-read the whole shared log set under adoptMu.
	sig := jobLogSig(s.opts.DataDir)
	if filterID != "" && sig == s.scanSig && s.scanIDs != nil && !s.scanIDs[filterID] {
		return
	}
	recs, err := readAllJobLogs(s.opts.DataDir)
	if err != nil {
		return
	}
	states, _ := replayJobs(recs, s.opts.Cluster.Self().ID)
	// Memo only the IDs that survived replay: an evicted job's records
	// are still in the logs, but it can never be adopted, so repeated
	// requests for it must hit the early return, not a fresh scan.
	s.scanSig = sig
	s.scanIDs = make(map[string]bool, len(states))
	for _, st := range states {
		s.scanIDs[st.sub.ID] = true
	}
	for _, st := range states {
		id := st.sub.ID
		if filterID != "" && id != filterID {
			continue
		}
		// Full scans only take what the ring says is ours. A targeted
		// adoption skips that check: the request reached us because
		// *some* member's ring routed it here, and that member may have
		// observed the owner's death before we probed it — refusing
		// until our own ring catches up would 404 a servable job.
		if filterID == "" && !s.opts.Cluster.IsLocal(id) {
			continue
		}
		// Never seize a job another member may still be running: a
		// non-terminal record plus a fresh lock-file heartbeat from the
		// member that accepted it means "slow, not dead" — marking it
		// failed (or wiping its half-written shards under -requeue)
		// would turn a transient ring disagreement into data loss.
		// Terminal jobs are immutable on disk and always safe to adopt.
		if !st.hasTerm && st.sub.Node != "" && st.sub.Node != s.nodeID() && s.nodeLockFresh(st.sub.Node) {
			continue
		}
		s.mu.Lock()
		_, exists := s.jobs[id]
		s.mu.Unlock()
		if exists {
			continue
		}
		job, requeue, err := s.restoreJob(st)
		if err != nil {
			continue
		}
		s.mu.Lock()
		if _, raced := s.jobs[id]; raced {
			s.mu.Unlock()
			continue
		}
		s.jobs[id] = job
		s.order = append(s.order, id)
		s.metrics.jobsTotal.Set(float64(len(s.jobs)))
		s.mu.Unlock()
		s.metrics.clusterAdopted.Inc()
		s.addDurableEvent(job, client.EventAdopted, "replayed from shared log after ownership change")
		s.logger.Info("job adopted", "job", id, "trace", job.trace)
		if requeue {
			s.enqueueRestored(job)
		}
	}
}

// adoptJob is the lazy single-job adoption used on a table miss: a
// request for a job we own but never saw (its owner died and we have
// not probed that yet) replays it from the shared logs on the spot.
func (s *Server) adoptJob(id string) *Job {
	s.adoptOrphans(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// nodeLockStale mirrors the staleness window passed to AcquireNodeLock:
// a lock heartbeat older than this means its holder is presumed dead.
const nodeLockStale = 10 * time.Second

// nodeLockFresh reports whether a member's shared-dir lock file has a
// recent heartbeat — liveness as the filesystem tells it, which cuts
// through transient probe/ring disagreement.
func (s *Server) nodeLockFresh(nodeID string) bool {
	fi, err := os.Stat(filepath.Join(s.opts.DataDir, "nodes", nodeID+".lock"))
	return err == nil && time.Since(fi.ModTime()) <= nodeLockStale
}

// jobLogSig fingerprints the shared dir's job logs (name, size, mtime)
// so repeated adoption scans can skip re-reading unchanged logs.
func jobLogSig(dataDir string) string {
	paths, err := filepath.Glob(filepath.Join(dataDir, "jobs*.log"))
	if err != nil {
		return ""
	}
	sort.Strings(paths)
	var b strings.Builder
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "%s:%d:%d;", p, fi.Size(), fi.ModTime().UnixNano())
	}
	return b.String()
}

// mergeClusterList fans the job list out to alive peers and merges
// their local views with ours, deduplicated by job ID (after a
// failover-and-return, two members can briefly hold the same job — the
// current ring owner's copy wins) and ordered by submission time.
// tenantID is the requesting identity, carried to each peer so its
// local view is scoped exactly as ours was ("" = admin or auth off).
func (s *Server) mergeClusterList(out []JobStatus, tenantID string) []JobStatus {
	c := s.opts.Cluster
	nodes := c.Nodes()
	perPeer := make([][]JobStatus, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		if n.ID == c.Self().ID || !c.Alive(n.ID) {
			continue
		}
		wg.Add(1)
		go func(i int, n cluster.Node) {
			defer wg.Done()
			b, err := c.FetchPeer(n, "/v1/jobs?scope=local", tenantID, 5*time.Second)
			if err != nil {
				return // a dying peer hides its jobs until adoption catches up
			}
			var peer []JobStatus
			if json.Unmarshal(b, &peer) == nil {
				perPeer[i] = peer
			}
		}(i, n)
	}
	wg.Wait() // concurrent fetches: one slow peer costs one timeout, not N
	for _, peer := range perPeer {
		out = append(out, peer...)
	}
	best := make(map[string]int, len(out)) // job ID -> index of kept copy
	deduped := out[:0]
	for _, st := range out {
		i, dup := best[st.ID]
		if !dup {
			best[st.ID] = len(deduped)
			deduped = append(deduped, st)
			continue
		}
		if st.Node == c.Owner(st.ID).ID {
			deduped[i] = st
		}
	}
	out = deduped
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Submitted.Equal(out[j].Submitted) {
			return out[i].Submitted.Before(out[j].Submitted)
		}
		return out[i].ID < out[j].ID
	})
	return out
}
