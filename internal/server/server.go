// Package server is the draid serving tier: it turns the in-process
// data-readiness library into a facility service. Clients list the
// registry's domain templates, submit pipeline jobs that run
// asynchronously on a bounded worker pool, follow each job's readiness
// trajectory and provenance, and stream training batches from completed
// jobs' shard sets through an LRU shard cache. /metrics exposes the
// paper-facing accounting (stage timings, jobs in flight, bytes served)
// built on internal/metrics.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/loader"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/shard"
)

// Options tunes a Server.
type Options struct {
	// Workers bounds concurrent pipeline executions. <=0 means 2.
	Workers int
	// QueueDepth bounds jobs waiting for a worker; submissions beyond it
	// are rejected with 429 (explicit backpressure, not unbounded RAM).
	// <=0 means 64.
	QueueDepth int
	// CacheBytes budgets the decoded-shard LRU cache. <=0 disables it.
	CacheBytes int64
}

// Server is the draid HTTP service. Create with New, serve via Handler,
// stop with Close.
type Server struct {
	mux   *http.ServeMux
	cache *ShardCache

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order for listing
	seq    int
	closed bool

	queue chan *Job
	stop  chan struct{}
	wg    sync.WaitGroup

	collector     *metrics.Collector
	jobsRunning   atomic.Int64
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	bytesServed   atomic.Int64
	batchesServed atomic.Int64
	samplesServed atomic.Int64
}

// New starts a server's worker pool and registers its routes.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	s := &Server{
		mux:       http.NewServeMux(),
		cache:     NewShardCache(opts.CacheBytes),
		jobs:      make(map[string]*Job),
		queue:     make(chan *Job, opts.QueueDepth),
		stop:      make(chan struct{}),
		collector: metrics.NewCollector(),
	}
	s.routes()
	for w := 0; w < opts.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP handler (also usable under httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Close initiates graceful shutdown: no new submissions are accepted,
// running jobs finish, and workers exit. Jobs still queued stay queued
// and are reported as such.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		// Check stop first: a blocking select alone picks randomly when
		// both channels are ready, which would keep draining a full
		// queue instead of shutting down.
		select {
		case <-s.stop:
			return
		default:
		}
		select {
		case <-s.stop:
			return
		case job := <-s.queue:
			s.runJob(job)
		}
	}
}

func (s *Server) runJob(job *Job) {
	job.mu.Lock()
	job.state = JobRunning
	job.started = time.Now()
	spec := job.spec
	job.mu.Unlock()
	s.jobsRunning.Add(1)
	defer s.jobsRunning.Add(-1)

	var res *jobResult
	err := s.collector.Time("job:"+string(spec.Domain), "pipeline", 0, 0, func() error {
		var rerr error
		res, rerr = runSpec(spec)
		return rerr
	})

	job.mu.Lock()
	job.finished = time.Now()
	if res != nil {
		job.trajectory = res.trajectory
		job.tracker = res.tracker
	}
	if err != nil {
		job.state = JobFailed
		job.err = err.Error()
		job.mu.Unlock()
		s.jobsFailed.Add(1)
		return
	}
	job.records = res.records
	job.manifest = res.manifest
	job.open = res.open
	job.servable = res.servable && res.manifest != nil
	job.state = JobDone
	job.mu.Unlock()
	s.jobsDone.Add(1)

	// Fold the pipeline's per-stage timings into the server collector so
	// /metrics aggregates stage cost across all jobs.
	for _, st := range res.pipe.Collector.ByStage() {
		s.collector.Record(metrics.Sample{
			Stage: st.Stage, Category: "curation",
			Duration: st.Total, Bytes: st.Bytes, Records: st.Records,
		})
	}
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /v1/templates", s.handleTemplates)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/provenance", s.handleProvenance)
	s.mux.HandleFunc("GET /v1/jobs/{id}/batches", s.handleBatches)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// TemplateInfo is the catalog entry served by /v1/templates.
type TemplateInfo struct {
	Domain      string `json:"domain"`
	Description string `json:"description"`
}

func (s *Server) handleTemplates(w http.ResponseWriter, _ *http.Request) {
	tpls := registry.Templates()
	out := make([]TemplateInfo, len(tpls))
	for i, t := range tpls {
		out[i] = TemplateInfo{Domain: string(t.Domain), Description: t.Description}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode job spec: %w", err))
		return
	}
	if _, err := registry.Lookup(spec.Domain); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server is shutting down"))
		return
	}
	s.seq++
	job := &Job{
		id:        fmt.Sprintf("job-%06d", s.seq),
		spec:      spec,
		state:     JobQueued,
		submitted: time.Now(),
	}
	if job.spec.Name == "" {
		job.spec.Name = job.id
	}
	select {
	case s.queue <- job:
		s.jobs[job.id] = job
		s.order = append(s.order, job.id)
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, job.Status())
	default:
		s.mu.Unlock()
		writeError(w, http.StatusTooManyRequests, fmt.Errorf("job queue full (%d waiting)", cap(s.queue)))
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return nil
	}
	return job
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if job := s.job(w, r); job != nil {
		writeJSON(w, http.StatusOK, job.Status())
	}
}

func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	job := s.job(w, r)
	if job == nil {
		return
	}
	job.mu.Lock()
	tracker := job.tracker
	job.mu.Unlock()
	if tracker == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("job %s has no provenance yet", job.id))
		return
	}
	b, err := tracker.Export()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// BatchWire is one streamed NDJSON line of /v1/jobs/{id}/batches.
type BatchWire struct {
	Batch    int         `json:"batch"`
	Features [][]float32 `json:"features"`
	Labels   []int32     `json:"labels"`
}

func (s *Server) handleBatches(w http.ResponseWriter, r *http.Request) {
	job := s.job(w, r)
	if job == nil {
		return
	}
	manifest, open, err := job.serveHandle()
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	batchSize, err := queryInt(r, "batch_size", 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	maxBatches, err := queryInt(r, "max_batches", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if batchSize <= 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch_size must be positive"))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	cw := &countingResponseWriter{w: w}
	enc := json.NewEncoder(cw)
	flusher, _ := w.(http.Flusher)

	served := 0
	failed := false
	var pending []*loader.Sample
	emit := func(samples []*loader.Sample) error {
		// Reference the cached feature slices directly — encoding only
		// reads them, and copying every batch would double memory
		// traffic on the serving hot path.
		wire := BatchWire{Batch: served, Features: make([][]float32, len(samples)), Labels: make([]int32, len(samples))}
		for i, sm := range samples {
			wire.Features[i] = sm.Features
			wire.Labels[i] = sm.Label
		}
		if err := enc.Encode(&wire); err != nil {
			return err
		}
		served++
		s.batchesServed.Add(1)
		s.samplesServed.Add(int64(len(samples)))
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

shards:
	for _, info := range manifest.Shards {
		samples, err := s.shardSamples(job.id, manifest, info, open)
		if err != nil {
			// Headers are gone; the NDJSON error line is the only channel left.
			line, _ := json.Marshal(map[string]string{"error": err.Error()})
			cw.writeLine(string(line))
			failed = true
			break
		}
		for _, sm := range samples {
			pending = append(pending, sm)
			if len(pending) == batchSize {
				if err := emit(pending); err != nil {
					break shards
				}
				pending = pending[:0]
				if maxBatches > 0 && served >= maxBatches {
					break shards
				}
			}
		}
	}
	if !failed && len(pending) > 0 && (maxBatches <= 0 || served < maxBatches) {
		_ = emit(pending)
	}
	s.bytesServed.Add(cw.n)
	s.collector.Record(metrics.Sample{
		Stage: "serve:batches", Category: "serve",
		Bytes: cw.n, Records: int64(served),
	})
}

// shardSamples returns one shard's decoded samples through the LRU
// cache, verifying checksums and decoding on first access only.
func (s *Server) shardSamples(jobID string, m *shard.Manifest, info shard.Info, open shard.Opener) ([]*loader.Sample, error) {
	key := jobID + "/" + info.Name
	return s.cache.Samples(key, func() ([]*loader.Sample, int64, error) {
		one := &shard.Manifest{Prefix: m.Prefix, Compressed: m.Compressed, Shards: []shard.Info{info}}
		var samples []*loader.Sample
		var bytes int64
		err := shard.ReadAll(open, one, func(_ string, rec []byte) error {
			sm, derr := loader.DecodeSample(rec)
			if derr != nil {
				return derr
			}
			samples = append(samples, sm)
			bytes += int64(len(rec))
			return nil
		})
		if err != nil {
			return nil, 0, err
		}
		return samples, bytes, nil
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.mu.Lock()
	queued := 0
	for _, j := range s.jobs {
		if st := j.Status().State; st == JobQueued {
			queued++
		}
	}
	total := len(s.jobs)
	s.mu.Unlock()

	fmt.Fprintf(w, "draid_jobs_total %d\n", total)
	fmt.Fprintf(w, "draid_jobs_queued %d\n", queued)
	fmt.Fprintf(w, "draid_jobs_in_flight %d\n", s.jobsRunning.Load())
	fmt.Fprintf(w, "draid_jobs_done_total %d\n", s.jobsDone.Load())
	fmt.Fprintf(w, "draid_jobs_failed_total %d\n", s.jobsFailed.Load())
	fmt.Fprintf(w, "draid_bytes_served_total %d\n", s.bytesServed.Load())
	fmt.Fprintf(w, "draid_batches_served_total %d\n", s.batchesServed.Load())
	fmt.Fprintf(w, "draid_samples_served_total %d\n", s.samplesServed.Load())

	cs := s.cache.Stats()
	fmt.Fprintf(w, "draid_shard_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "draid_shard_cache_bytes %d\n", cs.Bytes)
	fmt.Fprintf(w, "draid_shard_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "draid_shard_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "draid_shard_cache_evictions_total %d\n", cs.Evictions)

	stats := s.collector.ByStage()
	sort.Slice(stats, func(i, j int) bool { return stats[i].Stage < stats[j].Stage })
	for _, st := range stats {
		fmt.Fprintf(w, "draid_stage_seconds_total{stage=%q} %.6f\n", st.Stage, st.Total.Seconds())
		fmt.Fprintf(w, "draid_stage_calls_total{stage=%q} %d\n", st.Stage, st.Calls)
		fmt.Fprintf(w, "draid_stage_bytes_total{stage=%q} %d\n", st.Stage, st.Bytes)
	}
}

// countingResponseWriter tracks bytes written for the serving metrics.
type countingResponseWriter struct {
	w http.ResponseWriter
	n int64
}

func (c *countingResponseWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (c *countingResponseWriter) writeLine(line string) {
	n, _ := c.w.Write([]byte(line + "\n"))
	c.n += int64(n)
}

func queryInt(r *http.Request, key string, def int) (int, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("query %s=%q is not an integer", key, v)
	}
	return n, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
