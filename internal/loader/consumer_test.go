package loader

import (
	"testing"
	"time"

	"repro/internal/shard"
)

func TestConsumeDrainsEverything(t *testing.T) {
	sink := shard.NewMemSink()
	m, err := WriteSamples(sink, shard.Options{TargetBytes: 512}, mkSamples(40, 4))
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(sink, m, Options{BatchSize: 8, Prefetch: 4})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Consume(l, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Batches != 5 || stats.Samples != 40 {
		t.Fatalf("stats=%+v", stats)
	}
	if stats.Wall <= 0 {
		t.Fatalf("wall=%v", stats.Wall)
	}
}

func TestConsumeNilLoader(t *testing.T) {
	if _, err := Consume(nil, 0); err == nil {
		t.Fatal("want nil error")
	}
}

func TestConsumeStallFraction(t *testing.T) {
	// With a slow "GPU step" and deep prefetch, the loader should hide
	// its latency: stall fraction stays small.
	sink := shard.NewMemSink()
	m, err := WriteSamples(sink, shard.Options{TargetBytes: 4096}, mkSamples(64, 16))
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(sink, m, Options{BatchSize: 8, Prefetch: 8})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Consume(l, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StallFraction() > 0.5 {
		t.Fatalf("stall fraction=%v (stall=%v wall=%v)", stats.StallFraction(), stats.Stall, stats.Wall)
	}
	var zero ConsumeStats
	if zero.StallFraction() != 0 {
		t.Fatal("zero stats stall fraction")
	}
}

func TestConsumeSurfacesLoaderError(t *testing.T) {
	sink := shard.NewMemSink()
	w, _ := shard.NewWriter(sink, shard.Options{})
	if err := w.Write([]byte{1}); err != nil { // invalid sample
		t.Fatal(err)
	}
	m, _ := w.Close()
	l, err := New(sink, m, Options{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Consume(l, 0); err == nil {
		t.Fatal("want surfaced decode error")
	}
}

// BenchmarkLoaderPrefetch ablates prefetch depth against a paced
// consumer: deeper prefetch should not hurt and typically reduces stall.
func BenchmarkLoaderPrefetch(b *testing.B) {
	sink := shard.NewMemSink()
	m, err := WriteSamples(sink, shard.Options{TargetBytes: 1 << 14}, mkSamples(512, 32))
	if err != nil {
		b.Fatal(err)
	}
	for _, depth := range []int{1, 4, 16} {
		name := map[int]string{1: "p1", 4: "p4", 16: "p16"}[depth]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				l, err := New(sink, m, Options{BatchSize: 32, Prefetch: depth})
				if err != nil {
					b.Fatal(err)
				}
				stats, err := Consume(l, 100*time.Microsecond)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*stats.StallFraction(), "%stall")
			}
		})
	}
}
