package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/parfs"
)

// writeSet shards n records through a Writer over the store and
// returns the manifest.
func writeSet(t *testing.T, store Store, prefix string, n int) *Manifest {
	t.Helper()
	w, err := NewWriter(store, Options{Prefix: prefix, TargetBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Write([]byte(fmt.Sprintf("record-%04d-%s", i, strings.Repeat("x", 100)))); err != nil {
			t.Fatal(err)
		}
	}
	m, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// readSet re-reads every record through the verifying reader.
func readSet(t *testing.T, open Opener, m *Manifest) []string {
	t.Helper()
	var recs []string
	if err := ReadAll(open, m, func(_ string, rec []byte) error {
		recs = append(recs, string(rec))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestFSSinkRoundTrip(t *testing.T) {
	root := filepath.Join(t.TempDir(), "set")
	s, err := NewFSSink(root)
	if err != nil {
		t.Fatal(err)
	}
	m := writeSet(t, s, "fs", 40)
	recs := readSet(t, s, m)
	if len(recs) != 40 || m.TotalRecords() != 40 {
		t.Fatalf("read %d records, manifest says %d", len(recs), m.TotalRecords())
	}
	if len(m.Shards) < 2 {
		t.Fatalf("want rotation across >=2 shards, got %d", len(m.Shards))
	}
	names := s.Names()
	if len(names) != len(m.Shards) {
		t.Fatalf("store lists %d shards, manifest %d", len(names), len(m.Shards))
	}
	for _, info := range m.Shards {
		if got := s.Size(info.Name); got != info.StoredBytes {
			t.Fatalf("size(%s)=%d, manifest says %d", info.Name, got, info.StoredBytes)
		}
	}

	// A second store over the same root must serve the same bytes: this
	// is the durability contract a process restart relies on.
	if err := s.WriteManifest(m); err != nil {
		t.Fatal(err)
	}
	s2, err := NewFSSink(root)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s2.LoadManifest()
	if err != nil {
		t.Fatal(err)
	}
	recs2 := readSet(t, s2, m2)
	if len(recs2) != len(recs) {
		t.Fatalf("reopened store read %d records, want %d", len(recs2), len(recs))
	}
	for i := range recs {
		if recs[i] != recs2[i] {
			t.Fatalf("record %d differs across reopen", i)
		}
	}
}

func TestFSSinkManifestReplacedAtomically(t *testing.T) {
	s, err := NewFSSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m1 := writeSet(t, s, "a", 5)
	if err := s.WriteManifest(m1); err != nil {
		t.Fatal(err)
	}
	m2 := writeSet(t, s, "b", 5)
	m2.Shards = append(m1.Shards, m2.Shards...)
	if err := s.WriteManifest(m2); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadManifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Shards) != len(m2.Shards) {
		t.Fatalf("manifest has %d shards, want %d", len(got.Shards), len(m2.Shards))
	}
	// No staging leftovers: the temp file must be renamed or removed.
	for _, n := range s.Names() {
		if strings.HasPrefix(n, tmpPrefix) {
			t.Fatalf("temp file %q visible", n)
		}
	}
}

func TestFSSinkRejectsBadNames(t *testing.T) {
	s, err := NewFSSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "..", "a/b", `a\b`, "../escape", ManifestFile, tmpPrefix + "x"} {
		if _, err := s.Create(name); err == nil {
			t.Fatalf("Create(%q) accepted", name)
		}
		if _, err := s.Open(name); err == nil {
			t.Fatalf("Open(%q) accepted", name)
		}
	}
}

func TestFSSinkDuplicateCreateFails(t *testing.T) {
	s, err := NewFSSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Create("dup")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("dup"); err == nil {
		t.Fatal("duplicate create accepted")
	}
}

// TestFSSinkCrashLeavesNoPartials: an unclosed shard (a crash
// mid-write) must stay invisible, and reopening the root sweeps the
// temp file.
func TestFSSinkCrashLeavesNoPartials(t *testing.T) {
	root := t.TempDir()
	s, err := NewFSSink(root)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Create("lost")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("half-written")); err != nil {
		t.Fatal(err)
	}
	// No Close: simulate the process dying here.
	if names := s.Names(); len(names) != 0 {
		t.Fatalf("uncommitted shard visible: %v", names)
	}
	if _, err := NewFSSink(root); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("reopen left %d stray files", len(entries))
	}
}

func TestFSSinkDestroy(t *testing.T) {
	root := filepath.Join(t.TempDir(), "doomed")
	s, err := NewFSSink(root)
	if err != nil {
		t.Fatal(err)
	}
	writeSet(t, s, "d", 3)
	if err := s.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(root); !os.IsNotExist(err) {
		t.Fatalf("root survived destroy: %v", err)
	}
}

func TestParfsSinkRoundTripChargesIO(t *testing.T) {
	fs, err := parfs.New(parfs.Config{OSTs: 4, StripeSize: 1 << 10, BandwidthMBps: 1 << 20, LatencyMicros: 0})
	if err != nil {
		t.Fatal(err)
	}
	fs.SetSleep(func(time.Duration) {}) // timing is not under test here
	s := NewParfsSink(fs)
	m := writeSet(t, s, "pf", 30)
	recs := readSet(t, s, m)
	if len(recs) != 30 {
		t.Fatalf("read %d records", len(recs))
	}
	if len(s.Names()) != len(m.Shards) {
		t.Fatalf("names=%v vs %d shards", s.Names(), len(m.Shards))
	}
	for _, info := range m.Shards {
		if s.Size(info.Name) != info.StoredBytes {
			t.Fatalf("size mismatch for %s", info.Name)
		}
	}
	st := fs.Stats()
	if st.Ops == 0 || st.Bytes == 0 {
		t.Fatalf("no simulated I/O charged: %+v", st)
	}
}
