package climate

import (
	"fmt"
	"math"

	"repro/internal/pipeline"
	"repro/internal/tensor"
)

// Method selects the regridding scheme (paper §3.1: "interpolating
// spatial grids" / "regrids reanalysis data to uniform spatial
// resolutions").
type Method int

// Supported regridding methods.
const (
	// Bilinear interpolates each target cell from its four enclosing
	// source points (ClimaX-style).
	Bilinear Method = iota
	// Conservative block-averages source cells into each target cell,
	// preserving the grid mean (flux-conserving, used for downscaling).
	Conservative
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Bilinear:
		return "bilinear"
	case Conservative:
		return "conservative"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Regrid2D resamples one [lat, lon] grid to (newLat, newLon).
func Regrid2D(src *tensor.Tensor, newLat, newLon int, m Method) (*tensor.Tensor, error) {
	if src.Rank() != 2 {
		return nil, fmt.Errorf("climate: Regrid2D needs rank 2, got %d", src.Rank())
	}
	if newLat < 1 || newLon < 1 {
		return nil, fmt.Errorf("climate: invalid target grid %dx%d", newLat, newLon)
	}
	switch m {
	case Bilinear:
		return bilinear2D(src, newLat, newLon), nil
	case Conservative:
		return conservative2D(src, newLat, newLon), nil
	}
	return nil, fmt.Errorf("climate: unknown method %d", m)
}

func bilinear2D(src *tensor.Tensor, newLat, newLon int) *tensor.Tensor {
	h, w := src.Dim(0), src.Dim(1)
	out := tensor.New(newLat, newLon)
	for i := 0; i < newLat; i++ {
		// Map target row to source coordinates.
		y := 0.0
		if newLat > 1 {
			y = float64(i) * float64(h-1) / float64(newLat-1)
		}
		y0 := int(math.Floor(y))
		y1 := y0 + 1
		if y1 >= h {
			y1 = h - 1
		}
		fy := y - float64(y0)
		for j := 0; j < newLon; j++ {
			x := 0.0
			if newLon > 1 {
				x = float64(j) * float64(w-1) / float64(newLon-1)
			}
			x0 := int(math.Floor(x))
			x1 := x0 + 1
			if x1 >= w {
				x1 = w - 1
			}
			fx := x - float64(x0)
			v00, v01 := src.At(y0, x0), src.At(y0, x1)
			v10, v11 := src.At(y1, x0), src.At(y1, x1)
			out.Set(blend2(blend2(v00, v01, fx), blend2(v10, v11, fx), fy), i, j)
		}
	}
	return out
}

// blend2 interpolates a and b by t, tolerating NaN by falling back to the
// valid operand (nearest-available extension over gaps).
func blend2(a, b, t float64) float64 {
	aN, bN := math.IsNaN(a), math.IsNaN(b)
	switch {
	case aN && bN:
		return math.NaN()
	case aN:
		return b
	case bN:
		return a
	}
	return a*(1-t) + b*t
}

func conservative2D(src *tensor.Tensor, newLat, newLon int) *tensor.Tensor {
	h, w := src.Dim(0), src.Dim(1)
	out := tensor.New(newLat, newLon)
	for i := 0; i < newLat; i++ {
		// Source row span covered by target row i (fractional overlap).
		y0 := float64(i) * float64(h) / float64(newLat)
		y1 := float64(i+1) * float64(h) / float64(newLat)
		for j := 0; j < newLon; j++ {
			x0 := float64(j) * float64(w) / float64(newLon)
			x1 := float64(j+1) * float64(w) / float64(newLon)
			sum, wsum := 0.0, 0.0
			for sy := int(math.Floor(y0)); sy < int(math.Ceil(y1)) && sy < h; sy++ {
				oy := overlap(y0, y1, float64(sy), float64(sy+1))
				if oy <= 0 {
					continue
				}
				for sx := int(math.Floor(x0)); sx < int(math.Ceil(x1)) && sx < w; sx++ {
					ox := overlap(x0, x1, float64(sx), float64(sx+1))
					if ox <= 0 {
						continue
					}
					v := src.At(sy, sx)
					if math.IsNaN(v) {
						continue
					}
					wgt := oy * ox
					sum += v * wgt
					wsum += wgt
				}
			}
			if wsum == 0 {
				out.Set(math.NaN(), i, j)
			} else {
				out.Set(sum/wsum, i, j)
			}
		}
	}
	return out
}

func overlap(a0, a1, b0, b1 float64) float64 {
	lo := math.Max(a0, b0)
	hi := math.Min(a1, b1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// RegridStack resamples every timestep of a [T, lat, lon] stack, fanning
// timesteps across `workers` goroutines (the parallel-preprocessing path;
// workers<=1 runs serially).
func RegridStack(src *tensor.Tensor, newLat, newLon int, m Method, workers int) (*tensor.Tensor, error) {
	if src.Rank() != 3 {
		return nil, fmt.Errorf("climate: RegridStack needs rank 3, got %d", src.Rank())
	}
	T := src.Dim(0)
	out := tensor.New(T, newLat, newLon)
	err := pipeline.ForEach(T, workers, func(t int) error {
		slice, err := src.SubTensor(t)
		if err != nil {
			return err
		}
		rg, err := Regrid2D(slice, newLat, newLon, m)
		if err != nil {
			return err
		}
		return out.SetSubTensor(t, rg)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
