// Command gendata writes synthetic raw datasets for all four domain
// archetypes to a directory, in their community ingest formats: climate
// NetCDF + GRIB, fusion shot summaries, bio FASTA + clinical CSV, and
// materials POSCAR files.
//
// Usage:
//
//	gendata -out ./data -seed 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/bio"
	"repro/internal/climate"
	"repro/internal/formats/grib"
	"repro/internal/fusion"
	"repro/internal/materials"
)

func main() {
	out := flag.String("out", "data", "output directory")
	seed := flag.Int64("seed", 1, "generator seed")
	months := flag.Int("climate-months", 24, "climate: months of data")
	shots := flag.Int("fusion-shots", 12, "fusion: shots in the campaign")
	subjects := flag.Int("bio-subjects", 30, "bio: cohort size")
	structures := flag.Int("materials-structures", 40, "materials: structure count")
	flag.Parse()

	log.SetFlags(0)
	if err := run(*out, *seed, *months, *shots, *subjects, *structures); err != nil {
		log.Fatalf("gendata: %v", err)
	}
}

func run(out string, seed int64, months, shots, subjects, structures int) error {
	for _, sub := range []string{"climate", "fusion", "bio", "materials"} {
		if err := os.MkdirAll(filepath.Join(out, sub), 0o755); err != nil {
			return err
		}
	}

	// Climate: NetCDF plus one GRIB-packed month.
	field, err := climate.Synthesize(climate.SynthConfig{
		Months: months, Lat: 32, Lon: 64, MissingRate: 0.005, Seed: seed})
	if err != nil {
		return err
	}
	nc, err := field.ToNetCDF()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(out, "climate", "tas_synthetic.nc"), nc, 0o644); err != nil {
		return err
	}
	month, err := field.Data.SubTensor(0)
	if err != nil {
		return err
	}
	gb, err := grib.Encode(month.Data(), 64, 32, 16)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(out, "climate", "tas_month0.sgrb"), gb, 0o644); err != nil {
		return err
	}
	fmt.Printf("climate: %d months on 32x64 -> tas_synthetic.nc (%d bytes), tas_month0.sgrb (%d bytes)\n",
		months, len(nc), len(gb))

	// Fusion: shot index + per-shot signal dumps as CSV.
	store, err := fusion.SynthesizeCampaign(fusion.SynthConfig{
		Shots: shots, DisruptionRate: 0.3, FlattopSeconds: 2, DropoutRate: 0.01, Seed: seed})
	if err != nil {
		return err
	}
	idx, err := os.Create(filepath.Join(out, "fusion", "shots.csv"))
	if err != nil {
		return err
	}
	fmt.Fprintln(idx, "shot,disrupted,t_disrupt")
	total := 0
	for _, num := range store.Shots() {
		s, err := store.Get(num)
		if err != nil {
			return err
		}
		fmt.Fprintf(idx, "%d,%t,%.4f\n", s.Number, s.Disrupted, s.TDisrupt)
		f, err := os.Create(filepath.Join(out, "fusion", fmt.Sprintf("shot_%d.csv", num)))
		if err != nil {
			return err
		}
		fmt.Fprintln(f, "signal,t,value")
		for _, name := range fusion.DiagnosticNames() {
			sig := s.Signals[name]
			for i := range sig.Times {
				fmt.Fprintf(f, "%s,%.6f,%.6f\n", name, sig.Times[i], sig.Data[i])
				total++
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if err := idx.Close(); err != nil {
		return err
	}
	fmt.Printf("fusion: %d shots, %d samples -> shots.csv + shot_*.csv\n", shots, total)

	// Bio: FASTA + clinical CSV (with PHI, as raw clinical data has).
	cohort, err := bio.Synthesize(bio.SynthConfig{Subjects: subjects, SeqLen: 512, Seed: seed})
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(out, "bio", "cohort.fasta"), []byte(cohort.ToFASTA()), 0o600); err != nil {
		return err
	}
	cl, err := os.OpenFile(filepath.Join(out, "bio", "clinical.csv"), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return err
	}
	fmt.Fprintln(cl, "id,name,birth_date,zip,age,sex,notes")
	for _, r := range cohort.Clinical {
		fmt.Fprintf(cl, "%s,%s,%s,%s,%d,%s,%q\n",
			r.ID, r.Name, r.BirthDate.Format("2006-01-02"), r.ZIP, r.Age, r.Sex, r.Notes)
	}
	if err := cl.Close(); err != nil {
		return err
	}
	fmt.Printf("bio: %d subjects -> cohort.fasta + clinical.csv (mode 0600: contains synthetic PHI)\n", subjects)

	// Materials: POSCAR files.
	structs, err := materials.Synthesize(materials.SynthConfig{
		Structures: structures, MinAtoms: 4, MaxAtoms: 16, ImbalanceRatio: 5, Seed: seed})
	if err != nil {
		return err
	}
	for _, s := range structs {
		path := filepath.Join(out, "materials", s.ID+".poscar")
		if err := os.WriteFile(path, []byte(s.ToPOSCAR()), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("materials: %d structures -> *.poscar\n", structures)
	return nil
}
