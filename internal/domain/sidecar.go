// Frame-ready shard sidecars: each sealed shard can carry a
// `<shard>.fpay` companion holding its records already packed in the
// frame wire's payload encoding, plus the per-record boundary offsets.
// A cold frame stream is then served by writing FrameEnvelope headers
// and io.CopyN-ing payload byte ranges straight off the store — zero
// codec Encode/Decode calls — instead of decode+encode per request.
//
// Sidecar layout (all fixed-width integers little-endian):
//
//	header  := "FPAY" version(u8) kindLen(u8) kind
//	payload := EncodeRecordPayloads bytes (count records, packed)
//	index   := (count+1) × u64 offsets into payload; index[0] = 0,
//	           index[count] = len(payload); record i occupies
//	           payload[index[i]:index[i+1]]
//	footer  := count(u64) payloadLen(u64)
//	           crcPayload(u32, CRC-32C of payload)
//	           crcMeta(u32, CRC-32C of header‖index‖footer[0:20])
//	           "YAPF"
//
// The index and footer trail the payload so a writer can stream the
// payload without knowing record boundaries up front, and a reader
// can locate everything from the file size alone: footer at size-28,
// index just before it. Both CRCs split the failure domains — crcMeta
// guards the bytes the parser trusts for addressing, crcPayload
// guards the record bytes themselves — so a torn or bit-flipped
// sidecar is detected before a single corrupt byte reaches the wire.
package domain

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/shard"
)

// SidecarSuffix names a shard's frame-ready companion object:
// <shard>.fpay (sealed domains store it as <shard>.fpay.enc, encrypted
// under the same per-job key as the shard).
const SidecarSuffix = ".fpay"

// SidecarName returns the sidecar object name for a shard name.
func SidecarName(shardName string) string { return shardName + SidecarSuffix }

const (
	sidecarVersion   = 1
	sidecarHeaderMin = 6  // magic + version + kindLen, before the kind bytes
	sidecarFooterLen = 28 // count + payloadLen + crcPayload + crcMeta + trailer
)

var (
	sidecarMagic   = [4]byte{'F', 'P', 'A', 'Y'}
	sidecarTrailer = [4]byte{'Y', 'A', 'P', 'F'}
	sidecarCRC     = crc32.MakeTable(crc32.Castagnoli)
)

// AppendSidecar serializes one shard's frame-ready sidecar from the
// EncodeRecordPayloads result: payload holds the packed records, and
// offsets their len+1 boundary offsets. The whole file is built in
// memory — shards are capped at tens of KiB by every domain's shard
// target, so there is nothing to stream.
func AppendSidecar(dst []byte, kind string, payload []byte, offsets []int64) ([]byte, error) {
	if kind == "" || len(kind) > maxKindLen {
		return nil, fmt.Errorf("domain: sidecar kind %q out of range (1..%d bytes)", kind, maxKindLen)
	}
	if len(offsets) == 0 || offsets[0] != 0 || offsets[len(offsets)-1] != int64(len(payload)) {
		return nil, fmt.Errorf("domain: sidecar offsets do not span the %d-byte payload", len(payload))
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			return nil, fmt.Errorf("domain: sidecar offsets decrease at record %d", i-1)
		}
	}
	if len(payload) > MaxFrameBytes {
		return nil, fmt.Errorf("domain: sidecar payload %d bytes exceeds %d", len(payload), MaxFrameBytes)
	}
	metaStart := len(dst)
	dst = append(dst, sidecarMagic[:]...)
	dst = append(dst, sidecarVersion, byte(len(kind)))
	dst = append(dst, kind...)
	dst = append(dst, payload...)
	indexStart := len(dst)
	for _, off := range offsets {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(off))
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(offsets)-1))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, sidecarCRC))
	crcMeta := crc32.Checksum(dst[metaStart:metaStart+sidecarHeaderMin+len(kind)], sidecarCRC)
	crcMeta = crc32.Update(crcMeta, sidecarCRC, dst[indexStart:])
	dst = binary.LittleEndian.AppendUint32(dst, crcMeta)
	return append(dst, sidecarTrailer[:]...), nil
}

// EncodeSidecarFile packs recs with c and serializes the sidecar in
// one step — the builder-side entry point.
func EncodeSidecarFile(c Codec, recs []any) ([]byte, error) {
	payload, offsets, err := EncodeRecordPayloads(c, recs)
	if err != nil {
		return nil, err
	}
	return AppendSidecar(nil, c.Kind(), payload, offsets)
}

// Sidecar is a parsed, metadata-verified sidecar handle. The payload
// stays behind the ReaderAt — range serving reads only the bytes a
// batch needs — but the header, index, and footer have already been
// read, bounds-checked, and CRC-verified.
type Sidecar struct {
	kind       string
	ra         io.ReaderAt
	payloadOff int64
	payloadLen int64
	offsets    []int64
	crcPayload uint32
}

// OpenSidecar parses and verifies a sidecar's metadata from a
// random-access handle of the given total size. Every length is
// checked against size before anything is allocated, so a truncated,
// torn, or hostile file fails cleanly here. The payload bytes are NOT
// verified — call VerifyPayload (streaming) or Payload (in-memory)
// before serving from it.
func OpenSidecar(ra io.ReaderAt, size int64) (*Sidecar, error) {
	if size < sidecarHeaderMin+8+sidecarFooterLen {
		return nil, fmt.Errorf("domain: sidecar %d bytes is too short", size)
	}
	var head [sidecarHeaderMin + maxKindLen]byte
	hn := int64(len(head))
	if hn > size-sidecarFooterLen {
		hn = size - sidecarFooterLen
	}
	if _, err := io.ReadFull(io.NewSectionReader(ra, 0, hn), head[:hn]); err != nil {
		return nil, fmt.Errorf("domain: sidecar header: %w", err)
	}
	if [4]byte(head[:4]) != sidecarMagic {
		return nil, fmt.Errorf("domain: sidecar magic %q is not %q", head[:4], sidecarMagic)
	}
	if head[4] != sidecarVersion {
		return nil, fmt.Errorf("domain: sidecar version %d not supported (want %d)", head[4], sidecarVersion)
	}
	kindLen := int64(head[5])
	if kindLen == 0 || kindLen > maxKindLen || sidecarHeaderMin+kindLen > hn {
		return nil, fmt.Errorf("domain: sidecar kind length %d out of range", kindLen)
	}
	headerLen := sidecarHeaderMin + kindLen

	var foot [sidecarFooterLen]byte
	if _, err := ra.ReadAt(foot[:], size-sidecarFooterLen); err != nil {
		return nil, fmt.Errorf("domain: sidecar footer: %w", err)
	}
	if [4]byte(foot[24:28]) != sidecarTrailer {
		return nil, fmt.Errorf("domain: sidecar trailer %q is not %q", foot[24:28], sidecarTrailer)
	}
	count := binary.LittleEndian.Uint64(foot[0:8])
	payloadLen := binary.LittleEndian.Uint64(foot[8:16])
	if payloadLen > MaxFrameBytes {
		return nil, fmt.Errorf("domain: sidecar payload %d bytes exceeds %d", payloadLen, MaxFrameBytes)
	}
	// Every record costs at least one payload byte (matching the frame
	// decoder's bound), so count<=payloadLen caps the index allocation,
	// and the exact-size equation rejects any torn/truncated file.
	if count > payloadLen {
		return nil, fmt.Errorf("domain: sidecar claims %d records in %d payload bytes", count, payloadLen)
	}
	indexLen := (count + 1) * 8
	if uint64(size) != uint64(headerLen)+payloadLen+indexLen+sidecarFooterLen {
		return nil, fmt.Errorf("domain: sidecar size %d does not match header %d + payload %d + index %d + footer %d",
			size, headerLen, payloadLen, indexLen, sidecarFooterLen)
	}

	index := make([]byte, indexLen)
	indexOff := headerLen + int64(payloadLen)
	if _, err := ra.ReadAt(index, indexOff); err != nil {
		return nil, fmt.Errorf("domain: sidecar index: %w", err)
	}
	crcMeta := crc32.Checksum(head[:headerLen], sidecarCRC)
	crcMeta = crc32.Update(crcMeta, sidecarCRC, index)
	crcMeta = crc32.Update(crcMeta, sidecarCRC, foot[:20])
	if got := binary.LittleEndian.Uint32(foot[20:24]); got != crcMeta {
		return nil, fmt.Errorf("domain: sidecar metadata CRC mismatch (stored %08x, computed %08x)", got, crcMeta)
	}

	offsets := make([]int64, count+1)
	for i := range offsets {
		off := binary.LittleEndian.Uint64(index[i*8:])
		if off > payloadLen {
			return nil, fmt.Errorf("domain: sidecar offset %d exceeds payload %d", off, payloadLen)
		}
		offsets[i] = int64(off)
		if i > 0 && offsets[i] < offsets[i-1] {
			return nil, fmt.Errorf("domain: sidecar offsets decrease at record %d", i-1)
		}
	}
	if offsets[0] != 0 || offsets[count] != int64(payloadLen) {
		return nil, fmt.Errorf("domain: sidecar offsets do not span the payload")
	}
	return &Sidecar{
		kind:       string(head[sidecarHeaderMin:headerLen]),
		ra:         ra,
		payloadOff: headerLen,
		payloadLen: int64(payloadLen),
		offsets:    offsets,
		crcPayload: binary.LittleEndian.Uint32(foot[16:20]),
	}, nil
}

// Kind returns the wire kind the sidecar's payload is packed as.
func (s *Sidecar) Kind() string { return s.kind }

// Count returns the number of records in the payload.
func (s *Sidecar) Count() int { return len(s.offsets) - 1 }

// PayloadLen returns the total packed payload size in bytes.
func (s *Sidecar) PayloadLen() int64 { return s.payloadLen }

// RangeLen returns the payload byte length of records [a,b).
func (s *Sidecar) RangeLen(a, b int) int64 { return s.offsets[b] - s.offsets[a] }

// WriteRange copies the payload bytes of records [a,b) to w without
// materializing the rest of the payload — the io.CopyN disk tier of
// the zero-copy frame path.
func (s *Sidecar) WriteRange(w io.Writer, a, b int) error {
	n := s.RangeLen(a, b)
	if n == 0 {
		return nil
	}
	sr := io.NewSectionReader(s.ra, s.payloadOff+s.offsets[a], n)
	if _, err := io.CopyN(w, sr, n); err != nil {
		return fmt.Errorf("domain: sidecar payload range [%d,%d): %w", a, b, err)
	}
	return nil
}

// Payload reads the whole payload, verifies its CRC, and returns it —
// the cache-fill path, which wants the bytes in memory anyway.
func (s *Sidecar) Payload() ([]byte, error) {
	p := make([]byte, s.payloadLen)
	if _, err := io.ReadFull(io.NewSectionReader(s.ra, s.payloadOff, s.payloadLen), p); err != nil {
		return nil, fmt.Errorf("domain: sidecar payload: %w", err)
	}
	if got := crc32.Checksum(p, sidecarCRC); got != s.crcPayload {
		return nil, fmt.Errorf("domain: sidecar payload CRC mismatch (stored %08x, computed %08x)", s.crcPayload, got)
	}
	return p, nil
}

// Offsets returns the record boundary offsets (len Count()+1). The
// slice is the Sidecar's own — callers must not mutate it.
func (s *Sidecar) Offsets() []int64 { return s.offsets }

// VerifyPayload streams the payload once and checks its CRC without
// keeping it in memory — the range-serving path's pre-flight, so a
// bit-flipped payload is caught before any of it is copied to a
// client.
func (s *Sidecar) VerifyPayload() error {
	h := crc32.New(sidecarCRC)
	if _, err := io.CopyN(h, io.NewSectionReader(s.ra, s.payloadOff, s.payloadLen), s.payloadLen); err != nil {
		return fmt.Errorf("domain: sidecar payload: %w", err)
	}
	if got := h.Sum32(); got != s.crcPayload {
		return fmt.Errorf("domain: sidecar payload CRC mismatch (stored %08x, computed %08x)", s.crcPayload, got)
	}
	return nil
}

// BuildShardSidecars materializes the frame-ready sidecar for every
// shard in m that does not already have one, reading records through
// p's opener (decrypting sealed shards) and writing through p's sink
// (re-sealing sidecars under the same key). It is idempotent —
// existing sidecars are kept — and returns how many were built.
// Callers treat failure as a lost optimization, not a failed job: the
// serving tier falls back to decode+encode when a sidecar is absent.
func BuildShardSidecars(p Plugin, store shard.Store, m *shard.Manifest, key []byte) (int, error) {
	open := p.Opener(store, key)
	sink := p.Sink(store, key)
	sealed := key != nil
	built := 0
	for _, info := range m.Shards {
		if store.Size(p.StoredName(SidecarName(info.Name), sealed)) > 0 {
			continue
		}
		one := &shard.Manifest{Prefix: m.Prefix, Compressed: m.Compressed, Shards: []shard.Info{info}}
		recs := make([]any, 0, info.Records)
		err := shard.ReadAll(open, one, func(_ string, rec []byte) error {
			r, _, err := p.Codec.Decode(rec)
			if err != nil {
				return err
			}
			recs = append(recs, r)
			return nil
		})
		if err != nil {
			return built, fmt.Errorf("domain: sidecar for %s: %w", info.Name, err)
		}
		b, err := EncodeSidecarFile(p.Codec, recs)
		if err != nil {
			return built, fmt.Errorf("domain: sidecar for %s: %w", info.Name, err)
		}
		if err := writeSidecar(sink, SidecarName(info.Name), b); err != nil {
			return built, fmt.Errorf("domain: sidecar for %s: %w", info.Name, err)
		}
		built++
	}
	return built, nil
}

func writeSidecar(sink shard.Sink, name string, b []byte) error {
	wc, err := sink.Create(name)
	if err != nil {
		return err
	}
	if _, err := wc.Write(b); err != nil {
		wc.Close()
		return err
	}
	return wc.Close()
}
