// Package core implements the paper's primary contribution: the
// two-dimensional scientific AI-readiness framework composed of five Data
// Readiness Levels (raw → fully AI-ready) crossed with five Data
// Processing Stages (ingest → shard), presented in the paper as a
// conceptual maturity matrix (Table 2), plus the assessor that places a
// dataset on that matrix from observable facts.
package core

import (
	"fmt"
	"strings"
)

// Level is a Data Readiness Level (paper §4). Levels measure how prepared
// a dataset is for large-scale AI training.
type Level int

// The five Data Readiness Levels.
const (
	Raw               Level = 1 // initial acquisition, no processing
	Cleaned           Level = 2 // validated, standard formats, missing values handled
	Labeled           Level = 3 // basic labels, initial normalization/anonymization
	FeatureEngineered Level = 4 // domain features extracted, comprehensive labels
	AIReady           Level = 5 // split, sharded binary formats, automated pipeline
)

// Levels lists all readiness levels in ascending order.
func Levels() []Level {
	return []Level{Raw, Cleaned, Labeled, FeatureEngineered, AIReady}
}

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Raw:
		return "1-Raw"
	case Cleaned:
		return "2-Cleaned"
	case Labeled:
		return "3-Labeled"
	case FeatureEngineered:
		return "4-Feature-engineered"
	case AIReady:
		return "5-Fully AI-ready"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Valid reports whether l is a defined readiness level.
func (l Level) Valid() bool { return l >= Raw && l <= AIReady }

// Stage is a Data Processing Stage (paper §3.5): the abstracted
// cross-domain pipeline is ingest → preprocess → transform → structure →
// shard.
type Stage int

// The five Data Processing Stages.
const (
	Ingest     Stage = iota // acquire raw data into the facility
	Preprocess              // clean, align, regrid
	Transform               // domain-specific conversion (normalize, anonymize, label)
	Structure               // organize into model-facing layouts (features, tensors, graphs)
	Shard                   // split train/test/val and write binary shards
)

// Stages lists all processing stages in pipeline order.
func Stages() []Stage {
	return []Stage{Ingest, Preprocess, Transform, Structure, Shard}
}

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case Ingest:
		return "Ingest"
	case Preprocess:
		return "Preprocess"
	case Transform:
		return "Transform"
	case Structure:
		return "Structure"
	case Shard:
		return "Shard"
	}
	return fmt.Sprintf("Stage(%d)", int(s))
}

// Valid reports whether s is a defined stage.
func (s Stage) Valid() bool { return s >= Ingest && s <= Shard }

// Domain identifies one of the four strategic scientific domains the paper
// surveys (§3).
type Domain string

// The surveyed domains (Table 1 rows).
const (
	Climate   Domain = "climate"
	Fusion    Domain = "fusion"
	BioHealth Domain = "bio/health"
	Materials Domain = "materials"
)

// Domains lists the surveyed domains in the paper's order.
func Domains() []Domain { return []Domain{Climate, Fusion, BioHealth, Materials} }

// Applicable reports whether the maturity matrix defines a cell at
// (level, stage). Table 2 is a staircase: level k populates the first k
// stages; the remaining cells are grey (N/A) because a dataset cannot be
// mature in a stage its readiness level has not reached.
func Applicable(l Level, s Stage) bool {
	if !l.Valid() || !s.Valid() {
		return false
	}
	return int(s) < int(l)
}

// CellDescription returns the Table 2 text for an applicable cell, or ""
// for grey (N/A) cells.
func CellDescription(l Level, s Stage) string {
	if !Applicable(l, s) {
		return ""
	}
	return matrixText[l][s]
}

var matrixText = map[Level]map[Stage]string{
	Raw: {
		Ingest: "Initial raw acquisition",
	},
	Cleaned: {
		Ingest:     "Validated ingestion into standard formats",
		Preprocess: "Initial spatial/temporal alignment or regridding",
	},
	Labeled: {
		Ingest:     "Enhanced metadata enrichment",
		Preprocess: "Refined alignment; grids standardized",
		Transform:  "Initial normalization or anonymization; basic labels added",
	},
	FeatureEngineered: {
		Ingest:     "Optimized high-throughput ingestion",
		Preprocess: "Alignment fully standardized",
		Transform:  "Normalization or anonymization finalized; comprehensive labeling",
		Structure:  "Domain-specific feature extraction completed",
	},
	AIReady: {
		Ingest:     "Ingestion pipelines fully automated and performance-optimized",
		Preprocess: "Alignment integrated and automated",
		Transform:  "Normalization / anonymization fully automated and audited",
		Structure:  "Feature extraction automated and validated",
		Shard:      "Data partitioned into train/test/val & sharded into binary formats for scalable ingestion",
	},
}

// Facts are the observable properties of a dataset the assessor inspects.
// Pipelines update Facts as stages complete; the assessor maps Facts to a
// readiness level without knowing which pipeline produced them.
type Facts struct {
	// Ingest / cleaning.
	Acquired       bool    // raw data exists at the facility
	StandardFormat bool    // stored in a community standard format
	Validated      bool    // ingest-time validation performed
	MissingRate    float64 // fraction of missing values remaining
	MetadataFields int     // count of descriptive metadata fields present
	AlignedGrids   bool    // spatial/temporal alignment or regridding done
	// Transform.
	LabelCoverage   float64 // fraction of samples with labels
	Normalized      bool    // variables normalized (mean/std or domain scheme)
	RequiresPrivacy bool    // dataset carries PHI/PII (bio/health)
	Anonymized      bool    // privacy transformations applied
	AuditTrail      bool    // provenance/audit records captured
	// Structure.
	FeaturesExtracted bool // domain-specific feature engineering done
	StructuredLayout  bool // fixed tensor/graph/sequence layout established
	// Shard.
	SplitDone bool // train/test/val partitions exist
	Sharded   bool // binary shards written
	// Automation.
	PipelineAutomated bool // end-to-end pipeline runs without manual steps
}

// Thresholds tune the assessor. Zero value is unusable; use
// DefaultThresholds.
type Thresholds struct {
	// MaxMissingForClean is the largest missing-value rate a Cleaned
	// dataset may retain.
	MaxMissingForClean float64
	// BasicLabelCoverage is the label fraction required for Labeled.
	BasicLabelCoverage float64
	// FullLabelCoverage is the fraction required for Feature-engineered
	// ("comprehensive labeling", Table 2).
	FullLabelCoverage float64
	// MinMetadataFields is the metadata richness required for Labeled
	// ("enhanced metadata enrichment").
	MinMetadataFields int
}

// DefaultThresholds returns the assessor configuration used by the
// reproduction's experiments.
func DefaultThresholds() Thresholds {
	return Thresholds{
		MaxMissingForClean: 0.01,
		BasicLabelCoverage: 0.10,
		FullLabelCoverage:  0.95,
		MinMetadataFields:  3,
	}
}

// Assessment is the result of placing a dataset on the maturity matrix.
type Assessment struct {
	Level Level
	// StageMaturity scores each stage in [0,1]; stages beyond the
	// dataset's level are 0 by construction (grey cells).
	StageMaturity map[Stage]float64
	// Gaps lists, in priority order, what blocks promotion to the next level.
	Gaps []string
}

// Assess computes the readiness level and per-stage maturity from facts.
func Assess(f Facts, th Thresholds) Assessment {
	a := Assessment{StageMaturity: make(map[Stage]float64)}

	if !f.Acquired {
		a.Level = 0
		a.Gaps = []string{"acquire raw data (no dataset present)"}
		return a
	}
	a.Level = Raw

	// Level 2 — Cleaned.
	cleanGaps := []string{}
	if !f.StandardFormat {
		cleanGaps = append(cleanGaps, "convert to a standard self-describing format")
	}
	if !f.Validated {
		cleanGaps = append(cleanGaps, "validate data at ingest")
	}
	if f.MissingRate > th.MaxMissingForClean {
		cleanGaps = append(cleanGaps, fmt.Sprintf("handle missing values (%.1f%% > %.1f%% budget)",
			100*f.MissingRate, 100*th.MaxMissingForClean))
	}
	if !f.AlignedGrids {
		cleanGaps = append(cleanGaps, "align/regrid to a consistent spatial-temporal layout")
	}
	if len(cleanGaps) > 0 {
		a.Gaps = cleanGaps
		fillMaturity(&a, f, th)
		return a
	}
	a.Level = Cleaned

	// Level 3 — Labeled.
	labelGaps := []string{}
	if f.LabelCoverage < th.BasicLabelCoverage {
		labelGaps = append(labelGaps, fmt.Sprintf("add basic labels (coverage %.1f%% < %.1f%%)",
			100*f.LabelCoverage, 100*th.BasicLabelCoverage))
	}
	if !f.Normalized {
		labelGaps = append(labelGaps, "apply initial normalization")
	}
	if f.RequiresPrivacy && !f.Anonymized {
		labelGaps = append(labelGaps, "anonymize PHI/PII fields")
	}
	if f.MetadataFields < th.MinMetadataFields {
		labelGaps = append(labelGaps, fmt.Sprintf("enrich metadata (%d fields < %d required)",
			f.MetadataFields, th.MinMetadataFields))
	}
	if len(labelGaps) > 0 {
		a.Gaps = labelGaps
		fillMaturity(&a, f, th)
		return a
	}
	a.Level = Labeled

	// Level 4 — Feature-engineered.
	featGaps := []string{}
	if !f.FeaturesExtracted {
		featGaps = append(featGaps, "extract domain-specific features")
	}
	if !f.StructuredLayout {
		featGaps = append(featGaps, "organize data into a fixed model-facing layout")
	}
	if f.LabelCoverage < th.FullLabelCoverage {
		featGaps = append(featGaps, fmt.Sprintf("reach comprehensive labeling (coverage %.1f%% < %.1f%%)",
			100*f.LabelCoverage, 100*th.FullLabelCoverage))
	}
	if len(featGaps) > 0 {
		a.Gaps = featGaps
		fillMaturity(&a, f, th)
		return a
	}
	a.Level = FeatureEngineered

	// Level 5 — Fully AI-ready.
	readyGaps := []string{}
	if !f.SplitDone {
		readyGaps = append(readyGaps, "partition into train/test/val splits")
	}
	if !f.Sharded {
		readyGaps = append(readyGaps, "shard into binary formats for scalable ingestion")
	}
	if !f.PipelineAutomated {
		readyGaps = append(readyGaps, "automate the end-to-end pipeline")
	}
	if !f.AuditTrail {
		readyGaps = append(readyGaps, "capture provenance/audit records")
	}
	if len(readyGaps) > 0 {
		a.Gaps = readyGaps
		fillMaturity(&a, f, th)
		return a
	}
	a.Level = AIReady
	fillMaturity(&a, f, th)
	return a
}

// fillMaturity scores each applicable stage in [0,1].
func fillMaturity(a *Assessment, f Facts, th Thresholds) {
	score := func(parts ...bool) float64 {
		if len(parts) == 0 {
			return 0
		}
		n := 0
		for _, p := range parts {
			if p {
				n++
			}
		}
		return float64(n) / float64(len(parts))
	}
	m := map[Stage]float64{
		Ingest:     score(f.Acquired, f.StandardFormat, f.Validated, f.MetadataFields >= th.MinMetadataFields),
		Preprocess: score(f.MissingRate <= th.MaxMissingForClean, f.AlignedGrids),
		Transform: score(f.Normalized,
			f.LabelCoverage >= th.BasicLabelCoverage,
			!f.RequiresPrivacy || f.Anonymized),
		Structure: score(f.FeaturesExtracted, f.StructuredLayout),
		Shard:     score(f.SplitDone, f.Sharded, f.PipelineAutomated),
	}
	for s, v := range m {
		if !Applicable(a.Level, s) {
			v = 0
		}
		a.StageMaturity[s] = v
	}
}

// RenderMatrix prints the Table 2 maturity matrix as text, marking the
// assessed dataset's populated cells with their maturity scores. Grey
// (N/A) cells render as "--".
func RenderMatrix(a Assessment) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s", "Level \\ Stage")
	for _, s := range Stages() {
		fmt.Fprintf(&b, "%-14s", s)
	}
	b.WriteByte('\n')
	for _, l := range Levels() {
		fmt.Fprintf(&b, "%-24s", l)
		for _, s := range Stages() {
			switch {
			case !Applicable(l, s):
				fmt.Fprintf(&b, "%-14s", "--")
			case l == a.Level:
				fmt.Fprintf(&b, "%-14s", fmt.Sprintf("[%.0f%%]", 100*a.StageMaturity[s]))
			case l < a.Level:
				fmt.Fprintf(&b, "%-14s", "done")
			default:
				fmt.Fprintf(&b, "%-14s", "pending")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Descriptor summarizes a dataset for the Table 1 catalog.
type Descriptor struct {
	Domain        Domain
	Name          string
	WorkflowSteps []string
	Architecture  string
	Modality      string
	Challenges    []string
}

// Table1 returns the paper's Table 1 catalog: the representative dataset,
// workflow steps, architecture, modality, and readiness challenges for
// each surveyed domain. The reproduction's archetype pipelines implement
// exactly these workflow steps.
func Table1() []Descriptor {
	return []Descriptor{
		{
			Domain: Climate,
			Name:   "CMIP6 (ORBIT) / satellite imagery / ERA5 reanalyses",
			WorkflowSteps: []string{
				"Normalize variables", "Resample grids", "Standardize outputs", "Shard to binary formats",
			},
			Architecture: "CNN, Transformer",
			Modality:     "Spatial, Temporal grids",
			Challenges:   []string{"Redundant fields", "Spatial misalignment", "Pipeline throughput"},
		},
		{
			Domain: Fusion,
			Name:   "IPS-Fastran / FREDA / DIII-D ML / IMAS",
			WorkflowSteps: []string{
				"Extract/align diagnostics", "Physics-based features", "Normalize shots", "TFRecord/HDF5",
			},
			Architecture: "Transformer, CNN, LSTM",
			Modality:     "Time-series, Multi-channel signals",
			Challenges:   []string{"Sparse/noisy data", "Limited labels", "Access restrictions"},
		},
		{
			Domain: BioHealth,
			Name:   "TwoFold / C-HER / Enformer / AlphaFold 2",
			WorkflowSteps: []string{
				"One-hot encoding", "Anonymization", "Cross-modal fusion", "Secure sharding",
			},
			Architecture: "Transformer, CNN, GNN",
			Modality:     "Sequences, Images, Tabular",
			Challenges:   []string{"PHI/PII compliance", "Limited labels", "Format inconsistencies"},
		},
		{
			Domain: Materials,
			Name:   "OMat24 / AFLOW",
			WorkflowSteps: []string{
				"Parse simulations", "Normalize descriptors", "Graph encoding", "Shard (ADIOS/JSON)",
			},
			Architecture: "Graph Neural Network (GNN)",
			Modality:     "Graph structures",
			Challenges:   []string{"Class imbalance", "Fidelity mismatch", "Graph complexity"},
		},
	}
}
