// Cross-domain serving tests: the plugin architecture's acceptance
// criteria — every registered domain streams batches, resumes cursors
// across a server restart, reports its wire kind, and the serving tier
// accounts failures and pacing.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/domain"
	"repro/pkg/client"
)

// metricValue scrapes one counter from /metrics.
func metricValue(t *testing.T, baseURL, name string) int64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		var v int64
		if _, err := fmt.Sscanf(line, name+" %d", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// streamWire decodes a batch stream into comparable lines in either
// wire format: NDJSON is read raw off the HTTP body, frames go through
// the SDK decoder — both land in the kind-agnostic streamLine form so
// cross-format equality is a map comparison.
func streamWire(t *testing.T, url, cursor, wire string) []streamLine {
	t.Helper()
	if wire == domain.WireNDJSON {
		return streamFrom(t, url, cursor)
	}
	st, err := client.OpenStreamURL(context.Background(), nil, url, cursor, wire, -1)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var out []streamLine
	for {
		b, err := st.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		var payload map[string]any
		if err := json.Unmarshal(raw, &payload); err != nil {
			t.Fatal(err)
		}
		delete(payload, "batch")
		out = append(out, streamLine{cursor: b.Cursor, kind: b.Kind, payload: payload})
	}
}

// TestAllDomainsStreamAndResumeAcrossRestart is the acceptance path of
// the plugin refactor and the wire negotiation: POST /v1/jobs then
// GET /v1/jobs/{id}/batches succeeds for all four domains in both wire
// formats — same records, same cursors — and a cursor taken mid-stream
// resumes exactly, in either format, on a freshly restarted server
// over the same data dir.
func TestAllDomainsStreamAndResumeAcrossRestart(t *testing.T) {
	dataDir := t.TempDir()
	s1, err := New(Options{Workers: 4, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())

	specs := map[core.Domain]JobSpec{
		core.Climate:   {Domain: core.Climate, Seed: 3, Months: 24, Lat: 16, Lon: 32},
		core.Fusion:    {Domain: core.Fusion, Seed: 3, Shots: 8},
		core.BioHealth: {Domain: core.BioHealth, Seed: 3, Subjects: 16},
		core.Materials: {Domain: core.Materials, Seed: 3, Structures: 16},
	}
	type jobRef struct {
		id       string
		kind     string
		ref      []streamLine
		cursorAt int
	}
	jobs := map[core.Domain]*jobRef{}
	for d, spec := range specs {
		id, err := SubmitAndWait(ts1.URL, spec, 120*time.Second)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		plug, err := domain.Lookup(d)
		if err != nil {
			t.Fatal(err)
		}
		url := ts1.URL + "/v1/jobs/" + id + "/batches?batch_size=2"
		ref := streamFrom(t, url, "")
		if len(ref) < 3 {
			t.Fatalf("%s: only %d batches", d, len(ref))
		}
		for i, line := range ref {
			if line.kind != plug.Codec.Kind() {
				t.Fatalf("%s line %d kind %q, want %q", d, i, line.kind, plug.Codec.Kind())
			}
		}
		// The binary frame stream must carry the same records with the
		// same cursors as the NDJSON reference.
		framed := streamWire(t, url, "", domain.WireFrame)
		assertSuffix(t, fmt.Sprintf("%s frame/ndjson equivalence", d), framed, ref)
		jobs[d] = &jobRef{id: id, kind: plug.Codec.Kind(), ref: ref, cursorAt: len(ref) / 2}
	}

	// Kill the server; restart over the same data dir.
	ts1.Close()
	s1.Close()
	s2, err := New(Options{Workers: 2, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	t.Cleanup(s2.Close)

	for d, j := range jobs {
		var st JobStatus
		if code := getJSON(t, ts2.URL+"/v1/jobs/"+j.id, &st); code != http.StatusOK {
			t.Fatalf("%s: restart status %d", d, code)
		}
		if st.State != JobDone || !st.Servable || st.Kind != j.kind {
			t.Fatalf("%s: restart status %+v", d, st)
		}
		// Resume from a mid-stream cursor taken before the restart: the
		// suffix must reproduce the original stream exactly — in both
		// wire formats.
		url := ts2.URL + "/v1/jobs/" + j.id + "/batches?batch_size=2"
		for _, wire := range domain.Wires() {
			got := streamWire(t, url, j.ref[j.cursorAt].cursor, wire)
			assertSuffix(t, fmt.Sprintf("%s %s resume across restart", d, wire), got, j.ref[j.cursorAt+1:])
		}
	}
}

// TestWireNegotiation pins the Accept-header contract: NDJSON is the
// default (wildcard accepts included), an explicit frame Accept flips
// the stream to frames, and both answers are labelled with
// Content-Type and X-Draid-Wire.
func TestWireNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, CacheBytes: 32 << 20})
	id, err := SubmitAndWait(ts.URL, JobSpec{Domain: core.Climate, Seed: 2, Months: 12, Lat: 8, Lon: 16}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/v1/jobs/" + id + "/batches?batch_size=4"
	for _, tc := range []struct {
		accept   string
		wantWire string
		wantCT   string
	}{
		{"", "ndjson", "application/x-ndjson"},
		{"*/*", "ndjson", "application/x-ndjson"},
		{"application/json, text/plain", "ndjson", "application/x-ndjson"},
		{"application/x-draid-frame", "frame", "application/x-draid-frame"},
		{"APPLICATION/X-DRAID-FRAME", "frame", "application/x-draid-frame"},
		{"application/x-draid-frame;q=1.0, application/x-ndjson;q=0.5", "frame", "application/x-draid-frame"},
		{"application/x-ndjson, application/x-draid-frame", "frame", "application/x-draid-frame"},
		// q=0 is an explicit refusal (RFC 9110): never serve frames.
		{"application/x-draid-frame;q=0", "ndjson", "application/x-ndjson"},
		{"application/x-ndjson, application/x-draid-frame;q=0.0", "ndjson", "application/x-ndjson"},
		// A client that prefers NDJSON but tolerates frames keeps NDJSON;
		// the reverse preference gets frames.
		{"application/x-ndjson, application/x-draid-frame;q=0.1", "ndjson", "application/x-ndjson"},
		{"application/x-draid-frame;q=0.5, application/x-ndjson;q=0.4", "frame", "application/x-draid-frame"},
		{"*/*, application/x-draid-frame;q=0.5", "ndjson", "application/x-ndjson"},
		// Repeated media ranges take the max q per RFC 9110, not the last
		// occurrence: a high frame q is not forgotten when a later low one
		// repeats the range, and vice versa.
		{"application/x-draid-frame;q=0.9, application/x-ndjson;q=0.5, application/x-draid-frame;q=0.2", "frame", "application/x-draid-frame"},
		{"application/x-draid-frame;q=0.2, application/x-ndjson;q=0.5, application/x-draid-frame;q=0.9", "frame", "application/x-draid-frame"},
		{"application/x-ndjson;q=0.3, application/x-draid-frame;q=0.5, application/x-ndjson;q=0.9", "ndjson", "application/x-ndjson"},
		{"*/*;q=0.8, application/x-draid-frame;q=0.5, */*;q=0.1", "ndjson", "application/x-ndjson"},
		// A repeated q=0 range regains service if any occurrence allows it.
		{"application/x-draid-frame;q=0, application/x-draid-frame;q=0.9", "frame", "application/x-draid-frame"},
	} {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if tc.accept != "" {
			req.Header.Set("Accept", tc.accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("Accept %q: status %d", tc.accept, resp.StatusCode)
		}
		if got := resp.Header.Get(domain.HeaderWire); got != tc.wantWire {
			t.Fatalf("Accept %q: X-Draid-Wire %q, want %q", tc.accept, got, tc.wantWire)
		}
		if got := resp.Header.Get("Content-Type"); got != tc.wantCT {
			t.Fatalf("Accept %q: Content-Type %q, want %q", tc.accept, got, tc.wantCT)
		}
		if len(body) == 0 {
			t.Fatalf("Accept %q: empty stream", tc.accept)
		}
		if tc.wantWire == "ndjson" && body[0] != '{' {
			t.Fatalf("Accept %q: NDJSON stream does not start with a JSON object", tc.accept)
		}
	}
}

// TestServeErrorMetric: a mid-stream shard-read failure emits the
// best-effort NDJSON error line and increments draid_serve_errors_total.
func TestServeErrorMetric(t *testing.T) {
	dataDir := t.TempDir()
	// Cold cache so the stream really reads the (sabotaged) store.
	s, err := New(Options{Workers: 1, DataDir: dataDir, CacheBytes: 0})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)

	id, err := SubmitAndWait(ts.URL, JobSpec{Domain: core.Climate, Seed: 2, Months: 24, Lat: 16, Lon: 32}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st); code != http.StatusOK || st.Shards < 2 {
		t.Fatalf("need >=2 shards to fail mid-stream, have %+v (code %d)", st, code)
	}
	// Delete the last shard file so the stream starts fine and dies
	// partway through.
	entries, err := os.ReadDir(filepath.Join(dataDir, "jobs", id))
	if err != nil {
		t.Fatal(err)
	}
	victim := ""
	for _, e := range entries {
		// Skip frame sidecars: deleting one degrades the frame path but
		// never breaks a stream. We want the shard payload itself gone.
		if strings.Contains(e.Name(), "MANIFEST") || strings.HasSuffix(e.Name(), domain.SidecarSuffix) {
			continue
		}
		if e.Name() > victim {
			victim = e.Name()
		}
	}
	if victim == "" {
		t.Fatal("no shard file found")
	}
	if err := os.Remove(filepath.Join(dataDir, "jobs", id, victim)); err != nil {
		t.Fatal(err)
	}

	before := metricValue(t, ts.URL, "draid_serve_errors_total")
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/batches?batch_size=4")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<22)
	n := 0
	for {
		m, rerr := resp.Body.Read(body[n:])
		n += m
		if rerr != nil {
			break
		}
	}
	resp.Body.Close()
	if !strings.Contains(string(body[:n]), `"error"`) {
		t.Fatalf("stream of sabotaged job carried no error line:\n%s", body[:n])
	}
	if after := metricValue(t, ts.URL, "draid_serve_errors_total"); after != before+1 {
		t.Fatalf("draid_serve_errors_total %d -> %d, want +1", before, after)
	}
}

// assertPaced sizes url's payload with an unpaced stream in the given
// wire format, re-streams it paced at a rate making the nominal
// full-stream time ~1 second, and requires the identical payload, a
// real delay (at least half the nominal time beyond the pacer's
// burst — half, to stay robust under scheduler slop; there is no
// upper bound to check in the other direction), and a throttled-
// counter tick. Returns the KiB/s rate it paced at.
func assertPaced(t *testing.T, s *Server, url, wire string) int {
	t.Helper()
	_, _, bytes, _, err := streamConsume(url, "", wire)
	if err != nil {
		t.Fatal(err)
	}
	kbps := int(bytes / 1024)
	if kbps < 1 {
		kbps = 1
	}
	throttledBefore := int64(s.metrics.serveThrottled.Value())
	start := time.Now()
	_, _, paced, _, err := streamConsume(fmt.Sprintf("%s&max_kbps=%d", url, kbps), "", wire)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if paced != bytes {
		t.Fatalf("paced %s stream served %d bytes, want %d", wire, paced, bytes)
	}
	// Recompute the pacer's burst clamp to find the paced remainder.
	rate := float64(int64(kbps) << 10)
	burst := rate / 4
	if burst < 4<<10 {
		burst = 4 << 10
	}
	if burst > 256<<10 {
		burst = 256 << 10
	}
	rem := float64(bytes) - burst
	if rem <= 0 {
		t.Fatalf("%s stream too small (%d bytes) to exercise pacing beyond the %d-byte burst", wire, bytes, int64(burst))
	}
	if minTime := time.Duration(rem / rate / 2 * float64(time.Second)); elapsed < minTime {
		t.Fatalf("paced %s stream of %d bytes at %d KiB/s finished in %s (< %s)", wire, bytes, kbps, elapsed, minTime)
	}
	if int64(s.metrics.serveThrottled.Value()) == throttledBefore {
		t.Fatalf("paced %s stream not counted in draid_serve_throttled_total", wire)
	}
	return kbps
}

// TestServeRateControl: ?max_kbps= paces the stream with a token bucket
// and the throttled-streams counter ticks — in both wire formats. The
// unpaced stream finishes the same payload far faster than the paced
// one.
func TestServeRateControl(t *testing.T) {
	s, err := New(Options{Workers: 1, CacheBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	id, err := SubmitAndWait(ts.URL, JobSpec{Domain: core.Climate, Seed: 2, Months: 36, Lat: 16, Lon: 32}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/v1/jobs/" + id + "/batches?batch_size=1"

	if _, _, _, err := StreamBatches(url); err != nil {
		t.Fatal(err)
	}
	if int64(s.metrics.serveThrottled.Value()) != 0 {
		t.Fatal("unpaced stream counted as throttled")
	}

	// Both wire formats are paced by the same token bucket over their
	// own encoded bytes.
	kbps := assertPaced(t, s, url, domain.WireNDJSON)
	assertPaced(t, s, url, domain.WireFrame)

	// The server-wide ceiling clamps client requests above it.
	s2, err := New(Options{Workers: 1, ServeMaxKBps: kbps})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	t.Cleanup(s2.Close)
	id2, err := SubmitAndWait(ts2.URL, JobSpec{Domain: core.Climate, Seed: 2, Months: 36, Lat: 16, Lon: 32}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Ask for 100x the ceiling; the server must still pace.
	if _, _, _, err := StreamBatches(fmt.Sprintf("%s/v1/jobs/%s/batches?batch_size=1&max_kbps=%d", ts2.URL, id2, kbps*100)); err != nil {
		t.Fatal(err)
	}
	if int64(s2.metrics.serveThrottled.Value()) == 0 {
		t.Fatal("server-wide ceiling did not pace a greedy client")
	}

	// Malformed pacing values are rejected.
	resp, err := http.Get(url + "&max_kbps=-3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative max_kbps accepted with %d", resp.StatusCode)
	}

	// An absurd rate must not overflow into a negative bucket: the
	// stream runs unpaced and the throttled counter stays put.
	throttledBefore := int64(s.metrics.serveThrottled.Value())
	if _, _, _, err := StreamBatches(url + "&max_kbps=9223372036854775807"); err != nil {
		t.Fatal(err)
	}
	if got := int64(s.metrics.serveThrottled.Value()); got != throttledBefore {
		t.Fatalf("overflow max_kbps ticked draid_serve_throttled_total (%d -> %d)", throttledBefore, got)
	}
}

// TestFrameCachedComparisonSmoke: the zero-copy bench dimension runs
// end to end and produces a usable ratio with both sides populated.
func TestFrameCachedComparisonSmoke(t *testing.T) {
	cmp, err := RunFrameCachedComparison(ServeBenchConfig{Clients: 2, BatchSize: 8, Passes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Frame == nil || cmp.FrameCached == nil {
		t.Fatalf("missing side: %+v", cmp)
	}
	if cmp.Frame.Batches == 0 || cmp.FrameCached.Batches == 0 {
		t.Fatalf("empty runs: frame %+v cached %+v", cmp.Frame, cmp.FrameCached)
	}
	if cmp.Frame.Samples != cmp.FrameCached.Samples {
		t.Fatalf("sides streamed different loads: %d vs %d samples", cmp.Frame.Samples, cmp.FrameCached.Samples)
	}
	if cmp.CachedOverFrame <= 0 {
		t.Fatalf("no ratio: %+v", cmp)
	}
}

// TestServeBenchAllCodecs is the bench smoke: every registered domain
// streams through the benchmark harness under the mem backend.
func TestServeBenchAllCodecs(t *testing.T) {
	for _, plug := range domain.Plugins() {
		res, err := RunServeBenchmark(ServeBenchConfig{
			Clients: 2, BatchSize: 8, Passes: 1, Domain: plug.Domain})
		if err != nil {
			t.Fatalf("%s: %v", plug.Domain, err)
		}
		if res.Batches == 0 || res.Samples == 0 || res.Bytes == 0 {
			t.Fatalf("%s: empty bench result %+v", plug.Domain, res)
		}
		if res.Kind != plug.Codec.Kind() || res.Domain != string(plug.Domain) {
			t.Fatalf("%s: result not tagged: %+v", plug.Domain, res)
		}
	}
}
