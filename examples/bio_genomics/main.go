// bio_genomics reproduces the Enformer/C-HER-style bio/health
// preparation: one-hot encode genomic tiles, anonymize clinical records to
// k-anonymity, fuse the modalities, write encrypted shards, then prove the
// privacy and security invariants hold end to end.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"repro/internal/anonymize"
	"repro/internal/bio"
	"repro/internal/shard"
)

func main() {
	log.SetFlags(0)
	cohort, err := bio.Synthesize(bio.SynthConfig{Subjects: 50, SeqLen: 512, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cohort: %d subjects, %d bp sequences, clinical notes contain PHI: %t\n",
		len(cohort.Sequences), len(cohort.Sequences[0].Seq),
		anonymize.ContainsPHI(cohort.Clinical[0].Notes))

	// One-hot demo (the Enformer encoding).
	oh := bio.OneHot(cohort.Sequences[0].Seq[:8])
	fmt.Printf("one-hot of %q: %v...\n", cohort.Sequences[0].Seq[:8], oh[:8])

	encKey := bytes.Repeat([]byte{0x5A}, 32)
	sink := shard.NewMemSink()
	p, err := bio.NewPipeline(bio.DefaultConfig(encKey, []byte("example-pseudonym-secret-key")), sink)
	if err != nil {
		log.Fatal(err)
	}
	ds := bio.NewDataset("cohort", cohort.ToFASTA(), cohort.Clinical)
	snaps, err := p.Run(ds)
	if err != nil {
		log.Fatal(err)
	}
	prod := ds.Payload.(*bio.Product)
	fmt.Printf("\nanonymization audit: %d records, k=%d, %d suppressed, %d PHI redactions\n",
		prod.Audit.Records, prod.Audit.K, prod.Audit.Suppressed, prod.Audit.Redactions)
	fmt.Printf("fused samples: %d (features = 64 k-mers + GC + 3 clinical)\n", len(prod.Fused))
	fmt.Printf("final readiness: %s\n", snaps[len(snaps)-1].Assessment.Level)

	// Security proof: the sink holds only sealed shards; decryption with
	// the right key and shard name recovers the payload.
	fmt.Println("\nsecure-shard check:")
	for _, name := range sink.Names() {
		if !strings.HasSuffix(name, ".enc") {
			log.Fatalf("plaintext shard leaked: %s", name)
		}
	}
	for name, sealed := range prod.Sealed {
		plain, err := anonymize.DecryptShard(encKey, name, sealed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s.enc: %d sealed bytes -> %d plaintext bytes OK\n", name, len(sealed), len(plain))
		// Wrong key must fail.
		wrong := bytes.Repeat([]byte{0x00}, 32)
		if _, err := anonymize.DecryptShard(wrong, name, sealed); err == nil {
			log.Fatal("decryption succeeded with the wrong key")
		}
	}
	fmt.Println("  wrong-key decryption rejected for every shard")

	// Privacy regression: no pseudonym maps back to a subject id, no PHI
	// in any retained note.
	for _, r := range prod.Anonymous {
		if strings.HasPrefix(r.Pseudonym, "subj-") || anonymize.ContainsPHI(r.Notes) {
			log.Fatalf("privacy violation in record %s", r.Pseudonym)
		}
	}
	fmt.Printf("\nprivacy invariants hold for all %d released records\n", len(prod.Anonymous))
	fmt.Println("\n" + p.Collector.Report())
}
